package tap25d_test

import (
	"fmt"

	"tap25d"
)

// ExamplePlace shows the full TAP-2.5D flow on a small custom system.
func ExamplePlace() {
	sys := &tap25d.System{
		Name:        "example",
		InterposerW: 30,
		InterposerH: 30,
		Chiplets: []tap25d.Chiplet{
			{Name: "XPU", W: 12, H: 12, Power: 180},
			{Name: "MEM", W: 6, H: 9, Power: 6},
		},
		Channels: []tap25d.Channel{{Src: 0, Dst: 1, Wires: 512}},
	}
	// Reduced-cost settings; the paper's configuration is ThermalGrid: 64,
	// Steps: 4500, Runs: 5.
	res, err := tap25d.Place(sys, tap25d.Options{ThermalGrid: 16, Steps: 100, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("placed chiplets:", len(res.Placement.Centers))
	fmt.Println("routing valid:", tap25d.CheckRouting(sys, res.Routing) == nil)
	// Output:
	// placed chiplets: 2
	// routing valid: true
}

// ExampleEvaluate scores an existing placement (here, the paper's original
// CPU-DRAM layout) without running the placer.
func ExampleEvaluate() {
	sys, _ := tap25d.BuiltinSystem("cpudram")
	res, err := tap25d.Evaluate(sys, tap25d.CPUDRAMOriginalPlacement(),
		tap25d.Options{ThermalGrid: 16})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The original CPU-DRAM placement is thermally infeasible — the premise
	// of the paper's case study 2.
	fmt.Println("above 85 C:", res.PeakC > 85)
	fmt.Println("feasible:", res.Feasible)
	// Output:
	// above 85 C: true
	// feasible: false
}

// ExampleBuiltinSystem lists the paper's case studies.
func ExampleBuiltinSystem() {
	for _, name := range tap25d.BuiltinSystemNames() {
		sys, _ := tap25d.BuiltinSystem(name)
		fmt.Printf("%s: %d chiplets, %d channels\n", name, len(sys.Chiplets), len(sys.Channels))
	}
	// Output:
	// ascend910: 8 chiplets, 5 channels
	// cpudram: 8 chiplets, 8 channels
	// multigpu: 8 chiplets, 9 channels
}

// ExampleLinkLatencyStudy reproduces the paper's Section IV-B slowdown
// bands over the synthetic workload suite.
func ExampleLinkLatencyStudy() {
	studies, err := tap25d.LinkLatencyStudy([]int{2, 3}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, st := range studies {
		fmt.Printf("1 -> %d cycles: mean slowdown within paper band: %v\n",
			st.LinkLatency, st.Mean > 0.05 && st.Mean < 0.30)
	}
	// Output:
	// 1 -> 2 cycles: mean slowdown within paper band: true
	// 1 -> 3 cycles: mean slowdown within paper band: true
}

// ExampleTDPEnvelope finds the maximum power a placement tolerates at 85 C.
func ExampleTDPEnvelope() {
	sys, _ := tap25d.BuiltinSystem("cpudram")
	env, err := tap25d.TDPEnvelope(sys, tap25d.CPUDRAMOriginalPlacement(),
		tap25d.CPUDRAMCPUIndices(), tap25d.Options{ThermalGrid: 16})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("envelope found:", env.Feasible && env.EnvelopeW > 100)
	// Output:
	// envelope found: true
}
