package seqpair

import (
	"math"
	"math/rand"
	"testing"

	"tap25d/internal/btree"
	"tap25d/internal/chiplet"
)

func TestRelationsPartitionPairs(t *testing.T) {
	// For any sequence pair, every block pair is related by exactly one of
	// {a left of b, b left of a, a below b, b below a}.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		w := make([]float64, n)
		h := make([]float64, n)
		for i := range w {
			w[i], h[i] = 1+rng.Float64()*9, 1+rng.Float64()*9
		}
		p := newPair(n, w, h)
		for k := 0; k < 20; k++ {
			p.perturb(rng)
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				rel := 0
				if p.leftOf(a, b) {
					rel++
				}
				if p.leftOf(b, a) {
					rel++
				}
				if p.below(a, b) {
					rel++
				}
				if p.below(b, a) {
					rel++
				}
				if rel != 1 {
					t.Fatalf("trial %d: pair (%d,%d) has %d relations", trial, a, b, rel)
				}
			}
		}
	}
}

func TestPackNoOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		w := make([]float64, n)
		h := make([]float64, n)
		for i := range w {
			w[i], h[i] = 1+rng.Float64()*9, 1+rng.Float64()*9
		}
		p := newPair(n, w, h)
		for k := 0; k < 30; k++ {
			p.perturb(rng)
		}
		xs, ys := p.pack()
		for a := 0; a < n; a++ {
			wa, ha := p.dims(a)
			if xs[a] < -1e-9 || ys[a] < -1e-9 {
				t.Fatalf("trial %d: block %d at negative position", trial, a)
			}
			for b := a + 1; b < n; b++ {
				wb, hb := p.dims(b)
				ox := math.Min(xs[a]+wa, xs[b]+wb) - math.Max(xs[a], xs[b])
				oy := math.Min(ys[a]+ha, ys[b]+hb) - math.Max(ys[a], ys[b])
				if ox > 1e-9 && oy > 1e-9 {
					t.Fatalf("trial %d: blocks %d and %d overlap", trial, a, b)
				}
			}
		}
	}
}

func TestPackKnownArrangements(t *testing.T) {
	// Identity pair: all blocks in a row.
	w := []float64{3, 4, 5}
	h := []float64{2, 2, 2}
	p := newPair(3, w, h)
	xs, ys := p.pack()
	if xs[0] != 0 || xs[1] != 3 || xs[2] != 7 {
		t.Errorf("row xs = %v", xs)
	}
	for _, y := range ys {
		if y != 0 {
			t.Errorf("row ys = %v", ys)
		}
	}
	// Reversed G+: a column (block i below block i-1).
	p2 := newPair(3, w, h)
	p2.gPlus = []int{2, 1, 0}
	p2.posPlus = []int{2, 1, 0}
	xs2, ys2 := p2.pack()
	for _, x := range xs2 {
		if x != 0 {
			t.Errorf("column xs = %v", xs2)
		}
	}
	if ys2[0] != 0 || ys2[1] != 2 || ys2[2] != 4 {
		t.Errorf("column ys = %v", ys2)
	}
}

func compactSystem() *chiplet.System {
	return &chiplet.System{
		Name:        "sp",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 12, H: 12, Power: 100},
			{Name: "B", W: 12, H: 12, Power: 100},
			{Name: "C", W: 8, H: 10, Power: 20},
			{Name: "D", W: 10, H: 8, Power: 20},
			{Name: "E", W: 6, H: 6, Power: 5},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 1, Wires: 512},
			{Src: 0, Dst: 2, Wires: 256},
			{Src: 1, Dst: 3, Wires: 256},
			{Src: 2, Dst: 4, Wires: 128},
		},
	}
}

func TestPlaceCompactValid(t *testing.T) {
	sys := compactSystem()
	res, err := PlaceCompact(sys, Options{Seed: 1, Steps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(res.Placement); err != nil {
		t.Fatal(err)
	}
	var tot float64
	for _, c := range sys.Chiplets {
		tot += c.Area()
	}
	if res.BBoxMM.Area() > 2.2*tot {
		t.Errorf("packing too loose: %.0f vs chiplet area %.0f", res.BBoxMM.Area(), tot)
	}
	if res.WirelengthMM <= 0 {
		t.Error("non-positive wirelength")
	}
}

func TestPlaceCompactDeterministic(t *testing.T) {
	sys := compactSystem()
	a, err := PlaceCompact(sys, Options{Seed: 4, Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceCompact(sys, Options{Seed: 4, Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placement.Centers {
		if a.Placement.Centers[i] != b.Placement.Centers[i] {
			t.Fatal("same seed, different placements")
		}
	}
}

func TestSeqPairComparableToBTree(t *testing.T) {
	// Two independent compact placers should land in the same wirelength
	// regime (within 2x of each other) on the same system.
	sys := compactSystem()
	sp, err := PlaceCompact(sys, Options{Seed: 2, Steps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := btree.PlaceCompact(sys, btree.Options{Seed: 2, Steps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sp.WirelengthMM, bt.WirelengthMM
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 2*lo {
		t.Errorf("placers disagree wildly: seqpair %.0f vs btree %.0f", sp.WirelengthMM, bt.WirelengthMM)
	}
}

func TestPlaceCompactSingleBlock(t *testing.T) {
	sys := &chiplet.System{
		Name:        "one",
		InterposerW: 20,
		InterposerH: 20,
		Chiplets:    []chiplet.Chiplet{{Name: "X", W: 9, H: 7, Power: 10}},
	}
	res, err := PlaceCompact(sys, Options{Seed: 1, Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(res.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceCompactRejectsImpossible(t *testing.T) {
	sys := &chiplet.System{
		Name:        "jam",
		InterposerW: 20,
		InterposerH: 20,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 19, H: 10, Power: 1},
			{Name: "B", W: 19, H: 11, Power: 1},
		},
	}
	if _, err := PlaceCompact(sys, Options{Seed: 1, Steps: 500}); err == nil {
		t.Error("impossible packing succeeded")
	}
}

func TestPlaceCompactRejectsInvalidSystem(t *testing.T) {
	if _, err := PlaceCompact(&chiplet.System{}, Options{}); err == nil {
		t.Error("invalid system accepted")
	}
}
