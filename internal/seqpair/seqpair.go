// Package seqpair implements the Sequence Pair floorplan representation of
// Murata et al. ("VLSI module placement based on rectangle-packing by the
// sequence-pair", IEEE TCAD 1996) with a simulated-annealing search — the
// first of the compact-placement representations the paper's related-work
// section surveys (Section II). It serves as an alternative baseline to the
// B*-tree Compact-2.5D placer and as a cross-check: two independent compact
// placers should produce placements of comparable wirelength and area, and
// both should be beaten on temperature by TAP-2.5D.
//
// A sequence pair (G+, G-) encodes relative positions: block a left of b
// when a precedes b in both sequences; a below b when a follows b in G+ but
// precedes it in G-. Coordinates follow from longest-path computations over
// the induced constraint DAGs.
package seqpair

import (
	"fmt"
	"math"
	"math/rand"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

// pair is a sequence-pair state over n blocks plus per-block rotations.
type pair struct {
	gPlus, gMinus []int // permutations of block indices
	posPlus       []int // block -> index in gPlus
	posMinus      []int // block -> index in gMinus
	rot           []bool
	w, h          []float64 // inflated block dims, unrotated
}

func newPair(n int, w, h []float64) *pair {
	p := &pair{
		gPlus:    make([]int, n),
		gMinus:   make([]int, n),
		posPlus:  make([]int, n),
		posMinus: make([]int, n),
		rot:      make([]bool, n),
		w:        w,
		h:        h,
	}
	for i := 0; i < n; i++ {
		p.gPlus[i], p.gMinus[i] = i, i
		p.posPlus[i], p.posMinus[i] = i, i
	}
	return p
}

func (p *pair) clone() *pair {
	return &pair{
		gPlus:    append([]int{}, p.gPlus...),
		gMinus:   append([]int{}, p.gMinus...),
		posPlus:  append([]int{}, p.posPlus...),
		posMinus: append([]int{}, p.posMinus...),
		rot:      append([]bool{}, p.rot...),
		w:        p.w,
		h:        p.h,
	}
}

func (p *pair) dims(b int) (float64, float64) {
	if p.rot[b] {
		return p.h[b], p.w[b]
	}
	return p.w[b], p.h[b]
}

// pack computes lower-left block corners by longest paths over the
// horizontal and vertical constraint graphs.
func (p *pair) pack() (xs, ys []float64) {
	n := len(p.gPlus)
	xs = make([]float64, n)
	ys = make([]float64, n)
	// Process blocks in gMinus order for x: any block left of another
	// precedes it in gMinus, so a single sweep relaxes all predecessors.
	for _, b := range p.gMinus {
		var x float64
		for a := 0; a < n; a++ {
			if a == b {
				continue
			}
			if p.leftOf(a, b) {
				wa, _ := p.dims(a)
				x = math.Max(x, xs[a]+wa)
			}
		}
		xs[b] = x
	}
	// For y, "a below b" means a after b in gPlus, before in gMinus;
	// process in reverse gPlus order so below-predecessors resolve first.
	for idx := n - 1; idx >= 0; idx-- {
		b := p.gPlus[idx]
		var y float64
		for a := 0; a < n; a++ {
			if a == b {
				continue
			}
			if p.below(a, b) {
				_, ha := p.dims(a)
				y = math.Max(y, ys[a]+ha)
			}
		}
		ys[b] = y
	}
	return xs, ys
}

// leftOf reports whether a is constrained left of b.
func (p *pair) leftOf(a, b int) bool {
	return p.posPlus[a] < p.posPlus[b] && p.posMinus[a] < p.posMinus[b]
}

// below reports whether a is constrained below b.
func (p *pair) below(a, b int) bool {
	return p.posPlus[a] > p.posPlus[b] && p.posMinus[a] < p.posMinus[b]
}

func (p *pair) swapIn(seq []int, pos []int, i, j int) {
	seq[i], seq[j] = seq[j], seq[i]
	pos[seq[i]] = i
	pos[seq[j]] = j
}

func (p *pair) perturb(rng *rand.Rand) {
	n := len(p.gPlus)
	if n == 1 {
		p.rot[0] = !p.rot[0]
		return
	}
	i, j := rng.Intn(n), rng.Intn(n)
	for j == i {
		j = rng.Intn(n)
	}
	switch rng.Intn(3) {
	case 0: // swap in G+ only
		p.swapIn(p.gPlus, p.posPlus, i, j)
	case 1: // swap in both sequences
		p.swapIn(p.gPlus, p.posPlus, i, j)
		p.swapIn(p.gMinus, p.posMinus, i, j)
	default: // rotate a block
		p.rot[rng.Intn(n)] = !p.rot[rng.Intn(n)]
	}
}

// Options configures the sequence-pair compact placer.
type Options struct {
	// Seed drives the annealer deterministically.
	Seed int64
	// Steps is the SA perturbation budget (default 20000).
	Steps int
	// WirelengthWeight and AreaWeight blend the objectives
	// (defaults 0.7/0.3, matching the B*-tree baseline).
	WirelengthWeight float64
	AreaWeight       float64
}

// Result reports the packed placement and metrics.
type Result struct {
	Placement chiplet.Placement
	// BBoxMM bounds the packed blocks (with gap margins).
	BBoxMM geom.Rect
	// WirelengthMM is the wire-count-weighted Manhattan center wirelength
	// (the SA objective, not routed wirelength).
	WirelengthMM float64
}

// PlaceCompact packs sys compactly with a sequence-pair annealer, centering
// the result on the interposer.
func PlaceCompact(sys *chiplet.System, opt Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := len(sys.Chiplets)
	steps := opt.Steps
	if steps == 0 {
		steps = 20000
	}
	wlW, areaW := opt.WirelengthWeight, opt.AreaWeight
	if wlW == 0 && areaW == 0 {
		wlW, areaW = 0.7, 0.3
	}
	gap := sys.Gap()
	w := make([]float64, n)
	h := make([]float64, n)
	for i, c := range sys.Chiplets {
		w[i] = c.W + gap
		h[i] = c.H + gap
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cur := newPair(n, w, h)

	xs0, ys0 := cur.pack()
	wlScale := math.Max(1, wirelength(sys, cur, xs0, ys0))
	bw0, bh0 := bbox(cur, xs0, ys0)
	areaScale := math.Max(1, bw0*bh0)

	eval := func(pr *pair) float64 {
		xs, ys := pr.pack()
		bw, bh := bbox(pr, xs, ys)
		cost := wlW*wirelength(sys, pr, xs, ys)/wlScale + areaW*bw*bh/areaScale
		if over := bw - sys.InterposerW; over > 0 {
			cost += over * 100
		}
		if over := bh - sys.InterposerH; over > 0 {
			cost += over * 100
		}
		return cost
	}

	curCost := eval(cur)
	best, bestCost := cur.clone(), curCost
	temp := initialTemp(cur, rng, eval)
	decay := math.Pow(1e-4, 1/float64(steps))
	for it := 0; it < steps; it++ {
		nb := cur.clone()
		nb.perturb(rng)
		nbCost := eval(nb)
		if d := nbCost - curCost; d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			cur, curCost = nb, nbCost
			if curCost < bestCost {
				best, bestCost = cur.clone(), curCost
			}
		}
		temp *= decay
	}

	xs, ys := best.pack()
	bw, bh := bbox(best, xs, ys)
	if bw > sys.InterposerW+1e-9 || bh > sys.InterposerH+1e-9 {
		return nil, fmt.Errorf("seqpair: packing %.1fx%.1f mm exceeds the %gx%g mm interposer",
			bw, bh, sys.InterposerW, sys.InterposerH)
	}
	dx := (sys.InterposerW - bw) / 2
	dy := (sys.InterposerH - bh) / 2
	pl := chiplet.NewPlacement(n)
	for b := 0; b < n; b++ {
		dwb, dhb := best.dims(b)
		pl.Centers[b] = geom.Point{X: xs[b] + dwb/2 + dx, Y: ys[b] + dhb/2 + dy}
		pl.Rotated[b] = best.rot[b]
	}
	if err := sys.CheckPlacement(pl); err != nil {
		return nil, fmt.Errorf("seqpair: packed placement invalid: %w", err)
	}
	return &Result{
		Placement:    pl,
		BBoxMM:       geom.RectFromBounds(dx, dy, dx+bw, dy+bh),
		WirelengthMM: wirelength(sys, best, xs, ys),
	}, nil
}

func wirelength(sys *chiplet.System, p *pair, xs, ys []float64) float64 {
	var wl float64
	for _, ch := range sys.Channels {
		wi, hi := p.dims(ch.Src)
		wj, hj := p.dims(ch.Dst)
		ci := geom.Point{X: xs[ch.Src] + wi/2, Y: ys[ch.Src] + hi/2}
		cj := geom.Point{X: xs[ch.Dst] + wj/2, Y: ys[ch.Dst] + hj/2}
		wl += float64(ch.Wires) * ci.Manhattan(cj)
	}
	return wl
}

func bbox(p *pair, xs, ys []float64) (float64, float64) {
	var bw, bh float64
	for b := range xs {
		dwb, dhb := p.dims(b)
		bw = math.Max(bw, xs[b]+dwb)
		bh = math.Max(bh, ys[b]+dhb)
	}
	return bw, bh
}

func initialTemp(p *pair, rng *rand.Rand, eval func(*pair) float64) float64 {
	base := eval(p)
	var sum float64
	count := 0
	for i := 0; i < 30; i++ {
		nb := p.clone()
		nb.perturb(rng)
		if d := math.Abs(eval(nb) - base); d > 0 {
			sum += d
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return (sum / float64(count)) / math.Log(1/0.9)
}
