// Package perf implements the trace-driven performance model behind the
// paper's link-latency study (Section IV-B): "increasing the inter-chiplet
// link latency from 1 cycle to 2 cycles results in 5% to 18% (11% on
// average) performance loss, and increasing the latency from 1 cycle to
// 3 cycles results in 18% to 39% (25% on average) performance loss", measured
// over PARSEC, SPLASH2 and UHPC benchmarks.
//
// The authors ran full workloads on an architectural simulator; this package
// substitutes a synthetic-trace model (documented in DESIGN.md): an in-order
// core issuing a deterministic instruction mix in which a workload-specific
// fraction of instructions are remote inter-chiplet accesses. Each access
// makes a request and a reply traversal of the inter-chiplet link with 2-flit
// serialization, so one added cycle of link latency costs four cycles per
// access; independent accesses overlap through a bounded MLP window while
// dependent accesses stall the core. The workload parameters (remote access
// rate, dependent fraction, memory-level parallelism) span the published
// range of memory intensity across the three suites.
package perf

import (
	"fmt"
	"math/rand"
)

// Workload describes a synthetic benchmark trace.
type Workload struct {
	Name  string
	Suite string // "parsec", "splash2", or "uhpc"
	// RemoteRate is the fraction of instructions that issue a remote
	// inter-chiplet access.
	RemoteRate float64
	// DependentFrac is the fraction of remote accesses whose result the
	// next instruction needs immediately (blocking).
	DependentFrac float64
	// MLP is the maximum number of outstanding remote accesses.
	MLP int
	// ComputeCPI is the base cycles-per-instruction of non-memory work.
	ComputeCPI float64
}

// Workloads returns the benchmark set modeled on the three suites the paper
// uses. Parameters span low memory intensity (blackscholes-like) to high
// (ocean/stream-like).
func Workloads() []Workload {
	return []Workload{
		// PARSEC-like
		{Name: "blackscholes", Suite: "parsec", RemoteRate: 0.050, DependentFrac: 0.50, MLP: 4, ComputeCPI: 1.0},
		{Name: "bodytrack", Suite: "parsec", RemoteRate: 0.070, DependentFrac: 0.55, MLP: 4, ComputeCPI: 1.0},
		{Name: "canneal", Suite: "parsec", RemoteRate: 0.130, DependentFrac: 0.85, MLP: 2, ComputeCPI: 1.1},
		{Name: "streamcluster", Suite: "parsec", RemoteRate: 0.110, DependentFrac: 0.60, MLP: 4, ComputeCPI: 1.0},
		// SPLASH2-like
		{Name: "barnes", Suite: "splash2", RemoteRate: 0.060, DependentFrac: 0.55, MLP: 4, ComputeCPI: 1.0},
		{Name: "fft", Suite: "splash2", RemoteRate: 0.090, DependentFrac: 0.55, MLP: 6, ComputeCPI: 1.0},
		{Name: "lu", Suite: "splash2", RemoteRate: 0.065, DependentFrac: 0.55, MLP: 4, ComputeCPI: 1.0},
		{Name: "ocean", Suite: "splash2", RemoteRate: 0.130, DependentFrac: 0.70, MLP: 4, ComputeCPI: 1.1},
		// UHPC-like
		{Name: "graph", Suite: "uhpc", RemoteRate: 0.150, DependentFrac: 0.90, MLP: 2, ComputeCPI: 1.1},
		{Name: "stream", Suite: "uhpc", RemoteRate: 0.150, DependentFrac: 0.55, MLP: 8, ComputeCPI: 1.0},
		{Name: "stencil", Suite: "uhpc", RemoteRate: 0.100, DependentFrac: 0.60, MLP: 4, ComputeCPI: 1.0},
		{Name: "sort", Suite: "uhpc", RemoteRate: 0.080, DependentFrac: 0.65, MLP: 4, ComputeCPI: 1.0},
	}
}

// Config sets trace and link parameters.
type Config struct {
	// LinkLatencyCycles is the one-way inter-chiplet link latency in cycles
	// (the paper studies 1, 2 and 3).
	LinkLatencyCycles int
	// FixedRemoteCycles is the placement-independent part of a remote access
	// (cache controller, router, protocol), default 12.
	FixedRemoteCycles int
	// TraversalsPerAccess counts link crossings per access (request + reply,
	// default 2).
	TraversalsPerAccess int
	// FlitsPerMessage is the serialization factor per traversal (default 2).
	FlitsPerMessage int
	// Instructions is the trace length (default 200000).
	Instructions int
	// Seed drives trace jitter; the same seed reproduces the same trace.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LinkLatencyCycles == 0 {
		c.LinkLatencyCycles = 1
	}
	if c.FixedRemoteCycles == 0 {
		c.FixedRemoteCycles = 12
	}
	if c.TraversalsPerAccess == 0 {
		c.TraversalsPerAccess = 2
	}
	if c.FlitsPerMessage == 0 {
		c.FlitsPerMessage = 2
	}
	if c.Instructions == 0 {
		c.Instructions = 200000
	}
	return c
}

// newTraceRNG derives the deterministic per-trace random stream: the same
// workload, seed and latency configuration always replay the same trace.
func newTraceRNG(w Workload, cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ int64(len(w.Name))<<32 ^ int64(cfg.LinkLatencyCycles)))
}

// Result reports a simulated execution.
type Result struct {
	Cycles       float64
	Instructions int
	CPI          float64
	// RemoteAccesses is the number of inter-chiplet accesses issued.
	RemoteAccesses int
}

// Simulate runs the in-order trace model for one workload.
func Simulate(w Workload, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if w.RemoteRate < 0 || w.RemoteRate > 1 {
		return nil, fmt.Errorf("perf: workload %s: remote rate %v out of [0,1]", w.Name, w.RemoteRate)
	}
	if w.MLP < 1 {
		return nil, fmt.Errorf("perf: workload %s: MLP must be >= 1", w.Name)
	}
	rng := newTraceRNG(w, cfg)

	// Per-access latency in cycles.
	accessLat := float64(cfg.FixedRemoteCycles +
		cfg.TraversalsPerAccess*cfg.FlitsPerMessage*cfg.LinkLatencyCycles)

	// Outstanding remote accesses: completion times, bounded by MLP.
	outstanding := make([]float64, 0, w.MLP)
	cycle := 0.0
	remote := 0
	// Deterministic access schedule with jitter: an access every
	// 1/RemoteRate instructions on average.
	acc := 0.0
	for i := 0; i < cfg.Instructions; i++ {
		cycle += w.ComputeCPI
		acc += w.RemoteRate
		if acc < 1 {
			continue
		}
		acc -= 1
		remote++
		// Retire completed accesses.
		live := outstanding[:0]
		for _, c := range outstanding {
			if c > cycle {
				live = append(live, c)
			}
		}
		outstanding = live
		// If the MLP window is full, stall until the earliest completes.
		if len(outstanding) >= w.MLP {
			earliest := outstanding[0]
			for _, c := range outstanding[1:] {
				if c < earliest {
					earliest = c
				}
			}
			if earliest > cycle {
				cycle = earliest
			}
			live = outstanding[:0]
			for _, c := range outstanding {
				if c > cycle {
					live = append(live, c)
				}
			}
			outstanding = live
		}
		complete := cycle + accessLat
		if rng.Float64() < w.DependentFrac {
			// Blocking access: the core waits for the reply.
			cycle = complete
		} else {
			outstanding = append(outstanding, complete)
		}
	}
	// Drain.
	for _, c := range outstanding {
		if c > cycle {
			cycle = c
		}
	}
	return &Result{
		Cycles:         cycle,
		Instructions:   cfg.Instructions,
		CPI:            cycle / float64(cfg.Instructions),
		RemoteAccesses: remote,
	}, nil
}

// Slowdown returns the fractional performance loss of running w at
// linkLatency cycles relative to 1 cycle (e.g. 0.11 = 11% slower).
func Slowdown(w Workload, linkLatency int, cfg Config) (float64, error) {
	base := cfg
	base.LinkLatencyCycles = 1
	b, err := Simulate(w, base)
	if err != nil {
		return 0, err
	}
	cur := cfg
	cur.LinkLatencyCycles = linkLatency
	c, err := Simulate(w, cur)
	if err != nil {
		return 0, err
	}
	return (c.Cycles - b.Cycles) / b.Cycles, nil
}

// Study runs the full E5 experiment: per-workload slowdowns at the given
// link latencies, plus min/max/mean rows matching the paper's summary.
type Study struct {
	LinkLatency int
	PerWorkload map[string]float64
	Min, Max    float64
	Mean        float64
}

// RunStudy evaluates every workload at each link latency in latencies.
func RunStudy(latencies []int, cfg Config) ([]Study, error) {
	ws := Workloads()
	var out []Study
	for _, lat := range latencies {
		st := Study{LinkLatency: lat, PerWorkload: map[string]float64{}, Min: 1e9, Max: -1e9}
		for _, w := range ws {
			s, err := Slowdown(w, lat, cfg)
			if err != nil {
				return nil, err
			}
			st.PerWorkload[w.Name] = s
			if s < st.Min {
				st.Min = s
			}
			if s > st.Max {
				st.Max = s
			}
			st.Mean += s
		}
		st.Mean /= float64(len(ws))
		out = append(out, st)
	}
	return out, nil
}
