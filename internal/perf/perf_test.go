package perf

import (
	"math"
	"testing"
)

func TestWorkloadsCoverAllSuites(t *testing.T) {
	suites := map[string]int{}
	for _, w := range Workloads() {
		suites[w.Suite]++
	}
	for _, s := range []string{"parsec", "splash2", "uhpc"} {
		if suites[s] < 3 {
			t.Errorf("suite %s has %d workloads, want >= 3", s, suites[s])
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	w := Workloads()[0]
	a, err := Simulate(w, Config{Seed: 3, LinkLatencyCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(w, Config{Seed: 3, LinkLatencyCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("same seed, different cycles: %v vs %v", a.Cycles, b.Cycles)
	}
}

func TestSimulateBasics(t *testing.T) {
	w := Workloads()[0]
	res, err := Simulate(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI < w.ComputeCPI {
		t.Errorf("CPI %v below compute CPI %v", res.CPI, w.ComputeCPI)
	}
	wantAccesses := int(w.RemoteRate * float64(res.Instructions))
	if math.Abs(float64(res.RemoteAccesses-wantAccesses)) > float64(wantAccesses)/10+2 {
		t.Errorf("remote accesses %d, want about %d", res.RemoteAccesses, wantAccesses)
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := Workload{Name: "bad", RemoteRate: 2, MLP: 1}
	if _, err := Simulate(bad, Config{}); err == nil {
		t.Error("remote rate > 1 accepted")
	}
	bad2 := Workload{Name: "bad2", RemoteRate: 0.1, MLP: 0}
	if _, err := Simulate(bad2, Config{}); err == nil {
		t.Error("MLP 0 accepted")
	}
}

func TestSlowdownMonotonicInLatency(t *testing.T) {
	for _, w := range Workloads() {
		prev := 0.0
		for _, lat := range []int{2, 3, 4} {
			s, err := Slowdown(w, lat, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if s <= prev {
				t.Errorf("%s: slowdown at %d cycles (%v) not above %v", w.Name, lat, s, prev)
			}
			prev = s
		}
	}
}

func TestSlowdownAtUnitLatencyIsZero(t *testing.T) {
	for _, w := range Workloads() {
		s, err := Slowdown(w, 1, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s) > 0.01 {
			t.Errorf("%s: slowdown at base latency = %v, want ~0", w.Name, s)
		}
	}
}

func TestHigherIntensityHurtsMore(t *testing.T) {
	low := Workload{Name: "low", Suite: "x", RemoteRate: 0.02, DependentFrac: 0.5, MLP: 4, ComputeCPI: 1}
	high := Workload{Name: "high", Suite: "x", RemoteRate: 0.2, DependentFrac: 0.5, MLP: 4, ComputeCPI: 1}
	sLow, err := Slowdown(low, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sHigh, err := Slowdown(high, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sHigh <= sLow {
		t.Errorf("memory-heavy workload (%v) should slow more than light one (%v)", sHigh, sLow)
	}
}

// TestPaperBands is the E5 acceptance test: the study must reproduce the
// paper's reported bands in shape — 5-18% (avg 11%) at 2 cycles and
// 18-39% (avg 25%) at 3 cycles. We accept the means within +-3 points and
// the extremes within widened bands, since the original suites are replaced
// by synthetic traces.
func TestPaperBands(t *testing.T) {
	studies, err := RunStudy([]int{2, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2, s3 := studies[0], studies[1]
	if s2.Mean < 0.08 || s2.Mean > 0.14 {
		t.Errorf("1->2 mean slowdown %.1f%%, want ~11%%", s2.Mean*100)
	}
	if s2.Min < 0.03 || s2.Max > 0.21 {
		t.Errorf("1->2 band [%.1f%%, %.1f%%], want within [3%%, 21%%]", s2.Min*100, s2.Max*100)
	}
	if s3.Mean < 0.20 || s3.Mean > 0.30 {
		t.Errorf("1->3 mean slowdown %.1f%%, want ~25%%", s3.Mean*100)
	}
	if s3.Min < 0.10 || s3.Max > 0.42 {
		t.Errorf("1->3 band [%.1f%%, %.1f%%], want within [10%%, 42%%]", s3.Min*100, s3.Max*100)
	}
	// Every workload must be hurt more by 3 cycles than by 2.
	for name, v2 := range s2.PerWorkload {
		if s3.PerWorkload[name] <= v2 {
			t.Errorf("%s: 3-cycle slowdown not above 2-cycle", name)
		}
	}
}

func TestMLPReducesSlowdown(t *testing.T) {
	base := Workload{Name: "w", Suite: "x", RemoteRate: 0.15, DependentFrac: 0.0, MLP: 1, ComputeCPI: 1}
	wide := base
	wide.MLP = 8
	sNarrow, err := Slowdown(base, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sWide, err := Slowdown(wide, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sWide >= sNarrow {
		t.Errorf("more MLP should hide latency: wide %v vs narrow %v", sWide, sNarrow)
	}
}

func BenchmarkSimulate(b *testing.B) {
	w := Workloads()[7] // ocean: memory heavy
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, Config{LinkLatencyCycles: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
