package perf

import (
	"fmt"
	"sort"
)

// SimulateMixed runs the trace model with a mix of link latency classes:
// hist maps link latency (cycles) to the number of wires in that class, and
// each remote access is assigned a class in proportion (deterministically,
// via largest-remainder scheduling). This models a placement whose routed
// channels have heterogeneous lengths — exactly what a TAP-2.5D solution
// produces once wire length is converted to cycles by the signal model.
func SimulateMixed(w Workload, cfg Config, hist map[int]int) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(hist) == 0 {
		return Simulate(w, cfg)
	}
	classes := make([]int, 0, len(hist))
	total := 0
	for c, n := range hist {
		if c < 1 {
			return nil, fmt.Errorf("perf: latency class %d < 1 cycle", c)
		}
		if n < 0 {
			return nil, fmt.Errorf("perf: negative wire count for class %d", c)
		}
		if n > 0 {
			classes = append(classes, c)
			total += n
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("perf: empty latency histogram")
	}
	sort.Ints(classes)

	// Largest-remainder scheduler state.
	acc := make(map[int]float64, len(classes))

	nextClass := func() int {
		best := classes[0]
		for _, c := range classes {
			acc[c] += float64(hist[c]) / float64(total)
			if acc[c] > acc[best] {
				best = c
			}
		}
		acc[best] -= 1
		return best
	}

	// Mirror Simulate's core loop but with a per-access latency.
	if w.RemoteRate < 0 || w.RemoteRate > 1 {
		return nil, fmt.Errorf("perf: workload %s: remote rate %v out of [0,1]", w.Name, w.RemoteRate)
	}
	if w.MLP < 1 {
		return nil, fmt.Errorf("perf: workload %s: MLP must be >= 1", w.Name)
	}
	rng := newTraceRNG(w, cfg)

	outstanding := make([]float64, 0, w.MLP)
	cycle := 0.0
	remote := 0
	accIssue := 0.0
	for i := 0; i < cfg.Instructions; i++ {
		cycle += w.ComputeCPI
		accIssue += w.RemoteRate
		if accIssue < 1 {
			continue
		}
		accIssue -= 1
		remote++
		linkCycles := nextClass()
		accessLat := float64(cfg.FixedRemoteCycles +
			cfg.TraversalsPerAccess*cfg.FlitsPerMessage*linkCycles)

		live := outstanding[:0]
		for _, c := range outstanding {
			if c > cycle {
				live = append(live, c)
			}
		}
		outstanding = live
		if len(outstanding) >= w.MLP {
			earliest := outstanding[0]
			for _, c := range outstanding[1:] {
				if c < earliest {
					earliest = c
				}
			}
			if earliest > cycle {
				cycle = earliest
			}
			live = outstanding[:0]
			for _, c := range outstanding {
				if c > cycle {
					live = append(live, c)
				}
			}
			outstanding = live
		}
		complete := cycle + accessLat
		if rng.Float64() < w.DependentFrac {
			cycle = complete
		} else {
			outstanding = append(outstanding, complete)
		}
	}
	for _, c := range outstanding {
		if c > cycle {
			cycle = c
		}
	}
	return &Result{
		Cycles:         cycle,
		Instructions:   cfg.Instructions,
		CPI:            cycle / float64(cfg.Instructions),
		RemoteAccesses: remote,
	}, nil
}

// SlowdownMixed returns the fractional slowdown of workload w under the
// latency-class mix hist relative to an all-single-cycle network.
func SlowdownMixed(w Workload, cfg Config, hist map[int]int) (float64, error) {
	base := cfg
	base.LinkLatencyCycles = 1
	b, err := Simulate(w, base)
	if err != nil {
		return 0, err
	}
	m, err := SimulateMixed(w, cfg, hist)
	if err != nil {
		return 0, err
	}
	return (m.Cycles - b.Cycles) / b.Cycles, nil
}

// PlacementImpact is the end-to-end performance assessment of a placement:
// the slowdown its link-latency mix causes (mean over the workload suite)
// and the net speedup once the TDP headroom is spent on frequency.
type PlacementImpact struct {
	// MeanSlowdown is the average fractional slowdown across workloads due
	// to multi-cycle links (0.11 = 11% slower at equal frequency).
	MeanSlowdown float64
	// WorstSlowdown is the most affected workload's slowdown.
	WorstSlowdown float64
	// FrequencyUplift is the fractional clock increase enabled by the TDP
	// gain (power ~ f at fixed voltage, so uplift = TDP ratio - 1).
	FrequencyUplift float64
	// NetSpeedup is (1 + uplift) / (1 + mean slowdown) - 1: the overall
	// performance change of the placement versus the 1-cycle baseline at
	// nominal frequency.
	NetSpeedup float64
	// PerWorkload maps workload name to its slowdown.
	PerWorkload map[string]float64
}

// AssessPlacement computes the PlacementImpact for a link-latency histogram
// (wires per latency class) and a frequency uplift fraction. The histogram
// is typically produced by the signal model from routed arc lengths.
func AssessPlacement(hist map[int]int, freqUplift float64, cfg Config) (*PlacementImpact, error) {
	imp := &PlacementImpact{FrequencyUplift: freqUplift, PerWorkload: map[string]float64{}}
	ws := Workloads()
	for _, w := range ws {
		s, err := SlowdownMixed(w, cfg, hist)
		if err != nil {
			return nil, err
		}
		imp.PerWorkload[w.Name] = s
		imp.MeanSlowdown += s
		if s > imp.WorstSlowdown {
			imp.WorstSlowdown = s
		}
	}
	imp.MeanSlowdown /= float64(len(ws))
	imp.NetSpeedup = (1+freqUplift)/(1+imp.MeanSlowdown) - 1
	return imp, nil
}
