package perf

import (
	"math"
	"testing"
)

func TestSimulateMixedAllOneCycleMatchesBaseline(t *testing.T) {
	w := Workloads()[3]
	cfg := Config{Seed: 5}
	base, err := Simulate(w, cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := SimulateMixed(w, cfg, map[int]int{1: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mixed.Cycles-base.Cycles) > base.Cycles*0.001 {
		t.Errorf("all-1-cycle mix %v differs from baseline %v", mixed.Cycles, base.Cycles)
	}
}

func TestSimulateMixedEmptyHistFallsBack(t *testing.T) {
	w := Workloads()[0]
	if _, err := SimulateMixed(w, Config{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMixedValidation(t *testing.T) {
	w := Workloads()[0]
	if _, err := SimulateMixed(w, Config{}, map[int]int{0: 5}); err == nil {
		t.Error("latency class 0 accepted")
	}
	if _, err := SimulateMixed(w, Config{}, map[int]int{2: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := SimulateMixed(w, Config{}, map[int]int{2: 0}); err == nil {
		t.Error("all-zero histogram accepted")
	}
}

func TestSlowdownMixedBounds(t *testing.T) {
	// A mix of 1- and 3-cycle links must land between the pure cases.
	w := Workloads()[7] // ocean, memory-heavy
	cfg := Config{Seed: 2}
	s1, err := SlowdownMixed(w, cfg, map[int]int{1: 100})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Slowdown(w, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SlowdownMixed(w, cfg, map[int]int{1: 50, 3: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !(sm > s1 && sm < s3) {
		t.Errorf("mixed slowdown %v not between pure cases %v and %v", sm, s1, s3)
	}
}

func TestSlowdownMixedMonotonicInMix(t *testing.T) {
	w := Workloads()[5]
	cfg := Config{Seed: 2}
	prev := -1.0
	for _, slowFrac := range []int{0, 25, 50, 75, 100} {
		hist := map[int]int{}
		if slowFrac < 100 {
			hist[1] = 100 - slowFrac
		}
		if slowFrac > 0 {
			hist[2] = slowFrac
		}
		s, err := SlowdownMixed(w, cfg, hist)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev-1e-3 {
			t.Errorf("slowdown fell as slow links grew: %v after %v", s, prev)
		}
		prev = s
	}
}

func TestAssessPlacement(t *testing.T) {
	// 30% of wires at 2 cycles, TDP allows +30% frequency: net speedup must
	// be positive (the paper's argument that the TDP gain recovers the
	// wirelength cost).
	imp, err := AssessPlacement(map[int]int{1: 70, 2: 30}, 0.30, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if imp.MeanSlowdown <= 0 {
		t.Errorf("mean slowdown = %v, want > 0", imp.MeanSlowdown)
	}
	if imp.WorstSlowdown < imp.MeanSlowdown {
		t.Error("worst slowdown below mean")
	}
	if imp.NetSpeedup <= 0 {
		t.Errorf("net speedup = %v, want > 0 with +30%% frequency", imp.NetSpeedup)
	}
	if len(imp.PerWorkload) != len(Workloads()) {
		t.Error("per-workload map incomplete")
	}
	// Sanity of the arithmetic.
	want := (1+imp.FrequencyUplift)/(1+imp.MeanSlowdown) - 1
	if math.Abs(imp.NetSpeedup-want) > 1e-12 {
		t.Errorf("net speedup arithmetic wrong: %v vs %v", imp.NetSpeedup, want)
	}
}

func TestAssessPlacementNoUplift(t *testing.T) {
	imp, err := AssessPlacement(map[int]int{3: 100}, 0, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if imp.NetSpeedup >= 0 {
		t.Errorf("all-3-cycle links with no uplift should be a net loss, got %v", imp.NetSpeedup)
	}
}
