package signal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultWireValid(t *testing.T) {
	if err := DefaultWire().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	w := DefaultWire()
	w.ResistancePerMM = 0
	if w.Validate() == nil {
		t.Error("zero resistance accepted")
	}
	w = DefaultWire()
	w.SupplyV = -1
	if w.Validate() == nil {
		t.Error("negative supply accepted")
	}
}

func TestDelayQuadraticInLength(t *testing.T) {
	w := DefaultWire()
	d0 := w.DelayPS(0)
	if d0 != w.DriverDelayPS {
		t.Errorf("zero-length delay = %v, want driver delay %v", d0, w.DriverDelayPS)
	}
	// Subtracting the fixed part, delay must scale with L^2.
	f5 := w.DelayPS(5) - d0
	f10 := w.DelayPS(10) - d0
	if math.Abs(f10/f5-4) > 1e-9 {
		t.Errorf("flight time not quadratic: %v vs %v", f5, f10)
	}
}

func TestDelayMonotonic(t *testing.T) {
	w := DefaultWire()
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 50)), math.Abs(math.Mod(b, 50))
		if a > b {
			a, b = b, a
		}
		return w.DelayPS(a) <= w.DelayPS(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReachConsistentWithDelay(t *testing.T) {
	w := DefaultWire()
	for _, ghz := range []float64{0.5, 1, 2} {
		reach := w.ReachMM(ghz)
		if reach <= 0 {
			t.Fatalf("reach at %v GHz = %v", ghz, reach)
		}
		period := 1000 / ghz
		if d := w.DelayPS(reach); math.Abs(d-period) > 1e-6 {
			t.Errorf("delay at reach (%v mm) = %v ps, want one period %v ps", reach, d, period)
		}
		// Just beyond reach needs 2 cycles.
		if c := w.LatencyCycles(reach*1.01, ghz); c != 2 {
			t.Errorf("just beyond reach: %d cycles, want 2", c)
		}
		if c := w.LatencyCycles(reach*0.99, ghz); c != 1 {
			t.Errorf("just within reach: %d cycles, want 1", c)
		}
	}
	// Faster clocks have shorter reach.
	if !(w.ReachMM(2) < w.ReachMM(1)) {
		t.Error("reach should shrink with frequency")
	}
	if !math.IsInf(w.ReachMM(0), 1) {
		t.Error("zero clock should have infinite reach")
	}
	// A clock faster than the driver delay leaves no reach at all.
	fast := DefaultWire()
	fast.DriverDelayPS = 2000
	if fast.ReachMM(1) != 0 {
		t.Error("period below driver delay should give zero reach")
	}
}

func TestReachIsPlausible(t *testing.T) {
	// At 1 GHz a 65 nm interposer wire reaches roughly 10-15 mm unrepeated
	// — the scale that makes gas-station links necessary on a 45 mm
	// interposer (the point of Eqn. 9).
	reach := DefaultWire().ReachMM(1)
	if reach < 5 || reach > 25 {
		t.Errorf("1 GHz reach = %.1f mm, expected O(10 mm)", reach)
	}
}

func TestEnergyScalesWithLength(t *testing.T) {
	w := DefaultWire()
	e5, e10 := w.EnergyPJPerBit(5), w.EnergyPJPerBit(10)
	if e10 <= e5 {
		t.Errorf("energy not increasing: %v vs %v", e5, e10)
	}
	// Order of magnitude: interposer links are ~0.01-0.2 pJ/bit/mm range.
	if e10 < 0.001 || e10 > 10 {
		t.Errorf("10 mm energy = %v pJ/bit, implausible", e10)
	}
}

func TestLatencyCyclesDegenerate(t *testing.T) {
	w := DefaultWire()
	if c := w.LatencyCycles(100, 0); c != 1 {
		t.Errorf("zero clock should default to 1 cycle, got %d", c)
	}
}

func TestClassify(t *testing.T) {
	w := DefaultWire()
	reach := w.ReachMM(1)
	// Delay is quadratic in length: 1.2x reach lands in (1, 2] periods,
	// 2x reach in (3, 4] periods.
	lengths := []float64{reach / 2, reach * 1.2, reach * 2}
	wires := []int{100, 50, 10}
	lc, err := w.Classify(lengths, wires, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lc.CyclesHistogram[1] != 100 {
		t.Errorf("1-cycle wires = %d, want 100", lc.CyclesHistogram[1])
	}
	if lc.CyclesHistogram[2] != 50 {
		t.Errorf("2-cycle wires = %d, want 50", lc.CyclesHistogram[2])
	}
	if lc.CyclesHistogram[4] != 10 {
		t.Errorf("4-cycle wires = %d, want 10", lc.CyclesHistogram[4])
	}
	if lc.MaxCycles != 4 {
		t.Errorf("max cycles = %d, want 4", lc.MaxCycles)
	}
	wantMean := (1.0*100 + 2*50 + 4*10) / 160.0
	if math.Abs(lc.MeanCycles-wantMean) > 1e-9 {
		t.Errorf("mean cycles = %v, want %v", lc.MeanCycles, wantMean)
	}
	if lc.TotalEnergyPJPerTransfer <= 0 {
		t.Error("energy should be positive")
	}
}

func TestClassifyErrors(t *testing.T) {
	w := DefaultWire()
	if _, err := w.Classify([]float64{1}, []int{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := w.Classify([]float64{1}, []int{0}, 1); err == nil {
		t.Error("zero wires accepted")
	}
}

func TestClassifyEmpty(t *testing.T) {
	lc, err := DefaultWire().Classify(nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lc.MeanCycles != 0 || lc.MaxCycles != 0 {
		t.Errorf("empty classification should be zero: %+v", lc)
	}
}
