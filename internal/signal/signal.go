// Package signal models the electrical behaviour of inter-chiplet wires on a
// passive silicon interposer: RC delay, achievable single-cycle reach, and
// energy per bit. It supplies the physical grounding for the paper's link
// taxonomy — repeaterless non-pipelined links are limited in reach because a
// passive interposer has no transistors to repeat or latch signals, while
// 2-stage gas-station links "refuel" the signal on an intermediate chiplet
// and thereby double the reach at one extra cycle of latency (Coskun et al.,
// ICCAD'18, which the paper builds on).
//
// The model is the standard distributed-RC estimate for minimum-size
// interposer wires: delay(L) = t_drv + 0.38 * r * c * L^2 (Elmore delay of a
// distributed line) with typical 65 nm interposer BEOL parameters. Values
// are deliberately conservative; what matters downstream is the *relative*
// classification of routed arcs into 1-, 2- and 3-cycle links.
package signal

import (
	"fmt"
	"math"
)

// WireParams describes the interposer wire technology.
type WireParams struct {
	// ResistancePerMM is the wire resistance in ohm/mm.
	ResistancePerMM float64
	// CapacitancePerMM is the wire capacitance in fF/mm.
	CapacitancePerMM float64
	// DriverDelayPS is the fixed driver + receiver delay in picoseconds.
	DriverDelayPS float64
	// DriverEnergyPJ is the fixed per-transition driver energy in pJ.
	DriverEnergyPJ float64
	// SupplyV is the signaling voltage.
	SupplyV float64
	// ActivityFactor is the average switching activity per bit.
	ActivityFactor float64
}

// DefaultWire returns typical 65 nm passive-interposer BEOL parameters
// (minimum-pitch intermediate metal, as in the assemblies the paper cites).
func DefaultWire() WireParams {
	return WireParams{
		ResistancePerMM:  75,   // ohm/mm
		CapacitancePerMM: 200,  // fF/mm
		DriverDelayPS:    60,   // ps
		DriverEnergyPJ:   0.05, // pJ
		SupplyV:          1.0,
		ActivityFactor:   0.15,
	}
}

// Validate checks for physically meaningless parameters.
func (w WireParams) Validate() error {
	if w.ResistancePerMM <= 0 || w.CapacitancePerMM <= 0 {
		return fmt.Errorf("signal: non-positive RC parameters")
	}
	if w.SupplyV <= 0 {
		return fmt.Errorf("signal: non-positive supply voltage")
	}
	return nil
}

// DelayPS returns the end-to-end delay of an unrepeated wire of the given
// length (mm) in picoseconds: driver delay plus distributed-RC (Elmore)
// flight time.
func (w WireParams) DelayPS(lengthMM float64) float64 {
	if lengthMM <= 0 {
		return w.DriverDelayPS
	}
	// r [ohm/mm] * c [fF/mm] * L^2 [mm^2] -> fs; 0.38 distributed factor.
	rcFS := 0.38 * w.ResistancePerMM * w.CapacitancePerMM * lengthMM * lengthMM
	return w.DriverDelayPS + rcFS/1000
}

// EnergyPJPerBit returns the average switching energy per transported bit
// for a wire of the given length (mm).
func (w WireParams) EnergyPJPerBit(lengthMM float64) float64 {
	capF := w.CapacitancePerMM * lengthMM * 1e-15  // F
	dynamic := capF * w.SupplyV * w.SupplyV * 1e12 // pJ per transition
	return w.ActivityFactor * (dynamic + w.DriverEnergyPJ)
}

// ReachMM returns the maximum unrepeated wire length (mm) whose delay fits
// within one cycle at the given clock frequency.
func (w WireParams) ReachMM(clockGHz float64) float64 {
	if clockGHz <= 0 {
		return math.Inf(1)
	}
	periodPS := 1000 / clockGHz
	if periodPS <= w.DriverDelayPS {
		return 0
	}
	rc := 0.38 * w.ResistancePerMM * w.CapacitancePerMM / 1000 // ps per mm^2
	return math.Sqrt((periodPS - w.DriverDelayPS) / rc)
}

// LatencyCycles classifies a link of the given length (mm) at the given
// clock: the number of cycles a signal needs end to end on a passive
// interposer. A repeaterless link cannot be pipelined, so a wire longer than
// the single-cycle reach simply takes ceil(delay/period) cycles; gasStation
// links are latched at the intermediate chiplet, so each hop is classified
// separately by the caller.
func (w WireParams) LatencyCycles(lengthMM, clockGHz float64) int {
	if clockGHz <= 0 {
		return 1
	}
	periodPS := 1000 / clockGHz
	cycles := int(math.Ceil(w.DelayPS(lengthMM) / periodPS))
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}

// LinkClass summarizes the latency classification of a set of routed arcs.
type LinkClass struct {
	// CyclesHistogram[k] counts wires whose link takes k cycles.
	CyclesHistogram map[int]int
	// MaxCycles is the slowest link's latency.
	MaxCycles int
	// MeanCycles is the wire-weighted average link latency.
	MeanCycles float64
	// TotalEnergyPJPerTransfer is the energy of moving one bit over every
	// wire once.
	TotalEnergyPJPerTransfer float64
}

// Classify buckets routed arc lengths (mm, one entry per wire bundle with
// its wire count) into link latency classes at the given clock.
func (w WireParams) Classify(lengths []float64, wires []int, clockGHz float64) (*LinkClass, error) {
	if len(lengths) != len(wires) {
		return nil, fmt.Errorf("signal: %d lengths vs %d wire counts", len(lengths), len(wires))
	}
	lc := &LinkClass{CyclesHistogram: map[int]int{}}
	totalWires := 0
	var weighted float64
	for i, l := range lengths {
		if wires[i] <= 0 {
			return nil, fmt.Errorf("signal: non-positive wire count at %d", i)
		}
		cyc := w.LatencyCycles(l, clockGHz)
		lc.CyclesHistogram[cyc] += wires[i]
		if cyc > lc.MaxCycles {
			lc.MaxCycles = cyc
		}
		weighted += float64(cyc) * float64(wires[i])
		totalWires += wires[i]
		lc.TotalEnergyPJPerTransfer += w.EnergyPJPerBit(l) * float64(wires[i])
	}
	if totalWires > 0 {
		lc.MeanCycles = weighted / float64(totalWires)
	}
	return lc, nil
}
