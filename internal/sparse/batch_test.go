package sparse

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
)

// batchProblem builds a thermal-stack-like system with nrhs distinct
// right-hand sides and warm-start guesses.
func batchProblem(g, l, nrhs int, seed int64) (*CSR, [][]float64, [][]float64) {
	a := grid3D(g, l)
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, nrhs)
	bs := make([][]float64, nrhs)
	for c := range bs {
		xs[c] = make([]float64, a.N)
		bs[c] = make([]float64, a.N)
		for i := 0; i < a.N; i++ {
			xs[c][i] = 0.1 * rng.NormFloat64()
			bs[c][i] = rng.Float64()
		}
	}
	return a, xs, bs
}

func cloneCols(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for c := range xs {
		out[c] = append([]float64(nil), xs[c]...)
	}
	return out
}

// forceBlocked makes SolveCGBatch pick its blocked engine even on a
// single-core host: the engine switch tests parallelWorkers, which needs
// GOMAXPROCS ≥ 2 and a system of at least ParallelThresholdRows rows. Tests
// using it must pair it with a system of ≥ 2·parallelGrainRows rows.
func forceBlocked(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestSolveCGBatchBitIdenticalToSerial: the batch contract — every column's
// solution and iteration count must match solving that column alone, bit for
// bit, on both the Jacobi and the multigrid-preconditioned path. The blocked
// engine needs a system above the parallel threshold, so the grid here is
// 32×32×16 (16384 nodes); the sequential engine variant runs small.
func TestSolveCGBatchBitIdenticalToSerial(t *testing.T) {
	for _, tc := range []struct {
		name    string
		blocked bool
		g, l    int
		pre     func(t *testing.T, a *CSR, g, l int) Preconditioner
	}{
		{"sequential-jacobi", false, 16, 3, nil},
		{"sequential-multigrid", false, 16, 3, buildMG},
		{"blocked-jacobi", true, 32, 16, nil},
		{"blocked-multigrid", true, 32, 16, buildMG},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.blocked {
				forceBlocked(t)
			}
			a, xs, bs := batchProblem(tc.g, tc.l, 6, 42)
			opt := CGOptions{Tol: 1e-9}
			if tc.pre != nil {
				opt.Precond = tc.pre(t, a, tc.g, tc.l)
			}

			serialX := cloneCols(xs)
			serialIt := make([]int, len(bs))
			cg := NewCGSolver(a)
			for c := range bs {
				it, err := cg.Solve(serialX[c], bs[c], opt)
				if err != nil {
					t.Fatal(err)
				}
				serialIt[c] = it
			}

			batchX := cloneCols(xs)
			batchIt, err := SolveCGBatch(context.Background(), a, batchX, bs, opt)
			if err != nil {
				t.Fatal(err)
			}
			for c := range bs {
				if batchIt[c] != serialIt[c] {
					t.Fatalf("column %d: batch %d iterations, serial %d", c, batchIt[c], serialIt[c])
				}
				for i := range serialX[c] {
					if batchX[c][i] != serialX[c][i] {
						t.Fatalf("column %d x[%d]: batch %v, serial %v", c, i, batchX[c][i], serialX[c][i])
					}
				}
			}
		})
	}
}

func buildMG(t *testing.T, a *CSR, g, l int) Preconditioner {
	t.Helper()
	mg, err := NewMultigrid(a, GridGeometry{Layers: l, Nx: g, Ny: g}, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

// TestSolveCGBatchMixedConvergence: zero right-hand sides and already-
// converged warm starts drop out at iteration 0 without disturbing the
// columns that still have work to do, in the blocked engine.
func TestSolveCGBatchMixedConvergence(t *testing.T) {
	forceBlocked(t)
	a, xs, bs := batchProblem(32, 16, 4, 7)
	// Column 1: zero RHS. Column 2: warm start at the exact solution.
	for i := range bs[1] {
		bs[1][i] = 0
		xs[1][i] = 0.5
	}
	exact := make([]float64, a.N)
	if _, err := SolveCG(a, exact, bs[2], CGOptions{Tol: 1e-14}); err != nil {
		t.Fatal(err)
	}
	copy(xs[2], exact)

	want := cloneCols(xs)
	cg := NewCGSolver(a)
	for c := range bs {
		if _, err := cg.Solve(want[c], bs[c], CGOptions{Tol: 1e-9}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := SolveCGBatch(context.Background(), a, xs, bs, CGOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if it[1] != 0 {
		t.Fatalf("zero-RHS column took %d iterations, want 0", it[1])
	}
	if it[2] != 0 {
		t.Fatalf("pre-converged column took %d iterations, want 0", it[2])
	}
	for c := range bs {
		for i := range want[c] {
			if xs[c][i] != want[c][i] {
				t.Fatalf("column %d x[%d]: batch %v, serial %v", c, i, xs[c][i], want[c][i])
			}
		}
	}
}

func TestSolveCGBatchSingleColumnDelegates(t *testing.T) {
	a, rhs := chainSystem(128)
	x := make([]float64, a.N)
	want := make([]float64, a.N)
	itW, err := SolveCG(a, want, rhs, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	it, err := SolveCGBatch(context.Background(), a, [][]float64{x}, [][]float64{rhs}, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(it) != 1 || it[0] != itW {
		t.Fatalf("iterations %v, want [%d]", it, itW)
	}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveCGBatchDimensionMismatch(t *testing.T) {
	a, rhs := chainSystem(32)
	if _, err := SolveCGBatch(context.Background(), a, [][]float64{make([]float64, 31), make([]float64, 32)},
		[][]float64{rhs, rhs}, CGOptions{}); err == nil {
		t.Fatal("mismatched column accepted")
	}
	if _, err := SolveCGBatch(context.Background(), a, [][]float64{make([]float64, 32)},
		[][]float64{rhs, rhs}, CGOptions{}); err == nil {
		t.Fatal("xs/bs length mismatch accepted")
	}
	if it, err := SolveCGBatch(context.Background(), a, nil, nil, CGOptions{}); it != nil || err != nil {
		t.Fatalf("empty batch returned (%v, %v)", it, err)
	}
}

func TestSolveCGBatchCanceled(t *testing.T) {
	for _, blocked := range []bool{false, true} {
		name := "sequential"
		n := 512
		if blocked {
			name = "blocked"
			n = ParallelThresholdRows + parallelGrainRows
		}
		t.Run(name, func(t *testing.T) {
			if blocked {
				forceBlocked(t)
			}
			a, rhs := chainSystem(n)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			xs := [][]float64{make([]float64, a.N), make([]float64, a.N)}
			_, err := SolveCGBatch(ctx, a, xs, [][]float64{rhs, rhs}, CGOptions{Tol: 1e-12})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
		})
	}
}

func TestSolveCGBatchNoConvergence(t *testing.T) {
	for _, blocked := range []bool{false, true} {
		name := "sequential"
		n := 512
		if blocked {
			name = "blocked"
			n = ParallelThresholdRows + parallelGrainRows
		}
		t.Run(name, func(t *testing.T) {
			if blocked {
				forceBlocked(t)
			}
			a, rhs := chainSystem(n)
			xs := [][]float64{make([]float64, a.N), make([]float64, a.N)}
			it, err := SolveCGBatch(context.Background(), a, xs, [][]float64{rhs, rhs},
				CGOptions{Tol: 1e-14, MaxIter: 3})
			if !errors.Is(err, ErrNoConvergence) {
				t.Fatalf("error %v does not wrap ErrNoConvergence", err)
			}
			for c, got := range it {
				if got != 3 {
					t.Fatalf("column %d reported %d iterations, want the 3-iteration budget", c, got)
				}
			}
		})
	}
}

// The paired benchmarks compare the batched path against B sequential
// independent solves at B=8 (the service/replica batch width). The
// product-level ≥1.5× throughput assertion lives in the thermal package
// (TestSolveBatchThroughput), where shared assembly and hierarchy reuse —
// the real wins — are in play.
func BenchmarkSolveCGBatch8(b *testing.B) {
	a, xs, bs := batchProblem(64, 6, 8, 9)
	opt := CGOptions{Tol: 1e-8}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		work := cloneCols(xs)
		if _, err := SolveCGBatch(context.Background(), a, work, bs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveCGSerial8(b *testing.B) {
	a, xs, bs := batchProblem(64, 6, 8, 9)
	opt := CGOptions{Tol: 1e-8}
	cg := NewCGSolver(a)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		work := cloneCols(xs)
		for c := range bs {
			if _, err := cg.Solve(work[c], bs[c], opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}
