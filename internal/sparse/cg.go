package sparse

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"unsafe"

	"tap25d/internal/faultinject"
)

// ParallelThresholdRows is the matrix size above which CGSolver partitions
// its matrix-vector products across goroutines. Small systems stay serial:
// below this size the per-product goroutine wake-up costs more than the
// arithmetic it distributes. Row partitioning computes each row exactly as
// the serial kernel does, so parallel products are bit-identical to serial
// ones for any worker count.
var ParallelThresholdRows = 16384

// parallelGrainRows is the row count each parallel worker should own. The
// worker count is derived from the matrix size instead of jumping straight to
// GOMAXPROCS at the threshold: a conductance-matrix row holds ~7 stored
// entries, so 8192 rows are roughly one megabyte of matrix data and tens of
// microseconds of work — enough to amortize a goroutine wake-up (~µs) many
// times over. A fixed GOMAXPROCS fan-out is mis-sized at both ends: at the
// 16384-row threshold it hands each of (say) 16 workers a ~1000-row sliver
// dominated by scheduling, while a 256×256 thermal grid (524288 rows) has
// plenty of rows to feed every core at full grain.
const parallelGrainRows = 8192

// parallelWorkers returns the worker count for n-row matrix-vector products:
// one worker per parallelGrainRows rows, capped at GOMAXPROCS, and serial
// below ParallelThresholdRows. The answer only picks a row partition, which
// is bit-identical to serial for any count.
func parallelWorkers(n int) int {
	if n < ParallelThresholdRows {
		return 1
	}
	w := n / parallelGrainRows
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 2 {
		return 1
	}
	return w
}

// MulVecParallel computes y = A·x with rows partitioned across workers
// goroutines. Each row's dot product runs exactly as in the serial kernel, so
// the result is bit-identical to MulVec regardless of worker count. workers
// values below 2 fall back to the serial path.
func (m *CSR) MulVecParallel(y, x []float64, workers int) {
	if workers > m.N {
		workers = m.N
	}
	if workers < 2 {
		m.MulVec(y, x)
		return
	}
	chunk := (m.N + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m.N; lo += chunk {
		hi := lo + chunk
		if hi > m.N {
			hi = m.N
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulVecRange(y, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// CGSolver is a reusable Jacobi-preconditioned conjugate-gradient solver
// bound to one matrix. It exists because the placer's inner loop calls the
// solver thousands of times on a matrix whose pattern never changes: the
// solver allocates its scratch vectors (residual, preconditioned residual,
// search direction, A·p product, inverse diagonal) once, and locates the
// diagonal value slots once, instead of re-deriving all of them on every
// SolveCG call. Values of the bound matrix may change freely between Solve
// calls (the diagonal is re-read each time); the pattern must not.
//
// A CGSolver is not safe for concurrent use.
type CGSolver struct {
	a        *CSR
	diagSlot []int32 // per-row index into a.Val of the diagonal, -1 if absent

	invD, r, z, p, ap []float64
	workers           int
}

// NewCGSolver prepares a reusable solver for a. The pattern of a is frozen
// from the solver's point of view; its values may be updated in place between
// Solve calls.
func NewCGSolver(a *CSR) *CGSolver {
	n := a.N
	s := &CGSolver{
		a:        a,
		diagSlot: make([]int32, n),
		invD:     make([]float64, n),
		r:        make([]float64, n),
		z:        make([]float64, n),
		p:        make([]float64, n),
		ap:       make([]float64, n),
		workers:  1,
	}
	for i := 0; i < n; i++ {
		s.diagSlot[i] = -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.Col[k]) == i {
				s.diagSlot[i] = k
				break
			}
		}
	}
	s.workers = parallelWorkers(n)
	return s
}

// mulVec computes y = A·x with the solver's worker setting.
func (s *CGSolver) mulVec(y, x []float64) {
	if s.workers > 1 {
		s.a.MulVecParallel(y, x, s.workers)
	} else {
		s.a.MulVec(y, x)
	}
}

// mulVecDot computes y = A·x and returns dot(w, y). The dot accumulates in
// row order, so the result is bit-identical to a separate MulVec followed by
// a serial dot product.
//
// The serial path gathers through raw pointers: the column index c is
// data-dependent, so the x[c] bounds check cannot be proven away, and this
// loop is the single hottest in the annealer (it runs once per CG iteration
// over every stored entry). Safety rests on the CSR invariants — RowPtr
// ascending within [0, nnz], every Col entry in [0, N) — which Build and
// BuildFixed establish and nothing mutates.
func (s *CGSolver) mulVecDot(y, x, w []float64) float64 {
	a := s.a
	if s.workers > 1 {
		a.MulVecParallel(y, x, s.workers)
		var d float64
		for i, v := range y {
			d += w[i] * v
		}
		return d
	}
	n := a.N
	rowPtr := a.RowPtr
	colp := unsafe.Pointer(unsafe.SliceData(a.Col))
	valp := unsafe.Pointer(unsafe.SliceData(a.Val))
	xp := unsafe.Pointer(unsafe.SliceData(x))
	y = y[:n]
	w = w[:n]
	var d float64
	lo := int(rowPtr[0])
	for i := 0; i < n; i++ {
		hi := int(rowPtr[i+1])
		var sum float64
		k := lo
		// Two elements per trip halves the loop bookkeeping; the two adds
		// into sum stay sequential, so the accumulation order — and thus the
		// rounded result — is exactly that of the one-element loop.
		for ; k+1 < hi; k += 2 {
			c0 := int(*(*int32)(unsafe.Add(colp, uintptr(k)*4)))
			c1 := int(*(*int32)(unsafe.Add(colp, uintptr(k+1)*4)))
			v0 := *(*float64)(unsafe.Add(valp, uintptr(k)*8))
			v1 := *(*float64)(unsafe.Add(valp, uintptr(k+1)*8))
			sum += v0 * *(*float64)(unsafe.Add(xp, uintptr(c0)*8))
			sum += v1 * *(*float64)(unsafe.Add(xp, uintptr(c1)*8))
		}
		if k < hi {
			c := int(*(*int32)(unsafe.Add(colp, uintptr(k)*4)))
			sum += *(*float64)(unsafe.Add(valp, uintptr(k)*8)) *
				*(*float64)(unsafe.Add(xp, uintptr(c)*8))
		}
		y[i] = sum
		d += w[i] * sum
		lo = hi
	}
	return d
}

// Solve solves A·x = b with x as the warm-start initial guess, overwriting x
// with the solution and returning the iteration count. The arithmetic —
// preconditioning, update order, convergence checks — reproduces SolveCG
// exactly, so a reused CGSolver returns bit-identical solutions; only the
// scratch allocations and diagonal extraction are hoisted out of the call.
func (s *CGSolver) Solve(x, b []float64, opt CGOptions) (int, error) {
	return s.SolveContext(context.Background(), x, b, opt)
}

// cancelCheckInterval is how many CG iterations run between ctx.Err() polls.
// Thermal solves warm-started by the annealer converge in a handful of
// iterations, so a modest interval keeps cancellation latency at a few
// matrix-vector products while adding no measurable per-iteration cost.
const cancelCheckInterval = 32

// SolveContext is Solve with cooperative cancellation: the outer CG loop
// polls ctx every cancelCheckInterval iterations and returns ctx.Err()
// (wrapped) when the context is done, leaving x holding the current iterate.
// The polling does not touch the arithmetic, so an uncancelled SolveContext
// is bit-identical to Solve.
func (s *CGSolver) SolveContext(ctx context.Context, x, b []float64, opt CGOptions) (int, error) {
	a := s.a
	n := a.N
	if len(x) != n || len(b) != n {
		return 0, fmt.Errorf("sparse: SolveCG dimension mismatch: n=%d len(x)=%d len(b)=%d", n, len(x), len(b))
	}
	if err := opt.Inject.Hit(faultinject.PointCGSolve); err != nil {
		// An injected fault presents exactly like exhausting the iteration
		// budget, so the recovery ladder above treats it as the real thing.
		return 0, fmt.Errorf("sparse: %w: %w", ErrNoConvergence, err)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	// A caller-supplied preconditioner takes a separate code path: the default
	// Jacobi application is fused into the x/r update loop below, and keeping
	// that loop untouched keeps the nil-Precond path bit-identical to every
	// solve performed before the hook existed.
	if opt.Precond != nil {
		return s.solvePrecond(ctx, x, b, opt, tol, maxIter)
	}

	// Refresh the Jacobi preconditioner from the (possibly updated) diagonal:
	// O(N) via the precomputed slots instead of an O(nnz) scan.
	invD := s.invD
	for i, slot := range s.diagSlot {
		d := 0.0
		if slot >= 0 {
			d = a.Val[slot]
		}
		if d <= 0 {
			return 0, fmt.Errorf("sparse: non-positive diagonal at row %d (%g); matrix not SPD", i, d)
		}
		invD[i] = 1 / d
	}

	x, b = x[:n], b[:n]
	r, z, p, ap := s.r[:n], s.z[:n], s.p[:n], s.ap[:n]
	invD = invD[:n]

	s.mulVec(r, x)
	var bnorm, rnorm0 float64
	for i := range r {
		r[i] = b[i] - r[i]
		bnorm += b[i] * b[i]
		rnorm0 += r[i] * r[i]
	}
	bnorm = math.Sqrt(bnorm)
	if opt.OnIteration != nil {
		opt.OnIteration(0, math.Sqrt(rnorm0))
	}
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	if math.Sqrt(rnorm0) <= tol*bnorm {
		return 0, nil // warm start already converged
	}

	var rz float64
	for i := range z {
		z[i] = invD[i] * r[i]
		rz += r[i] * z[i]
	}
	copy(p, z)

	for it := 1; it <= maxIter; it++ {
		if it%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return it, fmt.Errorf("sparse: CG canceled after %d iterations: %w", it-1, err)
			}
		}
		pap := s.mulVecDot(ap, p, p)
		if pap <= 0 {
			return it, fmt.Errorf("sparse: p'Ap = %g <= 0; matrix not SPD", pap)
		}
		alpha := rz / pap
		// One fused pass updates x and r and accumulates both rnorm and the
		// next r·z. Each accumulator still sums in ascending index order, so
		// the values match the unfused two-pass form bit for bit; on the
		// converging iteration the z/rzNew work is computed and discarded.
		var rnorm, rzNew float64
		for i := range x {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rnorm += ri * ri
			zi := invD[i] * ri
			z[i] = zi
			rzNew += ri * zi
		}
		res := math.Sqrt(rnorm)
		if opt.OnIteration != nil {
			opt.OnIteration(it, res)
		}
		if res <= tol*bnorm {
			return it, nil
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return maxIter, ErrNoConvergence
}

// solvePrecond is the conjugate-gradient loop with a caller-supplied
// preconditioner M (opt.Precond): z = M⁻¹r is obtained by Apply instead of
// the fused Jacobi scaling. The structure mirrors SolveContext — same
// residual bookkeeping, same convergence test, same cancellation cadence —
// but the preconditioner application is necessarily a separate pass, so
// iterates are not expected to match the Jacobi path bit for bit (they solve
// the same system to the same tolerance by a different Krylov trajectory).
func (s *CGSolver) solvePrecond(ctx context.Context, x, b []float64, opt CGOptions, tol float64, maxIter int) (int, error) {
	n := s.a.N
	pre := opt.Precond
	x, b = x[:n], b[:n]
	r, z, p, ap := s.r[:n], s.z[:n], s.p[:n], s.ap[:n]

	s.mulVec(r, x)
	var bnorm, rnorm0 float64
	for i := range r {
		r[i] = b[i] - r[i]
		bnorm += b[i] * b[i]
		rnorm0 += r[i] * r[i]
	}
	bnorm = math.Sqrt(bnorm)
	if opt.OnIteration != nil {
		opt.OnIteration(0, math.Sqrt(rnorm0))
	}
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	if math.Sqrt(rnorm0) <= tol*bnorm {
		return 0, nil
	}

	pre.Apply(z, r)
	var rz float64
	for i := range z {
		rz += r[i] * z[i]
	}
	if rz <= 0 {
		return 0, fmt.Errorf("sparse: r'M⁻¹r = %g <= 0; preconditioner not positive definite", rz)
	}
	copy(p, z)

	for it := 1; it <= maxIter; it++ {
		if it%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return it, fmt.Errorf("sparse: CG canceled after %d iterations: %w", it-1, err)
			}
		}
		pap := s.mulVecDot(ap, p, p)
		if pap <= 0 {
			return it, fmt.Errorf("sparse: p'Ap = %g <= 0; matrix not SPD", pap)
		}
		alpha := rz / pap
		var rnorm float64
		for i := range x {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			rnorm += ri * ri
		}
		res := math.Sqrt(rnorm)
		if opt.OnIteration != nil {
			opt.OnIteration(it, res)
		}
		if res <= tol*bnorm {
			return it, nil
		}
		pre.Apply(z, r)
		var rzNew float64
		for i := range z {
			rzNew += r[i] * z[i]
		}
		if rzNew <= 0 {
			return it, fmt.Errorf("sparse: r'M⁻¹r = %g <= 0; preconditioner not positive definite", rzNew)
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return maxIter, ErrNoConvergence
}
