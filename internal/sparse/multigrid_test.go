package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// stackGeo pairs grid3D's node layout (z*g*g + i*g + j) with the
// GridGeometry the multigrid builder expects.
func stackGeo(g, l int) GridGeometry { return GridGeometry{Layers: l, Nx: g, Ny: g} }

func TestMultigridGeometryValidation(t *testing.T) {
	a := grid3D(8, 2)
	if _, err := NewMultigrid(a, GridGeometry{Layers: 3, Nx: 8, Ny: 8}, MGOptions{}); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
	if _, err := NewMultigrid(a, GridGeometry{}, MGOptions{}); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

func TestMultigridLevels(t *testing.T) {
	// 64 → 32 → 16 → 8 → 4: five levels; coarsest has 4·4·2 = 32 nodes.
	mg, err := NewMultigrid(grid3D(64, 2), stackGeo(64, 2), MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mg.Levels(); got != 5 {
		t.Fatalf("Levels() = %d, want 5", got)
	}
	// A 6×6 plane cannot coarsen at all (below the 8-cell floor).
	mg, err = NewMultigrid(grid3D(6, 2), stackGeo(6, 2), MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mg.Levels(); got != 1 {
		t.Fatalf("Levels() on 6×6 = %d, want 1 (coarsest-only)", got)
	}
}

// TestMultigridGalerkinConsistency: P reproduces constants, so the Galerkin
// operator must satisfy A_c·1 = Pᵀ·(A·1) exactly up to rounding — the
// boundary conductances of the fine operator reappear, restricted, on every
// coarse level.
func TestMultigridGalerkinConsistency(t *testing.T) {
	a := grid3D(16, 3)
	mg, err := NewMultigrid(a, stackGeo(16, 3), MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fineOnes := make([]float64, a.N)
	for i := range fineOnes {
		fineOnes[i] = 1
	}
	fineRow := make([]float64, a.N)
	a.MulVec(fineRow, fineOnes)
	for l := 1; l < mg.Levels(); l++ {
		lev := mg.s.levels[l]
		ac := mg.lv[l].a
		// want = Pᵀ·fineRow restricted level by level.
		want := make([]float64, lev.n)
		for I := 0; I < lev.n; I++ {
			var s float64
			for q := lev.ptPtr[I]; q < lev.ptPtr[I+1]; q++ {
				s += lev.ptW[q] * fineRow[lev.ptCol[q]]
			}
			want[I] = s
		}
		ones := make([]float64, lev.n)
		for i := range ones {
			ones[i] = 1
		}
		got := make([]float64, lev.n)
		ac.MulVec(got, ones)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("level %d: (A_c·1)[%d] = %g, want %g", l, i, got[i], want[i])
			}
		}
		fineRow, fineOnes = want, ones
	}
}

// TestMultigridApplySPD: the V-cycle must be a symmetric positive-definite
// operator — u·M⁻¹v = v·M⁻¹u and r·M⁻¹r > 0 — or PCG's theory (and its
// rz > 0 guard) breaks down.
func TestMultigridApplySPD(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  MGOptions
	}{
		{"cholesky-coarsest", MGOptions{}},
		{"gs-fallback-coarsest", MGOptions{CoarsestMaxDense: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := grid3D(16, 4)
			mg, err := NewMultigrid(a, stackGeo(16, 4), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			u := make([]float64, a.N)
			v := make([]float64, a.N)
			mu := make([]float64, a.N)
			mv := make([]float64, a.N)
			for trial := 0; trial < 4; trial++ {
				for i := range u {
					u[i] = rng.NormFloat64()
					v[i] = rng.NormFloat64()
				}
				mg.Apply(mu, u)
				mg.Apply(mv, v)
				var uMv, vMu, uMu float64
				for i := range u {
					uMv += u[i] * mv[i]
					vMu += v[i] * mu[i]
					uMu += u[i] * mu[i]
				}
				if rel := math.Abs(uMv-vMu) / (math.Abs(uMv) + math.Abs(vMu)); rel > 1e-10 {
					t.Fatalf("asymmetric: u·Mv=%g v·Mu=%g (rel %g)", uMv, vMu, rel)
				}
				if uMu <= 0 {
					t.Fatalf("not positive definite: u·Mu = %g", uMu)
				}
			}
		})
	}
}

func TestMultigridCGAgreesWithJacobi(t *testing.T) {
	a := grid3D(32, 4)
	geo := stackGeo(32, 4)
	rng := rand.New(rand.NewSource(3))
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	xj := make([]float64, a.N)
	itJ, err := SolveCG(a, xj, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewMultigrid(a, geo, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	xm := make([]float64, a.N)
	itM, err := SolveCG(a, xm, rhs, CGOptions{Tol: 1e-10, Precond: mg})
	if err != nil {
		t.Fatal(err)
	}
	var scale float64
	for i := range xj {
		if v := math.Abs(xj[i]); v > scale {
			scale = v
		}
	}
	for i := range xj {
		if math.Abs(xj[i]-xm[i]) > 1e-7*scale {
			t.Fatalf("x[%d]: jacobi %g vs mg %g (scale %g)", i, xj[i], xm[i], scale)
		}
	}
	if itM >= itJ {
		t.Fatalf("mg took %d iterations, jacobi %d — preconditioner not helping", itM, itJ)
	}
	if mg.Cycles() == 0 || mg.Setups() != 1 {
		t.Fatalf("cycles=%d setups=%d, want >0 and 1", mg.Cycles(), mg.Setups())
	}
}

// TestMultigridIterationScaling: the whole point of the hierarchy — the
// preconditioned iteration count must stay near-constant as the grid grows
// (plain CG grows roughly linearly in grid size).
func TestMultigridIterationScaling(t *testing.T) {
	iters := map[int]int{}
	for _, g := range []int{16, 64} {
		a := grid3D(g, 4)
		mg, err := NewMultigrid(a, stackGeo(g, 4), MGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rhs := make([]float64, a.N)
		rng := rand.New(rand.NewSource(11))
		for i := range rhs {
			rhs[i] = rng.Float64()
		}
		x := make([]float64, a.N)
		it, err := SolveCG(a, x, rhs, CGOptions{Tol: 1e-8, Precond: mg})
		if err != nil {
			t.Fatal(err)
		}
		iters[g] = it
	}
	if iters[64] > 2*iters[16] {
		t.Fatalf("iterations grew %d → %d from grid 16 to 64; want within 2×", iters[16], iters[64])
	}
}

// TestMultigridRefreshTracksValues: after scaling the bound matrix in place,
// a stale hierarchy must still produce the right answer (the convergence test
// uses true residuals) and a Refresh must restore the iteration count.
func TestMultigridRefreshTracksValues(t *testing.T) {
	a := grid3D(16, 4)
	mg, err := NewMultigrid(a, stackGeo(16, 4), MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, a.N)
	rng := rand.New(rand.NewSource(5))
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	x := make([]float64, a.N)
	itFresh, err := SolveCG(a, x, rhs, CGOptions{Tol: 1e-10, Precond: mg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Val {
		a.Val[i] *= 3
	}
	// Stale hierarchy: still converges, to the correct (scaled) solution.
	want := make([]float64, a.N)
	if _, err := SolveCG(a, want, rhs, CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	xStale := make([]float64, a.N)
	if _, err := SolveCG(a, xStale, rhs, CGOptions{Tol: 1e-10, Precond: mg}); err != nil {
		t.Fatalf("stale-precond solve failed: %v", err)
	}
	var scale float64
	for _, v := range want {
		if m := math.Abs(v); m > scale {
			scale = m
		}
	}
	for i := range want {
		if math.Abs(xStale[i]-want[i]) > 1e-6*scale {
			t.Fatalf("stale x[%d] = %g, want %g", i, xStale[i], want[i])
		}
	}
	// Refreshed hierarchy: uniform scaling leaves the preconditioned system
	// as well-conditioned as before, so the iteration count comes back.
	if err := mg.Refresh(); err != nil {
		t.Fatal(err)
	}
	xNew := make([]float64, a.N)
	itRefreshed, err := SolveCG(a, xNew, rhs, CGOptions{Tol: 1e-10, Precond: mg})
	if err != nil {
		t.Fatal(err)
	}
	if itRefreshed > itFresh+2 {
		t.Fatalf("refreshed solve took %d iterations, fresh took %d", itRefreshed, itFresh)
	}
	if mg.Setups() != 2 {
		t.Fatalf("Setups() = %d, want 2", mg.Setups())
	}
}

func TestMultigridRefreshRejectsNonSPD(t *testing.T) {
	a := grid3D(8, 2)
	mg, err := NewMultigrid(a, stackGeo(8, 2), MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Val {
		a.Val[i] = -a.Val[i]
	}
	if err := mg.Refresh(); err == nil {
		t.Fatal("Refresh accepted a negated matrix")
	}
}

// TestMultigridStructureShared: two instances over the same geometry and
// pattern must share one symbolic hierarchy (that sharing is what lets
// best-of-N replicas amortize the setup).
func TestMultigridStructureShared(t *testing.T) {
	a1 := grid3D(16, 3)
	a2 := grid3D(16, 3)
	mg1, err := NewMultigrid(a1, stackGeo(16, 3), MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mg2, err := NewMultigrid(a2, stackGeo(16, 3), MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mg1.s != mg2.s {
		t.Fatal("identical (geometry, pattern) pairs built distinct symbolic hierarchies")
	}
}

func TestDenseCholeskySolve(t *testing.T) {
	a := grid3D(8, 1) // small SPD system, factored entirely
	L, err := denseCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	want := make([]float64, a.N)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	rhs := make([]float64, a.N)
	a.MulVec(rhs, want)
	got := make([]float64, a.N)
	cholSolve(L, a.N, got, rhs)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
