package sparse

import "sort"

// Fixed is a CSR matrix with a frozen sparsity pattern whose values can be
// updated in place, term by term. It is built once from a Builder's full
// coordinate list (BuildFixed) and then supports two operations the thermal
// solver's inner loop needs:
//
//   - SetTerm rewrites the value of one original Add entry ("term");
//   - RefreshSlot recomputes one stored CSR value as the sum of its terms.
//
// The summation order of each slot is recorded at build time as the exact
// order Builder.Build would have summed the duplicate entries, so a Fixed
// whose terms are rewritten and whose slots are refreshed holds values
// bit-identical to a from-scratch Build over the same entries. That property
// is what lets the thermal model's delta-assembly path reproduce the full
// rebuild exactly, keeping simulated-annealing trajectories reproducible to
// the last bit.
type Fixed struct {
	// Mat is the live matrix; its Val entries are rewritten by RefreshSlot.
	Mat *CSR

	terms    []float64 // current value of each original Add entry
	termSlot []int32   // term index -> slot (index into Mat.Val)
	slotPtr  []int32   // slot -> range into slotTerm
	slotTerm []int32   // terms of each slot in Build's summation order
}

// taggedRowView sorts one row's (col, val, term) triples by column. Its Less
// depends only on the columns, so it applies the same permutation
// Builder.Build's rowView sort would.
type taggedRowView struct {
	col []int32
	val []float64
	tag []int32
}

func (r taggedRowView) Len() int           { return len(r.col) }
func (r taggedRowView) Less(i, j int) bool { return r.col[i] < r.col[j] }
func (r taggedRowView) Swap(i, j int) {
	r.col[i], r.col[j] = r.col[j], r.col[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
	r.tag[i], r.tag[j] = r.tag[j], r.tag[i]
}

// NumEntries returns the number of accumulated (non-zero) entries so far.
// Callers planning in-place updates use it to learn the term index the next
// Add/AddSym call will receive.
func (b *Builder) NumEntries() int { return len(b.vals) }

// BuildFixed assembles the CSR matrix exactly like Build — same pattern, same
// values, bit for bit — and additionally records, for every accumulated
// entry, which value slot it landed in and in which order each slot sums its
// entries. The builder's entries keep their insertion indices as term IDs.
func (b *Builder) BuildFixed() *Fixed {
	n := b.n
	nTerms := len(b.vals)

	// Counting sort by row (stable), carrying term indices.
	count := make([]int32, n+1)
	for _, r := range b.rows {
		count[r+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	start := make([]int32, n)
	copy(start, count[:n])
	ordCol := make([]int32, nTerms)
	ordVal := make([]float64, nTerms)
	ordTerm := make([]int32, nTerms)
	for k, r := range b.rows {
		p := start[r]
		ordCol[p] = b.cols[k]
		ordVal[p] = b.vals[k]
		ordTerm[p] = int32(k)
		start[r] = p + 1
	}

	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	m.Col = make([]int32, 0, nTerms)
	m.Val = make([]float64, 0, nTerms)
	f := &Fixed{
		Mat:      m,
		terms:    append([]float64(nil), b.vals...),
		termSlot: make([]int32, nTerms),
		slotPtr:  make([]int32, 0, nTerms+1),
		slotTerm: ordTerm,
	}
	for i := 0; i < n; i++ {
		lo, hi := count[i], count[i+1]
		row := taggedRowView{col: ordCol[lo:hi], val: ordVal[lo:hi], tag: ordTerm[lo:hi]}
		sort.Sort(row)
		var lastC int32 = -1
		for k := lo; k < hi; k++ {
			if ordCol[k] == lastC {
				m.Val[len(m.Val)-1] += ordVal[k]
			} else {
				m.Col = append(m.Col, ordCol[k])
				m.Val = append(m.Val, ordVal[k])
				lastC = ordCol[k]
				f.slotPtr = append(f.slotPtr, k)
			}
			f.termSlot[ordTerm[k]] = int32(len(m.Val) - 1)
		}
		m.RowPtr[i+1] = int32(len(m.Col))
	}
	f.slotPtr = append(f.slotPtr, int32(nTerms))
	return f
}

// NumTerms returns the number of recorded terms.
func (f *Fixed) NumTerms() int { return len(f.terms) }

// SetTerm rewrites the value of term t without touching the matrix; call
// RefreshSlot (or RefreshAll) on the affected slots afterwards.
func (f *Fixed) SetTerm(t int32, v float64) { f.terms[t] = v }

// TermSlot returns the value slot term t contributes to.
func (f *Fixed) TermSlot(t int32) int32 { return f.termSlot[t] }

// RefreshSlot recomputes slot s as the sum of its terms, in the exact order a
// full Build would have summed them.
func (f *Fixed) RefreshSlot(s int32) {
	lo, hi := f.slotPtr[s], f.slotPtr[s+1]
	sum := f.terms[f.slotTerm[lo]]
	for _, t := range f.slotTerm[lo+1 : hi] {
		sum += f.terms[t]
	}
	f.Mat.Val[s] = sum
}

// RefreshAll recomputes every slot from the current terms. The result is
// bit-identical to rebuilding the matrix from scratch with the same entry
// values.
func (f *Fixed) RefreshAll() {
	for s := range f.Mat.Val {
		f.RefreshSlot(int32(s))
	}
}
