package sparse

import (
	"context"
	"fmt"
	"math"

	"tap25d/internal/faultinject"
)

// SolveCGSSOR solves A·x = b for symmetric positive-definite A using
// conjugate gradients with a symmetric Gauss-Seidel (SSOR, ω=1)
// preconditioner M = (D+L)·D⁻¹·(D+L)ᵀ. The preconditioner is strictly
// stronger than the Jacobi scaling used by CGSolver — each application costs
// one forward and one backward triangular sweep, O(nnz), instead of a
// diagonal scale — which makes it the recovery ladder's fallback when the
// Jacobi-preconditioned solve fails to converge within its budget.
//
// x is the initial guess and is overwritten with the solution; the iteration
// count is returned. Like CGSolver.SolveContext, the loop polls ctx every
// cancelCheckInterval iterations.
func SolveCGSSOR(ctx context.Context, a *CSR, x, b []float64, opt CGOptions) (int, error) {
	n := a.N
	if len(x) != n || len(b) != n {
		return 0, fmt.Errorf("sparse: SolveCGSSOR dimension mismatch: n=%d len(x)=%d len(b)=%d", n, len(x), len(b))
	}
	if err := opt.Inject.Hit(faultinject.PointCGSolve); err != nil {
		return 0, fmt.Errorf("sparse: %w: %w", ErrNoConvergence, err)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	diag := a.Diag()
	for i, d := range diag {
		if d <= 0 {
			return 0, fmt.Errorf("sparse: non-positive diagonal at row %d (%g); matrix not SPD", i, d)
		}
	}

	// applyPrecond solves M·z = r via (D+L)y = r, then (D+L)ᵀz = D·y.
	// The backward sweep reuses z as the scratch for D·y.
	y := make([]float64, n)
	applyPrecond := func(z, r []float64) {
		// Forward substitution with the strictly-lower part.
		for i := 0; i < n; i++ {
			s := r[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := int(a.Col[k])
				if j < i {
					s -= a.Val[k] * y[j]
				}
			}
			y[i] = s / diag[i]
		}
		// Backward substitution with the strictly-upper part on D·y.
		for i := n - 1; i >= 0; i-- {
			s := diag[i] * y[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := int(a.Col[k])
				if j > i {
					s -= a.Val[k] * z[j]
				}
			}
			z[i] = s / diag[i]
		}
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.MulVec(r, x)
	var bnorm, rnorm0 float64
	for i := range r {
		r[i] = b[i] - r[i]
		bnorm += b[i] * b[i]
		rnorm0 += r[i] * r[i]
	}
	bnorm = math.Sqrt(bnorm)
	if opt.OnIteration != nil {
		opt.OnIteration(0, math.Sqrt(rnorm0))
	}
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	if math.Sqrt(rnorm0) <= tol*bnorm {
		return 0, nil
	}

	applyPrecond(z, r)
	var rz float64
	for i := range z {
		rz += r[i] * z[i]
	}
	copy(p, z)

	for it := 1; it <= maxIter; it++ {
		if it%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return it, fmt.Errorf("sparse: CG canceled after %d iterations: %w", it-1, err)
			}
		}
		a.MulVec(ap, p)
		var pap float64
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return it, fmt.Errorf("sparse: p'Ap = %g <= 0; matrix not SPD", pap)
		}
		alpha := rz / pap
		var rnorm float64
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rnorm += r[i] * r[i]
		}
		res := math.Sqrt(rnorm)
		if opt.OnIteration != nil {
			opt.OnIteration(it, res)
		}
		if res <= tol*bnorm {
			return it, nil
		}
		applyPrecond(z, r)
		var rzNew float64
		for i := range z {
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return maxIter, ErrNoConvergence
}
