// Package sparse provides the sparse linear algebra needed by the thermal
// solver: compressed sparse row (CSR) matrices assembled from coordinate
// triplets, and iterative solvers (Jacobi-preconditioned conjugate gradient
// and symmetric Gauss-Seidel) for the symmetric positive-definite conductance
// systems G·T = P arising from the finite-difference thermal model.
package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"tap25d/internal/faultinject"
)

// Builder accumulates coordinate-format (row, col, value) entries. Duplicate
// entries are summed, which makes stencil assembly trivial.
type Builder struct {
	n    int
	rows []int32
	cols []int32
	vals []float64
}

// NewBuilder returns a Builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Add accumulates v into entry (i, j). It panics on out-of-range indices,
// which always indicates a programming error in stencil assembly.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d, %d) out of range for n=%d", i, j, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddSym accumulates a symmetric conductance g between nodes i and j:
// +g on both diagonals and -g on both off-diagonals. This is the natural
// operation when wiring two grid cells together with thermal conductance g.
func (b *Builder) AddSym(i, j int, g float64) {
	b.Add(i, i, g)
	b.Add(j, j, g)
	b.Add(i, j, -g)
	b.Add(j, i, -g)
}

// AddDiag accumulates g onto the diagonal entry (i, i) — used for conductances
// to a fixed boundary (e.g. convection to ambient).
func (b *Builder) AddDiag(i int, g float64) {
	b.Add(i, i, g)
}

// Build assembles the CSR matrix, summing duplicates. Assembly is O(nnz)
// apart from a small per-row sort: entries are bucketed by row with a
// counting pass, then each row (a handful of stencil entries) is sorted and
// deduplicated in place.
func (b *Builder) Build() *CSR {
	n := b.n
	// Counting sort by row.
	count := make([]int32, n+1)
	for _, r := range b.rows {
		count[r+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	start := make([]int32, n)
	copy(start, count[:n])
	ordCol := make([]int32, len(b.rows))
	ordVal := make([]float64, len(b.rows))
	for k, r := range b.rows {
		p := start[r]
		ordCol[p] = b.cols[k]
		ordVal[p] = b.vals[k]
		start[r] = p + 1
	}

	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	m.Col = make([]int32, 0, len(b.rows))
	m.Val = make([]float64, 0, len(b.rows))
	for i := 0; i < n; i++ {
		lo, hi := count[i], count[i+1]
		row := rowView{col: ordCol[lo:hi], val: ordVal[lo:hi]}
		sort.Sort(row)
		var lastC int32 = -1
		for k := range row.col {
			if row.col[k] == lastC {
				m.Val[len(m.Val)-1] += row.val[k]
				continue
			}
			m.Col = append(m.Col, row.col[k])
			m.Val = append(m.Val, row.val[k])
			lastC = row.col[k]
		}
		m.RowPtr[i+1] = int32(len(m.Col))
	}
	return m
}

// rowView sorts one row's (col, val) pairs by column.
type rowView struct {
	col []int32
	val []float64
}

func (r rowView) Len() int           { return len(r.col) }
func (r rowView) Less(i, j int) bool { return r.col[i] < r.col[j] }
func (r rowView) Swap(i, j int) {
	r.col[i], r.col[j] = r.col[j], r.col[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
}

// Reset clears the builder for reuse without releasing its capacity.
func (b *Builder) Reset() {
	b.rows = b.rows[:0]
	b.cols = b.cols[:0]
	b.vals = b.vals[:0]
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A·x. y must have length N.
func (m *CSR) MulVec(y, x []float64) {
	m.mulVecRange(y, x, 0, m.N)
}

// mulVecRange computes y[i] = (A·x)[i] for rows lo ≤ i < hi. Each row is an
// independent serial dot product, so any row partition yields results
// bit-identical to the full serial MulVec. The row slices are re-sliced to a
// common length so the compiler can drop bounds checks from the inner loop.
func (m *CSR) mulVecRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		a, b := m.RowPtr[i], m.RowPtr[i+1]
		cols := m.Col[a:b]
		vals := m.Val[a:b]
		vals = vals[:len(cols)]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

// Diag extracts the diagonal of the matrix.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.Col[k]) == i {
				d[i] = m.Val[k]
				break
			}
		}
	}
	return d
}

// AddToDiag adds d[i] to each diagonal entry in place. Every row must
// already store its diagonal (true for any conductance matrix assembled with
// AddSym/AddDiag).
func (m *CSR) AddToDiag(d []float64) error {
	if len(d) != m.N {
		return fmt.Errorf("sparse: AddToDiag length %d, want %d", len(d), m.N)
	}
	for i := 0; i < m.N; i++ {
		found := false
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.Col[k]) == i {
				m.Val[k] += d[i]
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sparse: row %d stores no diagonal entry", i)
		}
	}
	return nil
}

// At returns entry (i, j) (zero when not stored).
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if int(m.Col[k]) == j {
			return m.Val[k]
		}
	}
	return 0
}

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without meeting the residual tolerance.
var ErrNoConvergence = errors.New("sparse: solver did not converge")

// Preconditioner approximates the inverse of the system matrix: Apply
// overwrites z with M⁻¹·r. For conjugate gradients to remain valid the
// operator must be linear, symmetric positive definite, and fixed for the
// duration of one solve (it may change freely between solves — the
// convergence test uses the true residual, so a stale-but-SPD preconditioner
// affects only the iteration count, never the answer).
type Preconditioner interface {
	Apply(z, r []float64)
}

// CGOptions configures the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖. Default 1e-8.
	Tol float64
	// MaxIter caps the iteration count. Default 10·N.
	MaxIter int
	// OnIteration, when non-nil, is invoked once per iteration with the
	// residual norm ‖b−Ax‖₂ after that iteration; iteration 0 reports the
	// initial (warm-start) residual. The hook observes values the solver
	// already computes, so it cannot perturb the arithmetic; when nil the
	// only cost is one pointer test per iteration.
	OnIteration func(iter int, residual float64)
	// Precond, when non-nil, replaces the built-in Jacobi preconditioner in
	// CGSolver.SolveContext / SolveCG / SolveCGContext (SolveCGSSOR and
	// SolveGaussSeidel ignore it — they embody their own preconditioners).
	// A nil Precond keeps the historical Jacobi path, bit for bit; a non-nil
	// one branches to a separate preconditioned loop before the Jacobi setup
	// runs, so it cannot perturb default-path arithmetic.
	Precond Preconditioner
	// Inject, when armed at faultinject.PointCGSolve, makes the solve fail
	// before iterating with an error matching both ErrNoConvergence and
	// faultinject.ErrInjected, exercising the thermal recovery ladder
	// deterministically in tests. A nil Injector costs one pointer test.
	Inject *faultinject.Injector
}

// SolveCG solves A·x = b for symmetric positive-definite A using
// Jacobi-preconditioned conjugate gradients. x is used as the initial guess
// (a warm start from the previous SA step speeds the placer up considerably)
// and is overwritten with the solution. It returns the iteration count.
//
// SolveCG sets up a fresh CGSolver per call; callers solving repeatedly
// against one matrix should hold a CGSolver to reuse its scratch buffers and
// diagonal index map.
func SolveCG(a *CSR, x, b []float64, opt CGOptions) (int, error) {
	return NewCGSolver(a).Solve(x, b, opt)
}

// SolveCGContext is SolveCG with cooperative cancellation; see
// CGSolver.SolveContext for the polling contract.
func SolveCGContext(ctx context.Context, a *CSR, x, b []float64, opt CGOptions) (int, error) {
	return NewCGSolver(a).SolveContext(ctx, x, b, opt)
}

// SolveGaussSeidel performs symmetric Gauss-Seidel sweeps on A·x = b until the
// relative residual drops below tol or maxIter sweeps elapse. It is slower
// than CG on large systems but useful as an independent cross-check in tests.
func SolveGaussSeidel(a *CSR, x, b []float64, tol float64, maxIter int) (int, error) {
	n := a.N
	if len(x) != n || len(b) != n {
		return 0, fmt.Errorf("sparse: SolveGaussSeidel dimension mismatch")
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	diag := a.Diag()
	for i, d := range diag {
		if d == 0 {
			return 0, fmt.Errorf("sparse: zero diagonal at row %d", i)
		}
	}
	var bnorm float64
	for _, v := range b {
		bnorm += v * v
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}

	sweep := func(forward bool) {
		if forward {
			for i := 0; i < n; i++ {
				s := b[i]
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					j := int(a.Col[k])
					if j != i {
						s -= a.Val[k] * x[j]
					}
				}
				x[i] = s / diag[i]
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				s := b[i]
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					j := int(a.Col[k])
					if j != i {
						s -= a.Val[k] * x[j]
					}
				}
				x[i] = s / diag[i]
			}
		}
	}

	r := make([]float64, n)
	for it := 1; it <= maxIter; it++ {
		sweep(true)
		sweep(false)
		a.MulVec(r, x)
		var rnorm float64
		for i := range r {
			d := b[i] - r[i]
			rnorm += d * d
		}
		if math.Sqrt(rnorm) <= tol*bnorm {
			return it, nil
		}
	}
	return maxIter, ErrNoConvergence
}
