package sparse

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"tap25d/internal/faultinject"
)

// laplacian2D assembles the 5-point Laplacian with a small diagonal shift on
// an n×n grid — the same SPD structure as the thermal conductance systems.
func laplacian2D(n int) *CSR {
	b := NewBuilder(n * n)
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				b.AddSym(idx(i, j), idx(i+1, j), 1)
			}
			if j+1 < n {
				b.AddSym(idx(i, j), idx(i, j+1), 1)
			}
			b.AddDiag(idx(i, j), 0.01)
		}
	}
	return b.Build()
}

func TestSolveCGSSORMatchesCG(t *testing.T) {
	a := laplacian2D(20)
	n := a.N
	rng := rand.New(rand.NewSource(5))
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = rng.Float64() - 0.5
	}
	xj := make([]float64, n)
	xs := make([]float64, n)
	opt := CGOptions{Tol: 1e-10}
	if _, err := SolveCG(a, xj, bvec, opt); err != nil {
		t.Fatalf("Jacobi CG: %v", err)
	}
	if _, err := SolveCGSSOR(context.Background(), a, xs, bvec, opt); err != nil {
		t.Fatalf("SSOR CG: %v", err)
	}
	for i := range xj {
		if math.Abs(xj[i]-xs[i]) > 1e-7*(1+math.Abs(xj[i])) {
			t.Fatalf("solutions disagree at %d: jacobi=%g ssor=%g", i, xj[i], xs[i])
		}
	}
}

func TestSolveCGSSORConvergesFasterIterations(t *testing.T) {
	a := laplacian2D(24)
	n := a.N
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = 1
	}
	xj := make([]float64, n)
	xs := make([]float64, n)
	opt := CGOptions{Tol: 1e-9}
	itJ, err := SolveCG(a, xj, bvec, opt)
	if err != nil {
		t.Fatalf("Jacobi CG: %v", err)
	}
	itS, err := SolveCGSSOR(context.Background(), a, xs, bvec, opt)
	if err != nil {
		t.Fatalf("SSOR CG: %v", err)
	}
	// The whole point of the stronger preconditioner: fewer iterations on the
	// same system. This is the property the recovery ladder relies on.
	if itS >= itJ {
		t.Errorf("SSOR CG took %d iterations, Jacobi took %d; expected a reduction", itS, itJ)
	}
}

func TestSolveCGSSORBudgetExhaustion(t *testing.T) {
	a := laplacian2D(16)
	n := a.N
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = 1
	}
	x := make([]float64, n)
	_, err := SolveCGSSOR(context.Background(), a, x, bvec, CGOptions{Tol: 1e-14, MaxIter: 1})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
}

func TestCGInjectedFaultMatchesNoConvergence(t *testing.T) {
	a := laplacian2D(8)
	n := a.N
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = 1
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCGSolve, faultinject.Spec{At: 2})

	x := make([]float64, n)
	opt := CGOptions{Inject: inj}
	// First solve passes through untouched.
	if _, err := SolveCG(a, x, bvec, opt); err != nil {
		t.Fatalf("first solve: %v", err)
	}
	// Second solve hits the armed point; the error must look like a real
	// non-convergence AND be identifiable as injected.
	x2 := make([]float64, n)
	_, err := SolveCG(a, x2, bvec, opt)
	if err == nil {
		t.Fatal("armed injector did not fire")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("injected fault %v does not match ErrNoConvergence", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("injected fault %v does not match faultinject.ErrInjected", err)
	}
	// Third solve passes again (At fires exactly once).
	x3 := make([]float64, n)
	if _, err := SolveCG(a, x3, bvec, opt); err != nil {
		t.Fatalf("third solve: %v", err)
	}
}
