package sparse

import (
	"context"
	"errors"
	"testing"
)

// TestSolveCGSSORContextCanceled mirrors TestSolveCGContextCanceled for the
// SSOR-preconditioned path: the recovery ladder's fallback rung must honor
// cancellation at the same cadence as plain CG, or an operator interrupt
// during a degraded solve would hang for the full iteration budget. SSOR
// converges much faster than Jacobi on the chain, so the system is sized to
// guarantee the solve is still running at the first poll.
func TestSolveCGSSORContextCanceled(t *testing.T) {
	a, rhs := chainSystem(4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, a.N)
	it, err := SolveCGSSOR(ctx, a, x, rhs, CGOptions{Tol: 1e-12})
	if err == nil {
		t.Fatal("canceled SSOR solve returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if it == 0 || it > cancelCheckInterval {
		t.Fatalf("canceled at iteration %d, want the first poll at %d", it, cancelCheckInterval)
	}
}

// TestSolveCGSSORUncanceledBitIdentical: a live context must not perturb the
// SSOR arithmetic — two solves, one under a cancellable context, must agree
// bit for bit.
func TestSolveCGSSORUncanceledBitIdentical(t *testing.T) {
	a, rhs := chainSystem(300)
	x1 := make([]float64, a.N)
	x2 := make([]float64, a.N)
	it1, err1 := SolveCGSSOR(context.Background(), a, x1, rhs, CGOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it2, err2 := SolveCGSSOR(ctx, a, x2, rhs, CGOptions{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if it1 != it2 {
		t.Fatalf("iteration counts differ: %d vs %d", it1, it2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, x1[i], x2[i])
		}
	}
}
