package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// laplacian1D builds the n-node 1D Laplacian with unit conductances and a
// grounding conductance g0 on node 0, which makes it SPD.
func laplacian1D(n int, g0 float64) *CSR {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 1)
	}
	b.AddDiag(0, g0)
	return b.Build()
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(1, 1, 1)
	m := b.Build()
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5", got)
	}
	if got := m.At(1, 1); got != 1 {
		t.Errorf("At(1,1) = %v, want 1", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %v, want 0", got)
	}
}

func TestBuilderZeroIgnored(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 0)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0", m.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range index")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestAddSymStructure(t *testing.T) {
	b := NewBuilder(3)
	b.AddSym(0, 2, 4)
	m := b.Build()
	if m.At(0, 0) != 4 || m.At(2, 2) != 4 {
		t.Error("diagonals wrong")
	}
	if m.At(0, 2) != -4 || m.At(2, 0) != -4 {
		t.Error("off-diagonals wrong")
	}
	// Row sums of a pure AddSym matrix must be zero (Kirchhoff).
	x := []float64{1, 1, 1}
	y := make([]float64, 3)
	m.MulVec(y, x)
	for i, v := range y {
		if math.Abs(v) > 1e-12 {
			t.Errorf("row %d sum = %v, want 0", i, v)
		}
	}
}

func TestMulVec(t *testing.T) {
	// [2 -1; -1 2] * [1; 2] = [0; 3]
	b := NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	b.Add(1, 1, 2)
	m := b.Build()
	y := make([]float64, 2)
	m.MulVec(y, []float64{1, 2})
	if y[0] != 0 || y[1] != 3 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestDiag(t *testing.T) {
	m := laplacian1D(4, 0.5)
	d := m.Diag()
	want := []float64{1.5, 2, 2, 1}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("Diag[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func randSPD(n int, rng *rand.Rand) (*CSR, []float64) {
	// Random grid-like SPD: 1D chain with random positive conductances plus
	// random grounding, so it's strictly diagonally dominant.
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 0.1+rng.Float64())
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 || i == 0 {
			b.AddDiag(i, 0.05+rng.Float64())
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return b.Build(), x
}

func TestSolveCGRecoversSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(100)
		a, want := randSPD(n, rng)
		rhs := make([]float64, n)
		a.MulVec(rhs, want)
		got := make([]float64, n)
		if _, err := SolveCG(a, got, rhs, CGOptions{Tol: 1e-10}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, want := randSPD(200, rng)
	rhs := make([]float64, 200)
	a.MulVec(rhs, want)

	cold := make([]float64, 200)
	itCold, err := SolveCG(a, cold, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact solution should converge immediately.
	warm := make([]float64, 200)
	copy(warm, want)
	itWarm, err := SolveCG(a, warm, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if itWarm > itCold {
		t.Errorf("warm start took %d iters, cold %d", itWarm, itCold)
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	a := laplacian1D(10, 1)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 5
	}
	it, err := SolveCG(a, x, make([]float64, 10), CGOptions{})
	if err != nil || it != 0 {
		t.Fatalf("zero RHS: it=%d err=%v", it, err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS should give zero solution")
		}
	}
}

func TestSolveCGDimensionMismatch(t *testing.T) {
	a := laplacian1D(4, 1)
	if _, err := SolveCG(a, make([]float64, 3), make([]float64, 4), CGOptions{}); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestSolveCGRejectsNonSPD(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, -1)
	b.Add(1, 1, 1)
	a := b.Build()
	if _, err := SolveCG(a, make([]float64, 2), []float64{1, 1}, CGOptions{}); err == nil {
		t.Error("expected non-SPD error")
	}
}

func TestSolveCGNoConvergence(t *testing.T) {
	a := laplacian1D(50, 1e-9) // nearly singular
	rhs := make([]float64, 50)
	rhs[25] = 1
	_, err := SolveCG(a, make([]float64, 50), rhs, CGOptions{Tol: 1e-14, MaxIter: 2})
	if err != ErrNoConvergence {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestGaussSeidelAgreesWithCG(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, want := randSPD(80, rng)
	rhs := make([]float64, 80)
	a.MulVec(rhs, want)

	xc := make([]float64, 80)
	if _, err := SolveCG(a, xc, rhs, CGOptions{Tol: 1e-10}); err != nil {
		t.Fatal(err)
	}
	xg := make([]float64, 80)
	if _, err := SolveGaussSeidel(a, xg, rhs, 1e-10, 100000); err != nil {
		t.Fatal(err)
	}
	for i := range xc {
		if math.Abs(xc[i]-xg[i]) > 1e-4*(1+math.Abs(xc[i])) {
			t.Fatalf("solvers disagree at %d: CG %v GS %v", i, xc[i], xg[i])
		}
	}
}

func TestGaussSeidelZeroDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	a := b.Build()
	if _, err := SolveGaussSeidel(a, make([]float64, 2), []float64{1, 1}, 1e-8, 10); err == nil {
		t.Error("expected zero-diagonal error")
	}
}

func TestGaussSeidelZeroRHS(t *testing.T) {
	a := laplacian1D(5, 1)
	x := []float64{1, 2, 3, 4, 5}
	if _, err := SolveGaussSeidel(a, x, make([]float64, 5), 1e-8, 10); err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS should zero the solution")
		}
	}
}

func BenchmarkCG2DGrid64(b *testing.B) {
	// 64x64 5-point Laplacian with grounding — representative of one thermal
	// layer at the paper's grid resolution.
	const n = 64
	bl := NewBuilder(n * n)
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				bl.AddSym(id(i, j), id(i+1, j), 1)
			}
			if j+1 < n {
				bl.AddSym(id(i, j), id(i, j+1), 1)
			}
			bl.AddDiag(id(i, j), 0.01)
		}
	}
	a := bl.Build()
	rhs := make([]float64, n*n)
	rhs[id(n/2, n/2)] = 100
	x := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := SolveCG(a, x, rhs, CGOptions{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}
