package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements a geometric multigrid V-cycle preconditioner for the
// structured layered grids behind the thermal conductance matrices. The stack
// is a fixed number of Nx×Ny planes (device layers, spreader, sink) and only
// the in-plane resolution grows with fidelity, so the hierarchy semi-coarsens:
// each level halves Nx and Ny and never merges layers. That matches the
// physics — vertical conductances (thin layers, large cell areas) dominate the
// lateral ones, and coupling a node tightly to its whole vertical column is
// exactly what the un-coarsened layer dimension preserves.
//
// Components, per level:
//
//   - cell-centered bilinear prolongation P (≤4 coarse parents per fine cell,
//     boundary weight folded onto the nearest parent so rows sum to 1 and the
//     constant vector — the near-nullspace of a conductance matrix — is
//     reproduced exactly), with restriction R = Pᵀ;
//   - Galerkin coarse operators A_c = Pᵀ·A·P, so every boundary term and
//     heterogeneous conductance is inherited rather than re-modeled;
//   - vertical-line block Gauss-Seidel smoothing: one forward sweep before
//     and one backward sweep after the coarse correction, where each "point"
//     of the sweep is a whole vertical column solved exactly through its
//     tridiagonal factorization. Lines in the strong (vertical) direction are
//     the textbook smoother for this anisotropy — point smoothers leave
//     vertically-smooth, laterally-oscillatory error untouched, and damped
//     Jacobi additionally diverges outright on Galerkin coarse operators that
//     lose diagonal dominance (observed Gershgorin bounds of 5-10 on real
//     multi-chiplet stacks). Forward and backward sweeps are A-adjoints of
//     each other and block GS is unconditionally A-norm convergent for SPD
//     matrices, so the V-cycle is symmetric positive definite with no damping
//     parameter to tune;
//   - a dense Cholesky solve at the coarsest level, falling back to a fixed
//     number of symmetric Gauss-Seidel sweeps when coarsening stalls early
//     (odd dimensions) and the coarsest system is too large to factor.
//
// The expensive symbolic work — interpolation weights, coarse sparsity
// patterns — depends only on the grid geometry and the fine matrix pattern,
// both of which are shared by every evaluator replica of one placement flow
// and every service worker solving the same model. It is therefore built once
// per (geometry, pattern) pair and cached process-wide (mgStructCache); a
// Multigrid instance owns only the numeric state (coarse values, smoother
// diagonals, the coarsest factorization, scratch), which Refresh recomputes
// from the live fine values in one deterministic pass.

// GridGeometry describes the structured layered grid behind a matrix:
// Layers planes of Ny rows × Nx columns, with node (l, i, j) stored at index
// (l*Ny+i)*Nx + j — the thermal model's layout with Nx = Ny = grid.
type GridGeometry struct {
	Layers, Nx, Ny int
}

// Nodes returns the node count of the grid.
func (g GridGeometry) Nodes() int { return g.Layers * g.Nx * g.Ny }

// MGOptions tunes the multigrid hierarchy. The zero value selects defaults
// suitable for the thermal conductance systems.
type MGOptions struct {
	// CoarsestMaxDense is the largest coarsest-level size that is factored
	// densely (default 1024 nodes); larger coarsest systems — which only
	// arise when odd grid dimensions stop the coarsening early — are solved
	// approximately by GSSweeps symmetric Gauss-Seidel sweeps instead.
	CoarsestMaxDense int
	// GSSweeps is the symmetric Gauss-Seidel sweep count of the non-dense
	// coarsest fallback (default 4). A fixed sweep count from a zero guess is
	// a fixed symmetric linear operator, so the fallback preserves the
	// SPD property PCG needs.
	GSSweeps int
}

func (o MGOptions) withDefaults() MGOptions {
	if o.CoarsestMaxDense <= 0 {
		o.CoarsestMaxDense = 1024
	}
	if o.GSSweeps <= 0 {
		o.GSSweeps = 4
	}
	return o
}

// mgLevel is the immutable, shareable symbolic description of one hierarchy
// level: its dimensions, its operator sparsity pattern (levels ≥ 1; level 0
// uses the bound matrix's own pattern), and the interpolation between this
// level and the next finer one (levels ≥ 1).
type mgLevel struct {
	nx, ny, n int

	// Operator pattern and per-row entry slots. rowPtr/col are nil at level 0
	// (the fine pattern belongs to the caller's matrix); diagSlot, upSlot and
	// dnSlot — the value-slot indices of a row's diagonal and of its vertical
	// couplings to the layers above and below (-1 when absent) — are populated
	// for every level. In-plane coarsening never merges layers, so vertical
	// couplings stay within a column at stride nx·ny on every level, which is
	// what makes the line smoother's blocks exactly tridiagonal.
	rowPtr, col              []int32
	diagSlot, upSlot, dnSlot []int32

	// Prolongation P from this (coarse) level to the next finer level:
	// pPtr has fineN+1 entries; row f of P lists the ≤4 coarse parents of
	// fine node f with bilinear weights. pt* is the transpose (restriction),
	// indexed by coarse node.
	pPtr, pCol   []int32
	pW           []float64
	ptPtr, ptCol []int32
	ptW          []float64
}

// mgStructure is the full symbolic hierarchy for one (geometry, pattern)
// pair. It is immutable after construction and shared across Multigrid
// instances via mgStructCache.
type mgStructure struct {
	geo        GridGeometry
	levels     []*mgLevel
	maxCoarseN int // largest level-≥1 size, for the Galerkin scatter scratch
}

// mgCacheKey identifies a symbolic hierarchy: the grid geometry plus a hash
// of the fine sparsity pattern (two matrices with equal geometry and pattern
// coarsen identically).
type mgCacheKey struct {
	layers, nx, ny, nnz int
	hash                uint64
}

var mgStructCache sync.Map // mgCacheKey -> *mgStructure

// patternHash is FNV-1a over the CSR row pointers and column indices.
func patternHash(a *CSR) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v int32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(uint8(v >> s))
			h *= prime
		}
	}
	for _, v := range a.RowPtr {
		mix(v)
	}
	for _, v := range a.Col {
		mix(v)
	}
	return h
}

// canCoarsen reports whether an nx×ny plane supports another 2× coarsening:
// both dimensions even, and large enough that a coarser level still has
// meaningful in-plane structure.
func canCoarsen(nx, ny int) bool {
	return nx >= 8 && ny >= 8 && nx%2 == 0 && ny%2 == 0
}

// interp1D returns the cell-centered linear interpolation of fine index f
// from a coarse axis of nc cells: the primary parent c0 = f/2 and, when it
// exists, the neighbor toward which cell f's center leans. At the boundary
// the neighbor weight is folded onto the primary parent (c1 = -1), keeping
// the row sum at 1 so constants interpolate exactly.
func interp1D(f, nc int) (c0 int, w0 float64, c1 int, w1 float64) {
	c0 = f / 2
	if f%2 == 0 {
		c1 = c0 - 1
	} else {
		c1 = c0 + 1
	}
	if c1 < 0 || c1 >= nc {
		return c0, 1, -1, 0
	}
	return c0, 0.75, c1, 0.25
}

// buildProlongation fills lev (the coarse level) with the bilinear P between
// it and a fine plane of nxF×nyF cells over layers planes, plus its transpose.
func buildProlongation(lev *mgLevel, layers, nxF, nyF int) {
	nxC, nyC := lev.nx, lev.ny
	fineN := layers * nxF * nyF
	lev.pPtr = make([]int32, fineN+1)
	lev.pCol = make([]int32, 0, 4*fineN)
	lev.pW = make([]float64, 0, 4*fineN)
	for l := 0; l < layers; l++ {
		for i := 0; i < nyF; i++ {
			ic0, wi0, ic1, wi1 := interp1D(i, nyC)
			for j := 0; j < nxF; j++ {
				jc0, wj0, jc1, wj1 := interp1D(j, nxC)
				f := (l*nyF+i)*nxF + j
				add := func(ic, jc int, w float64) {
					lev.pCol = append(lev.pCol, int32((l*nyC+ic)*nxC+jc))
					lev.pW = append(lev.pW, w)
				}
				add(ic0, jc0, wi0*wj0)
				if jc1 >= 0 {
					add(ic0, jc1, wi0*wj1)
				}
				if ic1 >= 0 {
					add(ic1, jc0, wi1*wj0)
					if jc1 >= 0 {
						add(ic1, jc1, wi1*wj1)
					}
				}
				lev.pPtr[f+1] = int32(len(lev.pCol))
			}
		}
	}

	// Transpose for restriction: coarse rows over fine columns, fine indices
	// ascending within each row (they are appended in fine order).
	count := make([]int32, lev.n+1)
	for _, c := range lev.pCol {
		count[c+1]++
	}
	for i := 0; i < lev.n; i++ {
		count[i+1] += count[i]
	}
	lev.ptPtr = append([]int32(nil), count...)
	lev.ptCol = make([]int32, len(lev.pCol))
	lev.ptW = make([]float64, len(lev.pW))
	next := append([]int32(nil), count[:lev.n]...)
	for f := 0; f < fineN; f++ {
		for k := lev.pPtr[f]; k < lev.pPtr[f+1]; k++ {
			c := lev.pCol[k]
			p := next[c]
			lev.ptCol[p] = int32(f)
			lev.ptW[p] = lev.pW[k]
			next[c] = p + 1
		}
	}
}

// buildCoarsePattern computes the Galerkin sparsity pattern of lev from the
// fine pattern (fineRowPtr/fineCol) and lev's interpolation: row I of A_c
// couples every coarse pair reachable through Pᵀ·A·P.
func buildCoarsePattern(lev *mgLevel, fineRowPtr, fineCol []int32) {
	lev.rowPtr = make([]int32, lev.n+1)
	marker := make([]int32, lev.n)
	for i := range marker {
		marker[i] = -1
	}
	cols := make([]int32, 0, 27*lev.n)
	for I := 0; I < lev.n; I++ {
		start := len(cols)
		for q := lev.ptPtr[I]; q < lev.ptPtr[I+1]; q++ {
			fi := lev.ptCol[q]
			for k := fineRowPtr[fi]; k < fineRowPtr[fi+1]; k++ {
				fj := fineCol[k]
				for p := lev.pPtr[fj]; p < lev.pPtr[fj+1]; p++ {
					J := lev.pCol[p]
					if marker[J] != int32(I) {
						marker[J] = int32(I)
						cols = append(cols, J)
					}
				}
			}
		}
		row := cols[start:]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		lev.rowPtr[I+1] = int32(len(cols))
	}
	lev.col = cols
}

// findDiagSlots records, per row, the value-slot index of the diagonal entry
// (-1 when a row stores none, which a conductance matrix never does).
func findDiagSlots(n int, rowPtr, col []int32) []int32 {
	slots := make([]int32, n)
	for i := 0; i < n; i++ {
		slots[i] = -1
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if int(col[k]) == i {
				slots[i] = k
				break
			}
		}
	}
	return slots
}

// findVertSlots records, per row, the value-slot indices of the vertical
// couplings to the same in-plane position one layer up (row+nxy) and one
// layer down (row-nxy), -1 when the row has none (top/bottom layer, or a
// pattern without that coupling).
func findVertSlots(n, nxy int, rowPtr, col []int32) (up, dn []int32) {
	up = make([]int32, n)
	dn = make([]int32, n)
	for i := 0; i < n; i++ {
		up[i], dn[i] = -1, -1
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			switch int(col[k]) {
			case i + nxy:
				up[i] = k
			case i - nxy:
				dn[i] = k
			}
		}
	}
	return up, dn
}

// mgStructureFor returns the shared symbolic hierarchy for (a, geo), building
// and caching it on first use.
func mgStructureFor(a *CSR, geo GridGeometry) *mgStructure {
	key := mgCacheKey{layers: geo.Layers, nx: geo.Nx, ny: geo.Ny, nnz: a.NNZ(), hash: patternHash(a)}
	if v, ok := mgStructCache.Load(key); ok {
		return v.(*mgStructure)
	}
	s := &mgStructure{geo: geo}
	fine := &mgLevel{nx: geo.Nx, ny: geo.Ny, n: geo.Nodes()}
	fine.diagSlot = findDiagSlots(fine.n, a.RowPtr, a.Col)
	fine.upSlot, fine.dnSlot = findVertSlots(fine.n, geo.Nx*geo.Ny, a.RowPtr, a.Col)
	s.levels = append(s.levels, fine)
	rowPtr, col := a.RowPtr, a.Col
	nx, ny := geo.Nx, geo.Ny
	for canCoarsen(nx, ny) {
		nxC, nyC := nx/2, ny/2
		lev := &mgLevel{nx: nxC, ny: nyC, n: geo.Layers * nxC * nyC}
		buildProlongation(lev, geo.Layers, nx, ny)
		buildCoarsePattern(lev, rowPtr, col)
		lev.diagSlot = findDiagSlots(lev.n, lev.rowPtr, lev.col)
		lev.upSlot, lev.dnSlot = findVertSlots(lev.n, nxC*nyC, lev.rowPtr, lev.col)
		s.levels = append(s.levels, lev)
		if lev.n > s.maxCoarseN {
			s.maxCoarseN = lev.n
		}
		rowPtr, col = lev.rowPtr, lev.col
		nx, ny = nxC, nyC
	}
	if v, loaded := mgStructCache.LoadOrStore(key, s); loaded {
		return v.(*mgStructure)
	}
	return s
}

// mgLevelData is the per-instance numeric state of one level: the operator
// (level 0 snapshots the bound fine matrix's values at Refresh; coarser
// levels own Galerkin values over the shared pattern), the line smoother's
// per-column tridiagonal LDLᵀ factors (lfac holds the unit-lower multiplier
// of each row toward the layer below, dinv the inverse pivots), the inverse
// point diagonal for the coarsest-level GS fallback, and scratch vectors.
type mgLevelData struct {
	a          *CSR
	invD       []float64
	lfac, dinv []float64
	workers    int
	r, z, t    []float64
}

// Multigrid is a geometric multigrid V-cycle over a bound matrix,
// implementing Preconditioner. The bound matrix's values may change freely
// between solves (the thermal delta-assembly path rewrites them in place);
// call Refresh to fold the current values into the coarse operators — until
// then the cycle preconditions with the values of the previous Refresh,
// which affects CG's iteration count but never its answer.
//
// A Multigrid is not safe for concurrent use (it smooths into per-level
// scratch), but its symbolic skeleton is shared process-wide across
// instances with the same geometry and sparsity pattern.
type Multigrid struct {
	s        *mgStructure
	a        *CSR
	gsSweeps int
	maxDense int

	lv   []mgLevelData
	chol []float64 // dense Cholesky factor of the coarsest level, nil → GS fallback
	ws   []float64 // Galerkin scatter workspace, maxCoarseN long
	line []float64 // line-smoother block scratch, Layers long

	cycles, setups int64
}

// NewMultigrid builds a V-cycle preconditioner for a, whose rows must be laid
// out as geo describes. The symbolic hierarchy is reused from the
// process-wide cache when an identical (geometry, pattern) pair was built
// before; the numeric state is initialized from a's current values (an
// initial Refresh is included).
func NewMultigrid(a *CSR, geo GridGeometry, opt MGOptions) (*Multigrid, error) {
	if geo.Layers <= 0 || geo.Nx <= 0 || geo.Ny <= 0 {
		return nil, fmt.Errorf("sparse: multigrid geometry %+v not positive", geo)
	}
	if geo.Nodes() != a.N {
		return nil, fmt.Errorf("sparse: multigrid geometry %+v has %d nodes, matrix has %d rows", geo, geo.Nodes(), a.N)
	}
	opt = opt.withDefaults()
	s := mgStructureFor(a, geo)
	mg := &Multigrid{
		s:        s,
		a:        a,
		gsSweeps: opt.GSSweeps,
		maxDense: opt.CoarsestMaxDense,
		lv:       make([]mgLevelData, len(s.levels)),
		ws:       make([]float64, s.maxCoarseN),
		line:     make([]float64, geo.Layers),
	}
	for l, lev := range s.levels {
		d := &mg.lv[l]
		if l == 0 {
			// Level 0 snapshots the bound matrix's values (sharing its
			// pattern) rather than aliasing them: Refresh copies them in, so
			// in-place updates to the bound matrix between refreshes leave
			// the whole hierarchy consistently stale. Mixing live level-0
			// values with stale coarse operators and smoother diagonals can
			// lose positive definiteness.
			d.a = &CSR{N: a.N, RowPtr: a.RowPtr, Col: a.Col, Val: make([]float64, len(a.Val))}
		} else {
			d.a = &CSR{N: lev.n, RowPtr: lev.rowPtr, Col: lev.col, Val: make([]float64, len(lev.col))}
		}
		d.invD = make([]float64, lev.n)
		d.lfac = make([]float64, lev.n)
		d.dinv = make([]float64, lev.n)
		d.workers = parallelWorkers(lev.n)
		d.r = make([]float64, lev.n)
		d.z = make([]float64, lev.n)
		d.t = make([]float64, lev.n)
	}
	if err := mg.Refresh(); err != nil {
		return nil, err
	}
	return mg, nil
}

// Levels returns the hierarchy depth (1 means no coarsening was possible and
// the "cycle" is just the coarsest-level solve).
func (mg *Multigrid) Levels() int { return len(mg.lv) }

// Cycles returns the number of V-cycles applied since construction.
func (mg *Multigrid) Cycles() int64 { return mg.cycles }

// Setups returns the number of Refresh passes (including the constructor's).
func (mg *Multigrid) Setups() int64 { return mg.setups }

// Refresh recomputes the numeric hierarchy from the bound matrix's current
// values: Galerkin coarse operators level by level, smoother diagonals, and
// the coarsest-level factorization. The pass is one deterministic serial
// sweep, so refreshed hierarchies — and therefore preconditioned iteration
// counts — are reproducible across runs.
func (mg *Multigrid) Refresh() error {
	copy(mg.lv[0].a.Val, mg.a.Val)
	for l := 1; l < len(mg.lv); l++ {
		mg.galerkin(l)
	}
	for l := range mg.lv {
		lev, d := mg.s.levels[l], &mg.lv[l]
		for i, slot := range lev.diagSlot {
			var v float64
			if slot >= 0 {
				v = d.a.Val[slot]
			}
			if v <= 0 {
				return fmt.Errorf("sparse: multigrid level %d has non-positive diagonal %g at row %d; matrix not SPD", l, v, i)
			}
			d.invD[i] = 1 / v
		}
		// Factor each vertical column's tridiagonal block (diagonal plus the
		// up/down couplings) as LDLᵀ for the line smoother. The blocks are
		// principal submatrices of an SPD operator, so positive pivots are
		// guaranteed in exact arithmetic; a non-positive one means the
		// operator itself lost definiteness.
		nxy := lev.nx * lev.ny
		layers := mg.s.geo.Layers
		for c := 0; c < nxy; c++ {
			prev := 0.0
			for p := 0; p < layers; p++ {
				i := p*nxy + c
				piv := d.a.Val[lev.diagSlot[i]]
				d.lfac[i] = 0
				if p > 0 {
					if s := lev.upSlot[i-nxy]; s >= 0 {
						m := d.a.Val[s] * prev
						d.lfac[i] = m
						piv -= m * d.a.Val[s]
					}
				}
				if piv <= 0 {
					return fmt.Errorf("sparse: multigrid level %d line pivot %g <= 0 at row %d; matrix not SPD", l, piv, i)
				}
				prev = 1 / piv
				d.dinv[i] = prev
			}
		}
	}
	last := &mg.lv[len(mg.lv)-1]
	if last.a.N <= mg.maxDense {
		chol, err := denseCholesky(last.a)
		if err != nil {
			return fmt.Errorf("sparse: multigrid coarsest level: %w", err)
		}
		mg.chol = chol
	} else {
		mg.chol = nil
	}
	mg.setups++
	return nil
}

// galerkin recomputes level l's operator values as Pᵀ·A_{l-1}·P: for each
// coarse row, contributions are scattered into a dense workspace through the
// fixed interpolation lists and gathered back into the (superset-by-
// construction) pattern slots. Serial and in fixed order, hence
// deterministic.
func (mg *Multigrid) galerkin(l int) {
	lev := mg.s.levels[l]
	fine, coarse := mg.lv[l-1].a, mg.lv[l].a
	ws := mg.ws
	for I := 0; I < coarse.N; I++ {
		for q := lev.ptPtr[I]; q < lev.ptPtr[I+1]; q++ {
			fi := int(lev.ptCol[q])
			wI := lev.ptW[q]
			for k := fine.RowPtr[fi]; k < fine.RowPtr[fi+1]; k++ {
				v := wI * fine.Val[k]
				fj := int(fine.Col[k])
				for p := lev.pPtr[fj]; p < lev.pPtr[fj+1]; p++ {
					ws[lev.pCol[p]] += v * lev.pW[p]
				}
			}
		}
		for k := coarse.RowPtr[I]; k < coarse.RowPtr[I+1]; k++ {
			J := coarse.Col[k]
			coarse.Val[k] = ws[J]
			ws[J] = 0
		}
	}
}

// Apply runs one V-cycle: z ≈ A⁻¹·r. It implements Preconditioner.
func (mg *Multigrid) Apply(z, r []float64) {
	mg.cycles++
	mg.vcycle(0, z, r)
}

func (mg *Multigrid) mulVec(d *mgLevelData, y, x []float64) {
	if d.workers > 1 {
		d.a.MulVecParallel(y, x, d.workers)
	} else {
		d.a.MulVec(y, x)
	}
}

// vcycle recurses one level: forward line-GS pre-smooth from a zero guess,
// restricted-defect coarse correction, backward line-GS post-smooth. The
// backward sweep is the A-adjoint of the forward one and R = Pᵀ, so the cycle
// is a symmetric positive-definite operator, which is what lets it sit
// inside PCG.
func (mg *Multigrid) vcycle(l int, z, r []float64) {
	d := &mg.lv[l]
	if l == len(mg.lv)-1 {
		if mg.chol != nil {
			cholSolve(mg.chol, d.a.N, z, r)
		} else {
			mg.coarseGS(d, z, r)
		}
		return
	}
	for i := range z {
		z[i] = 0
	}
	mg.lineSweep(l, z, r, false)
	mg.mulVec(d, d.t, z)
	for i := range d.t {
		d.t[i] = r[i] - d.t[i]
	}
	nxt := &mg.lv[l+1]
	lev := mg.s.levels[l+1]
	for I := 0; I < nxt.a.N; I++ {
		var s float64
		for q := lev.ptPtr[I]; q < lev.ptPtr[I+1]; q++ {
			s += lev.ptW[q] * d.t[lev.ptCol[q]]
		}
		nxt.r[I] = s
	}
	mg.vcycle(l+1, nxt.z, nxt.r)
	zc := nxt.z
	for f := 0; f < d.a.N; f++ {
		var s float64
		for p := lev.pPtr[f]; p < lev.pPtr[f+1]; p++ {
			s += lev.pW[p] * zc[lev.pCol[p]]
		}
		z[f] += s
	}
	mg.lineSweep(l, z, r, true)
}

// lineSweep performs one vertical-line block Gauss-Seidel sweep on level l,
// updating z in place: columns are visited in in-plane order (reversed when
// backward), and each column's block system — its exact tridiagonal, with all
// off-column couplings moved to the right-hand side at their latest values —
// is solved through the LDLᵀ factors prepared by Refresh. Serial and in fixed
// order, hence deterministic; the backward sweep visits columns in exactly
// the reverse order, making it the forward sweep's A-adjoint.
func (mg *Multigrid) lineSweep(l int, z, r []float64, backward bool) {
	lev, d := mg.s.levels[l], &mg.lv[l]
	a := d.a
	nxy := lev.nx * lev.ny
	layers := mg.s.geo.Layers
	t := mg.line
	for bi := 0; bi < nxy; bi++ {
		c := bi
		if backward {
			c = nxy - 1 - bi
		}
		// Off-column residual: subtract the full row dot and add back the
		// in-block terms the tridiagonal solve below accounts for exactly.
		for p := 0; p < layers; p++ {
			i := p*nxy + c
			acc := r[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				acc -= a.Val[k] * z[a.Col[k]]
			}
			acc += a.Val[lev.diagSlot[i]] * z[i]
			if s := lev.dnSlot[i]; s >= 0 {
				acc += a.Val[s] * z[i-nxy]
			}
			if s := lev.upSlot[i]; s >= 0 {
				acc += a.Val[s] * z[i+nxy]
			}
			t[p] = acc
		}
		for p := 1; p < layers; p++ {
			t[p] -= d.lfac[p*nxy+c] * t[p-1]
		}
		for p := 0; p < layers; p++ {
			t[p] *= d.dinv[p*nxy+c]
		}
		for p := layers - 2; p >= 0; p-- {
			t[p] -= d.lfac[(p+1)*nxy+c] * t[p+1]
		}
		for p := 0; p < layers; p++ {
			z[p*nxy+c] = t[p]
		}
	}
}

// coarseGS approximates the coarsest solve with a fixed number of symmetric
// Gauss-Seidel sweeps from a zero guess — a fixed symmetric linear operator,
// so the overall cycle stays a valid SPD preconditioner even when the
// coarsest system was too large to factor densely.
func (mg *Multigrid) coarseGS(d *mgLevelData, z, r []float64) {
	a, invD := d.a, d.invD
	n := a.N
	for i := range z {
		z[i] = 0
	}
	for s := 0; s < mg.gsSweeps; s++ {
		for i := 0; i < n; i++ {
			acc := r[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if j := int(a.Col[k]); j != i {
					acc -= a.Val[k] * z[j]
				}
			}
			z[i] = acc * invD[i]
		}
		for i := n - 1; i >= 0; i-- {
			acc := r[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if j := int(a.Col[k]); j != i {
					acc -= a.Val[k] * z[j]
				}
			}
			z[i] = acc * invD[i]
		}
	}
}

// denseCholesky factors the (small) coarsest operator into a dense lower
// triangle L with A = L·Lᵀ.
func denseCholesky(a *CSR) ([]float64, error) {
	n := a.N
	L := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			L[i*n+int(a.Col[k])] = a.Val[k]
		}
	}
	for j := 0; j < n; j++ {
		d := L[j*n+j]
		for k := 0; k < j; k++ {
			d -= L[j*n+k] * L[j*n+k]
		}
		if d <= 0 {
			return nil, fmt.Errorf("sparse: Cholesky pivot %g <= 0 at row %d; matrix not SPD", d, j)
		}
		dj := math.Sqrt(d)
		L[j*n+j] = dj
		for i := j + 1; i < n; i++ {
			s := L[i*n+j]
			for k := 0; k < j; k++ {
				s -= L[i*n+k] * L[j*n+k]
			}
			L[i*n+j] = s / dj
		}
	}
	return L, nil
}

// cholSolve solves L·Lᵀ·z = r by forward and backward substitution.
func cholSolve(L []float64, n int, z, r []float64) {
	for i := 0; i < n; i++ {
		s := r[i]
		for k := 0; k < i; k++ {
			s -= L[i*n+k] * z[k]
		}
		z[i] = s / L[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := i + 1; k < n; k++ {
			s -= L[k*n+i] * z[k]
		}
		z[i] = s / L[i*n+i]
	}
}
