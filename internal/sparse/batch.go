package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"tap25d/internal/faultinject"
)

// SolveCGBatch solves A·x_c = b_c for B right-hand sides against one shared
// matrix in a blocked sweep. The motivation is memory traffic: a CG
// iteration is dominated by streaming the matrix once per mat-vec, so B
// independent solves stream it B times per iteration while the blocked sweep
// streams it once and applies every stored entry to all B iterates.
// Best-of-N placement replicas and service workers evaluating the same model
// share assembly and — when opt.Precond is set — one preconditioner
// hierarchy across the batch.
//
// Per column, the arithmetic reproduces CGSolver.SolveContext exactly: every
// accumulator (row sums, dot products, the fused x/r/z update pass) sums in
// the same order as the serial loops, so each batch solution and iteration
// count is bit-identical to solving that column alone. Columns that converge
// drop out of the sweep at exactly the serial iteration.
//
// xs[c] is the warm-start guess for column c and is overwritten in place
// with the solution (or the current iterate on cancellation/budget
// exhaustion). The returned slice holds per-column iteration counts. Columns
// that exhaust opt.MaxIter are aggregated into one error matching
// ErrNoConvergence; structural failures (dimension mismatch, non-SPD matrix
// or preconditioner, cancellation) abort the whole batch, since every column
// shares the operator. opt.OnIteration is ignored — a per-column residual
// trace only makes sense for single solves.
func SolveCGBatch(ctx context.Context, a *CSR, xs, bs [][]float64, opt CGOptions) ([]int, error) {
	n := a.N
	if len(xs) != len(bs) {
		return nil, fmt.Errorf("sparse: SolveCGBatch has %d guesses for %d right-hand sides", len(xs), len(bs))
	}
	nrhs := len(bs)
	if nrhs == 0 {
		return nil, nil
	}
	for c := range bs {
		if len(xs[c]) != n || len(bs[c]) != n {
			return nil, fmt.Errorf("sparse: SolveCGBatch column %d dimension mismatch: n=%d len(x)=%d len(b)=%d", c, n, len(xs[c]), len(bs[c]))
		}
	}
	if err := opt.Inject.Hit(faultinject.PointCGSolve); err != nil {
		return nil, fmt.Errorf("sparse: %w: %w", ErrNoConvergence, err)
	}
	if nrhs == 1 || parallelWorkers(n) < 2 {
		// One column gains nothing from blocking, and on a single-core (or
		// sub-threshold) system the blocked sweep is a net loss: B column
		// blocks of vectors evict each other from cache, while sequential
		// solves keep one column's working set hot and use the faster fused
		// serial kernel. Per column the arithmetic is identical either way,
		// so this engine choice never changes a result — only its speed. One
		// solver is reused across columns to amortize scratch and diagonal
		// setup; on error or cancellation, remaining columns keep their
		// warm-start contents.
		iters := make([]int, nrhs)
		cg := NewCGSolver(a)
		failed := 0
		for c := range bs {
			it, err := cg.SolveContext(ctx, xs[c], bs[c], opt)
			iters[c] = it
			if err != nil {
				if !errors.Is(err, ErrNoConvergence) {
					return iters, err // structural failure or cancellation
				}
				failed++
			}
		}
		if failed > 0 {
			return iters, fmt.Errorf("sparse: %d of %d batch columns: %w", failed, nrhs, ErrNoConvergence)
		}
		return iters, nil
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	var invD []float64
	if opt.Precond == nil {
		invD = make([]float64, n)
		for i := 0; i < n; i++ {
			d := 0.0
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if int(a.Col[k]) == i {
					d = a.Val[k]
					break
				}
			}
			if d <= 0 {
				return nil, fmt.Errorf("sparse: non-positive diagonal at row %d (%g); matrix not SPD", i, d)
			}
			invD[i] = 1 / d
		}
	}

	cols := func() [][]float64 {
		s := make([][]float64, nrhs)
		for c := range s {
			s[c] = make([]float64, n)
		}
		return s
	}
	b := &batchState{
		a:       a,
		n:       n,
		m:       nrhs,
		invD:    invD,
		pre:     opt.Precond,
		workers: parallelWorkers(n),
		orig:    make([]int, nrhs),
		x:       append([][]float64(nil), xs...), // headers only; columns update in place
		r:       cols(),
		z:       cols(),
		p:       cols(),
		ap:      cols(),
		bn:      make([]float64, nrhs),
		rz:      make([]float64, nrhs),
		rzNew:   make([]float64, nrhs),
		alpha:   make([]float64, nrhs),
		rnorm:   make([]float64, nrhs),
		iters:   make([]int, nrhs),
	}
	for c := 0; c < nrhs; c++ {
		b.orig[c] = c
	}
	return b.run(ctx, bs, tol, maxIter)
}

// batchState carries the per-column state of one SolveCGBatch call. Columns
// are stored as independent contiguous vectors (x aliases the caller's
// slices), so every vector pass runs the same contiguous loop as the serial
// solver and preconditioners apply with no staging copies; only the blocked
// matrix product touches all columns at once, gathering through the active
// slice headers. Active columns are the first m headers; converged columns
// are swap-removed in O(1) by swapping headers, so the sweeps never branch
// on a per-column done flag.
type batchState struct {
	a       *CSR
	n       int
	m       int // active column count, slots [0, m)
	invD    []float64
	pre     Preconditioner
	workers int

	orig           []int // slot -> original column index
	x, r, z, p, ap [][]float64
	bn, rz, rzNew  []float64 // per-slot ‖b‖ and r·z
	alpha, rnorm   []float64 // per-slot iteration scalars
	iters          []int     // per original column
}

// mulBlock computes dst[c][rows lo..hi) = A·src[c] for the m active columns
// in one sweep over the stored entries. Each column accumulates its row sum
// in k-ascending order — exactly the serial MulVec order, so every column is
// bit-identical to its own serial product. Width 8 (the common service/
// replica batch) keeps its accumulators and column bases in registers
// through a raw-pointer kernel; see mulVecDot for the safety argument (the
// same CSR invariants apply).
func (b *batchState) mulBlock(dst, src [][]float64, lo, hi int) {
	a, m := b.a, b.m
	if m == 8 {
		mulBlock8(a, dst, src, lo, hi)
		return
	}
	sc := src[:m]
	for i := lo; i < hi; i++ {
		for c, d := range dst[:m] {
			col := sc[c]
			var s float64
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				s += a.Val[k] * col[a.Col[k]]
			}
			d[i] = s
		}
	}
}

// mulBlock8 is the width-8 blocked kernel: one pass over the row's entries
// feeds eight register accumulators.
func mulBlock8(a *CSR, dst, src [][]float64, lo, hi int) {
	rowPtr := a.RowPtr
	colp := unsafe.Pointer(unsafe.SliceData(a.Col))
	valp := unsafe.Pointer(unsafe.SliceData(a.Val))
	x0 := unsafe.Pointer(unsafe.SliceData(src[0]))
	x1 := unsafe.Pointer(unsafe.SliceData(src[1]))
	x2 := unsafe.Pointer(unsafe.SliceData(src[2]))
	x3 := unsafe.Pointer(unsafe.SliceData(src[3]))
	x4 := unsafe.Pointer(unsafe.SliceData(src[4]))
	x5 := unsafe.Pointer(unsafe.SliceData(src[5]))
	x6 := unsafe.Pointer(unsafe.SliceData(src[6]))
	x7 := unsafe.Pointer(unsafe.SliceData(src[7]))
	d0, d1, d2, d3 := dst[0], dst[1], dst[2], dst[3]
	d4, d5, d6, d7 := dst[4], dst[5], dst[6], dst[7]
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for k, end := int(rowPtr[i]), int(rowPtr[i+1]); k < end; k++ {
			v := *(*float64)(unsafe.Add(valp, uintptr(k)*8))
			off := uintptr(*(*int32)(unsafe.Add(colp, uintptr(k)*4))) * 8
			s0 += v * *(*float64)(unsafe.Add(x0, off))
			s1 += v * *(*float64)(unsafe.Add(x1, off))
			s2 += v * *(*float64)(unsafe.Add(x2, off))
			s3 += v * *(*float64)(unsafe.Add(x3, off))
			s4 += v * *(*float64)(unsafe.Add(x4, off))
			s5 += v * *(*float64)(unsafe.Add(x5, off))
			s6 += v * *(*float64)(unsafe.Add(x6, off))
			s7 += v * *(*float64)(unsafe.Add(x7, off))
		}
		d0[i], d1[i], d2[i], d3[i] = s0, s1, s2, s3
		d4[i], d5[i], d6[i], d7[i] = s4, s5, s6, s7
	}
}

// mul runs the blocked product dst = A·src over all rows, partitioned across
// workers for large systems. Rows are independent, so any partition is
// bit-identical to the serial sweep.
func (b *batchState) mul(dst, src [][]float64) {
	if b.workers < 2 {
		b.mulBlock(dst, src, 0, b.n)
		return
	}
	chunk := (b.n + b.workers - 1) / b.workers
	var wg sync.WaitGroup
	for lo := 0; lo < b.n; lo += chunk {
		hi := lo + chunk
		if hi > b.n {
			hi = b.n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			b.mulBlock(dst, src, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// forCols runs fn for every active slot — concurrently when the system is
// large enough to parallelize (columns are fully independent between the
// blocked products; each column's own arithmetic stays serial and ordered,
// so the results do not depend on the schedule).
func (b *batchState) forCols(fn func(c int)) {
	if b.workers < 2 || b.m < 2 {
		for c := 0; c < b.m; c++ {
			fn(c)
		}
		return
	}
	var wg sync.WaitGroup
	for c := 0; c < b.m; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
}

// remove swap-removes slot c in O(1): the last active slot's headers and
// scalars replace c's. Call in descending slot order when removing several
// at once, so the swapped-in slot is always one already examined this sweep.
func (b *batchState) remove(c int) {
	last := b.m - 1
	if c != last {
		b.x[c], b.x[last] = b.x[last], b.x[c]
		b.r[c], b.r[last] = b.r[last], b.r[c]
		b.z[c], b.z[last] = b.z[last], b.z[c]
		b.p[c], b.p[last] = b.p[last], b.p[c]
		b.ap[c], b.ap[last] = b.ap[last], b.ap[c]
		b.orig[c] = b.orig[last]
		b.bn[c] = b.bn[last]
		b.rz[c] = b.rz[last]
		b.rzNew[c] = b.rzNew[last]
		b.alpha[c] = b.alpha[last]
		b.rnorm[c] = b.rnorm[last]
	}
	b.m = last
}

func (b *batchState) run(ctx context.Context, bs [][]float64, tol float64, maxIter int) ([]int, error) {
	n := b.n
	errs := make([]error, b.m) // per-slot structural failures, scanned ascending

	// Initial residual r = b − A·x per column, with ‖b‖ and ‖r₀‖ accumulated
	// in row-ascending order like the serial solver.
	b.mul(b.ap, b.x)
	b.forCols(func(c int) {
		rc, apc, bc := b.r[c], b.ap[c], bs[b.orig[c]]
		var bnorm, rnorm0 float64
		for i := 0; i < n; i++ {
			ri := bc[i] - apc[i]
			rc[i] = ri
			bnorm += bc[i] * bc[i]
			rnorm0 += ri * ri
		}
		b.bn[c] = math.Sqrt(bnorm)
		b.rnorm[c] = rnorm0
	})
	for c := b.m - 1; c >= 0; c-- {
		if b.bn[c] == 0 {
			xc := b.x[c]
			for i := range xc {
				xc[i] = 0
			}
			b.iters[b.orig[c]] = 0
			b.remove(c)
			continue
		}
		if math.Sqrt(b.rnorm[c]) <= tol*b.bn[c] {
			b.iters[b.orig[c]] = 0 // warm start already converged
			b.remove(c)
		}
	}
	if b.m == 0 {
		return b.iters, nil
	}

	// z = M⁻¹·r, rz = r·z, p = z. The Jacobi path is embarrassingly
	// per-column; a shared Preconditioner applies serially — instances like
	// Multigrid smooth into shared scratch and are not concurrency-safe.
	if b.pre != nil {
		for c := 0; c < b.m; c++ {
			rc, zc := b.r[c], b.z[c]
			b.pre.Apply(zc, rc)
			var rz float64
			for i := 0; i < n; i++ {
				rz += rc[i] * zc[i]
			}
			if rz <= 0 {
				b.abort(0)
				return b.iters, fmt.Errorf("sparse: r'M⁻¹r = %g <= 0; preconditioner not positive definite", rz)
			}
			b.rz[c] = rz
			copy(b.p[c], zc)
		}
	} else {
		b.forCols(func(c int) {
			rc, zc, invD := b.r[c], b.z[c], b.invD
			var rz float64
			for i := 0; i < n; i++ {
				zi := invD[i] * rc[i]
				zc[i] = zi
				rz += rc[i] * zi
			}
			b.rz[c] = rz
			copy(b.p[c], zc)
		})
	}

	for it := 1; it <= maxIter; it++ {
		if it%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				b.abort(it)
				return b.iters, fmt.Errorf("sparse: CG canceled after %d iterations: %w", it-1, err)
			}
		}
		// ap = A·p in one blocked sweep; then, per column: the p·Ap dot in
		// row-ascending order (as in the serial mulVecDot), alpha, and the
		// x/r update pass. On the Jacobi path the update also accumulates the
		// next z and r·z fused, mirroring the serial solver's loop; on a
		// converging column that extra work is simply discarded.
		b.mul(b.ap, b.p)
		b.forCols(func(c int) {
			pc, apc := b.p[c], b.ap[c]
			var pap float64
			for i := 0; i < n; i++ {
				pap += pc[i] * apc[i]
			}
			if pap <= 0 {
				errs[c] = fmt.Errorf("sparse: p'Ap = %g <= 0; matrix not SPD", pap)
				return
			}
			al := b.rz[c] / pap
			xc, rc := b.x[c], b.r[c]
			var rnorm float64
			if b.pre == nil {
				zc, invD := b.z[c], b.invD
				var rzNew float64
				for i := 0; i < n; i++ {
					xc[i] += al * pc[i]
					ri := rc[i] - al*apc[i]
					rc[i] = ri
					rnorm += ri * ri
					zi := invD[i] * ri
					zc[i] = zi
					rzNew += ri * zi
				}
				b.rzNew[c] = rzNew
			} else {
				for i := 0; i < n; i++ {
					xc[i] += al * pc[i]
					ri := rc[i] - al*apc[i]
					rc[i] = ri
					rnorm += ri * ri
				}
			}
			b.rnorm[c] = rnorm
		})
		for c := 0; c < b.m; c++ {
			if errs[c] != nil {
				err := errs[c]
				b.abort(it)
				return b.iters, err
			}
		}
		for c := b.m - 1; c >= 0; c-- {
			if math.Sqrt(b.rnorm[c]) <= tol*b.bn[c] {
				b.iters[b.orig[c]] = it
				b.remove(c)
			}
		}
		if b.m == 0 {
			return b.iters, nil
		}
		if b.pre != nil {
			for c := 0; c < b.m; c++ {
				rc, zc := b.r[c], b.z[c]
				b.pre.Apply(zc, rc)
				var rzNew float64
				for i := 0; i < n; i++ {
					rzNew += rc[i] * zc[i]
				}
				if rzNew <= 0 {
					b.abort(it)
					return b.iters, fmt.Errorf("sparse: r'M⁻¹r = %g <= 0; preconditioner not positive definite", rzNew)
				}
				b.rzNew[c] = rzNew
			}
		}
		b.forCols(func(c int) {
			beta := b.rzNew[c] / b.rz[c]
			b.rz[c] = b.rzNew[c]
			pc, zc := b.p[c], b.z[c]
			for i := 0; i < n; i++ {
				pc[i] = zc[i] + beta*pc[i]
			}
		})
	}
	failed := b.m
	b.abort(maxIter)
	return b.iters, fmt.Errorf("sparse: %d of %d batch columns: %w", failed, len(b.iters), ErrNoConvergence)
}

// abort records the iteration count for every still-active slot; the
// caller-visible vectors already hold the current iterates (x is updated in
// place).
func (b *batchState) abort(it int) {
	for c := b.m - 1; c >= 0; c-- {
		b.iters[b.orig[c]] = it
		b.remove(c)
	}
}
