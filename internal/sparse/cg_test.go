package sparse

import (
	"math/rand"
	"testing"
)

// randPattern returns a Builder loaded with a random pattern (duplicates
// included) plus the (i, j) sequence of its Add calls, so tests can replay
// the identical pattern with different values.
func randPattern(n, adds int, rng *rand.Rand) (*Builder, [][2]int) {
	b := NewBuilder(n)
	seq := make([][2]int, 0, adds)
	for k := 0; k < adds; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		b.Add(i, j, 0.5+rng.Float64())
		seq = append(seq, [2]int{i, j})
	}
	return b, seq
}

// replay builds a fresh CSR from the same Add sequence with the given values.
func replay(n int, seq [][2]int, vals []float64) *CSR {
	b := NewBuilder(n)
	for k, ij := range seq {
		b.Add(ij[0], ij[1], vals[k])
	}
	return b.Build()
}

func sameCSR(t *testing.T, got, want *CSR) {
	t.Helper()
	if got.N != want.N || len(got.Val) != len(want.Val) {
		t.Fatalf("shape mismatch: N=%d nnz=%d, want N=%d nnz=%d", got.N, len(got.Val), want.N, len(want.Val))
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("RowPtr[%d] = %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for k := range want.Val {
		if got.Col[k] != want.Col[k] {
			t.Fatalf("Col[%d] = %d, want %d", k, got.Col[k], want.Col[k])
		}
		if got.Val[k] != want.Val[k] { // bitwise: summation order must match
			t.Fatalf("Val[%d] = %v, want %v", k, got.Val[k], want.Val[k])
		}
	}
}

// TestBuildFixedMatchesBuild: the CSR assembled by BuildFixed must equal the
// one from Build bit for bit, duplicates summed in the same order.
func TestBuildFixedMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(40)
		b, _ := randPattern(n, 3*n+rng.Intn(5*n), rng)
		sameCSR(t, b.BuildFixed().Mat, b.Build())
	}
}

// TestFixedRefreshAllMatchesRebuild: after overwriting every term in place,
// RefreshAll must reproduce exactly the CSR a from-scratch Build would give
// for the same Add sequence with the new values.
func TestFixedRefreshAllMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(40)
		b, seq := randPattern(n, 3*n+rng.Intn(5*n), rng)
		f := b.BuildFixed()
		vals := make([]float64, f.NumTerms())
		for k := range vals {
			vals[k] = 0.5 + rng.Float64()
			f.SetTerm(int32(k), vals[k])
		}
		f.RefreshAll()
		sameCSR(t, f.Mat, replay(n, seq, vals))
	}
}

// TestFixedRefreshSlotMatchesRebuild: updating a random subset of terms and
// refreshing only their slots must agree bitwise with a full rebuild.
func TestFixedRefreshSlotMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(40)
		b, seq := randPattern(n, 3*n+rng.Intn(5*n), rng)
		f := b.BuildFixed()
		vals := make([]float64, f.NumTerms())
		for k := range vals {
			vals[k] = f.terms[k]
		}
		for changes := 1 + rng.Intn(8); changes > 0; changes-- {
			k := int32(rng.Intn(f.NumTerms()))
			vals[k] = 0.5 + rng.Float64()
			f.SetTerm(k, vals[k])
			f.RefreshSlot(f.TermSlot(k))
		}
		sameCSR(t, f.Mat, replay(n, seq, vals))
	}
}

// TestCGSolverReuseMatchesFreshSolves: one CGSolver reused across in-place
// matrix updates and warm-started solves must produce solutions and iteration
// counts bit-identical to independent SolveCG calls with the same history.
func TestCGSolverReuseMatchesFreshSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n = 160
	b := NewBuilder(n)
	var seq [][2]int
	addSym := func(i, j int, g float64) {
		b.Add(i, i, g)
		b.Add(j, j, g)
		b.Add(i, j, -g)
		b.Add(j, i, -g)
		seq = append(seq, [2]int{i, i}, [2]int{j, j}, [2]int{i, j}, [2]int{j, i})
	}
	conds := make([]float64, 0)
	for i := 0; i+1 < n; i++ {
		g := 0.5 + rng.Float64()
		addSym(i, i+1, g)
		conds = append(conds, g, g, -g, -g)
	}
	b.Add(0, 0, 2)
	seq = append(seq, [2]int{0, 0})
	conds = append(conds, 2)

	f := b.BuildFixed()
	solver := NewCGSolver(f.Mat)
	xReused := make([]float64, n)
	xFresh := make([]float64, n)
	rhs := make([]float64, n)
	for round := 0; round < 6; round++ {
		// Perturb a few chain conductances in place (all 4 terms of a bond).
		for c := 0; c < 3; c++ {
			bond := rng.Intn(n - 1)
			g := 0.5 + rng.Float64()
			for q, sign := range []float64{1, 1, -1, -1} {
				k := int32(4*bond + q)
				conds[k] = sign * g
				f.SetTerm(k, conds[k])
				f.RefreshSlot(f.TermSlot(k))
			}
		}
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		itReused, err := solver.Solve(xReused, rhs, CGOptions{Tol: 1e-9})
		if err != nil {
			t.Fatalf("round %d: reused: %v", round, err)
		}
		itFresh, err := SolveCG(replay(n, seq, conds), xFresh, rhs, CGOptions{Tol: 1e-9})
		if err != nil {
			t.Fatalf("round %d: fresh: %v", round, err)
		}
		if itReused != itFresh {
			t.Fatalf("round %d: %d iterations reused vs %d fresh", round, itReused, itFresh)
		}
		for i := range xReused {
			if xReused[i] != xFresh[i] { // bitwise
				t.Fatalf("round %d: x[%d] = %v reused vs %v fresh", round, i, xReused[i], xFresh[i])
			}
		}
	}
}

// raggedCSR builds a matrix whose row lengths cover the unrolled kernel's
// edge cases: empty rows, single-entry rows, and odd/even lengths.
func raggedCSR(n int, rng *rand.Rand) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for e := rng.Intn(6); e > 0; e-- {
			b.Add(i, rng.Intn(n), rng.NormFloat64())
		}
	}
	return b.Build()
}

// TestMulVecParallelMatchesSerial: row partitioning must be bit-identical to
// the serial product for any worker count.
func TestMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := raggedCSR(300, rng)
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.N)
	a.MulVec(want, x)
	for _, workers := range []int{2, 3, 7, 64, 1000} {
		got := make([]float64, a.N)
		a.MulVecParallel(got, x, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMulVecDotMatchesSeparate: the fused (and unrolled, pointer-gathered)
// kernel must return the same product vector and the same dot, bit for bit,
// as MulVec followed by a serial dot — on both the serial and parallel paths.
func TestMulVecDotMatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		a := raggedCSR(50+rng.Intn(300), rng)
		x := make([]float64, a.N)
		w := make([]float64, a.N)
		for i := range x {
			x[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		want := make([]float64, a.N)
		a.MulVec(want, x)
		var wantDot float64
		for i, v := range want {
			wantDot += w[i] * v
		}
		s := NewCGSolver(a)
		for _, workers := range []int{1, 4} {
			s.workers = workers
			got := make([]float64, a.N)
			gotDot := s.mulVecDot(got, x, w)
			if gotDot != wantDot {
				t.Fatalf("trial %d workers=%d: dot = %v, want %v", trial, workers, gotDot, wantDot)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers=%d: y[%d] = %v, want %v", trial, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// grid3D builds an l-layer g×g 7-point Laplacian with grounding — the shape
// of the thermal stack's conductance matrix at the benchmark resolution.
func grid3D(g, l int) *CSR {
	b := NewBuilder(g * g * l)
	id := func(z, i, j int) int { return z*g*g + i*g + j }
	for z := 0; z < l; z++ {
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				if i+1 < g {
					b.AddSym(id(z, i, j), id(z, i+1, j), 1)
				}
				if j+1 < g {
					b.AddSym(id(z, i, j), id(z, i, j+1), 1)
				}
				if z+1 < l {
					b.AddSym(id(z, i, j), id(z+1, i, j), 5)
				}
				if z == l-1 {
					b.AddDiag(id(z, i, j), 0.5)
				}
			}
		}
	}
	return b.Build()
}

// BenchmarkCSRMulVec measures the serial sparse product on a thermal-stack
// sized system (24×24 grid, 8 layers — the E1 benchmark resolution).
func BenchmarkCSRMulVec(b *testing.B) {
	a := grid3D(24, 8)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

// BenchmarkSolveCG measures a cold CG solve on the same system through the
// reusable solver (scratch allocated once, as in the placer's inner loop).
func BenchmarkSolveCG(b *testing.B) {
	a := grid3D(24, 8)
	s := NewCGSolver(a)
	rhs := make([]float64, a.N)
	rhs[a.N/2] = 100
	x := make([]float64, a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := s.Solve(x, rhs, CGOptions{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOnIterationObservesResiduals: the OnIteration hook must fire once per
// iteration (plus the initial residual at iteration 0), report monotonically
// identifiable residual values the solver itself computed, and leave the
// solution bit-identical to a hook-free solve.
func TestOnIterationObservesResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a, want := randSPD(120, rng)
	rhs := make([]float64, 120)
	a.MulVec(rhs, want)

	plain := make([]float64, 120)
	itPlain, err := SolveCG(a, plain, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}

	var iters []int
	var residuals []float64
	hooked := make([]float64, 120)
	itHooked, err := SolveCG(a, hooked, rhs, CGOptions{
		Tol: 1e-10,
		OnIteration: func(it int, res float64) {
			iters = append(iters, it)
			residuals = append(residuals, res)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if itHooked != itPlain {
		t.Fatalf("hooked solve took %d iterations, plain %d", itHooked, itPlain)
	}
	for i := range plain {
		if hooked[i] != plain[i] {
			t.Fatalf("x[%d] differs with hook: %v vs %v", i, hooked[i], plain[i])
		}
	}
	if len(iters) != itHooked+1 {
		t.Fatalf("hook fired %d times for %d iterations", len(iters), itHooked)
	}
	for i, it := range iters {
		if it != i {
			t.Fatalf("iteration sequence %v not 0..n", iters)
		}
	}
	if residuals[0] <= residuals[len(residuals)-1] {
		t.Fatalf("residual did not decrease: first %g last %g", residuals[0], residuals[len(residuals)-1])
	}
	if residuals[len(residuals)-1] > 1e-8 {
		t.Fatalf("final residual %g not converged", residuals[len(residuals)-1])
	}
}

// TestOnIterationWarmConverged: a warm start that is already converged still
// reports its initial residual at iteration 0.
func TestOnIterationWarmConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a, want := randSPD(60, rng)
	rhs := make([]float64, 60)
	a.MulVec(rhs, want)
	x := make([]float64, 60)
	copy(x, want)
	var calls int
	it, err := SolveCG(a, x, rhs, CGOptions{
		Tol:         1e-6,
		OnIteration: func(int, float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if it != 0 || calls != 1 {
		t.Fatalf("warm-converged solve: it=%d hook calls=%d, want 0 and 1", it, calls)
	}
}
