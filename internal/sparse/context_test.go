package sparse

import (
	"context"
	"errors"
	"testing"
)

// chainSystem builds the 1-D Laplacian chain — SPD with condition number
// ~n², so cold-started CG needs many iterations and the cancellation poll
// (every cancelCheckInterval iterations) is guaranteed to fire.
func chainSystem(n int) (*CSR, []float64) {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2.0001)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	return b.Build(), rhs
}

func TestSolveCGContextCanceled(t *testing.T) {
	a, rhs := chainSystem(512)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, a.N)
	it, err := NewCGSolver(a).SolveContext(ctx, x, rhs, CGOptions{Tol: 1e-12})
	if err == nil {
		t.Fatal("canceled solve returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if it == 0 || it > cancelCheckInterval {
		t.Fatalf("canceled at iteration %d, want the first poll at %d", it, cancelCheckInterval)
	}
}

// TestSolveCGContextUncanceledBitIdentical: the polling must not perturb the
// arithmetic — with a live context the iterate stream is exactly Solve's.
func TestSolveCGContextUncanceledBitIdentical(t *testing.T) {
	a, rhs := chainSystem(200)
	x1 := make([]float64, a.N)
	x2 := make([]float64, a.N)
	it1, err1 := NewCGSolver(a).Solve(x1, rhs, CGOptions{})
	it2, err2 := NewCGSolver(a).SolveContext(context.Background(), x2, rhs, CGOptions{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if it1 != it2 {
		t.Fatalf("iteration counts differ: %d vs %d", it1, it2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestSolveCGContextFreeFunction(t *testing.T) {
	a, rhs := chainSystem(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, a.N)
	if _, err := SolveCGContext(ctx, a, x, rhs, CGOptions{Tol: 1e-13}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCGContext error = %v, want context.Canceled", err)
	}
}
