// Package material defines the thermal material library and the 2.5D layer
// stack of Fig. 1 in the paper: organic substrate, C4 bump layer, silicon
// interposer, microbump layer, chiplet layer, and thermal interface material
// (TIM), with a copper heat spreader and air-forced heatsink above.
//
// Conductivities are in W/(m·K); thicknesses in meters. Values follow the
// HotSpot defaults and the passive-interposer assembly data the paper cites
// (Chaware et al. ECTC'12, Charbonnier et al. ESTC'12).
package material

// Material holds the properties needed by the steady-state thermal solver.
// Volumetric heat capacity is retained for completeness (transient analysis)
// although the placer only needs steady-state temperatures.
type Material struct {
	Name string
	// Conductivity is the thermal conductivity in W/(m·K).
	Conductivity float64
	// VolumetricHeatCapacity is in J/(m³·K).
	VolumetricHeatCapacity float64
}

// The material library. Composite bump layers mix metal and underfill epoxy:
// a C4/microbump layer is mostly epoxy resin with a sparse array of solder
// bumps and copper pillars, so its effective vertical conductivity sits
// between epoxy (~0.9) and solder (~50).
var (
	Silicon = Material{Name: "silicon", Conductivity: 150, VolumetricHeatCapacity: 1.75e6}
	Copper  = Material{Name: "copper", Conductivity: 400, VolumetricHeatCapacity: 3.55e6}
	// Epoxy underfill between and around chiplets and bumps.
	Underfill = Material{Name: "underfill", Conductivity: 0.9, VolumetricHeatCapacity: 2.0e6}
	// Organic package substrate (build-up laminate).
	Organic = Material{Name: "organic", Conductivity: 1.0, VolumetricHeatCapacity: 1.6e6}
	// TIM between die backside and spreader (high-performance thermal
	// grease, as used with server-class forced-air coolers).
	TIM = Material{Name: "tim", Conductivity: 5.0, VolumetricHeatCapacity: 4.0e6}
	// C4 bump layer: solder bumps in epoxy (effective composite).
	C4Layer = Material{Name: "c4", Conductivity: 3.0, VolumetricHeatCapacity: 2.2e6}
	// Microbump layer: finer-pitch bumps in epoxy; slightly better than C4
	// because of denser copper pillars.
	MicrobumpLayer = Material{Name: "ubump", Conductivity: 5.0, VolumetricHeatCapacity: 2.2e6}
)

// Layer is one modeling layer of the stack.
type Layer struct {
	Name string
	// Thickness in meters.
	Thickness float64
	// Base is the material filling the layer by default. The chiplet layer
	// uses Underfill as base and Silicon wherever a die is placed.
	Base Material
	// Heterogeneous marks the layer whose per-cell material depends on the
	// chiplet placement (the chiplet layer in this model).
	Heterogeneous bool
	// PowerLayer marks the layer into which chiplet power is injected
	// (the active silicon of the chiplet layer).
	PowerLayer bool
}

// Stack is an ordered bottom-to-top list of layers plus the package-level
// boundary parameters.
type Stack struct {
	Layers []Layer
	// SpreaderThickness and SinkThickness are the copper spreader / heatsink
	// base plate thicknesses in meters.
	SpreaderThickness float64
	SinkThickness     float64
	// SpreaderEdgeFactor and SinkEdgeFactor size the spreader and sink
	// relative to the interposer edge (paper: 2x and 4x respectively,
	// following HotSpot defaults).
	SpreaderEdgeFactor float64
	SinkEdgeFactor     float64
	// ConvectionResistance is the total sink-to-ambient convective resistance
	// in K/W for the air-forced heatsink. The paper adjusts this per system
	// to keep the heat transfer coefficient consistent.
	ConvectionResistance float64
	// SinkFinFactor multiplies the sink's lateral conductance to account for
	// the fin mass spreading heat across the base plate (HotSpot's lumped
	// sink is nearly isothermal; a bare 10 mm plate is not). Default 1.
	SinkFinFactor float64
	// BoardConductance is the weak secondary heat path through the package
	// bottom, total W/K over the whole substrate footprint.
	BoardConductance float64
	// AmbientC is the ambient temperature in Celsius (paper: 45 C).
	AmbientC float64
}

// DefaultStack returns the 6-layer 2.5D stack used by all case studies, as in
// Fig. 1 of the paper. Thicknesses are from the cited 65 nm passive-interposer
// assemblies: 100 um thinned dies, 100 um interposer, ~70 um C4 bumps, ~25 um
// microbumps, a 1 mm organic substrate and 50 um TIM bondline.
func DefaultStack() Stack {
	return Stack{
		Layers: []Layer{
			{Name: "substrate", Thickness: 1.0e-3, Base: Organic},
			{Name: "c4", Thickness: 70e-6, Base: C4Layer},
			{Name: "interposer", Thickness: 100e-6, Base: Silicon},
			{Name: "ubump", Thickness: 25e-6, Base: MicrobumpLayer},
			{Name: "chiplet", Thickness: 150e-6, Base: Underfill, Heterogeneous: true, PowerLayer: true},
			{Name: "tim", Thickness: 50e-6, Base: TIM},
		},
		SpreaderThickness:    2.0e-3,
		SinkThickness:        10.0e-3,
		SpreaderEdgeFactor:   2,
		SinkEdgeFactor:       4,
		ConvectionResistance: 0.031,
		SinkFinFactor:        1,
		BoardConductance:     2.0,
		AmbientC:             45,
	}
}

// ConvectionHTC is the forced-air heat transfer coefficient (W/(m²·K))
// assumed for the heatsink. The paper keeps this coefficient consistent
// across all simulations by adjusting the heatsink's convective resistance to
// the sink area; DefaultStackFor does the same.
const ConvectionHTC = 1000.0

// DefaultStackFor returns DefaultStack with the convective resistance
// adjusted to the interposer dimensions (mm) so that the heat transfer
// coefficient stays ConvectionHTC regardless of sink area — the paper's
// "to keep the heat transfer coefficient consistent across all simulations,
// we adjust the convective resistance of the heatsink".
func DefaultStackFor(widthMM, heightMM float64) Stack {
	s := DefaultStack()
	sinkArea := (widthMM * 1e-3 * s.SinkEdgeFactor) * (heightMM * 1e-3 * s.SinkEdgeFactor)
	s.ConvectionResistance = 1 / (ConvectionHTC * sinkArea)
	return s
}

// ChipletLayerIndex returns the index of the heterogeneous power layer, or -1
// if the stack has none.
func (s Stack) ChipletLayerIndex() int {
	for i, l := range s.Layers {
		if l.PowerLayer {
			return i
		}
	}
	return -1
}

// Validate reports obvious configuration errors.
func (s Stack) Validate() error {
	if len(s.Layers) == 0 {
		return errEmptyStack
	}
	for _, l := range s.Layers {
		if l.Thickness <= 0 {
			return &LayerError{Layer: l.Name, Reason: "non-positive thickness"}
		}
		if l.Base.Conductivity <= 0 {
			return &LayerError{Layer: l.Name, Reason: "non-positive conductivity"}
		}
	}
	if s.ConvectionResistance <= 0 {
		return &LayerError{Layer: "sink", Reason: "non-positive convection resistance"}
	}
	if s.SpreaderEdgeFactor < 1 || s.SinkEdgeFactor < s.SpreaderEdgeFactor {
		return &LayerError{Layer: "spreader/sink", Reason: "edge factors must satisfy 1 <= spreader <= sink"}
	}
	return nil
}

// LayerError describes an invalid layer configuration.
type LayerError struct {
	Layer  string
	Reason string
}

func (e *LayerError) Error() string { return "material: layer " + e.Layer + ": " + e.Reason }

var errEmptyStack = &LayerError{Layer: "(stack)", Reason: "no layers"}
