package material

import "testing"

func TestDefaultStackValid(t *testing.T) {
	s := DefaultStack()
	if err := s.Validate(); err != nil {
		t.Fatalf("default stack invalid: %v", err)
	}
	if len(s.Layers) != 6 {
		t.Errorf("want 6 modeling layers per Fig. 1, got %d", len(s.Layers))
	}
	order := []string{"substrate", "c4", "interposer", "ubump", "chiplet", "tim"}
	for i, name := range order {
		if s.Layers[i].Name != name {
			t.Errorf("layer %d = %q, want %q", i, s.Layers[i].Name, name)
		}
	}
}

func TestChipletLayerIndex(t *testing.T) {
	s := DefaultStack()
	idx := s.ChipletLayerIndex()
	if idx < 0 || !s.Layers[idx].PowerLayer || !s.Layers[idx].Heterogeneous {
		t.Fatalf("chiplet layer index wrong: %d", idx)
	}
	if s.Layers[idx].Name != "chiplet" {
		t.Errorf("power layer = %q", s.Layers[idx].Name)
	}
	empty := Stack{}
	if empty.ChipletLayerIndex() != -1 {
		t.Error("empty stack should have no chiplet layer")
	}
}

func TestConductivityOrdering(t *testing.T) {
	// Physical sanity: metals conduct better than silicon, silicon better
	// than composite bump layers, those better than epoxy/organic.
	if !(Copper.Conductivity > Silicon.Conductivity) {
		t.Error("copper should beat silicon")
	}
	if !(Silicon.Conductivity > MicrobumpLayer.Conductivity) {
		t.Error("silicon should beat microbump composite")
	}
	if !(MicrobumpLayer.Conductivity > Underfill.Conductivity) {
		t.Error("microbump composite should beat underfill")
	}
	if !(TIM.Conductivity > Organic.Conductivity) {
		t.Error("TIM should beat organic substrate")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := DefaultStack()
	bad.Layers[0].Thickness = 0
	if bad.Validate() == nil {
		t.Error("zero thickness should fail")
	}

	bad = DefaultStack()
	bad.Layers[2].Base.Conductivity = -1
	if bad.Validate() == nil {
		t.Error("negative conductivity should fail")
	}

	bad = DefaultStack()
	bad.ConvectionResistance = 0
	if bad.Validate() == nil {
		t.Error("zero convection resistance should fail")
	}

	bad = DefaultStack()
	bad.SinkEdgeFactor = 1.5
	bad.SpreaderEdgeFactor = 2
	if bad.Validate() == nil {
		t.Error("sink smaller than spreader should fail")
	}

	var empty Stack
	if empty.Validate() == nil {
		t.Error("empty stack should fail")
	}
}

func TestDefaultStackFor(t *testing.T) {
	// The heat transfer coefficient must stay constant: R_conv scales
	// inversely with sink area, so a 50 mm interposer has a lower convective
	// resistance than a 45 mm one by the area ratio.
	s45 := DefaultStackFor(45, 45)
	s50 := DefaultStackFor(50, 50)
	if err := s45.Validate(); err != nil {
		t.Fatal(err)
	}
	ratio := s45.ConvectionResistance / s50.ConvectionResistance
	want := (50.0 * 50.0) / (45.0 * 45.0)
	if diff := ratio - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("resistance ratio %v, want area ratio %v", ratio, want)
	}
	// Back out the HTC and check it matches the constant.
	sinkArea := 45e-3 * s45.SinkEdgeFactor * 45e-3 * s45.SinkEdgeFactor
	htc := 1 / (s45.ConvectionResistance * sinkArea)
	if htc < ConvectionHTC*0.999 || htc > ConvectionHTC*1.001 {
		t.Errorf("implied HTC %v, want %v", htc, ConvectionHTC)
	}
}

func TestLayerErrorMessage(t *testing.T) {
	e := &LayerError{Layer: "tim", Reason: "bad"}
	if e.Error() != "material: layer tim: bad" {
		t.Errorf("Error() = %q", e.Error())
	}
}
