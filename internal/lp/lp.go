// Package lp implements a dense two-phase simplex solver for linear programs
// and a branch-and-bound wrapper for mixed-integer linear programs. It stands
// in for the IBM CPLEX solver the paper uses for its routing optimization
// (Section III-B): problems have nonnegative variables, a linear objective,
// and <=, >= or == constraints.
//
// The solver targets the sizes arising from TAP-2.5D routing MILPs (hundreds
// of rows, thousands of columns) and favors robustness over raw speed:
// Dantzig pricing with an automatic switch to Bland's rule guards against
// cycling, and branch and bound explores most-fractional variables first.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // ==
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Sense is the optimization direction.
type Sense int

// Optimization senses.
const (
	Minimize Sense = iota
	Maximize
)

// Problem is a linear (or mixed-integer) program over nonnegative variables:
//
//	opt  c'x   subject to   A x (<=|>=|==) b,   x >= 0
type Problem struct {
	Sense Sense
	// C has one cost per variable.
	C []float64
	// A holds one dense row per constraint.
	A [][]float64
	// Rel[i] relates row i of A to B[i].
	Rel []Rel
	// B is the right-hand side.
	B []float64
	// Integer marks variables that must take integer values (MILP only);
	// nil means all continuous.
	Integer []bool
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.C) }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.A) }

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: no variables")
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.Rel) {
		return fmt.Errorf("lp: inconsistent constraint counts: A=%d B=%d Rel=%d", len(p.A), len(p.B), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	if p.Integer != nil && len(p.Integer) != n {
		return fmt.Errorf("lp: Integer mask has %d entries, want %d", len(p.Integer), n)
	}
	return nil
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution holds the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// SolveLP solves the LP relaxation of p with two-phase simplex.
func SolveLP(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := newTableau(p)
	return t.solve()
}

// tableau is a dense simplex tableau in canonical form.
//
// Columns: n structural variables, then one slack/surplus per inequality row,
// then one artificial per row that needs one. Rows: m constraints plus the
// objective row (stored separately).
type tableau struct {
	m, n     int       // constraints, structural vars
	cols     int       // total columns
	a        []float64 // m x cols, row-major
	b        []float64 // m
	cost     []float64 // phase-2 cost per column (minimization)
	basis    []int     // basic variable per row
	nArt     int
	artStart int
	sense    Sense
}

func newTableau(p *Problem) *tableau {
	m, n := len(p.A), len(p.C)
	// Count slack columns (one per LE/GE row).
	nSlack := 0
	for _, r := range p.Rel {
		if r != EQ {
			nSlack++
		}
	}
	t := &tableau{m: m, n: n, sense: p.Sense}
	// Artificials are allocated pessimistically (one per row); unused ones
	// are simply never made basic.
	t.artStart = n + nSlack
	t.cols = t.artStart + m
	t.a = make([]float64, m*t.cols)
	t.b = make([]float64, m)
	t.cost = make([]float64, t.cols)
	t.basis = make([]int, m)

	sign := 1.0
	if p.Sense == Maximize {
		sign = -1
	}
	for j := 0; j < n; j++ {
		t.cost[j] = sign * p.C[j]
	}

	slack := n
	for i := 0; i < m; i++ {
		row := t.a[i*t.cols : (i+1)*t.cols]
		copy(row, p.A[i])
		rhs := p.B[i]
		rel := p.Rel[i]
		// Normalize to nonnegative RHS.
		if rhs < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		t.b[i] = rhs
		switch rel {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			art := t.artStart + t.nArt
			row[art] = 1
			t.basis[i] = art
			t.nArt++
		case EQ:
			art := t.artStart + t.nArt
			row[art] = 1
			t.basis[i] = art
			t.nArt++
		}
	}
	return t
}

// maxSimplexIters bounds each phase. The routing MILPs pivot a few hundred
// times; this limit only trips on pathological inputs.
const maxSimplexIters = 200000

func (t *tableau) solve() (*Solution, error) {
	// Phase 1: minimize sum of artificials.
	if t.nArt > 0 {
		phase1 := make([]float64, t.cols)
		for k := 0; k < t.nArt; k++ {
			phase1[t.artStart+k] = 1
		}
		status, obj := t.iterate(phase1, t.cols)
		if status == IterLimit {
			return &Solution{Status: IterLimit}, nil
		}
		if obj > 1e-6 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any remaining artificials out of the basis.
		for i := 0; i < t.m; i++ {
			if t.basis[i] >= t.artStart {
				if !t.pivotOutArtificial(i) {
					// Redundant row; harmless to leave the artificial basic
					// at value zero, but exclude artificial columns from
					// phase 2 pricing below.
					continue
				}
			}
		}
	}
	// Phase 2 prices only real columns.
	status, obj := t.iterate(t.cost, t.artStart)
	switch status {
	case IterLimit:
		return &Solution{Status: IterLimit}, nil
	case Unbounded:
		return &Solution{Status: Unbounded}, nil
	}
	x := make([]float64, t.n)
	for i, bv := range t.basis {
		if bv < t.n {
			x[bv] = t.b[i]
		}
	}
	if t.sense == Maximize {
		obj = -obj
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// pivotOutArtificial tries to replace the artificial basic variable of row i
// with a real column having a nonzero coefficient. Returns false when the
// row is all zeros over real columns (redundant constraint).
func (t *tableau) pivotOutArtificial(i int) bool {
	row := t.a[i*t.cols : (i+1)*t.cols]
	for j := 0; j < t.artStart; j++ {
		if math.Abs(row[j]) > 1e-7 {
			t.pivot(i, j)
			return true
		}
	}
	return false
}

// iterate runs simplex with the given cost vector, pricing columns
// [0, limit). Returns the status and the objective value.
func (t *tableau) iterate(cost []float64, limit int) (Status, float64) {
	m, cols := t.m, t.cols
	// Reduced costs are computed from scratch each iteration over basic
	// rows: z_j = c_j - sum_i c_B(i) * a(i,j).
	cb := make([]float64, m)
	for iter := 0; iter < maxSimplexIters; iter++ {
		for i := 0; i < m; i++ {
			cb[i] = cost[t.basis[i]]
		}
		// Pricing: Dantzig rule normally, Bland's rule past a threshold to
		// break cycles.
		bland := iter > maxSimplexIters/2
		enter := -1
		best := -eps
		for j := 0; j < limit; j++ {
			rc := cost[j]
			for i := 0; i < m; i++ {
				if cb[i] != 0 {
					rc -= cb[i] * t.a[i*cols+j]
				}
			}
			if rc < -1e-9 {
				if bland {
					enter = j
					break
				}
				if rc < best {
					best = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			// Optimal for this phase.
			var obj float64
			for i := 0; i < m; i++ {
				obj += cost[t.basis[i]] * t.b[i]
			}
			return Optimal, obj
		}
		// Ratio test.
		leave := -1
		minRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			aij := t.a[i*cols+enter]
			if aij > eps {
				ratio := t.b[i] / aij
				if ratio < minRatio-eps ||
					(ratio < minRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					minRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, 0
		}
		t.pivot(leave, enter)
	}
	return IterLimit, 0
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	cols := t.cols
	prow := t.a[leave*cols : (leave+1)*cols]
	pval := prow[enter]
	inv := 1 / pval
	for j := range prow {
		prow[j] *= inv
	}
	t.b[leave] *= inv
	prow[enter] = 1 // exact

	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		row := t.a[i*cols : (i+1)*cols]
		f := row[enter]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	t.basis[leave] = enter
}

// MILPOptions bounds the branch-and-bound search.
type MILPOptions struct {
	// MaxNodes caps explored B&B nodes (default 10000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
}

// SolveMILP solves p with branch and bound on the variables marked Integer.
// The relaxations are solved by SolveLP with bound rows appended. When the
// node limit is hit, the best integer solution found so far (if any) is
// returned with Status Optimal; otherwise Status IterLimit.
func SolveMILP(p *Problem, opt MILPOptions) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Integer == nil {
		return SolveLP(p)
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 10000
	}
	intTol := opt.IntTol
	if intTol <= 0 {
		intTol = 1e-6
	}

	type bound struct {
		v   int
		rel Rel
		val float64
	}
	type node struct {
		bounds []bound
	}

	sign := 1.0
	if p.Sense == Maximize {
		sign = -1
	}

	var best *Solution
	bestObj := math.Inf(1) // in minimization terms (sign*objective)

	stack := []node{{}}
	nodes := 0
	for len(stack) > 0 && nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		sub := &Problem{Sense: p.Sense, C: p.C, A: p.A, Rel: p.Rel, B: p.B}
		if len(nd.bounds) > 0 {
			sub.A = append([][]float64{}, p.A...)
			sub.Rel = append([]Rel{}, p.Rel...)
			sub.B = append([]float64{}, p.B...)
			for _, bd := range nd.bounds {
				row := make([]float64, len(p.C))
				row[bd.v] = 1
				sub.A = append(sub.A, row)
				sub.Rel = append(sub.Rel, bd.rel)
				sub.B = append(sub.B, bd.val)
			}
		}
		sol, err := SolveLP(sub)
		if err != nil {
			return nil, err
		}
		if sol.Status != Optimal {
			continue // infeasible/limit branch: prune
		}
		relaxObj := sign * sol.Objective
		if relaxObj >= bestObj-1e-9 {
			continue // bound prune
		}
		// Find most fractional integer variable.
		frac := -1
		fracDist := 0.0
		for v, isInt := range p.Integer {
			if !isInt {
				continue
			}
			f := sol.X[v] - math.Floor(sol.X[v])
			d := math.Min(f, 1-f)
			if d > intTol && d > fracDist {
				fracDist = d
				frac = v
			}
		}
		if frac < 0 {
			// Integer feasible.
			if relaxObj < bestObj {
				bestObj = relaxObj
				rounded := make([]float64, len(sol.X))
				copy(rounded, sol.X)
				for v, isInt := range p.Integer {
					if isInt {
						rounded[v] = math.Round(rounded[v])
					}
				}
				best = &Solution{Status: Optimal, X: rounded, Objective: sol.Objective}
			}
			continue
		}
		fl := math.Floor(sol.X[frac])
		// Explore the "down" branch last (on top of the stack first) —
		// a mild heuristic that finds integer solutions early on
		// transportation-like problems.
		stack = append(stack,
			node{bounds: append(append([]bound{}, nd.bounds...), bound{frac, GE, fl + 1})},
			node{bounds: append(append([]bound{}, nd.bounds...), bound{frac, LE, fl})},
		)
	}
	if best != nil {
		return best, nil
	}
	if nodes >= maxNodes {
		return &Solution{Status: IterLimit}, nil
	}
	return &Solution{Status: Infeasible}, nil
}
