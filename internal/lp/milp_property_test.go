package lp

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceBinary solves a small pure-binary maximization problem by
// enumeration: max c'x st Ax <= b, x in {0,1}^n.
func bruteForceBinary(c []float64, a [][]float64, b []float64) (float64, bool) {
	n := len(c)
	best := math.Inf(-1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		feasible := true
		for i, row := range a {
			var lhs float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					lhs += row[j]
				}
			}
			if lhs > b[i]+1e-9 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		var obj float64
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				obj += c[j]
			}
		}
		if obj > best {
			best = obj
			found = true
		}
	}
	return best, found
}

// TestMILPMatchesBruteForce cross-checks branch and bound against exhaustive
// enumeration on random binary knapsack-style instances.
func TestMILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		nv := 3 + rng.Intn(6)
		c := make([]float64, nv)
		for j := range c {
			c[j] = 1 + rng.Float64()*10
		}
		var a [][]float64
		var b []float64
		nc := 1 + rng.Intn(3)
		for i := 0; i < nc; i++ {
			row := make([]float64, nv)
			for j := range row {
				row[j] = rng.Float64() * 5
			}
			a = append(a, row)
			b = append(b, 2+rng.Float64()*8)
		}
		want, feasible := bruteForceBinary(c, a, b)
		if !feasible {
			continue // x = 0 is always feasible here, so this cannot happen
		}

		// Build the MILP with 0/1 bounds as extra rows.
		p := &Problem{Sense: Maximize, C: c, Integer: make([]bool, nv)}
		for i := range a {
			p.A = append(p.A, a[i])
			p.Rel = append(p.Rel, LE)
			p.B = append(p.B, b[i])
		}
		for j := 0; j < nv; j++ {
			row := make([]float64, nv)
			row[j] = 1
			p.A = append(p.A, row)
			p.Rel = append(p.Rel, LE)
			p.B = append(p.B, 1)
			p.Integer[j] = true
		}
		sol, err := SolveMILP(p, MILPOptions{MaxNodes: 50000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: B&B %v vs brute force %v", trial, sol.Objective, want)
		}
	}
}
