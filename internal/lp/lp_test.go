package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	p := &Problem{C: []float64{1}, A: [][]float64{{1, 2}}, Rel: []Rel{LE}, B: []float64{1}}
	if err := p.Validate(); err == nil {
		t.Error("row width mismatch accepted")
	}
	p = &Problem{}
	if err := p.Validate(); err == nil {
		t.Error("empty problem accepted")
	}
	p = &Problem{C: []float64{1}, A: [][]float64{{1}}, Rel: []Rel{LE}, B: []float64{1, 2}}
	if err := p.Validate(); err == nil {
		t.Error("B length mismatch accepted")
	}
	p = &Problem{C: []float64{1}, A: nil, Rel: nil, B: nil, Integer: []bool{true, false}}
	if err := p.Validate(); err == nil {
		t.Error("Integer mask mismatch accepted")
	}
}

func TestStringers(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Rel strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("Status strings wrong")
	}
	if Rel(9).String() == "" || Status(9).String() == "" {
		t.Error("unknown values should still format")
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
	p := &Problem{
		Sense: Maximize,
		C:     []float64{3, 5},
		A:     [][]float64{{1, 0}, {0, 2}, {3, 2}},
		Rel:   []Rel{LE, LE, LE},
		B:     []float64{4, 12, 18},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 36, 1e-6) || !approx(s.X[0], 2, 1e-6) || !approx(s.X[1], 6, 1e-6) {
		t.Errorf("got X=%v obj=%v", s.X, s.Objective)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y st x + y >= 10, x <= 8, y <= 8 -> x=8, y=2, obj=22.
	p := &Problem{
		Sense: Minimize,
		C:     []float64{2, 3},
		A:     [][]float64{{1, 1}, {1, 0}, {0, 1}},
		Rel:   []Rel{GE, LE, LE},
		B:     []float64{10, 8, 8},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 22, 1e-6) {
		t.Fatalf("got %+v", s)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y st x + 2y == 4, x - y == 1 -> x=2, y=1, obj=3.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 2}, {1, -1}},
		Rel: []Rel{EQ, EQ},
		B:   []float64{4, 1},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 2, 1e-6) || !approx(s.X[1], 1, 1e-6) {
		t.Fatalf("got %+v", s)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x st -x <= -5  (i.e. x >= 5) -> x=5.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		Rel: []Rel{LE},
		B:   []float64{-5},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 5, 1e-6) {
		t.Fatalf("got %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 5 and x <= 3.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		Rel: []Rel{GE, LE},
		B:   []float64{5, 3},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x st x >= 1.
	p := &Problem{
		Sense: Maximize,
		C:     []float64{1},
		A:     [][]float64{{1}},
		Rel:   []Rel{GE},
		B:     []float64{1},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Classic Beale cycling example (degenerate without anti-cycling).
	p := &Problem{
		Sense: Minimize,
		C:     []float64{-0.75, 150, -0.02, 6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		Rel: []Rel{LE, LE, LE},
		B:   []float64{0, 0, 1},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -0.05, 1e-6) {
		t.Fatalf("got %+v, want optimal -0.05", s)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 sources (supply 20, 30) x 2 sinks (demand 25, 25), costs:
	//   c11=1 c12=4 / c21=2 c22=1.
	// Optimal: x11=20, x21=5, x22=25 -> 20+10+25 = 55.
	p := &Problem{
		C: []float64{1, 4, 2, 1},
		A: [][]float64{
			{1, 1, 0, 0},
			{0, 0, 1, 1},
			{1, 0, 1, 0},
			{0, 1, 0, 1},
		},
		Rel: []Rel{LE, LE, EQ, EQ},
		B:   []float64{20, 30, 25, 25},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 55, 1e-6) {
		t.Fatalf("got %+v", s)
	}
}

func TestMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c st 3a + 4b + 2c <= 6, a,b,c in {0,1}.
	// Best: a + c (weight 5, value 17) vs b + c (weight 6, value 20). -> 20.
	one := []float64{1, 0, 0}
	two := []float64{0, 1, 0}
	three := []float64{0, 0, 1}
	p := &Problem{
		Sense:   Maximize,
		C:       []float64{10, 13, 7},
		A:       [][]float64{{3, 4, 2}, one, two, three},
		Rel:     []Rel{LE, LE, LE, LE},
		B:       []float64{6, 1, 1, 1},
		Integer: []bool{true, true, true},
	}
	s, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 20, 1e-6) {
		t.Fatalf("got %+v", s)
	}
	for i, v := range s.X {
		if !approx(v, math.Round(v), 1e-9) {
			t.Errorf("X[%d] = %v not integral", i, v)
		}
	}
}

func TestMILPMatchesLPWhenIntegral(t *testing.T) {
	// Pure transportation LPs have integral optima; MILP must agree.
	p := &Problem{
		C: []float64{3, 1, 4, 2},
		A: [][]float64{
			{1, 1, 0, 0},
			{0, 0, 1, 1},
			{1, 0, 1, 0},
			{0, 1, 0, 1},
		},
		Rel: []Rel{EQ, EQ, EQ, EQ},
		B:   []float64{10, 10, 10, 10},
	}
	lpSol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	pi := *p
	pi.Integer = []bool{true, true, true, true}
	milpSol, err := SolveMILP(&pi, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lpSol.Status != Optimal || milpSol.Status != Optimal {
		t.Fatalf("statuses: %v %v", lpSol.Status, milpSol.Status)
	}
	if !approx(lpSol.Objective, milpSol.Objective, 1e-6) {
		t.Errorf("LP %v vs MILP %v", lpSol.Objective, milpSol.Objective)
	}
}

func TestMILPInfeasible(t *testing.T) {
	// 2x == 3 with x integer has no solution (LP relaxation x=1.5).
	p := &Problem{
		C:       []float64{1},
		A:       [][]float64{{2}},
		Rel:     []Rel{EQ},
		B:       []float64{3},
		Integer: []bool{true},
	}
	s, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestMILPNilIntegerFallsBack(t *testing.T) {
	p := &Problem{
		Sense: Maximize,
		C:     []float64{1},
		A:     [][]float64{{1}},
		Rel:   []Rel{LE},
		B:     []float64{2.5},
	}
	s, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 2.5, 1e-9) {
		t.Fatalf("got %+v", s)
	}
}

func TestRandomLPsSatisfyConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		p := &Problem{Sense: Minimize, C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.Float64() // positive costs + LE rows -> bounded
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()*2 - 0.5
			}
			p.A = append(p.A, row)
			p.Rel = append(p.Rel, LE)
			p.B = append(p.B, rng.Float64()*10)
		}
		// Add one GE row to force a nontrivial optimum.
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.A = append(p.A, row)
		p.Rel = append(p.Rel, GE)
		p.B = append(p.B, rng.Float64())

		s, err := SolveLP(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			continue // genuinely infeasible random instance
		}
		for i, arow := range p.A {
			var lhs float64
			for j, c := range arow {
				lhs += c * s.X[j]
			}
			switch p.Rel[i] {
			case LE:
				if lhs > p.B[i]+1e-6 {
					t.Fatalf("trial %d: row %d violated: %v <= %v", trial, i, lhs, p.B[i])
				}
			case GE:
				if lhs < p.B[i]-1e-6 {
					t.Fatalf("trial %d: row %d violated: %v >= %v", trial, i, lhs, p.B[i])
				}
			}
		}
		for j, v := range s.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: X[%d] = %v negative", trial, j, v)
			}
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A 40-row, 400-column assignment-flavored LP.
	rng := rand.New(rand.NewSource(5))
	n, m := 400, 40
	p := &Problem{C: make([]float64, n)}
	for j := range p.C {
		p.C[j] = 1 + rng.Float64()*10
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if rng.Intn(10) == 0 {
				row[j] = 1
			}
		}
		p.A = append(p.A, row)
		p.Rel = append(p.Rel, GE)
		p.B = append(p.B, 1+rng.Float64()*5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLP(p); err != nil {
			b.Fatal(err)
		}
	}
}
