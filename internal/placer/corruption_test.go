package placer

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tap25d/internal/faultinject"
	"tap25d/internal/metrics"
)

// snapshotCheckpoint runs a short anneal and returns its checkpoint snapshot,
// the raw material for the corruption tables below.
func snapshotCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	sys := placerSystem()
	var cp *Checkpoint
	opt := Options{Steps: 40, Seed: 6, CheckpointEvery: 20,
		Checkpoint: func(c *Checkpoint) error { cp = c; return nil }}
	if _, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint emitted")
	}
	return cp
}

// savedCheckpointBytes persists cp through SaveCheckpointFile and returns the
// durable envelope bytes as written to disk.
func savedCheckpointBytes(t *testing.T, cp *Checkpoint) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := SaveCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDecodeCheckpointCorruption drives DecodeCheckpoint through every
// damage class: each must yield a clean typed error — matchable with
// errors.Is — and never a panic or a silently wrong snapshot.
func TestDecodeCheckpointCorruption(t *testing.T) {
	cp := snapshotCheckpoint(t)
	good := savedCheckpointBytes(t, cp)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated", func(b []byte) []byte {
			return b[:len(b)/2]
		}, ErrCheckpointCorrupt},
		{"empty", func(b []byte) []byte {
			return nil
		}, ErrCheckpointCorrupt},
		{"garbage", func(b []byte) []byte {
			return []byte("\x00\x01not json at all\xff")
		}, ErrCheckpointCorrupt},
		{"bit_flip_in_payload", func(b []byte) []byte {
			// Flip a digit inside the payload body so the JSON stays
			// parsable but the checksum no longer matches.
			s := string(b)
			i := strings.Index(s, `"step":`)
			if i < 0 {
				t.Fatal("fixture has no step field")
			}
			mut := []byte(s)
			for j := i + len(`"step":`); j < len(mut); j++ {
				if mut[j] >= '0' && mut[j] <= '9' {
					mut[j] = '0' + ('9'-mut[j])%10
					return mut
				}
			}
			t.Fatal("no digit to flip")
			return nil
		}, ErrCheckpointCorrupt},
		{"checksum_field_damaged", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"crc32c": "`, `"crc32c": "0`, 1))
		}, ErrCheckpointCorrupt},
		{"format_skew", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), checkpointFormat, "tap25d-ckpt-v99", 1))
		}, ErrCheckpointVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCheckpoint(strings.NewReader(string(tc.mutate(append([]byte(nil), good...)))))
			if err == nil {
				t.Fatal("damaged checkpoint decoded cleanly")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("error %v does not match %v", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeCheckpointVersionSkew damages the payload's version stamp: the
// envelope still checks out (the CRC is recomputed), so the error must be the
// version sentinel, not corruption.
func TestDecodeCheckpointVersionSkew(t *testing.T) {
	cp := snapshotCheckpoint(t)
	skew := *cp
	skew.Version = CheckpointVersion + 7
	raw := savedCheckpointBytes(t, &skew)
	_, err := DecodeCheckpoint(strings.NewReader(string(raw)))
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("version-skewed checkpoint error = %v, want ErrCheckpointVersion", err)
	}
	if errors.Is(err, ErrCheckpointCorrupt) {
		t.Error("version skew misreported as corruption")
	}
}

// TestDecodeCheckpointLegacyBare keeps the pre-envelope format readable: a
// bare Checkpoint JSON (what Encode still writes for in-band transport)
// decodes without an envelope or checksum.
func TestDecodeCheckpointLegacyBare(t *testing.T) {
	cp := snapshotCheckpoint(t)
	var sb strings.Builder
	if err := cp.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("legacy bare checkpoint rejected: %v", err)
	}
	if got.Step != cp.Step || got.RNGDraws != cp.RNGDraws {
		t.Fatalf("legacy decode mangled snapshot: got step=%d draws=%d want step=%d draws=%d",
			got.Step, got.RNGDraws, cp.Step, cp.RNGDraws)
	}
}

// corruptFile overwrites the tail of path, simulating a torn write.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadCheckpointFallback corrupts the newest generation after two saves
// and checks the load falls back to the surviving previous generation.
func TestLoadCheckpointFallback(t *testing.T) {
	cp := snapshotCheckpoint(t)
	path := filepath.Join(t.TempDir(), "cp.json")

	older := *cp
	older.Step = cp.Step - 1
	if err := SaveCheckpointFile(path, &older); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(PrevCheckpointPath(path)); err != nil {
		t.Fatalf("second save kept no previous generation: %v", err)
	}

	// Healthy newest: no fallback.
	got, fellBack, err := LoadCheckpointFallback(path)
	if err != nil || fellBack {
		t.Fatalf("healthy load: got fallback=%v err=%v", fellBack, err)
	}
	if got.Step != cp.Step {
		t.Fatalf("healthy load returned step %d, want newest %d", got.Step, cp.Step)
	}

	// Torn newest: fall back to the previous generation.
	corruptFile(t, path)
	got, fellBack, err = LoadCheckpointFallback(path)
	if err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if !fellBack {
		t.Fatal("fallback not reported")
	}
	if got.Step != older.Step {
		t.Fatalf("fallback returned step %d, want previous generation %d", got.Step, older.Step)
	}

	// Both generations gone bad: typed corruption error, no panic.
	corruptFile(t, PrevCheckpointPath(path))
	_, _, err = LoadCheckpointFallback(path)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("double corruption error = %v, want ErrCheckpointCorrupt", err)
	}
}

// TestLoadCheckpointFileMissing keeps the fresh-start contract: a missing
// checkpoint (neither generation on disk) is fs.ErrNotExist-matchable so CLI
// resume paths can treat it as "start from scratch".
func TestLoadCheckpointFileMissing(t *testing.T) {
	_, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "absent.json"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing checkpoint error = %v, want fs.ErrNotExist", err)
	}
}

// TestFileStoreWriteRetry arms the checkpoint-write injection point for two
// failures: the store must retry through them, count the retries, and still
// persist a loadable snapshot.
func TestFileStoreWriteRetry(t *testing.T) {
	cp := snapshotCheckpoint(t)
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCheckpointWrite, faultinject.Spec{Every: 1, Count: 2})
	var ctr metrics.Counters
	fs := &FileStore{Dir: t.TempDir(), Retries: 2, Backoff: time.Millisecond,
		Counters: &ctr, Inject: inj}
	if err := fs.Checkpoint(cp); err != nil {
		t.Fatalf("write with retry budget failed: %v", err)
	}
	if ctr.CkptWriteRetries != 2 {
		t.Errorf("CkptWriteRetries = %d, want 2", ctr.CkptWriteRetries)
	}
	got, err := fs.Restore(cp.Run)
	if err != nil || got == nil {
		t.Fatalf("restore after retried write: cp=%v err=%v", got, err)
	}
	if got.Step != cp.Step {
		t.Errorf("restored step %d, want %d", got.Step, cp.Step)
	}
}

// TestFileStoreWriteRetryExhausted: persistent write failure exhausts the
// retry budget and surfaces the injected cause.
func TestFileStoreWriteRetryExhausted(t *testing.T) {
	cp := snapshotCheckpoint(t)
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCheckpointWrite, faultinject.Spec{Every: 1})
	fs := &FileStore{Dir: t.TempDir(), Retries: 1, Backoff: time.Millisecond, Inject: inj}
	err := fs.Checkpoint(cp)
	if err == nil {
		t.Fatal("persistent write failure reported success")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error %v lost the injected cause", err)
	}
	if inj.Fired(faultinject.PointCheckpointWrite) != 2 {
		t.Errorf("fired %d write attempts, want 2 (initial + 1 retry)",
			inj.Fired(faultinject.PointCheckpointWrite))
	}
}

// TestFileStoreRestoreFallback corrupts the newest generation and checks the
// store falls back, emits the resume_fallback event, and counts it.
func TestFileStoreRestoreFallback(t *testing.T) {
	cp := snapshotCheckpoint(t)
	var ctr metrics.Counters
	var events []Event
	fs := &FileStore{Dir: t.TempDir(), Counters: &ctr,
		Events: func(e Event) { events = append(events, e) }}

	older := *cp
	older.Step = cp.Step - 1
	older.CompletedSteps = cp.CompletedSteps - 1
	if err := fs.Checkpoint(&older); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, fs.Path(cp.Run))

	got, err := fs.Restore(cp.Run)
	if err != nil {
		t.Fatalf("restore did not fall back: %v", err)
	}
	if got.Step != older.Step {
		t.Fatalf("restored step %d, want previous generation %d", got.Step, older.Step)
	}
	if ctr.ResumeFallbacks != 1 {
		t.Errorf("ResumeFallbacks = %d, want 1", ctr.ResumeFallbacks)
	}
	if len(events) != 1 || events[0].Kind != EventResumeFallback {
		t.Fatalf("events = %+v, want one resume_fallback", events)
	}
	if events[0].Error == "" || !strings.Contains(events[0].Error, "corrupt") {
		t.Errorf("fallback event error %q does not explain the rejection", events[0].Error)
	}
	if events[0].Step != older.CompletedSteps {
		t.Errorf("fallback event step %d, want %d", events[0].Step, older.CompletedSteps)
	}
}

// TestFileStoreStrict: strict mode refuses the fallback so operators can stop
// and inspect instead of silently losing progress.
func TestFileStoreStrict(t *testing.T) {
	cp := snapshotCheckpoint(t)
	fs := &FileStore{Dir: t.TempDir(), Strict: true}
	older := *cp
	older.Step = cp.Step - 1
	if err := fs.Checkpoint(&older); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, fs.Path(cp.Run))
	_, err := fs.Restore(cp.Run)
	if err == nil {
		t.Fatal("strict store fell back silently")
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("strict error %v does not carry the corruption cause", err)
	}
}

// TestFileStoreFreshStart: no generation on disk means a nil checkpoint and
// nil error — the run starts from scratch, matching the CLI resume contract.
func TestFileStoreFreshStart(t *testing.T) {
	fs := &FileStore{Dir: t.TempDir()}
	cp, err := fs.Restore(0)
	if cp != nil || err != nil {
		t.Fatalf("fresh start: cp=%v err=%v, want nil/nil", cp, err)
	}
}

// TestFileStoreClean removes both generations.
func TestFileStoreClean(t *testing.T) {
	cp := snapshotCheckpoint(t)
	fs := &FileStore{Dir: t.TempDir()}
	if err := fs.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	fs.Clean(cp.Run + 1)
	if _, err := os.Stat(fs.Path(cp.Run)); !errors.Is(err, os.ErrNotExist) {
		t.Error("newest generation survived Clean")
	}
	if _, err := os.Stat(PrevCheckpointPath(fs.Path(cp.Run))); !errors.Is(err, os.ErrNotExist) {
		t.Error("previous generation survived Clean")
	}
}

// TestJSONLSinkJournalFault: an injected journal-write failure drops the
// event but never aborts the run; the sink reports what was lost.
func TestJSONLSinkJournalFault(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointJournalWrite, faultinject.Spec{At: 2})
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	sink.SetInjector(inj)
	for i := 0; i < 3; i++ {
		sink.Emit(Event{Kind: EventStep, Step: i})
	}
	if sink.Lost() != 1 {
		t.Errorf("Lost = %d, want 1", sink.Lost())
	}
	if !errors.Is(sink.Err(), faultinject.ErrInjected) {
		t.Errorf("sink error %v is not the injected fault", sink.Err())
	}
	if n := strings.Count(sb.String(), "\n"); n != 2 {
		t.Errorf("journal holds %d lines, want 2 (one dropped)", n)
	}
}
