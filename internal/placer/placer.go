// Package placer implements the TAP-2.5D thermally-aware chiplet placement
// algorithm (Section III-C of the paper): simulated annealing over the
// Occupation Chiplet Matrix with move, rotate and jump operators, the
// dynamically-weighted cost function of Eqns. (12)-(13), and the acceptance
// probability and annealing schedule of Eqn. (14) (K decaying from 1 to 0.01
// by a factor of 0.95).
//
// The placer is generic over an Evaluator so tests can use cheap synthetic
// objectives; production code uses SystemEvaluator, which couples the
// finite-difference thermal model with the fast inter-chiplet router.
package placer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"tap25d/internal/btree"
	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
	"tap25d/internal/metrics"
	"tap25d/internal/ocm"
	"tap25d/internal/route"
	"tap25d/internal/thermal"
)

// Evaluator scores a placement: peak temperature (°C) and total inter-chiplet
// wirelength (mm). Implementations may be stateful (warm starts) and need not
// be safe for concurrent use.
type Evaluator interface {
	Evaluate(p chiplet.Placement) (tempC, wirelengthMM float64, err error)
}

// SystemEvaluator is the production evaluator: thermal simulation plus the
// fast router.
type SystemEvaluator struct {
	sys   *chiplet.System
	model *thermal.Model
	ropts route.Options
	ctr   *metrics.Counters
}

// NewSystemEvaluator builds an evaluator for sys with the given thermal and
// routing options. The thermal model's counters are shared with the
// evaluator's own (topt.Counters is honored when set; otherwise one is
// allocated), so Metrics reports solver and evaluation statistics together.
func NewSystemEvaluator(sys *chiplet.System, topt thermal.Options, ropt route.Options) (*SystemEvaluator, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	ctr := topt.Counters
	if ctr == nil {
		ctr = &metrics.Counters{}
		topt.Counters = ctr
	}
	m, err := thermal.NewModel(sys.InterposerW, sys.InterposerH, topt)
	if err != nil {
		return nil, err
	}
	return &SystemEvaluator{sys: sys, model: m, ropts: ropt, ctr: ctr}, nil
}

// Sources converts a placement into thermal heat sources (every chiplet
// contributes its silicon footprint; dummy dies carry zero power but still
// conduct heat).
func Sources(sys *chiplet.System, p chiplet.Placement) []thermal.Source {
	srcs := make([]thermal.Source, len(sys.Chiplets))
	for i := range sys.Chiplets {
		srcs[i] = thermal.Source{Rect: p.Rect(sys, i), Power: sys.Chiplets[i].Power}
	}
	return srcs
}

// Evaluate implements Evaluator.
func (e *SystemEvaluator) Evaluate(p chiplet.Placement) (float64, float64, error) {
	e.ctr.Evaluations++
	res, err := e.model.Solve(Sources(e.sys, p))
	if err != nil {
		return 0, 0, err
	}
	e.ctr.RouteCalls++
	r, err := route.Route(e.sys, p, e.ropts)
	if err != nil {
		return 0, 0, err
	}
	return res.PeakC, r.TotalWirelengthMM, nil
}

// Thermal exposes the underlying thermal model (for rendering maps of the
// final placement).
func (e *SystemEvaluator) Thermal() *thermal.Model { return e.model }

// Metrics returns the evaluation counters accumulated so far.
func (e *SystemEvaluator) Metrics() metrics.Counters { return *e.ctr }

func (e *SystemEvaluator) counters() *metrics.Counters { return e.ctr }

// Op identifies a neighbor-generation operator (Fig. 2b-d).
type Op int

// Neighbor operators.
const (
	OpMove Op = iota
	OpRotate
	OpJump
)

func (o Op) String() string {
	switch o {
	case OpMove:
		return "move"
	case OpRotate:
		return "rotate"
	case OpJump:
		return "jump"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Options configures the annealer. The zero value reproduces the paper's
// settings except Steps, which defaults to 1000 for tractability; the paper
// calibrates 4500 steps to fill a 25-hour budget with HotSpot+CPLEX in the
// loop.
type Options struct {
	// Steps is the number of SA steps per run (default 1000).
	Steps int
	// KStart, KEnd, KDecay define the annealing temperature schedule
	// (defaults 1, 0.01, 0.95 per Section III-C5).
	KStart, KEnd, KDecay float64
	// Seed makes runs reproducible. Run r of a multi-run uses Seed+r.
	Seed int64
	// CriticalC is the temperature threshold of Eqn. (13) (default 85).
	CriticalC float64
	// AmbientC is the ambient constant in Eqn. (13) (default 45).
	AmbientC float64
	// Initial overrides the starting placement. nil runs the Compact-2.5D
	// baseline (B*-tree + fast-SA) and legalizes it onto the OCM grid,
	// exactly as Section III-C2 prescribes.
	Initial *chiplet.Placement
	// CompactSteps is the step budget for the initial Compact-2.5D run
	// (default 20000).
	CompactSteps int
	// GridPitch is the OCM pitch in mm (default 1).
	GridPitch float64
	// MoveWeight, RotateWeight and JumpWeight set the operator mix
	// (defaults 0.5/0.25/0.25; the paper does not publish its mix).
	MoveWeight, RotateWeight, JumpWeight float64
	// DisableJump removes the jump operator (used by the E9 ablation to
	// demonstrate the 'sliding tile puzzle' issue of Section III-C3).
	DisableJump bool
	// FixedAlpha, when >= 0, replaces the dynamic alpha of Eqn. (13)
	// (used by the E9 ablation). Negative means dynamic (default).
	FixedAlpha float64
	// History records one Sample per step when true.
	History bool
}

func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 1000
	}
	if o.KStart == 0 {
		o.KStart = 1
	}
	if o.KEnd == 0 {
		o.KEnd = 0.01
	}
	if o.KDecay == 0 {
		o.KDecay = 0.95
	}
	if o.CriticalC == 0 {
		o.CriticalC = 85
	}
	if o.AmbientC == 0 {
		o.AmbientC = 45
	}
	if o.CompactSteps == 0 {
		o.CompactSteps = 20000
	}
	if o.GridPitch == 0 {
		o.GridPitch = ocm.DefaultPitchMM
	}
	if o.MoveWeight == 0 && o.RotateWeight == 0 && o.JumpWeight == 0 {
		o.MoveWeight, o.RotateWeight, o.JumpWeight = 0.5, 0.25, 0.25
	}
	if o.DisableJump {
		o.JumpWeight = 0
	}
	if o.FixedAlpha == 0 {
		o.FixedAlpha = -1
	}
	return o
}

// Sample is one annealing step's record.
type Sample struct {
	Step         int
	Op           Op
	TempC        float64
	WirelengthMM float64
	Cost         float64
	K            float64
	Alpha        float64
	Accepted     bool
}

// Result is the outcome of a placement run.
type Result struct {
	Placement    chiplet.Placement
	PeakC        float64
	WirelengthMM float64
	// Initial diagnostics: the starting placement and its metrics.
	Initial           chiplet.Placement
	InitialPeakC      float64
	InitialWirelength float64
	Steps             int
	Accepted          int
	Run               int // index of the winning run in PlaceBestOf
	History           []Sample
	// Metrics carries the evaluator's counters when the evaluator exposes
	// them; for PlaceBestOf it aggregates the counters of every run.
	Metrics metrics.Counters
}

// Alpha computes the dynamic temperature weight of Eqn. (13).
func Alpha(tempC, ambientC, criticalC float64) float64 {
	if tempC > criticalC {
		return math.Min(0.1+(tempC-ambientC)/100, 0.9)
	}
	return 0
}

// Better reports whether solution a dominates b under the paper's selection
// rule: a thermally feasible solution (peak <= critical) beats an infeasible
// one; among feasible solutions lower wirelength wins; among infeasible ones
// lower temperature wins (wirelength breaking ties). Used to pick across
// independent runs; within a run the annealer tracks its best solution with
// the Eqn. (12) cost so wirelength keeps its weight (see betterCost).
func Better(aTemp, aWL, bTemp, bWL, criticalC float64) bool {
	aOK, bOK := aTemp <= criticalC, bTemp <= criticalC
	switch {
	case aOK && !bOK:
		return true
	case !aOK && bOK:
		return false
	case aOK && bOK:
		return aWL < bWL
	default:
		if aTemp != bTemp {
			return aTemp < bTemp
		}
		return aWL < bWL
	}
}

// betterCost reports whether (aTemp, aWL) beats (bTemp, bWL) for best-seen
// tracking inside a run: feasibility first, lower wirelength among feasible
// solutions, and the alpha-weighted Eqn. (12) cost (under the run's current
// min-max bounds) among infeasible ones. The last case is what keeps the
// reported solution from trading unbounded wirelength for millidegrees when
// the whole design space is above the critical temperature (as in the
// paper's Multi-GPU case study, where the best solution still has only ~10%
// more wire than Compact-2.5D at ~4 C lower temperature).
func betterCost(aTemp, aWL, bTemp, bWL float64, bounds *normBounds, opt Options) bool {
	crit := opt.CriticalC
	aOK, bOK := aTemp <= crit, bTemp <= crit
	switch {
	case aOK && !bOK:
		return true
	case !aOK && bOK:
		return false
	case aOK && bOK:
		return aWL < bWL
	default:
		alpha := opt.FixedAlpha
		if alpha < 0 {
			alpha = Alpha(math.Max(aTemp, bTemp), opt.AmbientC, opt.CriticalC)
		}
		return bounds.cost(aTemp, aWL, alpha) < bounds.cost(bTemp, bWL, alpha)
	}
}

// normBounds implements the min-max scaling of Eqn. (12) over a sliding
// window of recent observations. A window (rather than the all-time extremes)
// keeps the normalized cost differences on a scale the annealing temperature
// K (1 -> 0.01) can discriminate: with all-time bounds, one early excursion
// to a very hot or very long-wire placement would flatten every subsequent
// cost difference toward zero and the anneal would degenerate into a random
// walk.
type normBounds struct {
	size int
	ts   []float64
	ws   []float64
	idx  int
}

// windowSize is the number of recent evaluations the scaling spans.
const windowSize = 200

func newNormBounds(size int) normBounds {
	if size <= 0 {
		size = windowSize
	}
	return normBounds{size: size}
}

func (n *normBounds) observe(t, w float64) {
	if len(n.ts) < n.size {
		n.ts = append(n.ts, t)
		n.ws = append(n.ws, w)
		return
	}
	n.ts[n.idx] = t
	n.ws[n.idx] = w
	n.idx = (n.idx + 1) % n.size
}

func (n *normBounds) ranges() (tMin, tMax, wMin, wMax float64) {
	tMin, tMax = math.Inf(1), math.Inf(-1)
	wMin, wMax = math.Inf(1), math.Inf(-1)
	for i := range n.ts {
		tMin = math.Min(tMin, n.ts[i])
		tMax = math.Max(tMax, n.ts[i])
		wMin = math.Min(wMin, n.ws[i])
		wMax = math.Max(wMax, n.ws[i])
	}
	return
}

// cost evaluates Eqn. (12) under the current window with weight alpha.
// Values outside the window bounds extrapolate linearly, so comparisons stay
// monotone in the raw metrics.
func (n *normBounds) cost(t, w, alpha float64) float64 {
	if len(n.ts) == 0 {
		return 0
	}
	tMin, tMax, wMin, wMax := n.ranges()
	tn := 0.0
	if tMax > tMin {
		tn = (t - tMin) / (tMax - tMin)
	}
	wn := 0.0
	if wMax > wMin {
		wn = (w - wMin) / (wMax - wMin)
	}
	return alpha*tn + (1-alpha)*wn
}

// Place runs one simulated-annealing placement for sys using ev.
func Place(sys *chiplet.System, ev Evaluator, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	grid, err := ocm.NewGrid(sys, opt.GridPitch)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Initial placement: Compact-2.5D unless provided.
	var init chiplet.Placement
	if opt.Initial != nil {
		init = opt.Initial.Clone()
	} else {
		cres, err := btree.PlaceCompact(sys, btree.Options{Seed: opt.Seed, Steps: opt.CompactSteps})
		if err != nil {
			return nil, fmt.Errorf("placer: initial compact placement: %w", err)
		}
		init = cres.Placement
	}
	init, err = grid.Legalize(sys, init)
	if err != nil {
		return nil, fmt.Errorf("placer: legalizing initial placement: %w", err)
	}

	t0, w0, err := ev.Evaluate(init)
	if err != nil {
		return nil, fmt.Errorf("placer: evaluating initial placement: %w", err)
	}

	res := &Result{
		Initial:           init.Clone(),
		InitialPeakC:      t0,
		InitialWirelength: w0,
	}

	bounds := newNormBounds(windowSize)
	bounds.observe(t0, w0)
	cur := init.Clone()
	curT, curW := t0, w0
	best := cur.Clone()
	bestT, bestW := curT, curW

	// Annealing schedule: K decays by KDecay once per level; levels are
	// spread evenly over the step budget.
	levels := int(math.Ceil(math.Log(opt.KEnd/opt.KStart) / math.Log(opt.KDecay)))
	if levels < 1 {
		levels = 1
	}
	stepsPerLevel := opt.Steps / levels
	if stepsPerLevel < 1 {
		stepsPerLevel = 1
	}

	k := opt.KStart
	for step := 0; step < opt.Steps; step++ {
		if step > 0 && step%stepsPerLevel == 0 && k > opt.KEnd {
			k *= opt.KDecay
			if k < opt.KEnd {
				k = opt.KEnd
			}
		}
		nb, op, ok := neighbor(sys, grid, cur, rng, opt)
		if !ok {
			continue // no valid perturbation found this step
		}
		nbT, nbW, err := ev.Evaluate(nb)
		if err != nil {
			return nil, fmt.Errorf("placer: step %d: %w", step, err)
		}
		bounds.observe(nbT, nbW)

		alpha := opt.FixedAlpha
		if alpha < 0 {
			alpha = Alpha(math.Max(curT, nbT), opt.AmbientC, opt.CriticalC)
		}
		curCost := bounds.cost(curT, curW, alpha)
		nbCost := bounds.cost(nbT, nbW, alpha)

		// Eqn. (14): AP = exp((cost_cur - cost_nb) / K).
		ap := math.Exp((curCost - nbCost) / k)
		accepted := ap >= 1 || rng.Float64() < ap
		if accepted {
			cur, curT, curW = nb, nbT, nbW
			res.Accepted++
			if betterCost(curT, curW, bestT, bestW, &bounds, opt) {
				best, bestT, bestW = cur.Clone(), curT, curW
			}
		}
		if opt.History {
			res.History = append(res.History, Sample{
				Step: step, Op: op, TempC: nbT, WirelengthMM: nbW,
				Cost: nbCost, K: k, Alpha: alpha, Accepted: accepted,
			})
		}
		res.Steps++
	}

	res.Placement = best
	res.PeakC = bestT
	res.WirelengthMM = bestW
	if mp, ok := ev.(MetricsProvider); ok {
		res.Metrics = mp.Metrics()
	}
	return res, nil
}

// neighbor perturbs cur with one of the paper's operators, returning a valid
// placement. It retries across operators and chiplets before giving up.
func neighbor(sys *chiplet.System, grid *ocm.Grid, cur chiplet.Placement, rng *rand.Rand, opt Options) (chiplet.Placement, Op, bool) {
	total := opt.MoveWeight + opt.RotateWeight + opt.JumpWeight
	const attempts = 64
	for a := 0; a < attempts; a++ {
		r := rng.Float64() * total
		var op Op
		switch {
		case r < opt.MoveWeight:
			op = OpMove
		case r < opt.MoveWeight+opt.RotateWeight:
			op = OpRotate
		default:
			op = OpJump
		}
		c := rng.Intn(len(sys.Chiplets))
		switch op {
		case OpMove:
			dir := rng.Intn(4)
			d := []geom.Point{{X: grid.Pitch()}, {X: -grid.Pitch()}, {Y: grid.Pitch()}, {Y: -grid.Pitch()}}[dir]
			target := cur.Centers[c].Add(d)
			if grid.CandidateValid(sys, cur, c, target, cur.Rotated[c]) {
				nb := cur.Clone()
				nb.Centers[c] = target
				return nb, op, true
			}
		case OpRotate:
			if grid.CandidateValid(sys, cur, c, cur.Centers[c], !cur.Rotated[c]) {
				nb := cur.Clone()
				nb.Rotated[c] = !nb.Rotated[c]
				return nb, op, true
			}
		case OpJump:
			if pt, ok := grid.RandomValidPosition(sys, cur, c, rng); ok {
				nb := cur.Clone()
				nb.Centers[c] = pt
				return nb, op, true
			}
		}
	}
	return chiplet.Placement{}, 0, false
}

// PlaceBestOf runs n independent annealing runs (seeds opt.Seed .. opt.Seed+n-1)
// in parallel, each with its own Evaluator from factory, and returns the best
// solution under Better. This is the paper's protocol of running the
// probabilistic algorithm 5 times and picking the best.
//
// At most GOMAXPROCS runs execute at once: each run holds a full thermal
// model (grid² × layers of solver state), so unbounded fan-out at large n
// trades no extra parallelism for a large peak footprint. Seeds are assigned
// by run index before the semaphore, so results are independent of scheduling
// order. The returned Result's Metrics aggregates the counters of all runs.
func PlaceBestOf(sys *chiplet.System, factory func() (Evaluator, error), n int, opt Options) (*Result, error) {
	if n <= 0 {
		n = 1
	}
	opt = opt.withDefaults()
	results := make([]*Result, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ev, err := factory()
			if err != nil {
				errs[r] = err
				return
			}
			ro := opt
			ro.Seed = opt.Seed + int64(r)
			res, err := Place(sys, ev, ro)
			if err != nil {
				errs[r] = err
				return
			}
			res.Run = r
			results[r] = res
		}(r)
	}
	wg.Wait()
	var best *Result
	var merged metrics.Counters
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			return nil, fmt.Errorf("placer: run %d: %w", r, errs[r])
		}
		merged.Merge(results[r].Metrics)
		if best == nil || Better(results[r].PeakC, results[r].WirelengthMM, best.PeakC, best.WirelengthMM, opt.CriticalC) {
			best = results[r]
		}
	}
	if best == nil {
		return nil, errors.New("placer: no runs executed")
	}
	best.Metrics = merged
	return best, nil
}
