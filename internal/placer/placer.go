// Package placer implements the TAP-2.5D thermally-aware chiplet placement
// algorithm (Section III-C of the paper): simulated annealing over the
// Occupation Chiplet Matrix with move, rotate and jump operators, the
// dynamically-weighted cost function of Eqns. (12)-(13), and the acceptance
// probability and annealing schedule of Eqn. (14) (K decaying from 1 to 0.01
// by a factor of 0.95).
//
// The placer is generic over an Evaluator so tests can use cheap synthetic
// objectives; production code uses SystemEvaluator, which couples the
// finite-difference thermal model with the fast inter-chiplet router.
package placer

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"sync"

	"tap25d/internal/btree"
	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
	"tap25d/internal/ocm"
	"tap25d/internal/route"
	"tap25d/internal/thermal"
)

// Evaluator scores a placement: peak temperature (°C) and total inter-chiplet
// wirelength (mm). Implementations may be stateful (warm starts) and need not
// be safe for concurrent use.
type Evaluator interface {
	Evaluate(p chiplet.Placement) (tempC, wirelengthMM float64, err error)
}

// ContextEvaluator is implemented by evaluators that support cooperative
// cancellation. The annealer prefers EvaluateContext when available, so a
// deadline or SIGINT can abort mid-solve instead of waiting out a full
// thermal evaluation.
type ContextEvaluator interface {
	Evaluator
	EvaluateContext(ctx context.Context, p chiplet.Placement) (tempC, wirelengthMM float64, err error)
}

// evaluate dispatches through EvaluateContext when the evaluator supports it.
func evaluate(ctx context.Context, ev Evaluator, p chiplet.Placement) (float64, float64, error) {
	if ce, ok := ev.(ContextEvaluator); ok {
		return ce.EvaluateContext(ctx, p)
	}
	return ev.Evaluate(p)
}

// SystemEvaluator is the production evaluator: thermal simulation plus the
// fast router.
type SystemEvaluator struct {
	sys   *chiplet.System
	model *thermal.Model
	ropts route.Options
	ctr   *metrics.Counters
}

// NewSystemEvaluator builds an evaluator for sys with the given thermal and
// routing options. The thermal model's counters are shared with the
// evaluator's own (topt.Counters is honored when set; otherwise one is
// allocated), so Metrics reports solver and evaluation statistics together.
func NewSystemEvaluator(sys *chiplet.System, topt thermal.Options, ropt route.Options) (*SystemEvaluator, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	ctr := topt.Counters
	if ctr == nil {
		ctr = &metrics.Counters{}
		topt.Counters = ctr
	}
	m, err := thermal.NewModel(sys.InterposerW, sys.InterposerH, topt)
	if err != nil {
		return nil, err
	}
	return &SystemEvaluator{sys: sys, model: m, ropts: ropt, ctr: ctr}, nil
}

// Sources converts a placement into thermal heat sources (every chiplet
// contributes its silicon footprint; dummy dies carry zero power but still
// conduct heat).
func Sources(sys *chiplet.System, p chiplet.Placement) []thermal.Source {
	srcs := make([]thermal.Source, len(sys.Chiplets))
	for i := range sys.Chiplets {
		srcs[i] = thermal.Source{Rect: p.Rect(sys, i), Power: sys.Chiplets[i].Power}
	}
	return srcs
}

// Evaluate implements Evaluator.
func (e *SystemEvaluator) Evaluate(p chiplet.Placement) (float64, float64, error) {
	return e.EvaluateContext(context.Background(), p)
}

// EvaluateContext implements ContextEvaluator: the thermal solve polls ctx
// and aborts with its error when the context is done (the router is fast
// enough to always run to completion).
func (e *SystemEvaluator) EvaluateContext(ctx context.Context, p chiplet.Placement) (float64, float64, error) {
	e.ctr.Evaluations++
	res, err := e.model.SolveContext(ctx, Sources(e.sys, p))
	if err != nil {
		return 0, 0, err
	}
	e.ctr.RouteCalls++
	r, err := route.RouteContext(ctx, e.sys, p, e.ropts)
	if err != nil {
		return 0, 0, err
	}
	return res.PeakC, r.TotalWirelengthMM, nil
}

// systemEvalState is the serialized form of a SystemEvaluator's mutable
// state: the thermal model's warm-start field (the router is stateless).
type systemEvalState struct {
	WarmTemps []float64
}

// CheckpointState implements StateCheckpointer by capturing the thermal
// model's warm-start temperature field, which seeds the next solve's CG
// iteration and therefore shapes the exact evaluation trajectory.
func (e *SystemEvaluator) CheckpointState() ([]byte, error) {
	var buf bytes.Buffer
	st := systemEvalState{WarmTemps: e.model.WarmState()}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("placer: encoding evaluator state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements StateCheckpointer.
func (e *SystemEvaluator) RestoreState(state []byte) error {
	var st systemEvalState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&st); err != nil {
		return fmt.Errorf("placer: decoding evaluator state: %w", err)
	}
	return e.model.RestoreWarmState(st.WarmTemps)
}

// Thermal exposes the underlying thermal model (for rendering maps of the
// final placement).
func (e *SystemEvaluator) Thermal() *thermal.Model { return e.model }

// Metrics returns the evaluation counters accumulated so far.
func (e *SystemEvaluator) Metrics() metrics.Counters { return *e.ctr }

func (e *SystemEvaluator) counters() *metrics.Counters { return e.ctr }

// Op identifies a neighbor-generation operator (Fig. 2b-d).
type Op int

// Neighbor operators.
const (
	OpMove Op = iota
	OpRotate
	OpJump
)

func (o Op) String() string {
	switch o {
	case OpMove:
		return "move"
	case OpRotate:
		return "rotate"
	case OpJump:
		return "jump"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Options configures the annealer. The zero value reproduces the paper's
// settings except Steps, which defaults to 1000 for tractability; the paper
// calibrates 4500 steps to fill a 25-hour budget with HotSpot+CPLEX in the
// loop.
type Options struct {
	// Steps is the number of SA steps per run (default 1000).
	Steps int
	// KStart, KEnd, KDecay define the annealing temperature schedule
	// (defaults 1, 0.01, 0.95 per Section III-C5).
	KStart, KEnd, KDecay float64
	// Seed makes runs reproducible. Run r of a multi-run uses Seed+r.
	Seed int64
	// CriticalC is the temperature threshold of Eqn. (13) (default 85).
	CriticalC float64
	// AmbientC is the ambient constant in Eqn. (13) (default 45).
	AmbientC float64
	// Initial overrides the starting placement. nil runs the Compact-2.5D
	// baseline (B*-tree + fast-SA) and legalizes it onto the OCM grid,
	// exactly as Section III-C2 prescribes.
	Initial *chiplet.Placement
	// CompactSteps is the step budget for the initial Compact-2.5D run
	// (default 20000).
	CompactSteps int
	// GridPitch is the OCM pitch in mm (default 1).
	GridPitch float64
	// MoveWeight, RotateWeight and JumpWeight set the operator mix
	// (defaults 0.5/0.25/0.25; the paper does not publish its mix).
	MoveWeight, RotateWeight, JumpWeight float64
	// DisableJump removes the jump operator (used by the E9 ablation to
	// demonstrate the 'sliding tile puzzle' issue of Section III-C3).
	DisableJump bool
	// FixedAlpha, when >= 0, replaces the dynamic alpha of Eqn. (13)
	// (used by the E9 ablation). Negative means dynamic (default).
	FixedAlpha float64
	// History records one Sample per step when true.
	History bool
	// EvalFailureBudget, when positive, is the number of consecutive
	// transient evaluation failures a run absorbs by skipping the failed
	// step (counted as step_eval_skipped and evented as step_skipped)
	// instead of aborting. Zero — the default — preserves the historical
	// fail-fast behavior: the first evaluation error ends the run. The
	// budget resets on every successful evaluation. Skipping changes the
	// trajectory only on steps that would otherwise have killed the run, so
	// failure-free runs are unaffected by any budget value.
	EvalFailureBudget int

	// Run orchestration. These fields do not affect the annealing
	// trajectory; the function-valued hooks are excluded from checkpoint
	// serialization and re-supplied by the resuming caller.

	// RunIndex identifies this run in events and checkpoints. PlaceBestOf
	// sets it to the run's index; leave zero for single runs.
	RunIndex int
	// Progress, when non-nil, receives structured events: one EventStep
	// every ProgressEvery completed steps, plus lifecycle events (resume,
	// checkpoint, final, interrupted). Shared across parallel runs it must
	// be safe for concurrent use.
	Progress EventFunc `json:"-"`
	// ProgressEvery is the step-event cadence (0 disables step events;
	// lifecycle events are emitted regardless whenever Progress is set).
	ProgressEvery int
	// CheckpointEvery hands a snapshot to Checkpoint every CheckpointEvery
	// completed steps (0 disables periodic snapshots). A final snapshot is
	// always written on context cancellation when Checkpoint is set.
	CheckpointEvery int
	// Checkpoint persists snapshots; a returned error aborts the run.
	Checkpoint CheckpointFunc `json:"-"`
	// Restore, when non-nil, is consulted once per run index before the run
	// starts: a non-nil checkpoint resumes that run in place of a fresh
	// start (see Resume for the bit-compatibility contract).
	Restore RestoreFunc `json:"-"`
	// Obs, when non-nil, receives span timings (SA steps, checkpoint
	// writes, the initial placement), the per-run SA time series, and run
	// lifecycle state. Like the hooks above it never affects the annealing
	// trajectory, is excluded from checkpoints, and is re-attached from the
	// live Options on Resume. It must be safe for concurrent use (it is, by
	// construction) when shared across PlaceBestOf runs.
	Obs *obs.Observer `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 1000
	}
	if o.KStart == 0 {
		o.KStart = 1
	}
	if o.KEnd == 0 {
		o.KEnd = 0.01
	}
	if o.KDecay == 0 {
		o.KDecay = 0.95
	}
	if o.CriticalC == 0 {
		o.CriticalC = 85
	}
	if o.AmbientC == 0 {
		o.AmbientC = 45
	}
	if o.CompactSteps == 0 {
		o.CompactSteps = 20000
	}
	if o.GridPitch == 0 {
		o.GridPitch = ocm.DefaultPitchMM
	}
	if o.MoveWeight == 0 && o.RotateWeight == 0 && o.JumpWeight == 0 {
		o.MoveWeight, o.RotateWeight, o.JumpWeight = 0.5, 0.25, 0.25
	}
	if o.DisableJump {
		o.JumpWeight = 0
	}
	if o.FixedAlpha == 0 {
		o.FixedAlpha = -1
	}
	return o
}

// Sample is one annealing step's record.
type Sample struct {
	Step         int
	Op           Op
	TempC        float64
	WirelengthMM float64
	Cost         float64
	K            float64
	Alpha        float64
	Accepted     bool
}

// Result is the outcome of a placement run.
type Result struct {
	Placement    chiplet.Placement
	PeakC        float64
	WirelengthMM float64
	// Initial diagnostics: the starting placement and its metrics.
	Initial           chiplet.Placement
	InitialPeakC      float64
	InitialWirelength float64
	Steps             int
	Accepted          int
	Run               int // index of the winning run in PlaceBestOf
	History           []Sample
	// Interrupted reports that the run stopped early on context
	// cancellation; Placement then holds the best solution found before the
	// interruption and Steps the number of steps actually completed.
	Interrupted bool
	// SkippedSteps counts steps consumed by transient evaluation failures
	// under Options.EvalFailureBudget (0 on a failure-free run).
	SkippedSteps int
	// RunFailures lists the runs of a PlaceBestOf fan-out that produced no
	// result (or were interrupted with an error), so a degraded
	// best-of-successful answer carries the reasons alongside the winner.
	RunFailures []RunFailure
	// Metrics carries the evaluator's counters when the evaluator exposes
	// them; for PlaceBestOf it aggregates the counters of every run.
	Metrics metrics.Counters
	// Surrogate carries the two-fidelity evaluation statistics when the run
	// used a surrogate-prescreening evaluator (nil otherwise); for
	// PlaceBestOf it pools the statistics of every run.
	Surrogate *SurrogateStats
}

// RunFailure attaches one failed run's reason to a degraded PlaceBestOf
// result.
type RunFailure struct {
	// Run is the failed run's index.
	Run int `json:"run"`
	// Err is the failure rendered as text (errors don't serialize).
	Err string `json:"err"`
}

// Alpha computes the dynamic temperature weight of Eqn. (13).
func Alpha(tempC, ambientC, criticalC float64) float64 {
	if tempC > criticalC {
		return math.Min(0.1+(tempC-ambientC)/100, 0.9)
	}
	return 0
}

// Better reports whether solution a dominates b under the paper's selection
// rule: a thermally feasible solution (peak <= critical) beats an infeasible
// one; among feasible solutions lower wirelength wins; among infeasible ones
// lower temperature wins (wirelength breaking ties). Used to pick across
// independent runs; within a run the annealer tracks its best solution with
// the Eqn. (12) cost so wirelength keeps its weight (see betterCost).
func Better(aTemp, aWL, bTemp, bWL, criticalC float64) bool {
	aOK, bOK := aTemp <= criticalC, bTemp <= criticalC
	switch {
	case aOK && !bOK:
		return true
	case !aOK && bOK:
		return false
	case aOK && bOK:
		return aWL < bWL
	default:
		if aTemp != bTemp {
			return aTemp < bTemp
		}
		return aWL < bWL
	}
}

// betterCost reports whether (aTemp, aWL) beats (bTemp, bWL) for best-seen
// tracking inside a run: feasibility first, lower wirelength among feasible
// solutions, and the alpha-weighted Eqn. (12) cost (under the run's current
// min-max bounds) among infeasible ones. The last case is what keeps the
// reported solution from trading unbounded wirelength for millidegrees when
// the whole design space is above the critical temperature (as in the
// paper's Multi-GPU case study, where the best solution still has only ~10%
// more wire than Compact-2.5D at ~4 C lower temperature).
func betterCost(aTemp, aWL, bTemp, bWL float64, bounds *normBounds, opt Options) bool {
	crit := opt.CriticalC
	aOK, bOK := aTemp <= crit, bTemp <= crit
	switch {
	case aOK && !bOK:
		return true
	case !aOK && bOK:
		return false
	case aOK && bOK:
		return aWL < bWL
	default:
		alpha := opt.FixedAlpha
		if alpha < 0 {
			alpha = Alpha(math.Max(aTemp, bTemp), opt.AmbientC, opt.CriticalC)
		}
		return bounds.cost(aTemp, aWL, alpha) < bounds.cost(bTemp, bWL, alpha)
	}
}

// normBounds implements the min-max scaling of Eqn. (12) over a sliding
// window of recent observations. A window (rather than the all-time extremes)
// keeps the normalized cost differences on a scale the annealing temperature
// K (1 -> 0.01) can discriminate: with all-time bounds, one early excursion
// to a very hot or very long-wire placement would flatten every subsequent
// cost difference toward zero and the anneal would degenerate into a random
// walk.
type normBounds struct {
	size int
	ts   []float64
	ws   []float64
	idx  int
}

// windowSize is the number of recent evaluations the scaling spans.
const windowSize = 200

func newNormBounds(size int) normBounds {
	if size <= 0 {
		size = windowSize
	}
	return normBounds{size: size}
}

func (n *normBounds) observe(t, w float64) {
	if len(n.ts) < n.size {
		n.ts = append(n.ts, t)
		n.ws = append(n.ws, w)
		return
	}
	n.ts[n.idx] = t
	n.ws[n.idx] = w
	n.idx = (n.idx + 1) % n.size
}

func (n *normBounds) ranges() (tMin, tMax, wMin, wMax float64) {
	tMin, tMax = math.Inf(1), math.Inf(-1)
	wMin, wMax = math.Inf(1), math.Inf(-1)
	for i := range n.ts {
		tMin = math.Min(tMin, n.ts[i])
		tMax = math.Max(tMax, n.ts[i])
		wMin = math.Min(wMin, n.ws[i])
		wMax = math.Max(wMax, n.ws[i])
	}
	return
}

// cost evaluates Eqn. (12) under the current window with weight alpha.
// Values outside the window bounds extrapolate linearly, so comparisons stay
// monotone in the raw metrics.
func (n *normBounds) cost(t, w, alpha float64) float64 {
	if len(n.ts) == 0 {
		return 0
	}
	tMin, tMax, wMin, wMax := n.ranges()
	tn := 0.0
	if tMax > tMin {
		tn = (t - tMin) / (tMax - tMin)
	}
	wn := 0.0
	if wMax > wMin {
		wn = (w - wMin) / (wMax - wMin)
	}
	return alpha*tn + (1-alpha)*wn
}

// saState is the complete mutable state of one annealing run. Everything a
// checkpoint must capture lives here (or is derivable from opt), which is
// what makes snapshot/resume a mechanical copy rather than a re-derivation.
type saState struct {
	sys  *chiplet.System
	grid *ocm.Grid
	ev   Evaluator
	opt  Options

	src *countingSource
	rng *rand.Rand

	res    *Result
	bounds normBounds

	cur, best    chiplet.Placement
	curT, curW   float64
	bestT, bestW float64
	k            float64
	step         int

	// Step-entry snapshots, refreshed at the top of every anneal iteration;
	// interrupt checkpoints use these so a step aborted mid-evaluation is
	// re-executed from scratch on resume (same neighbor draw, same K).
	drawsAtTop uint64
	kAtTop     float64

	// evalFails counts consecutive transient evaluation failures against
	// Options.EvalFailureBudget; any successful evaluation resets it.
	evalFails int
}

// Place runs one simulated-annealing placement for sys using ev.
func Place(sys *chiplet.System, ev Evaluator, opt Options) (*Result, error) {
	return PlaceContext(context.Background(), sys, ev, opt)
}

// PlaceContext is Place with run orchestration: ctx cancellation (or
// deadline expiry) aborts the run cleanly — the best-so-far Result is
// returned alongside ctx's error, a final checkpoint is written when
// Options.Checkpoint is set, and an EventInterrupted is emitted. When
// Options.Restore yields a checkpoint for this run index, the run resumes
// from it instead of starting fresh.
//
// On interruption both return values are non-nil: callers that want the
// partial solution must check the Result even when err != nil
// (errors.Is(err, context.Canceled) or context.DeadlineExceeded).
func PlaceContext(ctx context.Context, sys *chiplet.System, ev Evaluator, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if opt.Restore != nil {
		cp, err := opt.Restore(opt.RunIndex)
		if err != nil {
			return nil, fmt.Errorf("placer: restoring run %d: %w", opt.RunIndex, err)
		}
		if cp != nil {
			return Resume(ctx, sys, ev, cp, opt)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	grid, err := ocm.NewGrid(sys, opt.GridPitch)
	if err != nil {
		return nil, err
	}
	src := newCountingSource(opt.Seed)
	rng := rand.New(src)

	// Initial placement: Compact-2.5D unless provided.
	isp := opt.Obs.StartSpanCtx(ctx, obs.PhaseInitialPlacement, "")
	var init chiplet.Placement
	if opt.Initial != nil {
		init = opt.Initial.Clone()
	} else {
		cres, err := btree.PlaceCompact(sys, btree.Options{Seed: opt.Seed, Steps: opt.CompactSteps})
		if err != nil {
			isp.End()
			return nil, fmt.Errorf("placer: initial compact placement: %w", err)
		}
		init = cres.Placement
	}
	init, err = grid.Legalize(sys, init)
	if err != nil {
		isp.End()
		return nil, fmt.Errorf("placer: legalizing initial placement: %w", err)
	}

	t0, w0, err := evaluate(obs.ContextWithSpan(ctx, isp), ev, init)
	isp.End()
	if err != nil {
		return nil, fmt.Errorf("placer: evaluating initial placement: %w", err)
	}

	st := &saState{
		sys: sys, grid: grid, ev: ev, opt: opt,
		src: src, rng: rng,
		res: &Result{
			Initial:           init.Clone(),
			InitialPeakC:      t0,
			InitialWirelength: w0,
			Run:               opt.RunIndex,
		},
		bounds: newNormBounds(windowSize),
		cur:    init.Clone(),
		curT:   t0, curW: w0,
		bestT: t0, bestW: w0,
		k: opt.KStart,
	}
	st.drawsAtTop, st.kAtTop = st.src.draws, st.k
	st.bounds.observe(t0, w0)
	st.best = st.cur.Clone()
	return st.anneal(ctx)
}

// Resume continues a checkpointed run. The algorithmic configuration comes
// from the checkpoint (so a resumed run cannot silently diverge from the
// original); only the orchestration hooks — Progress, ProgressEvery,
// CheckpointEvery, Checkpoint — are taken from live. The evaluator should be
// freshly constructed with the same configuration as the original run; when
// it implements StateCheckpointer, its snapshotted state is restored and the
// resumed trajectory is bit-compatible with an uninterrupted run at the same
// seed.
func Resume(ctx context.Context, sys *chiplet.System, ev Evaluator, cp *Checkpoint, live Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := cp.Validate(sys); err != nil {
		return nil, err
	}
	opt := cp.Options.withDefaults()
	opt.Progress = live.Progress
	opt.ProgressEvery = live.ProgressEvery
	opt.CheckpointEvery = live.CheckpointEvery
	opt.Checkpoint = live.Checkpoint
	opt.Obs = live.Obs
	opt.RunIndex = cp.Run

	grid, err := ocm.NewGrid(sys, opt.GridPitch)
	if err != nil {
		return nil, err
	}
	src := newCountingSource(cp.RNGSeed)
	src.skip(cp.RNGDraws)

	if len(cp.EvalState) > 0 {
		if sc, ok := ev.(StateCheckpointer); ok {
			if err := sc.RestoreState(cp.EvalState); err != nil {
				return nil, err
			}
		}
	}

	size := cp.BoundsSize
	if size <= 0 {
		size = windowSize
	}
	bounds := newNormBounds(size)
	bounds.ts = append(bounds.ts, cp.BoundsT...)
	bounds.ws = append(bounds.ws, cp.BoundsW...)
	bounds.idx = cp.BoundsIdx

	st := &saState{
		sys: sys, grid: grid, ev: ev, opt: opt,
		src: src, rng: rand.New(src),
		res: &Result{
			Initial:           cp.Initial.Clone(),
			InitialPeakC:      cp.InitialPeakC,
			InitialWirelength: cp.InitialWirelengthMM,
			Steps:             cp.CompletedSteps,
			Accepted:          cp.Accepted,
			History:           append([]Sample(nil), cp.History...),
			Run:               cp.Run,
		},
		bounds: bounds,
		cur:    cp.Cur.Clone(),
		curT:   cp.CurTempC, curW: cp.CurWirelengthMM,
		best:  cp.Best.Clone(),
		bestT: cp.BestTempC, bestW: cp.BestWirelengthMM,
		k:    cp.K,
		step: cp.Step,
	}
	st.drawsAtTop, st.kAtTop = st.src.draws, st.k
	if ctr := st.counters(); ctr != nil {
		ctr.Resumes++
	}
	st.emit(Event{Kind: EventResume, Step: st.res.Steps})
	return st.anneal(ctx)
}

// anneal executes the SA loop from st.step to the step budget. The loop body
// reproduces the original single-function annealer exactly — same draw
// order, same arithmetic — so orchestration (cancellation polls, event
// emission, checkpointing) adds observability without perturbing results.
//
// When the evaluator implements prescreener, each step becomes two-fidelity:
// the candidate is first scored by the surrogate, and only moves the
// surrogate cannot confidently reject (Metropolis on predicted cost, padded
// by the margin) pay the exact evaluation, which alone drives acceptance.
// With a non-prescreening evaluator the loop is branch-for-branch identical
// to the single-fidelity annealer, including RNG draw order.
func (st *saState) anneal(ctx context.Context) (*Result, error) {
	opt := st.opt
	opt.Obs.SetRunState(opt.RunIndex, "running")
	pre, _ := st.ev.(prescreener)

	// Annealing schedule: K decays by KDecay once per level; levels are
	// spread evenly over the step budget.
	levels := int(math.Ceil(math.Log(opt.KEnd/opt.KStart) / math.Log(opt.KDecay)))
	if levels < 1 {
		levels = 1
	}
	stepsPerLevel := opt.Steps / levels
	if stepsPerLevel < 1 {
		stepsPerLevel = 1
	}

	for ; st.step < opt.Steps; st.step++ {
		// Snapshot the step-entry RNG position and annealing temperature:
		// a cancellation noticed mid-step (the evaluate below aborts) must
		// checkpoint the state *before* this step drew its neighbor or
		// decayed K, since the resumed run re-executes the step from the
		// top — otherwise it would draw a different perturbation.
		st.drawsAtTop, st.kAtTop = st.src.draws, st.k
		if err := ctx.Err(); err != nil {
			return st.interrupt(ctx, err)
		}
		step := st.step
		if step > 0 && step%stepsPerLevel == 0 && st.k > opt.KEnd {
			st.k *= opt.KDecay
			if st.k < opt.KEnd {
				st.k = opt.KEnd
			}
		}
		sp := opt.Obs.StartSpanCtx(ctx, obs.PhaseSAStep, "")
		nb, op, ok := neighbor(st.sys, st.grid, st.cur, st.rng, opt)
		if !ok {
			sp.End()
			continue // no valid perturbation found this step
		}
		var nbT, nbW, nbCost, alpha float64
		var accepted bool
		exact := true
		if pre != nil {
			predT, predW, ready, perr := pre.Prescreen(obs.ContextWithSpan(ctx, sp), st.cur, nb, st.curT)
			if perr != nil {
				sp.End()
				res, ferr, skip := st.stepEvalFailed(ctx, step, perr)
				if skip {
					continue
				}
				return res, ferr
			}
			if ready {
				alpha = opt.FixedAlpha
				if alpha < 0 {
					alpha = Alpha(math.Max(st.curT, predT), opt.AmbientC, opt.CriticalC)
				}
				curCost := st.bounds.cost(st.curT, st.curW, alpha)
				predCost := st.bounds.cost(predT, predW, alpha)
				// Metropolis on the predicted cost at the sharpened prescreen
				// temperature k/sharpen, padded by the margin: candidates
				// predicted worse than the margin are declined decisively,
				// while predicted-improving and within-margin moves always
				// fall through to the exact solver, which alone decides
				// acceptance. The sharpening ramps with annealing progress —
				// near K=KStart the prescreen mirrors the exact Metropolis
				// test and defers to the high-temperature exploration the
				// schedule intends; as K cools toward KEnd it approaches the
				// configured decisiveness, declining the ever-larger fraction
				// of proposals the converging anneal would reject anyway.
				// Predicted values never feed the normalization window.
				margin, sharpen := pre.PrescreenPolicy()
				// Progress is linear in the schedule's level index (K decays
				// geometrically), 0 at KStart and 1 at KEnd.
				progress := math.Log(opt.KStart/st.k) / math.Log(opt.KStart/opt.KEnd)
				eff := 1 + (sharpen-1)*progress
				ap := math.Exp((curCost - predCost + margin) * eff / st.k)
				if ap < 1 && st.rng.Float64() >= ap {
					exact = false
					nbT, nbW, nbCost = predT, predW, predCost
					if aerr := pre.MaybeAudit(obs.ContextWithSpan(ctx, sp), nb, predT); aerr != nil {
						sp.End()
						res, ferr, skip := st.stepEvalFailed(ctx, step, aerr)
						if skip {
							continue
						}
						return res, ferr
					}
					st.evalFails = 0
				}
			}
		}
		if exact {
			var err error
			nbT, nbW, err = evaluate(obs.ContextWithSpan(ctx, sp), st.ev, nb)
			if err != nil {
				sp.End()
				res, ferr, skip := st.stepEvalFailed(ctx, step, err)
				if skip {
					continue
				}
				return res, ferr
			}
			st.evalFails = 0
			st.bounds.observe(nbT, nbW)

			alpha = opt.FixedAlpha
			if alpha < 0 {
				alpha = Alpha(math.Max(st.curT, nbT), opt.AmbientC, opt.CriticalC)
			}
			curCost := st.bounds.cost(st.curT, st.curW, alpha)
			nbCost = st.bounds.cost(nbT, nbW, alpha)

			// Eqn. (14): AP = exp((cost_cur - cost_nb) / K).
			ap := math.Exp((curCost - nbCost) / st.k)
			accepted = ap >= 1 || st.rng.Float64() < ap
			if accepted {
				st.cur, st.curT, st.curW = nb, nbT, nbW
				st.res.Accepted++
				if betterCost(st.curT, st.curW, st.bestT, st.bestW, &st.bounds, opt) {
					st.best, st.bestT, st.bestW = st.cur.Clone(), st.curT, st.curW
				}
			}
		}
		sp.End()
		if opt.History {
			st.res.History = append(st.res.History, Sample{
				Step: step, Op: op, TempC: nbT, WirelengthMM: nbW,
				Cost: nbCost, K: st.k, Alpha: alpha, Accepted: accepted,
			})
		}
		st.res.Steps++
		st.recordObsStep(step, alpha, nbT, nbW, nbCost, accepted)

		if opt.ProgressEvery > 0 && (step+1)%opt.ProgressEvery == 0 {
			st.emit(Event{
				Kind: EventStep, Step: st.res.Steps, Alpha: alpha,
				Op: op.String(), Accepted: accepted,
				TempC: nbT, WirelengthMM: nbW, Cost: nbCost,
			})
		}
		if opt.CheckpointEvery > 0 && opt.Checkpoint != nil &&
			(step+1)%opt.CheckpointEvery == 0 && step+1 < opt.Steps {
			if err := st.checkpoint(ctx, step+1, st.src.draws, st.k); err != nil {
				return nil, fmt.Errorf("placer: checkpoint at step %d: %w", step+1, err)
			}
		}
	}

	st.finish(false)
	st.emit(Event{Kind: EventFinal, Step: st.res.Steps})
	return st.res, nil
}

// stepEvalFailed handles an evaluation (or prescreen/audit) failure inside
// the anneal loop: cancellation turns into an interrupt, transient failures
// within Options.EvalFailureBudget consume the step (skip=true tells the loop
// to continue), and anything else aborts the run. Semantics match the
// original inline error path exactly.
func (st *saState) stepEvalFailed(ctx context.Context, step int, err error) (res *Result, ferr error, skip bool) {
	if ctx.Err() != nil {
		res, ferr = st.interrupt(ctx, ctx.Err())
		return res, ferr, false
	}
	if st.opt.EvalFailureBudget > 0 && st.evalFails < st.opt.EvalFailureBudget {
		// Transient failure within budget: skip this step (like a step with
		// no valid perturbation — the step index advances, the
		// completed-steps count does not) and keep annealing.
		st.evalFails++
		st.res.SkippedSteps++
		if ctr := st.counters(); ctr != nil {
			ctr.StepEvalSkipped++
		}
		st.opt.Obs.Add("step_eval_skipped", 1)
		st.emit(Event{Kind: EventStepSkipped, Step: st.res.Steps, Error: err.Error()})
		return nil, nil, true
	}
	return nil, fmt.Errorf("placer: step %d: %w", step, err), false
}

// recordObsStep feeds one completed SA step into the observer's per-run time
// series and refreshes the run's live status (no-op when observability is
// disabled).
func (st *saState) recordObsStep(step int, alpha, nbT, nbW, nbCost float64, accepted bool) {
	o := st.opt.Obs
	if o == nil {
		return
	}
	p := obs.SAPoint{
		Step: step, K: st.k, Alpha: alpha,
		TempC: nbT, WirelengthMM: nbW, Cost: nbCost, Accepted: accepted,
		BestTempC: st.bestT, BestWirelengthMM: st.bestW,
	}
	if st.res.Steps > 0 {
		p.AcceptRate = float64(st.res.Accepted) / float64(st.res.Steps)
	}
	o.RecordSAStep(st.opt.RunIndex, st.opt.Steps, p)
	if mp, ok := st.ev.(MetricsProvider); ok {
		o.SetRunCounters(st.opt.RunIndex, mp.Metrics())
	}
	for _, a := range o.TakeAnomalies(st.opt.RunIndex) {
		st.emit(Event{Kind: EventAnomaly, Step: st.res.Steps, Anomaly: a.Kind, Error: a.Detail})
	}
}

// finish seals the Result from the run state.
func (st *saState) finish(interrupted bool) {
	st.res.Placement = st.best
	st.res.PeakC = st.bestT
	st.res.WirelengthMM = st.bestW
	st.res.Interrupted = interrupted
	if mp, ok := st.ev.(MetricsProvider); ok {
		st.res.Metrics = mp.Metrics()
	}
	if sp, ok := st.ev.(surrogateStatsProvider); ok {
		st.res.Surrogate = sp.SurrogateStats()
	}
	state := "final"
	if interrupted {
		state = "interrupted"
	}
	st.opt.Obs.SetRunState(st.opt.RunIndex, state)
	st.opt.Obs.SetRunCounters(st.opt.RunIndex, st.res.Metrics)
}

// interrupt finalizes a canceled run: it seals the best-so-far Result,
// writes a final checkpoint when a sink is configured (even between periodic
// snapshots — the whole point is not losing the in-flight run), emits an
// EventInterrupted, and returns the Result together with the cancellation
// cause so callers can distinguish interruption from failure.
func (st *saState) interrupt(ctx context.Context, cause error) (*Result, error) {
	if st.opt.Checkpoint != nil {
		if err := st.checkpoint(ctx, st.step, st.drawsAtTop, st.kAtTop); err != nil {
			return nil, errors.Join(fmt.Errorf("placer: checkpoint on interrupt at step %d: %w", st.step, err), cause)
		}
	}
	st.finish(true)
	st.emit(Event{Kind: EventInterrupted, Step: st.res.Steps})
	return st.res, fmt.Errorf("placer: run %d interrupted at step %d/%d: %w",
		st.opt.RunIndex, st.res.Steps, st.opt.Steps, cause)
}

// counters exposes the evaluator's counter instance when it has one.
func (st *saState) counters() *metrics.Counters {
	if cs, ok := st.ev.(counterSource); ok {
		return cs.counters()
	}
	return nil
}

// emit fills the common event fields and hands the event to the sink.
func (st *saState) emit(e Event) {
	if st.opt.Progress == nil {
		return
	}
	e.Run = st.opt.RunIndex
	e.Steps = st.opt.Steps
	e.K = st.k
	e.BestTempC = st.bestT
	e.BestWirelengthMM = st.bestW
	if st.res.Steps > 0 {
		e.AcceptRate = float64(st.res.Accepted) / float64(st.res.Steps)
	}
	if mp, ok := st.ev.(MetricsProvider); ok {
		ctr := mp.Metrics()
		e.Counters = &ctr
	}
	// Lifecycle events (resume, checkpoint, final, interrupted) carry the
	// observability snapshot and surrogate statistics; per-step events stay
	// lean.
	if e.Kind != EventStep {
		e.Obs = st.opt.Obs.EventSnapshot()
		if sp, ok := st.ev.(surrogateStatsProvider); ok {
			e.Surrogate = sp.SurrogateStats()
		}
	}
	st.opt.Progress(e)
}

// checkpoint snapshots the run with nextStep as the resume point and hands it
// to the sink.
func (st *saState) checkpoint(ctx context.Context, nextStep int, draws uint64, k float64) error {
	sp := st.opt.Obs.StartSpanCtx(ctx, obs.PhaseCheckpointWrite, "")
	defer sp.End()
	cp := &Checkpoint{
		Version:             CheckpointVersion,
		Run:                 st.opt.RunIndex,
		Step:                nextStep,
		K:                   k,
		RNGSeed:             st.opt.Seed,
		RNGDraws:            draws,
		Options:             st.opt,
		Cur:                 st.cur.Clone(),
		CurTempC:            st.curT,
		CurWirelengthMM:     st.curW,
		Best:                st.best.Clone(),
		BestTempC:           st.bestT,
		BestWirelengthMM:    st.bestW,
		Initial:             st.res.Initial.Clone(),
		InitialPeakC:        st.res.InitialPeakC,
		InitialWirelengthMM: st.res.InitialWirelength,
		Accepted:            st.res.Accepted,
		CompletedSteps:      st.res.Steps,
		BoundsT:             append([]float64(nil), st.bounds.ts...),
		BoundsW:             append([]float64(nil), st.bounds.ws...),
		BoundsIdx:           st.bounds.idx,
		BoundsSize:          st.bounds.size,
	}
	if st.opt.History {
		cp.History = append([]Sample(nil), st.res.History...)
	}
	if sc, ok := st.ev.(StateCheckpointer); ok {
		state, err := sc.CheckpointState()
		if err != nil {
			return err
		}
		cp.EvalState = state
	}
	if err := st.opt.Checkpoint(cp); err != nil {
		return err
	}
	if ctr := st.counters(); ctr != nil {
		ctr.Checkpoints++
	}
	st.emit(Event{Kind: EventCheckpoint, Step: st.res.Steps})
	return nil
}

// neighbor perturbs cur with one of the paper's operators, returning a valid
// placement. It retries across operators and chiplets before giving up.
func neighbor(sys *chiplet.System, grid *ocm.Grid, cur chiplet.Placement, rng *rand.Rand, opt Options) (chiplet.Placement, Op, bool) {
	total := opt.MoveWeight + opt.RotateWeight + opt.JumpWeight
	const attempts = 64
	for a := 0; a < attempts; a++ {
		r := rng.Float64() * total
		var op Op
		switch {
		case r < opt.MoveWeight:
			op = OpMove
		case r < opt.MoveWeight+opt.RotateWeight:
			op = OpRotate
		default:
			op = OpJump
		}
		c := rng.Intn(len(sys.Chiplets))
		switch op {
		case OpMove:
			dir := rng.Intn(4)
			d := []geom.Point{{X: grid.Pitch()}, {X: -grid.Pitch()}, {Y: grid.Pitch()}, {Y: -grid.Pitch()}}[dir]
			target := cur.Centers[c].Add(d)
			if grid.CandidateValid(sys, cur, c, target, cur.Rotated[c]) {
				nb := cur.Clone()
				nb.Centers[c] = target
				return nb, op, true
			}
		case OpRotate:
			if grid.CandidateValid(sys, cur, c, cur.Centers[c], !cur.Rotated[c]) {
				nb := cur.Clone()
				nb.Rotated[c] = !nb.Rotated[c]
				return nb, op, true
			}
		case OpJump:
			if pt, ok := grid.RandomValidPosition(sys, cur, c, rng); ok {
				nb := cur.Clone()
				nb.Centers[c] = pt
				return nb, op, true
			}
		}
	}
	return chiplet.Placement{}, 0, false
}

// PlaceBestOf runs n independent annealing runs (seeds opt.Seed .. opt.Seed+n-1)
// in parallel, each with its own Evaluator from factory, and returns the best
// solution under Better. This is the paper's protocol of running the
// probabilistic algorithm 5 times and picking the best.
//
// At most GOMAXPROCS runs execute at once: each run holds a full thermal
// model (grid² × layers of solver state), so unbounded fan-out at large n
// trades no extra parallelism for a large peak footprint. Seeds are assigned
// by run index before the semaphore, so results are independent of scheduling
// order. The returned Result's Metrics aggregates the counters of all runs.
//
// When some runs fail or are interrupted and others finish, PlaceBestOf
// degrades gracefully to best-of-successful: it returns the best of the
// completed runs together with the first error by run index — both can be
// non-nil — and attaches every failed run's reason to Result.RunFailures.
// Callers that can use a partial answer (a canceled campaign reporting its
// best-so-far) should check the Result before giving up on the error; nil
// Result means no run produced anything.
func PlaceBestOf(sys *chiplet.System, factory func() (Evaluator, error), n int, opt Options) (*Result, error) {
	return PlaceBestOfContext(context.Background(), sys, factory, n, opt)
}

// PlaceBestOfContext is PlaceBestOf with run orchestration (see
// PlaceContext): each run carries its index in Options.RunIndex, so a shared
// Progress sink or Checkpoint store can tell parallel runs apart, and
// Options.Restore is consulted per run index so an interrupted fan-out
// resumes exactly the runs that did not finish.
func PlaceBestOfContext(ctx context.Context, sys *chiplet.System, factory func() (Evaluator, error), n int, opt Options) (*Result, error) {
	if n <= 0 {
		n = 1
	}
	opt = opt.withDefaults()
	results := make([]*Result, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Label the run's goroutine for pprof so CPU profiles split by
			// run index (no-op when observability is disabled).
			opt.Obs.Do(ctx, func(ctx context.Context) {
				ev, err := factory()
				if err != nil {
					errs[r] = err
					return
				}
				ro := opt
				ro.Seed = opt.Seed + int64(r)
				ro.RunIndex = r
				res, err := PlaceContext(ctx, sys, ev, ro)
				if err != nil {
					errs[r] = err
				}
				if res != nil {
					res.Run = r
					results[r] = res
				}
			}, "tap25d_run", strconv.Itoa(r))
		}(r)
	}
	wg.Wait()
	var best *Result
	var firstErr error
	var merged metrics.Counters
	var mergedSur *SurrogateStats
	var failures []RunFailure
	skipped := 0
	interrupted := false
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("placer: run %d: %w", r, errs[r])
			}
			failures = append(failures, RunFailure{Run: r, Err: errs[r].Error()})
		}
		if results[r] == nil {
			continue
		}
		merged.Merge(results[r].Metrics)
		mergedSur = mergeSurrogateStats(mergedSur, results[r].Surrogate)
		skipped += results[r].SkippedSteps
		interrupted = interrupted || results[r].Interrupted
		if best == nil || Better(results[r].PeakC, results[r].WirelengthMM, best.PeakC, best.WirelengthMM, opt.CriticalC) {
			best = results[r]
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, errors.New("placer: no runs executed")
	}
	best.Metrics = merged
	best.Surrogate = mergedSur
	best.SkippedSteps = skipped
	best.RunFailures = failures
	best.Interrupted = interrupted
	return best, firstErr
}
