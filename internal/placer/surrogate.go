package placer

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"

	"tap25d/internal/chiplet"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
	"tap25d/internal/route"
	"tap25d/internal/surrogate"
	"tap25d/internal/thermal"
)

// prescreener is the two-fidelity hook the annealer probes for. When the
// run's evaluator implements it, each SA step first scores its candidate with
// the cheap surrogate; candidates the surrogate predicts as clearly rejected
// (Metropolis on predicted cost, padded by PrescreenMargin) are declined
// without paying the exact solve, and a deterministic fraction of those
// rejections is audited exactly via MaybeAudit to keep the surrogate honest.
type prescreener interface {
	// Prescreen returns the surrogate's predicted peak temperature for the
	// candidate — anchored as a delta against the current placement's
	// prediction, so the fit's local bias cancels out of the decision — plus
	// the candidate's exact wirelength. ready=false means the surrogate is
	// not fitted yet and the step must evaluate exactly.
	Prescreen(ctx context.Context, cur, nb chiplet.Placement, curTempC float64) (predTempC, wirelengthMM float64, ready bool, err error)
	// PrescreenPolicy returns the margin (slack added to the predicted
	// acceptance exponent in normalized-cost units, possibly widened after a
	// drift breach) and the sharpening factor: the prescreen Metropolis test
	// runs at temperature k/sharpen.
	PrescreenPolicy() (margin, sharpen float64)
	// MaybeAudit records one prescreen rejection and, on the audit cadence,
	// re-scores the rejected candidate exactly to measure drift.
	MaybeAudit(ctx context.Context, p chiplet.Placement, predTempC float64) error
}

// SurrogateStats summarizes the two-fidelity evaluation of a run: how often
// the analytical surrogate prescreened candidates, how many exact solves it
// saved, and how well its predictions tracked the exact solver.
type SurrogateStats struct {
	// Prescreens counts candidates scored by the surrogate; Rejects counts
	// the subset declined without an exact solve.
	Prescreens int64 `json:"prescreens"`
	Rejects    int64 `json:"rejects"`
	// Audits counts rejected candidates re-scored exactly; Refits counts
	// audits whose |error| breached the bound and triggered a refit.
	Audits int64 `json:"audits"`
	Refits int64 `json:"refits"`
	// DriftRMSC is the root-mean-square |predicted - exact| peak temperature
	// (°C) over all audits.
	DriftRMSC float64 `json:"drift_rms_c"`
	// HitRate is Rejects/Prescreens: the fraction of prescreened steps that
	// skipped the exact solver entirely.
	HitRate float64 `json:"hit_rate"`
}

// mergeSurrogateStats pools per-run statistics: counts add, the drift RMS
// combines audit-count-weighted, and the hit rate is recomputed from the
// pooled counts.
func mergeSurrogateStats(a, b *SurrogateStats) *SurrogateStats {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	m := &SurrogateStats{
		Prescreens: a.Prescreens + b.Prescreens,
		Rejects:    a.Rejects + b.Rejects,
		Audits:     a.Audits + b.Audits,
		Refits:     a.Refits + b.Refits,
	}
	if n := a.Audits + b.Audits; n > 0 {
		m.DriftRMSC = math.Sqrt((float64(a.Audits)*a.DriftRMSC*a.DriftRMSC +
			float64(b.Audits)*b.DriftRMSC*b.DriftRMSC) / float64(n))
	}
	if m.Prescreens > 0 {
		m.HitRate = float64(m.Rejects) / float64(m.Prescreens)
	}
	return m
}

// surrogateStatsProvider is implemented by evaluators that track two-fidelity
// statistics; finish() copies them into the Result and lifecycle events.
type surrogateStatsProvider interface {
	SurrogateStats() *SurrogateStats
}

// SurrogateEvaluator wraps a SystemEvaluator with the online-fitted
// analytical thermal surrogate (internal/surrogate), turning the annealer
// into a two-fidelity search: the annealer prescreens every candidate through
// Prescreen once the fit is seeded, and only surrogate-approved moves reach
// EvaluateContext's exact finite-difference solve. Every exact solve —
// initial placement, accepted-path evaluations, drift audits — feeds the
// fitter, so the surrogate tracks the region of the design space the anneal
// currently explores.
//
// The evaluator is deterministic and checkpointable: CheckpointState bundles
// the inner evaluator's warm-start field with the fitted surrogate state and
// the audit bookkeeping, so resumed runs replay bit-compatibly. Not safe for
// concurrent use; PlaceBestOf builds one per run.
type SurrogateEvaluator struct {
	inner *SystemEvaluator
	fit   *surrogate.Fitter
	cfg   surrogate.Config
	o     *obs.Observer
	ctr   *metrics.Counters

	// Wirelength cache: Prescreen routes the candidate exactly (routing is
	// cheap and its length feeds the predicted cost); if the same placement
	// then reaches the exact evaluation, the route is not repeated.
	lastKey string
	lastWL  float64
	haveWL  bool

	rejectsSinceAudit int
	widenLeft         int
	driftN            int64
	driftSumSq        float64
}

// NewSurrogateEvaluator wraps ev. cfg zero fields take the surrogate
// package's defaults; o may be nil (observability disabled).
func NewSurrogateEvaluator(ev *SystemEvaluator, cfg surrogate.Config, o *obs.Observer) *SurrogateEvaluator {
	return &SurrogateEvaluator{
		inner: ev,
		fit:   surrogate.NewFitter(cfg),
		cfg:   cfg.WithDefaults(),
		o:     o,
		ctr:   ev.counters(),
	}
}

func (s *SurrogateEvaluator) counters() *metrics.Counters { return s.ctr }

// Metrics returns the counters shared with the inner evaluator.
func (s *SurrogateEvaluator) Metrics() metrics.Counters { return *s.ctr }

// Thermal exposes the inner evaluator's thermal model.
func (s *SurrogateEvaluator) Thermal() *thermal.Model { return s.inner.Thermal() }

// Fitter exposes the online fit (for tests and diagnostics).
func (s *SurrogateEvaluator) Fitter() *surrogate.Fitter { return s.fit }

// Evaluate implements Evaluator.
func (s *SurrogateEvaluator) Evaluate(p chiplet.Placement) (float64, float64, error) {
	return s.EvaluateContext(context.Background(), p)
}

// EvaluateContext performs the exact evaluation (identical arithmetic to the
// inner SystemEvaluator) and feeds the result to the fitter. The router is
// skipped when Prescreen already routed this exact placement.
func (s *SurrogateEvaluator) EvaluateContext(ctx context.Context, p chiplet.Placement) (float64, float64, error) {
	s.ctr.Evaluations++
	res, err := s.inner.model.SolveContext(ctx, Sources(s.inner.sys, p))
	if err != nil {
		return 0, 0, err
	}
	var wl float64
	if key := placementKey(p); s.haveWL && key == s.lastKey {
		wl = s.lastWL
	} else {
		s.ctr.RouteCalls++
		r, err := route.RouteContext(ctx, s.inner.sys, p, s.inner.ropts)
		if err != nil {
			return 0, 0, err
		}
		wl = r.TotalWirelengthMM
	}
	s.fit.Observe(s.inner.sys, p, res.PeakC)
	return res.PeakC, wl, nil
}

// Prescreen implements prescreener: two microsecond-scale surrogate
// predictions (candidate and current placement, so the candidate's
// temperature is estimated as curTempC plus the predicted delta and the fit's
// local bias cancels) plus the exact (cheap) routing of the candidate.
func (s *SurrogateEvaluator) Prescreen(ctx context.Context, cur, nb chiplet.Placement, curTempC float64) (float64, float64, bool, error) {
	if !s.fit.Ready() {
		return 0, 0, false, nil
	}
	s.ctr.SurrogatePrescreens++
	if s.widenLeft > 0 {
		s.widenLeft--
	}
	sp := s.o.StartSpan(obs.PhaseSurrogateEval, "")
	predT := curTempC + s.fit.Predict(s.inner.sys, nb) - s.fit.Predict(s.inner.sys, cur)
	sp.End()
	s.ctr.RouteCalls++
	r, err := route.RouteContext(ctx, s.inner.sys, nb, s.inner.ropts)
	if err != nil {
		return 0, 0, false, err
	}
	s.lastKey, s.lastWL, s.haveWL = placementKey(nb), r.TotalWirelengthMM, true
	return predT, r.TotalWirelengthMM, true, nil
}

// PrescreenPolicy implements prescreener: the configured margin (widened for
// WidenSteps prescreens after a drift-audit breach) and sharpening factor.
func (s *SurrogateEvaluator) PrescreenPolicy() (float64, float64) {
	m := s.cfg.Margin
	if s.widenLeft > 0 {
		m *= s.cfg.WidenFactor
	}
	return m, s.cfg.Sharpen
}

// MaybeAudit implements prescreener: every AuditEvery-th prescreen rejection
// is re-scored with the exact solver; the error feeds the drift statistics
// and the fitter, and a breach of AuditBoundC forces a spread refit plus a
// temporarily widened margin.
func (s *SurrogateEvaluator) MaybeAudit(ctx context.Context, p chiplet.Placement, predTempC float64) error {
	s.ctr.SurrogateRejects++
	s.rejectsSinceAudit++
	if s.rejectsSinceAudit < s.cfg.AuditEvery {
		return nil
	}
	s.rejectsSinceAudit = 0
	s.ctr.SurrogateAudits++
	res, err := s.inner.model.SolveContext(ctx, Sources(s.inner.sys, p))
	if err != nil {
		return err
	}
	s.fit.Observe(s.inner.sys, p, res.PeakC)
	e := predTempC - res.PeakC
	s.driftN++
	s.driftSumSq += e * e
	if math.Abs(e) > s.cfg.AuditBoundC {
		s.ctr.SurrogateRefits++
		s.fit.Refit(s.inner.sys)
		s.widenLeft = s.cfg.WidenSteps
	}
	return nil
}

// SurrogateStats implements surrogateStatsProvider.
func (s *SurrogateEvaluator) SurrogateStats() *SurrogateStats {
	st := &SurrogateStats{
		Prescreens: s.ctr.SurrogatePrescreens,
		Rejects:    s.ctr.SurrogateRejects,
		Audits:     s.ctr.SurrogateAudits,
		Refits:     s.ctr.SurrogateRefits,
	}
	if s.driftN > 0 {
		st.DriftRMSC = math.Sqrt(s.driftSumSq / float64(s.driftN))
	}
	if st.Prescreens > 0 {
		st.HitRate = float64(st.Rejects) / float64(st.Prescreens)
	}
	return st
}

// surrogateEvalState is the serialized form of a SurrogateEvaluator: the
// inner evaluator's state plus the fitted surrogate and audit bookkeeping.
type surrogateEvalState struct {
	Inner             []byte
	Fit               surrogate.State
	RejectsSinceAudit int
	WidenLeft         int
	DriftN            int64
	DriftSumSq        float64
}

// CheckpointState implements StateCheckpointer. The prescreen wirelength
// cache is deliberately not captured: routing is stateless and deterministic,
// so a resumed run that re-routes produces identical lengths.
func (s *SurrogateEvaluator) CheckpointState() ([]byte, error) {
	innerState, err := s.inner.CheckpointState()
	if err != nil {
		return nil, err
	}
	st := surrogateEvalState{
		Inner:             innerState,
		Fit:               s.fit.State(),
		RejectsSinceAudit: s.rejectsSinceAudit,
		WidenLeft:         s.widenLeft,
		DriftN:            s.driftN,
		DriftSumSq:        s.driftSumSq,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("placer: encoding surrogate state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements StateCheckpointer.
func (s *SurrogateEvaluator) RestoreState(state []byte) error {
	var st surrogateEvalState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&st); err != nil {
		return fmt.Errorf("placer: decoding surrogate state: %w", err)
	}
	if err := s.inner.RestoreState(st.Inner); err != nil {
		return err
	}
	if err := s.fit.Restore(s.inner.sys, st.Fit); err != nil {
		return err
	}
	s.rejectsSinceAudit = st.RejectsSinceAudit
	s.widenLeft = st.WidenLeft
	s.driftN = st.DriftN
	s.driftSumSq = st.DriftSumSq
	s.lastKey, s.lastWL, s.haveWL = "", 0, false
	return nil
}
