package placer

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tap25d/internal/metrics"
	"tap25d/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestJSONLSinkConcurrentEmitters drives one sink from many goroutines, as
// PlaceBestOf does with parallel runs sharing a journal. Every emitted event
// must come out as exactly one intact JSON line: no lost events, no
// interleaved partial writes. Run with -race to also check the locking.
func TestJSONLSinkConcurrentEmitters(t *testing.T) {
	const (
		emitters = 8
		events   = 200
	)
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for r := 0; r < emitters; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for s := 0; s < events; s++ {
				ctr := metrics.Counters{Evaluations: int64(s + 1)}
				sink.Emit(Event{
					Kind: EventStep, Run: r, Step: s, Steps: events,
					K: 0.5, BestTempC: 80, BestWirelengthMM: 100,
					Counters: &ctr,
				})
			}
		}(r)
	}
	wg.Wait()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != emitters*events {
		t.Fatalf("journal has %d lines, want %d", len(lines), emitters*events)
	}
	seen := make(map[[2]int]bool, emitters*events)
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %q", i, err, line)
		}
		key := [2]int{e.Run, e.Step}
		if seen[key] {
			t.Fatalf("duplicate event run=%d step=%d", e.Run, e.Step)
		}
		seen[key] = true
		if e.Counters == nil || e.Counters.Evaluations != int64(e.Step+1) {
			t.Fatalf("line %d: counters corrupted: %+v", i, e.Counters)
		}
	}
	if len(seen) != emitters*events {
		t.Fatalf("journal covers %d distinct (run, step) pairs, want %d", len(seen), emitters*events)
	}
}

// TestEventGoldenSchema locks the JSONL wire format, including the
// observability snapshot attached to lifecycle events, against a checked-in
// golden file. The events are built by hand from deterministic values, so a
// byte-for-byte comparison is stable; regenerate with `go test -run
// TestEventGoldenSchema -update` after an intentional schema change and
// review the diff (docs/OPERATIONS.md documents the schema).
func TestEventGoldenSchema(t *testing.T) {
	ctr := metrics.Counters{
		Evaluations: 42, CacheHits: 10, CacheMisses: 32,
		ThermalSolves: 32, CGIterations: 640,
		FullAssembles: 1, DeltaAssembles: 30, SkippedAssembles: 1,
		RouteCalls: 32, Checkpoints: 2, Resumes: 1,
		SurrogatePrescreens: 180, SurrogateRejects: 150,
		SurrogateAudits: 9, SurrogateRefits: 1,
	}
	step := Event{
		Kind: EventStep, Run: 0, Step: 250, Steps: 1000,
		K: 0.71, Alpha: 0.62, Op: "move", Accepted: true,
		TempC: 91.25, WirelengthMM: 1302, Cost: 0.84,
		BestTempC: 88.5, BestWirelengthMM: 1250, AcceptRate: 0.52,
		Counters: &ctr,
	}
	checkpoint := Event{
		Kind: EventCheckpoint, Run: 1, Step: 500, Steps: 1000,
		K: 0.35, BestTempC: 83.52, BestWirelengthMM: 1210, AcceptRate: 0.44,
		Counters: &ctr,
		Surrogate: &SurrogateStats{
			Prescreens: 180, Rejects: 150, Audits: 9, Refits: 1,
			DriftRMSC: 0.45, HitRate: 0.8333333333333334,
		},
		Obs: &obs.EventSnapshot{
			UptimeNS: 1_500_000_000,
			Phases: []obs.PhaseSummary{
				{Phase: "sa_step", Count: 500, TotalNS: 1_000_000_000, MeanNS: 2e6,
					P50NS: 2097151, P90NS: 2097151, P99NS: 4194303, MaxNS: 3_500_000},
				{Phase: "thermal_solve", Count: 480, TotalNS: 720_000_000, MeanNS: 1.5e6,
					P50NS: 2097151, P90NS: 2097151, P99NS: 2097151, MaxNS: 1_900_000},
			},
			CGIterations: obs.HistogramSnapshot{
				Count: 480, Sum: 9600, Max: 40,
				Buckets: []obs.Bucket{{Upper: 15, Count: 100}, {Upper: 31, Count: 300}, {Upper: 63, Count: 80}},
			},
		},
	}

	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit(step)
	sink.Emit(checkpoint)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "event_golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("journal output drifted from %s:\n got: %s\nwant: %s", golden, buf.Bytes(), want)
	}

	// The step line must stay lean: no observability or surrogate payload on
	// step events.
	lines := strings.SplitN(buf.String(), "\n", 2)
	if strings.Contains(lines[0], `"obs"`) {
		t.Fatalf("step event carries an obs payload: %s", lines[0])
	}
	if strings.Contains(lines[0], `"surrogate":{`) {
		t.Fatalf("step event carries a surrogate payload: %s", lines[0])
	}
}
