package placer

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type sealRecord struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Gen   int    `json:"gen"`
}

func TestSealedFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.json")
	in := sealRecord{ID: "job-1", State: "running", Gen: 7}
	if err := WriteSealedFile(path, "tap25d-job", in); err != nil {
		t.Fatal(err)
	}
	var out sealRecord
	if err := ReadSealedFile(path, "tap25d-job", &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestSealedFileDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.json")
	if err := WriteSealedFile(path, "tap25d-job", sealRecord{ID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the payload without breaking the JSON structure.
	mut := bytes.Replace(blob, []byte(`"job-1"`), []byte(`"job-2"`), 1)
	if bytes.Equal(mut, blob) {
		t.Fatal("mutation did not apply")
	}
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	var out sealRecord
	err = ReadSealedFile(path, "tap25d-job", &out)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupted record: got err %v, want ErrCheckpointCorrupt", err)
	}
}

func TestSealedFileRejectsForeignFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.json")
	if err := WriteSealedFile(path, "tap25d-job", sealRecord{ID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	var out sealRecord
	err := ReadSealedFile(path, "tap25d-other", &out)
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("foreign format: got err %v, want ErrCheckpointVersion", err)
	}
}

func TestSealedFileMissingIsNotExist(t *testing.T) {
	var out sealRecord
	err := ReadSealedFile(filepath.Join(t.TempDir(), "absent.json"), "tap25d-job", &out)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got err %v, want fs.ErrNotExist", err)
	}
}
