package placer

import (
	"errors"
	"math"
	"sync"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
)

// fakeEval is a synthetic objective: "temperature" falls as the two
// high-power chiplets separate, "wirelength" is the wire-weighted Manhattan
// center distance. It mimics the real trade-off with microsecond evaluations.
type fakeEval struct {
	sys *chiplet.System
	// tempBase and tempSlope control T = tempBase - tempSlope * minHotDist.
	tempBase, tempSlope float64
	calls               int
}

func (f *fakeEval) Evaluate(p chiplet.Placement) (float64, float64, error) {
	f.calls++
	// Min distance between the two highest-power chiplets (zero for
	// single-chiplet systems).
	hot1, hot2 := -1, -1
	for i, c := range f.sys.Chiplets {
		if hot1 < 0 || c.Power > f.sys.Chiplets[hot1].Power {
			hot2 = hot1
			hot1 = i
		} else if hot2 < 0 || c.Power > f.sys.Chiplets[hot2].Power {
			hot2 = i
		}
	}
	d := 0.0
	if hot2 >= 0 {
		d = p.Centers[hot1].Manhattan(p.Centers[hot2])
	}
	t := f.tempBase - f.tempSlope*d
	var wl float64
	for _, ch := range f.sys.Channels {
		wl += float64(ch.Wires) * p.Centers[ch.Src].Manhattan(p.Centers[ch.Dst])
	}
	return t, wl, nil
}

func placerSystem() *chiplet.System {
	return &chiplet.System{
		Name:        "ptest",
		InterposerW: 30,
		InterposerH: 30,
		Chiplets: []chiplet.Chiplet{
			{Name: "HOT0", W: 8, H: 8, Power: 200},
			{Name: "HOT1", W: 8, H: 8, Power: 200},
			{Name: "MEM0", W: 4, H: 4, Power: 5},
			{Name: "MEM1", W: 4, H: 4, Power: 5},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 1, Wires: 100},
			{Src: 0, Dst: 2, Wires: 50},
			{Src: 1, Dst: 3, Wires: 50},
		},
	}
}

func TestAlphaEqn13(t *testing.T) {
	cases := []struct {
		temp, want float64
	}{
		{84, 0},
		{85, 0},    // at the threshold: pure wirelength
		{86, 0.51}, // 0.1 + (86-45)/100
		{100, 0.65},
		{125, 0.9},
		{200, 0.9}, // capped
	}
	for _, c := range cases {
		if got := Alpha(c.temp, 45, 85); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Alpha(%v) = %v, want %v", c.temp, got, c.want)
		}
	}
}

func TestBetter(t *testing.T) {
	const crit = 85
	cases := []struct {
		aT, aW, bT, bW float64
		want           bool
	}{
		{80, 100, 90, 50, true},   // feasible beats infeasible
		{90, 50, 80, 100, false},  // infeasible loses
		{80, 100, 80, 200, true},  // both feasible: lower WL
		{80, 200, 80, 100, false}, // both feasible: higher WL loses
		{95, 100, 100, 50, true},  // both infeasible: lower T
		{95, 100, 95, 50, false},  // tie on T: lower WL wins
	}
	for i, c := range cases {
		if got := Better(c.aT, c.aW, c.bT, c.bW, crit); got != c.want {
			t.Errorf("case %d: Better = %v, want %v", i, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpMove.String() != "move" || OpRotate.String() != "rotate" || OpJump.String() != "jump" {
		t.Error("op strings wrong")
	}
	if Op(9).String() == "" {
		t.Error("unknown op should format")
	}
}

func TestPlaceLowersTemperatureWhenHot(t *testing.T) {
	sys := placerSystem()
	// tempBase 130: compact initial placements run far above 85 C, so the
	// annealer must spread the hot pair.
	ev := &fakeEval{sys: sys, tempBase: 130, tempSlope: 2}
	res, err := Place(sys, ev, Options{Steps: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(res.Placement); err != nil {
		t.Fatalf("final placement invalid: %v", err)
	}
	if res.PeakC >= res.InitialPeakC {
		t.Errorf("peak %v did not improve on initial %v", res.PeakC, res.InitialPeakC)
	}
	// The hot pair must have been separated substantially.
	d0 := res.Initial.Centers[0].Manhattan(res.Initial.Centers[1])
	d1 := res.Placement.Centers[0].Manhattan(res.Placement.Centers[1])
	if d1 <= d0 {
		t.Errorf("hot-pair distance %v did not grow from %v", d1, d0)
	}
}

func TestPlaceMinimizesWirelengthWhenCool(t *testing.T) {
	sys := placerSystem()
	// Always far below critical: alpha = 0, pure wirelength minimization;
	// the compact initial placement should stay (or improve slightly).
	ev := &fakeEval{sys: sys, tempBase: 60, tempSlope: 0.5}
	res, err := Place(sys, ev, Options{Steps: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.WirelengthMM > res.InitialWirelength*1.05 {
		t.Errorf("wirelength %v regressed vs initial %v", res.WirelengthMM, res.InitialWirelength)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	sys := placerSystem()
	mk := func() (*Result, error) {
		return Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, Options{Steps: 300, Seed: 5})
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placement.Centers {
		if a.Placement.Centers[i] != b.Placement.Centers[i] {
			t.Fatalf("same seed, different placements at %d", i)
		}
	}
	if a.PeakC != b.PeakC || a.WirelengthMM != b.WirelengthMM {
		t.Error("same seed, different metrics")
	}
}

func TestPlaceHistory(t *testing.T) {
	sys := placerSystem()
	res, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		Options{Steps: 200, Seed: 3, History: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || len(res.History) > 200 {
		t.Fatalf("history length %d", len(res.History))
	}
	sawAccept := false
	for _, s := range res.History {
		if s.K > 1 || s.K < 0.01-1e-12 {
			t.Errorf("K out of schedule: %v", s.K)
		}
		if s.Alpha < 0 || s.Alpha > 0.9 {
			t.Errorf("alpha out of range: %v", s.Alpha)
		}
		if s.Accepted {
			sawAccept = true
		}
	}
	if !sawAccept {
		t.Error("no accepted steps recorded")
	}
	if res.Accepted == 0 {
		t.Error("Accepted counter zero")
	}
}

func TestPlaceDisableJump(t *testing.T) {
	sys := placerSystem()
	res, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		Options{Steps: 300, Seed: 4, History: true, DisableJump: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.History {
		if s.Op == OpJump {
			t.Fatal("jump operator used despite DisableJump")
		}
	}
}

func TestPlaceFixedAlpha(t *testing.T) {
	sys := placerSystem()
	res, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		Options{Steps: 200, Seed: 4, History: true, FixedAlpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.History {
		if s.Alpha != 0.5 {
			t.Fatalf("alpha = %v, want fixed 0.5", s.Alpha)
		}
	}
}

func TestPlaceKeepsAllPlacementsValid(t *testing.T) {
	sys := placerSystem()
	ev := &validatingEval{sys: sys, inner: &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}}
	if _, err := Place(sys, ev, Options{Steps: 400, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if ev.violations > 0 {
		t.Errorf("%d invalid placements reached the evaluator", ev.violations)
	}
}

type validatingEval struct {
	sys        *chiplet.System
	inner      Evaluator
	violations int
}

func (v *validatingEval) Evaluate(p chiplet.Placement) (float64, float64, error) {
	if err := v.sys.CheckPlacement(p); err != nil {
		v.violations++
	}
	return v.inner.Evaluate(p)
}

func TestPlaceInitialProvided(t *testing.T) {
	sys := placerSystem()
	init := chiplet.NewPlacement(4)
	init.Centers[0] = geom.Point{X: 5, Y: 5}
	init.Centers[1] = geom.Point{X: 25, Y: 25}
	init.Centers[2] = geom.Point{X: 5, Y: 25}
	init.Centers[3] = geom.Point{X: 25, Y: 5}
	res, err := Place(sys, &fakeEval{sys: sys, tempBase: 60, tempSlope: 0},
		Options{Steps: 50, Seed: 1, Initial: &init})
	if err != nil {
		t.Fatal(err)
	}
	for i := range init.Centers {
		if res.Initial.Centers[i] != init.Centers[i] {
			t.Errorf("initial placement not honored at %d", i)
		}
	}
}

func TestPlaceEvaluatorErrorPropagates(t *testing.T) {
	sys := placerSystem()
	ev := &failingEval{}
	if _, err := Place(sys, ev, Options{Steps: 10, Seed: 1}); err == nil {
		t.Error("evaluator error swallowed")
	}
}

type failingEval struct{}

func (f *failingEval) Evaluate(chiplet.Placement) (float64, float64, error) {
	return 0, 0, errors.New("boom")
}

func TestPlaceBestOf(t *testing.T) {
	sys := placerSystem()
	factory := func() (Evaluator, error) {
		return &fakeEval{sys: sys, tempBase: 130, tempSlope: 2}, nil
	}
	best, err := PlaceBestOf(sys, factory, 4, Options{Steps: 300, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the winning seed individually: it must reproduce the result.
	solo, err := Place(sys, &fakeEval{sys: sys, tempBase: 130, tempSlope: 2},
		Options{Steps: 300, Seed: 100 + int64(best.Run)})
	if err != nil {
		t.Fatal(err)
	}
	if solo.PeakC != best.PeakC || solo.WirelengthMM != best.WirelengthMM {
		t.Errorf("best-of result (%v, %v) does not match solo rerun (%v, %v)",
			best.PeakC, best.WirelengthMM, solo.PeakC, solo.WirelengthMM)
	}
	// And every other run must not beat it.
	for r := 0; r < 4; r++ {
		res, err := Place(sys, &fakeEval{sys: sys, tempBase: 130, tempSlope: 2},
			Options{Steps: 300, Seed: 100 + int64(r)})
		if err != nil {
			t.Fatal(err)
		}
		if Better(res.PeakC, res.WirelengthMM, best.PeakC, best.WirelengthMM, 85) {
			t.Errorf("run %d beats the reported best", r)
		}
	}
}

// countedEval wraps fakeEval with unsynchronized per-run counters, exactly
// like the real SystemEvaluator's. The safety contract is structural: each
// run owns its evaluator, and PlaceBestOf merges counters only after the run
// goroutines are joined.
type countedEval struct {
	fakeEval
	ctr metrics.Counters
}

func (c *countedEval) Evaluate(p chiplet.Placement) (float64, float64, error) {
	c.ctr.Evaluations++
	return c.fakeEval.Evaluate(p)
}

func (c *countedEval) Metrics() metrics.Counters { return c.ctr }

// TestPlaceBestOfCounterMergeRaceSafe is a -race regression test for the
// counter aggregation in PlaceBestOfContext: merging per-run counters while a
// run goroutine still writes them (or sharing one Counters instance across
// runs) trips the race detector here, and a lost update shows up as a sum
// mismatch. An Observer is attached so the per-step SetRunCounters path runs
// concurrently with the merge as it does in production.
func TestPlaceBestOfCounterMergeRaceSafe(t *testing.T) {
	sys := placerSystem()
	var mu sync.Mutex
	var evs []*countedEval
	factory := func() (Evaluator, error) {
		ev := &countedEval{fakeEval: fakeEval{sys: sys, tempBase: 130, tempSlope: 2}}
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
		return ev, nil
	}
	o := obs.New()
	const runs = 8
	best, err := PlaceBestOf(sys, factory, runs, Options{Steps: 200, Seed: 7, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evs) != runs {
		t.Fatalf("factory built %d evaluators, want %d", len(evs), runs)
	}
	var want int64
	for _, ev := range evs {
		want += ev.ctr.Evaluations
	}
	// Each run evaluates the initial placement once plus at most one
	// neighbor per step, so the total is bounded and non-trivial.
	if want <= runs || want > runs*201 {
		t.Fatalf("implausible total evaluations %d for %d runs of 200 steps", want, runs)
	}
	if best.Metrics.Evaluations != want {
		t.Fatalf("merged Evaluations = %d, want sum of per-run counters %d",
			best.Metrics.Evaluations, want)
	}
	// The observer absorbed each run's final counters; its report must agree.
	if rep := o.Report(); rep.Counters.Evaluations != want {
		t.Fatalf("observer report Evaluations = %d, want %d", rep.Counters.Evaluations, want)
	}
}

func TestPlaceBestOfFactoryError(t *testing.T) {
	sys := placerSystem()
	factory := func() (Evaluator, error) { return nil, errors.New("no evaluator") }
	if _, err := PlaceBestOf(sys, factory, 2, Options{Steps: 10}); err == nil {
		t.Error("factory error swallowed")
	}
}

func TestNormBounds(t *testing.T) {
	n := newNormBounds(3)
	// Empty and degenerate windows: cost must be 0, not NaN.
	if c := n.cost(90, 100, 0.5); c != 0 {
		t.Errorf("empty-window cost = %v", c)
	}
	n.observe(90, 100)
	if c := n.cost(90, 100, 0.5); c != 0 {
		t.Errorf("degenerate cost = %v", c)
	}
	n.observe(110, 200)
	n.observe(80, 50)
	tMin, tMax, wMin, wMax := n.ranges()
	if tMin != 80 || tMax != 110 || wMin != 50 || wMax != 200 {
		t.Fatalf("bounds wrong: %v %v %v %v", tMin, tMax, wMin, wMax)
	}
	// Midpoint temperatures and wirelengths normalize into (0, 1).
	c := n.cost(95, 125, 0.5)
	if c <= 0 || c >= 1 {
		t.Errorf("cost = %v, want in (0,1)", c)
	}
	// alpha=1: only temperature matters.
	if got := n.cost(110, 50, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("temp-only cost = %v, want 1", got)
	}
	// The window slides: after 3 more observations the old extremes fall
	// out and the bounds tighten.
	n.observe(100, 120)
	n.observe(101, 121)
	n.observe(102, 122)
	tMin, tMax, wMin, wMax = n.ranges()
	if tMin != 100 || tMax != 102 || wMin != 120 || wMax != 122 {
		t.Errorf("window did not slide: %v %v %v %v", tMin, tMax, wMin, wMax)
	}
	// Out-of-window values extrapolate monotonically.
	if !(n.cost(110, 121, 1) > n.cost(102, 121, 1)) {
		t.Error("extrapolation not monotone")
	}
	if n.cost(90, 121, 1) >= 0 {
		t.Error("below-window temperature should extrapolate negative")
	}
}

// TestSlidingTileJumpAblation demonstrates the Section III-C3 motivation for
// the jump operator: with a crowded interposer and no jump, the annealer
// separates the hot pair less effectively than with jumps enabled.
func TestSlidingTileJumpAblation(t *testing.T) {
	sys := &chiplet.System{
		Name:        "crowded",
		InterposerW: 22,
		InterposerH: 22,
		Chiplets: []chiplet.Chiplet{
			{Name: "H0", W: 9, H: 9, Power: 200},
			{Name: "H1", W: 9, H: 9, Power: 200},
			{Name: "M0", W: 9, H: 9, Power: 5},
			{Name: "M1", W: 9, H: 9, Power: 5},
		},
		Channels: []chiplet.Channel{{Src: 0, Dst: 1, Wires: 64}},
	}
	dist := func(disableJump bool) float64 {
		var total float64
		for seed := int64(0); seed < 3; seed++ {
			ev := &fakeEval{sys: sys, tempBase: 140, tempSlope: 3}
			res, err := Place(sys, ev, Options{Steps: 400, Seed: seed, DisableJump: disableJump})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Placement.Centers[0].Manhattan(res.Placement.Centers[1])
		}
		return total / 3
	}
	withJump := dist(false)
	withoutJump := dist(true)
	if withJump < withoutJump {
		t.Logf("note: jump (%v) did not separate farther than no-jump (%v) on this toy case", withJump, withoutJump)
	}
	// At minimum, jump must not be catastrophically worse.
	if withJump+4 < withoutJump {
		t.Errorf("jump separation %v much worse than without (%v)", withJump, withoutJump)
	}
}
