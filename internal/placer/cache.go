package placer

import (
	"container/list"
	"context"
	"encoding/binary"
	"math"

	"tap25d/internal/chiplet"
	"tap25d/internal/metrics"
)

// MetricsProvider is implemented by evaluators that expose evaluation
// counters. Read the counters only after the evaluator's run has finished;
// they are not synchronized.
type MetricsProvider interface {
	Metrics() metrics.Counters
}

// counterSource lets a wrapping evaluator share its inner evaluator's
// counter instance, so Evaluations/CacheHits/CacheMisses accumulate in one
// place regardless of nesting.
type counterSource interface {
	counters() *metrics.Counters
}

// placementKey serializes a placement into an exact byte-for-byte cache key:
// the IEEE-754 bits of every center coordinate followed by the rotation
// flags. Two placements share a key iff they are bit-identical, so a cache
// hit can never conflate distinct placements.
func placementKey(p chiplet.Placement) string {
	buf := make([]byte, 0, len(p.Centers)*16+len(p.Rotated))
	var b [8]byte
	for _, c := range p.Centers {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.X))
		buf = append(buf, b[:]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.Y))
		buf = append(buf, b[:]...)
	}
	for _, r := range p.Rotated {
		if r {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return string(buf)
}

type cacheEntry struct {
	key   string
	tempC float64
	wlMM  float64
}

// CachingEvaluator memoizes (peak temperature, wirelength) by placement in a
// bounded LRU. The annealer revisits placements — rejected moves retried
// later, jump returns to earlier configurations — and a hit skips both the
// thermal solve and the router.
//
// Caveat: a skipped thermal solve also skips advancing the thermal model's
// warm-start field, so subsequent *misses* start CG from a different guess
// than an uncached run would. Solutions still satisfy the CG tolerance, but
// they are not bit-identical to the uncached trajectory, which can flip
// near-tie acceptance decisions in the annealer. Wrap an evaluator with this
// only when exact cross-run reproducibility against an uncached baseline is
// not required (reproducibility at fixed seed *with* the cache is still
// deterministic).
type CachingEvaluator struct {
	inner Evaluator
	cap   int
	ll    *list.List
	byKey map[string]*list.Element
	ctr   *metrics.Counters
	owned bool // ctr is owned by this wrapper (inner exposes none)
}

// NewCachingEvaluator wraps ev with an LRU of the given capacity (defaults
// to 4096 entries when size <= 0).
func NewCachingEvaluator(ev Evaluator, size int) *CachingEvaluator {
	if size <= 0 {
		size = 4096
	}
	c := &CachingEvaluator{
		inner: ev,
		cap:   size,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, size),
	}
	if cs, ok := ev.(counterSource); ok {
		c.ctr = cs.counters()
	} else {
		c.ctr = &metrics.Counters{}
		c.owned = true
	}
	return c
}

func (c *CachingEvaluator) counters() *metrics.Counters { return c.ctr }

// Metrics returns the accumulated counters (shared with the inner evaluator
// when it exposes its own).
func (c *CachingEvaluator) Metrics() metrics.Counters { return *c.ctr }

// Evaluate implements Evaluator.
func (c *CachingEvaluator) Evaluate(p chiplet.Placement) (float64, float64, error) {
	return c.EvaluateContext(context.Background(), p)
}

// EvaluateContext implements ContextEvaluator: misses dispatch through the
// inner evaluator's EvaluateContext when it has one, so cancellation reaches
// the thermal solve; hits never block on ctx.
func (c *CachingEvaluator) EvaluateContext(ctx context.Context, p chiplet.Placement) (float64, float64, error) {
	key := placementKey(p)
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.ctr.Evaluations++
		c.ctr.CacheHits++
		return e.tempC, e.wlMM, nil
	}
	t, w, err := evaluate(ctx, c.inner, p)
	if c.owned {
		c.ctr.Evaluations++ // inner exposes no counters; count here
	}
	if err != nil {
		return 0, 0, err
	}
	c.ctr.CacheMisses++
	el := c.ll.PushFront(&cacheEntry{key: key, tempC: t, wlMM: w})
	c.byKey[key] = el
	if c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byKey, old.Value.(*cacheEntry).key)
	}
	return t, w, nil
}

// Len returns the number of cached entries (for tests).
func (c *CachingEvaluator) Len() int { return c.ll.Len() }

// CheckpointState implements StateCheckpointer by delegating to the inner
// evaluator. The cache contents themselves are deliberately not snapshotted:
// a resumed run re-misses warm entries, which matches the cache's existing
// reproducibility caveat (deterministic at fixed seed with the cache, not
// bit-identical to an uncached run).
func (c *CachingEvaluator) CheckpointState() ([]byte, error) {
	if sc, ok := c.inner.(StateCheckpointer); ok {
		return sc.CheckpointState()
	}
	return nil, nil
}

// RestoreState implements StateCheckpointer by delegating to the inner
// evaluator.
func (c *CachingEvaluator) RestoreState(state []byte) error {
	if sc, ok := c.inner.(StateCheckpointer); ok {
		return sc.RestoreState(state)
	}
	return nil
}
