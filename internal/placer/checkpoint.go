package placer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"tap25d/internal/chiplet"
)

// CheckpointVersion is the current snapshot format version. Load rejects
// snapshots written by an incompatible version.
const CheckpointVersion = 1

// checkpointFormat tags the durable on-disk envelope that wraps a checkpoint
// payload with its CRC (see SaveCheckpointFile).
const checkpointFormat = "tap25d-ckpt"

// ErrCheckpointCorrupt is wrapped by decode errors caused by damaged bytes:
// truncation, garbage, or a checksum mismatch. A resume that hits it should
// fall back to the previous checkpoint generation (LoadCheckpointFallback and
// FileStore.Restore do).
var ErrCheckpointCorrupt = errors.New("placer: checkpoint corrupt")

// ErrCheckpointVersion is wrapped by decode errors caused by a snapshot
// written under a different format version — intact bytes this build cannot
// interpret, as opposed to corruption.
var ErrCheckpointVersion = errors.New("placer: checkpoint version unsupported")

// castagnoli is the CRC-32C table used for checkpoint payload checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is a complete, serializable snapshot of an annealing run: the
// schedule position, the RNG state (seed plus raw draw count — see rng.go),
// the current and best OCM placements, the sliding-window normalization state
// behind the dynamic-alpha cost of Eqn. (12), and an opaque evaluator state
// blob (for SystemEvaluator, the thermal model's warm-start field).
//
// A run resumed from a Checkpoint at the same seed is bit-compatible with an
// uninterrupted run: it visits the same placements, makes the same
// accept/reject decisions, and returns the same final result. The one
// documented exception is a CachingEvaluator-wrapped run, whose cache
// contents are not snapshotted (matching the cache's own reproducibility
// caveat).
type Checkpoint struct {
	// Version stamps the snapshot format (CheckpointVersion).
	Version int `json:"version"`
	// Label is free-form caller context (e.g. the system name); Resume
	// ignores it.
	Label string `json:"label,omitempty"`
	// Run is the run index within a PlaceBestOf fan-out.
	Run int `json:"run"`
	// Step is the next step index to execute on resume.
	Step int `json:"step"`
	// K is the annealing temperature after the last completed step.
	K float64 `json:"k"`
	// RNGSeed and RNGDraws reconstruct the generator: re-seed and discard
	// RNGDraws raw outputs.
	RNGSeed  int64  `json:"rng_seed"`
	RNGDraws uint64 `json:"rng_draws"`
	// Options echoes the run's algorithmic configuration (function-valued
	// orchestration hooks are not serialized). Resume uses these as the
	// authoritative settings so a resumed run cannot silently diverge.
	Options Options `json:"options"`
	// Cur and Best are the current and best-so-far placements with their
	// metrics.
	Cur              chiplet.Placement `json:"cur"`
	CurTempC         float64           `json:"cur_temp_c"`
	CurWirelengthMM  float64           `json:"cur_wirelength_mm"`
	Best             chiplet.Placement `json:"best"`
	BestTempC        float64           `json:"best_temp_c"`
	BestWirelengthMM float64           `json:"best_wirelength_mm"`
	// Initial preserves the run's starting placement diagnostics for the
	// final Result.
	Initial             chiplet.Placement `json:"initial"`
	InitialPeakC        float64           `json:"initial_peak_c"`
	InitialWirelengthMM float64           `json:"initial_wirelength_mm"`
	// Accepted and CompletedSteps restore the Result counters.
	Accepted       int `json:"accepted"`
	CompletedSteps int `json:"completed_steps"`
	// BoundsT/BoundsW/BoundsIdx serialize the sliding min-max window of
	// Eqn. (12); BoundsSize is its capacity.
	BoundsT    []float64 `json:"bounds_t"`
	BoundsW    []float64 `json:"bounds_w"`
	BoundsIdx  int       `json:"bounds_idx"`
	BoundsSize int       `json:"bounds_size"`
	// History carries the per-step samples recorded so far (Options.History
	// runs only).
	History []Sample `json:"history,omitempty"`
	// EvalState is the evaluator's opaque state (StateCheckpointer); JSON
	// encodes it as base64.
	EvalState []byte `json:"eval_state,omitempty"`
}

// CheckpointFunc persists a snapshot. It is called from inside the annealing
// loop, so a slow sink directly slows the run; PlaceBestOf calls it
// concurrently from parallel runs (distinguish them by cp.Run). A returned
// error aborts the run.
type CheckpointFunc func(cp *Checkpoint) error

// RestoreFunc supplies the checkpoint a run should resume from, or nil for a
// fresh start. PlaceBestOf queries it once per run index before that run
// begins.
type RestoreFunc func(run int) (*Checkpoint, error)

// StateCheckpointer is implemented by evaluators whose internal state affects
// future evaluations (SystemEvaluator's thermal model warm-starts CG from the
// previous temperature field). Checkpointing captures that state so a resumed
// run replays the exact evaluation trajectory; stateless evaluators simply
// don't implement the interface.
type StateCheckpointer interface {
	// CheckpointState serializes the evaluator state.
	CheckpointState() ([]byte, error)
	// RestoreState re-installs state captured by CheckpointState.
	RestoreState(state []byte) error
}

// Validate checks the structural integrity of a decoded snapshot against the
// system it will resume on.
func (cp *Checkpoint) Validate(sys *chiplet.System) error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("placer: checkpoint version %d, this build reads %d", cp.Version, CheckpointVersion)
	}
	n := len(sys.Chiplets)
	for name, p := range map[string]chiplet.Placement{"cur": cp.Cur, "best": cp.Best, "initial": cp.Initial} {
		if len(p.Centers) != n || len(p.Rotated) != n {
			return fmt.Errorf("placer: checkpoint %s placement has %d chiplets, system has %d", name, len(p.Centers), n)
		}
	}
	if len(cp.BoundsT) != len(cp.BoundsW) {
		return fmt.Errorf("placer: checkpoint bounds arrays disagree (%d vs %d)", len(cp.BoundsT), len(cp.BoundsW))
	}
	if cp.Step < 0 || cp.Step > cp.Options.Steps {
		return fmt.Errorf("placer: checkpoint step %d outside budget %d", cp.Step, cp.Options.Steps)
	}
	return nil
}

// Encode writes the checkpoint as indented JSON (the bare payload, without
// the durable envelope; DecodeCheckpoint reads both forms).
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// checkpointEnvelope is the durable on-disk form: the checkpoint payload
// wrapped with a format tag and the CRC-32C of the payload's compact JSON
// form. The compact form is the canonical hashing input because envelope
// encoding re-indents the embedded payload — whitespace is the one thing the
// envelope legitimately changes, so it is the one thing the checksum ignores.
type checkpointEnvelope struct {
	Format     string          `json:"format"`
	CRC32C     string          `json:"crc32c"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// checkpointCRC hashes a payload's canonical compact form.
func checkpointCRC(payload []byte) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.Checksum(buf.Bytes(), castagnoli)), nil
}

// DecodeCheckpoint reads a checkpoint: either the durable CRC-checksummed
// envelope written by SaveCheckpointFile, or the bare payload JSON written by
// Encode and by builds predating the envelope. Damaged bytes — truncation,
// garbage, a checksum mismatch — yield an error matching ErrCheckpointCorrupt;
// an intact snapshot of an unsupported format version yields one matching
// ErrCheckpointVersion. Callers should Validate the result against the target
// system before resuming.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("placer: reading checkpoint: %w: %w", ErrCheckpointCorrupt, err)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("placer: decoding checkpoint: %w: %w", ErrCheckpointCorrupt, err)
	}
	payload := raw
	if env.Format != "" {
		if env.Format != checkpointFormat {
			return nil, fmt.Errorf("placer: checkpoint format %q, this build reads %q: %w",
				env.Format, checkpointFormat, ErrCheckpointVersion)
		}
		got, err := checkpointCRC(env.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("placer: checkpoint payload unparsable: %w: %w", ErrCheckpointCorrupt, err)
		}
		if got != env.CRC32C {
			return nil, fmt.Errorf("placer: checkpoint checksum %s, payload hashes to %s: %w",
				env.CRC32C, got, ErrCheckpointCorrupt)
		}
		payload = env.Checkpoint
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("placer: decoding checkpoint payload: %w: %w", ErrCheckpointCorrupt, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("placer: checkpoint version %d, this build reads %d: %w",
			cp.Version, CheckpointVersion, ErrCheckpointVersion)
	}
	return &cp, nil
}

// PrevCheckpointPath returns the previous-generation sibling of a checkpoint
// path (SaveCheckpointFile's rotation target).
func PrevCheckpointPath(path string) string { return path + ".prev" }

// SaveCheckpointFile durably writes cp to path:
//
//   - the payload is wrapped in a CRC-32C-checksummed envelope, so any later
//     bit rot or truncation is detected at load time rather than trusted;
//   - the bytes land in a temporary sibling first and are fsynced before the
//     rename, so a crash mid-write never corrupts an existing checkpoint;
//   - an existing checkpoint at path is rotated to path+".prev" (replacing
//     any older generation), so one corrupted newest file never strands the
//     run — LoadCheckpointFallback reads the previous generation instead;
//   - the parent directory is fsynced after the renames, making both
//     generation links themselves durable.
func SaveCheckpointFile(path string, cp *Checkpoint) error {
	payload, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	crc, err := checkpointCRC(payload)
	if err != nil {
		return err
	}
	env := checkpointEnvelope{
		Format:     checkpointFormat,
		CRC32C:     crc,
		Checkpoint: payload,
	}
	blob, err := json.MarshalIndent(&env, "", " ")
	if err != nil {
		return err
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(blob, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, PrevCheckpointPath(path)); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames within it survive a crash. Not every
// platform/filesystem supports fsync on directories; those errors are
// ignored — the rename itself remains atomic either way.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// LoadCheckpointFile reads a checkpoint previously written by
// SaveCheckpointFile, falling back to the previous generation
// (path+".prev") when the newest file is corrupt, version-skewed, or
// missing while the previous survives. Callers that need to know whether
// the fallback happened use LoadCheckpointFallback.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	cp, _, err := LoadCheckpointFallback(path)
	return cp, err
}

// LoadCheckpointFallback is LoadCheckpointFile reporting whether the
// previous generation was used. When neither generation is readable, the
// newest file's error is returned (matching fs.ErrNotExist when no
// checkpoint exists at all, so callers can treat that as a fresh start).
func LoadCheckpointFallback(path string) (*Checkpoint, bool, error) {
	cp, newestErr := loadCheckpointOne(path)
	if newestErr == nil {
		return cp, false, nil
	}
	prev, prevErr := loadCheckpointOne(PrevCheckpointPath(path))
	if prevErr == nil {
		return prev, true, nil
	}
	return nil, false, newestErr
}

// loadCheckpointOne reads a single checkpoint generation.
func loadCheckpointOne(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}
