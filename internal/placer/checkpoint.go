package placer

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tap25d/internal/chiplet"
)

// CheckpointVersion is the current snapshot format version. Load rejects
// snapshots written by an incompatible version.
const CheckpointVersion = 1

// Checkpoint is a complete, serializable snapshot of an annealing run: the
// schedule position, the RNG state (seed plus raw draw count — see rng.go),
// the current and best OCM placements, the sliding-window normalization state
// behind the dynamic-alpha cost of Eqn. (12), and an opaque evaluator state
// blob (for SystemEvaluator, the thermal model's warm-start field).
//
// A run resumed from a Checkpoint at the same seed is bit-compatible with an
// uninterrupted run: it visits the same placements, makes the same
// accept/reject decisions, and returns the same final result. The one
// documented exception is a CachingEvaluator-wrapped run, whose cache
// contents are not snapshotted (matching the cache's own reproducibility
// caveat).
type Checkpoint struct {
	// Version stamps the snapshot format (CheckpointVersion).
	Version int `json:"version"`
	// Label is free-form caller context (e.g. the system name); Resume
	// ignores it.
	Label string `json:"label,omitempty"`
	// Run is the run index within a PlaceBestOf fan-out.
	Run int `json:"run"`
	// Step is the next step index to execute on resume.
	Step int `json:"step"`
	// K is the annealing temperature after the last completed step.
	K float64 `json:"k"`
	// RNGSeed and RNGDraws reconstruct the generator: re-seed and discard
	// RNGDraws raw outputs.
	RNGSeed  int64  `json:"rng_seed"`
	RNGDraws uint64 `json:"rng_draws"`
	// Options echoes the run's algorithmic configuration (function-valued
	// orchestration hooks are not serialized). Resume uses these as the
	// authoritative settings so a resumed run cannot silently diverge.
	Options Options `json:"options"`
	// Cur and Best are the current and best-so-far placements with their
	// metrics.
	Cur              chiplet.Placement `json:"cur"`
	CurTempC         float64           `json:"cur_temp_c"`
	CurWirelengthMM  float64           `json:"cur_wirelength_mm"`
	Best             chiplet.Placement `json:"best"`
	BestTempC        float64           `json:"best_temp_c"`
	BestWirelengthMM float64           `json:"best_wirelength_mm"`
	// Initial preserves the run's starting placement diagnostics for the
	// final Result.
	Initial             chiplet.Placement `json:"initial"`
	InitialPeakC        float64           `json:"initial_peak_c"`
	InitialWirelengthMM float64           `json:"initial_wirelength_mm"`
	// Accepted and CompletedSteps restore the Result counters.
	Accepted       int `json:"accepted"`
	CompletedSteps int `json:"completed_steps"`
	// BoundsT/BoundsW/BoundsIdx serialize the sliding min-max window of
	// Eqn. (12); BoundsSize is its capacity.
	BoundsT    []float64 `json:"bounds_t"`
	BoundsW    []float64 `json:"bounds_w"`
	BoundsIdx  int       `json:"bounds_idx"`
	BoundsSize int       `json:"bounds_size"`
	// History carries the per-step samples recorded so far (Options.History
	// runs only).
	History []Sample `json:"history,omitempty"`
	// EvalState is the evaluator's opaque state (StateCheckpointer); JSON
	// encodes it as base64.
	EvalState []byte `json:"eval_state,omitempty"`
}

// CheckpointFunc persists a snapshot. It is called from inside the annealing
// loop, so a slow sink directly slows the run; PlaceBestOf calls it
// concurrently from parallel runs (distinguish them by cp.Run). A returned
// error aborts the run.
type CheckpointFunc func(cp *Checkpoint) error

// RestoreFunc supplies the checkpoint a run should resume from, or nil for a
// fresh start. PlaceBestOf queries it once per run index before that run
// begins.
type RestoreFunc func(run int) (*Checkpoint, error)

// StateCheckpointer is implemented by evaluators whose internal state affects
// future evaluations (SystemEvaluator's thermal model warm-starts CG from the
// previous temperature field). Checkpointing captures that state so a resumed
// run replays the exact evaluation trajectory; stateless evaluators simply
// don't implement the interface.
type StateCheckpointer interface {
	// CheckpointState serializes the evaluator state.
	CheckpointState() ([]byte, error)
	// RestoreState re-installs state captured by CheckpointState.
	RestoreState(state []byte) error
}

// Validate checks the structural integrity of a decoded snapshot against the
// system it will resume on.
func (cp *Checkpoint) Validate(sys *chiplet.System) error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("placer: checkpoint version %d, this build reads %d", cp.Version, CheckpointVersion)
	}
	n := len(sys.Chiplets)
	for name, p := range map[string]chiplet.Placement{"cur": cp.Cur, "best": cp.Best, "initial": cp.Initial} {
		if len(p.Centers) != n || len(p.Rotated) != n {
			return fmt.Errorf("placer: checkpoint %s placement has %d chiplets, system has %d", name, len(p.Centers), n)
		}
	}
	if len(cp.BoundsT) != len(cp.BoundsW) {
		return fmt.Errorf("placer: checkpoint bounds arrays disagree (%d vs %d)", len(cp.BoundsT), len(cp.BoundsW))
	}
	if cp.Step < 0 || cp.Step > cp.Options.Steps {
		return fmt.Errorf("placer: checkpoint step %d outside budget %d", cp.Step, cp.Options.Steps)
	}
	return nil
}

// Encode writes the checkpoint as indented JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// DecodeCheckpoint reads a JSON checkpoint. Callers should Validate it
// against the target system before resuming.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("placer: decoding checkpoint: %w", err)
	}
	return &cp, nil
}

// SaveCheckpointFile atomically writes cp to path: the snapshot lands in a
// temporary sibling file first and is renamed into place, so a crash mid-
// write never corrupts an existing checkpoint.
func SaveCheckpointFile(path string, cp *Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cp.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile reads a checkpoint previously written by
// SaveCheckpointFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}
