package placer

import (
	"encoding/json"
	"io"
	"sync"

	"tap25d/internal/faultinject"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
)

// Event kinds, carried in Event.Kind so one JSONL journal can interleave
// per-step samples with run-lifecycle records.
const (
	// EventStep is a periodic progress sample (every Options.ProgressEvery
	// steps).
	EventStep = "step"
	// EventCheckpoint is emitted right after a checkpoint snapshot was
	// handed to Options.Checkpoint.
	EventCheckpoint = "checkpoint"
	// EventResume is emitted once when a run continues from a checkpoint,
	// before its first step executes.
	EventResume = "resume"
	// EventFinal is emitted once when a run completes its full step budget.
	EventFinal = "final"
	// EventInterrupted is emitted once when a run aborts on context
	// cancellation; the best-so-far fields describe the solution the run
	// returns.
	EventInterrupted = "interrupted"
	// EventStepSkipped is emitted when a transient evaluation failure
	// consumed a step under Options.EvalFailureBudget instead of aborting the
	// run; Error carries the failure.
	EventStepSkipped = "step_skipped"
	// EventResumeFallback is emitted by a checkpoint store when the newest
	// snapshot was corrupt or missing and the resume fell back to the
	// previous generation; Error carries why the newest was rejected.
	EventResumeFallback = "resume_fallback"
	// EventAnomaly is emitted when the observer's convergence anomaly
	// detector flags the run (stalled improvement, CG iteration inflation);
	// Anomaly carries the kind and Error the triggering measurements.
	EventAnomaly = "anomaly"
)

// Event is one structured progress record of an annealing run. Events are
// emitted through Options.Progress and are designed to serialize cleanly as
// one JSON object per line (see JSONLSink).
type Event struct {
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Run is the run index within a PlaceBestOf fan-out (0 for Place).
	Run int `json:"run"`
	// Step is the number of completed SA steps; Steps is the run's budget.
	Step  int `json:"step"`
	Steps int `json:"steps"`
	// K is the current annealing temperature, Alpha the current Eqn. (13)
	// weight (zero for lifecycle events emitted outside a step).
	K     float64 `json:"k"`
	Alpha float64 `json:"alpha,omitempty"`
	// Op and Accepted describe the step's perturbation (step events only).
	Op       string `json:"op,omitempty"`
	Accepted bool   `json:"accepted,omitempty"`
	// TempC, WirelengthMM and Cost are the metrics of the step's candidate
	// placement (step events only).
	TempC        float64 `json:"temp_c,omitempty"`
	WirelengthMM float64 `json:"wirelength_mm,omitempty"`
	Cost         float64 `json:"cost,omitempty"`
	// BestTempC and BestWirelengthMM track the run's best solution so far.
	BestTempC        float64 `json:"best_temp_c"`
	BestWirelengthMM float64 `json:"best_wirelength_mm"`
	// AcceptRate is accepted moves over completed steps.
	AcceptRate float64 `json:"accept_rate"`
	// Error carries the failure behind a step_skipped or resume_fallback
	// event, or the triggering measurements of an anomaly event.
	Error string `json:"error,omitempty"`
	// Anomaly is the convergence-anomaly kind on anomaly events
	// (obs.AnomalyStalledImprovement, obs.AnomalyCGInflation).
	Anomaly string `json:"anomaly,omitempty"`
	// Counters snapshots the evaluator's metrics (thermal solves, CG
	// iterations, cache hits, ...) when the evaluator exposes them.
	Counters *metrics.Counters `json:"counters,omitempty"`
	// Obs carries phase-timing and CG-convergence histograms on lifecycle
	// events (checkpoint, resume, final, interrupted) when observability is
	// enabled; step events omit it to keep the journal lean.
	Obs *obs.EventSnapshot `json:"obs,omitempty"`
	// Surrogate carries the two-fidelity evaluation statistics on lifecycle
	// events when the run uses a surrogate-prescreening evaluator; step
	// events omit it.
	Surrogate *SurrogateStats `json:"surrogate,omitempty"`
}

// EventFunc receives progress events. PlaceBestOf runs anneal in parallel, so
// an EventFunc shared across runs must be safe for concurrent use (JSONLSink
// is; an ad-hoc closure needs its own locking).
type EventFunc func(Event)

// JSONLSink appends events as JSON Lines to an underlying writer. It is safe
// for concurrent use by parallel runs; its Emit method is an EventFunc.
type JSONLSink struct {
	mu   sync.Mutex
	enc  *json.Encoder
	err  error
	inj  *faultinject.Injector
	lost int
}

// NewJSONLSink wraps w (typically an *os.File holding the run journal).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// SetInjector arms the faultinject.PointJournalWrite injection point on this
// sink so tests can exercise journal-write failures deterministically.
func (s *JSONLSink) SetInjector(inj *faultinject.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// Emit writes one event as a JSON line. Write errors do not abort the run;
// the first one is retained and readable via Err, and every failed write
// counts toward Lost.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inj.Hit(faultinject.PointJournalWrite); err != nil {
		s.lost++
		if s.err == nil {
			s.err = err
		}
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.lost++
		if s.err == nil {
			s.err = err
		}
	}
}

// Lost returns the number of events dropped by write failures.
func (s *JSONLSink) Lost() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// Err returns the first write error encountered, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
