package placer

import (
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

// countingEval returns a distinct result on every call, so a cache hit (which
// must replay the first result) is distinguishable from a re-evaluation.
type countingEval struct{ calls int }

func (e *countingEval) Evaluate(chiplet.Placement) (float64, float64, error) {
	e.calls++
	return 100 + float64(e.calls), 10 * float64(e.calls), nil
}

func placementAt(x float64) chiplet.Placement {
	return chiplet.Placement{
		Centers: []geom.Point{{X: x, Y: 1}, {X: x + 5, Y: 2}},
		Rotated: []bool{false, true},
	}
}

func TestCachingEvaluatorHitReturnsCachedResult(t *testing.T) {
	inner := &countingEval{}
	c := NewCachingEvaluator(inner, 8)
	p := placementAt(3)
	t1, w1, err := c.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	t2, w2, err := c.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 || w1 != w2 {
		t.Fatalf("hit returned (%v, %v), first evaluation gave (%v, %v)", t2, w2, t1, w1)
	}
	if inner.calls != 1 {
		t.Fatalf("inner evaluated %d times, want 1", inner.calls)
	}
	m := c.Metrics()
	if m.Evaluations != 2 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("counters evals=%d hits=%d misses=%d, want 2/1/1", m.Evaluations, m.CacheHits, m.CacheMisses)
	}
}

func TestCachingEvaluatorDistinguishesPlacements(t *testing.T) {
	inner := &countingEval{}
	c := NewCachingEvaluator(inner, 8)
	c.Evaluate(placementAt(1))
	rot := placementAt(1)
	rot.Rotated[0] = true
	c.Evaluate(rot) // same centers, different rotation: must miss
	if inner.calls != 2 {
		t.Fatalf("inner evaluated %d times, want 2", inner.calls)
	}
}

func TestCachingEvaluatorLRUEviction(t *testing.T) {
	inner := &countingEval{}
	c := NewCachingEvaluator(inner, 2)
	a, b, d := placementAt(1), placementAt(2), placementAt(3)
	c.Evaluate(a)
	c.Evaluate(b)
	c.Evaluate(a) // refresh a: b is now least recently used
	c.Evaluate(d) // evicts b
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	before := inner.calls
	c.Evaluate(a) // still cached
	if inner.calls != before {
		t.Fatal("a was evicted; want b evicted (LRU order)")
	}
	c.Evaluate(b) // evicted, re-evaluates
	if inner.calls != before+1 {
		t.Fatal("b not re-evaluated after eviction")
	}
}
