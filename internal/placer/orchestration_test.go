package placer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/route"
	"tap25d/internal/thermal"
)

// TestCountingSourceTransparent proves the wrapper does not change the value
// stream: rand.Rand over a countingSource must emit exactly what it emits
// over the raw source, and skip(n) must reconstruct the generator state.
func TestCountingSourceTransparent(t *testing.T) {
	const seed = 7
	a := rand.New(rand.NewSource(seed))
	src := newCountingSource(seed)
	b := rand.New(src)
	for i := 0; i < 500; i++ {
		switch i % 3 {
		case 0:
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("draw %d: Float64 %v != %v", i, y, x)
			}
		case 1:
			if x, y := a.Intn(97), b.Intn(97); x != y {
				t.Fatalf("draw %d: Intn %v != %v", i, y, x)
			}
		case 2:
			if x, y := a.Int63(), b.Int63(); x != y {
				t.Fatalf("draw %d: Int63 %v != %v", i, y, x)
			}
		}
	}

	// Replay: a fresh source skipped to the recorded draw count must continue
	// with the same values.
	replay := rand.New(func() *countingSource {
		s := newCountingSource(seed)
		s.skip(src.draws)
		return s
	}())
	for i := 0; i < 200; i++ {
		if x, y := b.Float64(), replay.Float64(); x != y {
			t.Fatalf("replayed draw %d: %v != %v", i, y, x)
		}
	}
}

// interruptAfter cancels ctx once n step events have been observed and
// returns the cancelable context plus the hook to install as
// Options.Progress.
func interruptAfter(n int) (context.Context, EventFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	return ctx, func(e Event) {
		if e.Kind != EventStep {
			return
		}
		steps++
		if steps == n {
			cancel()
		}
	}
}

// TestCheckpointKillResumeBitCompatible is the core resilience contract: a
// run interrupted mid-anneal and resumed from its checkpoint must finish with
// exactly the same placement and metrics as the same seed run uninterrupted.
func TestCheckpointKillResumeBitCompatible(t *testing.T) {
	sys := placerSystem()
	opt := Options{Steps: 400, Seed: 11}
	baseline, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" the run after 150 steps; the interrupt path writes a final
	// checkpoint even though no periodic cadence was configured.
	var cp *Checkpoint
	ctx, progress := interruptAfter(150)
	iopt := opt
	iopt.Progress = progress
	iopt.ProgressEvery = 1
	iopt.Checkpoint = func(c *Checkpoint) error { cp = c; return nil }
	partial, err := PlaceContext(ctx, sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, iopt)
	if err == nil {
		t.Fatal("interrupted run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	if partial == nil || !partial.Interrupted {
		t.Fatalf("interrupted run did not return a best-so-far result: %+v", partial)
	}
	if partial.Steps >= opt.Steps {
		t.Fatalf("interrupted run completed %d steps of %d", partial.Steps, opt.Steps)
	}
	if cp == nil {
		t.Fatal("no checkpoint written on interrupt")
	}
	if err := cp.Validate(sys); err != nil {
		t.Fatalf("interrupt checkpoint invalid: %v", err)
	}

	resumed, err := Resume(context.Background(), sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, cp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, baseline, resumed)
}

// cancelingEval cancels a context from inside an evaluation call — the
// deterministic stand-in for a SIGINT landing mid-thermal-solve rather than
// between steps.
type cancelingEval struct {
	inner  Evaluator
	cancel context.CancelFunc
	at     int
	calls  int
}

func (c *cancelingEval) Evaluate(p chiplet.Placement) (float64, float64, error) {
	c.calls++
	if c.calls == c.at {
		c.cancel()
		return 0, 0, context.Canceled
	}
	return c.inner.Evaluate(p)
}

// TestMidStepInterruptResumeBitCompatible covers the harder interrupt
// timing: when the cancellation hits *during* an evaluation, the annealer
// has already drawn the step's neighbor (and possibly decayed K), so the
// interrupt checkpoint must record the step-entry RNG position and
// annealing temperature — otherwise the resumed run draws a different
// perturbation for the re-executed step and silently diverges.
func TestMidStepInterruptResumeBitCompatible(t *testing.T) {
	sys := placerSystem()
	opt := Options{Steps: 400, Seed: 11}
	baseline, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cp *Checkpoint
	iopt := opt
	iopt.Checkpoint = func(c *Checkpoint) error { cp = c; return nil }
	ev := &cancelingEval{
		inner:  &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		cancel: cancel,
		at:     150,
	}
	partial, err := PlaceContext(ctx, sys, ev, iopt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	if partial == nil || !partial.Interrupted {
		t.Fatalf("interrupted run did not return a best-so-far result: %+v", partial)
	}
	if cp == nil {
		t.Fatal("no checkpoint written on mid-step interrupt")
	}
	if err := cp.Validate(sys); err != nil {
		t.Fatalf("mid-step checkpoint invalid: %v", err)
	}

	resumed, err := Resume(context.Background(), sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, cp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, baseline, resumed)
}

// TestResumeFromPeriodicSnapshot resumes from a mid-run periodic snapshot
// (rather than an interrupt-time one) and must land on the identical result.
func TestResumeFromPeriodicSnapshot(t *testing.T) {
	sys := placerSystem()
	opt := Options{Steps: 300, Seed: 3, History: true}
	baseline, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []*Checkpoint
	copt := opt
	copt.CheckpointEvery = 100
	copt.Checkpoint = func(c *Checkpoint) error { snaps = append(snaps, c); return nil }
	if _, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, copt); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 { // steps 100 and 200; no snapshot at the final step
		t.Fatalf("got %d periodic snapshots, want 2", len(snaps))
	}
	for _, cp := range snaps {
		resumed, err := Resume(context.Background(), sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, cp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameOutcome(t, baseline, resumed)
		if len(resumed.History) != len(baseline.History) {
			t.Fatalf("resumed history has %d samples, baseline %d", len(resumed.History), len(baseline.History))
		}
	}
}

// TestCheckpointKillResumeSystemEvaluator runs the contract end-to-end with
// the real evaluator (thermal model + router), round-tripping the checkpoint
// through its JSON file format: resumed result must be bit-identical,
// including the thermal warm-start trajectory captured in EvalState.
func TestCheckpointKillResumeSystemEvaluator(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal solves in -short mode")
	}
	sys := placerSystem()
	newEval := func() *SystemEvaluator {
		ev, err := NewSystemEvaluator(sys, thermal.Options{Grid: 16}, route.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	opt := Options{Steps: 30, Seed: 5, CompactSteps: 2000}
	baseline, err := Place(sys, newEval(), opt)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ckpt.json")
	ctx, progress := interruptAfter(12)
	iopt := opt
	iopt.Progress = progress
	iopt.ProgressEvery = 1
	iopt.Checkpoint = func(c *Checkpoint) error { return SaveCheckpointFile(path, c) }
	if _, err := PlaceContext(ctx, sys, newEval(), iopt); err == nil {
		t.Fatal("interrupted run returned no error")
	}

	cp, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.EvalState) == 0 {
		t.Fatal("checkpoint carries no evaluator state (thermal warm start)")
	}
	resumed, err := Resume(context.Background(), sys, newEval(), cp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, baseline, resumed)
}

func assertSameOutcome(t *testing.T, want, got *Result) {
	t.Helper()
	if got.PeakC != want.PeakC || got.WirelengthMM != want.WirelengthMM {
		t.Fatalf("resumed result (%.10g C, %.10g mm) != baseline (%.10g C, %.10g mm)",
			got.PeakC, got.WirelengthMM, want.PeakC, want.WirelengthMM)
	}
	if !reflect.DeepEqual(got.Placement, want.Placement) {
		t.Fatal("resumed placement differs from baseline")
	}
	if got.Steps != want.Steps || got.Accepted != want.Accepted {
		t.Fatalf("resumed counters steps=%d accepted=%d, baseline steps=%d accepted=%d",
			got.Steps, got.Accepted, want.Steps, want.Accepted)
	}
	if got.Interrupted {
		t.Fatal("resumed run still marked interrupted")
	}
}

// TestRestoreHookRoutesIntoResume checks the PlaceContext front door: when
// Options.Restore yields a snapshot for the run index, the run resumes
// instead of starting over.
func TestRestoreHookRoutesIntoResume(t *testing.T) {
	sys := placerSystem()
	opt := Options{Steps: 200, Seed: 21}
	baseline, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	var cp *Checkpoint
	copt := opt
	copt.CheckpointEvery = 80
	copt.Checkpoint = func(c *Checkpoint) error {
		if cp == nil {
			cp = c
		}
		return nil
	}
	if _, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, copt); err != nil {
		t.Fatal(err)
	}
	ropt := opt
	ropt.Restore = func(run int) (*Checkpoint, error) { return cp, nil }
	resumed, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, ropt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, baseline, resumed)
}

// TestPlaceBestOfPartialError is the regression for the error-path contract:
// one failing run must surface its error without discarding the solutions of
// the runs that succeeded.
func TestPlaceBestOfPartialError(t *testing.T) {
	sys := placerSystem()
	var calls atomic.Int32
	factory := func() (Evaluator, error) {
		if calls.Add(1) == 1 {
			return &failingEval{}, nil
		}
		return &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, nil
	}
	res, err := PlaceBestOf(sys, factory, 4, Options{Steps: 100, Seed: 9})
	if err == nil {
		t.Fatal("failing run's error was swallowed")
	}
	if res == nil {
		t.Fatal("partial results discarded: want best of the successful runs")
	}
	if len(res.Placement.Centers) != len(sys.Chiplets) {
		t.Fatalf("partial best has malformed placement: %+v", res.Placement)
	}
}

// TestPlaceBestOfContextCancelKeepsBest: canceling a fan-out returns the best
// best-so-far across runs, flagged interrupted.
func TestPlaceBestOfContextCancelKeepsBest(t *testing.T) {
	sys := placerSystem()
	ctx, cancel := context.WithCancel(context.Background())
	var steps atomic.Int32
	factory := func() (Evaluator, error) {
		return &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, nil
	}
	opt := Options{Steps: 5000, Seed: 1, ProgressEvery: 1, Progress: func(e Event) {
		if e.Kind == EventStep && steps.Add(1) == 40 {
			cancel()
		}
	}}
	res, err := PlaceBestOfContext(ctx, sys, factory, 3, opt)
	if err == nil {
		t.Fatal("canceled fan-out returned no error")
	}
	if res == nil || !res.Interrupted {
		t.Fatalf("canceled fan-out did not return an interrupted best-so-far: %+v", res)
	}
	if res.Steps >= opt.Steps {
		t.Fatal("winning run claims to have finished despite cancellation")
	}
}

// TestEventStream checks the progress plumbing: cadence of step events, the
// lifecycle markers, and that the JSONL sink writes one valid object per
// line.
func TestEventStream(t *testing.T) {
	sys := placerSystem()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	opt := Options{
		Steps: 120, Seed: 2,
		Progress: sink.Emit, ProgressEvery: 10,
		CheckpointEvery: 50,
		Checkpoint:      func(*Checkpoint) error { return nil },
	}
	if _, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	dec := json.NewDecoder(&buf)
	var last Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("malformed journal line: %v", err)
		}
		kinds[e.Kind]++
		last = e
	}
	if kinds[EventStep] == 0 {
		t.Fatal("no step events emitted")
	}
	if kinds[EventCheckpoint] != 2 { // steps 50 and 100
		t.Fatalf("checkpoint events = %d, want 2", kinds[EventCheckpoint])
	}
	if kinds[EventFinal] != 1 {
		t.Fatalf("final events = %d, want 1", kinds[EventFinal])
	}
	if last.Kind != EventFinal || last.Step != 120 || last.Steps != 120 {
		t.Fatalf("journal does not end with the final event: %+v", last)
	}
	if last.BestTempC == 0 || last.AcceptRate <= 0 {
		t.Fatalf("final event missing best metrics: %+v", last)
	}
}

// TestCheckpointValidate exercises the structural checks a snapshot must pass
// before a resume is attempted on it.
func TestCheckpointValidate(t *testing.T) {
	sys := placerSystem()
	var cp *Checkpoint
	opt := Options{Steps: 60, Seed: 4, CheckpointEvery: 30,
		Checkpoint: func(c *Checkpoint) error { cp = c; return nil }}
	if _, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no snapshot captured")
	}
	if err := cp.Validate(sys); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	bad := *cp
	bad.Version = CheckpointVersion + 1
	if bad.Validate(sys) == nil {
		t.Error("wrong version accepted")
	}
	bad = *cp
	bad.Cur = chiplet.NewPlacement(1)
	if bad.Validate(sys) == nil {
		t.Error("placement length mismatch accepted")
	}
	bad = *cp
	bad.Step = cp.Options.Steps + 1
	if bad.Validate(sys) == nil {
		t.Error("out-of-range step accepted")
	}
	bad = *cp
	bad.BoundsW = bad.BoundsW[:1]
	if bad.Validate(sys) == nil {
		t.Error("mismatched bounds arrays accepted")
	}
}

// TestSaveLoadCheckpointFile round-trips a snapshot through the on-disk JSON
// format and checks the write is atomic (no .tmp litter).
func TestSaveLoadCheckpointFile(t *testing.T) {
	sys := placerSystem()
	var cp *Checkpoint
	opt := Options{Steps: 40, Seed: 6, CheckpointEvery: 20,
		Checkpoint: func(c *Checkpoint) error { cp = c; return nil }}
	if _, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, opt); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	if err := SaveCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpointFile(path + ".tmp"); err == nil {
		t.Error("temporary file left behind after atomic save")
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != cp.Step || got.K != cp.K || got.RNGDraws != cp.RNGDraws ||
		got.RNGSeed != cp.RNGSeed || got.Accepted != cp.Accepted {
		t.Fatalf("round-tripped scalars differ: got %+v want %+v", got, cp)
	}
	if !reflect.DeepEqual(got.Cur, cp.Cur) || !reflect.DeepEqual(got.Best, cp.Best) {
		t.Fatal("round-tripped placements differ")
	}
	if !reflect.DeepEqual(got.BoundsT, cp.BoundsT) || !reflect.DeepEqual(got.BoundsW, cp.BoundsW) {
		t.Fatal("round-tripped bounds differ")
	}
}
