package placer

import (
	"math"
	"testing"

	"tap25d/internal/chiplet"
)

// TestAnnealingSchedule verifies the paper's K schedule through the history:
// K starts at 1, never rises, decays by the 0.95 factor per level, and
// bottoms out at 0.01.
func TestAnnealingSchedule(t *testing.T) {
	sys := placerSystem()
	res, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		Options{Steps: 500, Seed: 9, History: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
	if res.History[0].K != 1 {
		t.Errorf("first K = %v, want 1", res.History[0].K)
	}
	prev := math.Inf(1)
	distinct := map[float64]bool{}
	for _, s := range res.History {
		if s.K > prev+1e-15 {
			t.Fatalf("K rose: %v after %v", s.K, prev)
		}
		distinct[s.K] = true
		prev = s.K
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct K levels over 500 steps", len(distinct))
	}
	// Consecutive distinct levels differ by the 0.95 factor (until the
	// 0.01 floor).
	var levels []float64
	seen := map[float64]bool{}
	for _, s := range res.History {
		if !seen[s.K] {
			seen[s.K] = true
			levels = append(levels, s.K)
		}
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= 0.01+1e-12 {
			break
		}
		ratio := levels[i] / levels[i-1]
		if math.Abs(ratio-0.95) > 1e-9 {
			t.Fatalf("K decay ratio %v at level %d, want 0.95", ratio, i)
		}
	}
	if last := res.History[len(res.History)-1].K; last < 0.01-1e-12 {
		t.Errorf("K fell below the 0.01 floor: %v", last)
	}
}

// TestOperatorMixRoughlyMatchesWeights: over many steps, the recorded
// operators follow the configured mix.
func TestOperatorMixRoughlyMatchesWeights(t *testing.T) {
	sys := placerSystem()
	res, err := Place(sys, &fakeEval{sys: sys, tempBase: 60, tempSlope: 0},
		Options{Steps: 1200, Seed: 10, History: true,
			MoveWeight: 0.6, RotateWeight: 0.2, JumpWeight: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Op]int{}
	for _, s := range res.History {
		counts[s.Op]++
	}
	total := len(res.History)
	if total < 1000 {
		t.Fatalf("history too short: %d", total)
	}
	moveFrac := float64(counts[OpMove]) / float64(total)
	// Moves can fail validity and be retried as other ops, so allow a wide
	// band; the point is that all three operators fire and moves dominate.
	if moveFrac < 0.35 || moveFrac > 0.85 {
		t.Errorf("move fraction %v outside [0.35, 0.85]", moveFrac)
	}
	if counts[OpRotate] == 0 || counts[OpJump] == 0 {
		t.Errorf("operator starved: %v", counts)
	}
}

// TestAcceptanceCoolsDown: the acceptance ratio in the first quarter of the
// anneal must exceed the last quarter (otherwise the schedule does nothing).
func TestAcceptanceCoolsDown(t *testing.T) {
	sys := placerSystem()
	res, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		Options{Steps: 1000, Seed: 11, History: true})
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	q := len(h) / 4
	frac := func(part []Sample) float64 {
		acc := 0
		for _, s := range part {
			if s.Accepted {
				acc++
			}
		}
		return float64(acc) / float64(len(part))
	}
	early := frac(h[:q])
	late := frac(h[len(h)-q:])
	if late >= early {
		t.Errorf("acceptance did not cool: early %v, late %v", early, late)
	}
}

// TestPlaceSingleChipletSystem: degenerate but legal input — one chiplet,
// no channels. The placer should run (only move/rotate/jump of one die) and
// return a valid placement.
func TestPlaceSingleChipletSystem(t *testing.T) {
	sys := &chiplet.System{
		Name:        "solo",
		InterposerW: 20,
		InterposerH: 20,
		Chiplets:    []chiplet.Chiplet{{Name: "X", W: 8, H: 6, Power: 50}},
	}
	ev := &fakeEval{sys: sys, tempBase: 70, tempSlope: 0}
	res, err := Place(sys, ev, Options{Steps: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(res.Placement); err != nil {
		t.Fatal(err)
	}
}
