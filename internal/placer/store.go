package placer

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tap25d/internal/faultinject"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
)

// FileStore is a durable per-run checkpoint store over one directory: its
// Checkpoint and Restore methods plug directly into Options.Checkpoint and
// Options.Restore (and into experiments orchestration). On top of
// SaveCheckpointFile's durability (CRC envelope, fsync, generational
// rotation) it adds bounded write retry with backoff, resume fallback to the
// previous generation with the fallback surfaced as a resume_fallback journal
// event plus counters, and deterministic fault-injection hooks for both
// directions of the I/O.
//
// The zero value is not usable; set Dir. All other fields are optional. A
// FileStore is safe for concurrent use by parallel runs (counter increments
// are serialized internally; Counters must still only be read after the runs
// join, like every other metrics.Counters).
type FileStore struct {
	// Dir is the checkpoint directory (created on first write).
	Dir string
	// Name maps a run index to the snapshot's file name. Default
	// "ckpt-r<run>.json".
	Name func(run int) string
	// Retries is the number of extra write attempts after a failed
	// checkpoint write (default 2; negative disables retry).
	Retries int
	// Backoff is the pause before the first retry, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Strict disables the resume fallback: a corrupt newest generation
	// fails the resume instead of silently continuing from the previous
	// one.
	Strict bool
	// Events, when non-nil, receives a resume_fallback event whenever
	// Restore falls back to the previous generation.
	Events EventFunc
	// Counters, when non-nil, accumulates CkptWriteRetries and
	// ResumeFallbacks.
	Counters *metrics.Counters
	// Obs, when non-nil, mirrors those counts as named extension counters.
	Obs *obs.Observer
	// Inject, when non-nil, is consulted at faultinject.PointCheckpointWrite
	// (per write attempt) and faultinject.PointCheckpointRead (per restore).
	Inject *faultinject.Injector

	mu sync.Mutex
}

func (s *FileStore) path(run int) string {
	name := fmt.Sprintf("ckpt-r%d.json", run)
	if s.Name != nil {
		name = s.Name(run)
	}
	return filepath.Join(s.Dir, name)
}

// Path returns the newest-generation file of a run's checkpoint.
func (s *FileStore) Path(run int) string { return s.path(run) }

func (s *FileStore) count(f func(c *metrics.Counters)) {
	if s.Counters == nil {
		return
	}
	s.mu.Lock()
	f(s.Counters)
	s.mu.Unlock()
}

// Checkpoint durably persists cp, retrying transient write failures up to
// Retries times with doubling backoff. It is an Options.Checkpoint.
func (s *FileStore) Checkpoint(cp *Checkpoint) error {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	path := s.path(cp.Run)
	retries := s.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	backoff := s.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = s.saveOnce(path, cp)
		if err == nil {
			return nil
		}
		if attempt >= retries {
			break
		}
		s.count(func(c *metrics.Counters) { c.CkptWriteRetries++ })
		s.Obs.Add("ckpt_write_retries", 1)
		time.Sleep(backoff << attempt)
	}
	return fmt.Errorf("placer: checkpoint write for run %d failed after %d attempts: %w",
		cp.Run, retries+1, err)
}

func (s *FileStore) saveOnce(path string, cp *Checkpoint) error {
	if err := s.Inject.Hit(faultinject.PointCheckpointWrite); err != nil {
		return err
	}
	return SaveCheckpointFile(path, cp)
}

// Restore is an Options.Restore: it loads run's newest checkpoint
// generation, falling back to the previous generation when the newest is
// corrupt, version-skewed, or missing while the previous survives (unless
// Strict). A fallback increments ResumeFallbacks and emits a
// resume_fallback event carrying the newest generation's failure. When no
// generation exists the run starts fresh (nil, nil).
func (s *FileStore) Restore(run int) (*Checkpoint, error) {
	path := s.path(run)
	cp, newestErr := s.loadOne(path)
	if newestErr == nil {
		return cp, nil
	}
	prev, prevErr := s.loadOne(PrevCheckpointPath(path))
	if errors.Is(newestErr, fs.ErrNotExist) && errors.Is(prevErr, fs.ErrNotExist) {
		return nil, nil // no checkpoint: fresh start
	}
	if prevErr != nil {
		return nil, fmt.Errorf("placer: restoring run %d (prev generation also failed: %v): %w",
			run, prevErr, newestErr)
	}
	if s.Strict {
		return nil, fmt.Errorf("placer: restoring run %d (strict; previous generation exists): %w",
			run, newestErr)
	}
	s.count(func(c *metrics.Counters) { c.ResumeFallbacks++ })
	s.Obs.Add("resume_fallbacks", 1)
	if s.Events != nil {
		s.Events(Event{
			Kind: EventResumeFallback, Run: run, Step: prev.CompletedSteps,
			Steps: prev.Options.Steps, K: prev.K,
			BestTempC: prev.BestTempC, BestWirelengthMM: prev.BestWirelengthMM,
			Error: newestErr.Error(),
		})
	}
	return prev, nil
}

func (s *FileStore) loadOne(path string) (*Checkpoint, error) {
	if err := s.Inject.Hit(faultinject.PointCheckpointRead); err != nil {
		return nil, err
	}
	return loadCheckpointOne(path)
}

// Clean removes every generation of runs 0..runs-1, for callers that retire
// spent snapshots after a clean completion.
func (s *FileStore) Clean(runs int) {
	for r := 0; r < runs; r++ {
		os.Remove(s.path(r))
		os.Remove(PrevCheckpointPath(s.path(r)))
	}
}
