package placer

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/faultinject"
	"tap25d/internal/metrics"
)

// flakyEval wraps fakeEval with an injector-driven failure mode: every
// evaluation hits PointThermalAssemble, so an armed Spec turns chosen
// evaluations into transient errors exactly as a real thermal/route failure
// would surface.
type flakyEval struct {
	fakeEval
	inj *faultinject.Injector
}

func (f *flakyEval) Evaluate(p chiplet.Placement) (float64, float64, error) {
	if err := f.inj.Hit(faultinject.PointThermalAssemble); err != nil {
		return 0, 0, err
	}
	return f.fakeEval.Evaluate(p)
}

func TestStepSkipUnderBudget(t *testing.T) {
	sys := placerSystem()
	inj := faultinject.New(1)
	// Fail evaluations 10 and 25 (the initial placement evaluation is visit
	// 1, so both faults land on SA steps).
	inj.Arm(faultinject.PointThermalAssemble, faultinject.Spec{Every: 15, Count: 2})
	ev := &flakyEval{fakeEval: fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, inj: inj}

	var skipEvents []Event
	res, err := Place(sys, ev, Options{
		Steps: 100, Seed: 3, EvalFailureBudget: 3,
		Progress: func(e Event) {
			if e.Kind == EventStepSkipped {
				skipEvents = append(skipEvents, e)
			}
		},
	})
	if err != nil {
		t.Fatalf("run with failure budget died: %v", err)
	}
	if res.SkippedSteps != 2 {
		t.Errorf("SkippedSteps = %d, want 2", res.SkippedSteps)
	}
	if len(skipEvents) != 2 {
		t.Fatalf("got %d step_skipped events, want 2", len(skipEvents))
	}
	for _, e := range skipEvents {
		if !strings.Contains(e.Error, "injected fault") {
			t.Errorf("skip event error %q does not carry the cause", e.Error)
		}
	}
	// Skipped steps consume the step budget but not the completed count.
	if res.Steps+res.SkippedSteps > 100 {
		t.Errorf("steps %d + skipped %d exceed budget", res.Steps, res.SkippedSteps)
	}
}

func TestStepSkipCountsMetric(t *testing.T) {
	sys := placerSystem()
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointThermalAssemble, faultinject.Spec{Every: 20, Count: 1})
	ev := &countedFlakyEval{
		flakyEval: flakyEval{fakeEval: fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, inj: inj},
	}
	res, err := Place(sys, ev, Options{Steps: 60, Seed: 3, EvalFailureBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ev.ctr.StepEvalSkipped != 1 {
		t.Errorf("StepEvalSkipped = %d, want 1", ev.ctr.StepEvalSkipped)
	}
	if res.Metrics.StepEvalSkipped != 1 {
		t.Errorf("Result.Metrics.StepEvalSkipped = %d, want 1", res.Metrics.StepEvalSkipped)
	}
}

// countedFlakyEval gives flakyEval the counter plumbing of SystemEvaluator.
type countedFlakyEval struct {
	flakyEval
	ctr metrics.Counters
}

func (c *countedFlakyEval) Metrics() metrics.Counters   { return c.ctr }
func (c *countedFlakyEval) counters() *metrics.Counters { return &c.ctr }

func TestStepSkipBudgetExhausted(t *testing.T) {
	sys := placerSystem()
	inj := faultinject.New(1)
	// Persistent failure from evaluation 2 on: the budget of 3 consecutive
	// failures must exhaust and kill the run.
	inj.Arm(faultinject.PointThermalAssemble, faultinject.Spec{Every: 1, Count: 0})
	ev := &flakyEval{fakeEval: fakeEval{sys: sys, tempBase: 120, tempSlope: 2}, inj: inj}
	// Initial placement evaluation would also fail; provide one success.
	inj.Disarm(faultinject.PointThermalAssemble)
	res, err := func() (*Result, error) {
		armed := false
		return Place(sys, &hookEval{inner: ev, hook: func(n int) {
			if n == 1 && !armed {
				armed = true
				inj.Arm(faultinject.PointThermalAssemble, faultinject.Spec{Every: 1})
			}
		}}, Options{Steps: 50, Seed: 3, EvalFailureBudget: 3})
	}()
	if err == nil {
		t.Fatalf("exhausted budget did not fail the run (res=%+v)", res)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error %v lost the injected cause", err)
	}
}

// hookEval calls hook with the number of completed evaluations before
// delegating, letting a test re-arm an injector mid-run.
type hookEval struct {
	inner Evaluator
	n     int
	hook  func(n int)
}

func (h *hookEval) Evaluate(p chiplet.Placement) (float64, float64, error) {
	h.hook(h.n)
	h.n++
	return h.inner.Evaluate(p)
}

// TestStepSkipInertWithoutFaults: the failure budget must be provably inert
// on the happy path — identical results with and without it.
func TestStepSkipInertWithoutFaults(t *testing.T) {
	sys := placerSystem()
	base, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		Options{Steps: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := Place(sys, &fakeEval{sys: sys, tempBase: 120, tempSlope: 2},
		Options{Steps: 200, Seed: 9, EvalFailureBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if base.PeakC != budgeted.PeakC || base.WirelengthMM != budgeted.WirelengthMM ||
		base.Accepted != budgeted.Accepted {
		t.Fatalf("failure budget perturbed a fault-free run: (%v,%v,%d) vs (%v,%v,%d)",
			base.PeakC, base.WirelengthMM, base.Accepted,
			budgeted.PeakC, budgeted.WirelengthMM, budgeted.Accepted)
	}
	if budgeted.SkippedSteps != 0 {
		t.Errorf("fault-free run skipped %d steps", budgeted.SkippedSteps)
	}
}

// TestPlaceBestOfDegradesToBestOfSuccessful: one run's evaluator fails
// persistently; the fan-out still returns the best of the others and attaches
// the failed run's reason.
func TestPlaceBestOfDegradesToBestOfSuccessful(t *testing.T) {
	sys := placerSystem()
	var mu sync.Mutex
	built := 0
	factory := func() (Evaluator, error) {
		mu.Lock()
		built++
		failing := built == 2 // second factory call: always-failing evaluator
		mu.Unlock()
		if failing {
			return &failingEval{}, nil
		}
		return &fakeEval{sys: sys, tempBase: 130, tempSlope: 2}, nil
	}
	best, err := PlaceBestOf(sys, factory, 3, Options{Steps: 100, Seed: 40})
	if best == nil {
		t.Fatalf("no best-of-successful result (err=%v)", err)
	}
	if err == nil {
		t.Fatal("failed run's error was swallowed")
	}
	if len(best.RunFailures) != 1 {
		t.Fatalf("RunFailures = %+v, want exactly one entry", best.RunFailures)
	}
	if best.RunFailures[0].Err == "" {
		t.Error("run failure carries no reason")
	}
	if best.Run == best.RunFailures[0].Run {
		t.Errorf("winning run %d is also the failed run", best.Run)
	}
}
