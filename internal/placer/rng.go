package placer

import "math/rand"

// countingSource wraps the standard PRNG source and counts how many raw
// values it has emitted. The count is the annealer's entire RNG state for
// checkpointing purposes: every high-level draw (Float64, Intn, ...) bottoms
// out in one underlying 64-bit emission per Int63/Uint64 call, so replaying
// the same number of raw draws from the same seed reconstructs the exact
// generator state regardless of which high-level methods consumed it.
//
// Wrapping is value-transparent: countingSource implements rand.Source64, so
// rand.New dispatches Float64/Intn/... through exactly the same code paths —
// and hence yields exactly the same values — as an unwrapped rand.NewSource.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

// newCountingSource seeds a counting source. The standard library source
// returned by rand.NewSource implements Source64.
func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.draws = 0
	s.src.Seed(seed)
}

// skip advances the source by n raw draws. The standard source's Int63 is
// Uint64 masked to 63 bits — both advance the generator by exactly one step —
// so discarding Uint64 outputs replays any mix of high-level draws.
func (s *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws = n
}
