package placer

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
	"tap25d/internal/route"
	"tap25d/internal/surrogate"
	"tap25d/internal/thermal"
)

// fastSurrogateCfg makes the two-fidelity path active within a short test
// run: the fit seeds after 4 exact solves and audits every 4th rejection.
func fastSurrogateCfg() surrogate.Config {
	return surrogate.Config{Window: 16, MinFit: 4, AuditEvery: 4}
}

func newSurrogateEval(t *testing.T, sys *chiplet.System) *SurrogateEvaluator {
	t.Helper()
	ev, err := NewSystemEvaluator(sys, thermal.Options{Grid: 16}, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewSurrogateEvaluator(ev, fastSurrogateCfg(), nil)
}

// TestSurrogateDeterministicAtFixedSeed runs the two-fidelity annealer twice
// at the same seed and requires bit-identical outcomes: the surrogate adds
// RNG draws (the prescreen Metropolis test) but all of them go through the
// same counted source.
func TestSurrogateDeterministicAtFixedSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal solves in -short mode")
	}
	sys := placerSystem()
	opt := Options{Steps: 40, Seed: 9, CompactSteps: 2000}
	a, err := Place(sys, newSurrogateEval(t, sys), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(sys, newSurrogateEval(t, sys), opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, a, b)
}

// TestSurrogateStatsReported checks the Result carries two-fidelity
// statistics consistent with the counters once the prescreen engages.
func TestSurrogateStatsReported(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal solves in -short mode")
	}
	sys := placerSystem()
	ev := newSurrogateEval(t, sys)
	res, err := Place(sys, ev, Options{Steps: 60, Seed: 3, CompactSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate == nil {
		t.Fatal("Result.Surrogate is nil for a surrogate-wrapped run")
	}
	st := res.Surrogate
	if st.Prescreens == 0 {
		t.Fatal("surrogate never prescreened despite MinFit=4 and 60 steps")
	}
	if st.Rejects > st.Prescreens {
		t.Fatalf("rejects %d > prescreens %d", st.Rejects, st.Prescreens)
	}
	if got := res.Metrics.SurrogatePrescreens; got != st.Prescreens {
		t.Fatalf("counter prescreens %d != stats prescreens %d", got, st.Prescreens)
	}
	if st.Prescreens > 0 && st.HitRate != float64(st.Rejects)/float64(st.Prescreens) {
		t.Fatalf("hit rate %v inconsistent with %d/%d", st.HitRate, st.Rejects, st.Prescreens)
	}
	// An exact solve ran for the initial placement, every surrogate-accepted
	// step and every audit; prescreen rejects saved the rest.
	wantEvals := int64(res.Steps) - st.Rejects + 1
	if res.Metrics.Evaluations != wantEvals {
		t.Fatalf("evaluations %d, want steps(%d) - rejects(%d) + 1 = %d",
			res.Metrics.Evaluations, res.Steps, st.Rejects, wantEvals)
	}
}

// TestSurrogateKillResumeBitCompatible extends the kill/resume suite to the
// two-fidelity evaluator: interrupt mid-run, round-trip the checkpoint
// through its file format (fitted surrogate state included), resume with a
// fresh evaluator, and require the exact outcome of an uninterrupted run.
func TestSurrogateKillResumeBitCompatible(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal solves in -short mode")
	}
	sys := placerSystem()
	opt := Options{Steps: 40, Seed: 5, CompactSteps: 2000}
	baseline, err := Place(sys, newSurrogateEval(t, sys), opt)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Surrogate == nil || baseline.Surrogate.Prescreens == 0 {
		t.Fatal("baseline run never engaged the surrogate; test would not cover fit state")
	}

	path := filepath.Join(t.TempDir(), "ckpt.json")
	ctx, progress := interruptAfter(20)
	iopt := opt
	iopt.Progress = progress
	iopt.ProgressEvery = 1
	iopt.Checkpoint = func(c *Checkpoint) error { return SaveCheckpointFile(path, c) }
	if _, err := PlaceContext(ctx, sys, newSurrogateEval(t, sys), iopt); err == nil {
		t.Fatal("interrupted run returned no error")
	}

	cp, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.EvalState) == 0 {
		t.Fatal("checkpoint carries no evaluator state (warm start + surrogate fit)")
	}
	resumed, err := Resume(context.Background(), sys, newSurrogateEval(t, sys), cp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, baseline, resumed)
	if resumed.Surrogate == nil {
		t.Fatal("resumed run lost its surrogate statistics")
	}
}

// TestSurrogateEvaluatorStateRoundTrip checks the evaluator-level snapshot in
// isolation: restore onto a fresh evaluator and require bit-identical
// predictions and audit bookkeeping.
func TestSurrogateEvaluatorStateRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal solves in -short mode")
	}
	sys := placerSystem()
	ev := newSurrogateEval(t, sys)
	p := chiplet.NewPlacement(4)
	p.Centers[0] = geom.Point{X: 5, Y: 5}
	p.Centers[1] = geom.Point{X: 25, Y: 25}
	p.Centers[2] = geom.Point{X: 5, Y: 25}
	p.Centers[3] = geom.Point{X: 25, Y: 5}
	for i := 0; i < 6; i++ {
		q := p.Clone()
		q.Centers[0].X += float64(i)
		if _, _, err := ev.Evaluate(q); err != nil {
			t.Fatal(err)
		}
	}
	ev.rejectsSinceAudit, ev.widenLeft, ev.driftN, ev.driftSumSq = 3, 7, 2, 1.25

	blob, err := ev.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := newSurrogateEval(t, sys)
	if err := fresh.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if fresh.rejectsSinceAudit != 3 || fresh.widenLeft != 7 || fresh.driftN != 2 || fresh.driftSumSq != 1.25 {
		t.Fatalf("audit bookkeeping lost: %d %d %d %v",
			fresh.rejectsSinceAudit, fresh.widenLeft, fresh.driftN, fresh.driftSumSq)
	}
	q := p.Clone()
	q.Centers[0].Y += 2
	if a, b := ev.fit.Predict(sys, q), fresh.fit.Predict(sys, q); a != b {
		t.Fatalf("restored fit predicts %v, original %v", b, a)
	}
}

func TestMergeSurrogateStats(t *testing.T) {
	a := &SurrogateStats{Prescreens: 100, Rejects: 80, Audits: 4, Refits: 1, DriftRMSC: 1, HitRate: 0.8}
	b := &SurrogateStats{Prescreens: 100, Rejects: 60, Audits: 12, Refits: 0, DriftRMSC: 2, HitRate: 0.6}
	m := mergeSurrogateStats(a, b)
	if m.Prescreens != 200 || m.Rejects != 140 || m.Audits != 16 || m.Refits != 1 {
		t.Fatalf("merged counts wrong: %+v", m)
	}
	if m.HitRate != 0.7 {
		t.Fatalf("merged hit rate %v, want 0.7", m.HitRate)
	}
	want := math.Sqrt((4*1 + 12*4) / 16.0)
	if math.Abs(m.DriftRMSC-want) > 1e-12 {
		t.Fatalf("merged drift RMS %v, want %v", m.DriftRMSC, want)
	}
	if mergeSurrogateStats(nil, a) != a || mergeSurrogateStats(a, nil) != a {
		t.Fatal("nil merge should pass through")
	}
	if mergeSurrogateStats(nil, nil) != nil {
		t.Fatal("nil+nil merge should stay nil")
	}
}
