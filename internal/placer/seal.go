package placer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// This file generalizes the checkpoint durability envelope (see
// checkpoint.go) for other durable JSON records — the placement service's
// on-disk job queue seals each job record with the same CRC-32C envelope and
// atomic-write discipline. The two share the corruption sentinels: a damaged
// sealed file matches ErrCheckpointCorrupt, a format mismatch matches
// ErrCheckpointVersion.

// sealedEnvelope is the generic durable on-disk form: an arbitrary JSON
// payload wrapped with a caller-chosen format tag and the CRC-32C of the
// payload's compact JSON form (the same canonicalization rule as
// checkpointEnvelope).
type sealedEnvelope struct {
	Format  string          `json:"format"`
	CRC32C  string          `json:"crc32c"`
	Payload json.RawMessage `json:"payload"`
}

// SealJSON wraps v's JSON encoding in a CRC-32C-checksummed envelope tagged
// with format. OpenSealedJSON reverses it.
func SealJSON(format string, v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	crc, err := checkpointCRC(payload)
	if err != nil {
		return nil, err
	}
	blob, err := json.MarshalIndent(&sealedEnvelope{
		Format: format, CRC32C: crc, Payload: payload,
	}, "", " ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// OpenSealedJSON verifies a blob written by SealJSON — format tag and
// checksum — and decodes its payload into v. Damaged bytes yield an error
// matching ErrCheckpointCorrupt; an intact envelope with the wrong format
// tag yields one matching ErrCheckpointVersion.
func OpenSealedJSON(blob []byte, format string, v any) error {
	var env sealedEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return fmt.Errorf("placer: decoding sealed record: %w: %w", ErrCheckpointCorrupt, err)
	}
	if env.Format != format {
		return fmt.Errorf("placer: sealed record format %q, caller reads %q: %w",
			env.Format, format, ErrCheckpointVersion)
	}
	got, err := checkpointCRC(env.Payload)
	if err != nil {
		return fmt.Errorf("placer: sealed payload unparsable: %w: %w", ErrCheckpointCorrupt, err)
	}
	if got != env.CRC32C {
		return fmt.Errorf("placer: sealed record checksum %s, payload hashes to %s: %w",
			env.CRC32C, got, ErrCheckpointCorrupt)
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		return fmt.Errorf("placer: decoding sealed payload: %w: %w", ErrCheckpointCorrupt, err)
	}
	return nil
}

// WriteSealedFile durably writes v to path under a CRC-sealed envelope using
// the checkpoint write discipline: temp sibling, fsync, rename, directory
// fsync. Unlike SaveCheckpointFile it keeps no previous generation — job
// records are small state machines whose latest state is the only truth.
func WriteSealedFile(path, format string, v any) error {
	blob, err := SealJSON(format, v)
	if err != nil {
		return err
	}
	return atomicWriteFile(path, blob)
}

// ReadSealedFile reads a record written by WriteSealedFile, verifying the
// format tag and checksum.
func ReadSealedFile(path, format string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return OpenSealedJSON(blob, format, v)
}

// atomicWriteFile lands blob at path via temp file + fsync + rename +
// directory fsync, so a crash at any instant leaves either the old bytes or
// the new bytes, never a torn mix.
func atomicWriteFile(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}
