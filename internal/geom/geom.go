// Package geom provides the planar geometry primitives used throughout
// TAP-2.5D: points, rectangles, Manhattan distances, and the placement
// validity predicates of the paper (Eqns. 10 and 11).
//
// All coordinates and lengths are in millimeters. Rectangles are axis-aligned
// and described by their center point plus width (x extent) and height
// (y extent), matching the paper's (X_c, Y_c, w, h) convention.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the interposer plane, in millimeters.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 distance between p and q (Eqn. 2 uses this for
// pin-clump to pin-clump route distances).
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclid returns the L2 distance between p and q.
func (p Point) Euclid(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle given by its center and dimensions.
type Rect struct {
	Center Point
	W, H   float64
}

// RectFromBounds builds a Rect from its lower-left and upper-right corners.
func RectFromBounds(x0, y0, x1, y1 float64) Rect {
	return Rect{
		Center: Point{(x0 + x1) / 2, (y0 + y1) / 2},
		W:      x1 - x0,
		H:      y1 - y0,
	}
}

// MinX returns the left edge coordinate.
func (r Rect) MinX() float64 { return r.Center.X - r.W/2 }

// MaxX returns the right edge coordinate.
func (r Rect) MaxX() float64 { return r.Center.X + r.W/2 }

// MinY returns the bottom edge coordinate.
func (r Rect) MinY() float64 { return r.Center.Y - r.H/2 }

// MaxY returns the top edge coordinate.
func (r Rect) MaxY() float64 { return r.Center.Y + r.H/2 }

// Area returns the rectangle's area in mm².
func (r Rect) Area() float64 { return r.W * r.H }

// Rotated returns the rectangle rotated 90 degrees about its center
// (width and height swapped).
func (r Rect) Rotated() Rect { return Rect{Center: r.Center, W: r.H, H: r.W} }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX() && p.X <= r.MaxX() && p.Y >= r.MinY() && p.Y <= r.MaxY()
}

// ContainsRect reports whether s lies entirely inside r (boundaries allowed to
// touch). This is the paper's Eqn. (11): a chiplet must be completely on the
// interposer.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX() >= r.MinX() && s.MaxX() <= r.MaxX() &&
		s.MinY() >= r.MinY() && s.MaxY() <= r.MaxY()
}

// Overlaps reports whether r and s overlap with positive area.
func (r Rect) Overlaps(s Rect) bool {
	return r.MinX() < s.MaxX() && s.MinX() < r.MaxX() &&
		r.MinY() < s.MaxY() && s.MinY() < r.MaxY()
}

// Gap returns the separation between r and s as defined by the paper's
// Eqn. (10): the maximum of the four directed edge-to-edge distances. It is
// negative when the rectangles overlap, zero when they touch, and positive
// when there is clear space between them along at least one axis.
func (r Rect) Gap(s Rect) float64 {
	return math.Max(
		math.Max(s.MinX()-r.MaxX(), r.MinX()-s.MaxX()),
		math.Max(s.MinY()-r.MaxY(), r.MinY()-s.MaxY()),
	)
}

// SeparatedBy reports whether the gap between r and s is at least wgap
// (Eqn. 10 with w_gap, the 0.1 mm minimum chiplet spacing).
func (r Rect) SeparatedBy(s Rect, wgap float64) bool {
	return r.Gap(s) >= wgap-1e-12
}

// Intersect returns the intersection of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	x0 := math.Max(r.MinX(), s.MinX())
	x1 := math.Min(r.MaxX(), s.MaxX())
	y0 := math.Max(r.MinY(), s.MinY())
	y1 := math.Min(r.MaxY(), s.MaxY())
	if x0 >= x1 || y0 >= y1 {
		return Rect{}, false
	}
	return RectFromBounds(x0, y0, x1, y1), true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return RectFromBounds(
		math.Min(r.MinX(), s.MinX()),
		math.Min(r.MinY(), s.MinY()),
		math.Max(r.MaxX(), s.MaxX()),
		math.Max(r.MaxY(), s.MaxY()),
	)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f]x[%.3f,%.3f]", r.MinX(), r.MaxX(), r.MinY(), r.MaxY())
}

// OverlapArea returns the area of the intersection of r and s (0 if disjoint).
func (r Rect) OverlapArea(s Rect) float64 {
	ix, ok := r.Intersect(s)
	if !ok {
		return 0
	}
	return ix.Area()
}

// BoundingBox returns the smallest rectangle containing every rectangle in rs.
// It returns a zero Rect when rs is empty.
func BoundingBox(rs []Rect) Rect {
	if len(rs) == 0 {
		return Rect{}
	}
	bb := rs[0]
	for _, r := range rs[1:] {
		bb = bb.Union(r)
	}
	return bb
}

// HPWL returns the half-perimeter wirelength of the bounding box of the
// points. It is the classical floorplanning net-length estimate used by the
// Compact-2.5D (B*-tree + fast-SA) baseline.
func HPWL(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return (maxX - minX) + (maxY - minY)
}
