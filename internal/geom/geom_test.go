package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestManhattan(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Manhattan(q); !almostEq(got, 7) {
		t.Errorf("Manhattan = %v, want 7", got)
	}
	if got := p.Euclid(q); !almostEq(got, 5) {
		t.Errorf("Euclid = %v, want 5", got)
	}
}

func TestManhattanSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Bound inputs to the interposer-scale range; astronomically large
		// coordinates overflow and are not meaningful for this domain.
		a := Point{math.Mod(ax, 1e3), math.Mod(ay, 1e3)}
		b := Point{math.Mod(bx, 1e3), math.Mod(by, 1e3)}
		return almostEq(a.Manhattan(b), b.Manhattan(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{r.Float64() * 100, r.Float64() * 100}
		b := Point{r.Float64() * 100, r.Float64() * 100}
		c := Point{r.Float64() * 100, r.Float64() * 100}
		if a.Manhattan(c) > a.Manhattan(b)+b.Manhattan(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestRectBounds(t *testing.T) {
	r := Rect{Center: Point{5, 5}, W: 4, H: 2}
	if !almostEq(r.MinX(), 3) || !almostEq(r.MaxX(), 7) ||
		!almostEq(r.MinY(), 4) || !almostEq(r.MaxY(), 6) {
		t.Errorf("bounds wrong: %v", r)
	}
	if !almostEq(r.Area(), 8) {
		t.Errorf("Area = %v", r.Area())
	}
}

func TestRectFromBoundsRoundTrip(t *testing.T) {
	f := func(x0, y0, w, h float64) bool {
		x0, y0 = math.Mod(x0, 1e3), math.Mod(y0, 1e3)
		w, h = math.Abs(math.Mod(w, 1e2))+0.1, math.Abs(math.Mod(h, 1e2))+0.1
		r := RectFromBounds(x0, y0, x0+w, y0+h)
		return almostEq(r.MinX(), x0) && almostEq(r.MinY(), y0) &&
			almostEq(r.W, w) && almostEq(r.H, h)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2)), Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRotated(t *testing.T) {
	r := Rect{Center: Point{1, 1}, W: 3, H: 7}
	rr := r.Rotated()
	if rr.W != 7 || rr.H != 3 || rr.Center != r.Center {
		t.Errorf("Rotated = %v", rr)
	}
	if rr.Rotated() != r {
		t.Errorf("double rotation not identity")
	}
}

func TestContains(t *testing.T) {
	r := Rect{Center: Point{0, 0}, W: 2, H: 2}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{1, 1}, true},  // corner on boundary
		{Point{-1, 0}, true}, // edge
		{Point{1.1, 0}, false},
		{Point{0, -1.01}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{Center: Point{22.5, 22.5}, W: 45, H: 45}
	inner := Rect{Center: Point{10, 10}, W: 16, H: 16}
	if !outer.ContainsRect(inner) {
		t.Error("inner should be contained")
	}
	edge := Rect{Center: Point{8, 8}, W: 16, H: 16} // touches boundary exactly
	if !outer.ContainsRect(edge) {
		t.Error("edge-touching rect should be contained")
	}
	out := Rect{Center: Point{7.9, 8}, W: 16, H: 16}
	if outer.ContainsRect(out) {
		t.Error("rect poking out should not be contained")
	}
}

func TestOverlaps(t *testing.T) {
	a := Rect{Center: Point{0, 0}, W: 2, H: 2}
	b := Rect{Center: Point{1.5, 0}, W: 2, H: 2} // overlaps by 0.5
	c := Rect{Center: Point{2, 0}, W: 2, H: 2}   // touches exactly
	d := Rect{Center: Point{3, 0}, W: 2, H: 2}   // disjoint
	if !a.Overlaps(b) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("touching rects should not count as overlapping")
	}
	if a.Overlaps(d) {
		t.Error("a and d disjoint")
	}
}

func TestGapMatchesEqn10(t *testing.T) {
	a := Rect{Center: Point{0, 0}, W: 2, H: 2}
	b := Rect{Center: Point{3, 0}, W: 2, H: 2}
	if got := a.Gap(b); !almostEq(got, 1) {
		t.Errorf("Gap = %v, want 1", got)
	}
	// Overlapping: negative gap.
	c := Rect{Center: Point{1, 0}, W: 2, H: 2}
	if got := a.Gap(c); got >= 0 {
		t.Errorf("Gap of overlapping rects = %v, want < 0", got)
	}
	// Diagonal neighbors: gap is the max of per-axis clearances.
	d := Rect{Center: Point{2.5, 2.1}, W: 2, H: 2}
	if got := a.Gap(d); !almostEq(got, 0.5) {
		t.Errorf("diagonal Gap = %v, want 0.5", got)
	}
}

func TestGapSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := Rect{Center: Point{r.Float64() * 40, r.Float64() * 40}, W: 1 + r.Float64()*10, H: 1 + r.Float64()*10}
		b := Rect{Center: Point{r.Float64() * 40, r.Float64() * 40}, W: 1 + r.Float64()*10, H: 1 + r.Float64()*10}
		if !almostEq(a.Gap(b), b.Gap(a)) {
			t.Fatalf("gap asymmetric: %v vs %v", a.Gap(b), b.Gap(a))
		}
		// Gap < 0 iff overlap with positive area.
		if (a.Gap(b) < -1e-12) != a.Overlaps(b) {
			t.Fatalf("gap/overlap disagree: gap=%v overlaps=%v a=%v b=%v",
				a.Gap(b), a.Overlaps(b), a, b)
		}
	}
}

func TestSeparatedBy(t *testing.T) {
	a := Rect{Center: Point{0, 0}, W: 2, H: 2}
	b := Rect{Center: Point{2.1, 0}, W: 2, H: 2} // gap 0.1
	if !a.SeparatedBy(b, 0.1) {
		t.Error("gap 0.1 should satisfy wgap=0.1")
	}
	if a.SeparatedBy(b, 0.2) {
		t.Error("gap 0.1 should not satisfy wgap=0.2")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{Center: Point{0, 0}, W: 4, H: 4}
	b := Rect{Center: Point{2, 2}, W: 4, H: 4}
	ix, ok := a.Intersect(b)
	if !ok {
		t.Fatal("should intersect")
	}
	if !almostEq(ix.Area(), 4) {
		t.Errorf("intersection area = %v, want 4", ix.Area())
	}
	u := a.Union(b)
	if !almostEq(u.Area(), 36) {
		t.Errorf("union area = %v, want 36", u.Area())
	}
	if _, ok := a.Intersect(Rect{Center: Point{10, 10}, W: 1, H: 1}); ok {
		t.Error("disjoint rects should not intersect")
	}
}

func TestOverlapAreaProperties(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		a := Rect{Center: Point{r.Float64() * 20, r.Float64() * 20}, W: 1 + r.Float64()*10, H: 1 + r.Float64()*10}
		b := Rect{Center: Point{r.Float64() * 20, r.Float64() * 20}, W: 1 + r.Float64()*10, H: 1 + r.Float64()*10}
		oa := a.OverlapArea(b)
		if oa < 0 {
			t.Fatal("negative overlap area")
		}
		if oa > a.Area()+1e-9 || oa > b.Area()+1e-9 {
			t.Fatal("overlap area exceeds rect area")
		}
		if !almostEq(oa, b.OverlapArea(a)) {
			t.Fatal("overlap area asymmetric")
		}
		if (oa > 1e-12) != a.Overlaps(b) {
			t.Fatalf("overlap area / Overlaps disagree: %v vs %v", oa, a.Overlaps(b))
		}
	}
}

func TestBoundingBox(t *testing.T) {
	rs := []Rect{
		{Center: Point{1, 1}, W: 2, H: 2},
		{Center: Point{5, 5}, W: 2, H: 2},
	}
	bb := BoundingBox(rs)
	if !almostEq(bb.MinX(), 0) || !almostEq(bb.MaxX(), 6) ||
		!almostEq(bb.MinY(), 0) || !almostEq(bb.MaxY(), 6) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if BoundingBox(nil) != (Rect{}) {
		t.Error("empty bounding box should be zero")
	}
}

func TestHPWL(t *testing.T) {
	pts := []Point{{0, 0}, {3, 4}, {1, 2}}
	if got := HPWL(pts); !almostEq(got, 7) {
		t.Errorf("HPWL = %v, want 7", got)
	}
	if HPWL(nil) != 0 {
		t.Error("HPWL(nil) should be 0")
	}
	if HPWL([]Point{{2, 3}}) != 0 {
		t.Error("HPWL of single point should be 0")
	}
}
