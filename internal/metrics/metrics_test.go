package metrics

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

func TestMergeAccumulates(t *testing.T) {
	a := Counters{Evaluations: 2, ThermalSolves: 2, CGIterations: 50, FullAssembles: 1, DeltaAssembles: 1}
	b := Counters{Evaluations: 3, CacheHits: 1, CacheMisses: 2, SkippedAssembles: 4, RouteCalls: 3}
	a.Merge(b)
	if a.Evaluations != 5 || a.CacheHits != 1 || a.CacheMisses != 2 ||
		a.ThermalSolves != 2 || a.CGIterations != 50 ||
		a.FullAssembles != 1 || a.DeltaAssembles != 1 || a.SkippedAssembles != 4 ||
		a.RouteCalls != 3 {
		t.Fatalf("merge result %+v", a)
	}
}

func TestIsZero(t *testing.T) {
	var c Counters
	if !c.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	c.CGIterations = 1
	if c.IsZero() {
		t.Fatal("non-zero counters reported IsZero")
	}
}

// TestStringStableOrder locks the single-line rendering: every per-flow
// group appears unconditionally, zero or not, in declaration order. Tools
// diff these lines across runs, so the format is part of the journal/report
// contract. The service-level jobs group is the exception — appended only
// when non-zero, so flows that never touch it keep the historical format.
func TestStringStableOrder(t *testing.T) {
	var zero Counters
	wantZero := "evals=0 cache=0/0 (hit/miss) solves=0 cg_iters=0 " +
		"assembles=0/0/0 (full/delta/skip) routes=0 ckpts=0 resumes=0 " +
		"recovery=0/0 (cold/ssor) skipped_steps=0 ckpt_retries=0 resume_fallbacks=0 " +
		"surrogate=0/0/0/0 (prescreen/reject/audit/refit)"
	if s := zero.String(); s != wantZero {
		t.Fatalf("zero counters:\n got %q\nwant %q", s, wantZero)
	}

	c := Counters{
		Evaluations: 11, CacheHits: 2, CacheMisses: 9,
		ThermalSolves: 9, CGIterations: 123,
		FullAssembles: 1, DeltaAssembles: 7, SkippedAssembles: 1,
		RouteCalls: 9, Checkpoints: 3, Resumes: 1,
		CGRetries: 2, CGFallbackPrecond: 1,
		StepEvalSkipped: 4, CkptWriteRetries: 2, ResumeFallbacks: 1,
		SurrogatePrescreens: 20, SurrogateRejects: 12, SurrogateAudits: 3, SurrogateRefits: 1,
		JobsSubmitted: 8, JobsCompleted: 5, JobsFailed: 1, JobsCanceled: 2, JobsResumed: 3,
		JobsQuotaRejected: 4, JobsDeduped: 6, JobsEventsDropped: 7,
	}
	want := "evals=11 cache=2/9 (hit/miss) solves=9 cg_iters=123 " +
		"assembles=1/7/1 (full/delta/skip) routes=9 ckpts=3 resumes=1 " +
		"recovery=2/1 (cold/ssor) skipped_steps=4 ckpt_retries=2 resume_fallbacks=1 " +
		"surrogate=20/12/3/1 (prescreen/reject/audit/refit) " +
		"jobs=8/5/1/2/3 (submit/done/fail/cancel/resume) job_rejects=4/6 (quota/dedup) " +
		"events_dropped=7"
	if s := c.String(); s != want {
		t.Fatalf("populated counters:\n got %q\nwant %q", s, want)
	}
}

// TestJSONSchema locks the snake_case key set used by journal events,
// checkpoints, observability reports and the Prometheus counter names.
func TestJSONSchema(t *testing.T) {
	c := Counters{
		Evaluations: 1, CacheHits: 2, CacheMisses: 3,
		ThermalSolves: 4, CGIterations: 5,
		FullAssembles: 6, DeltaAssembles: 7, SkippedAssembles: 8,
		RouteCalls: 9, Checkpoints: 10, Resumes: 11,
		CGRetries: 12, CGFallbackPrecond: 13,
		StepEvalSkipped: 14, CkptWriteRetries: 15, ResumeFallbacks: 16,
		SurrogatePrescreens: 17, SurrogateRejects: 18, SurrogateAudits: 19, SurrogateRefits: 20,
		JobsSubmitted: 21, JobsCompleted: 22, JobsFailed: 23, JobsCanceled: 24,
		JobsResumed: 25, JobsQuotaRejected: 26, JobsDeduped: 27,
	}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{
		"cache_hits", "cache_misses", "cg_fallback_precond", "cg_iterations",
		"cg_retries", "checkpoints", "ckpt_write_retries", "delta_assembles",
		"evaluations", "full_assembles", "jobs_canceled", "jobs_completed",
		"jobs_deduped", "jobs_failed", "jobs_quota_rejected", "jobs_resumed",
		"jobs_submitted", "resume_fallbacks", "resumes",
		"route_calls", "skipped_assembles", "step_eval_skipped",
		"surrogate_audits", "surrogate_prescreens", "surrogate_refits",
		"surrogate_rejects", "thermal_solves",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("JSON keys:\n got %v\nwant %v", keys, want)
	}

	var back Counters
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, c)
	}
}

// TestJobCountersOmittedWhenZero pins the journal-compatibility contract of
// the service counters: a flow with no job queue serializes exactly the
// pre-service key set, so existing JSONL consumers (and the golden journal
// schema) see no new keys.
func TestJobCountersOmittedWhenZero(t *testing.T) {
	raw, err := json.Marshal(Counters{Evaluations: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for k := range m {
		if len(k) > 5 && k[:5] == "jobs_" {
			t.Fatalf("zero job counter %q serialized; omitempty contract broken", k)
		}
	}
}

// TestEachCoversEveryField keeps Each exhaustive: the number of enumerated
// names must match the number of struct fields, and the names must be the
// JSON tags.
func TestEachCoversEveryField(t *testing.T) {
	var names []string
	Counters{}.Each(func(name string, _ int64) { names = append(names, name) })
	typ := reflect.TypeOf(Counters{})
	if len(names) != typ.NumField() {
		t.Fatalf("Each enumerates %d names, struct has %d fields", len(names), typ.NumField())
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for i := 0; i < typ.NumField(); i++ {
		tag := typ.Field(i).Tag.Get("json")
		for j, r := range tag {
			if r == ',' {
				tag = tag[:j]
				break
			}
		}
		if !seen[tag] {
			t.Errorf("field %s (json %q) missing from Each", typ.Field(i).Name, tag)
		}
	}
}
