package metrics

import (
	"strings"
	"testing"
)

func TestMergeAccumulates(t *testing.T) {
	a := Counters{Evaluations: 2, ThermalSolves: 2, CGIterations: 50, FullAssembles: 1, DeltaAssembles: 1}
	b := Counters{Evaluations: 3, CacheHits: 1, CacheMisses: 2, SkippedAssembles: 4, RouteCalls: 3}
	a.Merge(b)
	if a.Evaluations != 5 || a.CacheHits != 1 || a.CacheMisses != 2 ||
		a.ThermalSolves != 2 || a.CGIterations != 50 ||
		a.FullAssembles != 1 || a.DeltaAssembles != 1 || a.SkippedAssembles != 4 ||
		a.RouteCalls != 3 {
		t.Fatalf("merge result %+v", a)
	}
}

func TestIsZero(t *testing.T) {
	var c Counters
	if !c.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	c.CGIterations = 1
	if c.IsZero() {
		t.Fatal("non-zero counters reported IsZero")
	}
}

func TestStringMentionsCacheOnlyWhenUsed(t *testing.T) {
	c := Counters{Evaluations: 4, ThermalSolves: 4, CGIterations: 100, FullAssembles: 1, DeltaAssembles: 3}
	if s := c.String(); strings.Contains(s, "cache") {
		t.Fatalf("cache shown without hits/misses: %q", s)
	}
	c.CacheHits = 2
	if s := c.String(); !strings.Contains(s, "cache") {
		t.Fatalf("cache hits not reported: %q", s)
	}
}
