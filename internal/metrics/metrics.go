// Package metrics defines the evaluation counters shared by the thermal
// solver, the router and the placer. The incremental thermal fast path
// (fixed-pattern CSR, delta rasterization, evaluation cache) is only
// trustworthy when its savings are observable: these counters record how many
// solves ran, how many matrix assemblies were full rebuilds versus delta
// updates, how many conjugate-gradient iterations were spent, and how often
// the placement-keyed evaluation cache short-circuited an evaluation.
//
// A Counters value is not synchronized: each solver/evaluator owns its own
// instance, and concurrent annealing runs merge their counters only after
// their goroutines have been joined.
package metrics

import "fmt"

// Counters accumulates evaluation statistics along one placement flow.
//
// The JSON field names below are a stable schema: journal events,
// observability reports and the /metrics endpoint all render counters under
// these snake_case names, and docs/OPERATIONS.md documents them in the same
// declaration order that String uses.
type Counters struct {
	// Evaluations counts placement evaluations requested from an evaluator
	// (cache hits and misses both count).
	Evaluations int64 `json:"evaluations"`
	// CacheHits and CacheMisses split Evaluations by whether the
	// placement-keyed cache short-circuited the thermal solve and routing.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// ThermalSolves counts steady-state thermal solves actually performed.
	ThermalSolves int64 `json:"thermal_solves"`
	// CGIterations sums conjugate-gradient iterations over all solves.
	CGIterations int64 `json:"cg_iterations"`
	// FullAssembles counts conductance-matrix value rebuilds over the whole
	// grid; DeltaAssembles counts in-place updates confined to the cells
	// whose chiplet-layer conductivity changed; SkippedAssembles counts
	// solves that reused the matrix untouched (identical source list).
	FullAssembles    int64 `json:"full_assembles"`
	DeltaAssembles   int64 `json:"delta_assembles"`
	SkippedAssembles int64 `json:"skipped_assembles"`
	// RouteCalls counts invocations of the inter-chiplet router.
	RouteCalls int64 `json:"route_calls"`
	// Checkpoints counts annealing-state snapshots written by the placer's
	// run orchestration; Resumes counts runs continued from such a snapshot.
	Checkpoints int64 `json:"checkpoints"`
	Resumes     int64 `json:"resumes"`
	// CGRetries counts recovery-ladder cold restarts after a CG
	// non-convergence (warm state discarded, solve retried from a uniform
	// initial guess).
	CGRetries int64 `json:"cg_retries"`
	// CGFallbackPrecond counts escalations to the SSOR-preconditioned CG
	// fallback after a cold restart also failed to converge.
	CGFallbackPrecond int64 `json:"cg_fallback_precond"`
	// StepEvalSkipped counts annealing steps abandoned after a transient
	// evaluation failure (under Options.EvalFailureBudget) instead of
	// aborting the run.
	StepEvalSkipped int64 `json:"step_eval_skipped"`
	// CkptWriteRetries counts checkpoint write attempts retried after a
	// transient I/O error.
	CkptWriteRetries int64 `json:"ckpt_write_retries"`
	// ResumeFallbacks counts resumes that fell back to the previous
	// checkpoint generation because the newest file was corrupt or missing.
	ResumeFallbacks int64 `json:"resume_fallbacks"`
	// SurrogatePrescreens counts SA candidates scored by the analytical
	// thermal surrogate before (possibly instead of) the exact solver;
	// SurrogateRejects counts the prescreens that declined the move without
	// paying the exact solve.
	SurrogatePrescreens int64 `json:"surrogate_prescreens"`
	SurrogateRejects    int64 `json:"surrogate_rejects"`
	// SurrogateAudits counts prescreen-rejected candidates re-scored exactly
	// to measure surrogate drift; SurrogateRefits counts audits whose error
	// breached the bound and forced a spread-length refit.
	SurrogateAudits int64 `json:"surrogate_audits"`
	SurrogateRefits int64 `json:"surrogate_refits"`
	// MGCycles counts multigrid V-cycles applied as CG preconditioner passes;
	// MGSetups counts hierarchy (re)coarsenings — the initial Galerkin build
	// and every periodic numeric refresh. Both carry omitempty so flows on
	// the default Jacobi path serialize exactly as before multigrid existed.
	MGCycles int64 `json:"mg_cycles,omitempty"`
	MGSetups int64 `json:"mg_setups,omitempty"`

	// Service-level job counters (internal/service). They carry omitempty so
	// the per-run journal events of a plain CLI flow — where no job queue
	// exists — serialize exactly as they did before the service landed.

	// JobsSubmitted counts placement jobs accepted into the service queue
	// (deduplicated resubmits are counted by JobsDeduped instead).
	JobsSubmitted int64 `json:"jobs_submitted,omitempty"`
	// JobsCompleted, JobsFailed and JobsCanceled split terminal job states.
	JobsCompleted int64 `json:"jobs_completed,omitempty"`
	JobsFailed    int64 `json:"jobs_failed,omitempty"`
	JobsCanceled  int64 `json:"jobs_canceled,omitempty"`
	// JobsResumed counts jobs that continued from a mid-run checkpoint after
	// a server drain or restart instead of starting fresh.
	JobsResumed int64 `json:"jobs_resumed,omitempty"`
	// JobsQuotaRejected counts submissions refused with 429 because the
	// tenant's active-job quota was exhausted.
	JobsQuotaRejected int64 `json:"jobs_quota_rejected,omitempty"`
	// JobsDeduped counts submissions answered with an existing job because
	// the (tenant, idempotency key) pair was already known.
	JobsDeduped int64 `json:"jobs_deduped,omitempty"`
	// JobsEventsDropped counts SSE events dropped on slow subscribers
	// instead of blocking the placement worker.
	JobsEventsDropped int64 `json:"jobs_events_dropped,omitempty"`
	// JobsLeasesAcquired and JobsLeasesReleased count job-lease lifecycle
	// edges of the multi-process worker protocol: a worker acquires a lease
	// when it claims a job and releases it when the attempt finalizes.
	JobsLeasesAcquired int64 `json:"jobs_leases_acquired,omitempty"`
	JobsLeasesReleased int64 `json:"jobs_leases_released,omitempty"`
	// JobsLeasesLost counts attempts abandoned because the worker's lease
	// expired or its fencing epoch was superseded mid-run (the job was
	// reclaimed out from under it; the stale worker's writes were rejected).
	JobsLeasesLost int64 `json:"jobs_leases_lost,omitempty"`
	// JobsReclaims counts expired or orphaned running jobs a scavenger took
	// back with an incremented fencing epoch.
	JobsReclaims int64 `json:"jobs_reclaims,omitempty"`
	// JobsRetries counts reclaimed jobs re-queued under their retry budget
	// (a reclaim that exhausts the budget lands in jobs_failed instead).
	JobsRetries int64 `json:"jobs_retries,omitempty"`
	// JobsShed counts submissions refused with 503 by the admission
	// load-shedding threshold (queue depth over Config.MaxQueueDepth).
	JobsShed int64 `json:"jobs_shed,omitempty"`
}

// Each calls f with every counter's stable snake_case JSON name and value, in
// declaration order. It is the single enumeration the Prometheus exporter and
// the documentation lint share, so a field added here is automatically
// exported and automatically required to be documented.
func (c Counters) Each(f func(name string, v int64)) {
	f("evaluations", c.Evaluations)
	f("cache_hits", c.CacheHits)
	f("cache_misses", c.CacheMisses)
	f("thermal_solves", c.ThermalSolves)
	f("cg_iterations", c.CGIterations)
	f("full_assembles", c.FullAssembles)
	f("delta_assembles", c.DeltaAssembles)
	f("skipped_assembles", c.SkippedAssembles)
	f("route_calls", c.RouteCalls)
	f("checkpoints", c.Checkpoints)
	f("resumes", c.Resumes)
	f("cg_retries", c.CGRetries)
	f("cg_fallback_precond", c.CGFallbackPrecond)
	f("step_eval_skipped", c.StepEvalSkipped)
	f("ckpt_write_retries", c.CkptWriteRetries)
	f("resume_fallbacks", c.ResumeFallbacks)
	f("surrogate_prescreens", c.SurrogatePrescreens)
	f("surrogate_rejects", c.SurrogateRejects)
	f("surrogate_audits", c.SurrogateAudits)
	f("surrogate_refits", c.SurrogateRefits)
	f("mg_cycles", c.MGCycles)
	f("mg_setups", c.MGSetups)
	f("jobs_submitted", c.JobsSubmitted)
	f("jobs_completed", c.JobsCompleted)
	f("jobs_failed", c.JobsFailed)
	f("jobs_canceled", c.JobsCanceled)
	f("jobs_resumed", c.JobsResumed)
	f("jobs_quota_rejected", c.JobsQuotaRejected)
	f("jobs_deduped", c.JobsDeduped)
	f("jobs_events_dropped", c.JobsEventsDropped)
	f("jobs_leases_acquired", c.JobsLeasesAcquired)
	f("jobs_leases_released", c.JobsLeasesReleased)
	f("jobs_leases_lost", c.JobsLeasesLost)
	f("jobs_reclaims", c.JobsReclaims)
	f("jobs_retries", c.JobsRetries)
	f("jobs_shed", c.JobsShed)
}

// Merge adds o into c.
func (c *Counters) Merge(o Counters) {
	c.Evaluations += o.Evaluations
	c.CacheHits += o.CacheHits
	c.CacheMisses += o.CacheMisses
	c.ThermalSolves += o.ThermalSolves
	c.CGIterations += o.CGIterations
	c.FullAssembles += o.FullAssembles
	c.DeltaAssembles += o.DeltaAssembles
	c.SkippedAssembles += o.SkippedAssembles
	c.RouteCalls += o.RouteCalls
	c.Checkpoints += o.Checkpoints
	c.Resumes += o.Resumes
	c.CGRetries += o.CGRetries
	c.CGFallbackPrecond += o.CGFallbackPrecond
	c.StepEvalSkipped += o.StepEvalSkipped
	c.CkptWriteRetries += o.CkptWriteRetries
	c.ResumeFallbacks += o.ResumeFallbacks
	c.SurrogatePrescreens += o.SurrogatePrescreens
	c.SurrogateRejects += o.SurrogateRejects
	c.SurrogateAudits += o.SurrogateAudits
	c.SurrogateRefits += o.SurrogateRefits
	c.MGCycles += o.MGCycles
	c.MGSetups += o.MGSetups
	c.JobsSubmitted += o.JobsSubmitted
	c.JobsCompleted += o.JobsCompleted
	c.JobsFailed += o.JobsFailed
	c.JobsCanceled += o.JobsCanceled
	c.JobsResumed += o.JobsResumed
	c.JobsQuotaRejected += o.JobsQuotaRejected
	c.JobsDeduped += o.JobsDeduped
	c.JobsEventsDropped += o.JobsEventsDropped
	c.JobsLeasesAcquired += o.JobsLeasesAcquired
	c.JobsLeasesReleased += o.JobsLeasesReleased
	c.JobsLeasesLost += o.JobsLeasesLost
	c.JobsReclaims += o.JobsReclaims
	c.JobsRetries += o.JobsRetries
	c.JobsShed += o.JobsShed
}

// IsZero reports whether no counter has been incremented.
func (c Counters) IsZero() bool {
	return c == Counters{}
}

// String renders the counters as a compact single-line summary. Every
// per-flow group appears, zero or not, in the struct's declaration order, so
// lines from different runs and tools align and can be diffed or parsed
// column-wise. The multigrid and service-level jobs groups are the
// exceptions: they are appended only when non-zero, so flows that never touch
// them keep their historical line format.
func (c Counters) String() string {
	s := fmt.Sprintf("evals=%d cache=%d/%d (hit/miss) solves=%d cg_iters=%d "+
		"assembles=%d/%d/%d (full/delta/skip) routes=%d ckpts=%d resumes=%d "+
		"recovery=%d/%d (cold/ssor) skipped_steps=%d ckpt_retries=%d resume_fallbacks=%d "+
		"surrogate=%d/%d/%d/%d (prescreen/reject/audit/refit)",
		c.Evaluations, c.CacheHits, c.CacheMisses,
		c.ThermalSolves, c.CGIterations,
		c.FullAssembles, c.DeltaAssembles, c.SkippedAssembles,
		c.RouteCalls, c.Checkpoints, c.Resumes,
		c.CGRetries, c.CGFallbackPrecond,
		c.StepEvalSkipped, c.CkptWriteRetries, c.ResumeFallbacks,
		c.SurrogatePrescreens, c.SurrogateRejects, c.SurrogateAudits, c.SurrogateRefits)
	if c.MGCycles != 0 || c.MGSetups != 0 {
		s += fmt.Sprintf(" mg=%d/%d (cycles/setups)", c.MGCycles, c.MGSetups)
	}
	if c.JobsSubmitted != 0 || c.JobsCompleted != 0 || c.JobsFailed != 0 ||
		c.JobsCanceled != 0 || c.JobsResumed != 0 ||
		c.JobsQuotaRejected != 0 || c.JobsDeduped != 0 || c.JobsEventsDropped != 0 {
		s += fmt.Sprintf(" jobs=%d/%d/%d/%d/%d (submit/done/fail/cancel/resume) "+
			"job_rejects=%d/%d (quota/dedup) events_dropped=%d",
			c.JobsSubmitted, c.JobsCompleted, c.JobsFailed, c.JobsCanceled, c.JobsResumed,
			c.JobsQuotaRejected, c.JobsDeduped, c.JobsEventsDropped)
	}
	if c.JobsLeasesAcquired != 0 || c.JobsLeasesReleased != 0 || c.JobsLeasesLost != 0 ||
		c.JobsReclaims != 0 || c.JobsRetries != 0 || c.JobsShed != 0 {
		s += fmt.Sprintf(" leases=%d/%d/%d (acquire/release/lost) "+
			"reclaims=%d retries=%d shed=%d",
			c.JobsLeasesAcquired, c.JobsLeasesReleased, c.JobsLeasesLost,
			c.JobsReclaims, c.JobsRetries, c.JobsShed)
	}
	return s
}
