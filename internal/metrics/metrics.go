// Package metrics defines the evaluation counters shared by the thermal
// solver, the router and the placer. The incremental thermal fast path
// (fixed-pattern CSR, delta rasterization, evaluation cache) is only
// trustworthy when its savings are observable: these counters record how many
// solves ran, how many matrix assemblies were full rebuilds versus delta
// updates, how many conjugate-gradient iterations were spent, and how often
// the placement-keyed evaluation cache short-circuited an evaluation.
//
// A Counters value is not synchronized: each solver/evaluator owns its own
// instance, and concurrent annealing runs merge their counters only after
// their goroutines have been joined.
package metrics

import "fmt"

// Counters accumulates evaluation statistics along one placement flow.
type Counters struct {
	// Evaluations counts placement evaluations requested from an evaluator
	// (cache hits and misses both count).
	Evaluations int64
	// CacheHits and CacheMisses split Evaluations by whether the
	// placement-keyed cache short-circuited the thermal solve and routing.
	CacheHits   int64
	CacheMisses int64
	// ThermalSolves counts steady-state thermal solves actually performed.
	ThermalSolves int64
	// CGIterations sums conjugate-gradient iterations over all solves.
	CGIterations int64
	// FullAssembles counts conductance-matrix value rebuilds over the whole
	// grid; DeltaAssembles counts in-place updates confined to the cells
	// whose chiplet-layer conductivity changed; SkippedAssembles counts
	// solves that reused the matrix untouched (identical source list).
	FullAssembles    int64
	DeltaAssembles   int64
	SkippedAssembles int64
	// RouteCalls counts invocations of the inter-chiplet router.
	RouteCalls int64
	// Checkpoints counts annealing-state snapshots written by the placer's
	// run orchestration; Resumes counts runs continued from such a snapshot.
	Checkpoints int64
	Resumes     int64
}

// Merge adds o into c.
func (c *Counters) Merge(o Counters) {
	c.Evaluations += o.Evaluations
	c.CacheHits += o.CacheHits
	c.CacheMisses += o.CacheMisses
	c.ThermalSolves += o.ThermalSolves
	c.CGIterations += o.CGIterations
	c.FullAssembles += o.FullAssembles
	c.DeltaAssembles += o.DeltaAssembles
	c.SkippedAssembles += o.SkippedAssembles
	c.RouteCalls += o.RouteCalls
	c.Checkpoints += o.Checkpoints
	c.Resumes += o.Resumes
}

// IsZero reports whether no counter has been incremented.
func (c Counters) IsZero() bool {
	return c == Counters{}
}

// String renders the counters as a compact single-line summary, omitting
// groups that never triggered.
func (c Counters) String() string {
	s := fmt.Sprintf("evals=%d solves=%d cg_iters=%d assembles=%d/%d/%d (full/delta/skip)",
		c.Evaluations, c.ThermalSolves, c.CGIterations,
		c.FullAssembles, c.DeltaAssembles, c.SkippedAssembles)
	if c.CacheHits+c.CacheMisses > 0 {
		s += fmt.Sprintf(" cache=%d/%d (hit/miss)", c.CacheHits, c.CacheMisses)
	}
	if c.RouteCalls > 0 {
		s += fmt.Sprintf(" routes=%d", c.RouteCalls)
	}
	if c.Checkpoints+c.Resumes > 0 {
		s += fmt.Sprintf(" ckpts=%d resumes=%d", c.Checkpoints, c.Resumes)
	}
	return s
}
