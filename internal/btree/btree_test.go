package btree

import (
	"math"
	"math/rand"
	"testing"

	"tap25d/internal/chiplet"
)

func squares(n int, size float64) ([]float64, []float64) {
	w := make([]float64, n)
	h := make([]float64, n)
	for i := range w {
		w[i], h[i] = size, size
	}
	return w, h
}

func TestNewTreeValid(t *testing.T) {
	w, h := squares(7, 5)
	tr := newTree(7, w, h)
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbKeepsTreeValid(t *testing.T) {
	w, h := squares(9, 4)
	tr := newTree(9, w, h)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		perturb(tr, rng)
		if err := tr.validate(); err != nil {
			t.Fatalf("after %d perturbations: %v", i+1, err)
		}
	}
}

func TestPackNoOverlap(t *testing.T) {
	w := []float64{5, 3, 7, 2, 4, 6}
	h := []float64{4, 6, 3, 5, 2, 4}
	tr := newTree(6, w, h)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		perturb(tr, rng)
		xs, ys := tr.pack()
		for a := 0; a < 6; a++ {
			wa, ha := tr.blockDims(a)
			for b := a + 1; b < 6; b++ {
				wb, hb := tr.blockDims(b)
				overlapX := math.Min(xs[a]+wa, xs[b]+wb) - math.Max(xs[a], xs[b])
				overlapY := math.Min(ys[a]+ha, ys[b]+hb) - math.Max(ys[a], ys[b])
				if overlapX > 1e-9 && overlapY > 1e-9 {
					t.Fatalf("trial %d: blocks %d and %d overlap", trial, a, b)
				}
			}
		}
		for b := 0; b < 6; b++ {
			if xs[b] < -1e-9 || ys[b] < -1e-9 {
				t.Fatalf("trial %d: block %d at negative position", trial, b)
			}
		}
	}
}

func TestPackIsCompactForChain(t *testing.T) {
	// A pure left-chain packs blocks in a row on the floor.
	w, h := squares(4, 5)
	tr := newTree(4, w, h)
	// Rewire into a left chain 0 -> 1 -> 2 -> 3.
	for i := range tr.nodes {
		tr.nodes[i] = node{parent: i - 1, left: i + 1, right: -1}
	}
	tr.nodes[3].left = -1
	xs, ys := tr.pack()
	for b := 0; b < 4; b++ {
		if ys[b] != 0 {
			t.Errorf("block %d at y=%v, want 0", b, ys[b])
		}
		if xs[b] != float64(b)*5 {
			t.Errorf("block %d at x=%v, want %v", b, xs[b], float64(b)*5)
		}
	}
}

func TestContour(t *testing.T) {
	c := newContour()
	if y := c.place(0, 5, 3); y != 0 {
		t.Errorf("first block y=%v", y)
	}
	if y := c.place(0, 5, 2); y != 3 {
		t.Errorf("stacked block y=%v, want 3", y)
	}
	if y := c.place(5, 5, 4); y != 0 {
		t.Errorf("adjacent block y=%v, want 0", y)
	}
	// Straddling block rests on the taller of the two columns.
	if y := c.place(3, 4, 1); y != 5 {
		t.Errorf("straddling block y=%v, want 5", y)
	}
}

func fourChipletSystem() *chiplet.System {
	return &chiplet.System{
		Name:        "quad",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 10, H: 10, Power: 100},
			{Name: "B", W: 10, H: 10, Power: 100},
			{Name: "C", W: 8, H: 12, Power: 10},
			{Name: "D", W: 12, H: 8, Power: 10},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 1, Wires: 512},
			{Src: 0, Dst: 2, Wires: 256},
			{Src: 1, Dst: 3, Wires: 256},
		},
	}
}

func TestPlaceCompactValidAndCompact(t *testing.T) {
	sys := fourChipletSystem()
	res, err := PlaceCompact(sys, Options{Seed: 1, Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(res.Placement); err != nil {
		t.Fatalf("compact placement invalid: %v", err)
	}
	// Compactness: bounding box area should be within 2x of total chiplet
	// area (a loose but meaningful bound for 4 blocks).
	var tot float64
	for _, c := range sys.Chiplets {
		tot += c.Area()
	}
	if res.BBoxMM.Area() > 2*tot {
		t.Errorf("bbox area %.0f too loose vs chiplet area %.0f", res.BBoxMM.Area(), tot)
	}
	if res.WirelengthMM <= 0 {
		t.Error("wirelength should be positive")
	}
}

func TestPlaceCompactDeterministic(t *testing.T) {
	sys := fourChipletSystem()
	a, err := PlaceCompact(sys, Options{Seed: 7, Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceCompact(sys, Options{Seed: 7, Steps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placement.Centers {
		if a.Placement.Centers[i] != b.Placement.Centers[i] || a.Placement.Rotated[i] != b.Placement.Rotated[i] {
			t.Fatalf("same seed produced different placements at chiplet %d", i)
		}
	}
}

func TestPlaceCompactConnectedChipletsNearby(t *testing.T) {
	// The heavily connected pair (A, B; 512 wires) should end up closer
	// than the unconnected pair (C, D) in most seeds.
	sys := fourChipletSystem()
	res, err := PlaceCompact(sys, Options{Seed: 2, Steps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	dAB := res.Placement.Centers[0].Manhattan(res.Placement.Centers[1])
	dCD := res.Placement.Centers[2].Manhattan(res.Placement.Centers[3])
	if dAB > dCD+1 {
		t.Errorf("connected pair distance %.1f exceeds unconnected %.1f", dAB, dCD)
	}
}

func TestPlaceCompactRejectsOversizedSystem(t *testing.T) {
	sys := &chiplet.System{
		Name:        "toobig",
		InterposerW: 20,
		InterposerH: 20,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 19, H: 10, Power: 1},
			{Name: "B", W: 19, H: 11, Power: 1},
		},
	}
	// Validate passes on raw area (19*10+19*11 = 399 < 400) but no legal
	// compact packing fits with gaps; PlaceCompact must error, not return
	// an invalid placement.
	if _, err := PlaceCompact(sys, Options{Seed: 1, Steps: 500}); err == nil {
		t.Error("impossible packing did not error")
	}
}

func TestPlaceCompactSingleChiplet(t *testing.T) {
	sys := &chiplet.System{
		Name:        "solo",
		InterposerW: 20,
		InterposerH: 20,
		Chiplets:    []chiplet.Chiplet{{Name: "A", W: 8, H: 6, Power: 10}},
	}
	res, err := PlaceCompact(sys, Options{Seed: 1, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(res.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceCompactEightChiplets(t *testing.T) {
	sys := &chiplet.System{
		Name:        "oct",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "C0", W: 13, H: 13, Power: 140},
			{Name: "C1", W: 13, H: 13, Power: 140},
			{Name: "C2", W: 13, H: 13, Power: 140},
			{Name: "C3", W: 13, H: 13, Power: 140},
			{Name: "D0", W: 9, H: 9, Power: 10},
			{Name: "D1", W: 9, H: 9, Power: 10},
			{Name: "D2", W: 9, H: 9, Power: 10},
			{Name: "D3", W: 9, H: 9, Power: 10},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 1, Wires: 768}, {Src: 1, Dst: 2, Wires: 768},
			{Src: 2, Dst: 3, Wires: 768}, {Src: 3, Dst: 0, Wires: 768},
			{Src: 0, Dst: 4, Wires: 512}, {Src: 1, Dst: 5, Wires: 512},
			{Src: 2, Dst: 6, Wires: 512}, {Src: 3, Dst: 7, Wires: 512},
		},
	}
	res, err := PlaceCompact(sys, Options{Seed: 3, Steps: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(res.Placement); err != nil {
		t.Fatal(err)
	}
	// The packing must be reasonably tight: bbox within the interposer and
	// area within 1.8x of the chiplet area.
	var tot float64
	for _, c := range sys.Chiplets {
		tot += c.Area()
	}
	if res.BBoxMM.Area() > 1.8*tot {
		t.Errorf("8-chiplet packing too loose: %.0f vs %.0f", res.BBoxMM.Area(), tot)
	}
}

func BenchmarkPlaceCompact8(b *testing.B) {
	sys := fourChipletSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlaceCompact(sys, Options{Seed: int64(i), Steps: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}
