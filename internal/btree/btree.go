// Package btree implements the Compact-2.5D baseline placer of the paper: a
// B*-tree floorplan representation packed with a contour structure and
// searched with a fast-SA-style annealing schedule, after Chen et al.
// ("Modern floorplanning based on B*-tree and fast simulated annealing",
// IEEE TCAD 2006). It produces the compact, wirelength-minimized placements
// that TAP-2.5D both compares against and uses as its initial placement
// (Section III-C2).
//
// Blocks are the chiplets inflated by the minimum gap w_gap, so adjacency in
// the packing automatically respects Eqn. (10); the packed floorplan is then
// centered on the interposer.
package btree

import (
	"fmt"
	"math"
	"math/rand"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

// Options configures the compact placer.
type Options struct {
	// Seed drives the annealer; the same seed reproduces the same placement.
	Seed int64
	// Steps is the number of SA perturbations (default 20000; the paper's
	// fast-SA converges in a comparable budget on 8-chiplet systems).
	Steps int
	// WirelengthWeight and AreaWeight blend the two objectives after
	// normalization (defaults 0.7 / 0.3: Compact-2.5D primarily minimizes
	// wirelength with area as tie-breaker, matching Section III-C2).
	WirelengthWeight float64
	AreaWeight       float64
}

// Result reports the compact placement and its metrics.
type Result struct {
	Placement chiplet.Placement
	// BBoxMM is the bounding box of the packed chiplets (with gap margins).
	BBoxMM geom.Rect
	// WirelengthMM is the wire-count-weighted Manhattan center-to-center
	// wirelength used as the SA objective (not the routed wirelength).
	WirelengthMM float64
}

// node is a structural B*-tree node. The block it carries is given by the
// tree's blk mapping, which keeps block swaps trivial and link rewiring
// local to detach/attach of leaves.
type node struct {
	parent, left, right int
}

// tree is a B*-tree over n blocks.
type tree struct {
	nodes []node
	blk   []int // node -> block
	pos   []int // block -> node (inverse of blk)
	root  int
	rot   []bool    // per block
	w, h  []float64 // per block, inflated, unrotated
}

func newTree(n int, w, h []float64) *tree {
	t := &tree{
		nodes: make([]node, n),
		blk:   make([]int, n),
		pos:   make([]int, n),
		root:  0,
		rot:   make([]bool, n),
		w:     w,
		h:     h,
	}
	for i := range t.nodes {
		t.nodes[i] = node{parent: (i - 1) / 2, left: -1, right: -1}
		if i == 0 {
			t.nodes[i].parent = -1
		}
		if l := 2*i + 1; l < n {
			t.nodes[i].left = l
		}
		if r := 2*i + 2; r < n {
			t.nodes[i].right = r
		}
		t.blk[i] = i
		t.pos[i] = i
	}
	return t
}

func (t *tree) clone() *tree {
	return &tree{
		nodes: append([]node{}, t.nodes...),
		blk:   append([]int{}, t.blk...),
		pos:   append([]int{}, t.pos...),
		root:  t.root,
		rot:   append([]bool{}, t.rot...),
		w:     t.w,
		h:     t.h,
	}
}

// blockDims returns the (possibly rotated) dimensions of block b.
func (t *tree) blockDims(b int) (float64, float64) {
	if t.rot[b] {
		return t.h[b], t.w[b]
	}
	return t.w[b], t.h[b]
}

// swapBlocks exchanges the blocks carried by two nodes.
func (t *tree) swapBlocks(na, nb int) {
	ba, bb := t.blk[na], t.blk[nb]
	t.blk[na], t.blk[nb] = bb, ba
	t.pos[ba], t.pos[bb] = nb, na
}

// moveBlock relocates block b: it bubbles b down to a leaf node by swapping
// blocks along a random child path, splices that leaf out, and reattaches it
// at a random free child slot.
func (t *tree) moveBlock(b int, rng *rand.Rand) {
	nd := t.pos[b]
	for t.nodes[nd].left >= 0 || t.nodes[nd].right >= 0 {
		var ch int
		switch {
		case t.nodes[nd].left < 0:
			ch = t.nodes[nd].right
		case t.nodes[nd].right < 0:
			ch = t.nodes[nd].left
		case rng.Intn(2) == 0:
			ch = t.nodes[nd].left
		default:
			ch = t.nodes[nd].right
		}
		t.swapBlocks(nd, ch)
		nd = ch
	}
	// nd is a leaf carrying b; splice it out.
	p := t.nodes[nd].parent
	if p < 0 {
		// Single-node tree: nothing to move.
		return
	}
	if t.nodes[p].left == nd {
		t.nodes[p].left = -1
	} else {
		t.nodes[p].right = -1
	}
	t.nodes[nd].parent = -1

	// Reattach at a random free slot (excluding the detached node itself).
	type slot struct {
		parent int
		left   bool
	}
	var slots []slot
	for j := range t.nodes {
		if j == nd {
			continue
		}
		if t.nodes[j].left < 0 {
			slots = append(slots, slot{j, true})
		}
		if t.nodes[j].right < 0 {
			slots = append(slots, slot{j, false})
		}
	}
	s := slots[rng.Intn(len(slots))]
	t.nodes[nd].parent = s.parent
	if s.left {
		t.nodes[s.parent].left = nd
	} else {
		t.nodes[s.parent].right = nd
	}
}

// validate checks tree invariants (used by tests).
func (t *tree) validate() error {
	n := len(t.nodes)
	seen := make([]bool, n)
	count := 0
	var walk func(i, parent int) error
	walk = func(i, parent int) error {
		if i < 0 {
			return nil
		}
		if seen[i] {
			return fmt.Errorf("btree: node %d reached twice", i)
		}
		seen[i] = true
		count++
		if t.nodes[i].parent != parent {
			return fmt.Errorf("btree: node %d parent = %d, want %d", i, t.nodes[i].parent, parent)
		}
		if err := walk(t.nodes[i].left, i); err != nil {
			return err
		}
		return walk(t.nodes[i].right, i)
	}
	if err := walk(t.root, -1); err != nil {
		return err
	}
	if count != n {
		return fmt.Errorf("btree: tree reaches %d of %d nodes", count, n)
	}
	for b := range t.pos {
		if t.blk[t.pos[b]] != b {
			return fmt.Errorf("btree: blk/pos mapping inconsistent for block %d", b)
		}
	}
	return nil
}

// contour is the packing skyline: a list of segments (x0 <= x < x1, height y)
// covering [0, +inf) left to right.
type contour struct {
	x0, x1, y []float64
}

func newContour() *contour {
	return &contour{x0: []float64{0}, x1: []float64{math.Inf(1)}, y: []float64{0}}
}

// place drops a block of width w at x, returning its resting y, and raises
// the skyline over [x, x+w).
func (c *contour) place(x, w, h float64) float64 {
	x1 := x + w
	top := 0.0
	for i := range c.x0 {
		if c.x1[i] <= x || c.x0[i] >= x1 {
			continue
		}
		if c.y[i] > top {
			top = c.y[i]
		}
	}
	newY := top + h
	var nx0, nx1, ny []float64
	pushed := false
	push := func(a, b, yy float64) {
		if b <= a {
			return
		}
		if n := len(ny); n > 0 && ny[n-1] == yy && nx1[n-1] == a {
			nx1[n-1] = b
			return
		}
		nx0 = append(nx0, a)
		nx1 = append(nx1, b)
		ny = append(ny, yy)
	}
	for i := range c.x0 {
		a, b, yy := c.x0[i], c.x1[i], c.y[i]
		if b <= x || a >= x1 {
			push(a, b, yy)
			continue
		}
		if a < x {
			push(a, x, yy)
		}
		if !pushed {
			push(x, x1, newY)
			pushed = true
		}
		if b > x1 {
			push(x1, b, yy)
		}
	}
	c.x0, c.x1, c.y = nx0, nx1, ny
	return top
}

// pack computes per-block lower-left corners of the inflated blocks.
func (t *tree) pack() (xs, ys []float64) {
	n := len(t.nodes)
	xs = make([]float64, n) // per block
	ys = make([]float64, n)
	nodeX := make([]float64, n) // per node
	c := newContour()
	stack := []int{t.root}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd < 0 {
			continue
		}
		b := t.blk[nd]
		w, h := t.blockDims(b)
		var x float64
		if p := t.nodes[nd].parent; p >= 0 {
			pw, _ := t.blockDims(t.blk[p])
			if t.nodes[p].left == nd {
				x = nodeX[p] + pw // left child: right-adjacent
			} else {
				x = nodeX[p] // right child: stacked above
			}
		}
		nodeX[nd] = x
		xs[b] = x
		ys[b] = c.place(x, w, h)
		// Push right then left so the left subtree packs first.
		stack = append(stack, t.nodes[nd].right, t.nodes[nd].left)
	}
	return xs, ys
}

func perturb(t *tree, rng *rand.Rand) {
	n := len(t.nodes)
	if n == 1 {
		t.rot[0] = !t.rot[0]
		return
	}
	switch rng.Intn(3) {
	case 0: // rotate a random block
		b := rng.Intn(n)
		t.rot[b] = !t.rot[b]
	case 1: // swap two nodes' blocks
		a, b := rng.Intn(n), rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		t.swapBlocks(a, b)
	default: // move a random block elsewhere in the tree
		t.moveBlock(rng.Intn(n), rng)
	}
}

// PlaceCompact runs the Compact-2.5D baseline on sys. The result is
// deterministic for a given Options.Seed.
func PlaceCompact(sys *chiplet.System, opt Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := len(sys.Chiplets)
	steps := opt.Steps
	if steps == 0 {
		steps = 20000
	}
	wlW := opt.WirelengthWeight
	areaW := opt.AreaWeight
	if wlW == 0 && areaW == 0 {
		wlW, areaW = 0.7, 0.3
	}
	gap := sys.Gap()
	w := make([]float64, n)
	h := make([]float64, n)
	for i, c := range sys.Chiplets {
		w[i] = c.W + gap
		h[i] = c.H + gap
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	t := newTree(n, w, h)

	// Normalization scales from the initial tree.
	xs0, ys0 := t.pack()
	wlScale := math.Max(1, rawWirelength(sys, t, xs0, ys0))
	areaScale := math.Max(1, bboxArea(t, xs0, ys0))

	eval := func(tr *tree) float64 {
		xs, ys := tr.pack()
		bw, bh := bboxDims(tr, xs, ys)
		cost := wlW*rawWirelength(sys, tr, xs, ys)/wlScale + areaW*bw*bh/areaScale
		// Fixed-outline (interposer) penalty.
		if over := bw - sys.InterposerW; over > 0 {
			cost += over * 100
		}
		if over := bh - sys.InterposerH; over > 0 {
			cost += over * 100
		}
		return cost
	}

	cur := t
	curCost := eval(cur)
	best := cur.clone()
	bestCost := curCost

	temp := estimateInitialTemp(cur, rng, eval)
	decay := math.Pow(1e-4, 1/float64(steps)) // reach 1e-4 * T0 by the end

	for it := 0; it < steps; it++ {
		nb := cur.clone()
		perturb(nb, rng)
		nbCost := eval(nb)
		d := nbCost - curCost
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			cur, curCost = nb, nbCost
			if curCost < bestCost {
				best, bestCost = cur.clone(), curCost
			}
		}
		temp *= decay
	}

	xs, ys := best.pack()
	bw, bh := bboxDims(best, xs, ys)
	if bw > sys.InterposerW+1e-9 || bh > sys.InterposerH+1e-9 {
		return nil, fmt.Errorf("btree: compact packing %.1fx%.1f mm exceeds the %gx%g mm interposer",
			bw, bh, sys.InterposerW, sys.InterposerH)
	}
	// Center the packing on the interposer and convert to die centers.
	dx := (sys.InterposerW - bw) / 2
	dy := (sys.InterposerH - bh) / 2
	p := chiplet.NewPlacement(n)
	for b := 0; b < n; b++ {
		dwb, dhb := best.blockDims(b)
		p.Centers[b] = geom.Point{X: xs[b] + dwb/2 + dx, Y: ys[b] + dhb/2 + dy}
		p.Rotated[b] = best.rot[b]
	}
	if err := sys.CheckPlacement(p); err != nil {
		return nil, fmt.Errorf("btree: packed placement invalid: %w", err)
	}
	return &Result{
		Placement:    p,
		BBoxMM:       geom.RectFromBounds(dx, dy, dx+bw, dy+bh),
		WirelengthMM: rawWirelength(sys, best, xs, ys),
	}, nil
}

// rawWirelength is the wire-count-weighted Manhattan center distance over
// all channels.
func rawWirelength(sys *chiplet.System, t *tree, xs, ys []float64) float64 {
	var wl float64
	for _, ch := range sys.Channels {
		wi, hi := t.blockDims(ch.Src)
		wj, hj := t.blockDims(ch.Dst)
		ci := geom.Point{X: xs[ch.Src] + wi/2, Y: ys[ch.Src] + hi/2}
		cj := geom.Point{X: xs[ch.Dst] + wj/2, Y: ys[ch.Dst] + hj/2}
		wl += float64(ch.Wires) * ci.Manhattan(cj)
	}
	return wl
}

func bboxDims(t *tree, xs, ys []float64) (float64, float64) {
	var bw, bh float64
	for b := range xs {
		dwb, dhb := t.blockDims(b)
		bw = math.Max(bw, xs[b]+dwb)
		bh = math.Max(bh, ys[b]+dhb)
	}
	return bw, bh
}

func bboxArea(t *tree, xs, ys []float64) float64 {
	bw, bh := bboxDims(t, xs, ys)
	return bw * bh
}

func estimateInitialTemp(t *tree, rng *rand.Rand, eval func(*tree) float64) float64 {
	base := eval(t)
	var sum float64
	count := 0
	for i := 0; i < 30; i++ {
		nb := t.clone()
		perturb(nb, rng)
		if d := math.Abs(eval(nb) - base); d > 0 {
			sum += d
			count++
		}
	}
	if count == 0 {
		return 1
	}
	// Accept average uphill moves with ~0.9 probability initially, as in
	// fast-SA's high-temperature phase.
	return (sum / float64(count)) / math.Log(1/0.9)
}
