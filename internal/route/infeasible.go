package route

import (
	"errors"
	"fmt"
	"strings"

	"tap25d/internal/chiplet"
)

// ErrInfeasible is the sentinel behind every routing failure caused by pin
// capacity rather than by a malformed input: the demanded inter-chiplet wires
// cannot fit within the per-clump pin budgets (Eqn. 7), so no placement-level
// retry of the same routing call can succeed. Match it with errors.Is to tell
// "this placement cannot be wired" apart from I/O or validation errors; the
// concrete *InfeasibleError (errors.As) carries the limiting clump
// capacities.
var ErrInfeasible = errors.New("insufficient pin-clump capacity (Eqn. 7)")

// ClumpLoad names one pin clump whose capacity bounds an infeasible routing.
type ClumpLoad struct {
	// Chiplet indexes sys.Chiplets; Name is its human-readable name.
	Chiplet int    `json:"chiplet"`
	Name    string `json:"name"`
	// Capacity is the clump's pin budget P_il^max that the demand exceeded.
	Capacity int `json:"capacity"`
}

// InfeasibleError reports a routing instance whose wire demand exceeds the
// pin-clump capacities. It unwraps to ErrInfeasible.
type InfeasibleError struct {
	// Method is the router that proved (MILP) or detected (fast greedy)
	// the infeasibility.
	Method Method
	// Net is the first net left with unrouted wires, or -1 when the
	// failure is not attributable to a single net (the MILP proves the
	// whole system over-subscribed at once).
	Net int
	// Unrouted is the number of wires of Net that found no capacity
	// (0 when Net is -1).
	Unrouted int
	// Clumps lists the limiting clump capacities: the failing net's two
	// endpoints for the fast router, every chiplet for the MILP.
	Clumps []ClumpLoad
}

func (e *InfeasibleError) Error() string {
	var b strings.Builder
	b.WriteString("route: ")
	if e.Net >= 0 {
		fmt.Fprintf(&b, "net %d", e.Net)
		if len(e.Clumps) >= 2 {
			fmt.Fprintf(&b, " (%s -> %s)", e.Clumps[0].Name, e.Clumps[1].Name)
		}
		fmt.Fprintf(&b, " has %d unrouted wires: ", e.Unrouted)
	} else {
		b.WriteString("milp infeasible: ")
	}
	b.WriteString(ErrInfeasible.Error())
	if len(e.Clumps) > 0 {
		parts := make([]string, len(e.Clumps))
		for i, c := range e.Clumps {
			parts[i] = fmt.Sprintf("%s=%d", c.Name, c.Capacity)
		}
		fmt.Fprintf(&b, " [per-clump pin budgets: %s]", strings.Join(parts, " "))
	}
	return b.String()
}

// Unwrap makes the error errors.Is-matchable against ErrInfeasible.
func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// infeasibleFast builds the typed error for the greedy router's failure on
// one net: the endpoints' capacities are the binding constraint.
func infeasibleFast(sys *chiplet.System, net, src, dst, unrouted int, caps []int) error {
	return &InfeasibleError{
		Method: MethodFast, Net: net, Unrouted: unrouted,
		Clumps: []ClumpLoad{
			{Chiplet: src, Name: sys.Chiplets[src].Name, Capacity: caps[src]},
			{Chiplet: dst, Name: sys.Chiplets[dst].Name, Capacity: caps[dst]},
		},
	}
}

// infeasibleMILP builds the typed error for an exact infeasibility proof,
// listing every chiplet's clump capacity (the MILP does not attribute the
// conflict to a single net).
func infeasibleMILP(sys *chiplet.System, caps []int) error {
	e := &InfeasibleError{Method: MethodMILP, Net: -1}
	for i, ch := range sys.Chiplets {
		e.Clumps = append(e.Clumps, ClumpLoad{Chiplet: i, Name: ch.Name, Capacity: caps[i]})
	}
	return e
}
