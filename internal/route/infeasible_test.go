package route

import (
	"errors"
	"strings"
	"testing"
)

// TestFastInfeasibleTyped: the greedy router's capacity failure must be
// errors.Is-matchable and carry the binding clump capacities.
func TestFastInfeasibleTyped(t *testing.T) {
	sys, p := lineSystem() // 100-wire channel
	_, err := Route(sys, p, Options{PinCapacity: []int{10, 10}})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *InfeasibleError", err)
	}
	if ie.Method != MethodFast || ie.Net != 0 {
		t.Errorf("attribution = method %v net %d, want fast net 0", ie.Method, ie.Net)
	}
	if ie.Unrouted <= 0 {
		t.Errorf("Unrouted = %d, want > 0", ie.Unrouted)
	}
	if len(ie.Clumps) != 2 || ie.Clumps[0].Name != "A" || ie.Clumps[1].Name != "B" {
		t.Fatalf("Clumps = %+v, want the A and B endpoints", ie.Clumps)
	}
	for _, c := range ie.Clumps {
		if c.Capacity != 10 {
			t.Errorf("clump %s capacity %d, want the configured 10", c.Name, c.Capacity)
		}
	}
	if !strings.Contains(err.Error(), "Eqn. 7") || !strings.Contains(err.Error(), "A=10") {
		t.Errorf("message %q lost the paper reference or the capacities", err.Error())
	}
}

// TestMILPInfeasibleTyped: the exact router's infeasibility proof uses the
// same sentinel, attributed to no single net.
func TestMILPInfeasibleTyped(t *testing.T) {
	sys, p := lineSystem()
	_, err := Route(sys, p, Options{Method: MethodMILP, PinCapacity: []int{10, 10}})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *InfeasibleError", err)
	}
	if ie.Method != MethodMILP || ie.Net != -1 {
		t.Errorf("attribution = method %v net %d, want milp net -1", ie.Method, ie.Net)
	}
	if len(ie.Clumps) != len(sys.Chiplets) {
		t.Errorf("Clumps = %+v, want one entry per chiplet", ie.Clumps)
	}
}

// TestFeasibleRouteNotInfeasible guards against over-matching: a successful
// route and a validation error both stay clear of the sentinel.
func TestFeasibleRouteNotInfeasible(t *testing.T) {
	sys, p := lineSystem()
	if _, err := Route(sys, p, Options{}); err != nil {
		t.Fatalf("feasible instance failed: %v", err)
	}
	_, err := Route(sys, p, Options{PinCapacity: []int{10}}) // bad length
	if err == nil || errors.Is(err, ErrInfeasible) {
		t.Errorf("validation error %v must not match ErrInfeasible", err)
	}
}
