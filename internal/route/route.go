// Package route implements the inter-chiplet network routing optimization of
// TAP-2.5D (Section III-B of the paper). Given a chiplet placement and the
// logical channels (nets) with their wire-count requirements, it finds a
// delivery of wires between pin clumps minimizing total Manhattan wirelength,
// subject to per-clump microbump capacity (Eqn. 7), flow conservation
// (Eqns. 4-6), and bandwidth limits (Eqn. 8, or Eqn. 9 for 2-stage
// gas-station links that may pass through one intermediate chiplet).
//
// Two methods are provided:
//
//   - MethodMILP formulates Eqns. (1)-(9) exactly as a mixed-integer linear
//     program and solves it with the internal simplex + branch-and-bound
//     solver (the repo's substitute for the paper's CPLEX v12.8). Variables
//     that Eqns. (5), (6) and (8) force to zero — flows on arcs not touching
//     the net's source and sink — are omitted from the formulation, which is
//     an exact reduction, not an approximation.
//
//   - MethodFast routes nets sequentially (largest first) with successive
//     cheapest-path augmentation over the shared clump capacities. It is the
//     default inside the simulated-annealing loop, where the paper spends
//     5 s per CPLEX call and we need microseconds.
package route

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
	"tap25d/internal/lp"
	"tap25d/internal/obs"
)

// ClumpsPerChiplet is |P| per chiplet: the paper groups the microbumps along
// the chiplet periphery into 4 pin clumps, one per edge.
const ClumpsPerChiplet = 4

// Edge indices for the four pin clumps.
const (
	EdgeEast = iota
	EdgeNorth
	EdgeWest
	EdgeSouth
)

// ClumpPoint returns the position of pin clump l of chiplet c under placement
// p: the midpoint of the corresponding edge of the (possibly rotated) die.
func ClumpPoint(sys *chiplet.System, p chiplet.Placement, c, l int) geom.Point {
	r := p.Rect(sys, c)
	switch l {
	case EdgeEast:
		return geom.Point{X: r.MaxX(), Y: r.Center.Y}
	case EdgeNorth:
		return geom.Point{X: r.Center.X, Y: r.MaxY()}
	case EdgeWest:
		return geom.Point{X: r.MinX(), Y: r.Center.Y}
	case EdgeSouth:
		return geom.Point{X: r.Center.X, Y: r.MinY()}
	}
	panic(fmt.Sprintf("route: clump index %d out of range", l))
}

// Method selects the routing algorithm.
type Method int

// Routing methods.
const (
	// MethodFast is the sequential cheapest-augmentation router.
	MethodFast Method = iota
	// MethodMILP is the exact Eqn. (1)-(9) formulation.
	MethodMILP
)

func (m Method) String() string {
	switch m {
	case MethodFast:
		return "fast"
	case MethodMILP:
		return "milp"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures routing.
type Options struct {
	// GasStation enables 2-stage pipelined links through one intermediate
	// chiplet (Eqn. 9). Off means repeaterless non-pipelined links (Eqn. 8).
	GasStation bool
	// Method selects the algorithm (default MethodFast).
	Method Method
	// PinCapacity gives P_il^max per chiplet (same for each of its 4
	// clumps). nil means DerivedPinCapacity(sys).
	PinCapacity []int
	// MILP bounds the branch-and-bound search when Method == MethodMILP.
	MILP lp.MILPOptions
	// Obs, when non-nil, records each routing call as a route_solve span
	// labeled with the method name. Timing-only: results are unaffected.
	Obs *obs.Observer
}

// Flow is a number of wires of one net routed over a single clump-to-clump
// arc. A gas-station wire appears as two flows: source→intermediate and
// intermediate→sink; flow conservation at the intermediate ties them.
type Flow struct {
	Net         int // index into System.Channels
	FromChiplet int
	FromClump   int
	ToChiplet   int
	ToClump     int
	Wires       int
	// LengthPerWire is the Manhattan arc length d_iljk in mm (Eqn. 2).
	LengthPerWire float64
}

// Result is a routing solution.
type Result struct {
	// TotalWirelengthMM is the paper's reported metric: the sum of all
	// inter-chiplet link lengths (Eqn. 1 objective value).
	TotalWirelengthMM float64
	Flows             []Flow
	Method            Method
	GasStation        bool
}

// DerivedPinCapacity estimates P_il^max per chiplet when the system does not
// specify one: half the chiplet's total incident wire requirement per clump
// (so a channel generally spreads over at most two facing clumps), matching
// how the paper sizes "estimated microbump resources".
func DerivedPinCapacity(sys *chiplet.System) []int {
	caps := make([]int, len(sys.Chiplets))
	for _, ch := range sys.Channels {
		caps[ch.Src] += ch.Wires
		caps[ch.Dst] += ch.Wires
	}
	for i, tot := range caps {
		caps[i] = (tot + 1) / 2
	}
	if sys.PinsPerClumpLimit > 0 {
		for i := range caps {
			caps[i] = sys.PinsPerClumpLimit
		}
	}
	return caps
}

// Route computes a routing solution for placement p.
func Route(sys *chiplet.System, p chiplet.Placement, opt Options) (*Result, error) {
	return RouteContext(context.Background(), sys, p, opt)
}

// RouteContext is Route with an observability context: when opt.Obs is set,
// the call is recorded as a route_solve span nested under the span attached
// to ctx (an SA step, typically). Routing itself never blocks on ctx.
func RouteContext(ctx context.Context, sys *chiplet.System, p chiplet.Placement, opt Options) (*Result, error) {
	sp := opt.Obs.StartSpanCtx(ctx, obs.PhaseRouteSolve, opt.Method.String())
	res, err := routeDispatch(sys, p, opt)
	sp.End()
	return res, err
}

func routeDispatch(sys *chiplet.System, p chiplet.Placement, opt Options) (*Result, error) {
	if err := sys.CheckPlacement(p); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	caps := opt.PinCapacity
	if caps == nil {
		caps = DerivedPinCapacity(sys)
	}
	if len(caps) != len(sys.Chiplets) {
		return nil, fmt.Errorf("route: PinCapacity has %d entries for %d chiplets", len(caps), len(sys.Chiplets))
	}
	// Clump positions and distance lookup.
	pts := clumpPoints(sys, p)
	switch opt.Method {
	case MethodFast:
		return routeFast(sys, pts, caps, opt)
	case MethodMILP:
		return routeMILP(sys, pts, caps, opt)
	}
	return nil, fmt.Errorf("route: unknown method %v", opt.Method)
}

func clumpPoints(sys *chiplet.System, p chiplet.Placement) [][ClumpsPerChiplet]geom.Point {
	pts := make([][ClumpsPerChiplet]geom.Point, len(sys.Chiplets))
	for c := range sys.Chiplets {
		for l := 0; l < ClumpsPerChiplet; l++ {
			pts[c][l] = ClumpPoint(sys, p, c, l)
		}
	}
	return pts
}

func dist(pts [][ClumpsPerChiplet]geom.Point, i, l, j, k int) float64 {
	return pts[i][l].Manhattan(pts[j][k])
}

// clumpID flattens (chiplet, clump).
func clumpID(c, l int) int { return c*ClumpsPerChiplet + l }

// --- Fast router -----------------------------------------------------------

// pathCand is a candidate route for one wire of a net: either a direct arc or
// a 2-hop gas-station route via an intermediate chiplet.
type pathCand struct {
	cost float64
	// direct: l -> k on (s, t)
	l, k int
	// via >= 0 means 2-hop through chiplet via: s.l -> via.kin, via.lout -> t.k
	via, kin, lout int
}

func routeFast(sys *chiplet.System, pts [][ClumpsPerChiplet]geom.Point, caps []int, opt Options) (*Result, error) {
	rem := make([]int, len(sys.Chiplets)*ClumpsPerChiplet)
	for c, cap := range caps {
		for l := 0; l < ClumpsPerChiplet; l++ {
			rem[clumpID(c, l)] = cap
		}
	}
	// Gas-station budget per chiplet: pins beyond the chiplet's own incident
	// demand. Reserving the incident demand guarantees the greedy order can
	// always finish every net directly (a via-exhausted chiplet could
	// otherwise strand its own channels behind Eqn. 7).
	viaBudget := make([]int, len(sys.Chiplets))
	if opt.GasStation {
		incident := make([]int, len(sys.Chiplets))
		for _, ch := range sys.Channels {
			incident[ch.Src] += ch.Wires
			incident[ch.Dst] += ch.Wires
		}
		for c, cap := range caps {
			viaBudget[c] = ClumpsPerChiplet*cap - incident[c]
			if viaBudget[c] < 0 {
				viaBudget[c] = 0
			}
		}
	}

	order := make([]int, len(sys.Channels))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sys.Channels[order[a]].Wires > sys.Channels[order[b]].Wires
	})

	res := &Result{Method: MethodFast, GasStation: opt.GasStation}
	// Aggregate flows per (net, arc) so repeated augmentations merge.
	type arcKey struct{ net, fc, fl, tc, tl int }
	agg := map[arcKey]int{}

	// The candidate buffer is reused across nets: with gas stations enabled it
	// holds O(chiplets · ClumpsPerChiplet⁴) entries, and the annealer calls
	// routeFast once per accepted-or-rejected move, so regrowing it from nil
	// for every net dominated the router's allocation profile. ord carries the
	// cost order as compact (cost, index) pairs so the sort swaps 16 bytes per
	// element instead of the whole 48-byte pathCand.
	var cands []pathCand
	type candOrd struct {
		cost float64
		idx  int32
	}
	var ord []candOrd
	for _, n := range order {
		ch := sys.Channels[n]
		s, t := ch.Src, ch.Dst
		demand := ch.Wires

		// Enumerate candidate paths once; availability is rechecked each
		// augmentation.
		cands = cands[:0]
		for l := 0; l < ClumpsPerChiplet; l++ {
			for k := 0; k < ClumpsPerChiplet; k++ {
				cands = append(cands, pathCand{cost: dist(pts, s, l, t, k), l: l, k: k, via: -1})
			}
		}
		if opt.GasStation {
			for via := range sys.Chiplets {
				if via == s || via == t {
					continue
				}
				// The exit-leg length depends only on (via, lout, t, k), so
				// hoist it out of the (l, kin) loops: 16 dist calls per via
				// instead of 256, with identical costs in identical order.
				var exitLeg [ClumpsPerChiplet * ClumpsPerChiplet]float64
				for lout := 0; lout < ClumpsPerChiplet; lout++ {
					for k := 0; k < ClumpsPerChiplet; k++ {
						exitLeg[lout*ClumpsPerChiplet+k] = dist(pts, via, lout, t, k)
					}
				}
				for l := 0; l < ClumpsPerChiplet; l++ {
					for kin := 0; kin < ClumpsPerChiplet; kin++ {
						d1 := dist(pts, s, l, via, kin)
						for lout := 0; lout < ClumpsPerChiplet; lout++ {
							for k := 0; k < ClumpsPerChiplet; k++ {
								cands = append(cands, pathCand{
									cost: d1 + exitLeg[lout*ClumpsPerChiplet+k],
									l:    l, k: k, via: via, kin: kin, lout: lout,
								})
							}
						}
					}
				}
			}
		}
		// Sorting (cost, index) pairs with slices.SortFunc yields the exact
		// candidate order sort.Slice on the structs did: pdqsort's permutation
		// is a function of the element count and comparator outcomes alone,
		// and both see the identical cost sequence (equal-cost ties included).
		ord = ord[:0]
		for i := range cands {
			ord = append(ord, candOrd{cost: cands[i].cost, idx: int32(i)})
		}
		slices.SortFunc(ord, func(a, b candOrd) int {
			switch {
			case a.cost < b.cost:
				return -1
			case b.cost < a.cost:
				return 1
			}
			return 0
		})

		for demand > 0 {
			routed := false
			for _, o := range ord {
				c := cands[o.idx]
				bw := availability(rem, s, t, c)
				if c.via >= 0 {
					if vb := viaBudget[c.via] / 2; vb < bw {
						bw = vb
					}
				}
				if bw <= 0 {
					continue
				}
				amt := demand
				if bw < amt {
					amt = bw
				}
				consume(rem, s, t, c, amt)
				if c.via >= 0 {
					viaBudget[c.via] -= 2 * amt
				}
				if c.via < 0 {
					agg[arcKey{n, s, c.l, t, c.k}] += amt
				} else {
					agg[arcKey{n, s, c.l, c.via, c.kin}] += amt
					agg[arcKey{n, c.via, c.lout, t, c.k}] += amt
				}
				demand -= amt
				routed = true
				break
			}
			if !routed {
				return nil, infeasibleFast(sys, n, s, t, demand, caps)
			}
		}
	}

	// Emit flows deterministically.
	keys := make([]struct {
		arcKey
	}, 0, len(agg))
	for k := range agg {
		keys = append(keys, struct{ arcKey }{k})
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a].arcKey, keys[b].arcKey
		if ka.net != kb.net {
			return ka.net < kb.net
		}
		if ka.fc != kb.fc {
			return ka.fc < kb.fc
		}
		if ka.fl != kb.fl {
			return ka.fl < kb.fl
		}
		if ka.tc != kb.tc {
			return ka.tc < kb.tc
		}
		return ka.tl < kb.tl
	})
	for _, kk := range keys {
		k := kk.arcKey
		d := dist(pts, k.fc, k.fl, k.tc, k.tl)
		w := agg[k]
		res.Flows = append(res.Flows, Flow{
			Net: k.net, FromChiplet: k.fc, FromClump: k.fl,
			ToChiplet: k.tc, ToClump: k.tl, Wires: w, LengthPerWire: d,
		})
		res.TotalWirelengthMM += float64(w) * d
	}
	return res, nil
}

// availability returns how many wires can use candidate c given remaining
// clump capacities.
func availability(rem []int, s, t int, c pathCand) int {
	bw := rem[clumpID(s, c.l)]
	if r := rem[clumpID(t, c.k)]; r < bw {
		bw = r
	}
	if c.via >= 0 {
		if c.kin == c.lout {
			// One wire consumes two pins of the same clump.
			if r := rem[clumpID(c.via, c.kin)] / 2; r < bw {
				bw = r
			}
		} else {
			if r := rem[clumpID(c.via, c.kin)]; r < bw {
				bw = r
			}
			if r := rem[clumpID(c.via, c.lout)]; r < bw {
				bw = r
			}
		}
	}
	return bw
}

func consume(rem []int, s, t int, c pathCand, amt int) {
	rem[clumpID(s, c.l)] -= amt
	rem[clumpID(t, c.k)] -= amt
	if c.via >= 0 {
		rem[clumpID(c.via, c.kin)] -= amt
		rem[clumpID(c.via, c.lout)] -= amt
	}
}

// --- MILP router ------------------------------------------------------------

// arc is a directed clump-to-clump edge available to a given net.
type arc struct {
	fc, fl, tc, tl int
	d              float64
}

func routeMILP(sys *chiplet.System, pts [][ClumpsPerChiplet]geom.Point, caps []int, opt Options) (*Result, error) {
	nets := sys.Channels
	// Build the variable space: arcs per net.
	var arcs []arc                      // global arc list
	netArcs := make([][]int, len(nets)) // variable indices per net
	type varInfo struct{ net, arcIdx int }
	var vars []varInfo

	addArc := func(n, fc, fl, tc, tl int) {
		a := arc{fc: fc, fl: fl, tc: tc, tl: tl, d: dist(pts, fc, fl, tc, tl)}
		arcs = append(arcs, a)
		vars = append(vars, varInfo{net: n, arcIdx: len(arcs) - 1})
		netArcs[n] = append(netArcs[n], len(vars)-1)
	}

	for n, ch := range nets {
		s, t := ch.Src, ch.Dst
		for l := 0; l < ClumpsPerChiplet; l++ {
			for k := 0; k < ClumpsPerChiplet; k++ {
				addArc(n, s, l, t, k)
			}
		}
		if opt.GasStation {
			for via := range sys.Chiplets {
				if via == s || via == t {
					continue
				}
				for l := 0; l < ClumpsPerChiplet; l++ {
					for k := 0; k < ClumpsPerChiplet; k++ {
						addArc(n, s, l, via, k) // s -> via
						addArc(n, via, l, t, k) // via -> t
					}
				}
			}
		}
	}

	nv := len(vars)
	prob := &lp.Problem{Sense: lp.Minimize, C: make([]float64, nv), Integer: make([]bool, nv)}
	for v, vi := range vars {
		prob.C[v] = arcs[vi.arcIdx].d
		prob.Integer[v] = true
	}

	addRow := func(row []float64, rel lp.Rel, rhs float64) {
		prob.A = append(prob.A, row)
		prob.Rel = append(prob.Rel, rel)
		prob.B = append(prob.B, rhs)
	}

	// Eqn. (4) at the source: total outflow from s equals R (no inflow to s
	// exists in the variable space, per Eqn. 5).
	for n, ch := range nets {
		row := make([]float64, nv)
		for _, v := range netArcs[n] {
			if arcs[vars[v].arcIdx].fc == ch.Src {
				row[v] = 1
			}
		}
		addRow(row, lp.EQ, float64(ch.Wires))
	}

	// Eqn. (4) at intermediates: inflow == outflow per (net, via).
	if opt.GasStation {
		for n, ch := range nets {
			for via := range sys.Chiplets {
				if via == ch.Src || via == ch.Dst {
					continue
				}
				row := make([]float64, nv)
				any := false
				for _, v := range netArcs[n] {
					a := arcs[vars[v].arcIdx]
					if a.tc == via {
						row[v] = 1
						any = true
					}
					if a.fc == via {
						row[v] = -1
						any = true
					}
				}
				if any {
					addRow(row, lp.EQ, 0)
				}
			}
		}
		// Eqn. (9): sum of all flows <= 2R - direct flows, i.e.
		// 2*direct + indirect <= 2R.
		for n, ch := range nets {
			row := make([]float64, nv)
			for _, v := range netArcs[n] {
				a := arcs[vars[v].arcIdx]
				if a.fc == ch.Src && a.tc == ch.Dst {
					row[v] = 2
				} else {
					row[v] = 1
				}
			}
			addRow(row, lp.LE, 2*float64(ch.Wires))
		}
	}
	// Eqn. (8) for repeaterless links (sum of flows <= R) is implied by the
	// source-delivery equality once only direct arcs exist, so no row is
	// needed.

	// Eqn. (7): per-clump pin capacity over incident flows of all nets.
	for c := range sys.Chiplets {
		for l := 0; l < ClumpsPerChiplet; l++ {
			row := make([]float64, nv)
			any := false
			for v, vi := range vars {
				a := arcs[vi.arcIdx]
				if a.fc == c && a.fl == l {
					row[v]++
					any = true
				}
				if a.tc == c && a.tl == l {
					row[v]++
					any = true
				}
			}
			if any {
				addRow(row, lp.LE, float64(caps[c]))
			}
		}
	}

	sol, err := lp.SolveMILP(prob, opt.MILP)
	if err != nil {
		return nil, fmt.Errorf("route: milp: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, infeasibleMILP(sys, caps)
	default:
		return nil, fmt.Errorf("route: milp terminated with status %v", sol.Status)
	}

	res := &Result{Method: MethodMILP, GasStation: opt.GasStation}
	for v, vi := range vars {
		w := int(math.Round(sol.X[v]))
		if w <= 0 {
			continue
		}
		a := arcs[vi.arcIdx]
		res.Flows = append(res.Flows, Flow{
			Net: vi.net, FromChiplet: a.fc, FromClump: a.fl,
			ToChiplet: a.tc, ToClump: a.tl, Wires: w, LengthPerWire: a.d,
		})
		res.TotalWirelengthMM += float64(w) * a.d
	}
	return res, nil
}

// --- Verification ------------------------------------------------------------

// Check verifies that a routing result satisfies the paper's constraints for
// the given system and options: per-net delivery (Eqn. 4), conservation at
// intermediates, source/sink direction rules (Eqns. 5-6), pin capacities
// (Eqn. 7), and hop-count limits (Eqns. 8-9). Used by tests and the E8
// benchmark to validate both routing methods.
func Check(sys *chiplet.System, res *Result, caps []int) error {
	if caps == nil {
		caps = DerivedPinCapacity(sys)
	}
	pinUse := make([]int, len(sys.Chiplets)*ClumpsPerChiplet)
	type nodeKey struct{ net, chip int }
	inflow := map[nodeKey]int{}
	outflow := map[nodeKey]int{}

	for _, f := range res.Flows {
		if f.Wires <= 0 {
			return fmt.Errorf("route: flow with non-positive wires: %+v", f)
		}
		if f.Net < 0 || f.Net >= len(sys.Channels) {
			return fmt.Errorf("route: flow references unknown net %d", f.Net)
		}
		ch := sys.Channels[f.Net]
		if f.FromChiplet == ch.Dst {
			return fmt.Errorf("route: net %d has outflow from its sink (violates Eqn. 6)", f.Net)
		}
		if f.ToChiplet == ch.Src {
			return fmt.Errorf("route: net %d has inflow to its source (violates Eqn. 5)", f.Net)
		}
		if !res.GasStation && (f.FromChiplet != ch.Src || f.ToChiplet != ch.Dst) {
			return fmt.Errorf("route: net %d uses an intermediate chiplet without gas-station links (violates Eqn. 8)", f.Net)
		}
		if f.FromChiplet != ch.Src && f.FromChiplet != ch.Dst && f.ToChiplet != ch.Src && f.ToChiplet != ch.Dst {
			return fmt.Errorf("route: net %d flow between two intermediates (violates Eqn. 9's 2-stage limit)", f.Net)
		}
		pinUse[clumpID(f.FromChiplet, f.FromClump)] += f.Wires
		pinUse[clumpID(f.ToChiplet, f.ToClump)] += f.Wires
		outflow[nodeKey{f.Net, f.FromChiplet}] += f.Wires
		inflow[nodeKey{f.Net, f.ToChiplet}] += f.Wires
	}

	for n, ch := range sys.Channels {
		if got := outflow[nodeKey{n, ch.Src}]; got != ch.Wires {
			return fmt.Errorf("route: net %d delivers %d wires from source, want %d", n, got, ch.Wires)
		}
		if got := inflow[nodeKey{n, ch.Dst}]; got != ch.Wires {
			return fmt.Errorf("route: net %d delivers %d wires to sink, want %d", n, got, ch.Wires)
		}
		for c := range sys.Chiplets {
			if c == ch.Src || c == ch.Dst {
				continue
			}
			if inflow[nodeKey{n, c}] != outflow[nodeKey{n, c}] {
				return fmt.Errorf("route: net %d violates conservation at chiplet %d: in %d out %d",
					n, c, inflow[nodeKey{n, c}], outflow[nodeKey{n, c}])
			}
		}
	}
	for c := range sys.Chiplets {
		for l := 0; l < ClumpsPerChiplet; l++ {
			if pinUse[clumpID(c, l)] > caps[c] {
				return fmt.Errorf("route: clump (%d, %d) uses %d pins, capacity %d (violates Eqn. 7)",
					c, l, pinUse[clumpID(c, l)], caps[c])
			}
		}
	}
	return nil
}
