package route

import (
	"math"
	"strings"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

// lineSystem: two 10x10 chiplets side by side with one 100-wire channel.
func lineSystem() (*chiplet.System, chiplet.Placement) {
	sys := &chiplet.System{
		Name:        "line",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 10, H: 10, Power: 10},
			{Name: "B", W: 10, H: 10, Power: 10},
		},
		Channels: []chiplet.Channel{{Src: 0, Dst: 1, Wires: 100}},
	}
	p := chiplet.NewPlacement(2)
	p.Centers[0] = geom.Point{X: 10, Y: 22}
	p.Centers[1] = geom.Point{X: 30, Y: 22}
	return sys, p
}

// triSystem: three chiplets in a row; A-C channel can profit from a
// gas-station through B.
func triSystem(wires int) (*chiplet.System, chiplet.Placement) {
	sys := &chiplet.System{
		Name:        "tri",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 8, H: 8, Power: 10},
			{Name: "B", W: 8, H: 8, Power: 10},
			{Name: "C", W: 8, H: 8, Power: 10},
		},
		Channels:          []chiplet.Channel{{Src: 0, Dst: 2, Wires: wires}},
		PinsPerClumpLimit: 4096,
	}
	p := chiplet.NewPlacement(3)
	p.Centers[0] = geom.Point{X: 8, Y: 22}
	p.Centers[1] = geom.Point{X: 22, Y: 22}
	p.Centers[2] = geom.Point{X: 36, Y: 22}
	return sys, p
}

func TestClumpPoint(t *testing.T) {
	sys, p := lineSystem()
	// Chiplet 0 at (10, 22), 10x10.
	cases := []struct {
		clump int
		want  geom.Point
	}{
		{EdgeEast, geom.Point{X: 15, Y: 22}},
		{EdgeNorth, geom.Point{X: 10, Y: 27}},
		{EdgeWest, geom.Point{X: 5, Y: 22}},
		{EdgeSouth, geom.Point{X: 10, Y: 17}},
	}
	for _, c := range cases {
		if got := ClumpPoint(sys, p, 0, c.clump); got != c.want {
			t.Errorf("clump %d = %v, want %v", c.clump, got, c.want)
		}
	}
	// Rotation swaps the edges' distances from center.
	p.Rotated[0] = true
	sys.Chiplets[0].H = 4
	east := ClumpPoint(sys, p, 0, EdgeEast)
	if east.X != 12 { // rotated: width becomes 4
		t.Errorf("rotated east clump = %v", east)
	}
}

func TestClumpPointPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sys, p := lineSystem()
	ClumpPoint(sys, p, 0, 4)
}

func TestDerivedPinCapacity(t *testing.T) {
	sys, _ := lineSystem()
	caps := DerivedPinCapacity(sys)
	if caps[0] != 50 || caps[1] != 50 {
		t.Errorf("caps = %v, want [50 50]", caps)
	}
	sys.PinsPerClumpLimit = 999
	caps = DerivedPinCapacity(sys)
	if caps[0] != 999 || caps[1] != 999 {
		t.Errorf("explicit caps = %v", caps)
	}
}

func TestFastRouteDirect(t *testing.T) {
	sys, p := lineSystem()
	res, err := Route(sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sys, res, nil); err != nil {
		t.Fatal(err)
	}
	// Facing-edge distance is 30-10-10 = 10 mm; with per-clump capacity 50
	// the cheapest 50 wires go east->west (10 mm each) and the rest take the
	// next-cheapest clump pairs.
	if res.TotalWirelengthMM < 100*10 {
		t.Errorf("wirelength %v below physical minimum", res.TotalWirelengthMM)
	}
	if res.Method != MethodFast || res.GasStation {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

func TestFastRouteRespectsCapacity(t *testing.T) {
	sys, p := lineSystem()
	res, err := Route(sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	use := map[int]int{}
	for _, f := range res.Flows {
		use[f.FromChiplet*4+f.FromClump] += f.Wires
		use[f.ToChiplet*4+f.ToClump] += f.Wires
	}
	for id, u := range use {
		if u > 50 {
			t.Errorf("clump %d used %d pins, cap 50", id, u)
		}
	}
}

func TestRouteRejectsInvalidPlacement(t *testing.T) {
	sys, p := lineSystem()
	p.Centers[1] = p.Centers[0] // overlap
	if _, err := Route(sys, p, Options{}); err == nil {
		t.Error("overlapping placement routed without error")
	}
}

func TestRouteInsufficientCapacity(t *testing.T) {
	sys, p := lineSystem()
	_, err := Route(sys, p, Options{PinCapacity: []int{10, 10}})
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("err = %v, want capacity error", err)
	}
}

func TestRouteBadCapacityLength(t *testing.T) {
	sys, p := lineSystem()
	if _, err := Route(sys, p, Options{PinCapacity: []int{10}}); err == nil {
		t.Error("mismatched capacity slice accepted")
	}
}

func TestMILPMatchesFastOnSimpleCase(t *testing.T) {
	sys, p := lineSystem()
	fast, err := Route(sys, p, Options{Method: MethodFast})
	if err != nil {
		t.Fatal(err)
	}
	milp, err := Route(sys, p, Options{Method: MethodMILP})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sys, milp, nil); err != nil {
		t.Fatal(err)
	}
	// MILP is exact; fast must not beat it, and here they should coincide.
	if milp.TotalWirelengthMM > fast.TotalWirelengthMM+1e-6 {
		t.Errorf("milp %v worse than fast %v", milp.TotalWirelengthMM, fast.TotalWirelengthMM)
	}
	if math.Abs(milp.TotalWirelengthMM-fast.TotalWirelengthMM) > 1e-6 {
		t.Errorf("milp %v != fast %v on the trivial instance", milp.TotalWirelengthMM, fast.TotalWirelengthMM)
	}
}

func TestGasStationNeverWorseThanDirect(t *testing.T) {
	// With generous pins, gas-station routing can only shorten wirelength
	// (direct arcs remain available).
	sys, p := triSystem(64)
	direct, err := Route(sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gas, err := Route(sys, p, Options{GasStation: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sys, gas, nil); err != nil {
		t.Fatal(err)
	}
	if gas.TotalWirelengthMM > direct.TotalWirelengthMM+1e-6 {
		t.Errorf("gas %v worse than direct %v", gas.TotalWirelengthMM, direct.TotalWirelengthMM)
	}
}

func TestGasStationUsesIntermediateWhenCheaper(t *testing.T) {
	// A->C facing-edge distance is 36-8-8-8... direct east(A)->west(C):
	// |32-12| = 20 mm. Via B: east(A)->west(B) 6 mm + east(B)->west(C) 6 mm
	// = 12 mm. The Manhattan distance is the same for straight-line hops,
	// so check the router actually finds the shorter 2-hop decomposition
	// when clump geometry makes it shorter.
	sys, p := triSystem(64)
	gas, err := Route(sys, p, Options{GasStation: true, Method: MethodMILP})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sys, gas, nil); err != nil {
		t.Fatal(err)
	}
	viaB := false
	for _, f := range gas.Flows {
		if f.FromChiplet == 1 || f.ToChiplet == 1 {
			viaB = true
		}
	}
	// Direct A->C east-west is 20 mm; via B is 6+6=12 mm. MILP must route
	// through B.
	if !viaB {
		t.Error("MILP gas-station routing did not use the cheaper intermediate")
	}
	if gas.TotalWirelengthMM > 64*12+1e-6 {
		t.Errorf("gas wirelength %v, want <= %v", gas.TotalWirelengthMM, 64*12)
	}
}

func TestMILPvsFastGasStation(t *testing.T) {
	sys, p := triSystem(32)
	fast, err := Route(sys, p, Options{GasStation: true, Method: MethodFast})
	if err != nil {
		t.Fatal(err)
	}
	milp, err := Route(sys, p, Options{GasStation: true, Method: MethodMILP})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sys, fast, nil); err != nil {
		t.Fatalf("fast: %v", err)
	}
	if err := Check(sys, milp, nil); err != nil {
		t.Fatalf("milp: %v", err)
	}
	if milp.TotalWirelengthMM > fast.TotalWirelengthMM+1e-6 {
		t.Errorf("exact milp %v worse than heuristic %v", milp.TotalWirelengthMM, fast.TotalWirelengthMM)
	}
}

func TestMultiNetSharedCapacity(t *testing.T) {
	// Two nets share chiplet B's pins; both must be delivered within caps.
	sys := &chiplet.System{
		Name:        "Y",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 8, H: 8, Power: 1},
			{Name: "B", W: 8, H: 8, Power: 1},
			{Name: "C", W: 8, H: 8, Power: 1},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 1, Wires: 60},
			{Src: 2, Dst: 1, Wires: 60},
		},
	}
	p := chiplet.NewPlacement(3)
	p.Centers[0] = geom.Point{X: 8, Y: 10}
	p.Centers[1] = geom.Point{X: 22, Y: 10}
	p.Centers[2] = geom.Point{X: 36, Y: 10}

	for _, m := range []Method{MethodFast, MethodMILP} {
		res, err := Route(sys, p, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := Check(sys, res, nil); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestCheckCatchesViolations(t *testing.T) {
	sys, p := lineSystem()
	res, err := Route(sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: drop a flow -> delivery violated.
	bad := *res
	bad.Flows = bad.Flows[:len(bad.Flows)-1]
	if Check(sys, &bad, nil) == nil {
		t.Error("Check accepted under-delivery")
	}
	// Tamper: reverse a flow -> inflow to source.
	bad2 := *res
	bad2.Flows = append([]Flow{}, res.Flows...)
	f := bad2.Flows[0]
	f.FromChiplet, f.ToChiplet = f.ToChiplet, f.FromChiplet
	bad2.Flows[0] = f
	if Check(sys, &bad2, nil) == nil {
		t.Error("Check accepted reversed flow")
	}
	// Tamper: zero-wire flow.
	bad3 := *res
	bad3.Flows = append([]Flow{{Net: 0, Wires: 0}}, res.Flows...)
	if Check(sys, &bad3, nil) == nil {
		t.Error("Check accepted zero-wire flow")
	}
	// Tamper: unknown net.
	bad4 := *res
	bad4.Flows = append([]Flow{{Net: 5, Wires: 1}}, res.Flows...)
	if Check(sys, &bad4, nil) == nil {
		t.Error("Check accepted unknown net")
	}
}

func TestMethodString(t *testing.T) {
	if MethodFast.String() != "fast" || MethodMILP.String() != "milp" {
		t.Error("method strings wrong")
	}
	if Method(7).String() == "" {
		t.Error("unknown method should format")
	}
}

func TestWirelengthScalesWithSeparation(t *testing.T) {
	sys, p := lineSystem()
	near, err := Route(sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.Centers[1] = geom.Point{X: 38, Y: 22}
	far, err := Route(sys, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if far.TotalWirelengthMM <= near.TotalWirelengthMM {
		t.Errorf("farther placement should have longer wires: %v vs %v",
			far.TotalWirelengthMM, near.TotalWirelengthMM)
	}
}

func BenchmarkFastRoute8Chiplets(b *testing.B) {
	sys, p := benchSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(sys, p, Options{GasStation: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMILPRoute8Chiplets(b *testing.B) {
	sys, p := benchSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(sys, p, Options{Method: MethodMILP}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSystem: an 8-chiplet system shaped like the paper's case studies.
func benchSystem() (*chiplet.System, chiplet.Placement) {
	sys := &chiplet.System{
		Name:        "bench8",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "C0", W: 10, H: 10, Power: 100},
			{Name: "C1", W: 10, H: 10, Power: 100},
			{Name: "C2", W: 10, H: 10, Power: 100},
			{Name: "C3", W: 10, H: 10, Power: 100},
			{Name: "D0", W: 6, H: 6, Power: 10},
			{Name: "D1", W: 6, H: 6, Power: 10},
			{Name: "D2", W: 6, H: 6, Power: 10},
			{Name: "D3", W: 6, H: 6, Power: 10},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 1, Wires: 768}, {Src: 1, Dst: 2, Wires: 768},
			{Src: 2, Dst: 3, Wires: 768}, {Src: 3, Dst: 0, Wires: 768},
			{Src: 0, Dst: 4, Wires: 512}, {Src: 1, Dst: 5, Wires: 512},
			{Src: 2, Dst: 6, Wires: 512}, {Src: 3, Dst: 7, Wires: 512},
		},
	}
	p := chiplet.NewPlacement(8)
	coords := []geom.Point{
		{X: 8, Y: 8}, {X: 22, Y: 8}, {X: 36, Y: 8}, {X: 8, Y: 22},
		{X: 22, Y: 22}, {X: 36, Y: 22}, {X: 8, Y: 36}, {X: 22, Y: 36},
	}
	copy(p.Centers, coords)
	return sys, p
}
