package route

import (
	"math/rand"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
	"tap25d/internal/ocm"
)

// randomSystem builds a random valid system and placement for property
// testing: n chiplets on a 45 mm interposer with a random channel set.
func randomSystem(rng *rand.Rand, n int) (*chiplet.System, chiplet.Placement, bool) {
	sys := &chiplet.System{
		Name:        "prop",
		InterposerW: 45,
		InterposerH: 45,
	}
	for i := 0; i < n; i++ {
		sys.Chiplets = append(sys.Chiplets, chiplet.Chiplet{
			Name:  string(rune('A' + i)),
			W:     3 + rng.Float64()*8,
			H:     3 + rng.Float64()*8,
			Power: rng.Float64() * 100,
		})
	}
	// Random channels (connected-ish): each chiplet links to a random other.
	for i := 1; i < n; i++ {
		sys.Channels = append(sys.Channels, chiplet.Channel{
			Src:   rng.Intn(i),
			Dst:   i,
			Wires: 1 + rng.Intn(512),
		})
	}
	if rng.Intn(2) == 0 && n > 2 {
		sys.Channels = append(sys.Channels, chiplet.Channel{Src: 0, Dst: n - 1, Wires: 1 + rng.Intn(256)})
	}
	if err := sys.Validate(); err != nil {
		return nil, chiplet.Placement{}, false
	}
	// Random valid placement via the OCM legalizer.
	grid, err := ocm.NewGrid(sys, 1)
	if err != nil {
		return nil, chiplet.Placement{}, false
	}
	p := chiplet.NewPlacement(n)
	for i := range p.Centers {
		p.Centers[i] = geom.Point{X: rng.Float64() * 45, Y: rng.Float64() * 45}
	}
	q, err := grid.Legalize(sys, p)
	if err != nil {
		return nil, chiplet.Placement{}, false
	}
	return sys, q, true
}

// TestFastRouterPropertyRandomSystems: on random systems/placements the fast
// router either reports insufficient capacity or produces a solution passing
// every constraint check of Eqns. 4-9.
func TestFastRouterPropertyRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	routed := 0
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		sys, p, ok := randomSystem(rng, n)
		if !ok {
			continue
		}
		for _, gas := range []bool{false, true} {
			res, err := Route(sys, p, Options{GasStation: gas})
			if err != nil {
				continue // capacity-infeasible random instance: acceptable
			}
			routed++
			if err := Check(sys, res, nil); err != nil {
				t.Fatalf("trial %d gas=%v: %v", trial, gas, err)
			}
			if res.TotalWirelengthMM < 0 {
				t.Fatalf("negative wirelength")
			}
		}
	}
	if routed < 40 {
		t.Fatalf("only %d random instances routed; generator too restrictive", routed)
	}
}

// TestMILPNeverWorseThanFastProperty: on random instances where both methods
// succeed, the exact MILP's wirelength is never worse than the heuristic's.
func TestMILPNeverWorseThanFastProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	compared := 0
	for trial := 0; trial < 25; trial++ {
		sys, p, ok := randomSystem(rng, 3+rng.Intn(3))
		if !ok {
			continue
		}
		fast, errF := Route(sys, p, Options{})
		milp, errM := Route(sys, p, Options{Method: MethodMILP})
		if errF != nil || errM != nil {
			continue
		}
		compared++
		if milp.TotalWirelengthMM > fast.TotalWirelengthMM+1e-6 {
			t.Fatalf("trial %d: MILP %v worse than fast %v", trial,
				milp.TotalWirelengthMM, fast.TotalWirelengthMM)
		}
		if err := Check(sys, milp, nil); err != nil {
			t.Fatalf("trial %d: milp check: %v", trial, err)
		}
	}
	if compared < 15 {
		t.Fatalf("only %d instances compared", compared)
	}
}

// TestGasStationReservesOwnChannels: a topology where a central chiplet is
// the best gas station for crossing traffic must still deliver the central
// chiplet's own channels (regression test for via-budget starvation).
func TestGasStationReservesOwnChannels(t *testing.T) {
	sys := &chiplet.System{
		Name:        "hub",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []chiplet.Chiplet{
			{Name: "L", W: 8, H: 8, Power: 10},
			{Name: "HUB", W: 8, H: 8, Power: 10},
			{Name: "R", W: 8, H: 8, Power: 10},
			{Name: "T", W: 8, H: 8, Power: 10},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 2, Wires: 600}, // L -> R crossing traffic (big, routed first)
			{Src: 1, Dst: 3, Wires: 300}, // HUB's own channel
		},
		PinsPerClumpLimit: 300,
	}
	p := chiplet.NewPlacement(4)
	p.Centers[0] = geom.Point{X: 8, Y: 22}
	p.Centers[1] = geom.Point{X: 22, Y: 22}
	p.Centers[2] = geom.Point{X: 36, Y: 22}
	p.Centers[3] = geom.Point{X: 22, Y: 36}
	res, err := Route(sys, p, Options{GasStation: true})
	if err != nil {
		t.Fatalf("via-budget reservation failed: %v", err)
	}
	if err := Check(sys, res, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWirelengthLowerBound: total wirelength is at least the sum over
// channels of wires x closest clump-pair distance (no router can beat
// per-net geometry).
func TestWirelengthLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		sys, p, ok := randomSystem(rng, 4)
		if !ok {
			continue
		}
		res, err := Route(sys, p, Options{})
		if err != nil {
			continue
		}
		var lower float64
		pts := clumpPoints(sys, p)
		for _, ch := range sys.Channels {
			best := dist(pts, ch.Src, 0, ch.Dst, 0)
			for l := 0; l < ClumpsPerChiplet; l++ {
				for k := 0; k < ClumpsPerChiplet; k++ {
					if d := dist(pts, ch.Src, l, ch.Dst, k); d < best {
						best = d
					}
				}
			}
			lower += best * float64(ch.Wires)
		}
		if res.TotalWirelengthMM < lower-1e-6 {
			t.Fatalf("trial %d: wirelength %v below geometric lower bound %v",
				trial, res.TotalWirelengthMM, lower)
		}
	}
}
