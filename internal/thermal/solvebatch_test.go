package thermal

import (
	"context"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"tap25d/internal/geom"
	"tap25d/internal/material"
	"tap25d/internal/metrics"
)

// batchSpecs returns b power scenarios of the cpudram case study: identical
// footprints, scenario c scaled by a deterministic factor.
func batchSpecs(b int) [][]Source {
	base := precondCases()[1].sources
	specs := make([][]Source, b)
	for c := range specs {
		spec := make([]Source, len(base))
		copy(spec, base)
		for k := range spec {
			spec[k].Power *= 0.5 + 0.25*float64(c)
		}
		specs[c] = spec
	}
	return specs
}

func batchModel(t *testing.T, grid int, precond string, ctr *metrics.Counters) *Model {
	t.Helper()
	pc := precondCases()[1]
	stack := material.DefaultStackFor(pc.w, pc.h)
	m, err := NewModel(pc.w, pc.h, Options{Grid: grid, Stack: &stack, Precond: precond, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSolveBatchBitIdenticalToColdSolves: every batch column must carry
// exactly the field a cold-start Solve of that scenario on a fresh model
// would produce — same bits, same iteration count — for every preconditioner
// the batch dispatches to.
func TestSolveBatchBitIdenticalToColdSolves(t *testing.T) {
	for _, pre := range []string{"jacobi", "ssor", "mg"} {
		t.Run(pre, func(t *testing.T) {
			specs := batchSpecs(3)
			m := batchModel(t, 48, pre, nil)
			got, err := m.SolveBatch(context.Background(), specs)
			if err != nil {
				t.Fatal(err)
			}
			for c, spec := range specs {
				want, err := batchModel(t, 48, pre, nil).Solve(spec)
				if err != nil {
					t.Fatal(err)
				}
				if got[c].Iterations != want.Iterations {
					t.Errorf("column %d: %d iterations, solo solve %d", c, got[c].Iterations, want.Iterations)
				}
				for i := range want.ChipTempC {
					if math.Float64bits(got[c].ChipTempC[i]) != math.Float64bits(want.ChipTempC[i]) {
						t.Fatalf("column %d cell %d: %v vs %v", c, i, got[c].ChipTempC[i], want.ChipTempC[i])
					}
				}
				if got[c].Recovery != nil {
					t.Errorf("column %d carries recovery info", c)
				}
			}
		})
	}
}

// TestSolveBatchLeavesWarmStateUntouched: a Solve after a SolveBatch must
// behave exactly as if the batch had not happened.
func TestSolveBatchLeavesWarmStateUntouched(t *testing.T) {
	specs := batchSpecs(3)
	plain := batchModel(t, 48, "", nil)
	if _, err := plain.Solve(specs[0]); err != nil {
		t.Fatal(err)
	}
	batched := batchModel(t, 48, "", nil)
	if _, err := batched.Solve(specs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := batched.SolveBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	want, err := plain.Solve(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	got, err := batched.Solve(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("post-batch solve took %d iterations, undisturbed model %d", got.Iterations, want.Iterations)
	}
	for i := range want.ChipTempC {
		if math.Float64bits(got.ChipTempC[i]) != math.Float64bits(want.ChipTempC[i]) {
			t.Fatalf("cell %d: %v vs %v", i, got.ChipTempC[i], want.ChipTempC[i])
		}
	}
}

func TestSolveBatchValidation(t *testing.T) {
	m := batchModel(t, 32, "", nil)
	ctx := context.Background()

	if res, err := m.SolveBatch(ctx, nil); err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}

	specs := batchSpecs(2)
	specs[1] = specs[1][:len(specs[1])-1]
	if _, err := m.SolveBatch(ctx, specs); err == nil || !strings.Contains(err.Error(), "spec 1") {
		t.Fatalf("count mismatch not reported: %v", err)
	}

	specs = batchSpecs(2)
	specs[1][2].Rect.Center.X += 0.5
	if _, err := m.SolveBatch(ctx, specs); err == nil ||
		!strings.Contains(err.Error(), "spec 1 source 2") {
		t.Fatalf("footprint mismatch not reported: %v", err)
	}

	specs = batchSpecs(2)
	specs[1][0].Power = -1
	if _, err := m.SolveBatch(ctx, specs); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestSolveBatchCounters(t *testing.T) {
	var ctr metrics.Counters
	m := batchModel(t, 48, "mg", &ctr)
	specs := batchSpecs(4)
	results, err := m.SolveBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.ThermalSolves != 4 {
		t.Errorf("ThermalSolves = %d, want 4", ctr.ThermalSolves)
	}
	var iters int64
	for _, r := range results {
		iters += int64(r.Iterations)
	}
	if ctr.CGIterations != iters {
		t.Errorf("CGIterations = %d, want %d", ctr.CGIterations, iters)
	}
	if ctr.MGSetups != 1 {
		t.Errorf("MGSetups = %d, want 1 (one hierarchy for the whole batch)", ctr.MGSetups)
	}
	if ctr.MGCycles == 0 {
		t.Error("MGCycles = 0, want > 0")
	}
}

func TestSolveBatchCanceled(t *testing.T) {
	m := batchModel(t, 48, "", nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SolveBatch(ctx, batchSpecs(2)); err == nil {
		t.Fatal("canceled batch succeeded")
	}
}

// TestSolveBatchThroughput is the thermal-level multi-RHS acceptance check:
// one SolveBatch over B=8 power scenarios must beat B independent fresh-model
// solves by ≥1.5×. It needs a quiet multi-core machine to be meaningful, so
// it only runs when TAP25D_PERF=1 (the committed BENCH_SOLVER.json carries
// the canonical measurement).
func TestSolveBatchThroughput(t *testing.T) {
	if os.Getenv("TAP25D_PERF") == "" {
		t.Skip("set TAP25D_PERF=1 to run throughput checks")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs")
	}
	const b = 8
	specs := batchSpecs(b)
	naive0 := time.Now()
	for _, spec := range specs {
		if _, err := batchModel(t, 128, "mg", nil).Solve(spec); err != nil {
			t.Fatal(err)
		}
	}
	naive := time.Since(naive0)
	m := batchModel(t, 128, "mg", nil)
	batch0 := time.Now()
	if _, err := m.SolveBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	batch := time.Since(batch0)
	speedup := naive.Seconds() / batch.Seconds()
	t.Logf("naive %v, batch %v, speedup %.2fx", naive, batch, speedup)
	if speedup < 1.5 {
		t.Errorf("batch speedup %.2fx < 1.5x", speedup)
	}
}

// TestSolveBatchMatchesPowerVector: the batch's right-hand side assembly must
// replicate the plain path bit for bit even for partially overlapping and
// off-grid footprints.
func TestSolveBatchPowerVector(t *testing.T) {
	m := batchModel(t, 32, "", nil)
	src := []Source{
		{Rect: geom.Rect{Center: geom.Point{X: 10.3, Y: 11.7}, W: 7.1, H: 6.3}, Power: 55},
		{Rect: geom.Rect{Center: geom.Point{X: 12.9, Y: 13.1}, W: 5.5, H: 5.5}, Power: 30},
	}
	want, err := batchModel(t, 32, "", nil).Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SolveBatch(context.Background(), [][]Source{src})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.ChipTempC {
		if math.Float64bits(got[0].ChipTempC[i]) != math.Float64bits(want.ChipTempC[i]) {
			t.Fatalf("cell %d: %v vs %v", i, got[0].ChipTempC[i], want.ChipTempC[i])
		}
	}
}
