package thermal

import (
	"math"
	"testing"

	"tap25d/internal/geom"
)

func TestTransientValidation(t *testing.T) {
	m := newTestModel(t, 8)
	src := []Source{centeredSource(100)}
	if _, err := m.SolveTransient(src, 0, 10); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := m.SolveTransient(src, 0.1, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := m.SolveTransient([]Source{{Power: -1, Rect: geom.Rect{Center: geom.Point{X: 5, Y: 5}, W: 1, H: 1}}}, 0.1, 2); err == nil {
		t.Error("negative power accepted")
	}
}

func TestTransientMonotonicRiseToSteady(t *testing.T) {
	m := newTestModel(t, 16)
	src := []Source{centeredSource(150)}
	tr, err := m.SolveTransient(src, 0.2, 40) // 8 s horizon
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.PeakC) != 40 {
		t.Fatalf("samples = %d", len(tr.PeakC))
	}
	for i := 1; i < len(tr.PeakC); i++ {
		if tr.PeakC[i] < tr.PeakC[i-1]-1e-6 {
			t.Fatalf("peak fell at step %d: %v -> %v", i, tr.PeakC[i-1], tr.PeakC[i])
		}
	}
	// Starts near ambient, approaches (but does not exceed) steady state.
	if tr.PeakC[0] >= tr.SteadyPeakC {
		t.Errorf("first sample %v already above steady %v", tr.PeakC[0], tr.SteadyPeakC)
	}
	last := tr.PeakC[len(tr.PeakC)-1]
	if last > tr.SteadyPeakC+0.5 {
		t.Errorf("transient overshot steady state: %v > %v", last, tr.SteadyPeakC)
	}
	// After ~8 s a small package should be within a few degrees of steady.
	if tr.SteadyPeakC-last > 0.15*(tr.SteadyPeakC-45) {
		t.Errorf("not converging to steady: %v vs %v", last, tr.SteadyPeakC)
	}
}

func TestTransientConvergesToSteadyLongHorizon(t *testing.T) {
	m := newTestModel(t, 12)
	src := []Source{centeredSource(100)}
	tr, err := m.SolveTransient(src, 1.0, 60)
	if err != nil {
		t.Fatal(err)
	}
	last := tr.PeakC[len(tr.PeakC)-1]
	if math.Abs(last-tr.SteadyPeakC) > 0.05*(tr.SteadyPeakC-45) {
		t.Errorf("60 s transient %v far from steady %v", last, tr.SteadyPeakC)
	}
}

func TestTimeToThreshold(t *testing.T) {
	m := newTestModel(t, 16)
	src := []Source{centeredSource(300)}
	tr, err := m.SolveTransient(src, 0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SteadyPeakC <= 85 {
		t.Skipf("calibration changed; steady %v no longer crosses 85", tr.SteadyPeakC)
	}
	tt, ok := tr.TimeToThresholdS(85)
	if !ok {
		t.Fatal("85 C never crossed despite hot steady state")
	}
	if tt <= 0 || tt > 5 {
		t.Errorf("time to 85 C = %v s, implausible", tt)
	}
	// An unreachable threshold reports false.
	if _, ok := tr.TimeToThresholdS(1000); ok {
		t.Error("1000 C should be unreachable")
	}
}

func TestTransientMorePowerCrossesSooner(t *testing.T) {
	// The thin die layers have millisecond time constants, so resolve the
	// crossing with 2 ms steps.
	m := newTestModel(t, 12)
	mk := func(p float64) float64 {
		tr, err := m.SolveTransient([]Source{centeredSource(p)}, 0.002, 400)
		if err != nil {
			t.Fatal(err)
		}
		tt, ok := tr.TimeToThresholdS(80)
		if !ok {
			return math.Inf(1)
		}
		return tt
	}
	t150 := mk(150)
	t400 := mk(400)
	if math.IsInf(t400, 1) {
		t.Fatal("400 W never crossed 80 C in 0.8 s")
	}
	if t400 >= t150 {
		t.Errorf("400 W crossed at %v s, not sooner than 150 W at %v s", t400, t150)
	}
}

func TestSteadySolveStillWorksAfterTransient(t *testing.T) {
	// SolveTransient mutates solver scratch state; a subsequent steady
	// solve must be unaffected.
	m := newTestModel(t, 12)
	src := []Source{centeredSource(120)}
	ref, err := m.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SolveTransient(src, 0.1, 5); err != nil {
		t.Fatal(err)
	}
	again, err := m.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ref.PeakC-again.PeakC) > 1e-3 {
		t.Errorf("steady solve changed after transient: %v vs %v", ref.PeakC, again.PeakC)
	}
}
