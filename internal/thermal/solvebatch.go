package thermal

import (
	"context"
	"fmt"

	"tap25d/internal/obs"
	"tap25d/internal/sparse"
)

// SolveBatch solves the steady-state field of B power scenarios of one
// placement in a single pass: every spec must have the same source footprints
// (count, rectangles and order), only the powers may differ. The conductance
// matrix depends on footprints alone, so the batch shares one assembly (full
// or incremental delta, exactly as a plain Solve would) and one
// preconditioner setup — for the multigrid preconditioner that means one
// hierarchy coarsening amortized over all B solves — and the right-hand
// sides are solved together by sparse.SolveCGBatch's blocked sweep.
//
// Semantics differ from a Solve sequence in three documented ways:
//
//   - Every column starts from the uniform cold-start guess, and the model's
//     warm-start state is neither consulted nor modified: a Solve after a
//     SolveBatch behaves exactly as if the batch had not happened.
//   - The recovery ladder does not run; a non-converging column fails the
//     batch with sparse.ErrNoConvergence. Scenario sweeps are offline
//     analyses where a loud failure beats a silently degraded corner.
//   - Each column's Result carries its own iteration count and temperature
//     map; Recovery is always nil.
//
// Counter accounting matches B independent solves: ThermalSolves += B and
// CGIterations accumulates every column's iterations.
func (m *Model) SolveBatch(ctx context.Context, specs [][]Source) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	base := specs[0]
	for c, list := range specs[1:] {
		if len(list) != len(base) {
			return nil, fmt.Errorf("thermal: batch spec %d has %d sources, spec 0 has %d (footprints must match)", c+1, len(list), len(base))
		}
		for k := range list {
			if list[k].Rect != base[k].Rect {
				return nil, fmt.Errorf("thermal: batch spec %d source %d footprint %v differs from spec 0's %v (only powers may vary)", c+1, k, list[k].Rect, base[k].Rect)
			}
		}
	}

	sp := m.obs.StartSpanCtx(ctx, obs.PhaseThermalSolve, "batch")
	defer sp.End()
	a, _, err := m.prepareAssembled(sp, base)
	if err != nil {
		return nil, err
	}

	nrhs := len(specs)
	xs := make([][]float64, nrhs)
	bs := make([][]float64, nrhs)
	for c, list := range specs {
		bs[c] = make([]float64, m.nNodes)
		if err := m.powerVector(bs[c], list); err != nil {
			return nil, err
		}
		xs[c] = make([]float64, m.nNodes)
		for i := range xs[c] {
			xs[c][i] = 1 // the uniform cold-start guess (see coldGuess)
		}
	}

	opt := sparse.CGOptions{Tol: m.tol, MaxIter: m.maxIter, Inject: m.inject}
	var iters []int
	switch m.precond {
	case precondSSOR:
		// SolveCGBatch has no SSOR path; sequential per-column solves still
		// amortize the assembly, which is the batch's main win here.
		iters = make([]int, nrhs)
		for c := range specs {
			it, err := sparse.SolveCGSSOR(ctx, a, xs[c], bs[c], opt)
			iters[c] = it
			if err != nil {
				return nil, fmt.Errorf("thermal: batch column %d: %w", c, err)
			}
		}
	case precondMG:
		mg, err := m.ensureMG(a)
		if err != nil {
			return nil, fmt.Errorf("thermal: %w", err)
		}
		opt.Precond = mg
		cycles0 := mg.Cycles()
		iters, err = sparse.SolveCGBatch(ctx, a, xs, bs, opt)
		if d := mg.Cycles() - cycles0; d > 0 {
			if m.ctr != nil {
				m.ctr.MGCycles += d
			}
			m.obs.Add("mg_cycles", d)
		}
		if err != nil {
			return nil, fmt.Errorf("thermal: %w", err)
		}
	default:
		iters, err = sparse.SolveCGBatch(ctx, a, xs, bs, opt)
		if err != nil {
			return nil, fmt.Errorf("thermal: %w", err)
		}
	}

	results := make([]*Result, nrhs)
	var total int64
	for c := range specs {
		results[c] = m.buildResult(xs[c], iters[c])
		total += int64(iters[c])
	}
	if m.ctr != nil {
		m.ctr.ThermalSolves += int64(nrhs)
		m.ctr.CGIterations += total
	}
	return results, nil
}

// powerVector fills dst with the chiplet-layer power injection of sources,
// replicating rasterize's accumulation (same loop order, same expressions) so
// a batch column's right-hand side is bit-identical to the one a plain Solve
// of that spec would assemble.
func (m *Model) powerVector(dst []float64, sources []Source) error {
	for i := range dst {
		dst[i] = 0
	}
	for _, s := range sources {
		if s.Power < 0 {
			return errNegativePower(s.Power)
		}
		if s.Rect.W <= 0 || s.Rect.H <= 0 {
			return errBadFootprint(s.Rect)
		}
		perArea := s.Power / s.Rect.Area()
		i0, i1, j0, j1 := m.sourceWindow(s)
		for i := i0; i < i1; i++ {
			for j := j0; j < j1; j++ {
				ov := m.cellRectMM(i, j).OverlapArea(s.Rect)
				if ov <= 0 {
					continue
				}
				dst[m.devNode(m.chipLayer, i, j)] += perArea * ov
			}
		}
	}
	return nil
}
