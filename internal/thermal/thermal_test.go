package thermal

import (
	"math"
	"testing"

	"tap25d/internal/geom"
	"tap25d/internal/material"
)

func newTestModel(t testing.TB, grid int) *Model {
	t.Helper()
	m, err := NewModel(45, 45, Options{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func centeredSource(power float64) Source {
	return Source{Rect: geom.Rect{Center: geom.Point{X: 22.5, Y: 22.5}, W: 10, H: 10}, Power: power}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, 45, Options{}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewModel(45, 45, Options{Grid: 1}); err == nil {
		t.Error("grid 1 accepted")
	}
	bad := material.DefaultStack()
	bad.ConvectionResistance = -1
	if _, err := NewModel(45, 45, Options{Stack: &bad}); err == nil {
		t.Error("invalid stack accepted")
	}
	noChip := material.DefaultStack()
	for i := range noChip.Layers {
		noChip.Layers[i].PowerLayer = false
	}
	if _, err := NewModel(45, 45, Options{Stack: &noChip}); err == nil {
		t.Error("stack without power layer accepted")
	}
}

func TestZeroPowerIsAmbient(t *testing.T) {
	m := newTestModel(t, 16)
	res, err := m.Solve([]Source{centeredSource(0)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakC-m.AmbientC()) > 1e-6 {
		t.Errorf("peak = %v, want ambient %v", res.PeakC, m.AmbientC())
	}
}

func TestCenteredSourcePeaksAtCenter(t *testing.T) {
	m := newTestModel(t, 32)
	res, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakC <= m.AmbientC() {
		t.Fatalf("peak %v should exceed ambient", res.PeakC)
	}
	if res.PeakAt.Euclid(geom.Point{X: 22.5, Y: 22.5}) > 3 {
		t.Errorf("peak at %v, want near center", res.PeakAt)
	}
	// Corner should be markedly cooler than the source.
	corner := res.TempAt(geom.Point{X: 1, Y: 1})
	if corner >= res.PeakC {
		t.Errorf("corner %v not cooler than peak %v", corner, res.PeakC)
	}
}

func TestSymmetry(t *testing.T) {
	m := newTestModel(t, 32)
	res, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Grid
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			a := res.ChipTempC[i*g+j]
			bMirror := res.ChipTempC[i*g+(g-1-j)]
			if math.Abs(a-bMirror) > 0.05 {
				t.Fatalf("x-mirror asymmetry at (%d,%d): %v vs %v", i, j, a, bMirror)
			}
			cMirror := res.ChipTempC[(g-1-i)*g+j]
			if math.Abs(a-cMirror) > 0.05 {
				t.Fatalf("y-mirror asymmetry at (%d,%d): %v vs %v", i, j, a, cMirror)
			}
		}
	}
}

func TestMorePowerIsHotter(t *testing.T) {
	m := newTestModel(t, 16)
	var prev float64
	for i, p := range []float64{10, 50, 100, 200, 400} {
		res, err := m.Solve([]Source{centeredSource(p)})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.PeakC <= prev {
			t.Fatalf("power %v gave peak %v, not hotter than %v", p, res.PeakC, prev)
		}
		prev = res.PeakC
	}
}

func TestLinearityInPower(t *testing.T) {
	// The network is linear: temperature rise should scale with power.
	m := newTestModel(t, 16)
	r1, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Solve([]Source{centeredSource(200)})
	if err != nil {
		t.Fatal(err)
	}
	rise1 := r1.PeakC - r1.AmbientC
	rise2 := r2.PeakC - r2.AmbientC
	if math.Abs(rise2-2*rise1) > 0.02*rise2 {
		t.Errorf("rise not linear: %v vs 2*%v", rise2, rise1)
	}
}

func TestSpreadingApartCools(t *testing.T) {
	// The core physical claim of the paper: separating two high-power
	// chiplets lowers the peak temperature.
	m := newTestModel(t, 32)
	mk := func(x1, x2 float64) []Source {
		return []Source{
			{Rect: geom.Rect{Center: geom.Point{X: x1, Y: 22.5}, W: 8, H: 8}, Power: 150},
			{Rect: geom.Rect{Center: geom.Point{X: x2, Y: 22.5}, W: 8, H: 8}, Power: 150},
		}
	}
	close, err := m.Solve(mk(18, 27)) // 1mm apart
	if err != nil {
		t.Fatal(err)
	}
	far, err := m.Solve(mk(8, 37)) // 21mm apart
	if err != nil {
		t.Fatal(err)
	}
	if far.PeakC >= close.PeakC {
		t.Errorf("far placement %v not cooler than close %v", far.PeakC, close.PeakC)
	}
	// The effect should be material (degrees, not millidegrees).
	if close.PeakC-far.PeakC < 0.5 {
		t.Errorf("spreading effect too small: %v vs %v", close.PeakC, far.PeakC)
	}
}

func TestCornerHotterThanCenterForSameSource(t *testing.T) {
	// A single source in the corner has less silicon around it to spread
	// heat into; it should run hotter than the same source centered.
	m := newTestModel(t, 32)
	center, err := m.Solve([]Source{{Rect: geom.Rect{Center: geom.Point{X: 22.5, Y: 22.5}, W: 8, H: 8}, Power: 150}})
	if err != nil {
		t.Fatal(err)
	}
	corner, err := m.Solve([]Source{{Rect: geom.Rect{Center: geom.Point{X: 5, Y: 5}, W: 8, H: 8}, Power: 150}})
	if err != nil {
		t.Fatal(err)
	}
	if corner.PeakC <= center.PeakC {
		t.Errorf("corner %v should be hotter than center %v", corner.PeakC, center.PeakC)
	}
}

func TestSolveErrors(t *testing.T) {
	m := newTestModel(t, 8)
	if _, err := m.Solve([]Source{{Rect: geom.Rect{Center: geom.Point{X: 5, Y: 5}, W: 1, H: 1}, Power: -5}}); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := m.Solve([]Source{{Rect: geom.Rect{}, Power: 5}}); err == nil {
		t.Error("empty footprint accepted")
	}
}

func TestWarmStartFaster(t *testing.T) {
	m := newTestModel(t, 24)
	src := []Source{centeredSource(150)}
	r1, err := m.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	// Identical re-solve should converge in almost no iterations.
	r2, err := m.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Iterations > r1.Iterations/2+1 {
		t.Errorf("warm start took %d iterations vs cold %d", r2.Iterations, r1.Iterations)
	}
	if math.Abs(r1.PeakC-r2.PeakC) > 1e-3 {
		t.Errorf("re-solve changed answer: %v vs %v", r1.PeakC, r2.PeakC)
	}
}

func TestResultAccessors(t *testing.T) {
	m := newTestModel(t, 16)
	res, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatal(err)
	}
	// CellCenter spans the interposer.
	c00 := res.CellCenter(0, 0)
	if c00.X <= 0 || c00.X >= 45 || c00.Y <= 0 {
		t.Errorf("CellCenter(0,0) = %v", c00)
	}
	// TempAt clamps out-of-range queries.
	_ = res.TempAt(geom.Point{X: -5, Y: 100})
	// MaxRectC over the source footprint equals the global peak here.
	got := res.MaxRectC(geom.Rect{Center: geom.Point{X: 22.5, Y: 22.5}, W: 10, H: 10})
	if math.Abs(got-res.PeakC) > 1e-9 {
		t.Errorf("MaxRectC = %v, want peak %v", got, res.PeakC)
	}
	// A rect smaller than a cell falls back to TempAt.
	tiny := res.MaxRectC(geom.Rect{Center: geom.Point{X: 1, Y: 1}, W: 0.1, H: 0.1})
	if tiny <= 0 {
		t.Errorf("tiny MaxRectC = %v", tiny)
	}
}

func TestEnergyBalance(t *testing.T) {
	// All injected power must leave through the heatsink convection and the
	// board path: sum(g_out * Trise) == total power.
	m := newTestModel(t, 16)
	const P = 123.0
	_, err := m.Solve([]Source{centeredSource(P)})
	if err != nil {
		t.Fatal(err)
	}
	g := m.grid
	conv := 1 / m.stack.ConvectionResistance / float64(g*g)
	board := m.stack.BoardConductance / float64(g*g)
	var out float64
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			out += conv * m.temps[m.sinkNode(i, j)]
			out += board * m.temps[m.devNode(0, i, j)]
		}
	}
	if math.Abs(out-P) > 0.01*P {
		t.Errorf("energy balance: out %v, in %v", out, P)
	}
}

func TestGridResolutionConvergence(t *testing.T) {
	// Peak temperatures at 24, 32, 48 resolution should agree within a
	// couple of degrees (discretization, not divergence). The coarsest grids
	// under-resolve the peak, which is why the paper fixes 64x64.
	var prev float64
	for i, grid := range []int{24, 32, 48} {
		m := newTestModel(t, grid)
		res, err := m.Solve([]Source{centeredSource(150)})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && math.Abs(res.PeakC-prev) > 3 {
			t.Errorf("grid %d peak %v far from previous %v", grid, res.PeakC, prev)
		}
		prev = res.PeakC
	}
}

func BenchmarkSolveGrid32(b *testing.B) {
	m := newTestModel(b, 32)
	src := []Source{
		{Rect: geom.Rect{Center: geom.Point{X: 12, Y: 12}, W: 10, H: 10}, Power: 150},
		{Rect: geom.Rect{Center: geom.Point{X: 32, Y: 32}, W: 10, H: 10}, Power: 150},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src[0].Rect.Center.X = 10 + float64(i%8) // perturb like the SA loop
		if _, err := m.Solve(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGrid64(b *testing.B) {
	m := newTestModel(b, 64)
	src := []Source{
		{Rect: geom.Rect{Center: geom.Point{X: 12, Y: 12}, W: 10, H: 10}, Power: 150},
		{Rect: geom.Rect{Center: geom.Point{X: 32, Y: 32}, W: 10, H: 10}, Power: 150},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src[0].Rect.Center.X = 10 + float64(i%8)
		if _, err := m.Solve(src); err != nil {
			b.Fatal(err)
		}
	}
}
