// Package thermal implements the steady-state thermal simulation used by
// TAP-2.5D to evaluate chiplet placements. It mirrors the HotSpot
// heterogeneous-3D extension the paper uses: the six modeling layers of
// Fig. 1 (organic substrate, C4 bumps, silicon interposer, microbumps,
// chiplet layer, TIM) stacked under a copper heat spreader and an air-forced
// heatsink, discretized on a grid (64×64 by default) and solved as a
// finite-difference thermal resistance network. The chiplet layer is
// heterogeneous: silicon where dies sit, epoxy underfill elsewhere — which is
// exactly what makes spreading chiplets apart lower the peak temperature.
//
// Temperatures are solved as rises over the ambient (45 °C by default); the
// linear system G·T = P is symmetric positive definite and is solved with
// Jacobi-preconditioned conjugate gradients, warm-started from the previous
// solve so that consecutive simulated-annealing steps converge quickly.
package thermal

import (
	"context"
	"fmt"
	"math"

	"tap25d/internal/faultinject"
	"tap25d/internal/geom"
	"tap25d/internal/material"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
	"tap25d/internal/sparse"
)

// Source is a heat source: a rectangular footprint on the chiplet layer
// dissipating Power watts uniformly.
type Source struct {
	Rect  geom.Rect // mm, interposer coordinates
	Power float64   // W
}

// Options configures a Model.
type Options struct {
	// Grid is the number of cells along each axis of every layer
	// (the paper's grid model resolution, default 64).
	Grid int
	// Stack describes the layers and boundary; zero value means
	// material.DefaultStack().
	Stack *material.Stack
	// Tol is the CG relative residual tolerance (default 1e-6, amply tight
	// for ranking placements that differ by tenths of a degree).
	Tol float64
	// MaxIter caps CG iterations. The default is grid-aware: CG on this
	// conductance matrix converges in O(grid) iterations (its condition
	// number grows like grid², and CG needs ~√cond steps), so the budget is
	// maxIterPerGrid·grid — ample headroom over observed cold starts, without
	// the old 20·grid² cap that let a 256×256 divergence burn 1.3M iterations
	// before failing. A converging solve never reaches either cap, so the
	// change cannot alter any converged temperature field.
	MaxIter int
	// Precond selects the CG preconditioner for steady-state solves:
	//
	//	"auto"   (or "") — Jacobi below grid 96, geometric multigrid at or
	//	         above it. The Jacobi choice for the default 64 grid keeps the
	//	         historical solve path byte for byte.
	//	"jacobi" — the diagonal preconditioner fused into the CG loop; cheap
	//	         per iteration, iteration count grows ~linearly with grid.
	//	"ssor"   — symmetric SOR; ~2× fewer iterations than Jacobi at ~2× the
	//	         per-iteration cost (the recovery ladder's fallback rung).
	//	"mg"     — a geometric multigrid V-cycle on the layered grid;
	//	         near-grid-independent iteration counts, worthwhile once the
	//	         per-solve arithmetic dominates its setup (large grids).
	//
	// The selection applies to Solve/SolveContext/SolveBatch; the transient
	// and liquid-cooling solvers keep their historical Jacobi path.
	Precond string
	// DisableIncremental forces every Solve through the full
	// rasterize/assemble/build path. The incremental path produces
	// bit-identical temperatures (the equivalence property test enforces
	// this), so this switch exists for benchmarking and verification, not
	// correctness.
	DisableIncremental bool
	// Counters, when non-nil, receives the model's solve/assembly statistics.
	// The model does not synchronize access: share a Counters only among
	// models used from one goroutine.
	Counters *metrics.Counters
	// Obs, when non-nil, receives solve/assemble span timings and per-solve
	// CG convergence traces. Instrumentation is timing-only: it never touches
	// the arithmetic, so observed and unobserved solves are bit-identical.
	Obs *obs.Observer
	// DisableRecovery turns off the solver recovery ladder: a CG
	// non-convergence fails the solve immediately, as it did before the
	// ladder existed. The ladder never runs on a converging solve, so this
	// switch exists for bit-identity verification and diagnosis, not
	// correctness.
	DisableRecovery bool
	// Inject, when non-nil, is consulted at the faultinject.PointCGSolve and
	// faultinject.PointThermalAssemble injection points, letting tests force
	// solver non-convergence or assembly failure deterministically. A nil
	// Injector costs one pointer test per solve.
	Inject *faultinject.Injector
}

// Model evaluates placements on a fixed interposer. A Model is reusable but
// not safe for concurrent use (it keeps scratch buffers and a warm-start
// temperature field).
type Model struct {
	widthMM, heightMM float64
	grid              int
	stack             material.Stack
	tol               float64
	maxIter           int

	nDevLayers int // device layers (from stack)
	chipLayer  int // index of heterogeneous power layer
	nNodes     int

	cellW, cellH float64 // device cell size, meters
	// spreader/sink geometry (meters)
	sprEdgeW, sprEdgeH   float64
	sinkEdgeW, sinkEdgeH float64
	sprCellW, sprCellH   float64
	sinkCellW, sinkCellH float64
	sprX0, sprY0         float64 // lower-left of spreader relative to interposer LL
	sinkX0, sinkY0       float64

	builder *sparse.Builder
	cov     []float64 // per-cell silicon coverage of the chiplet layer
	kChip   []float64 // per-cell conductivity of the chiplet layer (scratch)
	power   []float64 // RHS (scratch)
	temps   []float64 // solution, reused as warm start
	warm    bool
	// warmGood is the field of the last *converged* solve. CG iterates in
	// place on temps, so an aborted solve leaves temps partial; warmGood is
	// what WarmState hands to checkpoints so a resume can reproduce the
	// warm start the next uninterrupted solve would have used.
	warmGood []float64

	// Incremental fast-path state (see incremental.go). fixed == nil means
	// the next Solve assembles from scratch and freezes the pattern.
	noInc                                bool
	fixed                                *sparse.Fixed
	cg                                   *sparse.CGSolver
	plan                                 []chipDep
	cellDeps                             [][]int32
	prevSources                          []Source
	epoch                                int32
	cellEpoch                            []int32 // last epoch each chiplet-layer cell was re-rasterized
	depEpoch                             []int32 // last epoch each plan entry was recomputed
	slotEpoch                            []int32 // last epoch each CSR value slot was refreshed
	dirtyCells, changedCells, dirtySlots []int32

	// Preconditioner selection (Options.Precond, resolved): one of
	// precondJacobi, precondSSOR, precondMG. The multigrid hierarchy is built
	// lazily on the first mg-preconditioned solve and rebuilt only when the
	// assembled matrix identity changes; valGen counts value-changing
	// assemblies and the hierarchy is numerically re-coarsened whenever it
	// advanced past mgGen, the generation of the last refresh. A refresh
	// costs only a few V-cycles' worth of work, while preconditioning with a
	// stale hierarchy measurably inflates iteration counts at fine grids
	// (anneal-scale footprint moves cross more cell boundaries there), so
	// eager refresh wins; power-only re-solves and scenario batches leave the
	// values untouched and skip it entirely. mgBaseIters remembers the
	// iteration count of the first solve after a refresh as the hierarchy's
	// healthy baseline, and mgStale forces a refresh ahead of any value
	// change when a solve degrades far past that baseline (or needed the
	// recovery ladder) — a backstop for drift the generation counter cannot
	// see, such as fault injection.
	precond     string
	mg          *sparse.Multigrid
	mgA         *sparse.CSR
	valGen      int64
	mgGen       int64
	mgBaseIters int
	mgStale     bool

	ctr       *metrics.Counters
	obs       *obs.Observer
	noRecover bool
	inject    *faultinject.Injector
}

// Preconditioner names (Options.Precond values after "auto" resolution).
const (
	precondJacobi = "jacobi"
	precondSSOR   = "ssor"
	precondMG     = "mg"
)

// autoMGGrid is the grid size at which Precond "auto" switches from Jacobi to
// multigrid. Below it the Jacobi iteration counts are modest and the V-cycle
// setup is pure overhead; at 96+ the near-constant multigrid iteration count
// wins. 96 deliberately leaves the paper's default 64 grid on the historical
// Jacobi path, byte for byte.
const autoMGGrid = 96

// maxIterPerGrid scales the default CG iteration budget: observed cold-start
// Jacobi solves run well under 10·grid iterations, so 40·grid is a 4×+ safety
// margin that still fails a genuinely divergent solve in seconds.
const maxIterPerGrid = 40

// mgStaleIterFactor triggers a hierarchy refresh without a value change:
// when a solve takes more than mgStaleIterFactor× the post-refresh baseline
// iteration count (plus mgStaleIterSlack to ignore warm-start noise on tiny
// baselines), the preconditioner is not doing its job and re-coarsening —
// which costs only a few V-cycles' worth of work — pays for itself
// immediately.
const (
	mgStaleIterFactor = 2
	mgStaleIterSlack  = 4
)

// NewModel builds a model for an interposer of the given dimensions (mm).
func NewModel(widthMM, heightMM float64, opt Options) (*Model, error) {
	if widthMM <= 0 || heightMM <= 0 {
		return nil, fmt.Errorf("thermal: non-positive interposer dimensions %g x %g", widthMM, heightMM)
	}
	grid := opt.Grid
	if grid == 0 {
		grid = 64
	}
	if grid < 2 {
		return nil, fmt.Errorf("thermal: grid resolution %d too small", grid)
	}
	var stack material.Stack
	if opt.Stack != nil {
		stack = *opt.Stack
	} else {
		stack = material.DefaultStack()
	}
	if err := stack.Validate(); err != nil {
		return nil, err
	}
	chip := stack.ChipletLayerIndex()
	if chip < 0 {
		return nil, fmt.Errorf("thermal: stack has no chiplet power layer")
	}

	m := &Model{
		widthMM:    widthMM,
		heightMM:   heightMM,
		grid:       grid,
		stack:      stack,
		tol:        opt.Tol,
		maxIter:    opt.MaxIter,
		nDevLayers: len(stack.Layers),
		chipLayer:  chip,
	}
	if m.tol <= 0 {
		m.tol = 1e-6
	}
	if m.maxIter <= 0 {
		m.maxIter = maxIterPerGrid * grid
	}
	switch opt.Precond {
	case "", "auto":
		if grid >= autoMGGrid {
			m.precond = precondMG
		} else {
			m.precond = precondJacobi
		}
	case precondJacobi, precondSSOR, precondMG:
		m.precond = opt.Precond
	default:
		return nil, fmt.Errorf("thermal: unknown preconditioner %q (want auto, jacobi, ssor or mg)", opt.Precond)
	}
	g2 := grid * grid
	m.nNodes = (m.nDevLayers + 2) * g2 // +spreader +sink

	wm, hm := widthMM*1e-3, heightMM*1e-3
	m.cellW, m.cellH = wm/float64(grid), hm/float64(grid)

	m.sprEdgeW = wm * stack.SpreaderEdgeFactor
	m.sprEdgeH = hm * stack.SpreaderEdgeFactor
	m.sinkEdgeW = wm * stack.SinkEdgeFactor
	m.sinkEdgeH = hm * stack.SinkEdgeFactor
	m.sprCellW, m.sprCellH = m.sprEdgeW/float64(grid), m.sprEdgeH/float64(grid)
	m.sinkCellW, m.sinkCellH = m.sinkEdgeW/float64(grid), m.sinkEdgeH/float64(grid)
	m.sprX0 = (wm - m.sprEdgeW) / 2
	m.sprY0 = (hm - m.sprEdgeH) / 2
	m.sinkX0 = (wm - m.sinkEdgeW) / 2
	m.sinkY0 = (hm - m.sinkEdgeH) / 2

	m.builder = sparse.NewBuilder(m.nNodes)
	m.cov = make([]float64, g2)
	m.kChip = make([]float64, g2)
	m.power = make([]float64, m.nNodes)
	m.temps = make([]float64, m.nNodes)
	m.noInc = opt.DisableIncremental
	m.ctr = opt.Counters
	m.obs = opt.Obs
	m.noRecover = opt.DisableRecovery
	m.inject = opt.Inject
	return m, nil
}

// Grid returns the model's per-axis grid resolution.
func (m *Model) Grid() int { return m.grid }

// AmbientC returns the ambient temperature in Celsius.
func (m *Model) AmbientC() float64 { return m.stack.AmbientC }

// node index helpers: device layers first, then spreader, then sink.
func (m *Model) devNode(layer, i, j int) int { return (layer*m.grid+i)*m.grid + j }
func (m *Model) sprNode(i, j int) int        { return (m.nDevLayers*m.grid+i)*m.grid + j }
func (m *Model) sinkNode(i, j int) int       { return ((m.nDevLayers+1)*m.grid+i)*m.grid + j }

// Result holds a steady-state solution.
type Result struct {
	// PeakC is the peak temperature in Celsius over the chiplet layer.
	PeakC float64
	// PeakAt is the location (mm) of the hottest chiplet-layer cell center.
	PeakAt geom.Point
	// AvgC is the mean chiplet-layer temperature in Celsius.
	AvgC float64
	// AmbientC echoes the model's ambient.
	AmbientC float64
	// Grid is the per-axis resolution of ChipTempC.
	Grid int
	// WidthMM and HeightMM give the interposer extent of the temperature map.
	WidthMM, HeightMM float64
	// ChipTempC is the chiplet-layer temperature map in Celsius, row-major,
	// ChipTempC[i*Grid+j] with i indexing y (bottom to top) and j indexing x.
	ChipTempC []float64
	// Iterations is the CG iteration count of this solve (of the final
	// successful attempt, when the recovery ladder ran).
	Iterations int
	// Recovery is nil on the happy path and describes the escalations taken
	// when the solver recovery ladder rescued a non-converging solve. A
	// degraded result (relaxed tolerance) is flagged on it.
	Recovery *RecoveryInfo
}

// CellCenter returns the interposer-plane location (mm) of cell (i, j) of the
// temperature map.
func (r *Result) CellCenter(i, j int) geom.Point {
	return geom.Point{
		X: (float64(j) + 0.5) * r.WidthMM / float64(r.Grid),
		Y: (float64(i) + 0.5) * r.HeightMM / float64(r.Grid),
	}
}

// TempAt returns the chiplet-layer temperature (°C) at point p (mm), clamped
// to the map bounds.
func (r *Result) TempAt(p geom.Point) float64 {
	j := int(p.X / r.WidthMM * float64(r.Grid))
	i := int(p.Y / r.HeightMM * float64(r.Grid))
	j = clampInt(j, 0, r.Grid-1)
	i = clampInt(i, 0, r.Grid-1)
	return r.ChipTempC[i*r.Grid+j]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MaxRectC returns the peak temperature within the given footprint.
func (r *Result) MaxRectC(rect geom.Rect) float64 {
	peak := math.Inf(-1)
	for i := 0; i < r.Grid; i++ {
		for j := 0; j < r.Grid; j++ {
			if rect.Contains(r.CellCenter(i, j)) && r.ChipTempC[i*r.Grid+j] > peak {
				peak = r.ChipTempC[i*r.Grid+j]
			}
		}
	}
	if math.IsInf(peak, -1) {
		return r.TempAt(rect.Center)
	}
	return peak
}

// overlapFrac computes the fraction of device cell (i, j) covered by rect
// (rect in mm).
func (m *Model) cellRectMM(i, j int) geom.Rect {
	cw := m.widthMM / float64(m.grid)
	ch := m.heightMM / float64(m.grid)
	return geom.RectFromBounds(float64(j)*cw, float64(i)*ch, float64(j+1)*cw, float64(i+1)*ch)
}

func errNegativePower(p float64) error {
	return fmt.Errorf("thermal: negative source power %g", p)
}

func errBadFootprint(r geom.Rect) error {
	return fmt.Errorf("thermal: source with non-positive footprint %v", r)
}

// sourceWindow returns the half-open grid-cell window [i0,i1)×[j0,j1)
// containing source s's footprint.
func (m *Model) sourceWindow(s Source) (i0, i1, j0, j1 int) {
	g := m.grid
	j0 = clampInt(int(s.Rect.MinX()/m.widthMM*float64(g)), 0, g-1)
	j1 = clampInt(int(math.Ceil(s.Rect.MaxX()/m.widthMM*float64(g))), 0, g)
	i0 = clampInt(int(s.Rect.MinY()/m.heightMM*float64(g)), 0, g-1)
	i1 = clampInt(int(math.Ceil(s.Rect.MaxY()/m.heightMM*float64(g))), 0, g)
	return
}

// rasterize fills the per-cell silicon coverage, the chiplet-layer
// conductivity field and the power map from the source list.
func (m *Model) rasterize(sources []Source) error {
	g := m.grid
	kSi := material.Silicon.Conductivity
	base := m.stack.Layers[m.chipLayer].Base.Conductivity
	for i := range m.cov {
		m.cov[i] = 0
	}
	for i := range m.power {
		m.power[i] = 0
	}
	cellAreaMM := (m.widthMM / float64(g)) * (m.heightMM / float64(g))
	for _, s := range sources {
		if s.Power < 0 {
			return errNegativePower(s.Power)
		}
		if s.Rect.W <= 0 || s.Rect.H <= 0 {
			return errBadFootprint(s.Rect)
		}
		perArea := s.Power / s.Rect.Area()
		i0, i1, j0, j1 := m.sourceWindow(s)
		for i := i0; i < i1; i++ {
			for j := j0; j < j1; j++ {
				ov := m.cellRectMM(i, j).OverlapArea(s.Rect)
				if ov <= 0 {
					continue
				}
				frac := ov / cellAreaMM
				m.cov[i*g+j] = math.Min(1, m.cov[i*g+j]+frac)
				m.power[m.devNode(m.chipLayer, i, j)] += perArea * ov
			}
		}
	}
	for i, c := range m.cov {
		m.kChip[i] = base + (kSi-base)*c
	}
	return nil
}

// Solve computes the steady-state temperature field for the given sources.
// Sources must lie on the interposer; power is injected into the chiplet
// layer, whose per-cell conductivity is silicon where covered by any source
// footprint and underfill elsewhere (area-weighted in partial cells).
//
// By default consecutive solves take the incremental path: the conductance
// matrix is assembled once, and later source lists update only the matrix
// values and power cells under the changed footprints. The temperatures are
// bit-identical to the full rebuild either way.
func (m *Model) Solve(sources []Source) (*Result, error) {
	return m.SolveContext(context.Background(), sources)
}

// SolveContext is Solve with cooperative cancellation: the conjugate-gradient
// loop polls ctx and aborts with ctx's error when it is done. An uncancelled
// SolveContext is bit-identical to Solve. After a canceled solve the model's
// warm start is invalidated, so a later Solve restarts from the cold-start
// guess.
func (m *Model) SolveContext(ctx context.Context, sources []Source) (*Result, error) {
	sp := m.obs.StartSpanCtx(ctx, obs.PhaseThermalSolve, "")
	res, err := m.solveSpanned(ctx, sp, sources)
	sp.End()
	return res, err
}

// solveSpanned is the SolveContext body with sp (nil when observability is
// disabled) as the parent for assemble sub-spans.
func (m *Model) solveSpanned(ctx context.Context, sp *obs.Span, sources []Source) (*Result, error) {
	a, cg, err := m.prepareAssembled(sp, sources)
	if err != nil {
		return nil, err
	}
	return m.solveAssembled(ctx, a, cg)
}

// prepareAssembled rasterizes sources and brings the conductance matrix up to
// date, via the full rebuild or the incremental delta path, and returns the
// assembled system. It is the shared front half of Solve and SolveBatch.
func (m *Model) prepareAssembled(sp *obs.Span, sources []Source) (*sparse.CSR, *sparse.CGSolver, error) {
	if err := m.inject.Hit(faultinject.PointThermalAssemble); err != nil {
		return nil, nil, fmt.Errorf("thermal: %w", err)
	}
	if m.noInc {
		asp := sp.Child(obs.PhaseThermalAssemble, "full")
		err := m.rasterize(sources)
		var a *sparse.CSR
		if err == nil {
			m.assemble()
			a = m.builder.Build()
			m.valGen++
			if m.ctr != nil {
				m.ctr.FullAssembles++
			}
		}
		asp.End()
		if err != nil {
			return nil, nil, err
		}
		return a, nil, nil
	}

	if m.fixed == nil {
		asp := sp.Child(obs.PhaseThermalAssemble, "init")
		err := m.initIncremental(sources)
		asp.End()
		if err != nil {
			return nil, nil, err
		}
		m.valGen++
	} else {
		asp := sp.Child(obs.PhaseThermalAssemble, "delta")
		changed, err := m.rasterizeDelta(sources)
		if err == nil {
			m.assembleDelta(changed)
			if len(changed) > 0 {
				m.valGen++
			}
			if m.ctr != nil {
				if len(changed) == 0 {
					m.ctr.SkippedAssembles++
				} else {
					m.ctr.DeltaAssembles++
				}
			}
			if len(changed) == 0 {
				asp.SetLabel("skip")
			}
		}
		asp.End()
		if err != nil {
			return nil, nil, err
		}
	}
	m.prevSources = append(m.prevSources[:0], sources...)
	return m.fixed.Mat, m.cg, nil
}

// ensureMG returns the multigrid hierarchy for the assembled matrix a,
// building it on first use (or when the matrix identity changed — a full
// rebuild or a DisableIncremental solve produces a fresh CSR) and numerically
// refreshing it after every value-changing assembly. The symbolic
// coarsening is cached process-wide by (geometry, pattern), so replicas and
// worker pools solving the same stack share it.
func (m *Model) ensureMG(a *sparse.CSR) (*sparse.Multigrid, error) {
	if m.mg == nil || m.mgA != a {
		geo := sparse.GridGeometry{Layers: m.nDevLayers + 2, Nx: m.grid, Ny: m.grid}
		mg, err := sparse.NewMultigrid(a, geo, sparse.MGOptions{})
		if err != nil {
			return nil, err
		}
		m.mg, m.mgA, m.mgGen = mg, a, m.valGen
		m.mgBaseIters, m.mgStale = 0, false
		if m.ctr != nil {
			m.ctr.MGSetups++
		}
		m.obs.Add("mg_setup", 1)
		return mg, nil
	}
	if m.mgStale || m.valGen != m.mgGen {
		if err := m.mg.Refresh(); err != nil {
			return nil, err
		}
		m.mgGen = m.valGen
		m.mgBaseIters, m.mgStale = 0, false
		if m.ctr != nil {
			m.ctr.MGSetups++
		}
		m.obs.Add("mg_setup", 1)
	}
	return m.mg, nil
}

// WarmState returns a copy of the temperature field of the model's last
// *converged* solve, or nil when no solve has converged yet. Together with
// RestoreWarmState it lets a checkpointed placement run resume
// bit-compatibly: the CG trajectory depends on the initial guess, so the
// field must travel with the annealer's checkpoint. The last converged field
// survives a canceled solve (which iterates in place and leaves the live
// warm-start buffer partial), so a checkpoint written after a mid-solve
// interruption still restores the warm start the interrupted step would
// have used.
func (m *Model) WarmState() []float64 {
	if m.warmGood == nil {
		return nil
	}
	s := make([]float64, len(m.warmGood))
	copy(s, m.warmGood)
	return s
}

// RestoreWarmState seeds the next solve's CG initial guess with a field
// previously captured by WarmState. Passing nil (or an empty slice) resets
// the model to a cold start.
func (m *Model) RestoreWarmState(temps []float64) error {
	if len(temps) == 0 {
		m.warm = false
		m.warmGood = nil
		return nil
	}
	if len(temps) != m.nNodes {
		return fmt.Errorf("thermal: warm state has %d nodes, model has %d", len(temps), m.nNodes)
	}
	copy(m.temps, temps)
	m.warm = true
	m.warmGood = append(m.warmGood[:0], temps...)
	return nil
}

// solveAssembled runs CG on the assembled system and extracts the result.
// When cg is non-nil its scratch buffers are reused; otherwise a one-shot
// solve runs on a (bit-identical, just slower to set up).
func (m *Model) solveAssembled(ctx context.Context, a *sparse.CSR, cg *sparse.CGSolver) (*Result, error) {
	if !m.warm {
		m.coldGuess()
	}
	opt := sparse.CGOptions{Tol: m.tol, MaxIter: m.maxIter, Inject: m.inject}
	var mgCycles0 int64
	if m.precond == precondMG {
		mg, err := m.ensureMG(a)
		if err != nil {
			m.warm = false
			return nil, fmt.Errorf("thermal: %w", err)
		}
		opt.Precond = mg
		mgCycles0 = mg.Cycles()
	}
	iters, err := m.runCG(ctx, a, cg, opt)
	var rec *RecoveryInfo
	if err != nil && recoverable(ctx, err) && !m.noRecover {
		rec, iters, err = m.recoverSolve(ctx, a, cg, opt)
	}
	if m.precond == precondMG {
		if d := m.mg.Cycles() - mgCycles0; d > 0 {
			if m.ctr != nil {
				m.ctr.MGCycles += d
			}
			m.obs.Add("mg_cycles", d)
		}
		switch {
		case err != nil || rec != nil:
			// A failed or ladder-rescued solve means the hierarchy is not
			// doing its job; re-coarsen before the next one.
			m.mgStale = true
		case m.mgBaseIters == 0:
			m.mgBaseIters = iters
		case iters > mgStaleIterFactor*m.mgBaseIters+mgStaleIterSlack:
			m.mgStale = true
		}
	}
	if err != nil {
		m.warm = false
		return nil, fmt.Errorf("thermal: %w", err)
	}
	m.warm = true
	m.warmGood = append(m.warmGood[:0], m.temps...)
	if m.ctr != nil {
		m.ctr.ThermalSolves++
		m.ctr.CGIterations += int64(iters)
	}
	res := m.buildResult(m.temps, iters)
	res.Recovery = rec
	return res, nil
}

// buildResult extracts the chiplet-layer temperature map and its summary
// statistics from a solved temperature-rise field.
func (m *Model) buildResult(temps []float64, iters int) *Result {
	g := m.grid
	g2 := g * g
	res := &Result{
		AmbientC:  m.stack.AmbientC,
		Grid:      g,
		WidthMM:   m.widthMM,
		HeightMM:  m.heightMM,
		ChipTempC: make([]float64, g2),
	}
	res.Iterations = iters
	peak, sum := math.Inf(-1), 0.0
	pi, pj := 0, 0
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			t := m.stack.AmbientC + temps[m.devNode(m.chipLayer, i, j)]
			res.ChipTempC[i*g+j] = t
			sum += t
			if t > peak {
				peak, pi, pj = t, i, j
			}
		}
	}
	res.PeakC = peak
	res.AvgC = sum / float64(g2)
	res.PeakAt = res.CellCenter(pi, pj)
	return res
}

// layerK returns the conductivity of cell (i, j) in device layer l.
func (m *Model) layerK(l, i, j int) float64 {
	if l == m.chipLayer {
		return m.kChip[i*m.grid+j]
	}
	return m.stack.Layers[l].Base.Conductivity
}

// Conductance formulas, shared verbatim between the full assembly and the
// incremental delta path so both produce bit-identical values for the same
// kChip field.

// latCondE is the lateral conductance between cells (i,j) and (i,j+1) of
// layer l: two half-cell resistances in series.
func (m *Model) latCondE(l, i, j int) float64 {
	t := m.stack.Layers[l].Thickness
	k := m.layerK(l, i, j)
	ke := m.layerK(l, i, j+1)
	return t * m.cellH / (m.cellW/(2*k) + m.cellW/(2*ke))
}

// latCondN is the lateral conductance between cells (i,j) and (i+1,j).
func (m *Model) latCondN(l, i, j int) float64 {
	t := m.stack.Layers[l].Thickness
	k := m.layerK(l, i, j)
	kn := m.layerK(l, i+1, j)
	return t * m.cellW / (m.cellH/(2*k) + m.cellH/(2*kn))
}

// vertCond is the vertical conductance between cell (i,j) of layers l and l+1.
func (m *Model) vertCond(l, i, j int) float64 {
	t := m.stack.Layers[l].Thickness
	tu := m.stack.Layers[l+1].Thickness
	k := m.layerK(l, i, j)
	ku := m.layerK(l+1, i, j)
	return m.cellW * m.cellH / (t/(2*k) + tu/(2*ku))
}

// sprCouplingCond is the conductance from top device cell (i,j) into the
// spreader cell above it.
func (m *Model) sprCouplingCond(i, j int) float64 {
	top := m.nDevLayers - 1
	tTop := m.stack.Layers[top].Thickness
	kCu := material.Copper.Conductivity
	tSpr := m.stack.SpreaderThickness
	k := m.layerK(top, i, j)
	return m.cellW * m.cellH / (tTop/(2*k) + tSpr/(2*kCu))
}

// assemble rebuilds the conductance matrix for the current kChip field.
func (m *Model) assemble() { m.assembleFull(false) }

// assembleFull rebuilds the full coordinate list in the builder. With record
// set, it additionally notes every kChip-dependent entry in m.plan so the
// delta path can later rewrite exactly those values.
func (m *Model) assembleFull(record bool) {
	b := m.builder
	b.Reset()
	g := m.grid
	cw, ch := m.cellW, m.cellH

	// Device layers: lateral + vertical conductances.
	for l := 0; l < m.nDevLayers; l++ {
		onChip := l == m.chipLayer
		belowChip := l+1 == m.chipLayer
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				n := m.devNode(l, i, j)
				// Lateral east: series of two half-cells.
				if j+1 < g {
					gcond := m.latCondE(l, i, j)
					if record && onChip {
						m.addSymRecorded(depLatE, i, j, n, m.devNode(l, i, j+1), gcond)
					} else {
						b.AddSym(n, m.devNode(l, i, j+1), gcond)
					}
				}
				// Lateral north.
				if i+1 < g {
					gcond := m.latCondN(l, i, j)
					if record && onChip {
						m.addSymRecorded(depLatN, i, j, n, m.devNode(l, i+1, j), gcond)
					} else {
						b.AddSym(n, m.devNode(l, i+1, j), gcond)
					}
				}
				// Vertical up to next device layer.
				if l+1 < m.nDevLayers {
					gcond := m.vertCond(l, i, j)
					if record && (onChip || belowChip) {
						kind := depVertDn
						if onChip {
							kind = depVertUp
						}
						m.addSymRecorded(kind, i, j, n, m.devNode(l+1, i, j), gcond)
					} else {
						b.AddSym(n, m.devNode(l+1, i, j), gcond)
					}
				}
			}
		}
	}

	// Substrate bottom: weak board path to ambient, distributed uniformly.
	if m.stack.BoardConductance > 0 {
		per := m.stack.BoardConductance / float64(g*g)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				b.AddDiag(m.devNode(0, i, j), per)
			}
		}
	}

	// TIM top -> spreader: couple each top device cell to the spreader cell
	// containing its center.
	top := m.nDevLayers - 1
	kCu := material.Copper.Conductivity
	tSpr := m.stack.SpreaderThickness
	chipOnTop := top == m.chipLayer
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			cx := (float64(j) + 0.5) * cw
			cy := (float64(i) + 0.5) * ch
			sj := clampInt(int((cx-m.sprX0)/m.sprCellW), 0, g-1)
			si := clampInt(int((cy-m.sprY0)/m.sprCellH), 0, g-1)
			gcond := m.sprCouplingCond(i, j)
			if record && chipOnTop {
				m.addSymRecorded(depSpr, i, j, m.devNode(top, i, j), m.sprNode(si, sj), gcond)
			} else {
				b.AddSym(m.devNode(top, i, j), m.sprNode(si, sj), gcond)
			}
		}
	}

	// Spreader lateral + spreader->sink vertical.
	sprA := m.sprCellW * m.sprCellH
	tSink := m.stack.SinkThickness
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			n := m.sprNode(i, j)
			if j+1 < g {
				b.AddSym(n, m.sprNode(i, j+1), kCu*tSpr*m.sprCellH/m.sprCellW)
			}
			if i+1 < g {
				b.AddSym(n, m.sprNode(i+1, j), kCu*tSpr*m.sprCellW/m.sprCellH)
			}
			// Spreader cell center -> containing sink cell.
			cx := m.sprX0 + (float64(j)+0.5)*m.sprCellW
			cy := m.sprY0 + (float64(i)+0.5)*m.sprCellH
			sj := clampInt(int((cx-m.sinkX0)/m.sinkCellW), 0, g-1)
			si := clampInt(int((cy-m.sinkY0)/m.sinkCellH), 0, g-1)
			gcond := sprA / (tSpr/(2*kCu) + tSink/(2*kCu))
			b.AddSym(n, m.sinkNode(si, sj), gcond)
		}
	}

	// Sink lateral + convection to ambient. The fin factor accounts for fin
	// mass spreading heat across the base plate.
	fin := m.stack.SinkFinFactor
	if fin <= 0 {
		fin = 1
	}
	tSinkLat := tSink * fin
	convPerCell := 1 / m.stack.ConvectionResistance / float64(g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			n := m.sinkNode(i, j)
			if j+1 < g {
				b.AddSym(n, m.sinkNode(i, j+1), kCu*tSinkLat*m.sinkCellH/m.sinkCellW)
			}
			if i+1 < g {
				b.AddSym(n, m.sinkNode(i+1, j), kCu*tSinkLat*m.sinkCellW/m.sinkCellH)
			}
			b.AddDiag(n, convPerCell)
		}
	}
}
