package thermal

import (
	"math"
	"testing"

	"tap25d/internal/geom"
	"tap25d/internal/material"
	"tap25d/internal/metrics"
	"tap25d/internal/systems"

	"tap25d/internal/chiplet"
)

// caseSources turns a system placement into thermal sources, mirroring
// placer.Sources without importing the placer (which depends on thermal).
func caseSources(sys *chiplet.System, p chiplet.Placement) []Source {
	srcs := make([]Source, len(sys.Chiplets))
	for i := range sys.Chiplets {
		srcs[i] = Source{Rect: p.Rect(sys, i), Power: sys.Chiplets[i].Power}
	}
	return srcs
}

// shelfPlacement lays the system's chiplets out in deterministic left-to-right
// shelves with a 1mm gap — not wirelength-optimized, just a valid in-bounds
// arrangement for systems without a published placement.
func shelfPlacement(sys *chiplet.System) chiplet.Placement {
	p := chiplet.NewPlacement(len(sys.Chiplets))
	const gap = 1.0
	x, y, rowH := gap, gap, 0.0
	for i, c := range sys.Chiplets {
		if x+c.W+gap > sys.InterposerW {
			x = gap
			y += rowH + gap
			rowH = 0
		}
		p.Centers[i] = geom.Point{X: x + c.W/2, Y: y + c.H/2}
		x += c.W + gap
		if c.H > rowH {
			rowH = c.H
		}
	}
	return p
}

// precondCase is one scenario of the preconditioner agreement property test.
type precondCase struct {
	name    string
	w, h    float64
	grid    int
	sources []Source
}

func precondCases() []precondCase {
	var cases []precondCase
	for _, s := range []struct {
		name string
		sys  *chiplet.System
		p    chiplet.Placement
	}{
		{"multigpu", systems.MultiGPU(), shelfPlacement(systems.MultiGPU())},
		{"cpudram", systems.CPUDRAM(), systems.CPUDRAMOriginal()},
		{"ascend910", systems.Ascend910(), systems.Ascend910Original()},
	} {
		cases = append(cases, precondCase{
			name: s.name, w: s.sys.InterposerW, h: s.sys.InterposerH,
			grid: 64, sources: caseSources(s.sys, s.p),
		})
	}
	// A generated 128×128 scenario beyond the paper case studies: a dense
	// 3×3 array of heterogeneous dies on a 60mm interposer.
	var gen []Source
	for i := 0; i < 9; i++ {
		r, c := i/3, i%3
		gen = append(gen, Source{
			Rect: geom.Rect{
				Center: geom.Point{X: 10 + 20*float64(c), Y: 10 + 20*float64(r)},
				W:      8 + float64(i%4), H: 12 - float64(i%3),
			},
			Power: 40 + 25*float64(i%5),
		})
	}
	cases = append(cases, precondCase{name: "generated128", w: 60, h: 60, grid: 128, sources: gen})
	return cases
}

func solveWith(t *testing.T, pc precondCase, precond string) *Result {
	t.Helper()
	stack := material.DefaultStackFor(pc.w, pc.h)
	m, err := NewModel(pc.w, pc.h, Options{Grid: pc.grid, Stack: &stack, Precond: precond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(pc.sources)
	if err != nil {
		t.Fatalf("%s %s: %v", pc.name, precond, err)
	}
	return res
}

// TestPrecondAgreement: every preconditioner solves the same SPD system to
// the same tolerance, so the temperature fields must agree on all three
// paper case studies and a generated 128-grid scenario — to well within the
// accuracy the tolerance implies, independent of iteration counts.
func TestPrecondAgreement(t *testing.T) {
	for _, pc := range precondCases() {
		t.Run(pc.name, func(t *testing.T) {
			ref := solveWith(t, pc, "jacobi")
			for _, pre := range []string{"ssor", "mg"} {
				got := solveWith(t, pc, pre)
				if math.Abs(got.PeakC-ref.PeakC) > 0.02 {
					t.Errorf("%s PeakC %.4f vs jacobi %.4f", pre, got.PeakC, ref.PeakC)
				}
				worst := 0.0
				for i := range got.ChipTempC {
					if d := math.Abs(got.ChipTempC[i] - ref.ChipTempC[i]); d > worst {
						worst = d
					}
				}
				if worst > 0.02 {
					t.Errorf("%s field deviates %.4f C from jacobi", pre, worst)
				}
			}
		})
	}
}

// TestPrecondAutoGrid64BitIdentical guards the seed's byte-for-byte behavior:
// "auto" (and the zero value) resolve to the historical Jacobi path below
// grid 96, so a grid-64 solve must be bit-identical to an explicit default
// model — same iteration count, same bits in every cell.
func TestPrecondAutoGrid64BitIdentical(t *testing.T) {
	pc := precondCases()[1] // cpudram at grid 64
	def := solveWith(t, pc, "")
	auto := solveWith(t, pc, "auto")
	if auto.Iterations != def.Iterations {
		t.Fatalf("auto took %d iterations, default %d", auto.Iterations, def.Iterations)
	}
	for i := range def.ChipTempC {
		if math.Float64bits(auto.ChipTempC[i]) != math.Float64bits(def.ChipTempC[i]) {
			t.Fatalf("cell %d differs: %v vs %v", i, auto.ChipTempC[i], def.ChipTempC[i])
		}
	}
}

// TestPrecondAutoSelectsMGAtFineGrids: at grid ≥ 96 "auto" runs the multigrid
// path, visible through the mg_cycles/mg_setups counters.
func TestPrecondAutoSelectsMGAtFineGrids(t *testing.T) {
	var ctr metrics.Counters
	stack := material.DefaultStackFor(45, 45)
	m, err := NewModel(45, 45, Options{Grid: 96, Stack: &stack, Precond: "auto", Counters: &ctr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(precondCases()[1].sources); err != nil {
		t.Fatal(err)
	}
	if ctr.MGSetups == 0 || ctr.MGCycles == 0 {
		t.Fatalf("auto at grid 96 did not run multigrid: setups=%d cycles=%d", ctr.MGSetups, ctr.MGCycles)
	}
}

func TestPrecondUnknownRejected(t *testing.T) {
	stack := material.DefaultStackFor(45, 45)
	if _, err := NewModel(45, 45, Options{Grid: 32, Stack: &stack, Precond: "ilu"}); err == nil {
		t.Fatal("unknown preconditioner accepted")
	}
}
