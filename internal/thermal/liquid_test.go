package thermal

import (
	"testing"

	"tap25d/internal/geom"
)

func TestLiquidValidation(t *testing.T) {
	m := newTestModel(t, 8)
	src := []Source{centeredSource(100)}
	if _, err := m.SolveLiquid(src, LiquidCooling{FlowLPM: -1}); err == nil {
		t.Error("negative flow accepted")
	}
	if _, err := m.SolveLiquid(src, LiquidCooling{HTC: -5}); err == nil {
		t.Error("negative HTC accepted")
	}
	if _, err := m.SolveLiquid([]Source{{Power: -1, Rect: geom.Rect{Center: geom.Point{X: 4, Y: 4}, W: 1, H: 1}}}, LiquidCooling{}); err == nil {
		t.Error("negative power accepted")
	}
}

func TestLiquidMuchCoolerThanAir(t *testing.T) {
	// The point of expensive cooling: the same compact hot placement runs
	// dramatically cooler under a microchannel cold plate.
	m := newTestModel(t, 16)
	src := []Source{
		{Rect: geom.Rect{Center: geom.Point{X: 19, Y: 22.5}, W: 10, H: 10}, Power: 200},
		{Rect: geom.Rect{Center: geom.Point{X: 30, Y: 22.5}, W: 10, H: 10}, Power: 200},
	}
	air, err := m.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	liq, err := m.SolveLiquid(src, LiquidCooling{})
	if err != nil {
		t.Fatal(err)
	}
	if liq.PeakC >= air.PeakC-5 {
		t.Errorf("liquid %v C should be well below air %v C", liq.PeakC, air.PeakC)
	}
	if liq.PeakC <= liq.AmbientC-25 {
		t.Errorf("liquid peak %v C implausibly cold", liq.PeakC)
	}
}

func TestLiquidOutletSideWarmer(t *testing.T) {
	// Caloric heating: with a symmetric source, the downstream (right) half
	// of the die must be at least as warm as the upstream half.
	m := newTestModel(t, 16)
	// High power and a gentle flow make the gradient visible.
	src := []Source{centeredSource(400)}
	res, err := m.SolveLiquid(src, LiquidCooling{FlowLPM: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Grid
	var left, right float64
	for i := 0; i < g; i++ {
		for j := 0; j < g/2; j++ {
			left += res.ChipTempC[i*g+j]
			right += res.ChipTempC[i*g+(g-1-j)]
		}
	}
	if right <= left {
		t.Errorf("downstream side (%v) not warmer than upstream (%v)", right, left)
	}
}

func TestLiquidMoreFlowIsCooler(t *testing.T) {
	m := newTestModel(t, 12)
	src := []Source{centeredSource(300)}
	slow, err := m.SolveLiquid(src, LiquidCooling{FlowLPM: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.SolveLiquid(src, LiquidCooling{FlowLPM: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fast.PeakC >= slow.PeakC {
		t.Errorf("more flow should cool: %v vs %v", fast.PeakC, slow.PeakC)
	}
}

func TestLiquidDoesNotCorruptAirSolves(t *testing.T) {
	m := newTestModel(t, 12)
	src := []Source{centeredSource(150)}
	ref, err := m.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SolveLiquid(src, LiquidCooling{}); err != nil {
		t.Fatal(err)
	}
	again, err := m.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	if d := ref.PeakC - again.PeakC; d > 0.01 || d < -0.01 {
		t.Errorf("air solve changed after liquid solve: %v vs %v", ref.PeakC, again.PeakC)
	}
}
