package thermal

import (
	"fmt"
	"math"

	"tap25d/internal/material"
	"tap25d/internal/sparse"
)

// Transient holds a transient simulation's trace: the peak chiplet-layer
// temperature over time after a power step applied to a package initially at
// ambient. This extends the paper's steady-state methodology with the boost-
// residency question: how long can a placement sustain a power level before
// crossing the critical temperature?
type Transient struct {
	// TimesS are the sample times in seconds.
	TimesS []float64
	// PeakC is the peak chiplet-layer temperature at each sample.
	PeakC []float64
	// SteadyPeakC is the corresponding steady-state peak (the t -> inf
	// limit), from a steady solve of the same sources.
	SteadyPeakC float64
}

// SolveTransient integrates the thermal network C dT/dt + G T = P with
// backward Euler from ambient (T = 0 rise) over nsteps steps of dt seconds,
// recording the peak temperature after every step. The implicit scheme is
// unconditionally stable, so dt can span the millisecond package time
// constants without resolving the microsecond die ones.
func (m *Model) SolveTransient(sources []Source, dt float64, nsteps int) (*Transient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive time step %g", dt)
	}
	if nsteps <= 0 {
		return nil, fmt.Errorf("thermal: non-positive step count %d", nsteps)
	}
	m.invalidateIncremental() // overwrites the fields the fixed matrix is keyed on
	if err := m.rasterize(sources); err != nil {
		return nil, err
	}
	m.assemble()
	a := m.builder.Build()

	// Per-node heat capacity (J/K).
	capv := m.capacities()
	coverDt := make([]float64, m.nNodes)
	for i := range coverDt {
		coverDt[i] = capv[i] / dt
	}
	if err := a.AddToDiag(coverDt); err != nil {
		return nil, fmt.Errorf("thermal: %w", err)
	}

	g := m.grid
	t := make([]float64, m.nNodes) // rise over ambient, starts at 0
	rhs := make([]float64, m.nNodes)
	out := &Transient{}
	for step := 1; step <= nsteps; step++ {
		for i := range rhs {
			rhs[i] = m.power[i] + coverDt[i]*t[i]
		}
		if _, err := sparse.SolveCG(a, t, rhs, sparse.CGOptions{Tol: m.tol, MaxIter: m.maxIter}); err != nil {
			return nil, fmt.Errorf("thermal: transient step %d: %w", step, err)
		}
		peak := math.Inf(-1)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				if v := t[m.devNode(m.chipLayer, i, j)]; v > peak {
					peak = v
				}
			}
		}
		out.TimesS = append(out.TimesS, float64(step)*dt)
		out.PeakC = append(out.PeakC, m.stack.AmbientC+peak)
	}
	// Steady-state reference (invalidates the transient warm-start state,
	// so refresh the solver's cache deliberately).
	m.warm = false
	steady, err := m.Solve(sources)
	if err != nil {
		return nil, err
	}
	out.SteadyPeakC = steady.PeakC
	return out, nil
}

// TimeToThresholdS returns the first sample time at which the peak crossed
// thresholdC, or (0, false) if it never did within the simulated horizon.
func (tr *Transient) TimeToThresholdS(thresholdC float64) (float64, bool) {
	for i, p := range tr.PeakC {
		if p >= thresholdC {
			return tr.TimesS[i], true
		}
	}
	return 0, false
}

// capacities returns each node's lumped heat capacity in J/K.
func (m *Model) capacities() []float64 {
	g := m.grid
	caps := make([]float64, m.nNodes)
	cellA := m.cellW * m.cellH
	for l := 0; l < m.nDevLayers; l++ {
		vol := cellA * m.stack.Layers[l].Thickness
		base := m.stack.Layers[l].Base.VolumetricHeatCapacity
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				vc := base
				if l == m.chipLayer {
					// Mix silicon and underfill by coverage.
					c := m.cov[i*g+j]
					vc = base + (material.Silicon.VolumetricHeatCapacity-base)*c
				}
				caps[m.devNode(l, i, j)] = vc * vol
			}
		}
	}
	cu := material.Copper.VolumetricHeatCapacity
	sprVol := m.sprCellW * m.sprCellH * m.stack.SpreaderThickness
	sinkVol := m.sinkCellW * m.sinkCellH * m.stack.SinkThickness
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			caps[m.sprNode(i, j)] = cu * sprVol
			caps[m.sinkNode(i, j)] = cu * sinkVol
		}
	}
	return caps
}
