package thermal

import (
	"context"
	"errors"
	"fmt"

	"tap25d/internal/obs"
	"tap25d/internal/sparse"
)

// relaxedTolFactor is how much the last-resort rung of the recovery ladder
// loosens the CG tolerance. 100× on the default 1e-6 still ranks placements
// that differ by tenths of a degree; the result is flagged as degraded so
// callers can decide whether to trust it.
const relaxedTolFactor = 100

// RecoveryInfo records the escalations the solver recovery ladder took to
// rescue one non-converging solve. It is attached to the Result only when the
// ladder actually ran, so a nil Recovery is the happy-path signature.
type RecoveryInfo struct {
	// ColdRestarts counts retries from the uniform cold-start guess after
	// the warm-started attempt failed to converge.
	ColdRestarts int `json:"cold_restarts"`
	// PrecondFallback reports that the solve escalated to the stronger
	// SSOR-preconditioned CG variant.
	PrecondFallback bool `json:"precond_fallback"`
	// RelaxedTol is the loosened tolerance of the last-resort rung, zero when
	// that rung never ran.
	RelaxedTol float64 `json:"relaxed_tol,omitempty"`
	// Degraded marks a result accepted under the relaxed tolerance: usable
	// for ranking, but below the configured accuracy.
	Degraded bool `json:"degraded"`
}

// coldGuess resets the temperature field to the uniform cold-start guess.
func (m *Model) coldGuess() {
	for i := range m.temps {
		m.temps[i] = 1
	}
}

// runCG performs one CG attempt on the assembled system with the model's
// observability trace attached, reusing cg's scratch when available. The
// model's resolved preconditioner picks the solver variant: "ssor" routes to
// the standalone SSOR-preconditioned CG, "mg" arrives via opt.Precond (set by
// solveAssembled), and "jacobi" is the historical fused path.
func (m *Model) runCG(ctx context.Context, a *sparse.CSR, cg *sparse.CGSolver, opt sparse.CGOptions) (int, error) {
	var trace *obs.CGTrace
	if m.obs.Enabled() {
		trace = m.obs.StartCG()
		opt.OnIteration = trace.Observe
	}
	var iters int
	var err error
	switch {
	case m.precond == precondSSOR && opt.Precond == nil:
		iters, err = sparse.SolveCGSSOR(ctx, a, m.temps, m.power, opt)
	case cg != nil:
		iters, err = cg.SolveContext(ctx, m.temps, m.power, opt)
	default:
		iters, err = sparse.SolveCGContext(ctx, a, m.temps, m.power, opt)
	}
	m.obs.EndCG(trace, iters, err == nil)
	return iters, err
}

// recoverable reports whether err is the kind of solve failure the recovery
// ladder can help with: an exhausted iteration budget on a live context.
// Structural failures (non-SPD matrix, dimension mismatch) and cancellation
// never retry.
func recoverable(ctx context.Context, err error) bool {
	return ctx.Err() == nil && errors.Is(err, sparse.ErrNoConvergence)
}

// recoverSolve is the solver recovery ladder, entered after a warm-started CG
// attempt failed to converge. It escalates through bounded rungs:
//
//  1. Cold restart: discard the (possibly misleading) warm state and retry
//     the same solve — same preconditioner, Jacobi by default — from the
//     uniform guess.
//  2. Preconditioner fallback: retry with the stronger SSOR-preconditioned
//     CG variant, again from a cold start.
//  3. Relaxed tolerance: one last SSOR attempt at relaxedTolFactor× the
//     configured tolerance; success is flagged Degraded on the result.
//
// Each escalation increments its metrics counter and obs extension counter
// and runs under a labeled span. The first rung to converge wins; when all
// rungs fail the original failure class (ErrNoConvergence) propagates.
func (m *Model) recoverSolve(ctx context.Context, a *sparse.CSR, cg *sparse.CGSolver, opt sparse.CGOptions) (*RecoveryInfo, int, error) {
	rec := &RecoveryInfo{}

	// Rung 1: cold restart.
	sp := m.obs.StartSpanCtx(ctx, obs.PhaseThermalSolve, "recover:cold_restart")
	m.coldGuess()
	rec.ColdRestarts++
	if m.ctr != nil {
		m.ctr.CGRetries++
	}
	m.obs.Add("cg_retries", 1)
	iters, err := m.runCG(ctx, a, cg, opt)
	sp.End()
	if err == nil {
		return rec, iters, nil
	}
	if !recoverable(ctx, err) {
		return rec, iters, err
	}

	// Rung 2: SSOR-preconditioned fallback, cold start.
	sp = m.obs.StartSpanCtx(ctx, obs.PhaseThermalSolve, "recover:ssor")
	m.coldGuess()
	rec.PrecondFallback = true
	if m.ctr != nil {
		m.ctr.CGFallbackPrecond++
	}
	m.obs.Add("cg_fallback_precond", 1)
	iters, err = sparse.SolveCGSSOR(ctx, a, m.temps, m.power, opt)
	sp.End()
	if err == nil {
		return rec, iters, nil
	}
	if !recoverable(ctx, err) {
		return rec, iters, err
	}

	// Rung 3: relaxed tolerance, last resort.
	sp = m.obs.StartSpanCtx(ctx, obs.PhaseThermalSolve, "recover:relaxed_tol")
	m.coldGuess()
	relaxed := opt
	relaxed.Tol = opt.Tol * relaxedTolFactor
	rec.RelaxedTol = relaxed.Tol
	iters, err = sparse.SolveCGSSOR(ctx, a, m.temps, m.power, relaxed)
	sp.End()
	if err == nil {
		rec.Degraded = true
		return rec, iters, nil
	}
	return rec, iters, fmt.Errorf("recovery ladder exhausted: %w", err)
}
