package thermal

import (
	"context"
	"testing"

	"tap25d/internal/geom"
	"tap25d/internal/obs"
)

// TestDisabledObsOverheadGuard bounds the cost of disabled observability on
// the hottest path in the repo. When no Observer is attached, each solve pays
// only the nil-path instrumentation sequence below (a handful of pointer
// tests); this guard measures that sequence and the cheapest solve regime of
// BenchmarkThermalSolveIncremental (warm re-solve: no assembly, immediate
// convergence) and fails if instrumentation exceeds 1% of a solve. The nil
// path must also stay allocation-free.
func TestDisabledObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks the solve path")
	}

	// The exact per-solve nil-path sequence SolveContext executes when
	// m.obs == nil: solve span, assemble child span with a label rewrite,
	// the Enabled gate, and the CG trace teardown.
	nilPath := func() {
		var o *obs.Observer
		sp := o.StartSpanCtx(context.Background(), obs.PhaseThermalSolve, "")
		asp := sp.Child(obs.PhaseThermalAssemble, "delta")
		asp.SetLabel("skip")
		asp.End()
		if o.Enabled() {
			t.Fatal("nil observer reports enabled")
		}
		var trace *obs.CGTrace
		o.EndCG(trace, 0, true)
		sp.End()
	}
	if allocs := testing.AllocsPerRun(1000, nilPath); allocs != 0 {
		t.Fatalf("disabled-observability path allocates %.1f objects per solve", allocs)
	}

	instr := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nilPath()
		}
	})

	src := []Source{
		{Rect: geom.Rect{Center: geom.Point{X: 12, Y: 12}, W: 8, H: 6}, Power: 90},
		{Rect: geom.Rect{Center: geom.Point{X: 30, Y: 14}, W: 5, H: 9}, Power: 140},
		{Rect: geom.Rect{Center: geom.Point{X: 15, Y: 32}, W: 7, H: 7}, Power: 60},
	}
	m := newTestModel(t, 24)
	if _, err := m.Solve(src); err != nil {
		t.Fatal(err)
	}
	solve := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Solve(src); err != nil {
				b.Fatal(err)
			}
		}
	})

	instrNS := float64(instr.NsPerOp())
	solveNS := float64(solve.NsPerOp())
	if solveNS <= 0 {
		t.Fatalf("degenerate solve timing: %v ns/op", solveNS)
	}
	ratio := instrNS / solveNS
	t.Logf("instrumentation %.1f ns/solve, warm solve %.0f ns, overhead %.4f%%",
		instrNS, solveNS, 100*ratio)
	if ratio > 0.01 {
		t.Fatalf("disabled observability costs %.2f%% of a warm solve (limit 1%%): %v ns vs %v ns",
			100*ratio, instrNS, solveNS)
	}
}
