package thermal

import (
	"context"
	"errors"
	"testing"

	"tap25d/internal/geom"
)

func offsetSource(dx float64) Source {
	return Source{Rect: geom.Rect{Center: geom.Point{X: 22.5 + dx, Y: 22.5}, W: 10, H: 10}, Power: 80}
}

// TestWarmStateRoundTrip is the checkpoint/resume contract at the thermal
// layer: restoring a captured warm-start field into a fresh model and solving
// the next source list must reproduce the continuing model's solution bit for
// bit (the fresh model full-assembles where the continuing one delta-updates;
// the two assembly paths are bitwise-identical by construction).
func TestWarmStateRoundTrip(t *testing.T) {
	s1 := []Source{offsetSource(0)}
	s2 := []Source{offsetSource(3)}

	cont := newTestModel(t, 16)
	if _, err := cont.Solve(s1); err != nil {
		t.Fatal(err)
	}
	ws := cont.WarmState()
	if ws == nil {
		t.Fatal("no warm state after a solve")
	}
	contRes, err := cont.Solve(s2)
	if err != nil {
		t.Fatal(err)
	}

	fresh := newTestModel(t, 16)
	if fresh.WarmState() != nil {
		t.Fatal("fresh model claims a warm state")
	}
	if err := fresh.RestoreWarmState(ws); err != nil {
		t.Fatal(err)
	}
	freshRes, err := fresh.Solve(s2)
	if err != nil {
		t.Fatal(err)
	}

	if freshRes.PeakC != contRes.PeakC {
		t.Fatalf("restored-warm peak %v != continuing peak %v", freshRes.PeakC, contRes.PeakC)
	}
	for i := range contRes.ChipTempC {
		if freshRes.ChipTempC[i] != contRes.ChipTempC[i] {
			t.Fatalf("temperature field differs at cell %d: %v vs %v", i, freshRes.ChipTempC[i], contRes.ChipTempC[i])
		}
	}
}

// TestWarmStateSurvivesAbortedSolve: CG iterates in place, so a canceled
// solve leaves the live warm buffer partial — but WarmState must keep
// reporting the last converged field, or a checkpoint written after a
// mid-solve SIGINT would resume from a cold (or garbage) start and break
// bit-compatibility with the uninterrupted run.
func TestWarmStateSurvivesAbortedSolve(t *testing.T) {
	m := newTestModel(t, 16)
	if _, err := m.Solve([]Source{offsetSource(0)}); err != nil {
		t.Fatal(err)
	}
	ws1 := m.WarmState()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SolveContext(ctx, []Source{offsetSource(3)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext error = %v, want context.Canceled", err)
	}
	ws2 := m.WarmState()
	if ws2 == nil {
		t.Fatal("aborted solve discarded the last converged warm state")
	}
	for i := range ws1 {
		if ws1[i] != ws2[i] {
			t.Fatalf("warm state mutated by aborted solve at node %d: %v vs %v", i, ws1[i], ws2[i])
		}
	}
}

func TestRestoreWarmStateValidation(t *testing.T) {
	m := newTestModel(t, 16)
	if err := m.RestoreWarmState([]float64{1, 2, 3}); err == nil {
		t.Error("wrong-length warm state accepted")
	}
	if err := m.RestoreWarmState(nil); err != nil {
		t.Errorf("empty warm state (cold reset) rejected: %v", err)
	}
	if m.WarmState() != nil {
		t.Error("cold reset left a warm state behind")
	}
}

// TestSolveContextCanceled: a canceled context aborts the thermal solve with
// an error that wraps context.Canceled.
func TestSolveContextCanceled(t *testing.T) {
	m := newTestModel(t, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SolveContext(ctx, []Source{centeredSource(50)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext error = %v, want context.Canceled", err)
	}
}

// TestSolveContextUncanceledMatchesSolve: context plumbing must not perturb
// the solution.
func TestSolveContextUncanceledMatchesSolve(t *testing.T) {
	a := newTestModel(t, 16)
	b := newTestModel(t, 16)
	src := []Source{centeredSource(50)}
	ra, err := a.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.SolveContext(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra.ChipTempC {
		if ra.ChipTempC[i] != rb.ChipTempC[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, ra.ChipTempC[i], rb.ChipTempC[i])
		}
	}
}
