package thermal

import (
	"fmt"
	"math"

	"tap25d/internal/sparse"
)

// LiquidCooling models the "more advanced but expensive cooling technology"
// the paper's introduction contrasts with thermally-aware placement (it
// cites variable-flow liquid cooling, Coskun et al. DATE'10): a microchannel
// cold plate replaces the air heatsink. Two effects distinguish it from the
// air model:
//
//   - a much lower convective resistance between the plate and the coolant,
//     applied per cell over the plate area; and
//   - caloric heating of the coolant: water entering at InletC warms as it
//     absorbs heat flowing left to right across the plate, so downstream
//     cells see warmer coolant (the classic liquid-cooling outlet gradient).
//
// The solve alternates the linear conduction solve with the coolant energy
// balance until the coolant field converges (2-4 iterations in practice).
type LiquidCooling struct {
	// InletC is the coolant inlet temperature (default 25).
	InletC float64
	// FlowLPM is the volumetric flow in liters/minute (default 1.0).
	FlowLPM float64
	// HTC is the cell-level heat transfer coefficient between the cold
	// plate and the coolant in W/(m²·K) (default 20000, microchannel-class).
	HTC float64
}

// withDefaults fills zero fields.
func (lc LiquidCooling) withDefaults() LiquidCooling {
	if lc.InletC == 0 {
		lc.InletC = 25
	}
	if lc.FlowLPM == 0 {
		lc.FlowLPM = 1.0
	}
	if lc.HTC == 0 {
		lc.HTC = 20000
	}
	return lc
}

// waterHeatCapacity is the volumetric heat capacity of water, J/(m³·K).
const waterHeatCapacity = 4.18e6

// SolveLiquid computes the steady-state field with a liquid cold plate in
// place of the air heatsink. The returned Result is in the same format as
// Solve (ambient remains the reporting reference).
func (m *Model) SolveLiquid(sources []Source, lc LiquidCooling) (*Result, error) {
	lc = lc.withDefaults()
	if lc.FlowLPM <= 0 || lc.HTC <= 0 {
		return nil, fmt.Errorf("thermal: non-positive liquid cooling parameters")
	}
	m.invalidateIncremental() // overwrites the fields the fixed matrix is keyed on
	if err := m.rasterize(sources); err != nil {
		return nil, err
	}
	g := m.grid
	g2 := g * g

	// Assemble the conduction network but replace the sink's uniform
	// convection with the cold-plate HTC per cell.
	m.assembleLiquid(lc)
	a := m.builder.Build()

	// Coolant temperature per sink column (flow left to right): fixed-point
	// iteration between the conduction solve and the coolant energy balance.
	cellA := m.sinkCellW * m.sinkCellH
	gCell := lc.HTC * cellA                              // W/K per sink cell
	mdotCp := lc.FlowLPM / 1000 / 60 * waterHeatCapacity // W/K total stream
	coolRise := make([]float64, g)                       // column coolant rise over ambient
	inletRise := lc.InletC - m.stack.AmbientC            // may be negative (coolant below ambient)
	t := make([]float64, m.nNodes)
	rhs := make([]float64, m.nNodes)

	var res *Result
	for iter := 0; iter < 6; iter++ {
		// RHS: power plus the coolant boundary at its current temperature:
		// g*(T - Tcool) means +g on the diagonal (already assembled) and
		// +g*Tcool on the RHS.
		copy(rhs, m.power)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				rhs[m.sinkNode(i, j)] += gCell * (inletRise + coolRise[j])
			}
		}
		if _, err := sparse.SolveCG(a, t, rhs, sparse.CGOptions{Tol: m.tol, MaxIter: m.maxIter}); err != nil {
			return nil, fmt.Errorf("thermal: liquid solve: %w", err)
		}
		// Coolant energy balance: heat absorbed in columns 0..j-1 warms the
		// stream entering column j by (absorbed upstream)/(mdot*cp).
		newRise := make([]float64, g)
		absorbed := 0.0
		for j := 0; j < g; j++ {
			newRise[j] = absorbed / mdotCp // caloric rise over the inlet
			coolantOverAmbient := inletRise + newRise[j]
			var colHeat float64
			for i := 0; i < g; i++ {
				plate := t[m.sinkNode(i, j)]
				colHeat += gCell * (plate - coolantOverAmbient)
			}
			absorbed += math.Max(0, colHeat)
		}
		// Convergence check.
		var delta float64
		for j := 0; j < g; j++ {
			delta = math.Max(delta, math.Abs(newRise[j]-coolRise[j]))
		}
		copy(coolRise, newRise)
		if delta < 0.01 {
			break
		}
	}
	m.warm = false // liquid scratch state must not warm-start air solves

	res = &Result{
		AmbientC:  m.stack.AmbientC,
		Grid:      g,
		WidthMM:   m.widthMM,
		HeightMM:  m.heightMM,
		ChipTempC: make([]float64, g2),
	}
	peak, sum := math.Inf(-1), 0.0
	pi, pj := 0, 0
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			tv := m.stack.AmbientC + t[m.devNode(m.chipLayer, i, j)]
			res.ChipTempC[i*g+j] = tv
			sum += tv
			if tv > peak {
				peak, pi, pj = tv, i, j
			}
		}
	}
	res.PeakC = peak
	res.AvgC = sum / float64(g2)
	res.PeakAt = res.CellCenter(pi, pj)
	return res, nil
}

// assembleLiquid mirrors assemble but ends the stack in a cold plate: the
// sink layer keeps its copper lateral conduction while its uniform
// convection diagonal is replaced by the per-cell cold-plate conductance
// (the coolant temperature itself enters through the RHS).
func (m *Model) assembleLiquid(lc LiquidCooling) {
	// Reuse the standard assembly, then exchange the sink boundary: the
	// standard version added 1/Rconv/g² per sink cell; add the difference to
	// reach HTC*cellA.
	m.assemble()
	g := m.grid
	cellA := m.sinkCellW * m.sinkCellH
	gCell := lc.HTC * cellA
	stdPerCell := 1 / m.stack.ConvectionResistance / float64(g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			m.builder.AddDiag(m.sinkNode(i, j), gCell-stdPerCell)
		}
	}
}
