package thermal

import (
	"math"
	"math/rand"
	"testing"

	"tap25d/internal/geom"
	"tap25d/internal/material"
)

// TestSuperposition: with identical footprints (hence identical conductivity
// fields), the temperature rise is linear in the power vector, so the rise of
// a combined load equals the sum of the individual rises.
func TestSuperposition(t *testing.T) {
	m := newTestModel(t, 16)
	rectA := geom.Rect{Center: geom.Point{X: 15, Y: 15}, W: 8, H: 8}
	rectB := geom.Rect{Center: geom.Point{X: 30, Y: 30}, W: 6, H: 10}

	// All three solves keep both footprints present (zero power keeps the
	// silicon in place) so the conductance matrix is identical.
	onlyA, err := m.Solve([]Source{{Rect: rectA, Power: 120}, {Rect: rectB, Power: 0}})
	if err != nil {
		t.Fatal(err)
	}
	onlyB, err := m.Solve([]Source{{Rect: rectA, Power: 0}, {Rect: rectB, Power: 80}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := m.Solve([]Source{{Rect: rectA, Power: 120}, {Rect: rectB, Power: 80}})
	if err != nil {
		t.Fatal(err)
	}
	amb := m.AmbientC()
	for i := range both.ChipTempC {
		sum := (onlyA.ChipTempC[i] - amb) + (onlyB.ChipTempC[i] - amb)
		got := both.ChipTempC[i] - amb
		if math.Abs(got-sum) > 0.02*(1+math.Abs(sum)) {
			t.Fatalf("superposition violated at cell %d: %v vs %v", i, got, sum)
		}
	}
}

// TestReciprocityOfInfluence: in a symmetric resistive network, the
// temperature rise at B due to power at A equals the rise at A due to the
// same power at B (thermal reciprocity), given symmetric geometry.
func TestReciprocityOfInfluence(t *testing.T) {
	m := newTestModel(t, 16)
	// Two identical footprints placed symmetrically about the center.
	rectA := geom.Rect{Center: geom.Point{X: 14, Y: 22.5}, W: 6, H: 6}
	rectB := geom.Rect{Center: geom.Point{X: 31, Y: 22.5}, W: 6, H: 6}

	atB, err := m.Solve([]Source{{Rect: rectA, Power: 100}, {Rect: rectB, Power: 0}})
	if err != nil {
		t.Fatal(err)
	}
	riseAtB := atB.TempAt(rectB.Center) - m.AmbientC()

	atA, err := m.Solve([]Source{{Rect: rectA, Power: 0}, {Rect: rectB, Power: 100}})
	if err != nil {
		t.Fatal(err)
	}
	riseAtA := atA.TempAt(rectA.Center) - m.AmbientC()

	if math.Abs(riseAtA-riseAtB) > 0.02*(riseAtA+riseAtB)/2 {
		t.Errorf("reciprocity violated: %v vs %v", riseAtA, riseAtB)
	}
}

// TestPeakInsideSourceFootprint: for a single source, the hottest cell must
// lie within (or adjacent to) its footprint wherever it is placed.
func TestPeakInsideSourceFootprint(t *testing.T) {
	m := newTestModel(t, 24)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		w := 4 + rng.Float64()*10
		h := 4 + rng.Float64()*10
		cx := w/2 + rng.Float64()*(45-w)
		cy := h/2 + rng.Float64()*(45-h)
		rect := geom.Rect{Center: geom.Point{X: cx, Y: cy}, W: w, H: h}
		res, err := m.Solve([]Source{{Rect: rect, Power: 100}})
		if err != nil {
			t.Fatal(err)
		}
		// Allow one cell of slack for discretization.
		slack := 45.0 / 24
		grown := geom.Rect{Center: rect.Center, W: rect.W + 2*slack, H: rect.H + 2*slack}
		if !grown.Contains(res.PeakAt) {
			t.Fatalf("trial %d: peak at %v outside source %v", trial, res.PeakAt, rect)
		}
	}
}

// TestAmbientShiftsUniformly: changing the ambient temperature shifts every
// cell by the same offset (the solver works in rise space).
func TestAmbientShiftsUniformly(t *testing.T) {
	base, err := NewModel(45, 45, Options{Grid: 12})
	if err != nil {
		t.Fatal(err)
	}
	stack := material.DefaultStack()
	stack.AmbientC = 60
	hot, err := NewModel(45, 45, Options{Grid: 12, Stack: &stack})
	if err != nil {
		t.Fatal(err)
	}
	src := []Source{centeredSource(100)}
	r1, err := base.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := hot.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((r2.PeakC-r1.PeakC)-15) > 1e-6 {
		t.Errorf("ambient shift: peaks %v and %v differ by %v, want 15",
			r1.PeakC, r2.PeakC, r2.PeakC-r1.PeakC)
	}
}
