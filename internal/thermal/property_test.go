package thermal

import (
	"math"
	"math/rand"
	"testing"

	"tap25d/internal/geom"
	"tap25d/internal/material"
)

// TestSuperposition: with identical footprints (hence identical conductivity
// fields), the temperature rise is linear in the power vector, so the rise of
// a combined load equals the sum of the individual rises.
func TestSuperposition(t *testing.T) {
	m := newTestModel(t, 16)
	rectA := geom.Rect{Center: geom.Point{X: 15, Y: 15}, W: 8, H: 8}
	rectB := geom.Rect{Center: geom.Point{X: 30, Y: 30}, W: 6, H: 10}

	// All three solves keep both footprints present (zero power keeps the
	// silicon in place) so the conductance matrix is identical.
	onlyA, err := m.Solve([]Source{{Rect: rectA, Power: 120}, {Rect: rectB, Power: 0}})
	if err != nil {
		t.Fatal(err)
	}
	onlyB, err := m.Solve([]Source{{Rect: rectA, Power: 0}, {Rect: rectB, Power: 80}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := m.Solve([]Source{{Rect: rectA, Power: 120}, {Rect: rectB, Power: 80}})
	if err != nil {
		t.Fatal(err)
	}
	amb := m.AmbientC()
	for i := range both.ChipTempC {
		sum := (onlyA.ChipTempC[i] - amb) + (onlyB.ChipTempC[i] - amb)
		got := both.ChipTempC[i] - amb
		if math.Abs(got-sum) > 0.02*(1+math.Abs(sum)) {
			t.Fatalf("superposition violated at cell %d: %v vs %v", i, got, sum)
		}
	}
}

// TestReciprocityOfInfluence: in a symmetric resistive network, the
// temperature rise at B due to power at A equals the rise at A due to the
// same power at B (thermal reciprocity), given symmetric geometry.
func TestReciprocityOfInfluence(t *testing.T) {
	m := newTestModel(t, 16)
	// Two identical footprints placed symmetrically about the center.
	rectA := geom.Rect{Center: geom.Point{X: 14, Y: 22.5}, W: 6, H: 6}
	rectB := geom.Rect{Center: geom.Point{X: 31, Y: 22.5}, W: 6, H: 6}

	atB, err := m.Solve([]Source{{Rect: rectA, Power: 100}, {Rect: rectB, Power: 0}})
	if err != nil {
		t.Fatal(err)
	}
	riseAtB := atB.TempAt(rectB.Center) - m.AmbientC()

	atA, err := m.Solve([]Source{{Rect: rectA, Power: 0}, {Rect: rectB, Power: 100}})
	if err != nil {
		t.Fatal(err)
	}
	riseAtA := atA.TempAt(rectA.Center) - m.AmbientC()

	if math.Abs(riseAtA-riseAtB) > 0.02*(riseAtA+riseAtB)/2 {
		t.Errorf("reciprocity violated: %v vs %v", riseAtA, riseAtB)
	}
}

// TestPeakInsideSourceFootprint: for a single source, the hottest cell must
// lie within (or adjacent to) its footprint wherever it is placed.
func TestPeakInsideSourceFootprint(t *testing.T) {
	m := newTestModel(t, 24)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		w := 4 + rng.Float64()*10
		h := 4 + rng.Float64()*10
		cx := w/2 + rng.Float64()*(45-w)
		cy := h/2 + rng.Float64()*(45-h)
		rect := geom.Rect{Center: geom.Point{X: cx, Y: cy}, W: w, H: h}
		res, err := m.Solve([]Source{{Rect: rect, Power: 100}})
		if err != nil {
			t.Fatal(err)
		}
		// Allow one cell of slack for discretization.
		slack := 45.0 / 24
		grown := geom.Rect{Center: rect.Center, W: rect.W + 2*slack, H: rect.H + 2*slack}
		if !grown.Contains(res.PeakAt) {
			t.Fatalf("trial %d: peak at %v outside source %v", trial, res.PeakAt, rect)
		}
	}
}

// TestIncrementalMatchesFullAssembly: the incremental solve path (delta
// rasterization + in-place matrix refresh) must agree with the full
// rasterize/assemble/build path cell by cell across a long random perturbation
// sequence. Both models see the identical source history, so their CG warm
// starts line up and the comparison isolates the assembly machinery; the
// incremental path is designed to be bit-identical, and this test enforces a
// 1e-9 relative ceiling per cell.
func TestIncrementalMatchesFullAssembly(t *testing.T) {
	inc, err := NewModel(45, 45, Options{Grid: 20})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewModel(45, 45, Options{Grid: 20, DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	srcs := []Source{
		{Rect: geom.Rect{Center: geom.Point{X: 12, Y: 12}, W: 8, H: 6}, Power: 90},
		{Rect: geom.Rect{Center: geom.Point{X: 30, Y: 14}, W: 5, H: 9}, Power: 140},
		{Rect: geom.Rect{Center: geom.Point{X: 15, Y: 32}, W: 7, H: 7}, Power: 60},
		{Rect: geom.Rect{Center: geom.Point{X: 33, Y: 33}, W: 10, H: 4}, Power: 0},
	}
	for step := 0; step < 50; step++ {
		switch k := rng.Intn(len(srcs)); rng.Intn(5) {
		case 0: // nudge by a fraction of a cell — exercises tiny deltas
			srcs[k].Rect.Center.X += (rng.Float64() - 0.5) * 3
			srcs[k].Rect.Center.Y += (rng.Float64() - 0.5) * 3
		case 1: // rotate
			srcs[k].Rect.W, srcs[k].Rect.H = srcs[k].Rect.H, srcs[k].Rect.W
		case 2: // jump anywhere, including partially off-chip (clipped)
			srcs[k].Rect.Center = geom.Point{X: rng.Float64() * 45, Y: rng.Float64() * 45}
		case 3: // change power, sometimes to zero
			srcs[k].Power = float64(rng.Intn(4)) * 55
		case 4: // no-op — the matrix-unchanged fast path must still agree
		}
		ri, err := inc.Solve(srcs)
		if err != nil {
			t.Fatalf("step %d: incremental: %v", step, err)
		}
		rf, err := full.Solve(srcs)
		if err != nil {
			t.Fatalf("step %d: full: %v", step, err)
		}
		for c := range rf.ChipTempC {
			got, want := ri.ChipTempC[c], rf.ChipTempC[c]
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("step %d: cell %d: incremental %v vs full %v", step, c, got, want)
			}
		}
		if math.Abs(ri.PeakC-rf.PeakC) > 1e-9*math.Max(1, math.Abs(rf.PeakC)) {
			t.Fatalf("step %d: peak %v vs %v", step, ri.PeakC, rf.PeakC)
		}
	}
}

// BenchmarkThermalSolveIncremental contrasts the three solve regimes the
// annealer sees: a cold first solve (full assembly), re-solving unchanged
// sources (matrix untouched, warm start converges immediately), and a small
// move (delta rasterization over two footprints).
func BenchmarkThermalSolveIncremental(b *testing.B) {
	mkSources := func(dx float64) []Source {
		return []Source{
			{Rect: geom.Rect{Center: geom.Point{X: 12 + dx, Y: 12}, W: 8, H: 6}, Power: 90},
			{Rect: geom.Rect{Center: geom.Point{X: 30, Y: 14}, W: 5, H: 9}, Power: 140},
			{Rect: geom.Rect{Center: geom.Point{X: 15, Y: 32}, W: 7, H: 7}, Power: 60},
		}
	}
	b.Run("cold", func(b *testing.B) {
		src := mkSources(0)
		for i := 0; i < b.N; i++ {
			m := newTestModel(b, 24)
			if _, err := m.Solve(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		m := newTestModel(b, 24)
		src := mkSources(0)
		if _, err := m.Solve(src); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Solve(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		m := newTestModel(b, 24)
		if _, err := m.Solve(mkSources(0)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Solve(mkSources(float64(i%2) * 1.5)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestAmbientShiftsUniformly: changing the ambient temperature shifts every
// cell by the same offset (the solver works in rise space).
func TestAmbientShiftsUniformly(t *testing.T) {
	base, err := NewModel(45, 45, Options{Grid: 12})
	if err != nil {
		t.Fatal(err)
	}
	stack := material.DefaultStack()
	stack.AmbientC = 60
	hot, err := NewModel(45, 45, Options{Grid: 12, Stack: &stack})
	if err != nil {
		t.Fatal(err)
	}
	src := []Source{centeredSource(100)}
	r1, err := base.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := hot.Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((r2.PeakC-r1.PeakC)-15) > 1e-6 {
		t.Errorf("ambient shift: peaks %v and %v differ by %v, want 15",
			r1.PeakC, r2.PeakC, r2.PeakC-r1.PeakC)
	}
}
