package thermal

import (
	"errors"
	"math"
	"testing"

	"tap25d/internal/faultinject"
	"tap25d/internal/metrics"
	"tap25d/internal/sparse"
)

func recoveryModel(t *testing.T, inj *faultinject.Injector, ctr *metrics.Counters, disable bool) *Model {
	t.Helper()
	m, err := NewModel(45, 45, Options{
		Grid: 16, Inject: inj, Counters: ctr, DisableRecovery: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRecoveryColdRestart: a single injected non-convergence is rescued by
// rung 1 (cold restart), and — because no warm state existed yet — the
// recovered result is bit-identical to the uninjected solve.
func TestRecoveryColdRestart(t *testing.T) {
	ref := recoveryModel(t, nil, nil, false)
	want, err := ref.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCGSolve, faultinject.Spec{At: 1})
	var ctr metrics.Counters
	m := recoveryModel(t, inj, &ctr, false)
	got, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatalf("recovery ladder did not rescue the solve: %v", err)
	}
	if got.Recovery == nil || got.Recovery.ColdRestarts != 1 {
		t.Fatalf("Recovery = %+v, want one cold restart", got.Recovery)
	}
	if got.Recovery.PrecondFallback || got.Recovery.Degraded {
		t.Errorf("over-escalated: %+v", got.Recovery)
	}
	if ctr.CGRetries != 1 || ctr.CGFallbackPrecond != 0 {
		t.Errorf("counters = %+v, want CGRetries=1 CGFallbackPrecond=0", ctr)
	}
	for i := range want.ChipTempC {
		if want.ChipTempC[i] != got.ChipTempC[i] {
			t.Fatalf("cold-restart result diverges at cell %d: %v != %v",
				i, got.ChipTempC[i], want.ChipTempC[i])
		}
	}
}

// TestRecoverySSORFallback: two consecutive failures escalate to the
// SSOR-preconditioned rung, which solves to the same configured tolerance.
func TestRecoverySSORFallback(t *testing.T) {
	ref := recoveryModel(t, nil, nil, false)
	want, err := ref.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCGSolve, faultinject.Spec{Every: 1, Count: 2})
	var ctr metrics.Counters
	m := recoveryModel(t, inj, &ctr, false)
	got, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatalf("SSOR rung did not rescue the solve: %v", err)
	}
	if got.Recovery == nil || !got.Recovery.PrecondFallback {
		t.Fatalf("Recovery = %+v, want PrecondFallback", got.Recovery)
	}
	if got.Recovery.Degraded {
		t.Error("SSOR rung marked result degraded")
	}
	if ctr.CGRetries != 1 || ctr.CGFallbackPrecond != 1 {
		t.Errorf("counters = %+v, want CGRetries=1 CGFallbackPrecond=1", ctr)
	}
	for i := range want.ChipTempC {
		if math.Abs(want.ChipTempC[i]-got.ChipTempC[i]) > 1e-4 {
			t.Fatalf("SSOR result diverges at cell %d: %v != %v",
				i, got.ChipTempC[i], want.ChipTempC[i])
		}
	}
}

// TestRecoveryRelaxedTolLastResort: three consecutive failures reach the
// relaxed-tolerance rung and the result is flagged degraded.
func TestRecoveryRelaxedTolLastResort(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCGSolve, faultinject.Spec{Every: 1, Count: 3})
	var ctr metrics.Counters
	m := recoveryModel(t, inj, &ctr, false)
	got, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatalf("relaxed-tolerance rung did not rescue the solve: %v", err)
	}
	rec := got.Recovery
	if rec == nil || !rec.Degraded {
		t.Fatalf("Recovery = %+v, want Degraded", rec)
	}
	if math.Abs(rec.RelaxedTol-1e-4) > 1e-9 {
		t.Errorf("RelaxedTol = %v, want ~1e-4 (%v× the 1e-6 default)", rec.RelaxedTol, relaxedTolFactor)
	}
	if rec.ColdRestarts != 1 || !rec.PrecondFallback {
		t.Errorf("ladder skipped rungs: %+v", rec)
	}
	// Even degraded, the field must be physically sane.
	if got.PeakC <= m.AmbientC() || got.PeakC > 500 {
		t.Errorf("degraded peak %v implausible", got.PeakC)
	}
}

// TestRecoveryLadderExhausted: a persistent fault defeats every rung and the
// final error keeps both the non-convergence class and the injection marker.
func TestRecoveryLadderExhausted(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCGSolve, faultinject.Spec{Every: 1})
	m := recoveryModel(t, inj, nil, false)
	_, err := m.Solve([]Source{centeredSource(100)})
	if err == nil {
		t.Fatal("persistent fault produced a result")
	}
	if !errors.Is(err, sparse.ErrNoConvergence) {
		t.Errorf("error %v lost ErrNoConvergence", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error %v lost ErrInjected", err)
	}
	if got := inj.Fired(faultinject.PointCGSolve); got != 4 {
		t.Errorf("injector fired %d times, want 4 (initial + 3 rungs)", got)
	}
}

// TestRecoveryDisabled: with DisableRecovery the first non-convergence fails
// the solve, exactly as before the ladder existed.
func TestRecoveryDisabled(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointCGSolve, faultinject.Spec{At: 1})
	var ctr metrics.Counters
	m := recoveryModel(t, inj, &ctr, true)
	_, err := m.Solve([]Source{centeredSource(100)})
	if !errors.Is(err, sparse.ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
	if ctr.CGRetries != 0 || ctr.CGFallbackPrecond != 0 {
		t.Errorf("disabled ladder incremented counters: %+v", ctr)
	}
	// The model must stay usable: the next (uninjected) solve succeeds.
	res, err := m.Solve([]Source{centeredSource(100)})
	if err != nil {
		t.Fatalf("solve after failed solve: %v", err)
	}
	if res.Recovery != nil {
		t.Errorf("clean solve carries Recovery %+v", res.Recovery)
	}
}

// TestRecoveryAfterWarmState: a failure on a warm-started solve discards the
// warm field; the cold restart still converges and later solves keep working.
func TestRecoveryAfterWarmState(t *testing.T) {
	inj := faultinject.New(1)
	var ctr metrics.Counters
	m := recoveryModel(t, inj, &ctr, false)
	if _, err := m.Solve([]Source{centeredSource(100)}); err != nil {
		t.Fatal(err)
	}
	// Second solve is warm-started; inject a failure into it.
	inj.Arm(faultinject.PointCGSolve, faultinject.Spec{At: 1})
	res, err := m.Solve([]Source{centeredSource(120)})
	if err != nil {
		t.Fatalf("warm-start recovery failed: %v", err)
	}
	if res.Recovery == nil || res.Recovery.ColdRestarts != 1 {
		t.Fatalf("Recovery = %+v, want one cold restart", res.Recovery)
	}
	// Cross-check against a fresh model: same sources, cold solve.
	ref := recoveryModel(t, nil, nil, false)
	if _, err := ref.Solve([]Source{centeredSource(100)}); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve([]Source{centeredSource(120)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakC-want.PeakC) > 1e-3 {
		t.Errorf("recovered peak %v, reference %v", res.PeakC, want.PeakC)
	}
}

// TestAssembleInjection: the thermal-assembly injection point surfaces as a
// clean error (the kind the placer's step-skip budget absorbs), and the model
// recovers on the next solve.
func TestAssembleInjection(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.PointThermalAssemble, faultinject.Spec{At: 1})
	m := recoveryModel(t, inj, nil, false)
	_, err := m.Solve([]Source{centeredSource(100)})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected assembly fault, got %v", err)
	}
	if _, err := m.Solve([]Source{centeredSource(100)}); err != nil {
		t.Fatalf("solve after injected assembly fault: %v", err)
	}
}
