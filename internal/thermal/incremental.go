package thermal

import (
	"math"

	"tap25d/internal/material"
	"tap25d/internal/sparse"
)

// The incremental fast path exploits two invariants of the placement loop:
// the sparsity pattern of the conductance matrix never changes (the grid and
// stack are fixed), and a single simulated-annealing move only changes the
// chiplet-layer conductivity under one chiplet's old and new footprint. The
// model therefore assembles the matrix once into a sparse.Fixed, records
// which coordinate entries ("terms") depend on each cell's kChip, and on
// every later solve (1) re-rasterizes coverage/power only over the union of
// the previous and current footprints, and (2) rewrites only the terms and
// CSR value slots whose kChip inputs changed.
//
// Bit-reproducibility is load-bearing: the issue requires identical
// simulated-annealing trajectories, so every shortcut here must produce
// values bit-identical to the full rebuild. Three properties guarantee it:
// conductances are recomputed through the same helper functions the full
// assembly uses (same expression, same inputs → same bits); per-cell
// rasterization re-accumulates over sources in their original index order;
// and sparse.Fixed refreshes each value slot in the exact order a full Build
// would have summed its duplicates.

// chipDep kinds: which conductance formula a recorded entry uses.
const (
	depLatE   uint8 = iota // chip-layer lateral east: reads kChip(i,j), kChip(i,j+1)
	depLatN                // chip-layer lateral north: reads kChip(i,j), kChip(i+1,j)
	depVertDn              // vertical (chipLayer-1)->chipLayer: reads kChip(i,j)
	depVertUp              // vertical chipLayer->(chipLayer+1): reads kChip(i,j)
	depSpr                 // chip top -> spreader coupling: reads kChip(i,j)
)

// chipDep records one kChip-dependent conductance: its formula kind, the cell
// it is anchored at, and the index of the first of the four coordinate terms
// its AddSym produced.
type chipDep struct {
	kind uint8
	i, j int16
	term int32
}

// recordDep notes the next AddSym as kChip-dependent: its four terms start at
// the builder's current entry count.
func (m *Model) recordDep(kind uint8, i, j int) {
	m.plan = append(m.plan, chipDep{kind: kind, i: int16(i), j: int16(j), term: int32(m.builder.NumEntries())})
}

// addSymRecorded records the dependency and adds the symmetric conductance.
// AddSym drops zero values, which would desynchronize the recorded term
// indices — a zero conductance means a zero material conductivity, which the
// stack validation rejects, so this is a programming-error check.
func (m *Model) addSymRecorded(kind uint8, i, j, n1, n2 int, g float64) {
	m.recordDep(kind, i, j)
	m.builder.AddSym(n1, n2, g)
	if m.builder.NumEntries() != int(m.plan[len(m.plan)-1].term)+4 {
		panic("thermal: recorded conductance produced fewer than 4 entries (zero conductance?)")
	}
}

// buildCellDeps inverts the plan: for each chiplet-layer cell, the indices of
// the plan entries whose conductance reads that cell's kChip. Lateral entries
// read two cells and appear in both lists.
func (m *Model) buildCellDeps() {
	g := m.grid
	deps := make([][]int32, g*g)
	for di, d := range m.plan {
		c := int(d.i)*g + int(d.j)
		deps[c] = append(deps[c], int32(di))
		switch d.kind {
		case depLatE:
			deps[c+1] = append(deps[c+1], int32(di))
		case depLatN:
			deps[c+g] = append(deps[c+g], int32(di))
		}
	}
	m.cellDeps = deps
}

// depCond recomputes the conductance of plan entry d from the current kChip
// field, via the same helpers assembleFull uses.
func (m *Model) depCond(d chipDep) float64 {
	i, j := int(d.i), int(d.j)
	switch d.kind {
	case depLatE:
		return m.latCondE(m.chipLayer, i, j)
	case depLatN:
		return m.latCondN(m.chipLayer, i, j)
	case depVertDn:
		return m.vertCond(m.chipLayer-1, i, j)
	case depVertUp:
		return m.vertCond(m.chipLayer, i, j)
	case depSpr:
		return m.sprCouplingCond(i, j)
	}
	panic("thermal: unknown dependency kind")
}

// initIncremental performs the one-time full rasterize + recorded assembly
// and freezes the matrix pattern.
func (m *Model) initIncremental(sources []Source) error {
	if err := m.rasterize(sources); err != nil {
		return err
	}
	m.plan = m.plan[:0]
	m.assembleFull(true)
	m.fixed = m.builder.BuildFixed()
	m.cg = sparse.NewCGSolver(m.fixed.Mat)
	m.buildCellDeps()
	g2 := m.grid * m.grid
	if m.cellEpoch == nil {
		m.cellEpoch = make([]int32, g2)
	}
	m.depEpoch = make([]int32, len(m.plan))
	m.slotEpoch = make([]int32, m.fixed.Mat.NNZ())
	if m.ctr != nil {
		m.ctr.FullAssembles++
	}
	return nil
}

// invalidateIncremental drops the frozen matrix so the next Solve rebuilds it
// from scratch. The liquid and transient solvers call it because their own
// rasterize/assemble passes overwrite the coverage, power and kChip fields
// the incremental state is keyed on.
func (m *Model) invalidateIncremental() {
	m.fixed = nil
	m.cg = nil
	m.plan = m.plan[:0]
	m.cellDeps = nil
	m.prevSources = m.prevSources[:0]
}

// rasterizeDelta updates cov, power and kChip over the union of the previous
// and new source footprints, returning the cells whose kChip actually
// changed. Every touched cell is reset and re-accumulated over the new
// sources in index order, reproducing the full rasterize bit for bit.
func (m *Model) rasterizeDelta(sources []Source) ([]int32, error) {
	g := m.grid
	// Validate before mutating anything, with the same errors rasterize
	// reports, so a bad source list leaves the incremental state consistent.
	for _, s := range sources {
		if s.Power < 0 {
			return nil, errNegativePower(s.Power)
		}
		if s.Rect.W <= 0 || s.Rect.H <= 0 {
			return nil, errBadFootprint(s.Rect)
		}
	}

	m.epoch++
	ep := m.epoch
	m.dirtyCells = m.dirtyCells[:0]
	mark := func(list []Source) {
		for _, s := range list {
			i0, i1, j0, j1 := m.sourceWindow(s)
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					c := i*g + j
					if m.cellEpoch[c] != ep {
						m.cellEpoch[c] = ep
						m.dirtyCells = append(m.dirtyCells, int32(c))
					}
				}
			}
		}
	}
	mark(m.prevSources)
	mark(sources)

	for _, c := range m.dirtyCells {
		i, j := int(c)/g, int(c)%g
		m.cov[c] = 0
		m.power[m.devNode(m.chipLayer, i, j)] = 0
	}

	// Re-accumulate the dirty cells from the new sources, outer loop over
	// sources exactly as in the full rasterize so each cell sees the same
	// sequence of additions. Every cell in a new source's window is dirty by
	// construction, so no per-cell dirty check is needed here.
	cellAreaMM := (m.widthMM / float64(g)) * (m.heightMM / float64(g))
	for _, s := range sources {
		perArea := s.Power / s.Rect.Area()
		i0, i1, j0, j1 := m.sourceWindow(s)
		for i := i0; i < i1; i++ {
			for j := j0; j < j1; j++ {
				ov := m.cellRectMM(i, j).OverlapArea(s.Rect)
				if ov <= 0 {
					continue
				}
				frac := ov / cellAreaMM
				m.cov[i*g+j] = math.Min(1, m.cov[i*g+j]+frac)
				m.power[m.devNode(m.chipLayer, i, j)] += perArea * ov
			}
		}
	}

	kSi := material.Silicon.Conductivity
	base := m.stack.Layers[m.chipLayer].Base.Conductivity
	m.changedCells = m.changedCells[:0]
	for _, c := range m.dirtyCells {
		nk := base + (kSi-base)*m.cov[c]
		if nk != m.kChip[c] {
			m.kChip[c] = nk
			m.changedCells = append(m.changedCells, c)
		}
	}
	return m.changedCells, nil
}

// assembleDelta rewrites the matrix values affected by the changed cells:
// each dependent conductance is recomputed once, its four terms rewritten,
// and each touched CSR slot refreshed once in its recorded summation order.
func (m *Model) assembleDelta(changed []int32) {
	if len(changed) == 0 {
		return
	}
	ep := m.epoch
	f := m.fixed
	m.dirtySlots = m.dirtySlots[:0]
	for _, c := range changed {
		for _, di := range m.cellDeps[c] {
			if m.depEpoch[di] == ep {
				continue
			}
			m.depEpoch[di] = ep
			d := m.plan[di]
			g := m.depCond(d)
			t := d.term
			f.SetTerm(t, g)
			f.SetTerm(t+1, g)
			f.SetTerm(t+2, -g)
			f.SetTerm(t+3, -g)
			for o := int32(0); o < 4; o++ {
				s := f.TermSlot(t + o)
				if m.slotEpoch[s] != ep {
					m.slotEpoch[s] = ep
					m.dirtySlots = append(m.dirtySlots, s)
				}
			}
		}
	}
	for _, s := range m.dirtySlots {
		f.RefreshSlot(s)
	}
}
