package ocm

import (
	"math/rand"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

func testSystem() (*chiplet.System, chiplet.Placement) {
	sys := &chiplet.System{
		Name:        "t",
		InterposerW: 20,
		InterposerH: 20,
		Chiplets: []chiplet.Chiplet{
			{Name: "A", W: 6, H: 6, Power: 10},
			{Name: "B", W: 4, H: 8, Power: 5},
		},
		Channels: []chiplet.Channel{{Src: 0, Dst: 1, Wires: 16}},
	}
	p := chiplet.NewPlacement(2)
	p.Centers[0] = geom.Point{X: 5, Y: 5}
	p.Centers[1] = geom.Point{X: 15, Y: 12}
	return sys, p
}

func TestNewGrid(t *testing.T) {
	sys, _ := testSystem()
	g, err := NewGrid(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Pitch() != DefaultPitchMM {
		t.Errorf("pitch = %v", g.Pitch())
	}
	nx, ny := g.Nodes()
	if nx != 21 || ny != 21 {
		t.Errorf("nodes = %d, %d; want 21, 21", nx, ny)
	}
	if _, err := NewGrid(sys, -1); err == nil {
		t.Error("negative pitch accepted")
	}
	if _, err := NewGrid(&chiplet.System{}, 1); err == nil {
		t.Error("empty system accepted")
	}
}

func TestSnapAndOnGrid(t *testing.T) {
	sys, _ := testSystem()
	g, _ := NewGrid(sys, 1)
	if got := g.Snap(geom.Point{X: 4.4, Y: 7.6}); got != (geom.Point{X: 4, Y: 8}) {
		t.Errorf("Snap = %v", got)
	}
	// Clamps beyond the interposer.
	if got := g.Snap(geom.Point{X: -3, Y: 99}); got != (geom.Point{X: 0, Y: 20}) {
		t.Errorf("Snap clamp = %v", got)
	}
	if !g.OnGrid(geom.Point{X: 7, Y: 13}) {
		t.Error("grid node not recognized")
	}
	if g.OnGrid(geom.Point{X: 7.5, Y: 13}) {
		t.Error("off-grid point recognized")
	}
}

func TestCandidateValid(t *testing.T) {
	sys, p := testSystem()
	g, _ := NewGrid(sys, 1)
	// A is 6x6: valid centers are within [3, 17].
	if g.CandidateValid(sys, p, 0, geom.Point{X: 2, Y: 5}, false) {
		t.Error("off-interposer candidate accepted")
	}
	if !g.CandidateValid(sys, p, 0, geom.Point{X: 3, Y: 3}, false) {
		t.Error("corner candidate rejected")
	}
	// Overlapping B at (15, 12): B spans x [13,17], y [8,16].
	if g.CandidateValid(sys, p, 0, geom.Point{X: 14, Y: 12}, false) {
		t.Error("overlapping candidate accepted")
	}
	// Just left of B with >= 0.1 gap: A at (10, 12) spans x [7,13]; B west
	// edge at 13 -> gap 0 < 0.1 -> invalid.
	if g.CandidateValid(sys, p, 0, geom.Point{X: 10, Y: 12}, false) {
		t.Error("zero-gap candidate accepted")
	}
	// At (9, 12): A east edge 12, gap 1 -> valid.
	if !g.CandidateValid(sys, p, 0, geom.Point{X: 9, Y: 12}, false) {
		t.Error("1 mm-gap candidate rejected")
	}
	// Rotation changes footprint: B is 4x8; rotated 8x4 at (15, 18) spans
	// y [16, 20] -> on interposer; unrotated spans y [14, 22] -> off.
	if g.CandidateValid(sys, p, 1, geom.Point{X: 15, Y: 18}, false) {
		t.Error("tall B at y=18 should poke off the interposer")
	}
	if !g.CandidateValid(sys, p, 1, geom.Point{X: 15, Y: 18}, true) {
		t.Error("rotated B at y=18 should fit")
	}
}

func TestValidPositionsAllValid(t *testing.T) {
	sys, p := testSystem()
	g, _ := NewGrid(sys, 1)
	pos := g.ValidPositions(sys, p, 0)
	if len(pos) == 0 {
		t.Fatal("no valid positions on a mostly-empty interposer")
	}
	for _, pt := range pos {
		q := p.Clone()
		q.Centers[0] = pt
		if err := sys.CheckPlacement(q); err != nil {
			t.Fatalf("ValidPositions returned invalid %v: %v", pt, err)
		}
		if pt == p.Centers[0] {
			t.Fatal("ValidPositions included the current position")
		}
	}
}

func TestRandomValidPositionIsValidAndCovers(t *testing.T) {
	sys, p := testSystem()
	g, _ := NewGrid(sys, 1)
	all := g.ValidPositions(sys, p, 0)
	seen := map[geom.Point]bool{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		pt, ok := g.RandomValidPosition(sys, p, 0, rng)
		if !ok {
			t.Fatal("no valid position found")
		}
		seen[pt] = true
	}
	// Sampling should hit a large share of the candidate set.
	if len(seen) < len(all)/2 {
		t.Errorf("sampled only %d of %d valid positions", len(seen), len(all))
	}
	for pt := range seen {
		q := p.Clone()
		q.Centers[0] = pt
		if err := sys.CheckPlacement(q); err != nil {
			t.Fatalf("sampled invalid position %v: %v", pt, err)
		}
	}
}

func TestRandomValidPositionNoneAvailable(t *testing.T) {
	// A chiplet as large as the interposer has exactly one valid node (its
	// center) — which is excluded as the current position.
	sys := &chiplet.System{
		Name:        "full",
		InterposerW: 10,
		InterposerH: 10,
		Chiplets:    []chiplet.Chiplet{{Name: "X", W: 10, H: 10, Power: 1}},
	}
	p := chiplet.NewPlacement(1)
	p.Centers[0] = geom.Point{X: 5, Y: 5}
	g, _ := NewGrid(sys, 1)
	if _, ok := g.RandomValidPosition(sys, p, 0, rand.New(rand.NewSource(1))); ok {
		t.Error("found a jump target for a full-interposer chiplet")
	}
}

func TestLegalize(t *testing.T) {
	sys, p := testSystem()
	g, _ := NewGrid(sys, 1)
	// Off-grid, slightly overlapping input.
	p.Centers[0] = geom.Point{X: 12.3, Y: 11.7}
	p.Centers[1] = geom.Point{X: 15.2, Y: 12.4}
	q, err := g.Legalize(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(q); err != nil {
		t.Fatalf("legalized placement invalid: %v", err)
	}
	for _, c := range q.Centers {
		if !g.OnGrid(c) {
			t.Errorf("center %v off grid after legalize", c)
		}
	}
}

func TestLegalizeImpossible(t *testing.T) {
	// Two interposer-sized chiplets cannot both be placed.
	sys := &chiplet.System{
		Name:        "jam",
		InterposerW: 10,
		InterposerH: 10,
		Chiplets: []chiplet.Chiplet{
			{Name: "X", W: 10, H: 10, Power: 1},
			{Name: "Y", W: 10, H: 10, Power: 1},
		},
	}
	p := chiplet.NewPlacement(2)
	p.Centers[0] = geom.Point{X: 5, Y: 5}
	p.Centers[1] = geom.Point{X: 5, Y: 5}
	g, _ := NewGrid(sys, 1)
	if _, err := g.Legalize(sys, p); err == nil {
		t.Error("impossible legalization succeeded")
	}
}

func TestOccupancy(t *testing.T) {
	sys, p := testSystem()
	g, _ := NewGrid(sys, 1)
	occ := g.Occupancy(sys, p)
	if len(occ) != 20 || len(occ[0]) != 20 {
		t.Fatalf("occupancy dims %dx%d", len(occ), len(occ[0]))
	}
	// A at (5,5) 6x6 covers cells x 2..7, y 2..7 (cell centers 2.5..7.5).
	if occ[5][5] != 0 {
		t.Errorf("cell under A = %d, want 0", occ[5][5])
	}
	if occ[12][14] != 1 { // B at (15,12) 4x8 covers x 13..16, y 8..15
		t.Errorf("cell under B = %d, want 1", occ[12][14])
	}
	if occ[0][19] != -1 {
		t.Errorf("empty corner = %d, want -1", occ[0][19])
	}
	// Total occupied cell count approximates total chiplet area.
	count := 0
	for _, row := range occ {
		for _, v := range row {
			if v >= 0 {
				count++
			}
		}
	}
	want := int(sys.Chiplets[0].Area() + sys.Chiplets[1].Area())
	if count < want-8 || count > want+8 {
		t.Errorf("occupied cells = %d, want about %d", count, want)
	}
}
