// Package ocm implements the Occupation Chiplet Matrix of TAP-2.5D
// (Section III-C1, Fig. 2a): the interposer is discretized into a 1 mm grid
// and chiplet centers may only sit on grid intersections, which bounds the
// placement solution space while leaving chiplet dimensions continuous.
//
// The matrix tracks, per grid node, whether a chiplet centered there would
// conflict with the current placement; it serves the placer's move and jump
// operators (valid-position queries) without re-scanning all pairs for every
// candidate.
package ocm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

// DefaultPitchMM is the paper's OCM granularity (1 mm).
const DefaultPitchMM = 1.0

// Grid is the discrete set of candidate chiplet-center locations.
type Grid struct {
	pitch  float64
	w, h   float64 // interposer dims, mm
	nx, ny int     // node counts per axis (nodes at 0, pitch, ..., <= w)
}

// NewGrid builds a grid for the system's interposer with the given pitch
// (0 means DefaultPitchMM).
func NewGrid(sys *chiplet.System, pitch float64) (*Grid, error) {
	if pitch == 0 {
		pitch = DefaultPitchMM
	}
	if pitch <= 0 {
		return nil, fmt.Errorf("ocm: non-positive pitch %g", pitch)
	}
	if sys.InterposerW <= 0 || sys.InterposerH <= 0 {
		return nil, fmt.Errorf("ocm: system %q has no interposer", sys.Name)
	}
	g := &Grid{pitch: pitch, w: sys.InterposerW, h: sys.InterposerH}
	g.nx = int(math.Floor(sys.InterposerW/pitch)) + 1
	g.ny = int(math.Floor(sys.InterposerH/pitch)) + 1
	return g, nil
}

// Pitch returns the grid pitch in mm.
func (g *Grid) Pitch() float64 { return g.pitch }

// Nodes returns the per-axis node counts (nx, ny).
func (g *Grid) Nodes() (int, int) { return g.nx, g.ny }

// Snap returns the grid node nearest to p, clamped onto the interposer.
func (g *Grid) Snap(p geom.Point) geom.Point {
	ix := int(math.Round(p.X / g.pitch))
	iy := int(math.Round(p.Y / g.pitch))
	ix = clamp(ix, 0, g.nx-1)
	iy = clamp(iy, 0, g.ny-1)
	return geom.Point{X: float64(ix) * g.pitch, Y: float64(iy) * g.pitch}
}

// OnGrid reports whether p coincides with a grid node.
func (g *Grid) OnGrid(p geom.Point) bool {
	s := g.Snap(p)
	return math.Abs(s.X-p.X) < 1e-9 && math.Abs(s.Y-p.Y) < 1e-9
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CandidateValid reports whether chiplet c of sys, centered at node center
// with the given rotation, is a valid position against placement p ignoring
// chiplet c's own current location: fully on the interposer (Eqn. 11) and at
// least the system gap away from every other chiplet (Eqn. 10).
func (g *Grid) CandidateValid(sys *chiplet.System, p chiplet.Placement, c int, center geom.Point, rotated bool) bool {
	die := sys.Chiplets[c]
	w, h := die.W, die.H
	if rotated {
		w, h = h, w
	}
	r := geom.Rect{Center: center, W: w, H: h}
	if !sys.Interposer().ContainsRect(r) {
		return false
	}
	gap := sys.Gap()
	for j := range sys.Chiplets {
		if j == c {
			continue
		}
		if !r.SeparatedBy(p.Rect(sys, j), gap) {
			return false
		}
	}
	return true
}

// ValidPositions enumerates every grid node where chiplet c could be centered
// (with its current rotation) without conflicting with the other chiplets of
// placement p. The list excludes the chiplet's current node. This implements
// the candidate set of the paper's jump operation (Fig. 2d).
func (g *Grid) ValidPositions(sys *chiplet.System, p chiplet.Placement, c int) []geom.Point {
	var out []geom.Point
	cur := p.Centers[c]
	for ix := 0; ix < g.nx; ix++ {
		for iy := 0; iy < g.ny; iy++ {
			pt := geom.Point{X: float64(ix) * g.pitch, Y: float64(iy) * g.pitch}
			if pt == cur {
				continue
			}
			if g.CandidateValid(sys, p, c, pt, p.Rotated[c]) {
				out = append(out, pt)
			}
		}
	}
	return out
}

// RandomValidPosition returns a uniformly random valid jump target for
// chiplet c, or false when none exists. It uses reservoir sampling over the
// candidate enumeration, so it allocates nothing.
func (g *Grid) RandomValidPosition(sys *chiplet.System, p chiplet.Placement, c int, rng *rand.Rand) (geom.Point, bool) {
	var pick geom.Point
	count := 0
	cur := p.Centers[c]
	for ix := 0; ix < g.nx; ix++ {
		for iy := 0; iy < g.ny; iy++ {
			pt := geom.Point{X: float64(ix) * g.pitch, Y: float64(iy) * g.pitch}
			if pt == cur {
				continue
			}
			if !g.CandidateValid(sys, p, c, pt, p.Rotated[c]) {
				continue
			}
			count++
			if rng.Intn(count) == 0 {
				pick = pt
			}
		}
	}
	return pick, count > 0
}

// SnapPlacement returns a copy of p with every center snapped onto the grid.
// Snapping can create conflicts; Legalize fixes them.
func (g *Grid) SnapPlacement(p chiplet.Placement) chiplet.Placement {
	q := p.Clone()
	for i := range q.Centers {
		q.Centers[i] = g.Snap(q.Centers[i])
	}
	return q
}

// Legalize snaps every center to the grid and resolves any resulting
// conflicts. Compact inputs (e.g. B*-tree packings with 0.1 mm gaps) shift by
// up to half a pitch when snapped and can end up mutually overlapping, so
// legalization places chiplets one at a time from the interposer center
// outward, each at the valid grid node nearest its snapped position given
// only the chiplets already placed. It returns an error when some chiplet has
// no valid node at all (the system genuinely does not fit on the grid).
func (g *Grid) Legalize(sys *chiplet.System, p chiplet.Placement) (chiplet.Placement, error) {
	snapped := g.SnapPlacement(p)
	center := geom.Point{X: g.w / 2, Y: g.h / 2}

	centerOut := make([]int, len(snapped.Centers))
	for i := range centerOut {
		centerOut[i] = i
	}
	sort.SliceStable(centerOut, func(a, b int) bool {
		return snapped.Centers[centerOut[a]].Manhattan(center) < snapped.Centers[centerOut[b]].Manhattan(center)
	})
	// Fallback order: largest dies first — small dies placed early can
	// fragment the space a big die needs.
	areaDesc := make([]int, len(snapped.Centers))
	copy(areaDesc, centerOut)
	sort.SliceStable(areaDesc, func(a, b int) bool {
		return sys.Chiplets[areaDesc[a]].Area() > sys.Chiplets[areaDesc[b]].Area()
	})

	var lastErr error
	for _, order := range [][]int{centerOut, areaDesc} {
		q := snapped.Clone()
		placed := make([]bool, len(q.Centers))
		ok := true
		for _, i := range order {
			best, found := g.nearestValidAmong(sys, q, i, placed)
			if !found {
				lastErr = fmt.Errorf("ocm: chiplet %d (%s) has no valid grid position", i, sys.Chiplets[i].Name)
				ok = false
				break
			}
			q.Centers[i] = best
			placed[i] = true
		}
		if ok {
			return q, nil
		}
	}
	return snapped, lastErr
}

// nearestValidAmong finds the valid node closest to chiplet c's current
// center, checking conflicts only against chiplets marked in placed.
func (g *Grid) nearestValidAmong(sys *chiplet.System, p chiplet.Placement, c int, placed []bool) (geom.Point, bool) {
	cur := p.Centers[c]
	die := sys.Chiplets[c]
	w, h := die.W, die.H
	if p.Rotated[c] {
		w, h = h, w
	}
	gap := sys.Gap()
	ip := sys.Interposer()
	bestD := math.Inf(1)
	var best geom.Point
	found := false
	for ix := 0; ix < g.nx; ix++ {
		for iy := 0; iy < g.ny; iy++ {
			pt := geom.Point{X: float64(ix) * g.pitch, Y: float64(iy) * g.pitch}
			d := cur.Manhattan(pt)
			if d >= bestD {
				continue
			}
			r := geom.Rect{Center: pt, W: w, H: h}
			if !ip.ContainsRect(r) {
				continue
			}
			ok := true
			for j := range sys.Chiplets {
				if j == c || (placed != nil && !placed[j]) {
					continue
				}
				if !r.SeparatedBy(p.Rect(sys, j), gap) {
					ok = false
					break
				}
			}
			if ok {
				bestD, best, found = d, pt, true
			}
		}
	}
	return best, found
}

// Occupancy renders the boolean occupation matrix of Fig. 2a for placement p:
// cell (i, j) is the index of the chiplet covering the cell centered at
// ((j+0.5)·pitch, (i+0.5)·pitch), or -1 when empty. Cells are pitch×pitch;
// the matrix is (ny-1)×(nx-1).
func (g *Grid) Occupancy(sys *chiplet.System, p chiplet.Placement) [][]int {
	rows := g.ny - 1
	cols := g.nx - 1
	occ := make([][]int, rows)
	rects := p.Rects(sys)
	for i := 0; i < rows; i++ {
		occ[i] = make([]int, cols)
		for j := 0; j < cols; j++ {
			occ[i][j] = -1
			center := geom.Point{X: (float64(j) + 0.5) * g.pitch, Y: (float64(i) + 0.5) * g.pitch}
			for c, r := range rects {
				if r.Contains(center) {
					occ[i][j] = c
					break
				}
			}
		}
	}
	return occ
}
