// Package surrogate implements the closed-form analytical chiplet thermal
// model of ATPlace2.5D (Analytical Thermal-Aware Chiplet Placement Framework
// for Large-Scale 2.5D-ICs): each chiplet contributes a superposition of four
// corner heat-spread kernels F(a, b, c), scaled by its power, and the peak
// temperature of a placement is approximated by an affine map of the field's
// maximum over the chiplet centers. The model has a handful of scalar
// parameters — a global amplitude and bias plus a spread-length multiplier —
// that are fitted ONLINE by least-squares against the exact finite-difference
// solves a placement run performs anyway, so the surrogate needs no training
// phase: it seeds itself from the first window of exact evaluations and
// refreshes from every exact solve thereafter.
//
// The placer uses a Fitter as the cheap half of a two-fidelity evaluator:
// microseconds per Predict against milliseconds per exact solve. Everything in
// this package is deterministic — no randomness, no time reads — and a
// Fitter's complete state round-trips through State for checkpoint/resume.
package surrogate

import (
	"fmt"
	"math"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

// Config tunes the two-fidelity evaluation policy. The zero value takes the
// documented defaults (see DESIGN.md for how they interact).
type Config struct {
	// Window is the sliding window of exact observations the fit spans
	// (default 64). Older observations fall out, so the fit tracks the
	// region of the design space the annealer currently explores.
	Window int
	// MinFit is the number of exact observations required before the
	// surrogate reports Ready (default 12). Until then every step pays the
	// exact solve, which is what seeds the fit.
	MinFit int
	// Margin is the prescreen slack in normalized-cost units (default
	// 0.005): the predicted Metropolis acceptance is computed with the
	// candidate's cost reduced by Margin, so borderline moves err toward
	// the exact solver rather than toward a false reject. The prescreen
	// compares delta-anchored predictions (candidate minus current under the
	// same fit), which cancels the fit's local bias and lets the margin sit
	// well below the absolute drift RMS.
	Margin float64
	// Sharpen is the prescreen decisiveness (default 2048): the prescreen
	// runs its margin-padded Metropolis test at temperature k/Sharpen
	// (ramped in with annealing progress), so a candidate whose predicted
	// cost exceeds the current cost by more than Margin is declined with
	// near-certainty once the anneal cools, while predicted-improving and
	// within-margin candidates always fall through to the exact solver.
	// 1 mirrors the exact Metropolis test exactly — which caps the saving
	// at the annealer's own rejection rate.
	Sharpen float64
	// AuditEvery re-scores one prescreen-rejected candidate with the exact
	// solver out of every AuditEvery rejects (default 32), feeding the drift
	// statistics and the fitter. Audits are the prescreen's only fixed
	// overhead, so the cadence trades insurance against speedup; the
	// measured drift RMS on the case studies sits >20× under the default
	// AuditBoundC, which is why every-32 is still generous.
	AuditEvery int
	// AuditBoundC is the |predicted - exact| peak-temperature error (°C)
	// beyond which an audit triggers a refit and widens the margin
	// (default 2).
	AuditBoundC float64
	// WidenFactor multiplies Margin after an audit breach (default 3);
	// WidenSteps is how many subsequent prescreens the widened margin lasts
	// (default 50).
	WidenFactor float64
	WidenSteps  int
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinFit <= 0 {
		c.MinFit = 12
	}
	if c.MinFit > c.Window {
		c.MinFit = c.Window
	}
	if c.Margin == 0 {
		c.Margin = 0.005
	}
	if c.Sharpen <= 0 {
		c.Sharpen = 2048
	}
	if c.AuditEvery <= 0 {
		c.AuditEvery = 32
	}
	if c.AuditBoundC == 0 {
		c.AuditBoundC = 2
	}
	if c.WidenFactor == 0 {
		c.WidenFactor = 3
	}
	if c.WidenSteps == 0 {
		c.WidenSteps = 50
	}
	return c
}

// spreadPadMM offsets the per-chiplet spread lengths so a zero-area die still
// spreads heat over a finite length: lx = spread*(w/2 + pad).
const spreadPadMM = 1.0

// spreadGrid is the deterministic candidate set Refit searches for the global
// spread-length multiplier.
var spreadGrid = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3}

// F is the ATPlace2.5D four-corner heat-spread kernel: the contribution of a
// rectangular source corner at normalized offsets (b, c) under thickness
// factor a. It is smooth and finite for a > 0 (delta >= |b|, |c| keeps both
// logarithms' arguments positive).
func F(a, b, c float64) float64 {
	delta := math.Sqrt(a*a + b*b + c*c)
	t1 := b * math.Log((c+delta)/math.Sqrt(a*a+b*b))
	t2 := c * math.Log((b+delta)/math.Sqrt(a*a+c*c))
	t3 := a * math.Atan(b*c/(a*delta))
	return 2 / math.SqrtPi * (t1 + t2 - t3)
}

// fieldAt evaluates the superposed kernel field of placement p at point
// (x, y): sum over chiplets of power times the four-corner kernel sum, with
// per-chiplet spread lengths spread*(w/2+pad), spread*(h/2+pad).
func fieldAt(sys *chiplet.System, p chiplet.Placement, spread, x, y float64) float64 {
	s := 0.0
	for i := range sys.Chiplets {
		r := p.Rect(sys, i) // rotation-aware footprint
		dx := x - r.Center.X
		dy := y - r.Center.Y
		w2 := r.W / 2
		h2 := r.H / 2
		lx := spread * (w2 + spreadPadMM)
		ly := spread * (h2 + spreadPadMM)
		sum4 := 0.0
		for _, sx := range [2]float64{-1, 1} {
			for _, sy := range [2]float64{-1, 1} {
				sum4 += F(1, (w2-sx*dx)/lx, (h2-sy*dy)/ly)
			}
		}
		s += sys.Chiplets[i].Power * sum4
	}
	return s
}

// Feature reduces a placement to the scalar the affine fit maps to peak
// temperature: the maximum of the superposed kernel field over the chiplet
// centers (the peak sits at or near the hottest die's center, so sampling
// only the N centers keeps Feature at O(N²) kernel evaluations instead of a
// full-grid render).
func Feature(sys *chiplet.System, p chiplet.Placement, spread float64) float64 {
	peak := math.Inf(-1)
	for j := range p.Centers {
		if s := fieldAt(sys, p, spread, p.Centers[j].X, p.Centers[j].Y); s > peak {
			peak = s
		}
	}
	return peak
}

// entry is one exact observation in the fit window.
type entry struct {
	p     chiplet.Placement
	tempC float64
	s     float64 // Feature under the current spread
}

// Fitter holds the fitted surrogate: predicted peak = A*Feature + B under the
// current spread multiplier, refreshed from a sliding window of exact solves.
// Not safe for concurrent use; each annealing run owns its own Fitter.
type Fitter struct {
	cfg    Config
	spread float64
	a, b   float64
	win    []entry
	next   int // ring write slot once the window is full
}

// NewFitter builds an empty fitter (cfg zero fields take defaults).
func NewFitter(cfg Config) *Fitter {
	return &Fitter{cfg: cfg.WithDefaults(), spread: 1}
}

// Config returns the fitter's effective (defaulted) configuration.
func (f *Fitter) Config() Config { return f.cfg }

// Ready reports whether the window holds enough exact observations for
// predictions to be trusted.
func (f *Fitter) Ready() bool { return len(f.win) >= f.cfg.MinFit }

// Len returns the number of observations currently in the window.
func (f *Fitter) Len() int { return len(f.win) }

// Predict estimates the peak temperature (°C) of p under the current fit.
func (f *Fitter) Predict(sys *chiplet.System, p chiplet.Placement) float64 {
	return f.a*Feature(sys, p, f.spread) + f.b
}

// Observe feeds one exact evaluation into the window and refreshes the affine
// fit. O(window) per call; the feature of the new observation is the only one
// recomputed.
func (f *Fitter) Observe(sys *chiplet.System, p chiplet.Placement, exactC float64) {
	e := entry{p: p.Clone(), tempC: exactC, s: Feature(sys, p, f.spread)}
	if len(f.win) < f.cfg.Window {
		f.win = append(f.win, e)
	} else {
		f.win[f.next] = e
		f.next = (f.next + 1) % f.cfg.Window
	}
	f.refresh()
}

// refresh recomputes the least-squares line through the window's (feature,
// temperature) pairs. A degenerate window (no feature variance) degrades to
// the mean temperature, which keeps Predict finite.
func (f *Fitter) refresh() {
	f.a, f.b = fitLine(f.win)
}

// fitLine is the closed-form simple linear regression over the window.
func fitLine(win []entry) (a, b float64) {
	n := float64(len(win))
	if n == 0 {
		return 0, 0
	}
	var sumS, sumT float64
	for _, e := range win {
		sumS += e.s
		sumT += e.tempC
	}
	meanS, meanT := sumS/n, sumT/n
	var cov, varS float64
	for _, e := range win {
		ds := e.s - meanS
		cov += ds * (e.tempC - meanT)
		varS += ds * ds
	}
	if varS <= 1e-12 {
		return 0, meanT
	}
	return cov / varS, meanT - cov/varS*meanS
}

// sse is the sum of squared prediction errors of line (a, b) over win.
func sse(win []entry, a, b float64) float64 {
	var s float64
	for _, e := range win {
		d := a*e.s + b - e.tempC
		s += d * d
	}
	return s
}

// Refit grid-searches the global spread multiplier over the current window —
// recomputing every stored feature per candidate — and keeps the candidate
// whose least-squares line has the lowest residual. Called by the evaluator
// when a drift audit breaches the bound; deterministic given the window.
func (f *Fitter) Refit(sys *chiplet.System) {
	if len(f.win) == 0 {
		return
	}
	bestSpread, bestSSE := f.spread, math.Inf(1)
	var bestS []float64
	cand := make([]float64, 0, len(spreadGrid)+1)
	cand = append(cand, f.spread)
	cand = append(cand, spreadGrid...)
	trial := make([]entry, len(f.win))
	for _, sp := range cand {
		copy(trial, f.win)
		feats := make([]float64, len(trial))
		for i := range trial {
			feats[i] = Feature(sys, trial[i].p, sp)
			trial[i].s = feats[i]
		}
		a, b := fitLine(trial)
		if e := sse(trial, a, b); e < bestSSE {
			bestSpread, bestSSE, bestS = sp, e, feats
		}
	}
	f.spread = bestSpread
	for i := range f.win {
		f.win[i].s = bestS[i]
	}
	f.refresh()
}

// Observation is one window entry in serialized form (placements flattened so
// State gob/JSON-encodes without importing this package's internals).
type Observation struct {
	Centers []geom.Point
	Rotated []bool
	TempC   float64
}

// State is a Fitter's complete serializable state. Restoring it on a fresh
// Fitter with the same Config and System reproduces Predict bit-for-bit,
// which is what keeps resumed two-fidelity runs on the original trajectory.
type State struct {
	Spread float64
	A, B   float64
	// Obs holds the window oldest-first.
	Obs []Observation
}

// State snapshots the fitter.
func (f *Fitter) State() State {
	st := State{Spread: f.spread, A: f.a, B: f.b}
	// Export oldest-first: once the ring is full, next points at the oldest.
	n := len(f.win)
	for i := 0; i < n; i++ {
		e := f.win[(f.next+i)%n]
		st.Obs = append(st.Obs, Observation{
			Centers: append([]geom.Point(nil), e.p.Centers...),
			Rotated: append([]bool(nil), e.p.Rotated...),
			TempC:   e.tempC,
		})
	}
	return st
}

// Restore re-installs a snapshot taken by State, recomputing the window
// features for sys under the snapshotted spread.
func (f *Fitter) Restore(sys *chiplet.System, st State) error {
	if st.Spread <= 0 {
		return fmt.Errorf("surrogate: invalid spread %v in state", st.Spread)
	}
	f.spread = st.Spread
	f.win = f.win[:0]
	f.next = 0
	for _, o := range st.Obs {
		p := chiplet.Placement{
			Centers: append([]geom.Point(nil), o.Centers...),
			Rotated: append([]bool(nil), o.Rotated...),
		}
		f.win = append(f.win, entry{p: p, tempC: o.TempC, s: Feature(sys, p, f.spread)})
	}
	if len(f.win) > f.cfg.Window {
		// Window shrank across a config change: keep the newest entries.
		f.win = f.win[len(f.win)-f.cfg.Window:]
	}
	f.refresh()
	f.a, f.b = st.A, st.B // trust the snapshotted line over re-derivation
	return nil
}
