package surrogate

import (
	"math"
	"math/rand"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/systems"
)

// randomPlacement scatters the chiplets uniformly over the interposer.
func randomPlacement(sys *chiplet.System, rng *rand.Rand) chiplet.Placement {
	p := chiplet.NewPlacement(len(sys.Chiplets))
	for i := range p.Centers {
		p.Centers[i].X = rng.Float64() * sys.InterposerW
		p.Centers[i].Y = rng.Float64() * sys.InterposerH
		p.Rotated[i] = rng.Float64() < 0.5
	}
	return p
}

func TestKernelSanity(t *testing.T) {
	if got := F(1, 0.5, 0.8); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("F(1,0.5,0.8) = %v, want finite", got)
	}
	// The kernel is symmetric in its two offset arguments.
	if a, b := F(1, 0.3, 1.7), F(1, 1.7, 0.3); math.Abs(a-b) > 1e-12 {
		t.Fatalf("F not symmetric: F(1,0.3,1.7)=%v F(1,1.7,0.3)=%v", a, b)
	}
	// The superposed field decays as the probe point moves away from a
	// single source centered at the origin.
	sys := &chiplet.System{
		InterposerW: 40, InterposerH: 40,
		Chiplets: []chiplet.Chiplet{{Name: "die", W: 8, H: 8, Power: 50}},
	}
	p := chiplet.NewPlacement(1)
	p.Centers[0].X, p.Centers[0].Y = 20, 20
	at := func(x, y float64) float64 { return fieldAt(sys, p, 1, x, y) }
	if !(at(20, 20) > at(26, 20) && at(26, 20) > at(34, 20)) {
		t.Fatalf("field does not decay with distance: %v %v %v",
			at(20, 20), at(26, 20), at(34, 20))
	}
}

func TestFeatureRespectsRotation(t *testing.T) {
	sys := &chiplet.System{
		InterposerW: 40, InterposerH: 40,
		// The peak sits at hot die b's center; rotating elongated die a
		// changes a's cross-contribution there.
		Chiplets: []chiplet.Chiplet{
			{Name: "a", W: 12, H: 4, Power: 10},
			{Name: "b", W: 4, H: 4, Power: 60},
		},
	}
	p := chiplet.NewPlacement(2)
	p.Centers[0].X, p.Centers[0].Y = 15, 20
	p.Centers[1].X, p.Centers[1].Y = 25, 20
	plain := Feature(sys, p, 1)
	q := p.Clone()
	q.Rotated[0] = true
	if rot := Feature(sys, q, 1); rot == plain {
		t.Fatalf("rotating a non-square die left Feature unchanged (%v)", plain)
	}
}

// TestFitRecoversAffineModel feeds the fitter synthetic exact temperatures
// that ARE an affine function of the feature and checks the regression
// recovers it.
func TestFitRecoversAffineModel(t *testing.T) {
	sys := systems.MultiGPU()
	rng := rand.New(rand.NewSource(7))
	f := NewFitter(Config{})
	const gain, bias = 1.75, 45.0
	var holdout []chiplet.Placement
	for i := 0; i < 40; i++ {
		p := randomPlacement(sys, rng)
		if i >= 30 {
			holdout = append(holdout, p)
			continue
		}
		f.Observe(sys, p, gain*Feature(sys, p, 1)+bias)
	}
	if !f.Ready() {
		t.Fatalf("fitter not ready after %d observations (MinFit=%d)", f.Len(), f.Config().MinFit)
	}
	for _, p := range holdout {
		want := gain*Feature(sys, p, 1) + bias
		if got := f.Predict(sys, p); math.Abs(got-want) > 1e-6 {
			t.Fatalf("Predict=%v want %v", got, want)
		}
	}
}

func TestWindowSlides(t *testing.T) {
	sys := systems.MultiGPU()
	rng := rand.New(rand.NewSource(3))
	f := NewFitter(Config{Window: 8, MinFit: 4})
	for i := 0; i < 20; i++ {
		f.Observe(sys, randomPlacement(sys, rng), 80+float64(i))
	}
	if f.Len() != 8 {
		t.Fatalf("window len = %d, want 8", f.Len())
	}
	st := f.State()
	if len(st.Obs) != 8 {
		t.Fatalf("state obs = %d, want 8", len(st.Obs))
	}
	// Oldest-first export: the surviving temps are 92..99.
	for i, o := range st.Obs {
		if want := 80 + float64(12+i); o.TempC != want {
			t.Fatalf("state obs[%d].TempC = %v, want %v", i, o.TempC, want)
		}
	}
}

// TestStateRoundTrip checks Restore reproduces Predict bit-for-bit, the
// property resumed runs rely on.
func TestStateRoundTrip(t *testing.T) {
	sys := systems.MultiGPU()
	rng := rand.New(rand.NewSource(11))
	f := NewFitter(Config{Window: 16, MinFit: 4})
	for i := 0; i < 25; i++ {
		f.Observe(sys, randomPlacement(sys, rng), 70+10*rng.Float64())
	}
	f.Refit(sys) // exercise a non-default spread in the snapshot
	st := f.State()

	g := NewFitter(Config{Window: 16, MinFit: 4})
	if err := g.Restore(sys, st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < 10; i++ {
		p := randomPlacement(sys, rng)
		if a, b := f.Predict(sys, p), g.Predict(sys, p); a != b {
			t.Fatalf("restored Predict differs: %v vs %v", a, b)
		}
	}
	// Continuing to observe must also stay bit-identical (ring alignment).
	for i := 0; i < 5; i++ {
		p := randomPlacement(sys, rng)
		f.Observe(sys, p, 75)
		g.Observe(sys, p, 75)
	}
	p := randomPlacement(sys, rng)
	if a, b := f.Predict(sys, p), g.Predict(sys, p); a != b {
		t.Fatalf("post-restore Observe diverged: %v vs %v", a, b)
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	f := NewFitter(Config{})
	if err := f.Restore(systems.MultiGPU(), State{Spread: 0}); err == nil {
		t.Fatal("Restore accepted zero spread")
	}
}

// TestRefitReducesResidual builds a window whose temperatures come from a
// wider spread than the fitter's current one and checks Refit finds a lower
// residual (and never a higher one).
func TestRefitReducesResidual(t *testing.T) {
	sys := systems.MultiGPU()
	rng := rand.New(rand.NewSource(5))
	f := NewFitter(Config{Window: 24, MinFit: 4})
	const trueSpread = 2.0
	for i := 0; i < 24; i++ {
		p := randomPlacement(sys, rng)
		f.Observe(sys, p, 1.3*Feature(sys, p, trueSpread)+40)
	}
	before := sse(f.win, f.a, f.b)
	f.Refit(sys)
	after := sse(f.win, f.a, f.b)
	if after > before+1e-9 {
		t.Fatalf("Refit increased residual: %v -> %v", before, after)
	}
	if f.spread != trueSpread {
		t.Fatalf("Refit picked spread %v, want %v", f.spread, trueSpread)
	}
}

func BenchmarkSurrogateEval(b *testing.B) {
	sys := systems.MultiGPU()
	rng := rand.New(rand.NewSource(1))
	f := NewFitter(Config{})
	for i := 0; i < 16; i++ {
		f.Observe(sys, randomPlacement(sys, rng), 80+5*rng.Float64())
	}
	p := randomPlacement(sys, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(sys, p)
	}
}

func BenchmarkSurrogateFit(b *testing.B) {
	sys := systems.MultiGPU()
	rng := rand.New(rand.NewSource(2))
	placements := make([]chiplet.Placement, 128)
	for i := range placements {
		placements[i] = randomPlacement(sys, rng)
	}
	f := NewFitter(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(sys, placements[i%len(placements)], 80+float64(i%7))
	}
}
