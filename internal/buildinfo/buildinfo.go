// Package buildinfo exposes the binary's stamped version string. Release
// builds inject it at link time:
//
//	go build -ldflags "-X tap25d/internal/buildinfo.version=v1.2.3" ./cmd/...
//
// Unstamped builds fall back to the module version recorded by the Go
// toolchain (go install module@version), then to "dev". Every CLI surfaces
// the value behind a -version flag, the service reports it on /v1/healthz,
// and /metrics exports it as the tap25d_build_info gauge so dashboards can
// correlate a regression with the deploy that introduced it.
package buildinfo

import "runtime/debug"

// version is the -ldflags -X injection point.
var version string

// Version returns the stamped version, the toolchain-recorded module version,
// or "dev".
func Version() string {
	if version != "" {
		return version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "dev"
}
