package experiments

import (
	"context"
	"fmt"
	"time"

	"tap25d/internal/material"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
	"tap25d/internal/placer"
	"tap25d/internal/systems"
	"tap25d/internal/thermal"
)

// solverBatchB is the batch width of the multi-RHS throughput comparison: the
// service worker pool and best-of-N flows run ~5-8 scenarios per placement,
// so 8 is the representative batch.
const solverBatchB = 8

// solverWarmSolves is how many perturbed-placement solves the per-grid timing
// averages over after the untimed setup solve.
const solverWarmSolves = 3

// BenchmarkSolverScaling measures the CG preconditioner ladder across grid
// sizes on the CPU-DRAM case study (its published original placement makes
// the scenario deterministic with no placer in the loop). For every grid and
// preconditioner — jacobi, ssor, mg — it builds one persistent model, pays
// the cold first solve untimed (matrix assembly, and for mg the hierarchy
// coarsening), then times solverWarmSolves solves under small deterministic
// placement perturbations: the regime every placement flow runs in, where
// thousands of delta-assembled solves amortize the one-time setup. The cold
// first solve is still reported per preconditioner (`*_cold_ms`) so the
// amortization claim is checkable. The scale-free headline entries are the mg
// iteration growth from the smallest to the largest grid (near-constant is
// the point of the hierarchy) and the mg-vs-ssor per-solve speedup at the
// largest grid. It also measures the batched multi-RHS path: SolveBatch over
// solverBatchB power scenarios of one placement (one assembly, one hierarchy)
// against the same scenarios solved by independent fresh models, which is how
// independent service jobs would run them.
//
// The grids slice must be ascending; BENCH_SOLVER.json commits the 64/128/256
// paper-fidelity run and CI regenerates the same grids on shared runners,
// gating only the scale-free ratio entries (see .github/workflows/ci.yml).
func BenchmarkSolverScaling(grids []int) (*Report, []obs.BenchEntry, error) {
	if len(grids) < 2 {
		return nil, nil, fmt.Errorf("solver bench needs at least 2 grid sizes, got %v", grids)
	}
	sys := systems.CPUDRAM()
	p := systems.CPUDRAMOriginal()
	sources := placer.Sources(sys, p)
	start := time.Now()

	var entries []obs.BenchEntry
	var rows []Row
	type cell struct {
		iters float64
		ms    float64
	}
	results := map[int]map[string]cell{}
	for _, g := range grids {
		results[g] = map[string]cell{}
		row := Row{Label: fmt.Sprintf("grid %d", g), Extra: map[string]float64{}}
		for _, pre := range []string{"jacobi", "ssor", "mg"} {
			stack := material.DefaultStackFor(sys.InterposerW, sys.InterposerH)
			model, err := thermal.NewModel(sys.InterposerW, sys.InterposerH,
				thermal.Options{Grid: g, Stack: &stack, Precond: pre})
			if err != nil {
				return nil, nil, err
			}
			t0 := time.Now()
			if _, err := model.Solve(sources); err != nil {
				return nil, nil, fmt.Errorf("grid %d %s cold: %w", g, pre, err)
			}
			coldMS := float64(time.Since(t0).Microseconds()) / 1000
			var iters int
			t0 = time.Now()
			for k := 1; k <= solverWarmSolves; k++ {
				res, err := model.Solve(perturbSources(sources, sys.InterposerW, sys.InterposerH, k))
				if err != nil {
					return nil, nil, fmt.Errorf("grid %d %s warm %d: %w", g, pre, k, err)
				}
				iters += res.Iterations
			}
			ms := float64(time.Since(t0).Microseconds()) / 1000 / solverWarmSolves
			meanIters := float64(iters) / solverWarmSolves
			results[g][pre] = cell{iters: meanIters, ms: ms}
			entries = append(entries,
				obs.BenchEntry{Name: fmt.Sprintf("tap25d/solver/g%d/%s_iters", g, pre), Unit: "count", Value: meanIters},
				obs.BenchEntry{Name: fmt.Sprintf("tap25d/solver/g%d/%s_ms", g, pre), Unit: "ms", Value: ms},
				obs.BenchEntry{Name: fmt.Sprintf("tap25d/solver/g%d/%s_cold_ms", g, pre), Unit: "ms", Value: coldMS},
			)
			row.Extra[pre+"_iters"] = meanIters
			row.Extra[pre+"_ms"] = ms
			row.Extra[pre+"_cold_ms"] = coldMS
		}
		rows = append(rows, row)
	}

	gLo, gHi := grids[0], grids[len(grids)-1]
	iterGrowth := results[gHi]["mg"].iters / results[gLo]["mg"].iters
	mgSpeedup := results[gHi]["ssor"].ms / results[gHi]["mg"].ms
	entries = append(entries,
		obs.BenchEntry{Name: fmt.Sprintf("tap25d/solver/mg_iter_growth_%d_vs_%d", gHi, gLo), Unit: "x", Value: iterGrowth},
		obs.BenchEntry{Name: fmt.Sprintf("tap25d/solver/g%d/mg_vs_ssor_speedup", gHi), Unit: "x", Value: mgSpeedup},
	)

	// Batched multi-RHS throughput at the middle grid: one placement under
	// solverBatchB power corners, batched against independent fresh models.
	gBatch := grids[len(grids)/2]
	specs := powerScenarios(sources, solverBatchB)
	naive0 := time.Now()
	for c, spec := range specs {
		stack := material.DefaultStackFor(sys.InterposerW, sys.InterposerH)
		model, err := thermal.NewModel(sys.InterposerW, sys.InterposerH,
			thermal.Options{Grid: gBatch, Stack: &stack, Precond: "mg"})
		if err != nil {
			return nil, nil, err
		}
		if _, err := model.Solve(spec); err != nil {
			return nil, nil, fmt.Errorf("naive scenario %d: %w", c, err)
		}
	}
	naiveSec := time.Since(naive0).Seconds()

	stack := material.DefaultStackFor(sys.InterposerW, sys.InterposerH)
	var ctr metrics.Counters
	model, err := thermal.NewModel(sys.InterposerW, sys.InterposerH,
		thermal.Options{Grid: gBatch, Stack: &stack, Precond: "mg", Counters: &ctr})
	if err != nil {
		return nil, nil, err
	}
	batch0 := time.Now()
	if _, err := model.SolveBatch(context.Background(), specs); err != nil {
		return nil, nil, err
	}
	batchSec := time.Since(batch0).Seconds()
	batchSpeedup := naiveSec / batchSec
	entries = append(entries,
		obs.BenchEntry{Name: fmt.Sprintf("tap25d/solver/g%d/batch%d_speedup", gBatch, solverBatchB), Unit: "x", Value: batchSpeedup},
	)

	rep := &Report{
		ID:    "BENCH-SOLVER",
		Title: "CG preconditioner scaling (jacobi/ssor/mg) and batched multi-RHS solves",
		Rows: append(rows, Row{
			Label: fmt.Sprintf("batch B=%d at grid %d", solverBatchB, gBatch),
			Extra: map[string]float64{
				"naive_s": naiveSec, "batch_s": batchSec, "speedup": batchSpeedup,
				"mg_cycles": float64(ctr.MGCycles), "mg_setups": float64(ctr.MGSetups),
			},
		}),
		Notes: []string{
			fmt.Sprintf("mg iterations grew %.2fx from grid %d to %d (jacobi: %.2fx); mg %.2fx faster than ssor at grid %d (per perturbed-placement solve, setup amortized)",
				iterGrowth, gLo, gHi,
				results[gHi]["jacobi"].iters/results[gLo]["jacobi"].iters, mgSpeedup, gHi),
			fmt.Sprintf("batched %d-scenario solve %.2fx over independent fresh-model solves at grid %d",
				solverBatchB, batchSpeedup, gBatch),
		},
		Elapsed: time.Since(start),
	}
	return rep, entries, nil
}

// perturbSources moves ONE source's footprint a small deterministic step
// toward the interposer center — 0.5%·k of its center offset, always in
// bounds — mirroring an anneal step, which moves a single chiplet per
// evaluation. That is the regime the per-solve timing represents: a localized
// footprint change, incremental delta assembly, and (for mg) preconditioning
// with the hierarchy of a slightly stale matrix.
func perturbSources(sources []thermal.Source, w, h float64, k int) []thermal.Source {
	out := make([]thermal.Source, len(sources))
	copy(out, sources)
	i := k % len(out)
	f := 0.005 * float64(k)
	c := out[i].Rect.Center
	c.X += (w/2 - c.X) * f
	c.Y += (h/2 - c.Y) * f
	out[i].Rect.Center = c
	return out
}

// powerScenarios builds b power corners of one source list: scenario c scales
// every source's power by a deterministic factor in [0.6, 1.4], keeping the
// footprints (and therefore the conductance matrix) untouched.
func powerScenarios(sources []thermal.Source, b int) [][]thermal.Source {
	specs := make([][]thermal.Source, b)
	for c := range specs {
		scale := 0.6 + 0.8*float64(c)/float64(b-1)
		spec := make([]thermal.Source, len(sources))
		copy(spec, sources)
		for k := range spec {
			spec[k].Power *= scale
		}
		specs[c] = spec
	}
	return specs
}
