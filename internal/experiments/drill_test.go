package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"tap25d"
)

// TestKillAndCorruptDrill rehearses the full failure domain in one campaign:
//
//  1. a mid-run CG non-convergence is injected (the recovery ladder must
//     absorb it and keep the campaign going),
//  2. the campaign is killed mid-anneal via context cancellation,
//  3. the newest checkpoint generation is corrupted on disk (a torn write),
//  4. a resumed invocation must fall back to the last-good generation, emit
//     the resume_fallback event, and complete the experiment.
func TestKillAndCorruptDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs placement flows")
	}
	cfg := tinyConfig()
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := tap25d.NewFaultInjector(7)
	// One CG solve mid-anneal fails to converge; the ladder recovers it.
	inj.Arm(tap25d.FaultCGSolve, tap25d.FaultSpec{At: 10})
	var steps atomic.Int32
	orch := Orchestration{
		Context:         ctx,
		CheckpointDir:   dir,
		CheckpointEvery: 10,
		ProgressEvery:   1,
		Inject:          inj,
		Progress: func(e tap25d.RunEvent) {
			if e.Kind == tap25d.EventStep && steps.Add(1) == 25 {
				cancel()
			}
		},
	}
	_, err := RunOrchestrated("E6", cfg, orch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	if inj.Fired(tap25d.FaultCGSolve) == 0 {
		t.Fatal("the CG fault never fired; the drill exercised nothing")
	}

	// Corrupt every newest generation that has a surviving previous one —
	// the moral equivalent of a torn write at kill time.
	snaps, err := filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoints on disk after interrupt (err=%v)", err)
	}
	corrupted := 0
	for _, p := range snaps {
		if _, err := os.Stat(p + ".prev"); err != nil {
			continue
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatalf("no snapshot had a previous generation to fall back to (snaps: %v)", snaps)
	}

	var fallbacks atomic.Int32
	resumeOrch := Orchestration{
		CheckpointDir: dir,
		Resume:        true,
		Progress: func(e tap25d.RunEvent) {
			if e.Kind == tap25d.EventResumeFallback {
				fallbacks.Add(1)
				if e.Error == "" {
					t.Error("resume_fallback event carries no rejection reason")
				}
			}
		},
	}
	rep, err := RunOrchestrated("E6", cfg, resumeOrch)
	if err != nil {
		t.Fatalf("resumed campaign failed: %v", err)
	}
	if int(fallbacks.Load()) != corrupted {
		t.Errorf("resume fell back %d times, corrupted %d snapshots", fallbacks.Load(), corrupted)
	}
	if len(rep.Rows) == 0 {
		t.Error("resumed campaign produced an empty report")
	}

	// A clean completion retires both generations.
	snaps, _ = filepath.Glob(filepath.Join(dir, "ckpt-*"))
	if len(snaps) != 0 {
		t.Errorf("stale checkpoint files left after clean completion: %v", snaps)
	}
}

// TestStrictResumeRefusesCorruptCheckpoint: the same corruption with
// Orchestration.Strict set must fail the campaign loudly instead of falling
// back.
func TestStrictResumeRefusesCorruptCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs placement flows")
	}
	cfg := tinyConfig()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int32
	orch := Orchestration{
		Context:         ctx,
		CheckpointDir:   dir,
		CheckpointEvery: 10,
		ProgressEvery:   1,
		Progress: func(e tap25d.RunEvent) {
			if e.Kind == tap25d.EventStep && steps.Add(1) == 25 {
				cancel()
			}
		},
	}
	if _, err := RunOrchestrated("E6", cfg, orch); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	corrupted := false
	for _, p := range snaps {
		if _, err := os.Stat(p + ".prev"); err != nil {
			continue
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
	}
	if !corrupted {
		t.Fatalf("no snapshot had a previous generation (snaps: %v)", snaps)
	}
	_, err := RunOrchestrated("E6", cfg, Orchestration{
		CheckpointDir: dir, Resume: true, Strict: true,
	})
	if err == nil {
		t.Fatal("strict resume silently accepted a corrupt checkpoint")
	}
	if !errors.Is(err, tap25d.ErrCheckpointCorrupt) {
		t.Errorf("strict resume error %v does not carry the corruption cause", err)
	}
}

// TestExperimentFlowInjection: an injected flow failure propagates out of
// RunOrchestrated as a typed error instead of a panic or a half-written
// report.
func TestExperimentFlowInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs placement flows")
	}
	inj := tap25d.NewFaultInjector(3)
	inj.Arm(tap25d.FaultExperimentFlow, tap25d.FaultSpec{At: 1})
	rep, err := RunOrchestrated("E6", tinyConfig(), Orchestration{Inject: inj})
	if err == nil {
		t.Fatalf("injected flow failure produced a report: %+v", rep)
	}
	if !errors.Is(err, tap25d.ErrFaultInjected) {
		t.Errorf("error %v lost the injected cause", err)
	}
}
