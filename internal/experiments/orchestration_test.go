package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"tap25d"
)

// TestCampaignInterruptAndResume drives the full resilience loop at the
// campaign level: an experiment is killed mid-anneal via context
// cancellation, leaves checkpoints on disk, and a resumed invocation of the
// same experiment finishes with exactly the report an uninterrupted campaign
// produces.
func TestCampaignInterruptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs placement flows")
	}
	cfg := tinyConfig()
	baseline, err := Run("E6", cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var steps atomic.Int32
	orch := Orchestration{
		Context:       ctx,
		CheckpointDir: dir,
		Resume:        false,
		ProgressEvery: 1,
		Progress: func(e tap25d.RunEvent) {
			if e.Kind == tap25d.EventStep && steps.Add(1) == 20 {
				cancel()
			}
		},
	}
	if _, err := RunOrchestrated("E6", cfg, orch); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoints on disk after interrupt (err=%v)", err)
	}

	resumeOrch := Orchestration{CheckpointDir: dir, Resume: true}
	rep, err := RunOrchestrated("E6", cfg, resumeOrch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(baseline.Rows) {
		t.Fatalf("resumed report has %d rows, baseline %d", len(rep.Rows), len(baseline.Rows))
	}
	for i := range rep.Rows {
		if rep.Rows[i].TempC != baseline.Rows[i].TempC ||
			rep.Rows[i].WirelengthMM != baseline.Rows[i].WirelengthMM {
			t.Errorf("row %d (%s): resumed (%.10g C, %.10g mm) != baseline (%.10g C, %.10g mm)",
				i, rep.Rows[i].Label,
				rep.Rows[i].TempC, rep.Rows[i].WirelengthMM,
				baseline.Rows[i].TempC, baseline.Rows[i].WirelengthMM)
		}
	}

	// Clean completion must have consumed the snapshots.
	snaps, _ = filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	if len(snaps) != 0 {
		t.Errorf("stale checkpoints left after clean completion: %v", snaps)
	}
}

// TestOrchestrationDisabledIsPlainRun: a zero Orchestration must not change
// behavior or write anything.
func TestOrchestrationDisabledIsPlainRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs placement flows")
	}
	cfg := tinyConfig()
	plain, err := Run("E6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	orch, err := RunOrchestrated("E6", cfg, Orchestration{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Rows {
		if plain.Rows[i].TempC != orch.Rows[i].TempC {
			t.Fatalf("row %d differs between Run and zero-Orchestration RunOrchestrated", i)
		}
	}
	if _, err := os.Stat("checkpoints"); err == nil {
		t.Error("zero orchestration created a checkpoint directory")
	}
}
