package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"tap25d"
	"tap25d/internal/obs"
	"tap25d/internal/systems"
)

// BenchmarkSurrogate measures what the two-fidelity evaluator buys on the E1
// multi-GPU case study: it runs the TAP-2.5D flow twice at the given fidelity
// — exact-only and with the analytical surrogate prescreen — and reports SA
// throughput, the speedup, and the end-quality deltas between the two flows
// as BENCH_*.json entries (docs/OPERATIONS.md documents the schema). The
// Compact-2.5D baseline runs once for the quality anchor; it performs no SA
// thermal evaluation, so the surrogate cannot change it.
func BenchmarkSurrogate(cfg Config) (*Report, []obs.BenchEntry, error) {
	cfg = cfg.withDefaults()
	sys := systems.MultiGPU()
	opt := cfg.options()
	opt.Surrogate = false

	compact, err := tap25d.PlaceCompact(sys, opt)
	if err != nil {
		return nil, nil, err
	}

	start := time.Now()
	exact, err := cfg.place(sys, opt)
	if err != nil {
		return nil, nil, err
	}
	exactSec := time.Since(start).Seconds()

	surOpt := opt
	surOpt.Surrogate = true
	start = time.Now()
	sur, err := cfg.place(sys, surOpt)
	if err != nil {
		return nil, nil, err
	}
	surSec := time.Since(start).Seconds()

	// The multigrid point of the trajectory: the same exact-only flow with
	// the mg preconditioner forced on. At the paper's 64 grid the two run
	// neck-and-neck (the hierarchy only pulls ahead at finer grids — see
	// BENCH_SOLVER.json for the scaling curve); the entry pins that the mg
	// path stays SA-viable and converges to an equivalent placement.
	mgOpt := opt
	mgOpt.Precond = "mg"
	start = time.Now()
	mg, err := cfg.place(sys, mgOpt)
	if err != nil {
		return nil, nil, err
	}
	mgSec := time.Since(start).Seconds()

	totalSteps := float64(cfg.Steps * cfg.Runs)
	exactRate := totalSteps / exactSec
	surRate := totalSteps / surSec
	mgRate := totalSteps / mgSec
	speedup := surRate / exactRate
	tempDeltaPct := 100 * math.Abs(sur.PeakC-exact.PeakC) / exact.PeakC
	wlDeltaPct := 100 * math.Abs(sur.WirelengthMM-exact.WirelengthMM) / exact.WirelengthMM

	entries := []obs.BenchEntry{
		{Name: "tap25d/e1/exact_sa_steps_per_sec", Unit: "steps/s", Value: exactRate},
		{Name: "tap25d/e1/surrogate_sa_steps_per_sec", Unit: "steps/s", Value: surRate},
		{Name: "tap25d/e1/surrogate_speedup", Unit: "x", Value: speedup},
		{Name: "tap25d/e1/compact_temp_c", Unit: "C", Value: compact.PeakC},
		{Name: "tap25d/e1/exact_tap_temp_c", Unit: "C", Value: exact.PeakC},
		{Name: "tap25d/e1/surrogate_tap_temp_c", Unit: "C", Value: sur.PeakC},
		{Name: "tap25d/e1/surrogate_temp_delta_pct", Unit: "%", Value: tempDeltaPct},
		{Name: "tap25d/e1/surrogate_wl_delta_pct", Unit: "%", Value: wlDeltaPct},
		{Name: "tap25d/e1/mg_sa_steps_per_sec", Unit: "steps/s", Value: mgRate},
		{Name: "tap25d/e1/mg_tap_temp_c", Unit: "C", Value: mg.PeakC},
	}
	if st := sur.Surrogate; st != nil {
		entries = append(entries,
			obs.BenchEntry{Name: "tap25d/e1/surrogate_hit_rate", Unit: "fraction", Value: st.HitRate},
			obs.BenchEntry{Name: "tap25d/e1/surrogate_drift_rms_c", Unit: "C", Value: st.DriftRMSC},
		)
	}

	rep := &Report{
		ID:    "BENCH-E1",
		Title: "Two-fidelity surrogate prescreen vs exact-only on the Multi-GPU system",
		Rows: []Row{
			{Label: "Compact-2.5D baseline", TempC: compact.PeakC, WirelengthMM: compact.WirelengthMM},
			{Label: "TAP-2.5D exact-only", TempC: exact.PeakC, WirelengthMM: exact.WirelengthMM,
				Extra: map[string]float64{"steps/s": exactRate}},
			{Label: "TAP-2.5D surrogate prescreen", TempC: sur.PeakC, WirelengthMM: sur.WirelengthMM,
				Extra: map[string]float64{"steps/s": surRate, "speedup": speedup}},
			{Label: "TAP-2.5D exact-only, mg precond", TempC: mg.PeakC, WirelengthMM: mg.WirelengthMM,
				Extra: map[string]float64{"steps/s": mgRate}},
		},
		Notes: []string{
			fmt.Sprintf("speedup %.2fx at %.0f SA steps per flow; temp delta %.3f%%, WL delta %.2f%%",
				speedup, totalSteps, tempDeltaPct, wlDeltaPct),
		},
		Elapsed: time.Duration((exactSec + surSec + mgSec) * float64(time.Second)),
	}
	if st := sur.Surrogate; st != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"surrogate: %d prescreens, %d rejects (hit rate %.2f), %d audits, %d refits, drift RMS %.3f C",
			st.Prescreens, st.Rejects, st.HitRate, st.Audits, st.Refits, st.DriftRMSC))
	}
	mergeCounters(rep, compact, exact, sur, mg)
	return rep, entries, nil
}

// WriteBenchEntries writes benchmark entries as the indented JSON array the
// BENCH_*.json artifacts use.
func WriteBenchEntries(w io.Writer, entries []obs.BenchEntry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}
