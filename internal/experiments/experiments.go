// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) end-to-end: the three case studies (Figs. 4-6),
// the interposer-size study, the TDP analysis, the link-latency performance
// numbers, the scalability discussion, and the repo's own ablations and
// extensions. DESIGN.md carries the experiment index (E1-E13); EXPERIMENTS.md
// records paper-vs-measured values.
//
// Each experiment returns a structured Report so both the cmd/experiments
// binary and the root bench suite can assert the paper's "shape": who wins,
// by roughly what factor, and on which side of the 85 °C threshold each
// design lands.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"tap25d"
	"tap25d/internal/chiplet"
	"tap25d/internal/faultinject"
	"tap25d/internal/geom"
	"tap25d/internal/interposercost"
	"tap25d/internal/lp"
	"tap25d/internal/material"
	"tap25d/internal/metrics"
	"tap25d/internal/ocm"
	"tap25d/internal/placer"
	"tap25d/internal/route"
	"tap25d/internal/systems"
	"tap25d/internal/thermal"
)

// Config sets the fidelity of the runs. Zero values take the Reduced preset.
type Config struct {
	// ThermalGrid is the thermal resolution (paper: 64).
	ThermalGrid int
	// Precond selects the CG preconditioner ("jacobi", "ssor", "mg" or
	// "auto"/empty — Jacobi up to grid 64, multigrid beyond).
	Precond string
	// Steps is the SA budget per run (paper: 4500).
	Steps int
	// Runs is the number of independent SA runs (paper: 5).
	Runs int
	// CompactSteps budgets the B*-tree baseline.
	CompactSteps int
	// Seed drives all randomness.
	Seed int64
	// Surrogate enables the two-fidelity evaluator in every annealing flow:
	// the analytical thermal surrogate prescreens SA candidates and only
	// surrogate-approved moves pay the exact solve (tap25d.Options.Surrogate).
	// Off by default, which keeps experiment results byte-identical to the
	// exact-only flow.
	Surrogate bool

	// orch carries the campaign's run-orchestration state when the
	// experiment was started through RunOrchestrated; nil means plain
	// uncancellable execution (Run).
	orch *orchestrator
}

// Orchestration wires resilience into an experiment campaign: cooperative
// cancellation, periodic checkpoints that survive a kill, resuming an
// interrupted campaign, and structured progress events.
type Orchestration struct {
	// Context cancels in-flight placement flows (nil means background).
	// On cancellation the current flow checkpoints and stops, and the
	// campaign returns the context's error.
	Context context.Context
	// CheckpointDir is where run snapshots are written (one JSON file per
	// annealing run, named ckpt-f<flow>-r<run>.json by the flow's position
	// in the experiment and the run index). Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in SA steps (0 disables
	// periodic snapshots; a final snapshot is still written on
	// cancellation when CheckpointDir is set).
	CheckpointEvery int
	// Resume makes each flow look for existing snapshots in CheckpointDir
	// and continue from them. Flows that previously completed cleanly have
	// no snapshots (they are removed on completion) and re-run from
	// scratch; only the interrupted flow resumes mid-anneal.
	Resume bool
	// Progress receives structured run events (see tap25d.RunEvent); with
	// Runs > 1 it must be safe for concurrent use.
	Progress func(tap25d.RunEvent)
	// ProgressEvery is the step-event cadence (0 disables step events).
	ProgressEvery int
	// Obs, when non-nil, collects observability data (span timings, phase
	// histograms, CG convergence traces) across every placement flow of the
	// campaign; nil disables it.
	Obs *tap25d.Observer
	// Strict disables the corrupt-checkpoint fallback on resume: a damaged
	// newest snapshot fails the campaign instead of silently continuing
	// from the previous generation.
	Strict bool
	// EvalFailureBudget, when positive, lets each annealing run ride
	// through up to this many consecutive transient evaluation failures
	// by skipping the affected SA steps (see tap25d.Options).
	EvalFailureBudget int
	// DisableRecovery turns off the thermal solver's CG recovery ladder
	// across the campaign's flows.
	DisableRecovery bool
	// Inject, when non-nil, injects deterministic faults into the
	// campaign: each placement flow hits faultinject.PointExperimentFlow
	// before it starts, the flows' thermal solves hit the solver points,
	// and checkpoint I/O hits the read/write points. nil disables
	// injection.
	Inject *tap25d.FaultInjector
}

// orchestrator threads Orchestration through an experiment and assigns each
// tap25d.Place call a deterministic flow sequence number. Experiments invoke
// their placement flows in fixed source order, so flow numbering — and hence
// checkpoint file naming — is stable across processes, which is what lets a
// resumed campaign match snapshots back to the flows that wrote them.
type orchestrator struct {
	Orchestration
	flow int
}

// store builds the flow's durable checkpoint store: CRC-sealed generational
// snapshots named ckpt-f<flow>-r<run>.json, with resume fallback to the
// previous generation surfaced through the campaign's Progress sink (unless
// Strict forbids the fallback).
func (o *orchestrator) store(flow int) *placer.FileStore {
	st := &placer.FileStore{
		Dir:    o.CheckpointDir,
		Name:   func(run int) string { return fmt.Sprintf("ckpt-f%d-r%d.json", flow, run) },
		Strict: o.Strict,
		Obs:    o.Obs,
		Inject: o.Inject,
	}
	if o.Progress != nil {
		st.Events = o.Progress
	}
	return st
}

// place runs one placement flow with orchestration attached.
func (o *orchestrator) place(sys *tap25d.System, opt tap25d.Options) (*tap25d.Result, error) {
	flow := o.flow
	o.flow++
	if err := o.Inject.Hit(faultinject.PointExperimentFlow); err != nil {
		return nil, fmt.Errorf("experiments: flow %d: %w", flow, err)
	}
	opt.Context = o.Context
	opt.Progress = o.Progress
	opt.ProgressEvery = o.ProgressEvery
	opt.Observer = o.Obs
	opt.EvalFailureBudget = o.EvalFailureBudget
	opt.DisableRecovery = o.DisableRecovery
	opt.FaultInjector = o.Inject
	if o.CheckpointDir != "" {
		st := o.store(flow)
		opt.CheckpointEvery = o.CheckpointEvery
		opt.Checkpoint = st.Checkpoint
		if o.Resume {
			opt.Restore = st.Restore
		}
	}
	res, err := tap25d.Place(sys, opt)
	if err == nil && o.CheckpointDir != "" {
		// The flow finished: drop its snapshots so a later --resume of the
		// campaign re-runs it fresh instead of replaying a mid-run state.
		runs := opt.Runs
		if runs <= 0 {
			runs = 1
		}
		o.store(flow).Clean(runs)
	}
	return res, err
}

// place is the orchestration-aware stand-in for tap25d.Place that every
// experiment uses for its annealing flows.
func (c Config) place(sys *tap25d.System, opt tap25d.Options) (*tap25d.Result, error) {
	if c.orch == nil {
		return tap25d.Place(sys, opt)
	}
	return c.orch.place(sys, opt)
}

// Reduced returns the default quick-turnaround preset used by `go test
// -bench`: coarse grid, few steps — tens of seconds per experiment.
func Reduced() Config {
	return Config{ThermalGrid: 32, Steps: 300, Runs: 2, CompactSteps: 8000, Seed: 1}
}

// Full returns the paper-fidelity preset (hours of compute, as in the
// paper's 25-hour calibration).
func Full() Config {
	return Config{ThermalGrid: 64, Steps: 4500, Runs: 5, CompactSteps: 20000, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := Reduced()
	if c.ThermalGrid == 0 {
		c.ThermalGrid = d.ThermalGrid
	}
	if c.Steps == 0 {
		c.Steps = d.Steps
	}
	if c.Runs == 0 {
		c.Runs = d.Runs
	}
	if c.CompactSteps == 0 {
		c.CompactSteps = d.CompactSteps
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

func (c Config) options() tap25d.Options {
	return tap25d.Options{
		ThermalGrid:  c.ThermalGrid,
		Precond:      c.Precond,
		Steps:        c.Steps,
		Runs:         c.Runs,
		Seed:         c.Seed,
		CompactSteps: c.CompactSteps,
		Surrogate:    c.Surrogate,
	}
}

// Row is one table row of a report.
type Row struct {
	Label string
	// TempC and WirelengthMM are the headline metrics (zero when not
	// applicable).
	TempC        float64
	WirelengthMM float64
	// Extra holds experiment-specific values (TDP watts, slowdown %, ...).
	Extra map[string]float64
}

// Report is a regenerated table/figure.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
	// Counters aggregates the evaluation statistics of every placement flow
	// behind the report (thermal solves, CG iterations, delta vs full matrix
	// assemblies, cache hits, router calls).
	Counters metrics.Counters
	// Elapsed is the wall-clock cost of regenerating the artifact.
	Elapsed time.Duration
}

// Format writes the report as an aligned text table.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s (took %v)\n", r.ID, r.Title, r.Elapsed.Round(time.Millisecond))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-34s", row.Label)
		if row.TempC != 0 {
			fmt.Fprintf(w, "  T=%7.2f C", row.TempC)
		}
		if row.WirelengthMM != 0 {
			fmt.Fprintf(w, "  WL=%9.0f mm", row.WirelengthMM)
		}
		if len(row.Extra) > 0 {
			keys := make([]string, 0, len(row.Extra))
			for k := range row.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "  %s=%.2f", k, row.Extra[k])
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	if !r.Counters.IsZero() {
		fmt.Fprintf(w, "  counters: %s\n", r.Counters)
	}
}

// mergeCounters folds each result's evaluation counters into the report.
func mergeCounters(rep *Report, results ...*tap25d.Result) {
	for _, r := range results {
		if r != nil {
			rep.Counters.Merge(r.Metrics)
		}
	}
}

// IDs lists the experiment identifiers in run order.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
}

// Run dispatches one experiment by ID.
func Run(id string, cfg Config) (*Report, error) {
	return RunOrchestrated(id, cfg, Orchestration{})
}

// RunOrchestrated dispatches one experiment with run orchestration attached:
// the experiment's placement flows honor orch.Context, checkpoint into
// orch.CheckpointDir, resume from earlier snapshots when orch.Resume is set,
// and report progress through orch.Progress. On cancellation the returned
// error wraps context.Canceled (or DeadlineExceeded); checkpoints for the
// interrupted flow remain on disk for a later resume.
func RunOrchestrated(id string, cfg Config, orch Orchestration) (*Report, error) {
	cfg = cfg.withDefaults()
	cfg.orch = &orchestrator{Orchestration: orch}
	switch strings.ToUpper(id) {
	case "E1":
		return E1MultiGPU(cfg)
	case "E2":
		return E2InterposerSize(cfg)
	case "E3":
		return E3CPUDRAM(cfg)
	case "E4":
		return E4TDP(cfg)
	case "E5":
		return E5LinkLatency(cfg)
	case "E6":
		return E6Ascend910(cfg)
	case "E7":
		return E7Scaling(cfg)
	case "E8":
		return E8MILPvsFast(cfg)
	case "E9":
		return E9Ablations(cfg)
	case "E10":
		return E10EndToEnd(cfg)
	case "E11":
		return E11CompactCrossCheck(cfg)
	case "E12":
		return E12CoolingTradeoff(cfg)
	case "E13":
		return E13AlphaSweep(cfg)
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// E1MultiGPU regenerates Fig. 4: the Multi-GPU system placed by
// Compact-2.5D, TAP-2.5D with repeaterless links, and TAP-2.5D with
// gas-station links.
func E1MultiGPU(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.MultiGPU()
	opt := cfg.options()

	compact, err := tap25d.PlaceCompact(sys, opt)
	if err != nil {
		return nil, err
	}
	tapRL, err := cfg.place(sys, opt)
	if err != nil {
		return nil, err
	}
	optGas := opt
	optGas.GasStation = true
	tapGas, err := cfg.place(sys, optGas)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "E1",
		Title: "Multi-GPU system (Fig. 4): Compact-2.5D vs TAP-2.5D",
		Rows: []Row{
			{Label: "Compact-2.5D (a)", TempC: compact.PeakC, WirelengthMM: compact.WirelengthMM},
			{Label: "TAP-2.5D repeaterless (b)", TempC: tapRL.PeakC, WirelengthMM: tapRL.WirelengthMM},
			{Label: "TAP-2.5D gas-station (c)", TempC: tapGas.PeakC, WirelengthMM: tapGas.WirelengthMM},
		},
		Notes: []string{
			"paper: (a) 95.31 C / 88059 mm, (b) 91.25 C / 96906 mm, (c) 91.52 C / 51010 mm",
		},
		Elapsed: time.Since(start),
	}
	mergeCounters(rep, compact, tapRL, tapGas)
	return rep, nil
}

// E2InterposerSize regenerates the Section IV-A interposer-size study:
// 45 mm vs 50 mm interposers for both link types.
func E2InterposerSize(cfg Config) (*Report, error) {
	start := time.Now()
	opt := cfg.options()
	var rows []Row
	var ctr metrics.Counters
	results := map[string]*tap25d.Result{}
	for _, edge := range []float64{45, 50} {
		sys := systems.MultiGPUAt(edge)
		for _, gas := range []bool{false, true} {
			o := opt
			o.GasStation = gas
			res, err := cfg.place(sys, o)
			if err != nil {
				return nil, err
			}
			ctr.Merge(res.Metrics)
			link := "repeaterless"
			if gas {
				link = "gas-station"
			}
			label := fmt.Sprintf("%2.0f mm / %s", edge, link)
			results[label] = res
			rows = append(rows, Row{Label: label, TempC: res.PeakC, WirelengthMM: res.WirelengthMM})
		}
	}
	notes := []string{
		"paper: 50 mm gives 2.51 C lower T at +5% WL (repeaterless), 2.38 C lower at +17% WL (gas-station), at 33% higher interposer cost",
		fmt.Sprintf("measured interposer cost ratio 45 -> 50 mm: %+.0f%% (edge loss + defect yield model)",
			100*(interposercost.Default().Ratio(45, 45, 50, 50)-1)),
	}
	for _, link := range []string{"repeaterless", "gas-station"} {
		a := results["45 mm / "+link]
		b := results["50 mm / "+link]
		notes = append(notes, fmt.Sprintf("measured %s: dT = %.2f C, dWL = %+.0f%%",
			link, a.PeakC-b.PeakC, 100*(b.WirelengthMM-a.WirelengthMM)/a.WirelengthMM))
	}
	return &Report{
		ID:       "E2",
		Title:    "Multi-GPU interposer-size study (Section IV-A)",
		Rows:     rows,
		Notes:    notes,
		Counters: ctr,
		Elapsed:  time.Since(start),
	}, nil
}

// E3CPUDRAM regenerates Fig. 5: the CPU-DRAM system's original placement,
// Compact-2.5D, and the two TAP-2.5D variants.
func E3CPUDRAM(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.CPUDRAM()
	opt := cfg.options()

	orig, err := tap25d.Evaluate(sys, systems.CPUDRAMOriginal(), opt)
	if err != nil {
		return nil, err
	}
	compact, err := tap25d.PlaceCompact(sys, opt)
	if err != nil {
		return nil, err
	}
	tapRL, err := cfg.place(sys, opt)
	if err != nil {
		return nil, err
	}
	optGas := opt
	optGas.GasStation = true
	tapGas, err := cfg.place(sys, optGas)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "E3",
		Title: "CPU-DRAM system (Fig. 5): original vs Compact-2.5D vs TAP-2.5D",
		Rows: []Row{
			{Label: "Original (a)", TempC: orig.PeakC, WirelengthMM: orig.WirelengthMM},
			{Label: "Compact-2.5D (b)", TempC: compact.PeakC, WirelengthMM: compact.WirelengthMM},
			{Label: "TAP-2.5D repeaterless (c)", TempC: tapRL.PeakC, WirelengthMM: tapRL.WirelengthMM},
			{Label: "TAP-2.5D gas-station (d)", TempC: tapGas.PeakC, WirelengthMM: tapGas.WirelengthMM},
		},
		Notes: []string{
			"paper: (a) 115.94 C / 67686 mm, (b) 113.54 C / 100864 mm, (c) 94.89 C / 216064 mm, (d) 93.89 C / 138956 mm",
			"shape: (a), (b) > 85 C infeasible; TAP ~20 C cooler at 2-3x the original wirelength",
		},
		Elapsed: time.Since(start),
	}
	mergeCounters(rep, orig, compact, tapRL, tapGas)
	return rep, nil
}

// E4TDP regenerates the Section IV-B TDP analysis: maximum system power at
// 85 C for the original CPU-DRAM placement vs the TAP-2.5D placement,
// varying the CPUs' power.
func E4TDP(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.CPUDRAM()
	opt := cfg.options()

	origTDP, err := tap25d.TDPEnvelope(sys, systems.CPUDRAMOriginal(), systems.CPUDRAMCPUIndices(), opt)
	if err != nil {
		return nil, err
	}
	tapRes, err := cfg.place(sys, opt)
	if err != nil {
		return nil, err
	}
	tapTDP, err := tap25d.TDPEnvelope(sys, tapRes.Placement, systems.CPUDRAMCPUIndices(), opt)
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "E4",
		Title: "CPU-DRAM TDP envelopes (Section IV-B)",
		Rows: []Row{
			{Label: "Original placement", Extra: map[string]float64{"TDP_W": origTDP.EnvelopeW, "peak_C": origTDP.PeakC}},
			{Label: "TAP-2.5D placement", Extra: map[string]float64{"TDP_W": tapTDP.EnvelopeW, "peak_C": tapTDP.PeakC}},
			{Label: "TDP gain", Extra: map[string]float64{"delta_W": tapTDP.EnvelopeW - origTDP.EnvelopeW}},
		},
		Notes: []string{
			"paper: original 400 W, TAP-2.5D 550 W (+150 W) under the 85 C constraint",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E5LinkLatency regenerates the Section IV-B performance numbers over the
// synthetic PARSEC/SPLASH2/UHPC workloads.
func E5LinkLatency(cfg Config) (*Report, error) {
	start := time.Now()
	studies, err := tap25d.LinkLatencyStudy([]int{2, 3}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, st := range studies {
		rows = append(rows, Row{
			Label: fmt.Sprintf("link latency 1 -> %d cycles", st.LinkLatency),
			Extra: map[string]float64{
				"min_pct":  st.Min * 100,
				"max_pct":  st.Max * 100,
				"mean_pct": st.Mean * 100,
			},
		})
		names := make([]string, 0, len(st.PerWorkload))
		for n := range st.PerWorkload {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rows = append(rows, Row{
				Label: "  " + n,
				Extra: map[string]float64{"slowdown_pct": st.PerWorkload[n] * 100},
			})
		}
	}
	return &Report{
		ID:    "E5",
		Title: "Inter-chiplet link latency performance study (Section IV-B)",
		Rows:  rows,
		Notes: []string{
			"paper: 1->2 cycles: 5-18% loss (11% avg); 1->3 cycles: 18-39% loss (25% avg)",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E6Ascend910 regenerates Fig. 6: the Ascend 910's commercial layout,
// Compact-2.5D, and TAP-2.5D.
func E6Ascend910(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.Ascend910()
	opt := cfg.options()

	orig, err := tap25d.Evaluate(sys, systems.Ascend910Original(), opt)
	if err != nil {
		return nil, err
	}
	compact, err := tap25d.PlaceCompact(sys, opt)
	if err != nil {
		return nil, err
	}
	tapRes, err := cfg.place(sys, opt)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "E6",
		Title: "Huawei Ascend 910 (Fig. 6): original vs Compact-2.5D vs TAP-2.5D",
		Rows: []Row{
			{Label: "Original layout (a)", TempC: orig.PeakC, WirelengthMM: orig.WirelengthMM},
			{Label: "Compact-2.5D (b)", TempC: compact.PeakC, WirelengthMM: compact.WirelengthMM},
			{Label: "TAP-2.5D (c)", TempC: tapRes.PeakC, WirelengthMM: tapRes.WirelengthMM,
				Extra: map[string]float64{
					"similarity_to_original_mm": tap25d.PlacementSimilarity(sys, systems.Ascend910Original(), tapRes.Placement),
					"similarity_to_compact_mm":  tap25d.PlacementSimilarity(sys, compact.Placement, tapRes.Placement),
				}},
		},
		Notes: []string{
			"paper: (a) 75.48 C / 16426 mm, (b) 75.13 C / 23794 mm, (c) 75.47 C / 16597 mm",
			"shape: all below 85 C, so TAP-2.5D minimizes wirelength only and lands near the commercial layout",
			"similarity = mean per-chiplet displacement (mm) up to interposer symmetry; lower = more alike",
		},
		Elapsed: time.Since(start),
	}
	mergeCounters(rep, orig, compact, tapRes)
	return rep, nil
}

// E7Scaling regenerates the Section III-D scalability discussion: routing
// optimization time grows with |C|^2 |P|^2 |N| while thermal solve time is
// flat in chiplet count (fixed grid).
func E7Scaling(cfg Config) (*Report, error) {
	start := time.Now()
	var rows []Row
	for _, n := range []int{4, 8, 16, 32} {
		sys, p := syntheticSystem(n, cfg.Seed)
		t0 := time.Now()
		if _, err := route.Route(sys, p, route.Options{}); err != nil {
			return nil, err
		}
		routeMS := float64(time.Since(t0).Microseconds()) / 1000

		// Gas-station routing considers every chiplet as an intermediate, so
		// its cost exposes the O(|C|^2 |P|^2 |N|) growth clearly.
		t0 = time.Now()
		if _, err := route.Route(sys, p, route.Options{GasStation: true}); err != nil {
			return nil, err
		}
		gasMS := float64(time.Since(t0).Microseconds()) / 1000

		stack := material.DefaultStackFor(sys.InterposerW, sys.InterposerH)
		model, err := thermal.NewModel(sys.InterposerW, sys.InterposerH, thermal.Options{Grid: cfg.ThermalGrid, Stack: &stack, Precond: cfg.Precond})
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		if _, err := model.Solve(placer.Sources(sys, p)); err != nil {
			return nil, err
		}
		thermalMS := float64(time.Since(t1).Milliseconds())
		rows = append(rows, Row{
			Label: fmt.Sprintf("%2d chiplets, %2d channels", n, len(sys.Channels)),
			Extra: map[string]float64{"route_ms": routeMS, "route_gas_ms": gasMS, "thermal_ms": thermalMS},
		})
	}
	return &Report{
		ID:    "E7",
		Title: "Scalability (Section III-D): routing scales with system size, thermal is flat",
		Rows:  rows,
		Notes: []string{
			"paper: routing O(|C|^2 |P|^2 |N|); thermal constant (fixed 64x64 grid; 23 s/HotSpot call, 5 s/CPLEX call)",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E8MILPvsFast validates the fast router against the exact MILP (Table I /
// Eqns. 1-9 sanity) on all three case studies.
func E8MILPvsFast(cfg Config) (*Report, error) {
	start := time.Now()
	cases := []struct {
		name string
		sys  *chiplet.System
		p    chiplet.Placement
	}{
		{"cpudram original", systems.CPUDRAM(), systems.CPUDRAMOriginal()},
		{"ascend910 original", systems.Ascend910(), systems.Ascend910Original()},
	}
	// Add a compact multigpu placement.
	mg := systems.MultiGPU()
	mgc, err := tap25d.PlaceCompact(mg, cfg.options())
	if err != nil {
		return nil, err
	}
	cases = append(cases, struct {
		name string
		sys  *chiplet.System
		p    chiplet.Placement
	}{"multigpu compact", mg, mgc.Placement})

	var rows []Row
	for _, c := range cases {
		fast, err := route.Route(c.sys, c.p, route.Options{Method: route.MethodFast})
		if err != nil {
			return nil, err
		}
		milp, err := route.Route(c.sys, c.p, route.Options{Method: route.MethodMILP, MILP: lp.MILPOptions{MaxNodes: 4000}})
		if err != nil {
			return nil, err
		}
		if err := route.Check(c.sys, fast, nil); err != nil {
			return nil, fmt.Errorf("E8: fast router constraint violation on %s: %w", c.name, err)
		}
		if err := route.Check(c.sys, milp, nil); err != nil {
			return nil, fmt.Errorf("E8: MILP constraint violation on %s: %w", c.name, err)
		}
		rows = append(rows, Row{
			Label: c.name,
			Extra: map[string]float64{
				"fast_mm": fast.TotalWirelengthMM,
				"milp_mm": milp.TotalWirelengthMM,
				"gap_pct": 100 * (fast.TotalWirelengthMM - milp.TotalWirelengthMM) / milp.TotalWirelengthMM,
			},
		})
	}
	return &Report{
		ID:      "E8",
		Title:   "Routing optimality: fast heuristic vs exact MILP (Eqns. 1-9)",
		Rows:    rows,
		Notes:   []string{"both methods must satisfy every constraint; the heuristic's wirelength gap should be ~0%"},
		Elapsed: time.Since(start),
	}, nil
}

// E9Ablations exercises the design choices the paper motivates: the jump
// operator (Section III-C3), the dynamic alpha (Eqn. 13), and the
// Compact-2.5D initial placement (Section III-C2), on the CPU-DRAM system.
func E9Ablations(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.CPUDRAM()
	base := cfg.options()
	base.Runs = 1

	variants := []struct {
		label string
		mod   func(*tap25d.Options) error
	}{
		{"TAP-2.5D (full)", func(o *tap25d.Options) error { return nil }},
		{"no jump operator", func(o *tap25d.Options) error { o.DisableJump = true; return nil }},
		{"fixed alpha = 0.5", func(o *tap25d.Options) error { o.FixedAlpha = 0.5; return nil }},
		{"random initial placement", func(o *tap25d.Options) error {
			p, err := randomPlacement(sys, cfg.Seed)
			if err != nil {
				return err
			}
			o.InitialPlacement = &p
			return nil
		}},
	}
	var rows []Row
	var ctr metrics.Counters
	for _, v := range variants {
		o := base
		if err := v.mod(&o); err != nil {
			return nil, err
		}
		res, err := cfg.place(sys, o)
		if err != nil {
			return nil, err
		}
		ctr.Merge(res.Metrics)
		rows = append(rows, Row{Label: v.label, TempC: res.PeakC, WirelengthMM: res.WirelengthMM})
	}
	return &Report{
		ID:       "E9",
		Title:    "Ablations: jump operator, dynamic alpha, initial placement (CPU-DRAM)",
		Rows:     rows,
		Notes:    []string{"full TAP-2.5D should dominate or match every ablation at equal budget"},
		Counters: ctr,
		Elapsed:  time.Since(start),
	}, nil
}

// E10EndToEnd is the repo's extension experiment: it closes the paper's
// Section IV-B argument quantitatively. The TAP-2.5D placement of the
// CPU-DRAM system has longer wires, which the interposer wire model turns
// into multi-cycle links and the trace model into a slowdown; the same
// placement's higher TDP envelope funds a frequency uplift (power ~ f at
// fixed voltage). The net effect should be a performance *gain*, matching
// the paper's claim that the increased TDP envelope recovers the wirelength
// cost (e.g. "+30% operating frequency").
func E10EndToEnd(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.CPUDRAM()
	opt := cfg.options()
	const clockGHz = 1.0

	orig, err := tap25d.Evaluate(sys, systems.CPUDRAMOriginal(), opt)
	if err != nil {
		return nil, err
	}
	// The spread TAP placement needs gas-station links: its longest
	// repeaterless wires would take ~10 cycles (quadratic RC delay), which
	// is exactly the failure mode the paper's 2-stage links avoid.
	optGas := opt
	optGas.GasStation = true
	tapRes, err := cfg.place(sys, optGas)
	if err != nil {
		return nil, err
	}
	tapRL, err := tap25d.Evaluate(sys, tapRes.Placement, opt) // same placement, repeaterless routing
	if err != nil {
		return nil, err
	}

	origTDP, err := tap25d.TDPEnvelope(sys, systems.CPUDRAMOriginal(), systems.CPUDRAMCPUIndices(), opt)
	if err != nil {
		return nil, err
	}
	tapTDP, err := tap25d.TDPEnvelope(sys, tapRes.Placement, systems.CPUDRAMCPUIndices(), opt)
	if err != nil {
		return nil, err
	}
	uplift := 0.0
	if origTDP.EnvelopeW > 0 && tapTDP.EnvelopeW > origTDP.EnvelopeW {
		uplift = tapTDP.EnvelopeW/origTDP.EnvelopeW - 1
	}

	rows := make([]Row, 0, 6)
	type point struct {
		label   string
		routing *tap25d.RouteResult
		uplift  float64
	}
	for _, pt := range []point{
		{"original (repeaterless)", orig.Routing, 0},
		{"TAP-2.5D (repeaterless)", tapRL.Routing, uplift},
		{"TAP-2.5D (gas-station)", tapRes.Routing, uplift},
	} {
		links, err := tap25d.AnalyzeLinks(pt.routing, clockGHz)
		if err != nil {
			return nil, err
		}
		impact, err := tap25d.AssessPerformance(pt.routing, clockGHz, pt.uplift, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			Row{Label: pt.label + " links", Extra: map[string]float64{
				"mean_cycles": links.MeanCycles,
				"max_cycles":  float64(links.MaxCycles),
				"energy_pJ":   links.TotalEnergyPJPerTransfer,
			}},
			Row{Label: pt.label + " perf", Extra: map[string]float64{
				"slowdown_pct": impact.MeanSlowdown * 100,
				"uplift_pct":   pt.uplift * 100,
				"net_pct":      impact.NetSpeedup * 100,
			}},
		)
	}

	return &Report{
		ID:    "E10",
		Title: "End-to-end: wire delay -> link latency -> workload performance, with TDP-funded frequency (extension of Section IV-B)",
		Rows:  rows,
		Notes: []string{
			"paper (qualitative): longer links cost 11-25% at fixed frequency; the +150 W TDP envelope can fund ~+30% frequency, a net gain",
			"repeaterless routing of the spread placement shows why gas stations exist: its longest wires need many cycles",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E11CompactCrossCheck compares the two independent compact floorplanners —
// B*-tree + fast-SA (the paper's Compact-2.5D, Chen et al. TCAD'06) and
// Sequence Pair (Murata et al. TCAD'96, the first representation Section II
// surveys) — on all three case studies. Two correct compact placers should
// land in the same temperature and wirelength regime, and both should be
// thermally inferior (or equal) to thermally-aware spreading.
func E11CompactCrossCheck(cfg Config) (*Report, error) {
	start := time.Now()
	opt := cfg.options()
	var rows []Row
	for _, name := range systems.Names() {
		sys, err := systems.ByName(name)
		if err != nil {
			return nil, err
		}
		bt, err := tap25d.PlaceCompact(sys, opt)
		if err != nil {
			return nil, err
		}
		sp, err := tap25d.PlaceCompactSeqPair(sys, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			Row{Label: name + " / B*-tree", TempC: bt.PeakC, WirelengthMM: bt.WirelengthMM},
			Row{Label: name + " / seq-pair", TempC: sp.PeakC, WirelengthMM: sp.WirelengthMM},
		)
	}
	return &Report{
		ID:      "E11",
		Title:   "Compact-placer cross-check: B*-tree (Compact-2.5D) vs Sequence Pair",
		Rows:    rows,
		Notes:   []string{"independent representations should agree within the compact regime (sanity for the baseline)"},
		Elapsed: time.Since(start),
	}, nil
}

// E12CoolingTradeoff quantifies the paper's introductory argument: a
// thermally-infeasible compact design can be rescued either by "advanced but
// expensive cooling" (a microchannel liquid cold plate) or, for free, by
// thermally-aware placement. The experiment evaluates the CPU-DRAM original
// placement and a TAP-2.5D placement under both forced air and liquid
// cooling.
func E12CoolingTradeoff(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.CPUDRAM()
	opt := cfg.options()
	lc := tap25d.LiquidCooling{} // defaults: 25 C inlet, 1 L/min, microchannel HTC

	origAir, err := tap25d.Evaluate(sys, systems.CPUDRAMOriginal(), opt)
	if err != nil {
		return nil, err
	}
	origLiq, err := tap25d.EvaluateLiquid(sys, systems.CPUDRAMOriginal(), lc, opt)
	if err != nil {
		return nil, err
	}
	tapRes, err := cfg.place(sys, opt)
	if err != nil {
		return nil, err
	}
	tapLiq, err := tap25d.EvaluateLiquid(sys, tapRes.Placement, lc, opt)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "E12",
		Title: "Cooling trade-off: thermally-aware placement vs expensive liquid cooling (intro argument)",
		Rows: []Row{
			{Label: "original + forced air", TempC: origAir.PeakC, WirelengthMM: origAir.WirelengthMM},
			{Label: "original + liquid plate", TempC: origLiq.PeakC, WirelengthMM: origLiq.WirelengthMM},
			{Label: "TAP-2.5D + forced air", TempC: tapRes.PeakC, WirelengthMM: tapRes.WirelengthMM},
			{Label: "TAP-2.5D + liquid plate", TempC: tapLiq.PeakC, WirelengthMM: tapLiq.WirelengthMM},
		},
		Notes: []string{
			"liquid cooling rescues the compact design without wirelength cost but adds pump/plate cost and plumbing;",
			"TAP-2.5D recovers most of the thermal headroom with the stock air cooler, which is the paper's core pitch",
		},
		Elapsed: time.Since(start),
	}
	mergeCounters(rep, origAir, tapRes)
	return rep, nil
}

// E13AlphaSweep maps the temperature-wirelength trade-off curve behind
// Eqn. (12) by fixing the weight alpha across a sweep (the dynamic Eqn. (13)
// policy picks its own point on this curve). Higher alpha buys temperature
// with wirelength; the dynamic policy should land near the knee.
func E13AlphaSweep(cfg Config) (*Report, error) {
	start := time.Now()
	sys := systems.CPUDRAM()
	base := cfg.options()
	base.Runs = 1

	var rows []Row
	var ctr metrics.Counters
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		o := base
		o.FixedAlpha = alpha
		res, err := cfg.place(sys, o)
		if err != nil {
			return nil, err
		}
		ctr.Merge(res.Metrics)
		rows = append(rows, Row{
			Label:        fmt.Sprintf("fixed alpha = %.1f", alpha),
			TempC:        res.PeakC,
			WirelengthMM: res.WirelengthMM,
		})
	}
	dyn, err := cfg.place(sys, base)
	if err != nil {
		return nil, err
	}
	ctr.Merge(dyn.Metrics)
	rows = append(rows, Row{Label: "dynamic alpha (Eqn. 13)", TempC: dyn.PeakC, WirelengthMM: dyn.WirelengthMM})
	return &Report{
		ID:       "E13",
		Title:    "Alpha sweep: the Eqn. 12 temperature-wirelength trade-off curve (extension)",
		Rows:     rows,
		Notes:    []string{"higher alpha trades wirelength for temperature; the dynamic policy picks its point by the thermal level"},
		Counters: ctr,
		Elapsed:  time.Since(start),
	}, nil
}

// syntheticSystem builds an n-chiplet system on a valid grid placement for
// the scaling study.
func syntheticSystem(n int, seed int64) (*chiplet.System, chiplet.Placement) {
	rng := rand.New(rand.NewSource(seed))
	sys := &chiplet.System{
		Name:              fmt.Sprintf("synthetic%d", n),
		InterposerW:       45,
		InterposerH:       45,
		PinsPerClumpLimit: 8192,
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	cell := 45.0 / float64(cols)
	die := cell - 2
	if die > 10 {
		die = 10
	}
	p := chiplet.NewPlacement(n)
	for i := 0; i < n; i++ {
		sys.Chiplets = append(sys.Chiplets, chiplet.Chiplet{
			Name:  fmt.Sprintf("C%d", i),
			W:     die,
			H:     die,
			Power: 20 + rng.Float64()*30,
		})
		r := i / cols
		c := i % cols
		p.Centers[i] = geom.Point{
			X: (float64(c) + 0.5) * cell,
			Y: (float64(r) + 0.5) * cell,
		}
	}
	// Ring plus a few chords: |N| grows with |C|.
	for i := 0; i < n; i++ {
		sys.Channels = append(sys.Channels, chiplet.Channel{Src: i, Dst: (i + 1) % n, Wires: 256})
	}
	for i := 0; i+cols < n; i += 2 {
		sys.Channels = append(sys.Channels, chiplet.Channel{Src: i, Dst: i + cols, Wires: 128})
	}
	return sys, p
}

// randomPlacement produces a valid random placement by jumping each chiplet
// to a random valid OCM node starting from a legalized compact placement.
// Failures (a system no OCM grid can host, an unlegalizable park position)
// surface as errors so a malformed ablation input fails its experiment
// cleanly instead of panicking the campaign.
func randomPlacement(sys *chiplet.System, seed int64) (chiplet.Placement, error) {
	grid, err := ocm.NewGrid(sys, 0)
	if err != nil {
		return chiplet.Placement{}, fmt.Errorf("experiments: random placement for %s: %w", sys.Name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	// Start from corners-out greedy: place chiplets one by one at random
	// valid nodes (checking only already-placed ones).
	p := chiplet.NewPlacement(len(sys.Chiplets))
	// Park everyone off to a known-valid arrangement first: legalize a
	// diagonal spread.
	for i := range p.Centers {
		p.Centers[i] = geom.Point{X: 1, Y: 1}
	}
	q, err := grid.Legalize(sys, p)
	if err != nil {
		return chiplet.Placement{}, fmt.Errorf("experiments: random placement for %s: %w", sys.Name, err)
	}
	for i := range q.Centers {
		if pt, ok := grid.RandomValidPosition(sys, q, i, rng); ok {
			q.Centers[i] = pt
		}
	}
	return q, nil
}
