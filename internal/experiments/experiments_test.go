package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast; shape assertions that need more
// fidelity live in the root bench suite and EXPERIMENTS.md.
func tinyConfig() Config {
	return Config{ThermalGrid: 16, Steps: 50, Runs: 1, CompactSteps: 2000, Seed: 1}
}

func TestPresets(t *testing.T) {
	r := Reduced()
	f := Full()
	if f.ThermalGrid != 64 || f.Steps != 4500 || f.Runs != 5 {
		t.Errorf("Full preset does not match the paper: %+v", f)
	}
	if r.ThermalGrid >= f.ThermalGrid || r.Steps >= f.Steps {
		t.Errorf("Reduced preset not smaller than Full")
	}
	var zero Config
	d := zero.withDefaults()
	if d.ThermalGrid == 0 || d.Steps == 0 || d.Runs == 0 || d.Seed == 0 {
		t.Errorf("withDefaults left zeros: %+v", d)
	}
}

func TestIDsAndDispatch(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("IDs = %v", ids)
	}
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Case-insensitive dispatch.
	if _, err := Run("e5", tinyConfig()); err != nil {
		t.Errorf("lower-case id rejected: %v", err)
	}
}

func TestE5Shape(t *testing.T) {
	rep, err := Run("E5", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E5" || len(rep.Rows) != 26 { // 2 x (1 summary + 12 workloads)
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	m2 := rep.Rows[0].Extra["mean_pct"]
	m3 := rep.Rows[13].Extra["mean_pct"]
	if m2 <= 0 || m3 <= m2 {
		t.Errorf("means not increasing: %v %v", m2, m3)
	}
}

func TestE7Shape(t *testing.T) {
	rep, err := Run("E7", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Gas-station routing time must grow with chiplet count (O(|C|^2...)).
	first := rep.Rows[0].Extra["route_gas_ms"]
	last := rep.Rows[len(rep.Rows)-1].Extra["route_gas_ms"]
	if last <= first {
		t.Errorf("gas routing time did not grow: %v -> %v", first, last)
	}
}

func TestE8NoConstraintViolations(t *testing.T) {
	rep, err := Run("E8", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if gap := row.Extra["gap_pct"]; gap < -1e-6 {
			t.Errorf("%s: fast router beat the exact MILP by %v%% — MILP bug", row.Label, gap)
		}
	}
}

func TestE1RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("E1 runs three placement flows")
	}
	rep, err := Run("E1", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.TempC < 50 || row.TempC > 200 || row.WirelengthMM <= 0 {
			t.Errorf("%s: implausible metrics %v C %v mm", row.Label, row.TempC, row.WirelengthMM)
		}
	}
}

func TestE4ReportsEnvelopes(t *testing.T) {
	if testing.Short() {
		t.Skip("E4 runs a placement flow plus two bisections")
	}
	rep, err := Run("E4", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	orig := rep.Rows[0].Extra["TDP_W"]
	tap := rep.Rows[1].Extra["TDP_W"]
	if orig <= 0 || tap <= 0 {
		t.Fatalf("bad envelopes: %v %v", orig, tap)
	}
	if delta := rep.Rows[2].Extra["delta_W"]; delta != tap-orig {
		t.Errorf("delta row inconsistent: %v != %v - %v", delta, tap, orig)
	}
}

func TestReportFormat(t *testing.T) {
	rep := &Report{
		ID:    "EX",
		Title: "test",
		Rows: []Row{
			{Label: "a", TempC: 90, WirelengthMM: 1000},
			{Label: "b", Extra: map[string]float64{"z": 1, "a": 2}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	for _, want := range []string{"== EX: test", "T=  90.00 C", "WL=     1000 mm", "a=2.00", "z=1.00", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
}

func TestSyntheticSystemValid(t *testing.T) {
	for _, n := range []int{4, 9, 16, 25} {
		sys, p := syntheticSystem(n, 1)
		if err := sys.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := sys.CheckPlacement(p); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestRandomPlacementValid(t *testing.T) {
	sys, _ := syntheticSystem(8, 1)
	p, err := randomPlacement(sys, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckPlacement(p); err != nil {
		t.Fatal(err)
	}
}
