package experiments

import "testing"

// Smoke tests running every remaining experiment end-to-end at tiny
// fidelity. The shape assertions live in EXPERIMENTS.md and the bench suite;
// here we verify the pipelines complete and produce structurally sound
// reports. Skipped under -short.

func TestE2RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four placement flows")
	}
	rep, err := Run("E2", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Larger interposers must not be hotter at equal link type.
	if rep.Rows[2].TempC > rep.Rows[0].TempC+1 {
		t.Errorf("50 mm repeaterless (%v C) hotter than 45 mm (%v C)",
			rep.Rows[2].TempC, rep.Rows[0].TempC)
	}
	if len(rep.Notes) < 3 {
		t.Error("expected measured-delta notes")
	}
}

func TestE3RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two placement flows")
	}
	rep, err := Run("E3", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The original and compact CPU-DRAM placements are thermally infeasible
	// by construction.
	if rep.Rows[0].TempC <= 85 || rep.Rows[1].TempC <= 85 {
		t.Errorf("original/compact should exceed 85 C: %v, %v",
			rep.Rows[0].TempC, rep.Rows[1].TempC)
	}
}

func TestE6RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a placement flow")
	}
	rep, err := Run("E6", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every Ascend 910 design point is thermally safe.
	for _, row := range rep.Rows {
		if row.TempC > 85 {
			t.Errorf("%s: %v C above the threshold", row.Label, row.TempC)
		}
	}
	// The reference layout has the shortest wirelength.
	if rep.Rows[0].WirelengthMM > rep.Rows[1].WirelengthMM {
		t.Errorf("original WL %v above compact %v", rep.Rows[0].WirelengthMM, rep.Rows[1].WirelengthMM)
	}
}

func TestE9RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four placement flows")
	}
	rep, err := Run("E9", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.TempC <= 45 {
			t.Errorf("%s: implausible temperature %v", row.Label, row.TempC)
		}
	}
}

func TestE10RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a placement flow plus TDP bisections")
	}
	rep, err := Run("E10", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	origLinks := rep.Rows[0].Extra
	tapRLLinks := rep.Rows[2].Extra
	tapGasLinks := rep.Rows[4].Extra
	if origLinks["mean_cycles"] < 1 || tapRLLinks["mean_cycles"] < 1 {
		t.Error("mean link cycles below 1")
	}
	// TAP spreads chiplets, so its links cannot be faster on average.
	if tapRLLinks["mean_cycles"] < origLinks["mean_cycles"]-0.05 {
		t.Errorf("TAP links (%v cycles) faster than original (%v)",
			tapRLLinks["mean_cycles"], origLinks["mean_cycles"])
	}
	// Gas stations break long wires into short hops: mean hop latency must
	// not exceed the repeaterless classification.
	if tapGasLinks["mean_cycles"] > tapRLLinks["mean_cycles"]+0.05 {
		t.Errorf("gas-station hops (%v cycles) slower than repeaterless (%v)",
			tapGasLinks["mean_cycles"], tapRLLinks["mean_cycles"])
	}
	tapPerf := rep.Rows[5].Extra
	if tapPerf["uplift_pct"] < 0 {
		t.Errorf("negative frequency uplift %v", tapPerf["uplift_pct"])
	}
}

func TestE12RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a placement flow plus liquid solves")
	}
	rep, err := Run("E12", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Liquid cooling must beat forced air on the same placement, both times.
	if rep.Rows[1].TempC >= rep.Rows[0].TempC {
		t.Errorf("liquid (%v C) not cooler than air (%v C) on the original placement",
			rep.Rows[1].TempC, rep.Rows[0].TempC)
	}
	if rep.Rows[3].TempC >= rep.Rows[2].TempC {
		t.Errorf("liquid (%v C) not cooler than air (%v C) on the TAP placement",
			rep.Rows[3].TempC, rep.Rows[2].TempC)
	}
	// Cooling does not change the routing.
	if rep.Rows[1].WirelengthMM != rep.Rows[0].WirelengthMM {
		t.Error("liquid cooling changed the wirelength")
	}
}

func TestE13RunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six placement flows")
	}
	rep, err := Run("E13", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The extreme weights should order as a trade-off: the most
	// temperature-weighted point must not be hotter than the most
	// wirelength-weighted one.
	if rep.Rows[4].TempC > rep.Rows[0].TempC+1 {
		t.Errorf("alpha=0.9 (%v C) hotter than alpha=0.1 (%v C)",
			rep.Rows[4].TempC, rep.Rows[0].TempC)
	}
}
