package experiments

import (
	"math"
	"math/rand"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/placer"
	"tap25d/internal/route"
	"tap25d/internal/surrogate"
	"tap25d/internal/systems"
	"tap25d/internal/thermal"
)

// TestSurrogateDriftWithinAuditBound is the accuracy property behind the
// two-fidelity annealer's audit design: warm the fitter up on 50 random
// perturbations of each paper case study (each paying an exact solve, as the
// online fit does), then require the drift — predicted minus exact peak
// temperature — to stay under the default audit bound in RMS on a fresh
// 50-perturbation holdout. If this breaks, the annealer's drift audits would
// be refitting constantly and the prescreen would buy nothing.
func TestSurrogateDriftWithinAuditBound(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal solves in -short mode")
	}
	const perturbations = 50
	bound := surrogate.Config{}.WithDefaults().AuditBoundC
	for _, name := range systems.Names() {
		t.Run(name, func(t *testing.T) {
			sys, err := systems.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			base, err := randomPlacement(sys, 1)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := placer.NewSystemEvaluator(sys, thermal.Options{Grid: 16}, route.Options{})
			if err != nil {
				t.Fatal(err)
			}
			exact := func(q chiplet.Placement) float64 {
				tempC, _, err := ev.Evaluate(q)
				if err != nil {
					t.Fatal(err)
				}
				return tempC
			}
			// Jitter one die at a time by up to ±2 mm, clamped to the
			// interposer — the move scale of the annealer's low-temperature
			// regime, where the prescreen does its work. Rejection-sample
			// until the jitter keeps the placement legal (min gap, Eqn. 10).
			rng := rand.New(rand.NewSource(7))
			perturb := func() chiplet.Placement {
				for {
					q := base.Clone()
					i := rng.Intn(len(q.Centers))
					w, h := sys.Chiplets[i].W, sys.Chiplets[i].H
					if q.Rotated[i] {
						w, h = h, w
					}
					q.Centers[i].X += (rng.Float64()*2 - 1) * 2
					q.Centers[i].Y += (rng.Float64()*2 - 1) * 2
					q.Centers[i].X = math.Max(w/2, math.Min(sys.InterposerW-w/2, q.Centers[i].X))
					q.Centers[i].Y = math.Max(h/2, math.Min(sys.InterposerH-h/2, q.Centers[i].Y))
					if sys.CheckPlacement(q) == nil {
						return q
					}
				}
			}

			fit := surrogate.NewFitter(surrogate.Config{Window: perturbations})
			for i := 0; i < perturbations; i++ {
				q := perturb()
				fit.Observe(sys, q, exact(q))
			}
			fit.Refit(sys)

			var sumSq, maxAbs float64
			for i := 0; i < perturbations; i++ {
				q := perturb()
				e := fit.Predict(sys, q) - exact(q)
				sumSq += e * e
				maxAbs = math.Max(maxAbs, math.Abs(e))
			}
			rms := math.Sqrt(sumSq / perturbations)
			t.Logf("%s: drift RMS %.3f C (max %.3f C), audit bound %.1f C", name, rms, maxAbs, bound)
			if rms > bound {
				t.Fatalf("%s: surrogate drift RMS %.3f C exceeds the audit bound %.1f C", name, rms, bound)
			}
		})
	}
}
