package service

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tap25d/internal/placer"
)

// This file implements the crash-safe job-lease protocol that lets N worker
// processes drain one job directory. A worker claims a queued job by
// atomically creating a CRC-sealed lease file (O_CREATE|O_EXCL is the mutual
// exclusion: exactly one creator wins), renews it on a heartbeat ticker, and
// writes checkpoints and results only while it still holds the current
// fencing epoch. A scavenger that finds an expired lease removes it and
// re-acquires the job under an incremented epoch, so a worker that was merely
// wedged (not dead) discovers on its next renewal — or on its next checkpoint
// write, whichever comes first — that it lost the job, and abandons the
// attempt without touching the record.
//
// The protocol is a lease, not a lock: with plain files there is no
// compare-and-swap, so a microsecond read-verify-write window remains in
// renew/release/reclaim. Every such window is closed by fencing — any write
// that matters (checkpoint, job record) re-verifies lease ownership first,
// and a stale epoch is rejected — which is exactly the standard remedy for
// lease-based mutual exclusion over storage without atomic conditional
// writes.

// leaseFormat tags the sealed on-disk lease files.
const leaseFormat = "tap25d-lease"

// Lease failure sentinels.
var (
	// ErrLeaseHeld rejects acquiring a lease someone else holds (and has not
	// let expire).
	ErrLeaseHeld = errors.New("service: job lease held by another worker")
	// ErrLeaseLost marks a worker discovering mid-attempt that its lease
	// expired or was reclaimed under a newer fencing epoch: the attempt must
	// be abandoned without writing anything.
	ErrLeaseLost = errors.New("service: job lease lost (expired or fenced)")
)

// lease is the persisted claim of one worker on one running job. The Epoch is
// the fencing token: it increases by at least one on every claim and every
// reclaim of the job, and a writer holding an older epoch is stale.
type lease struct {
	JobID    string `json:"job_id"`
	WorkerID string `json:"worker_id"`
	Epoch    int64  `json:"epoch"`
	// AcquiredAt is when this worker claimed the job; RenewedAt advances on
	// every heartbeat; ExpiresAt is the deadline after which any scavenger
	// may reclaim the job.
	AcquiredAt time.Time `json:"acquired_at"`
	RenewedAt  time.Time `json:"renewed_at"`
	ExpiresAt  time.Time `json:"expires_at"`
}

// expired reports whether the lease's heartbeat deadline has passed.
func (l *lease) expired(now time.Time) bool { return now.After(l.ExpiresAt) }

// leasePath is the lease file of one job within the lease directory.
func leasePath(dir, jobID string) string {
	return filepath.Join(dir, jobID+".lease.json")
}

// readLease loads and verifies one job's lease file. A missing file returns
// an error matching fs.ErrNotExist; a torn or corrupt file (a crash mid-
// create can leave one, since the O_EXCL create cannot go through a rename)
// matches placer.ErrCheckpointCorrupt — callers treat both as reclaimable.
func readLease(dir, jobID string) (*lease, error) {
	blob, err := os.ReadFile(leasePath(dir, jobID))
	if err != nil {
		return nil, err
	}
	var l lease
	if err := placer.OpenSealedJSON(blob, leaseFormat, &l); err != nil {
		return nil, err
	}
	return &l, nil
}

// acquireLease atomically creates the job's lease file. Exactly one caller
// wins a given acquire race; losers get ErrLeaseHeld (whether the standing
// lease is live, expired, or torn — expiry is the scavenger's business, not
// the claimer's). The file is fsynced, and its directory entry made durable,
// before the claim is considered taken, so a crash immediately after a
// successful acquire cannot leave the worker believing it holds a claim the
// disk never recorded.
func acquireLease(dir, jobID, workerID string, epoch int64, ttl time.Duration, now time.Time) (*lease, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &lease{
		JobID:      jobID,
		WorkerID:   workerID,
		Epoch:      epoch,
		AcquiredAt: now.UTC(),
		RenewedAt:  now.UTC(),
		ExpiresAt:  now.UTC().Add(ttl),
	}
	blob, err := placer.SealJSON(leaseFormat, l)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(leasePath(dir, jobID), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("%w: %s", ErrLeaseHeld, jobID)
		}
		return nil, err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(leasePath(dir, jobID))
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(leasePath(dir, jobID))
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(leasePath(dir, jobID))
		return nil, err
	}
	syncLeaseDir(dir)
	return l, nil
}

// syncLeaseDir fsyncs the lease directory so creates and removes survive a
// crash; filesystems that cannot fsync directories keep the rename/create
// atomicity anyway.
func syncLeaseDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// renewLease advances the heartbeat deadline of a lease the caller believes
// it holds. It re-reads the file first: a missing, corrupt, or reassigned
// lease (different worker or epoch) yields ErrLeaseLost — the job was
// reclaimed, and the caller must abandon the attempt.
func renewLease(dir string, l *lease, ttl time.Duration, now time.Time) error {
	if err := checkLease(dir, l); err != nil {
		return err
	}
	renewed := *l
	renewed.RenewedAt = now.UTC()
	renewed.ExpiresAt = now.UTC().Add(ttl)
	if err := placer.WriteSealedFile(leasePath(dir, l.JobID), leaseFormat, &renewed); err != nil {
		return err
	}
	*l = renewed
	return nil
}

// checkLease verifies that the on-disk lease still names the caller as the
// holder under the caller's epoch. It is the synchronous fencing check run
// before every write that matters (each checkpoint, the final record
// persist), so a stale writer is rejected within one file read of the
// reclaim — not merely at its next heartbeat.
func checkLease(dir string, l *lease) error {
	cur, err := readLease(dir, l.JobID)
	if err != nil {
		return fmt.Errorf("%w: %s: lease unreadable: %v", ErrLeaseLost, l.JobID, err)
	}
	if cur.WorkerID != l.WorkerID || cur.Epoch != l.Epoch {
		return fmt.Errorf("%w: %s: lease now held by %q at epoch %d (we are %q at epoch %d)",
			ErrLeaseLost, l.JobID, cur.WorkerID, cur.Epoch, l.WorkerID, l.Epoch)
	}
	return nil
}

// releaseLease removes the caller's lease file. A lease that is no longer the
// caller's (already reclaimed) is left alone: the new holder owns it now.
func releaseLease(dir string, l *lease) error {
	if err := checkLease(dir, l); err != nil {
		return err
	}
	if err := os.Remove(leasePath(dir, l.JobID)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	syncLeaseDir(dir)
	return nil
}

// removeExpiredLease deletes a lease file the caller has observed to be
// expired (or corrupt), clearing the way for a reclaim acquire. Concurrent
// removers are harmless — at most one unlink succeeds, and the acquire that
// follows is serialized by O_EXCL. The documented race (the dying worker
// renews in the microseconds between the observation and the unlink) is
// closed by fencing: the reclaim bumps the epoch in the job record, so the
// revenant's checkpoint and record writes are rejected.
func removeExpiredLease(dir, jobID string) {
	os.Remove(leasePath(dir, jobID))
	syncLeaseDir(dir)
}

// leaseGuard is a worker's handle on the lease protecting its running job:
// the heartbeat goroutine renews through it, and the checkpoint/finalize
// paths consult it (and the disk) before writing. The mutex serializes
// those goroutines over the shared lease struct — a renewal rewrites its
// deadlines while a fencing check reads holder and epoch.
type leaseGuard struct {
	dir   string
	mu    sync.Mutex
	lease *lease
	lost  chan struct{} // closed once the lease is known lost
}

func newLeaseGuard(dir string, l *lease) *leaseGuard {
	return &leaseGuard{dir: dir, lease: l, lost: make(chan struct{})}
}

// markLost records that the lease is gone. Idempotent.
func (g *leaseGuard) markLost() {
	select {
	case <-g.lost:
	default:
		close(g.lost)
	}
}

// isLost reports whether the lease has been observed lost.
func (g *leaseGuard) isLost() bool {
	select {
	case <-g.lost:
		return true
	default:
		return false
	}
}

// check is the synchronous fencing verification: it fails fast if the lease
// was already observed lost, otherwise re-reads the lease file and compares
// holder and epoch. A failed check marks the guard lost.
func (g *leaseGuard) check() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.isLost() {
		return fmt.Errorf("%w: %s", ErrLeaseLost, g.lease.JobID)
	}
	if err := checkLease(g.dir, g.lease); err != nil {
		g.markLost()
		return err
	}
	return nil
}

// renew advances the heartbeat deadline, marking the guard lost on fencing
// failure.
func (g *leaseGuard) renew(ttl time.Duration, now time.Time) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.isLost() {
		return fmt.Errorf("%w: %s", ErrLeaseLost, g.lease.JobID)
	}
	if err := renewLease(g.dir, g.lease, ttl, now); err != nil {
		if errors.Is(err, ErrLeaseLost) {
			g.markLost()
		}
		return err
	}
	return nil
}
