package service

import (
	"errors"
	"io/fs"
	"os"
	"testing"
	"time"

	"tap25d/internal/placer"
)

// TestLeaseAcquireExclusive checks the mutual exclusion at the heart of the
// protocol: exactly one creator of a job's lease file wins, and the loser is
// told the lease is held — even when the standing lease has already expired
// (expiry is the scavenger's business, not the claimer's).
func TestLeaseAcquireExclusive(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	if _, err := acquireLease(dir, "job-1", "w-a", 1, time.Second, now); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := acquireLease(dir, "job-1", "w-b", 1, time.Second, now); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second acquire: err %v, want ErrLeaseHeld", err)
	}
	expired := now.Add(-time.Hour)
	if _, err := acquireLease(dir, "job-2", "w-a", 1, time.Second, expired); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := acquireLease(dir, "job-2", "w-b", 2, time.Second, now); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire over expired lease: err %v, want ErrLeaseHeld (removal is the scavenger's)", err)
	}
}

// TestLeaseRenewExtendsDeadline checks the heartbeat path: renewals push the
// expiry forward, and without them the lease runs out.
func TestLeaseRenewExtendsDeadline(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	l, err := acquireLease(dir, "job-1", "w-a", 1, time.Second, now)
	if err != nil {
		t.Fatal(err)
	}
	if l.expired(now.Add(500 * time.Millisecond)) {
		t.Fatal("lease expired inside its TTL")
	}
	if !l.expired(now.Add(2 * time.Second)) {
		t.Fatal("lease not expired past its TTL")
	}
	if err := renewLease(dir, l, time.Second, now.Add(900*time.Millisecond)); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if l.expired(now.Add(1500 * time.Millisecond)) {
		t.Fatal("renewed lease expired before its new deadline")
	}
	cur, err := readLease(dir, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.ExpiresAt.Equal(l.ExpiresAt) {
		t.Fatalf("on-disk deadline %v, in-memory %v", cur.ExpiresAt, l.ExpiresAt)
	}
}

// TestLeaseFencingRejectsStaleWriter is the stale-epoch rejection drill at
// the protocol level: after a reclaim re-acquires the job under epoch 2, the
// original epoch-1 holder fails every guarded operation — check (the
// pre-checkpoint and pre-record fence), renew (the heartbeat), and release —
// and the reclaimer's lease survives untouched.
func TestLeaseFencingRejectsStaleWriter(t *testing.T) {
	dir := t.TempDir()
	past := time.Now().Add(-time.Hour)
	stale, err := acquireLease(dir, "job-1", "w-dead", 1, time.Second, past)
	if err != nil {
		t.Fatal(err)
	}
	guard := newLeaseGuard(dir, stale)

	// The scavenger's takeover: clear the expired file, re-acquire at epoch 2.
	removeExpiredLease(dir, "job-1")
	if _, err := acquireLease(dir, "job-1", "w-live", 2, time.Minute, time.Now()); err != nil {
		t.Fatalf("reclaim acquire: %v", err)
	}

	if err := guard.check(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale guard.check: err %v, want ErrLeaseLost", err)
	}
	if !guard.isLost() {
		t.Fatal("failed check did not mark the guard lost")
	}
	if err := guard.renew(time.Second, time.Now()); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale guard.renew: err %v, want ErrLeaseLost", err)
	}
	if err := releaseLease(dir, stale); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale release: err %v, want ErrLeaseLost", err)
	}
	cur, err := readLease(dir, "job-1")
	if err != nil {
		t.Fatalf("reclaimer's lease gone: %v", err)
	}
	if cur.WorkerID != "w-live" || cur.Epoch != 2 {
		t.Fatalf("lease holder %s epoch %d, want w-live epoch 2", cur.WorkerID, cur.Epoch)
	}
}

// TestLeaseCornerFiles covers the unreadable-lease paths: a missing file
// matches fs.ErrNotExist, and a torn or scribbled one (a crash mid-create)
// matches placer.ErrCheckpointCorrupt — the scavenger treats both as
// reclaimable rather than wedging the job forever.
func TestLeaseCornerFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := readLease(dir, "absent"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing lease: err %v, want fs.ErrNotExist", err)
	}
	if err := os.WriteFile(leasePath(dir, "torn"), []byte("{half a le"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readLease(dir, "torn"); !errors.Is(err, placer.ErrCheckpointCorrupt) {
		t.Fatalf("torn lease: err %v, want ErrCheckpointCorrupt", err)
	}
}
