package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tap25d"
	"tap25d/internal/metrics"
)

// WorkerConfig parameterizes one job worker — either a goroutine of the
// server's in-process pool or a standalone cmd/tap25d-worker process attached
// to the same data directory. The zero value of every optional field is a
// sensible default; DataDir is required for standalone construction.
type WorkerConfig struct {
	// DataDir is the shared service state root (the server's -data).
	DataDir string
	// ID names this worker in leases, job records and logs. Default
	// "worker-<hostname>-<pid>" (standalone) — in-process pools add a slot
	// suffix.
	ID string
	// LeaseTTL is the job-lease heartbeat deadline (default 10s): a worker
	// that fails to renew for this long is presumed dead and its job is
	// reclaimed. Smaller recovers crashed jobs faster; larger tolerates
	// longer worker stalls.
	LeaseTTL time.Duration
	// Heartbeat is the lease renewal cadence (default LeaseTTL/3).
	Heartbeat time.Duration
	// Poll is the queue-directory rescan cadence for discovering jobs
	// submitted by other processes (default 500ms). Local submissions wake
	// workers immediately regardless.
	Poll time.Duration
	// ScavengeEvery rate-limits this worker's expired-lease sweeps
	// (default LeaseTTL).
	ScavengeEvery time.Duration
	// RetryBudget is the number of crash reclamations a job survives before
	// it fails terminally (default 3; negative means no retries).
	RetryBudget int
	// RetryBackoff is the re-dispatch delay after the first reclamation,
	// doubling per reclamation (default 1s) up to RetryBackoffMax
	// (default 60s).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// CheckpointEvery and ProgressEvery mirror the server's flags: the
	// per-run checkpoint cadence (default 25) and the step-event cadence
	// (default 10).
	CheckpointEvery int
	ProgressEvery   int
	// Observer, when non-nil, aggregates this worker's counters, gauges and
	// spans. nil disables observability.
	Observer *tap25d.Observer
	// Logger receives structured job-lifecycle logs. nil discards them.
	Logger *slog.Logger
}

func (c WorkerConfig) id() string {
	if c.ID != "" {
		return c.ID
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "local"
	}
	return fmt.Sprintf("worker-%s-%d", host, os.Getpid())
}

func (c WorkerConfig) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 10 * time.Second
}

func (c WorkerConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return c.leaseTTL() / 3
}

func (c WorkerConfig) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 500 * time.Millisecond
}

func (c WorkerConfig) scavengeEvery() time.Duration {
	if c.ScavengeEvery > 0 {
		return c.ScavengeEvery
	}
	return c.leaseTTL()
}

func (c WorkerConfig) retryBudget() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	if c.RetryBudget < 0 {
		return 0
	}
	return 3
}

func (c WorkerConfig) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return time.Second
}

func (c WorkerConfig) retryBackoffMax() time.Duration {
	if c.RetryBackoffMax > 0 {
		return c.RetryBackoffMax
	}
	return time.Minute
}

func (c WorkerConfig) checkpointEvery() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 25
}

func (c WorkerConfig) progressEvery() int {
	if c.ProgressEvery > 0 {
		return c.ProgressEvery
	}
	return 10
}

// workerHooks let the server graft its process-local concerns (SSE hub,
// trace sinks, cancel registry, gauges) onto the shared claim/execute/
// finalize engine. Every hook is optional; a standalone worker runs with the
// zero value.
type workerHooks struct {
	// execContext wraps the job context before execution (trace attachment,
	// root span); the returned func runs when execution ends.
	execContext func(ctx context.Context, j *Job) (context.Context, func())
	// progress receives every RunEvent of a running job (hub fan-out).
	progress func(jobID string, e tap25d.RunEvent)
	// onClaim runs after a successful claim, with the attempt's cancel func
	// (the server's DELETE handler uses it for prompt local cancellation).
	onClaim func(j *Job, cancel context.CancelFunc)
	// onDone runs after every attempt, terminal or not (busy bookkeeping).
	onDone func(j *Job)
	// onFinal runs when this worker drove the job to a terminal state.
	onFinal func(j *Job)
	// count sinks counter deltas (the server merges them into its totals).
	count func(f func(c *metrics.Counters))
}

// Worker drains one shared job directory through the lease protocol: claim
// by exclusive lease create, renew on a heartbeat, execute with fenced
// checkpoint writes, finalize only while still holding the lease. Any number
// of Workers — across any number of processes — can attach to one data
// directory. Construct with NewWorker and call Run.
type Worker struct {
	cfg      WorkerConfig
	queue    *queue
	sc       *scavenger
	hooks    workerHooks
	obs      *tap25d.Observer
	log      *slog.Logger
	dataDir  string
	leaseDir string

	countMu  sync.Mutex
	counters metrics.Counters
}

// NewWorker opens cfg.DataDir and returns a standalone worker attached to
// it. The directory layout is the server's: job records under jobs/, leases
// under leases/, per-job checkpoints under ckpt/.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: WorkerConfig.DataDir is required")
	}
	q, err := newQueue(filepath.Join(cfg.DataDir, "jobs"), 0)
	if err != nil {
		return nil, err
	}
	return newWorkerWith(cfg, q, workerHooks{}), nil
}

// newWorkerWith attaches a worker to an existing queue (the server's pool
// shares one) with the given hooks.
func newWorkerWith(cfg WorkerConfig, q *queue, hooks workerHooks) *Worker {
	w := &Worker{
		cfg:      cfg,
		queue:    q,
		hooks:    hooks,
		obs:      cfg.Observer,
		log:      cfg.Logger,
		dataDir:  cfg.DataDir,
		leaseDir: filepath.Join(cfg.DataDir, "leases"),
	}
	if w.log == nil {
		w.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	w.sc = &scavenger{
		queue:    q,
		leaseDir: w.leaseDir,
		workerID: cfg.id(),
		ttl:      cfg.leaseTTL(),
		budget:   cfg.retryBudget(),
		backoff:  cfg.retryBackoff(),
		backoffM: cfg.retryBackoffMax(),
		obs:      w.obs,
		log:      w.log,
		count:    w.count,
		publish:  hooks.progress,
		onFinal:  hooks.onFinal,
	}
	return w
}

// count routes a counter delta to the hook sink (the server) or, standalone,
// into this worker's own totals and observer.
func (w *Worker) count(f func(c *metrics.Counters)) {
	if w.hooks.count != nil {
		w.hooks.count(f)
		return
	}
	var delta metrics.Counters
	f(&delta)
	w.countMu.Lock()
	w.counters.Merge(delta)
	w.countMu.Unlock()
	w.obs.AbsorbCounters(delta)
}

// Counters returns a snapshot of a standalone worker's counters (a worker
// wired into a server contributes to the server's totals instead).
func (w *Worker) Counters() metrics.Counters {
	w.countMu.Lock()
	defer w.countMu.Unlock()
	return w.counters
}

// ckptDir is the job's private checkpoint directory.
func (w *Worker) ckptDir(id string) string {
	return filepath.Join(w.dataDir, "ckpt", id)
}

// Run drains the queue until ctx is canceled: scavenge expired leases, claim
// the best available job, execute it, repeat; block on the queue's wake
// channel (local submissions), the poll ticker (cross-process discovery) and
// the earliest backoff gate when idle. Cancellation is a graceful drain — a
// running job checkpoints, goes back to queued without a retry penalty, and
// its lease is released — so SIGTERM never costs a retry. Run returns nil
// on drain.
func (w *Worker) Run(ctx context.Context) error {
	poll := time.NewTicker(w.cfg.poll())
	defer poll.Stop()
	for {
		if ctx.Err() != nil {
			return nil
		}
		w.sc.maybeSweep(time.Now(), w.cfg.scavengeEvery())
		if claimed := w.tryClaim(time.Now()); claimed != nil {
			w.runLeased(ctx, claimed.job, claimed.lease)
			continue
		}
		// Idle: wake on a local submission, the next poll, or the earliest
		// reclaim backoff gate — whichever is first.
		var gateC <-chan time.Time
		var gateT *time.Timer
		if gate, ok := w.queue.nextGate(time.Now()); ok {
			gateT = time.NewTimer(time.Until(gate) + time.Millisecond)
			gateC = gateT.C
		}
		select {
		case <-ctx.Done():
			if gateT != nil {
				gateT.Stop()
			}
			return nil
		case <-w.queue.notify:
		case <-gateC:
		case <-poll.C:
			w.queue.rescan()
		}
		if gateT != nil {
			gateT.Stop()
		}
	}
}

// claimed pairs a job snapshot with the lease protecting it.
type claimed struct {
	job   *Job
	lease *lease
}

// tryClaim walks the claimable jobs best-first and attempts to take one:
// acquire the lease at epoch+1, then re-verify the record from disk and mark
// it running. A job whose lease is held, whose record moved on, or whose
// cancellation marker appeared is skipped (the marker finalizes it as
// canceled right here — no point dispatching work the user already killed).
func (w *Worker) tryClaim(now time.Time) *claimed {
	for _, cand := range w.queue.claimable(now) {
		epoch := cand.Epoch + 1
		l, err := acquireLease(w.leaseDir, cand.ID, w.cfg.id(), epoch, w.cfg.leaseTTL(), now)
		if err != nil {
			if !errors.Is(err, ErrLeaseHeld) {
				w.log.Warn("lease acquire failed", "job_id", cand.ID, "error", err)
			}
			continue
		}
		if w.queue.cancelRequested(cand.ID) {
			w.finalizeCanceledBeforeRun(cand, epoch, l)
			continue
		}
		j, err := w.queue.markRunning(cand.ID, w.cfg.id(), epoch, now)
		if err != nil {
			releaseLease(w.leaseDir, l)
			if !errors.Is(err, errNotClaimable) {
				w.log.Warn("claim persist failed", "job_id", cand.ID, "error", err)
			}
			continue
		}
		w.count(func(c *metrics.Counters) { c.JobsLeasesAcquired++ })
		return &claimed{job: j, lease: l}
	}
	return nil
}

// finalizeCanceledBeforeRun retires a queued job whose durable cancel marker
// was written before any worker picked it up.
func (w *Worker) finalizeCanceledBeforeRun(j *Job, epoch int64, l *lease) {
	final, err := w.queue.update(j.ID, func(rec *Job) {
		rec.State = StateCanceled
		rec.Epoch = epoch
		at := time.Now().UTC()
		rec.FinishedAt = &at
	})
	releaseLease(w.leaseDir, l)
	if err != nil {
		w.obs.Add("service_persist_errors", 1)
		return
	}
	w.queue.clearCancel(j.ID)
	w.count(func(c *metrics.Counters) { c.JobsCanceled++ })
	if w.hooks.onFinal != nil {
		w.hooks.onFinal(final)
	}
	w.log.Info("job canceled before dispatch", "job_id", j.ID, "tenant", j.Spec.tenant())
}

// runLeased executes one claimed job attempt under its lease: heartbeat
// renewals keep the claim alive, every checkpoint write re-verifies the
// fencing epoch, and the final record write happens only while the lease
// still names this worker. A lease lost mid-attempt abandons the attempt
// without writing anything — the reclaiming peer owns the job now.
func (w *Worker) runLeased(ctx context.Context, job *Job, l *lease) {
	jobCtx, cancelJob := context.WithCancel(ctx)
	defer cancelJob()
	guard := newLeaseGuard(w.leaseDir, l)

	if w.hooks.onClaim != nil {
		w.hooks.onClaim(job, cancelJob)
	}
	if w.hooks.onDone != nil {
		defer func() { w.hooks.onDone(job) }()
	}
	start := time.Now()
	w.obs.ObserveNamed("job_queue_wait", start.Sub(job.SubmittedAt))
	w.log.Info("job started",
		"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
		"worker", w.cfg.id(), "epoch", job.Epoch, "attempt", job.Attempts)

	// Heartbeat: renew the lease at a cadence comfortably inside the TTL,
	// and surface cross-process cancellation (the durable marker) into the
	// job context. A renewal that reports the lease lost cuts the context —
	// the placer checkpoints and unwinds, and finalize skips all writes.
	var userCanceled atomic.Bool
	hbCtx, stopHB := context.WithCancel(context.Background())
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(w.cfg.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case now := <-t.C:
				if !userCanceled.Load() && w.queue.cancelRequested(job.ID) {
					userCanceled.Store(true)
					cancelJob()
				}
				if err := guard.renew(w.cfg.leaseTTL(), now); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						w.log.Warn("job lease lost at heartbeat",
							"job_id", job.ID, "worker", w.cfg.id(), "error", err)
						cancelJob()
						return
					}
					// Transient I/O trouble: keep heartbeating; the lease
					// only dies if renewals keep failing past the TTL.
					w.log.Warn("lease renewal failed",
						"job_id", job.ID, "worker", w.cfg.id(), "error", err)
				}
			}
		}
	}()

	execCtx := jobCtx
	endSpan := func() {}
	if w.hooks.execContext != nil {
		execCtx, endSpan = w.hooks.execContext(jobCtx, job)
	}
	res, peaks, resumed, runErr := w.execute(execCtx, job, guard)
	endSpan()
	stopHB()
	<-hbDone

	w.finalize(job, guard, res, peaks, resumed, runErr,
		userCanceled.Load() || w.queue.cancelRequested(job.ID), start)
}

// execute runs the placement flow of one attempt. Checkpoint writes are
// fenced: each one re-reads the lease and fails with ErrLeaseLost if the
// epoch moved, so a stale worker stops contaminating the checkpoint
// directory within one write of losing the job.
func (w *Worker) execute(ctx context.Context, job *Job, guard *leaseGuard) (*tap25d.Result, []float64, bool, error) {
	sys, err := job.Spec.LoadSystem()
	if err != nil {
		return nil, nil, false, err
	}
	store := &tap25d.CheckpointStore{Dir: w.ckptDir(job.ID), Obs: w.obs}
	var resumedMu sync.Mutex
	resumed := false
	progress := func(e tap25d.RunEvent) {
		if e.Kind == tap25d.EventResume {
			resumedMu.Lock()
			resumed = true
			resumedMu.Unlock()
		}
		if w.hooks.progress != nil {
			w.hooks.progress(job.ID, e)
		}
	}
	res, err := tap25d.Place(sys, tap25d.Options{
		ThermalGrid:     job.Spec.ThermalGrid,
		Precond:         job.Spec.Precond,
		Steps:           job.Spec.Steps,
		Runs:            job.Spec.Runs,
		CompactSteps:    job.Spec.CompactSteps,
		Seed:            job.Spec.Seed,
		GasStation:      job.Spec.GasStation,
		Surrogate:       !job.Spec.NoSurrogate,
		Context:         ctx,
		Progress:        progress,
		ProgressEvery:   w.cfg.progressEvery(),
		CheckpointEvery: w.cfg.checkpointEvery(),
		Checkpoint: func(cp *tap25d.RunCheckpoint) error {
			if err := guard.check(); err != nil {
				return err
			}
			return store.Checkpoint(cp)
		},
		Restore:  store.Restore,
		Observer: w.obs,
	})
	resumedMu.Lock()
	defer resumedMu.Unlock()
	var peaks []float64
	if err == nil && res != nil && len(job.Spec.PowerScenarios) > 0 {
		if peaks, err = w.scenarioPeaks(ctx, sys, job, res.Placement); err != nil {
			err = fmt.Errorf("power scenario sweep: %w", err)
		}
	}
	return res, peaks, resumed, err
}

// scenarioPeaks re-evaluates a finished placement under the job's requested
// power corners in one batched multi-RHS thermal solve and returns the peak
// temperature of each corner.
func (w *Worker) scenarioPeaks(ctx context.Context, sys *tap25d.System, job *Job, p tap25d.Placement) ([]float64, error) {
	results, err := tap25d.EvaluateScenarios(sys, p, job.Spec.PowerScenarios, tap25d.Options{
		ThermalGrid: job.Spec.ThermalGrid,
		Precond:     job.Spec.Precond,
		Context:     ctx,
		Observer:    w.obs,
	})
	if err != nil {
		return nil, err
	}
	peaks := make([]float64, len(results))
	for c, r := range results {
		peaks[c] = r.PeakC
	}
	return peaks, nil
}

// finalize persists the attempt's outcome — but only if this worker still
// holds the lease. The record write happens before the lease release, so at
// every instant either the record is final or a lease (or its expiry)
// explains who owns the job.
func (w *Worker) finalize(job *Job, guard *leaseGuard, res *tap25d.Result, peaks []float64, resumed bool, runErr error, userCanceled bool, start time.Time) {
	if guard.isLost() || (runErr != nil && errors.Is(runErr, ErrLeaseLost)) {
		w.abandon(job, runErr)
		return
	}
	// The synchronous fencing check: between the last heartbeat and now the
	// job may have been reclaimed. Verify before writing anything.
	if err := guard.check(); err != nil {
		w.abandon(job, err)
		return
	}

	now := time.Now()
	finished := now.UTC()
	interrupted := runErr != nil && errors.Is(runErr, context.Canceled)
	final, err := w.queue.update(job.ID, func(j *Job) {
		j.Resumed = resumed
		j.WorkerID = w.cfg.id()
		switch {
		case interrupted && !userCanceled:
			// Graceful drain: hand the job back to the queue; its
			// checkpoints carry the annealing state into the next claim.
			// No retry penalty and no backoff — this is not a crash.
			j.State = StateQueued
			j.StartedAt = nil
			j.WorkerID = ""
		case interrupted && userCanceled:
			j.State = StateCanceled
			j.FinishedAt = &finished
			j.Result = jobResult(res, peaks)
		case runErr != nil:
			j.State = StateFailed
			j.FinishedAt = &finished
			j.Error = runErr.Error()
		default:
			j.State = StateDone
			j.FinishedAt = &finished
			j.Result = jobResult(res, peaks)
		}
	})
	if err != nil {
		// The record refused to persist (disk trouble). The lease stays in
		// place: the scavenger will reclaim and retry the job rather than
		// lose it.
		w.obs.Add("service_persist_errors", 1)
		w.log.Error("job record persist failed",
			"job_id", job.ID, "worker", w.cfg.id(), "error", err)
		return
	}
	if resumed {
		w.count(func(c *metrics.Counters) { c.JobsResumed++ })
	}
	if res != nil && res.Surrogate != nil {
		w.obs.SetGauge("surrogate_drift_rms_c", res.Surrogate.DriftRMSC)
	}
	if err := releaseLease(w.leaseDir, guard.lease); err == nil {
		w.count(func(c *metrics.Counters) { c.JobsLeasesReleased++ })
	}
	if final.Terminal() {
		switch final.State {
		case StateDone:
			w.count(func(c *metrics.Counters) { c.JobsCompleted++ })
		case StateFailed:
			w.count(func(c *metrics.Counters) { c.JobsFailed++ })
		case StateCanceled:
			w.count(func(c *metrics.Counters) { c.JobsCanceled++ })
		}
		w.obs.ObserveNamed("job_latency", now.Sub(job.SubmittedAt))
		os.RemoveAll(w.ckptDir(job.ID)) // spent snapshots
		w.queue.clearCancel(job.ID)
		if w.hooks.onFinal != nil {
			w.hooks.onFinal(final)
		}
		if final.State == StateFailed {
			w.log.Error("job failed",
				"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
				"worker", w.cfg.id(), "error", final.Error)
		} else {
			w.log.Info("job finished",
				"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
				"worker", w.cfg.id(), "state", final.State,
				"latency", now.Sub(job.SubmittedAt))
		}
	} else if final.State == StateQueued {
		w.log.Info("job interrupted, re-queued",
			"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
			"worker", w.cfg.id())
	}
}

// abandon walks away from an attempt whose lease was lost: no record write,
// no checkpoint cleanup, no lease release — the reclaiming peer owns all of
// it now. The work already checkpointed under the old epoch is not wasted;
// the peer resumed from the last checkpoint that passed its fencing check.
func (w *Worker) abandon(job *Job, cause error) {
	w.count(func(c *metrics.Counters) { c.JobsLeasesLost++ })
	w.log.Warn("job attempt abandoned: lease lost",
		"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
		"worker", w.cfg.id(), "error", cause)
}

// jobResult projects a tap25d.Result onto the persisted record (nil-safe).
func jobResult(res *tap25d.Result, scenarioPeaks []float64) *JobResult {
	if res == nil {
		return nil
	}
	return &JobResult{
		Placement:           res.Placement,
		PeakC:               res.PeakC,
		WirelengthMM:        res.WirelengthMM,
		Feasible:            res.Feasible,
		InitialPeakC:        res.InitialPeakC,
		InitialWirelengthMM: res.InitialWirelength,
		Metrics:             res.Metrics,
		ScenarioPeaksC:      scenarioPeaks,
	}
}
