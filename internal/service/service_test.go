package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tap25d"
)

// newTestServer builds a Service over dir and serves its API from an
// httptest server. The cleanup drains the service.
func newTestServer(t *testing.T, dir string, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 5
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 5
	}
	if cfg.Observer == nil {
		cfg.Observer = tap25d.NewObserver()
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(Handler(svc))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := testContext(t, 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*Job, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return &job, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) *Job {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: HTTP %d", id, resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return &job
}

func waitState(t *testing.T, ts *httptest.Server, id string, states ...string) *Job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		job := getJob(t, ts, id)
		for _, s := range states {
			if job.State == s {
				return job
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (err=%q), want one of %v", id, job.State, job.Error, states)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	Event string
	Data  []byte
}

// readSSE consumes the events stream of a job until the terminal "job" frame
// (or limit frames), returning every frame seen.
func readSSE(t *testing.T, ts *httptest.Server, id string, limit int) []sseFrame {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: Content-Type %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if cur.Event == "job" || len(frames) >= limit {
					return frames
				}
				cur = sseFrame{}
			}
		}
	}
	return frames
}

func TestServiceEndToEndWithSSE(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), Config{})
	job, resp := postJob(t, ts, testSpec(7))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Fatalf("Location %q", loc)
	}

	frames := readSSE(t, ts, job.ID, 10_000)
	last := frames[len(frames)-1]
	if last.Event != "job" {
		t.Fatalf("stream ended with %q, want terminal job frame", last.Event)
	}
	var final Job
	if err := json.Unmarshal(last.Data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final job: state=%s result=%v err=%q", final.State, final.Result, final.Error)
	}
	if final.Result.PeakC <= 0 || len(final.Result.Placement.Centers) == 0 {
		t.Fatalf("implausible result: %+v", final.Result)
	}
	kinds := map[string]int{}
	for _, f := range frames {
		kinds[f.Event]++
	}
	if kinds["step"] == 0 || kinds["checkpoint"] == 0 || kinds["final"] == 0 {
		t.Fatalf("event kinds %v, want step+checkpoint+final", kinds)
	}

	c := svc.Counters()
	if c.JobsSubmitted != 1 || c.JobsCompleted != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestSubmitErrors(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Config{})
	for _, c := range []struct {
		body   string
		status int
		code   string
	}{
		{`{not json`, http.StatusBadRequest, "bad_json"},
		{`{"steps": 10}`, http.StatusBadRequest, "bad_spec"},
		{`{"system":"multigpu","bogus_field":1}`, http.StatusBadRequest, "bad_json"},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]apiError
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != c.status || e["error"].Code != c.code {
			t.Errorf("%s: HTTP %d code %q, want %d %q", c.body, resp.StatusCode, e["error"].Code, c.status, c.code)
		}
	}
	// Unknown job: 404 on GET, DELETE and events.
	for _, req := range []struct{ method, path string }{
		{"GET", "/v1/jobs/job-nope"},
		{"DELETE", "/v1/jobs/job-nope"},
		{"GET", "/v1/jobs/job-nope/events"},
	} {
		r, err := http.NewRequest(req.method, ts.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: HTTP %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

func TestDuplicateSubmitIsIdempotent(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), Config{})
	spec := testSpec(1)
	spec.IdempotencyKey = "once"
	first, resp1 := postJob(t, ts, spec)
	if resp1.StatusCode != http.StatusCreated {
		t.Fatalf("first: HTTP %d", resp1.StatusCode)
	}
	second, resp2 := postJob(t, ts, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replay: HTTP %d, want 200", resp2.StatusCode)
	}
	if second.ID != first.ID {
		t.Fatalf("replay created new job %s, want %s", second.ID, first.ID)
	}
	if c := svc.Counters(); c.JobsSubmitted != 1 || c.JobsDeduped != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestQuotaExhaustionReturns429(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), Config{TenantQuota: 1, Workers: 1})
	spec := testSpec(1)
	spec.Steps = 2000 // keep the first job active while the second submits
	if _, resp := postJob(t, ts, spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first: HTTP %d", resp.StatusCode)
	}
	_, resp := postJob(t, ts, testSpec(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: HTTP %d, want 429", resp.StatusCode)
	}
	if c := svc.Counters(); c.JobsQuotaRejected != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), Config{Workers: 1})
	long := testSpec(1)
	long.Steps = 2000
	blocker, _ := postJob(t, ts, long)
	waitState(t, ts, blocker.ID, StateRunning)
	victim, _ := postJob(t, ts, testSpec(2))

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+victim.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: HTTP %d", resp.StatusCode)
	}
	j := getJob(t, ts, victim.ID)
	if j.State != StateCanceled || j.StartedAt != nil {
		t.Fatalf("canceled queued job: %+v", j)
	}
	// Unblock the worker quickly.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+blocker.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitState(t, ts, blocker.ID, StateCanceled)
	// The worker increments JobsCanceled after persisting the terminal
	// record, so the counter can trail the observable state briefly.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Counters().JobsCanceled != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c := svc.Counters(); c.JobsCanceled != 2 {
		t.Fatalf("counters %+v", c)
	}
	// Canceling a terminal job is a 409.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+victim.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel terminal: HTTP %d, want 409", resp.StatusCode)
	}
}

func TestCancelWhileRunning(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), Config{Workers: 1})
	long := testSpec(1)
	long.Steps = 5000
	job, _ := postJob(t, ts, long)
	waitState(t, ts, job.ID, StateRunning)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: HTTP %d", resp.StatusCode)
	}
	final := waitState(t, ts, job.ID, StateCanceled)
	if final.FinishedAt == nil {
		t.Fatalf("canceled job has no finish time: %+v", final)
	}
	if c := svc.Counters(); c.JobsCanceled != 1 {
		t.Fatalf("counters %+v", c)
	}
}

// TestDrainRestartResume is the kill-and-restart drill: a job interrupted by
// a drain mid-anneal must, on the next server generation, resume from its
// checkpoint and finish with the exact result an uninterrupted run produces.
func TestDrainRestartResume(t *testing.T) {
	spec := testSpec(11)
	spec.Steps = 120

	// Reference: the same job, uninterrupted, through its own server.
	_, refTS := newTestServer(t, t.TempDir(), Config{Workers: 1})
	refJob, _ := postJob(t, refTS, spec)
	ref := waitState(t, refTS, refJob.ID, StateDone, StateFailed)
	if ref.State != StateDone {
		t.Fatalf("reference run failed: %q", ref.Error)
	}

	// Interrupted: same spec, drained after the first checkpoint lands.
	dir := t.TempDir()
	cfg := Config{Workers: 1, CheckpointEvery: 5, ProgressEvery: 5, Observer: tap25d.NewObserver()}
	cfg.DataDir = dir
	svc1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc1.Start()
	job, _, err := svc1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	events, cancelSub, err := svc1.Subscribe(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	sawCheckpoint := false
	timeout := time.After(2 * time.Minute)
	for !sawCheckpoint {
		select {
		case e := <-events:
			if e.Kind == tap25d.EventCheckpoint {
				sawCheckpoint = true
			}
		case <-timeout:
			t.Fatal("no checkpoint event before timeout")
		}
	}
	cancelSub()
	ctx, cancel := testContext(t, time.Minute)
	if err := svc1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	mid, err := svc1.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State != StateQueued {
		t.Fatalf("drained mid-run job is %q, want re-queued", mid.State)
	}

	// Restart: a new service over the same data dir picks the job back up.
	svc2, ts2 := newTestServer(t, dir, cfg)
	final := waitState(t, ts2, job.ID, StateDone, StateFailed, StateCanceled)
	if final.State != StateDone {
		t.Fatalf("resumed run ended %q: %s", final.State, final.Error)
	}
	if !final.Resumed {
		t.Fatal("resumed job not flagged Resumed")
	}
	if final.Attempts < 2 {
		t.Fatalf("attempts=%d, want >=2", final.Attempts)
	}
	if c := svc2.Counters(); c.JobsResumed != 1 {
		t.Fatalf("restart counters %+v", c)
	}

	// The resumed result must be bit-identical to the uninterrupted one.
	if final.Result.PeakC != ref.Result.PeakC ||
		final.Result.WirelengthMM != ref.Result.WirelengthMM {
		t.Fatalf("resumed metrics (%.10f°C, %.10fmm) != reference (%.10f°C, %.10fmm)",
			final.Result.PeakC, final.Result.WirelengthMM,
			ref.Result.PeakC, ref.Result.WirelengthMM)
	}
	if !reflect.DeepEqual(final.Result.Placement, ref.Result.Placement) {
		t.Fatalf("resumed placement differs from reference:\n got %+v\nwant %+v",
			final.Result.Placement, ref.Result.Placement)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	job, _ := postJob(t, ts, testSpec(3))
	waitState(t, ts, job.ID, StateDone)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"tap25d_jobs_submitted_total 1",
		"tap25d_jobs_completed_total 1",
		`tap25d_gauge{name="service_queue_depth"}`,
		`tap25d_named_duration_seconds_count{name="job_latency"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = svc
}

func TestLoadDriver(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Config{Workers: 2})
	entries, err := RunLoad(LoadConfig{BaseURL: ts.URL, Jobs: 4, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, e := range entries {
		byName[e.Name] = e.Value
	}
	if byName["tap25d/service/jobs_completed"] != 4 {
		t.Fatalf("entries %v", byName)
	}
	if byName["tap25d/service/submit_requests_per_sec"] <= 0 ||
		byName["tap25d/service/job_latency_p99_ms"] <= 0 ||
		byName["tap25d/service/job_latency_p99_ms"] < byName["tap25d/service/job_latency_p50_ms"] {
		t.Fatalf("implausible load stats %v", byName)
	}
}

// testContext builds a context bounded by d that also respects the test
// deadline.
func testContext(t *testing.T, d time.Duration) (ctx context.Context, cancel func()) {
	if dl, ok := t.Deadline(); ok {
		if until := time.Until(dl) - 5*time.Second; until > 0 && until < d {
			d = until
		}
	}
	return context.WithTimeout(context.Background(), d)
}

// TestRetryAfterHeaders pins the backpressure contract: every admission
// rejection — tenant quota (429), queue-depth shedding (503 overloaded) and
// drain (503 draining) — carries a positive integer Retry-After header, so
// clients can back off without guessing.
func TestRetryAfterHeaders(t *testing.T) {
	retryAfter := func(t *testing.T, resp *http.Response) int {
		t.Helper()
		h := resp.Header.Get("Retry-After")
		if h == "" {
			t.Fatalf("HTTP %d response has no Retry-After header", resp.StatusCode)
		}
		secs, err := strconv.Atoi(h)
		if err != nil || secs < 1 {
			t.Fatalf("Retry-After %q, want a positive integer of seconds", h)
		}
		return secs
	}

	t.Run("quota_429", func(t *testing.T) {
		// Serve-only (Workers: -1): jobs stay queued, so one submission pins
		// the tenant at its quota.
		_, ts := newTestServer(t, t.TempDir(), Config{Workers: -1, TenantQuota: 1})
		spec := JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 5, Runs: 1, CompactSteps: 100}
		if _, resp := postJob(t, ts, spec); resp.StatusCode != http.StatusCreated {
			t.Fatalf("first submit: HTTP %d", resp.StatusCode)
		}
		spec.Seed = 2
		_, resp := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-quota submit: HTTP %d, want 429", resp.StatusCode)
		}
		retryAfter(t, resp)
	})

	t.Run("overloaded_503", func(t *testing.T) {
		_, ts := newTestServer(t, t.TempDir(), Config{Workers: -1, MaxQueueDepth: 1})
		spec := JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 5, Runs: 1, CompactSteps: 100,
			IdempotencyKey: "first"}
		if _, resp := postJob(t, ts, spec); resp.StatusCode != http.StatusCreated {
			t.Fatalf("first submit: HTTP %d", resp.StatusCode)
		}
		spec.Seed = 2
		spec.IdempotencyKey = ""
		_, resp := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shed submit: HTTP %d, want 503", resp.StatusCode)
		}
		retryAfter(t, resp)
		var e struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Code != "overloaded" {
			t.Errorf("shed code %q, want overloaded", e.Code)
		}
		// An idempotent resubmit of an already-admitted job is not shed: the
		// client is asking about existing work, not adding new work.
		spec.Seed = 1
		spec.IdempotencyKey = "first"
		if _, resp := postJob(t, ts, spec); resp.StatusCode != http.StatusOK {
			t.Errorf("idempotent resubmit during shedding: HTTP %d, want 200", resp.StatusCode)
		}
	})

	t.Run("draining_503", func(t *testing.T) {
		svc, ts := newTestServer(t, t.TempDir(), Config{Workers: -1})
		svc.queue.StartDrain()
		_, resp := postJob(t, ts, JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 5, Runs: 1, CompactSteps: 100})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining submit: HTTP %d, want 503", resp.StatusCode)
		}
		if secs := retryAfter(t, resp); secs != drainRetryAfterSecs {
			t.Errorf("draining Retry-After %d, want the flat %d", secs, drainRetryAfterSecs)
		}
	})
}

// TestConcurrentIdempotentSubmits races two POSTs carrying the same (tenant,
// idempotency_key) through the live HTTP stack: exactly one job record may
// exist afterwards, and both responses must name it. Run under -race, this
// also exercises the submit path's locking.
func TestConcurrentIdempotentSubmits(t *testing.T) {
	svc, ts := newTestServer(t, t.TempDir(), Config{Workers: -1})
	spec := JobSpec{
		System: "multigpu", ThermalGrid: 16, Steps: 5, Runs: 1, CompactSteps: 100,
		Tenant: "acme", IdempotencyKey: "dedupe-me",
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	const racers = 8
	start := make(chan struct{})
	ids := make([]string, racers)
	status := make([]int, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			status[i] = resp.StatusCode
			var job Job
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Errorf("racer %d: decoding: %v", i, err)
				return
			}
			ids[i] = job.ID
		}(i)
	}
	close(start)
	wg.Wait()

	created := 0
	for i := 0; i < racers; i++ {
		switch status[i] {
		case http.StatusCreated:
			created++
		case http.StatusOK:
		default:
			t.Fatalf("racer %d: HTTP %d", i, status[i])
		}
		if ids[i] == "" || ids[i] != ids[0] {
			t.Fatalf("racer %d got job id %q, racer 0 got %q — idempotency key split", i, ids[i], ids[0])
		}
	}
	if created != 1 {
		t.Errorf("%d racers got 201 Created, want exactly 1", created)
	}
	if jobs := svc.List(); len(jobs) != 1 {
		t.Errorf("%d job records on disk, want 1", len(jobs))
	}
}

// TestSSEPingKeepalive shrinks the ping interval and holds an idle stream (a
// queued job on a serve-only server emits no events): the connection must
// carry ": ping" comment frames at the cadence, and because comments bypass
// the hub's buffers entirely, the hub must record zero drops however long the
// stream idles.
func TestSSEPingKeepalive(t *testing.T) {
	old := ssePingInterval
	ssePingInterval = 20 * time.Millisecond
	defer func() { ssePingInterval = old }()

	svc, ts := newTestServer(t, t.TempDir(), Config{Workers: -1})
	job, resp := postJob(t, ts, JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 5, Runs: 1, CompactSteps: 100})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	ctx, cancel := testContext(t, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", stream.StatusCode)
	}

	pings := 0
	sc := bufio.NewScanner(stream.Body)
	deadline := time.After(3 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
read:
	for pings < 3 {
		select {
		case line, ok := <-lines:
			if !ok {
				break read
			}
			if strings.HasPrefix(line, ": ping") {
				pings++
			}
		case <-deadline:
			break read
		}
	}
	if pings < 3 {
		t.Fatalf("idle stream carried %d pings, want >= 3", pings)
	}
	if drops := svc.hub.Dropped(job.ID); drops != 0 {
		t.Errorf("hub recorded %d drops on an idle pinged stream, want 0", drops)
	}
}
