package service

import (
	"path/filepath"

	"tap25d/internal/obs"
	"tap25d/internal/placer"
)

// traceFormat tags the sealed per-job trace manifests.
const traceFormat = "tap25d-trace"

// tracePath is the job's durable span trace file (JSON Lines of
// obs.SpanRecord, newest-last). Trace files live beside — not inside — the
// checkpoint directories, which are deleted once a job reaches a terminal
// state; the trace must outlive the job so GET /v1/jobs/{id}/trace can serve
// finished jobs.
func (s *Service) tracePath(id string) string {
	return filepath.Join(s.tracesDir, id+".trace.jsonl")
}

// traceManifestPath is the sealed summary written next to a completed trace.
func (s *Service) traceManifestPath(id string) string {
	return filepath.Join(s.tracesDir, id+".trace.manifest.json")
}

// attachTrace opens (or re-opens, after a restart) the job's trace sink and
// routes the job's trace ID into it. Idempotent: a job resubmitted under an
// idempotency key or dispatched while its sink is already open keeps the
// existing sink. Telemetry failures are counted and logged, never fatal.
func (s *Service) attachTrace(j *Job) {
	if s.obs == nil || j == nil || j.TraceID == "" {
		return
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if _, ok := s.traces[j.ID]; ok {
		return
	}
	sink, err := obs.NewTraceSink(s.tracePath(j.ID))
	if err != nil {
		s.log.Warn("trace sink open failed", "job_id", j.ID, "trace", j.TraceID, "error", err)
		s.obs.Add("service_trace_errors", 1)
		return
	}
	s.traces[j.ID] = sink
	s.obs.AttachTraceSink(j.TraceID, sink)
}

// sealTrace finalizes a terminal job's trace: the sink is detached so no
// further spans route to it, closed, and its totals sealed into a
// CRC-guarded manifest beside the file.
func (s *Service) sealTrace(j *Job) {
	if s.obs == nil || j == nil || j.TraceID == "" {
		return
	}
	s.traceMu.Lock()
	sink := s.traces[j.ID]
	delete(s.traces, j.ID)
	s.traceMu.Unlock()
	if sink == nil {
		return
	}
	s.obs.DetachTraceSink(j.TraceID)
	m := sink.Manifest(j.TraceID, j.ID)
	if err := sink.Close(); err != nil {
		s.log.Warn("trace sink close failed", "job_id", j.ID, "trace", j.TraceID, "error", err)
		s.obs.Add("service_trace_errors", 1)
	}
	if err := placer.WriteSealedFile(s.traceManifestPath(j.ID), traceFormat, m); err != nil {
		s.log.Warn("trace manifest seal failed", "job_id", j.ID, "trace", j.TraceID, "error", err)
		s.obs.Add("service_trace_errors", 1)
		return
	}
	s.log.Info("trace sealed",
		"job_id", j.ID, "trace", j.TraceID, "spans", m.Spans, "bytes", m.Bytes)
}
