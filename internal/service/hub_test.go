package service

import (
	"testing"

	"tap25d"
)

func TestHubReplayThenLive(t *testing.T) {
	h := newHub(nil)
	h.Publish("j", tap25d.RunEvent{Kind: "step", Step: 1})
	h.Publish("j", tap25d.RunEvent{Kind: "step", Step: 2})

	ch, cancel := h.Subscribe("j")
	defer cancel()
	h.Publish("j", tap25d.RunEvent{Kind: "step", Step: 3})

	for want := 1; want <= 3; want++ {
		e := <-ch
		if e.Step != want {
			t.Fatalf("event step %d, want %d", e.Step, want)
		}
	}
}

func TestHubCloseEndsStream(t *testing.T) {
	h := newHub(nil)
	ch, cancel := h.Subscribe("j")
	defer cancel()
	h.Publish("j", tap25d.RunEvent{Kind: "final"})
	h.Close("j")
	if e, ok := <-ch; !ok || e.Kind != "final" {
		t.Fatalf("first recv: %+v ok=%v", e, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("stream still open after Close")
	}
	// A late subscriber to a closed topic gets replay then EOF.
	late, cancel2 := h.Subscribe("j")
	defer cancel2()
	if e, ok := <-late; !ok || e.Kind != "final" {
		t.Fatalf("late replay: %+v ok=%v", e, ok)
	}
	if _, ok := <-late; ok {
		t.Fatal("late stream did not end")
	}
}

func TestHubRingBounded(t *testing.T) {
	h := newHub(nil)
	for i := 0; i < ringSize+50; i++ {
		h.Publish("j", tap25d.RunEvent{Kind: "step", Step: i})
	}
	h.Close("j")
	ch, cancel := h.Subscribe("j")
	defer cancel()
	first := <-ch
	if first.Step != 50 {
		t.Fatalf("ring kept step %d first, want %d", first.Step, 50)
	}
	n := 1
	for range ch {
		n++
	}
	if n != ringSize {
		t.Fatalf("replayed %d events, want %d", n, ringSize)
	}
}

func TestHubSlowSubscriberDropsNotBlocks(t *testing.T) {
	h := newHub(nil)
	_, cancel := h.Subscribe("j") // never read
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < subBuffer+100; i++ {
			h.Publish("j", tap25d.RunEvent{Kind: "step", Step: i})
		}
		close(done)
	}()
	<-done // Publish must not block on the stalled subscriber
	if h.Dropped("j") == 0 {
		t.Fatal("no drops recorded for stalled subscriber")
	}
}
