package service

import (
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tap25d/internal/metrics"
)

func testSpec(seed int64) JobSpec {
	return JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 20, Runs: 1, CompactSteps: 400, Seed: seed}
}

// claimJob drives the worker-side claim protocol by hand: pick the best
// claimable job, take its lease at the next epoch, mark it running.
func claimJob(t *testing.T, q *queue, leaseDir, workerID string, at time.Time) (*Job, *lease) {
	t.Helper()
	cands := q.claimable(time.Now())
	if len(cands) == 0 {
		t.Fatal("no claimable jobs")
	}
	cand := cands[0]
	l, err := acquireLease(leaseDir, cand.ID, workerID, cand.Epoch+1, 10*time.Second, at)
	if err != nil {
		t.Fatalf("acquire lease: %v", err)
	}
	j, err := q.markRunning(cand.ID, workerID, l.Epoch, time.Now())
	if err != nil {
		t.Fatalf("markRunning: %v", err)
	}
	return j, l
}

func testScavenger(q *queue, leaseDir string) *scavenger {
	return &scavenger{
		queue:    q,
		leaseDir: leaseDir,
		workerID: "scav-test",
		ttl:      10 * time.Second,
		budget:   3,
		backoff:  50 * time.Millisecond,
		backoffM: time.Second,
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		count:    func(func(c *metrics.Counters)) {},
	}
}

// TestQueuePersistAndReload covers the multi-process restart story: a job
// running under a lease stays running across a queue reload (it may be live
// in another process — recovery belongs to the scavenger, not load-time
// fiat), and a scavenger sweep reclaims it once the lease has expired.
func TestQueuePersistAndReload(t *testing.T) {
	dir := t.TempDir()
	leases := t.TempDir()
	q, err := newQueue(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, created, err := q.Submit(testSpec(1), time.Now())
	if err != nil || !created {
		t.Fatalf("submit a: created=%v err=%v", created, err)
	}
	b, _, err := q.Submit(testSpec(2), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Dispatch a — with a lease acquired in the past, so it is already
	// expired when the "surviving" process sweeps below.
	got, _ := claimJob(t, q, leases, "w-dead", time.Now().Add(-time.Minute))
	if got.ID != a.ID {
		t.Fatalf("claimed %s, want FIFO head %s", got.ID, a.ID)
	}

	// "Restart": a new queue over the same directory. The running job is NOT
	// auto-requeued — its lease decides.
	q2, err := newQueue(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := q2.Get(a.ID)
	if err != nil || ja.State != StateRunning {
		t.Fatalf("running job after reload: %+v err=%v", ja, err)
	}
	jb, err := q2.Get(b.ID)
	if err != nil || jb.State != StateQueued {
		t.Fatalf("queued job after reload: %+v err=%v", jb, err)
	}

	// The scavenger finds the expired lease and reclaims under epoch 2.
	if n := testScavenger(q2, leases).sweep(time.Now()); n != 1 {
		t.Fatalf("sweep reclaimed %d jobs, want 1", n)
	}
	ja, err = q2.Get(a.ID)
	if err != nil || ja.State != StateQueued {
		t.Fatalf("reclaimed job: %+v err=%v", ja, err)
	}
	if ja.Epoch != 2 || ja.Retries != 1 || ja.Attempts != 1 {
		t.Fatalf("reclaimed job epoch=%d retries=%d attempts=%d, want 2/1/1",
			ja.Epoch, ja.Retries, ja.Attempts)
	}
	if ja.NotBefore == nil {
		t.Fatal("reclaimed job has no backoff gate")
	}
	if _, err := readLease(leases, a.ID); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lease not removed after reclaim: %v", err)
	}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	low1, _, _ := q.Submit(testSpec(1), time.Now())
	s := testSpec(2)
	s.Priority = 5
	high, _, _ := q.Submit(s, time.Now())
	low2, _, _ := q.Submit(testSpec(3), time.Now())

	cands := q.claimable(time.Now())
	if len(cands) != 3 {
		t.Fatalf("claimable returned %d jobs, want 3", len(cands))
	}
	order := []string{cands[0].ID, cands[1].ID, cands[2].ID}
	want := []string{high.ID, low1.ID, low2.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestQueueBackoffGate covers the reclaim re-dispatch gate: a queued job
// whose NotBefore is in the future is invisible to claimable, nextGate
// reports when it opens, and it becomes claimable afterwards.
func TestQueueBackoffGate(t *testing.T) {
	q, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := q.Submit(testSpec(1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	gate := time.Now().Add(time.Hour).UTC()
	if _, err := q.update(j.ID, func(rec *Job) { rec.NotBefore = &gate }); err != nil {
		t.Fatal(err)
	}
	if cands := q.claimable(time.Now()); len(cands) != 0 {
		t.Fatalf("gated job is claimable: %+v", cands[0])
	}
	at, ok := q.nextGate(time.Now())
	if !ok || !at.Equal(gate) {
		t.Fatalf("nextGate = %v ok=%v, want %v", at, ok, gate)
	}
	if cands := q.claimable(gate.Add(time.Second)); len(cands) != 1 {
		t.Fatalf("job not claimable past its gate")
	}
}

// TestQueueMarkRunningRejectsStaleEpoch covers the fencing-token monotonic
// guarantee at the record level: a claimer whose lease epoch is not past the
// record's (a reclaim intervened since its snapshot) must not win.
func TestQueueMarkRunningRejectsStaleEpoch(t *testing.T) {
	q, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := q.Submit(testSpec(1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// A reclaim has already advanced the record to epoch 3.
	if _, err := q.update(j.ID, func(rec *Job) { rec.Epoch = 3 }); err != nil {
		t.Fatal(err)
	}
	if _, err := q.markRunning(j.ID, "w-stale", 3, time.Now()); !errors.Is(err, errNotClaimable) {
		t.Fatalf("stale-epoch markRunning: err=%v, want errNotClaimable", err)
	}
	if _, err := q.markRunning(j.ID, "w-fresh", 4, time.Now()); err != nil {
		t.Fatalf("fresh-epoch markRunning: %v", err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateRunning || got.Epoch != 4 || got.WorkerID != "w-fresh" {
		t.Fatalf("record after claim: %+v", got)
	}
}

func TestQueueIdempotentSubmit(t *testing.T) {
	q, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := testSpec(1)
	s.IdempotencyKey = "retry-me"
	first, created, err := q.Submit(s, time.Now())
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	second, created, err := q.Submit(s, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if created || second.ID != first.ID {
		t.Fatalf("resubmit: created=%v id=%s, want replay of %s", created, second.ID, first.ID)
	}
	// A different tenant with the same key is a different job.
	s.Tenant = "other"
	third, created, err := q.Submit(s, time.Now())
	if err != nil || !created || third.ID == first.ID {
		t.Fatalf("cross-tenant key collided: created=%v err=%v", created, err)
	}
}

func TestQueueQuota(t *testing.T) {
	q, err := newQueue(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(testSpec(1), time.Now()); err != nil {
		t.Fatal(err)
	}
	second, _, err := q.Submit(testSpec(2), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(testSpec(3), time.Now()); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("third active submit: err=%v, want ErrQuotaExhausted", err)
	}
	// Other tenants have their own budget.
	s := testSpec(4)
	s.Tenant = "other"
	if _, _, err := q.Submit(s, time.Now()); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// Terminal jobs stop counting.
	if _, done, err := q.CancelQueued(second.ID, time.Now()); err != nil || !done {
		t.Fatalf("cancel queued: done=%v err=%v", done, err)
	}
	if _, _, err := q.Submit(testSpec(5), time.Now()); err != nil {
		t.Fatalf("submit after freeing quota: %v", err)
	}
}

func TestQueueDrainStopsIntake(t *testing.T) {
	q, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	q.StartDrain()
	if _, _, err := q.Submit(testSpec(1), time.Now()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err=%v, want ErrDraining", err)
	}
}

func TestQueueQuarantinesCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	q, err := newQueue(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := q.Submit(testSpec(1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "job-dead.json")
	if err := os.WriteFile(bad, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := newQueue(dir, 0)
	if err != nil {
		t.Fatalf("reload with corrupt record: %v", err)
	}
	if _, err := q2.Get(good.ID); err != nil {
		t.Fatalf("good record lost: %v", err)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt record not quarantined: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"builtin", JobSpec{System: "multigpu"}, true},
		{"empty", JobSpec{}, false},
		{"unknown system", JobSpec{System: "nope"}, false},
		{"both sources", JobSpec{System: "multigpu", SystemJSON: []byte(`{}`)}, false},
		{"bad json", JobSpec{SystemJSON: []byte(`{`)}, false},
		{"negative steps", JobSpec{System: "multigpu", Steps: -1}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}
