package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testSpec(seed int64) JobSpec {
	return JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 20, Runs: 1, CompactSteps: 400, Seed: seed}
}

func TestQueuePersistAndReload(t *testing.T) {
	dir := t.TempDir()
	q, requeued, err := newQueue(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 0 {
		t.Fatalf("fresh queue requeued %d jobs", requeued)
	}
	a, created, err := q.Submit(testSpec(1), time.Now())
	if err != nil || !created {
		t.Fatalf("submit a: created=%v err=%v", created, err)
	}
	b, _, err := q.Submit(testSpec(2), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Dispatch a so it is "running" when the process dies.
	got := q.Next(context.Background())
	if got.ID != a.ID {
		t.Fatalf("Next returned %s, want FIFO head %s", got.ID, a.ID)
	}

	// "Restart": a new queue over the same directory.
	q2, requeued, err := newQueue(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("requeued %d running orphans, want 1", requeued)
	}
	ja, err := q2.Get(a.ID)
	if err != nil || ja.State != StateQueued {
		t.Fatalf("orphaned running job: %+v err=%v", ja, err)
	}
	if ja.Attempts != 1 {
		t.Fatalf("orphan kept attempts=%d, want 1", ja.Attempts)
	}
	jb, err := q2.Get(b.ID)
	if err != nil || jb.State != StateQueued {
		t.Fatalf("queued job after reload: %+v err=%v", jb, err)
	}
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q, _, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	low1, _, _ := q.Submit(testSpec(1), time.Now())
	s := testSpec(2)
	s.Priority = 5
	high, _, _ := q.Submit(s, time.Now())
	low2, _, _ := q.Submit(testSpec(3), time.Now())

	order := []string{q.Next(context.Background()).ID, q.Next(context.Background()).ID, q.Next(context.Background()).ID}
	want := []string{high.ID, low1.ID, low2.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func TestQueueNextHonorsContext(t *testing.T) {
	q, _, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if j := q.Next(ctx); j != nil {
		t.Fatalf("Next on empty queue returned %+v", j)
	}
}

func TestQueueIdempotentSubmit(t *testing.T) {
	q, _, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := testSpec(1)
	s.IdempotencyKey = "retry-me"
	first, created, err := q.Submit(s, time.Now())
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	second, created, err := q.Submit(s, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if created || second.ID != first.ID {
		t.Fatalf("resubmit: created=%v id=%s, want replay of %s", created, second.ID, first.ID)
	}
	// A different tenant with the same key is a different job.
	s.Tenant = "other"
	third, created, err := q.Submit(s, time.Now())
	if err != nil || !created || third.ID == first.ID {
		t.Fatalf("cross-tenant key collided: created=%v err=%v", created, err)
	}
}

func TestQueueQuota(t *testing.T) {
	q, _, err := newQueue(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(testSpec(1), time.Now()); err != nil {
		t.Fatal(err)
	}
	second, _, err := q.Submit(testSpec(2), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(testSpec(3), time.Now()); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("third active submit: err=%v, want ErrQuotaExhausted", err)
	}
	// Other tenants have their own budget.
	s := testSpec(4)
	s.Tenant = "other"
	if _, _, err := q.Submit(s, time.Now()); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// Terminal jobs stop counting.
	if _, done, err := q.CancelQueued(second.ID, time.Now()); err != nil || !done {
		t.Fatalf("cancel queued: done=%v err=%v", done, err)
	}
	if _, _, err := q.Submit(testSpec(5), time.Now()); err != nil {
		t.Fatalf("submit after freeing quota: %v", err)
	}
}

func TestQueueDrainStopsIntake(t *testing.T) {
	q, _, err := newQueue(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	q.StartDrain()
	if _, _, err := q.Submit(testSpec(1), time.Now()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err=%v, want ErrDraining", err)
	}
}

func TestQueueQuarantinesCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	q, _, err := newQueue(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := q.Submit(testSpec(1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "job-dead.json")
	if err := os.WriteFile(bad, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	q2, _, err := newQueue(dir, 0)
	if err != nil {
		t.Fatalf("reload with corrupt record: %v", err)
	}
	if _, err := q2.Get(good.ID); err != nil {
		t.Fatalf("good record lost: %v", err)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt record not quarantined: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"builtin", JobSpec{System: "multigpu"}, true},
		{"empty", JobSpec{}, false},
		{"unknown system", JobSpec{System: "nope"}, false},
		{"both sources", JobSpec{System: "multigpu", SystemJSON: []byte(`{}`)}, false},
		{"bad json", JobSpec{SystemJSON: []byte(`{`)}, false},
		{"negative steps", JobSpec{System: "multigpu", Steps: -1}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}
