package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"tap25d/internal/buildinfo"
	"tap25d/internal/obs"
)

// drainRetryAfterSecs is the flat Retry-After hint on draining rejections: a
// drain means a restart or a handoff, not a backlog, so the hint is a typical
// redeploy window rather than a queue-depth estimate.
const drainRetryAfterSecs = 10

// ssePingInterval is the keepalive cadence of the SSE event streams: idle
// streams carry a ": ping" comment frame this often, so NATs, LBs and proxies
// with idle timeouts don't sever subscribers of long-quiet jobs. A package
// var so tests can shrink it.
var ssePingInterval = 15 * time.Second

// apiError is the uniform error body of the HTTP API:
//
//	{"error": {"code": "quota_exhausted", "message": "..."}}
//
// Codes are stable strings documented in docs/SERVICE.md; messages are
// human-readable and may change.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": {Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler builds the service's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec → 201 Job (200 on idempotent replay)
//	GET    /v1/jobs             list jobs, newest first
//	GET    /v1/jobs/{id}        one job
//	DELETE /v1/jobs/{id}        cancel (queued → canceled; running → interrupt)
//	GET    /v1/jobs/{id}/events Server-Sent Events stream of the job's RunEvents
//	GET    /v1/jobs/{id}/trace  the job's span trace — raw JSONL, or Chrome/Perfetto
//	                            trace-event JSON with ?format=perfetto
//	GET    /v1/slo              current SLO statuses (targets, burn rates, health)
//	GET    /v1/healthz          {"status":"ok","version":...} — "draining" with 503 during drain
//	GET    /metrics             Prometheus text exposition (via the shared Observer)
//
// Error bodies follow the apiError envelope; docs/SERVICE.md is the full
// reference.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, "not_found", err.Error())
			return
		}
		writeJSON(w, http.StatusOK, j)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"slos": s.obs.SLOStatuses()})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		code := http.StatusOK
		if s.Draining() {
			status = "draining"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]string{"status": status, "version": buildinfo.Version()})
	})
	if s.obs != nil {
		mux.Handle("GET /metrics", obs.Handler(s.obs))
	}
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", fmt.Sprintf("decoding job spec: %v", err))
		return
	}
	job, created, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQuotaExhausted):
		// The tenant must wait for its own jobs to finish; the backlog-derived
		// hint is the honest earliest time that could have happened.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
		writeError(w, http.StatusTooManyRequests, "quota_exhausted", err.Error())
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
		writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error())
	case errors.Is(err, ErrDraining):
		// This process is going away; point clients at its replacement's
		// typical restart window rather than the backlog.
		w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfterSecs))
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
	case created:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusCreated, job)
	default:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusOK, job)
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, "terminal", err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		writeJSON(w, http.StatusOK, job)
	}
}

// handleTrace serves a job's span trace file. The default response is the raw
// JSON Lines file (one obs.SpanRecord per line, exactly as written);
// ?format=perfetto converts it to Chrome trace-event JSON that Perfetto and
// chrome://tracing open directly. Traces stream live: a running job's trace
// can be fetched mid-run (a torn trailing line is tolerated by the converter).
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Get(id); err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	if s.tracesDir == "" {
		writeError(w, http.StatusNotFound, "no_trace", "tracing is disabled (service has no observer)")
		return
	}
	f, err := os.Open(s.tracePath(id))
	if err != nil {
		writeError(w, http.StatusNotFound, "no_trace", "job has no trace file")
		return
	}
	defer f.Close()
	switch r.URL.Query().Get("format") {
	case "":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		io.Copy(w, f)
	case "perfetto":
		recs, err := obs.ReadTraceRecords(f)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "bad_trace", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		obs.WritePerfettoTrace(w, recs)
	default:
		writeError(w, http.StatusBadRequest, "bad_format",
			"unknown trace format (want empty for raw JSONL or \"perfetto\")")
	}
}

// handleEvents streams a job's RunEvents as Server-Sent Events. Each placer
// event becomes one frame with the event kind as the SSE event name:
//
//	event: step
//	data: {"kind":"step","run":0,...}
//
// When the job reaches a terminal state a final frame with event name "job"
// carries the full job record, then the stream ends. Clients that reconnect
// replay the retained tail of the history first.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "no_flush", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	writeFrame := func(name string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	// Keepalive: SSE comment frames (": ping") at a steady cadence while the
	// stream is idle. Comments are invisible to EventSource clients but keep
	// the TCP path warm through idle-timeout middleboxes.
	ping := time.NewTicker(ssePingInterval)
	defer ping.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-ping.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case e, ok := <-ch:
			if !ok {
				// Stream closed: the job reached a terminal state (or had
				// already). Send the final record and end.
				if job, err := s.Get(id); err == nil {
					writeFrame("job", job)
				}
				return
			}
			if !writeFrame(e.Kind, e) {
				return
			}
		}
	}
}
