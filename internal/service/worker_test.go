package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testWorkerConfig is a worker tuned for test time scales: fast polls, a
// sub-second lease TTL, checkpoints every step so a crash loses almost
// nothing.
func testWorkerConfig(dir, id string) WorkerConfig {
	return WorkerConfig{
		DataDir:         dir,
		ID:              id,
		LeaseTTL:        400 * time.Millisecond,
		Poll:            10 * time.Millisecond,
		ScavengeEvery:   20 * time.Millisecond,
		RetryBackoff:    10 * time.Millisecond,
		RetryBackoffMax: 100 * time.Millisecond,
		CheckpointEvery: 1,
		ProgressEvery:   0,
	}
}

// runJobToCompletion submits spec into a fresh data dir and drains it with
// one worker, returning the terminal record.
func runJobToCompletion(t *testing.T, spec JobSpec) *Job {
	t.Helper()
	dir := t.TempDir()
	q, err := newQueue(filepath.Join(dir, "jobs"), 0)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := q.Submit(spec, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(testWorkerConfig(dir, "w-ref"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	final := waitTerminal(t, q, j.ID, 60*time.Second)
	cancel()
	<-done
	return final
}

// waitTerminal polls the queue until the job reaches a terminal state.
func waitTerminal(t *testing.T, q *queue, id string, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, err := q.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if j.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, j.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerCrashReclaimResume is the in-process chaos drill of the lease
// protocol: a worker claims a job, anneals past its first checkpoints, and
// "dies" kill -9 style — the attempt is abandoned with the lease file still
// on disk and the record still running. A peer worker's scavenger must then
// reclaim the job under the next fencing epoch, re-queue it with a retry,
// resume it from the dead worker's checkpoint, and finish it with a result
// bit-identical to an uninterrupted run of the same spec. The dead worker's
// lease guard must be fenced off the moment the reclaim lands.
func TestWorkerCrashReclaimResume(t *testing.T) {
	spec := testSpec(42)
	spec.Steps = 60 // long enough that the kill reliably lands mid-anneal

	baseline := runJobToCompletion(t, spec)
	if baseline.State != StateDone || baseline.Result == nil {
		t.Fatalf("baseline run: state %s, result %v", baseline.State, baseline.Result)
	}

	dir := t.TempDir()
	q, err := newQueue(filepath.Join(dir, "jobs"), 0)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := q.Submit(spec, time.Now())
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker: claim the job and run it directly (no heartbeat, no
	// finalize — exactly the writes a SIGKILLed process would have made).
	dead, err := NewWorker(testWorkerConfig(dir, "w-dead"))
	if err != nil {
		t.Fatal(err)
	}
	claim := dead.tryClaim(time.Now())
	if claim == nil {
		t.Fatal("doomed worker could not claim the job")
	}
	guard := newLeaseGuard(dead.leaseDir, claim.lease)
	execCtx, killExec := context.WithCancel(context.Background())
	go func() {
		// "kill -9" mid-anneal: cut execution once the first checkpoint is on
		// disk, so the resume has real annealing state to pick up.
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if ents, err := os.ReadDir(dead.ckptDir(j.ID)); err == nil && len(ents) > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		killExec()
	}()
	_, _, _, runErr := dead.execute(execCtx, claim.job, guard)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		t.Fatalf("doomed attempt failed before the kill: %v", runErr)
	}
	if ents, err := os.ReadDir(dead.ckptDir(j.ID)); err != nil || len(ents) == 0 {
		t.Fatalf("no checkpoint survived the kill (err %v) — drill is vacuous", err)
	}
	// No finalize, no release: the record stays running at epoch 1 and the
	// lease file stays behind, just as after a real SIGKILL.
	if cur, _ := q.Get(j.ID); cur.State != StateRunning || cur.Epoch != 1 {
		t.Fatalf("after kill: state %s epoch %d, want running epoch 1", cur.State, cur.Epoch)
	}

	// Let the lease run out, then start the surviving peer.
	time.Sleep(testWorkerConfig(dir, "").LeaseTTL + 100*time.Millisecond)
	live, err := NewWorker(testWorkerConfig(dir, "w-live"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); live.Run(ctx) }()
	final := waitTerminal(t, q, j.ID, 60*time.Second)
	cancel()
	<-done

	if final.State != StateDone {
		t.Fatalf("reclaimed job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Retries != 1 {
		t.Errorf("retries %d, want 1 (one reclamation)", final.Retries)
	}
	if final.Epoch != 3 {
		t.Errorf("epoch %d, want 3 (claim, reclaim and re-claim each advance the fence)", final.Epoch)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts %d, want 2", final.Attempts)
	}
	if !final.Resumed {
		t.Error("resumed flag not set: the peer re-annealed from scratch instead of the checkpoint")
	}
	if final.WorkerID != "w-live" {
		t.Errorf("finishing worker %q, want w-live", final.WorkerID)
	}

	// Bit-identical recovery: interrupted-and-resumed must equal uninterrupted.
	if !reflect.DeepEqual(final.Result.Placement, baseline.Result.Placement) {
		t.Errorf("resumed placement differs from uninterrupted run:\n got %+v\nwant %+v",
			final.Result.Placement, baseline.Result.Placement)
	}
	if final.Result.PeakC != baseline.Result.PeakC {
		t.Errorf("resumed peak %v C, uninterrupted %v C", final.Result.PeakC, baseline.Result.PeakC)
	}
	if final.Result.WirelengthMM != baseline.Result.WirelengthMM {
		t.Errorf("resumed wirelength %v mm, uninterrupted %v mm",
			final.Result.WirelengthMM, baseline.Result.WirelengthMM)
	}

	// The revenant is fenced: its guard must refuse every further write.
	if err := guard.check(); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("dead worker's guard.check after reclaim: err %v, want ErrLeaseLost", err)
	}

	c := live.Counters()
	if c.JobsReclaims != 1 || c.JobsRetries != 1 {
		t.Errorf("live worker counters: reclaims %d retries %d, want 1 and 1", c.JobsReclaims, c.JobsRetries)
	}
	if c.JobsLeasesAcquired < 1 || c.JobsLeasesReleased < 1 {
		t.Errorf("live worker counters: acquired %d released %d, want >= 1 each",
			c.JobsLeasesAcquired, c.JobsLeasesReleased)
	}
	if c.JobsResumed != 1 {
		t.Errorf("live worker counters: resumed %d, want 1", c.JobsResumed)
	}
}

// TestScavengerRetryBudgetExhaustion drives a job through repeated crash
// reclamations at the queue level (no annealing): each reclaim bumps the
// retry count and the backoff gate doubles, and once the budget is spent the
// job fails terminally with an error naming the spent budget.
func TestScavengerRetryBudgetExhaustion(t *testing.T) {
	dir := t.TempDir()
	leases := t.TempDir()
	q, err := newQueue(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := q.Submit(testSpec(1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	sc := testScavenger(q, leases)
	sc.budget = 2

	var lastGate time.Time
	for round := 1; ; round++ {
		cur, err := q.Get(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Terminal() {
			if cur.State != StateFailed {
				t.Fatalf("exhausted job is %s, want failed", cur.State)
			}
			if round != sc.budget+2 {
				t.Fatalf("job went terminal on round %d, want %d", round, sc.budget+2)
			}
			if cur.Retries != sc.budget+1 {
				t.Fatalf("terminal retries %d, want %d", cur.Retries, sc.budget+1)
			}
			for _, want := range []string{"lease expired", "retry budget spent"} {
				if !strings.Contains(cur.Error, want) {
					t.Errorf("failure error %q does not mention %q", cur.Error, want)
				}
			}
			return
		}
		// Claim with a lease minted far in the past, crash, sweep.
		past := time.Now().Add(-time.Hour)
		l, err := acquireLease(leases, j.ID, "w-doomed", cur.Epoch+1, time.Second, past)
		if err != nil {
			t.Fatalf("round %d acquire: %v", round, err)
		}
		// Claim from past the backoff gate (claimable respects NotBefore).
		if _, err := q.markRunning(j.ID, "w-doomed", l.Epoch, time.Now().Add(2*time.Second)); err != nil {
			t.Fatalf("round %d markRunning: %v", round, err)
		}
		if n := sc.sweep(time.Now()); n != 1 {
			t.Fatalf("round %d sweep reclaimed %d jobs, want 1", round, n)
		}
		if cur, _ = q.Get(j.ID); cur.State == StateQueued {
			if cur.NotBefore == nil {
				t.Fatalf("round %d: requeued without a backoff gate", round)
			}
			if !lastGate.IsZero() && cur.NotBefore.Sub(lastGate) <= 0 {
				t.Errorf("round %d: backoff gate %v did not advance past %v", round, cur.NotBefore, lastGate)
			}
			lastGate = *cur.NotBefore
		}
	}
}
