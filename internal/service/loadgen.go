package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"tap25d/internal/obs"
)

// LoadConfig parameterizes RunLoad, the service's built-in load driver.
type LoadConfig struct {
	// BaseURL is the server under test (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Jobs is the number of jobs to submit (default 16).
	Jobs int
	// Concurrency is the number of concurrent submitting clients (default 4).
	Concurrency int
	// Spec is the job template; each submission gets Seed = Spec.Seed + index
	// so the jobs are distinct work, not cache replays. Leave zero for a
	// small fast default spec.
	Spec JobSpec
	// Timeout bounds the whole drive (default 5 minutes).
	Timeout time.Duration
	// Fleet attaches this many lease workers to DataDir for the duration of
	// the drive — the multi-worker-fleet drive: point them at the data
	// directory of a server running with zero local workers and the fleet
	// does all the execution. 0 leaves execution to the server's own pool.
	Fleet int
	// DataDir is the server's shared state directory (required when
	// Fleet > 0).
	DataDir string
	// CheckpointEvery tunes the fleet workers' checkpoint cadence (Fleet > 0
	// only; default 25).
	CheckpointEvery int
}

func (c LoadConfig) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return 16
}

func (c LoadConfig) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 4
}

func (c LoadConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Minute
}

func (c LoadConfig) spec() JobSpec {
	if c.Spec.System != "" || len(c.Spec.SystemJSON) != 0 {
		return c.Spec
	}
	// A deliberately tiny flow: the driver measures the service machinery
	// (queueing, dispatch, persistence, streaming), not the annealer.
	return JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 20, Runs: 1, CompactSteps: 400}
}

// RunLoad drives a running server: it submits cfg.Jobs placement jobs from
// cfg.Concurrency concurrent clients, polls each to a terminal state, and
// returns the measured throughput and latency distribution as BENCH_*.json
// entries:
//
//	tap25d/service/submit_requests_per_sec   submissions accepted per second
//	tap25d/service/job_latency_p50_ms        median submit→terminal latency
//	tap25d/service/job_latency_p99_ms        99th-percentile job latency
//	tap25d/service/jobs_completed            jobs that reached done
//	tap25d/service/drain_jobs_per_sec        jobs drained per second of wall
//	                                         clock, first submit → last done
//
// It fails if any job finishes in a state other than done.
func RunLoad(cfg LoadConfig) ([]obs.BenchEntry, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	n := cfg.jobs()
	spec := cfg.spec()
	deadline := time.Now().Add(cfg.timeout())

	if cfg.Fleet > 0 {
		if cfg.DataDir == "" {
			return nil, fmt.Errorf("loadgen: Fleet > 0 needs DataDir")
		}
		ctx, cancel := context.WithCancel(context.Background())
		var fleet sync.WaitGroup
		defer func() {
			cancel()
			fleet.Wait()
		}()
		for i := 0; i < cfg.Fleet; i++ {
			w, err := NewWorker(WorkerConfig{
				DataDir:         cfg.DataDir,
				ID:              fmt.Sprintf("load-fleet-%d", i),
				Poll:            25 * time.Millisecond,
				CheckpointEvery: cfg.CheckpointEvery,
			})
			if err != nil {
				cancel()
				return nil, err
			}
			fleet.Add(1)
			go func() {
				defer fleet.Done()
				w.Run(ctx)
			}()
		}
	}

	type outcome struct {
		latency time.Duration
		state   string
		err     error
	}
	outcomes := make([]outcome, n)
	work := make(chan int)
	var wg sync.WaitGroup

	submitStart := time.Now()
	var submitEnd time.Time
	var submitMu sync.Mutex
	for w := 0; w < cfg.concurrency(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s := spec
				s.Seed = spec.Seed + int64(i)
				s.IdempotencyKey = fmt.Sprintf("load-%d", i)
				start := time.Now()
				job, err := submitJob(client, cfg.BaseURL, s)
				if err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				submitMu.Lock()
				if t := time.Now(); t.After(submitEnd) {
					submitEnd = t
				}
				submitMu.Unlock()
				final, err := pollJob(client, cfg.BaseURL, job.ID, deadline)
				if err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				outcomes[i] = outcome{latency: time.Since(start), state: final.State}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	drainWindow := time.Since(submitStart)

	latencies := make([]time.Duration, 0, n)
	completed := 0
	for i, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("load job %d: %w", i, o.err)
		}
		if o.state != StateDone {
			return nil, fmt.Errorf("load job %d finished %s, want %s", i, o.state, StateDone)
		}
		completed++
		latencies = append(latencies, o.latency)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	submitWindow := submitEnd.Sub(submitStart)
	if submitWindow <= 0 {
		submitWindow = time.Millisecond
	}
	return []obs.BenchEntry{
		{Name: "tap25d/service/submit_requests_per_sec", Unit: "req/s",
			Value: float64(n) / submitWindow.Seconds()},
		{Name: "tap25d/service/job_latency_p50_ms", Unit: "ms",
			Value: float64(percentile(latencies, 50)) / float64(time.Millisecond)},
		{Name: "tap25d/service/job_latency_p99_ms", Unit: "ms",
			Value: float64(percentile(latencies, 99)) / float64(time.Millisecond)},
		{Name: "tap25d/service/jobs_completed", Unit: "count", Value: float64(completed)},
		{Name: "tap25d/service/drain_jobs_per_sec", Unit: "jobs/s",
			Value: float64(completed) / drainWindow.Seconds()},
	}, nil
}

// fleetSpec is the reduced-fidelity job the fleet bench drains: small
// thermal grid, few steps — tens of milliseconds of CPU per job, so the
// drive measures queue drain, not the annealer. Fleet jobs are CPU-bound,
// which means the 2-worker/1-worker speedup tracks the host's core count:
// ~2x on multi-core hosts, and ~1.0x on a single core (measured: fsync on a
// modern virtio disk is ~0.2-0.5ms, far too cheap for I/O overlap to buy a
// second worker anything there).
func fleetSpec() JobSpec {
	return JobSpec{System: "multigpu", ThermalGrid: 16, Steps: 20, Runs: 1, CompactSteps: 400}
}

// RunFleetBench measures the multi-process worker fleet: the same job batch
// is drained through a serve-only server (zero local workers) by a fleet of
// one, then two, lease workers attached to its data directory, and the
// drain throughputs are published together with their ratio:
//
//	tap25d/service/fleet_drain_1w_jobs_per_sec   one-worker drain rate
//	tap25d/service/fleet_drain_2w_jobs_per_sec   two-worker drain rate
//	tap25d/service/fleet_speedup_x               2w / 1w
//
// The speedup is compute parallelism, so it tracks the host's cores:
// expect ~1.5-2x on 2+ cores and ~1.0x on a single core (see fleetSpec).
func RunFleetBench(jobs int, serve func(svc *Service) (baseURL string, stop func(), err error)) ([]obs.BenchEntry, error) {
	if jobs <= 0 {
		jobs = 8
	}
	rates := make([]float64, 0, 2)
	for _, fleet := range []int{1, 2} {
		dir, err := os.MkdirTemp("", "tap25d-fleet-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		svc, err := New(Config{DataDir: dir, Workers: -1})
		if err != nil {
			return nil, err
		}
		svc.Start()
		base, stop, err := serve(svc)
		if err != nil {
			return nil, err
		}
		entries, err := RunLoad(LoadConfig{
			BaseURL:         base,
			Jobs:            jobs,
			Spec:            fleetSpec(),
			Fleet:           fleet,
			DataDir:         dir,
			CheckpointEvery: 10,
		})
		stop()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err2 := svc.Drain(ctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("fleet=%d drive: %w", fleet, err)
		}
		if err2 != nil {
			return nil, fmt.Errorf("fleet=%d drain: %w", fleet, err2)
		}
		rate := 0.0
		for _, e := range entries {
			if e.Name == "tap25d/service/drain_jobs_per_sec" {
				rate = e.Value
			}
		}
		if rate <= 0 {
			return nil, fmt.Errorf("fleet=%d drive reported no drain rate", fleet)
		}
		rates = append(rates, rate)
	}
	return []obs.BenchEntry{
		{Name: "tap25d/service/fleet_drain_1w_jobs_per_sec", Unit: "jobs/s", Value: rates[0]},
		{Name: "tap25d/service/fleet_drain_2w_jobs_per_sec", Unit: "jobs/s", Value: rates[1]},
		{Name: "tap25d/service/fleet_speedup_x", Unit: "x", Value: rates[1] / rates[0]},
	}, nil
}

// percentile returns the p-th percentile of sorted (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func submitJob(client *http.Client, base string, spec JobSpec) (*Job, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, msg)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("submit: decoding response: %w", err)
	}
	return &job, nil
}

func pollJob(client *http.Client, base, id string, deadline time.Time) (*Job, error) {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var job Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("poll %s: %w", id, err)
		}
		if job.Terminal() {
			return &job, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("poll %s: job still %s at deadline", id, job.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
