package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tap25d"
	"tap25d/internal/obs"
	"tap25d/internal/placer"
)

// TestJobTraceEndToEnd is the tentpole acceptance test: a submitted job
// yields a durable trace whose every span carries the job's trace ID — from
// the HTTP submit through worker execution down to the thermal solves — the
// sealed manifest verifies the file, and both export formats serve it back.
func TestJobTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, dir, Config{})
	job, resp := postJob(t, ts, testSpec(21))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if job.TraceID == "" {
		t.Fatal("submitted job has no trace_id")
	}
	job = waitState(t, ts, job.ID, "done")
	if job.TraceID == "" {
		t.Fatal("finished job lost its trace_id")
	}

	// Raw JSONL export: every record shares the job's trace ID and the
	// pipeline layers all appear.
	httpResp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: HTTP %d", httpResp.StatusCode)
	}
	if ct := httpResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type %q", ct)
	}
	recs, err := obs.ReadTraceRecords(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("trace is empty")
	}
	phases := map[string]int{}
	for _, rec := range recs {
		if rec.Trace != job.TraceID {
			t.Fatalf("record %+v carries trace %q, want %q", rec, rec.Trace, job.TraceID)
		}
		if rec.SpanID == 0 {
			t.Fatalf("record %+v has no span ID", rec)
		}
		phases[rec.Phase]++
	}
	for _, phase := range []string{"job_submit", "job_execute", "sa_step", "thermal_solve"} {
		if phases[phase] == 0 {
			t.Errorf("trace has no %s spans; got %v", phase, phases)
		}
	}

	// The sealed manifest beside the trace verifies the file byte-for-byte.
	// It is sealed just after the terminal record persists, so give the
	// worker's finalize hook a moment to catch up with the observable state.
	var m obs.TraceManifest
	manifestPath := filepath.Join(dir, "traces", job.ID+".trace.manifest.json")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := placer.ReadSealedFile(manifestPath, "tap25d-trace", &m); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("reading sealed manifest: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.TraceID != job.TraceID || m.JobID != job.ID || int(m.Spans) != len(recs) {
		t.Fatalf("manifest %+v, want trace %s job %s with %d spans", m, job.TraceID, job.ID, len(recs))
	}
	if err := m.Verify(filepath.Join(dir, "traces", job.ID+".trace.jsonl")); err != nil {
		t.Fatalf("manifest verify: %v", err)
	}

	// Perfetto export round-trips as Chrome trace-event JSON.
	httpResp2, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp2.Body.Close()
	if httpResp2.StatusCode != http.StatusOK {
		t.Fatalf("GET trace?format=perfetto: HTTP %d", httpResp2.StatusCode)
	}
	var perfetto struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(httpResp2.Body).Decode(&perfetto); err != nil {
		t.Fatalf("perfetto decode: %v", err)
	}
	if perfetto.DisplayTimeUnit != "ms" || len(perfetto.TraceEvents) != len(recs) {
		t.Fatalf("perfetto export: unit %q, %d events, want ms and %d events",
			perfetto.DisplayTimeUnit, len(perfetto.TraceEvents), len(recs))
	}
}

// TestTraceEndpointErrors covers the endpoint's failure modes.
func TestTraceEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Config{})
	job, _ := postJob(t, ts, testSpec(22))
	waitState(t, ts, job.ID, "done")

	for _, c := range []struct {
		url  string
		code int
	}{
		{"/v1/jobs/job-nope/trace", http.StatusNotFound},
		{"/v1/jobs/" + job.ID + "/trace?format=zipkin", http.StatusBadRequest},
		{"/v1/jobs/" + job.ID + "/trace", http.StatusOK},
	} {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("GET %s: HTTP %d, want %d", c.url, resp.StatusCode, c.code)
		}
	}
}

// TestSLOAndHealthzEndpoints checks the operational surface riding along with
// the trace work: /v1/slo serves the evaluated objectives and /v1/healthz
// reports the build version.
func TestSLOAndHealthzEndpoints(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Config{})

	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo: HTTP %d", resp.StatusCode)
	}
	var slos struct {
		SLOs []obs.SLOStatus `json:"slos"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slos); err != nil {
		t.Fatal(err)
	}
	if len(slos.SLOs) == 0 {
		t.Fatal("/v1/slo served no objectives; the default config should be installed")
	}

	resp2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var hz map[string]string
	if err := json.NewDecoder(resp2.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["version"] == "" {
		t.Fatalf("/v1/healthz %v, want status ok with a version", hz)
	}
}

// TestHubDropsCounted checks the slow-subscriber contract: events dropped by
// Publish are surfaced through the hub's drop callback.
func TestHubDropsCounted(t *testing.T) {
	var counted int
	h := newHub(func(n int) { counted += n })
	ch, cancel := h.Subscribe("job-x")
	defer cancel()
	// Fill the subscriber's buffer without draining, then overflow it.
	for i := 0; i < subBuffer+5; i++ {
		h.Publish("job-x", tap25d.RunEvent{Kind: "step", Step: i})
	}
	if counted != 5 {
		t.Fatalf("onDrop counted %d events, want 5", counted)
	}
	if h.Dropped("job-x") != 5 {
		t.Fatalf("hub dropped = %d, want 5", h.Dropped("job-x"))
	}
	// The subscriber still got the buffered prefix.
	select {
	case <-ch:
	default:
		t.Fatal("subscriber channel empty")
	}
}

// TestDisabledObsNoTraces checks the zero-cost contract at the service layer:
// with no observer installed, jobs run to completion without minting trace
// files, and the trace endpoint reports not-found rather than erroring.
func TestDisabledObsNoTraces(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Observer: nil}
	cfg.DataDir = dir
	cfg.Workers = 1
	cfg.CheckpointEvery = 5
	cfg.ProgressEvery = 5
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer func() {
		ctx, cancel := testContext(t, 30*time.Second)
		defer cancel()
		svc.Drain(ctx)
	}()
	ts := httptest.NewServer(Handler(svc))
	defer ts.Close()

	job, _ := postJob(t, ts, testSpec(23))
	waitState(t, ts, job.ID, "done")
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "no_trace") {
		t.Fatalf("disabled-obs trace: HTTP %d %s, want 404 no_trace", resp.StatusCode, body)
	}
}
