package service

import (
	"math"
	"net/http"
	"testing"
)

func TestJobSpecPrecondValidation(t *testing.T) {
	for _, pre := range []string{"", "auto", "jacobi", "ssor", "mg"} {
		spec := testSpec(1)
		spec.Precond = pre
		if err := spec.Validate(); err != nil {
			t.Errorf("precond %q rejected: %v", pre, err)
		}
	}
	spec := testSpec(1)
	spec.Precond = "ilu"
	if err := spec.Validate(); err == nil {
		t.Error("unknown preconditioner accepted")
	}
}

func TestJobSpecPowerScenarioValidation(t *testing.T) {
	spec := testSpec(1)
	spec.PowerScenarios = []float64{0.8, 1.0, 1.2}
	if err := spec.Validate(); err != nil {
		t.Errorf("valid scenarios rejected: %v", err)
	}
	for _, bad := range [][]float64{
		{0.8, -0.1},
		{math.NaN()},
		{math.Inf(1)},
		make([]float64, maxPowerScenarios+1),
	} {
		spec := testSpec(1)
		spec.PowerScenarios = bad
		if err := spec.Validate(); err == nil {
			t.Errorf("scenarios %v accepted", bad)
		}
	}
}

// TestPowerScenarioSweep runs a job that asks for power-corner screening:
// the done record must carry one peak per requested corner, monotone in the
// scale factor, and the unscaled corner must match the job's own peak.
func TestPowerScenarioSweep(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Config{})
	spec := testSpec(3)
	spec.PowerScenarios = []float64{0.5, 1.0, 1.5}
	job, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := waitState(t, ts, job.ID, StateDone)
	if final.Result == nil {
		t.Fatal("done job has no result")
	}
	peaks := final.Result.ScenarioPeaksC
	if len(peaks) != 3 {
		t.Fatalf("got %d scenario peaks, want 3: %v", len(peaks), peaks)
	}
	if !(peaks[0] < peaks[1] && peaks[1] < peaks[2]) {
		t.Fatalf("peaks not monotone in power scale: %v", peaks)
	}
	// Corner 1.0 is the final placement at nominal power: the same solve the
	// flow's own final evaluation performed.
	if math.Abs(peaks[1]-final.Result.PeakC) > 1e-9 {
		t.Fatalf("nominal corner %.6f != job peak %.6f", peaks[1], final.Result.PeakC)
	}
}
