package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tap25d/internal/placer"
)

// Submission failure sentinels, mapped to HTTP statuses by the API layer.
var (
	// ErrQuotaExhausted rejects a submission whose tenant already has its full
	// quota of active (queued or running) jobs. HTTP 429.
	ErrQuotaExhausted = errors.New("service: tenant active-job quota exhausted")
	// ErrDraining rejects submissions while the server is shutting down.
	// HTTP 503.
	ErrDraining = errors.New("service: server is draining, not accepting jobs")
	// ErrNotFound marks lookups of unknown job IDs. HTTP 404.
	ErrNotFound = errors.New("service: no such job")
	// ErrTerminal rejects canceling a job that already finished. HTTP 409.
	ErrTerminal = errors.New("service: job already in a terminal state")
)

// queue is the persistent job queue: an in-memory index over one directory of
// sealed job records. All mutations go through the lock and are persisted
// before they are visible to other goroutines, so the on-disk state never
// lags what the API has acknowledged.
type queue struct {
	dir   string // <data>/jobs
	quota int    // max active jobs per tenant; 0 = unlimited

	mu       sync.Mutex
	jobs     map[string]*Job
	byIdem   map[string]string // "tenant\x00key" → job ID
	nextSeq  int64
	draining bool
	notify   chan struct{} // buffered(1); poked on every enqueue
}

// newQueue opens (or creates) the queue directory and loads every surviving
// job record. Jobs found in StateRunning were in flight when the previous
// process died: they are moved back to StateQueued so a worker picks them up
// and resumes them from their checkpoint directory. The returned count is the
// number of such orphans re-queued.
func newQueue(dir string, quota int) (*queue, int, error) {
	q := &queue{
		dir:    dir,
		quota:  quota,
		jobs:   map[string]*Job{},
		byIdem: map[string]string{},
		notify: make(chan struct{}, 1),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	requeued := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		var j Job
		path := filepath.Join(dir, name)
		if err := placer.ReadSealedFile(path, jobFormat, &j); err != nil {
			// A corrupt record is quarantined, not fatal: the queue must come
			// back up even if one record was torn by a dying disk.
			os.Rename(path, path+".corrupt")
			continue
		}
		if j.State == StateRunning {
			j.State = StateQueued
			if err := q.persistLocked(&j); err != nil {
				return nil, 0, err
			}
			requeued++
		}
		q.jobs[j.ID] = &j
		if k := idemKey(&j.Spec); k != "" {
			q.byIdem[k] = j.ID
		}
		if j.Seq >= q.nextSeq {
			q.nextSeq = j.Seq + 1
		}
	}
	return q, requeued, nil
}

func idemKey(s *JobSpec) string {
	if s.IdempotencyKey == "" {
		return ""
	}
	return s.tenant() + "\x00" + s.IdempotencyKey
}

// persistLocked seals the record to disk. Callers hold q.mu (or, during
// newQueue, have exclusive access).
func (q *queue) persistLocked(j *Job) error {
	return placer.WriteSealedFile(filepath.Join(q.dir, j.ID+".json"), jobFormat, j)
}

// Submit validates, deduplicates, quota-checks and enqueues a job. The bool
// reports whether the job is new (false: an existing job was returned under
// the spec's idempotency key).
func (q *queue) Submit(spec JobSpec, now time.Time) (*Job, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, false, ErrDraining
	}
	if k := idemKey(&spec); k != "" {
		if id, ok := q.byIdem[k]; ok {
			return q.jobs[id].clone(), false, nil
		}
	}
	if q.quota > 0 {
		active := 0
		for _, j := range q.jobs {
			if !j.Terminal() && j.Spec.tenant() == spec.tenant() {
				active++
			}
		}
		if active >= q.quota {
			return nil, false, fmt.Errorf("%w: tenant %q has %d active jobs (quota %d)",
				ErrQuotaExhausted, spec.tenant(), active, q.quota)
		}
	}
	j := &Job{
		ID:          newJobID(),
		Spec:        spec,
		State:       StateQueued,
		TraceID:     newTraceID(),
		Seq:         q.nextSeq,
		SubmittedAt: now.UTC(),
	}
	q.nextSeq++
	if err := q.persistLocked(j); err != nil {
		return nil, false, err
	}
	q.jobs[j.ID] = j
	if k := idemKey(&spec); k != "" {
		q.byIdem[k] = j.ID
	}
	q.poke()
	return j.clone(), true, nil
}

// poke wakes one waiting worker. The channel has capacity 1: a pending poke
// already guarantees every waiter will rescan, so drops are harmless.
func (q *queue) poke() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Next blocks until a queued job is available, marks it running and returns
// it. It returns nil once ctx is canceled. Priority wins; ties go to the
// lowest sequence number (FIFO).
func (q *queue) Next(ctx context.Context) *Job {
	for {
		// Checked before scanning: a drain re-queues interrupted jobs, and a
		// draining worker must exit rather than re-dispatch them.
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		q.mu.Lock()
		var best *Job
		for _, j := range q.jobs {
			if j.State != StateQueued {
				continue
			}
			if best == nil || j.Spec.Priority > best.Spec.Priority ||
				(j.Spec.Priority == best.Spec.Priority && j.Seq < best.Seq) {
				best = j
			}
		}
		if best != nil {
			best.State = StateRunning
			best.Attempts++
			now := time.Now().UTC()
			best.StartedAt = &now
			best.Resumed = false
			// Persistence failure here is not fatal to the dispatch: the job
			// still runs, and the next state transition re-persists. The
			// worst case after a crash in that window is a duplicate "fresh"
			// queued record, which the checkpoint restore makes idempotent.
			q.persistLocked(best)
			j := best.clone()
			q.mu.Unlock()
			return j
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil
		case <-q.notify:
		}
	}
}

// update applies f to the job under the lock and persists the result.
func (q *queue) update(id string, f func(*Job)) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	f(j)
	if err := q.persistLocked(j); err != nil {
		return nil, err
	}
	if j.State == StateQueued {
		q.poke()
	}
	return j.clone(), nil
}

// Get returns a snapshot of one job.
func (q *queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.clone(), nil
}

// List returns snapshots of every job, newest submission first.
func (q *queue) List() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, j.clone())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq > out[k].Seq })
	return out
}

// Depth returns the number of queued and running jobs.
func (q *queue) Depth() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, j := range q.jobs {
		switch j.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}

// CancelQueued transitions a still-queued job to canceled. It returns
// (nil, false, err) when the job is unknown; (job, false, nil) when the job
// is running or terminal (the caller must handle those states); and
// (job, true, nil) when the queued job was canceled here.
func (q *queue) CancelQueued(id string, now time.Time) (*Job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false, ErrNotFound
	}
	if j.State != StateQueued {
		return j.clone(), false, nil
	}
	j.State = StateCanceled
	at := now.UTC()
	j.FinishedAt = &at
	if err := q.persistLocked(j); err != nil {
		return nil, false, err
	}
	return j.clone(), true, nil
}

// StartDrain stops intake: every Submit from now on fails with ErrDraining.
func (q *queue) StartDrain() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
}

// Draining reports whether intake is stopped.
func (q *queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}
