package service

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tap25d/internal/placer"
)

// Submission failure sentinels, mapped to HTTP statuses by the API layer.
var (
	// ErrQuotaExhausted rejects a submission whose tenant already has its full
	// quota of active (queued or running) jobs. HTTP 429.
	ErrQuotaExhausted = errors.New("service: tenant active-job quota exhausted")
	// ErrDraining rejects submissions while the server is shutting down.
	// HTTP 503.
	ErrDraining = errors.New("service: server is draining, not accepting jobs")
	// ErrNotFound marks lookups of unknown job IDs. HTTP 404.
	ErrNotFound = errors.New("service: no such job")
	// ErrTerminal rejects canceling a job that already finished. HTTP 409.
	ErrTerminal = errors.New("service: job already in a terminal state")
)

// queue is the persistent job queue: an in-memory index over one directory of
// sealed job records. All mutations go through the lock and are persisted
// before they are visible to other goroutines, so the on-disk state never
// lags what the API has acknowledged.
//
// The directory — not the memory — is the truth: several processes (the
// server plus any number of cmd/tap25d-worker processes) may hold a queue
// over the same directory at once. Cross-process mutual exclusion comes from
// the lease protocol (only the lease holder writes a running job's record;
// only a claim or a fenced reclaim transitions it), and staleness is healed
// by reload/rescan, which re-read records from disk before decisions and on
// a poll cadence.
type queue struct {
	dir   string // <data>/jobs
	quota int    // max active jobs per tenant; 0 = unlimited

	mu       sync.Mutex
	jobs     map[string]*Job
	byIdem   map[string]string // "tenant\x00key" → job ID
	nextSeq  int64
	draining bool
	notify   chan struct{} // buffered(1); poked on every enqueue
}

// newQueue opens (or creates) the queue directory and loads every surviving
// job record. Jobs found in StateRunning are left running: they may be live
// under another process's lease, so recovery is the scavenger's decision
// (reclaim after lease expiry), not load-time fiat.
func newQueue(dir string, quota int) (*queue, error) {
	q := &queue{
		dir:    dir,
		quota:  quota,
		jobs:   map[string]*Job{},
		byIdem: map[string]string{},
		notify: make(chan struct{}, 1),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := q.rescan(); err != nil {
		return nil, err
	}
	return q, nil
}

// rescan reconciles the in-memory index with the directory: new records are
// loaded, and known non-terminal records are re-read so transitions made by
// other processes (a worker finishing a job, a scavenger re-queueing one)
// become visible. Terminal records are immutable and not re-read.
func (q *queue) rescan() error {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if known, ok := q.jobs[id]; ok {
			if !known.Terminal() {
				q.reloadLocked(id)
			}
			continue
		}
		var j Job
		path := filepath.Join(q.dir, name)
		if err := placer.ReadSealedFile(path, jobFormat, &j); err != nil {
			// A corrupt record is quarantined, not fatal: the queue must come
			// back up even if one record was torn by a dying disk.
			os.Rename(path, path+".corrupt")
			continue
		}
		q.jobs[j.ID] = &j
		if k := idemKey(&j.Spec); k != "" {
			q.byIdem[k] = j.ID
		}
		if j.Seq >= q.nextSeq {
			q.nextSeq = j.Seq + 1
		}
	}
	return nil
}

// reloadLocked re-reads one known record from disk, replacing the in-memory
// copy. Read failures leave the memory as-is (a torn read mid-rename on a
// non-atomic filesystem should not erase knowledge of the job).
func (q *queue) reloadLocked(id string) {
	var j Job
	if err := placer.ReadSealedFile(filepath.Join(q.dir, id+".json"), jobFormat, &j); err != nil {
		return
	}
	if j.ID != id {
		return
	}
	q.jobs[id] = &j
}

// reload re-reads one record from disk and returns the fresh snapshot.
func (q *queue) reload(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.jobs[id]; !ok {
		return nil, ErrNotFound
	}
	q.reloadLocked(id)
	return q.jobs[id].clone(), nil
}

// findIdem returns the existing job under the spec's idempotency key, if
// any. Used by the load-shedding gate: idempotent resubmissions of accepted
// jobs must keep succeeding even when the queue is full.
func (q *queue) findIdem(spec *JobSpec) (*Job, bool) {
	k := idemKey(spec)
	if k == "" {
		return nil, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if id, ok := q.byIdem[k]; ok {
		return q.jobs[id].clone(), true
	}
	return nil, false
}

func idemKey(s *JobSpec) string {
	if s.IdempotencyKey == "" {
		return ""
	}
	return s.tenant() + "\x00" + s.IdempotencyKey
}

// persistLocked seals the record to disk. Callers hold q.mu (or, during
// newQueue, have exclusive access).
func (q *queue) persistLocked(j *Job) error {
	return placer.WriteSealedFile(filepath.Join(q.dir, j.ID+".json"), jobFormat, j)
}

// Submit validates, deduplicates, quota-checks and enqueues a job. The bool
// reports whether the job is new (false: an existing job was returned under
// the spec's idempotency key).
func (q *queue) Submit(spec JobSpec, now time.Time) (*Job, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, false, ErrDraining
	}
	if k := idemKey(&spec); k != "" {
		if id, ok := q.byIdem[k]; ok {
			return q.jobs[id].clone(), false, nil
		}
	}
	if q.quota > 0 {
		active := 0
		for _, j := range q.jobs {
			if !j.Terminal() && j.Spec.tenant() == spec.tenant() {
				active++
			}
		}
		if active >= q.quota {
			return nil, false, fmt.Errorf("%w: tenant %q has %d active jobs (quota %d)",
				ErrQuotaExhausted, spec.tenant(), active, q.quota)
		}
	}
	j := &Job{
		ID:          newJobID(),
		Spec:        spec,
		State:       StateQueued,
		TraceID:     newTraceID(),
		Seq:         q.nextSeq,
		SubmittedAt: now.UTC(),
	}
	q.nextSeq++
	if err := q.persistLocked(j); err != nil {
		return nil, false, err
	}
	q.jobs[j.ID] = j
	if k := idemKey(&spec); k != "" {
		q.byIdem[k] = j.ID
	}
	q.poke()
	return j.clone(), true, nil
}

// poke wakes one waiting worker. The channel has capacity 1: a pending poke
// already guarantees every waiter will rescan, so drops are harmless.
func (q *queue) poke() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// claimable returns snapshots of every job a worker may claim now, best
// first: priority wins, ties go to the lowest sequence number (FIFO).
// Reclaimed jobs still inside their backoff gate are excluded.
func (q *queue) claimable(now time.Time) []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for _, j := range q.jobs {
		if j.claimable(now) {
			out = append(out, j.clone())
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Spec.Priority != out[k].Spec.Priority {
			return out[i].Spec.Priority > out[k].Spec.Priority
		}
		return out[i].Seq < out[k].Seq
	})
	return out
}

// nextGate returns the earliest backoff gate among queued-but-gated jobs, so
// a worker can sleep exactly until the next reclaimed job becomes claimable.
func (q *queue) nextGate(now time.Time) (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var gate time.Time
	found := false
	for _, j := range q.jobs {
		if j.State != StateQueued || j.NotBefore == nil || !now.Before(*j.NotBefore) {
			continue
		}
		if !found || j.NotBefore.Before(gate) {
			gate = *j.NotBefore
			found = true
		}
	}
	return gate, found
}

// errNotClaimable rejects a markRunning whose job was taken, canceled or
// gated between the claimable scan and the lease acquire. The claimer
// releases its lease and moves on.
var errNotClaimable = errors.New("service: job no longer claimable")

// markRunning transitions a claimable job to running under the claimer's
// lease epoch. The caller must already hold the job's lease (acquired at
// exactly this epoch); the record is re-read from disk first, so a
// transition made by another process since the claimable scan is respected.
func (q *queue) markRunning(id, workerID string, epoch int64, now time.Time) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.jobs[id]; !ok {
		return nil, ErrNotFound
	}
	q.reloadLocked(id)
	j := q.jobs[id]
	if !j.claimable(now) {
		return nil, fmt.Errorf("%w: %s is %s", errNotClaimable, id, j.State)
	}
	if epoch <= j.Epoch {
		// The claimer's lease was minted from a stale snapshot: a reclaim has
		// advanced the record's epoch past the claimed one. Honoring it would
		// hand the fencing token backwards.
		return nil, fmt.Errorf("%w: %s epoch %d is not past record epoch %d",
			errNotClaimable, id, epoch, j.Epoch)
	}
	j.State = StateRunning
	j.Attempts++
	j.Epoch = epoch
	j.WorkerID = workerID
	at := now.UTC()
	j.StartedAt = &at
	j.Resumed = false
	j.NotBefore = nil
	if err := q.persistLocked(j); err != nil {
		return nil, err
	}
	return j.clone(), nil
}

// Durable cancel markers. Cancellation must reach a worker in another
// process, so it cannot live in this process's memory: DELETE writes a
// marker file beside the job record, every worker checks it on claim and on
// each heartbeat, and the scavenger routes a reclaimed job with a marker to
// canceled instead of re-queueing it. The finalizing writer removes it.

func (q *queue) cancelMarkerPath(id string) string {
	return filepath.Join(q.dir, id+".cancel")
}

// markCancel durably records a cancellation request. Idempotent.
func (q *queue) markCancel(id string) error {
	f, err := os.OpenFile(q.cancelMarkerPath(id), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil
		}
		return err
	}
	fmt.Fprintln(f, time.Now().UTC().Format(time.RFC3339Nano))
	f.Sync()
	f.Close()
	return nil
}

// cancelRequested reports whether a durable cancellation marker exists.
func (q *queue) cancelRequested(id string) bool {
	_, err := os.Stat(q.cancelMarkerPath(id))
	return err == nil
}

// clearCancel removes the job's cancellation marker (terminal persist).
func (q *queue) clearCancel(id string) {
	os.Remove(q.cancelMarkerPath(id))
}

// update applies f to the job under the lock and persists the result.
func (q *queue) update(id string, f func(*Job)) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	f(j)
	if err := q.persistLocked(j); err != nil {
		return nil, err
	}
	if j.State == StateQueued {
		q.poke()
	}
	return j.clone(), nil
}

// Get returns a snapshot of one job. Non-terminal records are re-read from
// disk first, so progress made by workers in other processes is visible to
// the API without waiting for the rescan cadence.
func (q *queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if !j.Terminal() {
		q.reloadLocked(id)
		j = q.jobs[id]
	}
	return j.clone(), nil
}

// List returns snapshots of every job, newest submission first.
func (q *queue) List() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, j.clone())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq > out[k].Seq })
	return out
}

// Depth returns the number of queued and running jobs.
func (q *queue) Depth() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, j := range q.jobs {
		switch j.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}

// CancelQueued transitions a still-queued job to canceled. It returns
// (nil, false, err) when the job is unknown; (job, false, nil) when the job
// is running or terminal (the caller must handle those states); and
// (job, true, nil) when the queued job was canceled here.
func (q *queue) CancelQueued(id string, now time.Time) (*Job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false, ErrNotFound
	}
	if !j.Terminal() {
		q.reloadLocked(id)
		j = q.jobs[id]
	}
	if j.State != StateQueued {
		return j.clone(), false, nil
	}
	j.State = StateCanceled
	at := now.UTC()
	j.FinishedAt = &at
	if err := q.persistLocked(j); err != nil {
		return nil, false, err
	}
	return j.clone(), true, nil
}

// StartDrain stops intake: every Submit from now on fails with ErrDraining.
func (q *queue) StartDrain() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
}

// Draining reports whether intake is stopped.
func (q *queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}
