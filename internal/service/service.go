package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"tap25d"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
)

// Config parameterizes a Service. The zero value of every optional field is
// a sensible default; DataDir is required.
type Config struct {
	// DataDir is the service's state root: job records under <DataDir>/jobs,
	// per-job checkpoints under <DataDir>/ckpt/<job id>. Created if missing.
	DataDir string
	// Workers is the placement worker pool size (default: GOMAXPROCS/2,
	// minimum 1 — each placement job is itself internally parallel).
	Workers int
	// TenantQuota caps each tenant's active (queued+running) jobs; exceeding
	// it rejects the submission with ErrQuotaExhausted (HTTP 429). 0 means
	// unlimited.
	TenantQuota int
	// CheckpointEvery is the per-run checkpoint cadence in SA steps
	// (default 25). Smaller loses less work on a kill; larger does less I/O.
	CheckpointEvery int
	// ProgressEvery is the step-event cadence fanned out over SSE
	// (default 10; 0 keeps lifecycle events only).
	ProgressEvery int
	// Observer, when non-nil, aggregates the whole service's observability:
	// counters, queue-depth gauges, job-latency histograms, per-job trace
	// files; serve it with tap25d.ServeDebug to expose /metrics. nil
	// disables observability (jobs then carry no trace files).
	Observer *tap25d.Observer
	// Logger receives structured job-lifecycle logs carrying
	// job_id/tenant/trace correlation fields. nil discards them.
	Logger *slog.Logger
	// SLO declares the objectives evaluated on /v1/slo and exported as
	// tap25d_slo_* gauges. nil installs obs.DefaultSLOConfig() when an
	// Observer is present.
	SLO *obs.SLOConfig
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if n := runtime.GOMAXPROCS(0) / 2; n > 1 {
		return n
	}
	return 1
}

func (c Config) checkpointEvery() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 25
}

func (c Config) progressEvery() int {
	if c.ProgressEvery > 0 {
		return c.ProgressEvery
	}
	return 10
}

// Service is the placement-as-a-service engine: one persistent queue, one
// event hub, and a pool of workers draining the queue through tap25d.Place.
// Construct with New, start the workers with Start, and stop with Drain.
type Service struct {
	cfg   Config
	queue *queue
	hub   *hub
	obs   *tap25d.Observer
	log   *slog.Logger

	// tracesDir holds the per-job span trace files (<id>.trace.jsonl plus a
	// sealed manifest); "" when the service runs without an Observer.
	tracesDir string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	traceMu sync.Mutex
	traces  map[string]*obs.TraceSink // job ID → its open trace sink

	mu       sync.Mutex
	counters metrics.Counters
	cancels  map[string]context.CancelFunc // running job → its cancel
	canceled map[string]bool               // running job → user asked to cancel
	busy     int
}

// New opens the service state under cfg.DataDir. Jobs that were running when
// the previous process died are re-queued (they will resume from their
// checkpoints); the count of such jobs is logged via the observer gauge
// "service_requeued_on_boot".
func New(cfg Config) (*Service, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	q, requeued, err := newQueue(filepath.Join(cfg.DataDir, "jobs"), cfg.TenantQuota)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		queue:    q,
		obs:      cfg.Observer,
		log:      cfg.Logger,
		ctx:      ctx,
		cancel:   cancel,
		traces:   map[string]*obs.TraceSink{},
		cancels:  map[string]context.CancelFunc{},
		canceled: map[string]bool{},
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// Slow-subscriber drops are counted, not silently swallowed: the hub
	// reports them and the service rolls them into jobs_events_dropped.
	s.hub = newHub(func(n int) {
		s.count(func(c *metrics.Counters) { c.JobsEventsDropped += int64(n) })
	})
	if s.obs != nil {
		s.tracesDir = filepath.Join(cfg.DataDir, "traces")
		if err := os.MkdirAll(s.tracesDir, 0o755); err != nil {
			cancel()
			return nil, err
		}
		slo := cfg.SLO
		if slo == nil {
			slo = obs.DefaultSLOConfig()
		}
		s.obs.SetSLO(slo)
	}
	s.obs.SetGauge("service_requeued_on_boot", float64(requeued))
	s.publishGauges()
	return s, nil
}

// Start launches the worker pool. It returns immediately; jobs execute in
// the background until Drain.
func (s *Service) Start() {
	for i := 0; i < s.cfg.workers(); i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job := s.queue.Next(s.ctx)
				if job == nil {
					return
				}
				s.runJob(job)
			}
		}()
	}
}

// Drain gracefully stops the service: intake stops (submissions fail with
// ErrDraining), every running job is interrupted — the placer checkpoints
// and returns its best-so-far — and the interrupted jobs go back to the
// queue in StateQueued so the next boot resumes them. Drain blocks until all
// workers have exited or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.queue.StartDrain()
	s.cancel() // stops Next and cancels every in-flight job's context
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out: %w", ctx.Err())
	}
}

// count applies f to the service counters and mirrors the single-increment
// delta into the observer, so the Prometheus endpoint and the service's own
// totals stay in lockstep.
func (s *Service) count(f func(c *metrics.Counters)) {
	var delta metrics.Counters
	f(&delta)
	s.mu.Lock()
	s.counters.Merge(delta)
	s.mu.Unlock()
	s.obs.AbsorbCounters(delta)
}

// Counters returns a snapshot of the service-level job counters.
func (s *Service) Counters() metrics.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// publishGauges refreshes the queue-depth and utilization gauges.
func (s *Service) publishGauges() {
	if s.obs == nil {
		return
	}
	queued, running := s.queue.Depth()
	s.mu.Lock()
	busy := s.busy
	s.mu.Unlock()
	s.obs.SetGauge("service_queue_depth", float64(queued))
	s.obs.SetGauge("service_jobs_running", float64(running))
	s.obs.SetGauge("service_workers_busy", float64(busy))
	s.obs.SetGauge("service_workers", float64(s.cfg.workers()))
}

// ckptDir is the job's private checkpoint directory.
func (s *Service) ckptDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "ckpt", id)
}

// Submit enqueues a job (or returns the existing one under the spec's
// idempotency key). A newly created job gets its trace file opened here, so
// even the submission itself appears as a span under the job's trace ID.
func (s *Service) Submit(spec JobSpec) (*Job, bool, error) {
	start := time.Now()
	j, created, err := s.queue.Submit(spec, start)
	switch {
	case errors.Is(err, ErrQuotaExhausted):
		s.count(func(c *metrics.Counters) { c.JobsQuotaRejected++ })
		s.log.Warn("job rejected: tenant quota exhausted", "tenant", spec.tenant())
	case err == nil && created:
		s.count(func(c *metrics.Counters) { c.JobsSubmitted++ })
		s.attachTrace(j)
		s.obs.ObserveTracedSpan(j.TraceID, obs.PhaseJobSubmit, j.ID, start, time.Since(start))
		s.log.Info("job submitted",
			"job_id", j.ID, "tenant", j.Spec.tenant(), "trace", j.TraceID,
			"priority", j.Spec.Priority)
	case err == nil && !created:
		s.count(func(c *metrics.Counters) { c.JobsDeduped++ })
		s.log.Info("job submit deduplicated",
			"job_id", j.ID, "tenant", j.Spec.tenant(), "trace", j.TraceID)
	}
	s.publishGauges()
	return j, created, err
}

// Get returns a snapshot of one job.
func (s *Service) Get(id string) (*Job, error) { return s.queue.Get(id) }

// List returns snapshots of all jobs, newest first.
func (s *Service) List() []*Job { return s.queue.List() }

// Draining reports whether intake is stopped.
func (s *Service) Draining() bool { return s.queue.Draining() }

// Subscribe attaches to a job's RunEvent stream (replay + live; see hub).
// The error is ErrNotFound for unknown jobs.
func (s *Service) Subscribe(id string) (<-chan tap25d.RunEvent, func(), error) {
	if _, err := s.queue.Get(id); err != nil {
		return nil, nil, err
	}
	ch, cancel := s.hub.Subscribe(id)
	return ch, cancel, nil
}

// Cancel cancels a job: a queued job transitions to canceled immediately; a
// running job's context is canceled and the worker finalizes it as canceled
// (keeping the best-so-far result if one exists). Canceling a terminal job
// returns ErrTerminal.
func (s *Service) Cancel(id string) (*Job, error) {
	j, done, err := s.queue.CancelQueued(id, time.Now())
	if err != nil {
		return nil, err
	}
	if done {
		s.count(func(c *metrics.Counters) { c.JobsCanceled++ })
		s.hub.Close(id)
		s.publishGauges()
		return j, nil
	}
	if j.Terminal() {
		return j, ErrTerminal
	}
	// Running: flag the job as user-canceled and cut its context. The worker
	// observes the flag when Place returns and finalizes the record.
	s.mu.Lock()
	s.canceled[id] = true
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, nil
}

// runJob executes one job to a terminal state (or back to queued on drain).
func (s *Service) runJob(job *Job) {
	jobCtx, cancelJob := context.WithCancel(s.ctx)
	defer cancelJob()
	s.mu.Lock()
	s.cancels[job.ID] = cancelJob
	s.busy++
	s.mu.Unlock()
	s.hub.Reopen(job.ID)
	s.publishGauges()
	start := time.Now()
	s.obs.ObserveNamed("job_queue_wait", start.Sub(job.SubmittedAt))
	s.log.Info("job started",
		"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
		"attempt", job.Attempts)

	// Re-attach the trace sink (a restarted process re-queues running jobs,
	// so the sink opened at submission is gone) and thread the trace ID plus
	// a root span through the context: every span the placer, thermal solver
	// and router open below inherits the job's trace.
	s.attachTrace(job)
	execCtx := obs.ContextWithTrace(jobCtx, job.TraceID)
	root := s.obs.StartSpanCtx(execCtx, obs.PhaseJobExecute, job.ID)
	execCtx = obs.ContextWithSpan(execCtx, root)

	res, resumed, runErr := s.execute(execCtx, job)
	root.End()

	s.mu.Lock()
	delete(s.cancels, job.ID)
	userCanceled := s.canceled[job.ID]
	delete(s.canceled, job.ID)
	s.busy--
	s.mu.Unlock()

	now := time.Now()
	finished := now.UTC()
	interrupted := runErr != nil && errors.Is(runErr, context.Canceled)
	final, err := s.queue.update(job.ID, func(j *Job) {
		j.Resumed = resumed
		switch {
		case interrupted && !userCanceled:
			// Drain: hand the job back to the queue; its checkpoints carry
			// the annealing state forward into the next process.
			j.State = StateQueued
			j.StartedAt = nil
		case interrupted && userCanceled:
			j.State = StateCanceled
			j.FinishedAt = &finished
			j.Result = jobResult(res)
		case runErr != nil:
			j.State = StateFailed
			j.FinishedAt = &finished
			j.Error = runErr.Error()
		default:
			j.State = StateDone
			j.FinishedAt = &finished
			j.Result = jobResult(res)
		}
	})
	if err != nil {
		// The record refused to persist (disk trouble). The job's events
		// still tell the story; nothing else we can do from a worker.
		s.obs.Add("service_persist_errors", 1)
	}
	if resumed {
		s.count(func(c *metrics.Counters) { c.JobsResumed++ })
	}
	if res != nil && res.Surrogate != nil {
		s.obs.SetGauge("surrogate_drift_rms_c", res.Surrogate.DriftRMSC)
	}
	if final != nil && final.Terminal() {
		switch final.State {
		case StateDone:
			s.count(func(c *metrics.Counters) { c.JobsCompleted++ })
		case StateFailed:
			s.count(func(c *metrics.Counters) { c.JobsFailed++ })
		case StateCanceled:
			s.count(func(c *metrics.Counters) { c.JobsCanceled++ })
		}
		s.obs.ObserveNamed("job_latency", now.Sub(job.SubmittedAt))
		s.sealTrace(final)
		os.RemoveAll(s.ckptDir(job.ID)) // spent snapshots
		s.hub.Close(job.ID)
		if final.State == StateFailed {
			s.log.Error("job failed",
				"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
				"error", final.Error)
		} else {
			s.log.Info("job finished",
				"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID,
				"state", final.State, "latency", now.Sub(job.SubmittedAt))
		}
	} else if final != nil && final.State == StateQueued {
		s.log.Info("job interrupted, re-queued",
			"job_id", job.ID, "tenant", job.Spec.tenant(), "trace", job.TraceID)
	}
	s.publishGauges()
}

// execute runs the placement flow of one job attempt. It reports the result,
// whether any run resumed from a checkpoint, and the flow error.
func (s *Service) execute(ctx context.Context, job *Job) (*tap25d.Result, bool, error) {
	sys, err := job.Spec.LoadSystem()
	if err != nil {
		return nil, false, err
	}
	store := &tap25d.CheckpointStore{Dir: s.ckptDir(job.ID), Obs: s.obs}
	var resumedMu sync.Mutex
	resumed := false
	progress := func(e tap25d.RunEvent) {
		if e.Kind == tap25d.EventResume {
			resumedMu.Lock()
			resumed = true
			resumedMu.Unlock()
		}
		s.hub.Publish(job.ID, e)
	}
	res, err := tap25d.Place(sys, tap25d.Options{
		ThermalGrid:     job.Spec.ThermalGrid,
		Steps:           job.Spec.Steps,
		Runs:            job.Spec.Runs,
		CompactSteps:    job.Spec.CompactSteps,
		Seed:            job.Spec.Seed,
		GasStation:      job.Spec.GasStation,
		Surrogate:       !job.Spec.NoSurrogate,
		Context:         ctx,
		Progress:        progress,
		ProgressEvery:   s.cfg.progressEvery(),
		CheckpointEvery: s.cfg.checkpointEvery(),
		Checkpoint:      store.Checkpoint,
		Restore:         store.Restore,
		Observer:        s.obs,
	})
	resumedMu.Lock()
	defer resumedMu.Unlock()
	return res, resumed, err
}

// jobResult projects a tap25d.Result onto the persisted record (nil-safe).
func jobResult(res *tap25d.Result) *JobResult {
	if res == nil {
		return nil
	}
	return &JobResult{
		Placement:           res.Placement,
		PeakC:               res.PeakC,
		WirelengthMM:        res.WirelengthMM,
		Feasible:            res.Feasible,
		InitialPeakC:        res.InitialPeakC,
		InitialWirelengthMM: res.InitialWirelength,
		Metrics:             res.Metrics,
	}
}
