package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"tap25d"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
)

// ErrOverloaded rejects a submission while the queue is beyond its configured
// depth limit (load shedding). HTTP 503 with a Retry-After hint.
var ErrOverloaded = errors.New("service: queue depth limit reached")

// Config parameterizes a Service. The zero value of every optional field is
// a sensible default; DataDir is required.
type Config struct {
	// DataDir is the service's state root: job records under <DataDir>/jobs,
	// leases under <DataDir>/leases, per-job checkpoints under
	// <DataDir>/ckpt/<job id>. Created if missing. Any number of
	// cmd/tap25d-worker processes may attach to the same directory.
	DataDir string
	// Workers is the in-process placement worker pool size (default:
	// GOMAXPROCS/2, minimum 1 — each placement job is itself internally
	// parallel). Negative runs zero local workers: the server only serves the
	// API and scavenges, and external tap25d-worker processes do the work.
	Workers int
	// TenantQuota caps each tenant's active (queued+running) jobs; exceeding
	// it rejects the submission with ErrQuotaExhausted (HTTP 429). 0 means
	// unlimited.
	TenantQuota int
	// MaxQueueDepth sheds load: submissions beyond this many active
	// (queued+running) jobs are rejected with ErrOverloaded (HTTP 503 plus a
	// Retry-After hint) regardless of tenant. 0 means unlimited.
	MaxQueueDepth int
	// LeaseTTL is the job-lease heartbeat deadline (default 10s): a worker
	// that fails to renew for this long is presumed dead and its job is
	// reclaimed by a peer.
	LeaseTTL time.Duration
	// RetryBudget is the number of crash reclamations a job survives before
	// failing terminally (default 3; negative means none).
	RetryBudget int
	// RetryBackoff is the re-dispatch delay after a job's first reclamation,
	// doubling per reclamation (default 1s, capped at one minute).
	RetryBackoff time.Duration
	// CheckpointEvery is the per-run checkpoint cadence in SA steps
	// (default 25). Smaller loses less work on a kill; larger does less I/O.
	CheckpointEvery int
	// ProgressEvery is the step-event cadence fanned out over SSE
	// (default 10; 0 keeps lifecycle events only).
	ProgressEvery int
	// Observer, when non-nil, aggregates the whole service's observability:
	// counters, queue-depth gauges, job-latency histograms, per-job trace
	// files; serve it with tap25d.ServeDebug to expose /metrics. nil
	// disables observability (jobs then carry no trace files).
	Observer *tap25d.Observer
	// Logger receives structured job-lifecycle logs carrying
	// job_id/tenant/trace correlation fields. nil discards them.
	Logger *slog.Logger
	// SLO declares the objectives evaluated on /v1/slo and exported as
	// tap25d_slo_* gauges. nil installs obs.DefaultSLOConfig() when an
	// Observer is present.
	SLO *obs.SLOConfig
}

func (c Config) workers() int {
	if c.Workers < 0 {
		return 0
	}
	if c.Workers > 0 {
		return c.Workers
	}
	if n := runtime.GOMAXPROCS(0) / 2; n > 1 {
		return n
	}
	return 1
}

func (c Config) workerConfig() WorkerConfig {
	return WorkerConfig{
		DataDir:         c.DataDir,
		LeaseTTL:        c.LeaseTTL,
		RetryBudget:     c.RetryBudget,
		RetryBackoff:    c.RetryBackoff,
		CheckpointEvery: c.CheckpointEvery,
		ProgressEvery:   c.ProgressEvery,
		Observer:        c.Observer,
		Logger:          c.Logger,
	}
}

// Service is the placement-as-a-service engine: one persistent queue over the
// shared data directory, one event hub, and a pool of in-process lease
// workers draining the queue through tap25d.Place — alongside any
// cmd/tap25d-worker processes attached to the same directory. Construct with
// New, start with Start, stop with Drain.
type Service struct {
	cfg      Config
	queue    *queue
	hub      *hub
	obs      *tap25d.Observer
	log      *slog.Logger
	leaseDir string
	sc       *scavenger

	// tracesDir holds the per-job span trace files (<id>.trace.jsonl plus a
	// sealed manifest); "" when the service runs without an Observer.
	tracesDir string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	traceMu sync.Mutex
	traces  map[string]*obs.TraceSink // job ID → its open trace sink

	mu          sync.Mutex
	counters    metrics.Counters
	cancels     map[string]context.CancelFunc // locally-running job → its cancel
	busy        int
	avgExecSecs float64           // EWMA of job execution time, for Retry-After
	openJobs    map[string]string // non-terminal jobs → last seen state (sync loop)
}

// New opens the service state under cfg.DataDir. A boot sweep reclaims any
// job whose lease expired while no process was watching (the previous
// process crashed); the count is published as the observer gauge
// "service_requeued_on_boot". Jobs under live leases — other worker
// processes are still running them — are left alone.
func New(cfg Config) (*Service, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	q, err := newQueue(filepath.Join(cfg.DataDir, "jobs"), cfg.TenantQuota)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		queue:    q,
		obs:      cfg.Observer,
		log:      cfg.Logger,
		leaseDir: filepath.Join(cfg.DataDir, "leases"),
		ctx:      ctx,
		cancel:   cancel,
		traces:   map[string]*obs.TraceSink{},
		cancels:  map[string]context.CancelFunc{},
		openJobs: map[string]string{},
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// Slow-subscriber drops are counted, not silently swallowed: the hub
	// reports them and the service rolls them into jobs_events_dropped.
	s.hub = newHub(func(n int) {
		s.count(func(c *metrics.Counters) { c.JobsEventsDropped += int64(n) })
	})
	if s.obs != nil {
		s.tracesDir = filepath.Join(cfg.DataDir, "traces")
		if err := os.MkdirAll(s.tracesDir, 0o755); err != nil {
			cancel()
			return nil, err
		}
		slo := cfg.SLO
		if slo == nil {
			slo = obs.DefaultSLOConfig()
		}
		s.obs.SetSLO(slo)
	}
	wcfg := cfg.workerConfig()
	s.sc = &scavenger{
		queue:    q,
		leaseDir: s.leaseDir,
		workerID: wcfg.id() + "-scavenger",
		ttl:      wcfg.leaseTTL(),
		budget:   wcfg.retryBudget(),
		backoff:  wcfg.retryBackoff(),
		backoffM: wcfg.retryBackoffMax(),
		obs:      s.obs,
		log:      s.log,
		count:    s.count,
		publish:  s.hub.Publish,
		onFinal:  s.onExternalFinal,
	}
	s.obs.SetGauge("service_requeued_on_boot", float64(s.sc.sweep(time.Now())))
	s.publishGauges()
	return s, nil
}

// Start launches the in-process worker pool (if any) and the sync loop that
// watches the shared directory for transitions made by external worker
// processes. It returns immediately; jobs execute in the background until
// Drain.
func (s *Service) Start() {
	base := s.cfg.workerConfig()
	for i := 0; i < s.cfg.workers(); i++ {
		wcfg := base
		wcfg.ID = fmt.Sprintf("%s-w%d", base.id(), i)
		w := newWorkerWith(wcfg, s.queue, workerHooks{
			execContext: s.execContext,
			progress:    s.hub.Publish,
			onClaim:     s.onClaim,
			onDone:      s.onDone,
			onFinal:     s.onFinal,
			count:       s.count,
		})
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.Run(s.ctx)
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.syncLoop()
	}()
}

// syncLoop is the server's periodic reconciliation with the shared directory:
// it scavenges expired leases (so recovery works even with zero local
// workers), refreshes the gauges, and detects jobs driven terminal by
// external worker processes — closing their SSE streams and sealing their
// trace manifests, which only this process can do for subscribers attached
// here.
func (s *Service) syncLoop() {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-tick.C:
			s.sc.maybeSweep(now, s.cfg.workerConfig().scavengeEvery())
			s.queue.rescan()
			s.reconcile()
			s.publishGauges()
		}
	}
}

// reconcile diffs the queue against the known non-terminal set and finalizes
// the process-local side (hub, trace manifest) of jobs that reached a
// terminal state in another process.
func (s *Service) reconcile() {
	jobs := s.queue.List()
	s.mu.Lock()
	var external []*Job
	for _, j := range jobs {
		if j.Terminal() {
			if _, wasOpen := s.openJobs[j.ID]; wasOpen {
				delete(s.openJobs, j.ID)
				if _, local := s.cancels[j.ID]; !local {
					external = append(external, j)
				}
			}
			continue
		}
		s.openJobs[j.ID] = j.State
	}
	s.mu.Unlock()
	for _, j := range external {
		s.onExternalFinal(j)
	}
}

// onExternalFinal closes the process-local resources of a job finalized
// elsewhere (an external worker, or a scavenger's terminal reclaim). The
// synthetic "job" event tells subscribers attached to this process how the
// job ended — the placer's own terminal events fired in the other process.
func (s *Service) onExternalFinal(j *Job) {
	s.hub.Publish(j.ID, tap25d.RunEvent{Kind: "job", Error: j.Error})
	s.onFinal(j)
}

// Drain gracefully stops the service: intake stops (submissions fail with
// ErrDraining), every locally-running job is interrupted — the placer
// checkpoints and returns its best-so-far — and the interrupted jobs go back
// to the queue in StateQueued with their leases released, so any process can
// resume them. Drain blocks until all workers have exited or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.queue.StartDrain()
	s.cancel() // stops the workers and cancels every in-flight job's context
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out: %w", ctx.Err())
	}
}

// count applies f to the service counters and mirrors the delta into the
// observer, so the Prometheus endpoint and the service's own totals stay in
// lockstep.
func (s *Service) count(f func(c *metrics.Counters)) {
	var delta metrics.Counters
	f(&delta)
	s.mu.Lock()
	s.counters.Merge(delta)
	s.mu.Unlock()
	s.obs.AbsorbCounters(delta)
}

// Counters returns a snapshot of the service-level job counters.
func (s *Service) Counters() metrics.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// activeLeases counts the lease files in the shared directory — the fleet's
// current concurrency, local and external workers alike.
func (s *Service) activeLeases() int {
	entries, err := os.ReadDir(s.leaseDir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".lease.json") {
			n++
		}
	}
	return n
}

// publishGauges refreshes the queue-depth and utilization gauges.
func (s *Service) publishGauges() {
	if s.obs == nil {
		return
	}
	queued, running := s.queue.Depth()
	s.mu.Lock()
	busy := s.busy
	s.mu.Unlock()
	s.obs.SetGauge("service_queue_depth", float64(queued))
	s.obs.SetGauge("service_jobs_running", float64(running))
	s.obs.SetGauge("service_workers_busy", float64(busy))
	s.obs.SetGauge("service_workers", float64(s.cfg.workers()))
	s.obs.SetGauge("service_leases_active", float64(s.activeLeases()))
}

// retryAfterHint estimates, in whole seconds, when the backlog will have
// moved enough for a rejected submission to stand a chance: active jobs
// divided by the fleet's execution slots, times the average job execution
// time (EWMA, default 2s), clamped to [1, 600]. It is deliberately a hint —
// coarse, cheap, and monotone in the backlog.
func (s *Service) retryAfterHint() int {
	queued, running := s.queue.Depth()
	slots := s.cfg.workers()
	if n := s.activeLeases(); n > slots {
		slots = n
	}
	if slots < 1 {
		slots = 1
	}
	s.mu.Lock()
	avg := s.avgExecSecs
	s.mu.Unlock()
	if avg <= 0 {
		avg = 2
	}
	secs := int(math.Ceil(float64(queued+running+1) / float64(slots) * avg))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// Worker-pool hooks: the lease Worker engine (worker.go) calls back into the
// service for everything process-local.

// execContext re-attaches the job's trace sink (the submitting process may
// have died; the sink must live where the job runs) and threads the trace ID
// plus a root span through the context, so every span the placer, thermal
// solver and router open below inherits the job's trace.
func (s *Service) execContext(ctx context.Context, job *Job) (context.Context, func()) {
	s.attachTrace(job)
	execCtx := obs.ContextWithTrace(ctx, job.TraceID)
	root := s.obs.StartSpanCtx(execCtx, obs.PhaseJobExecute, job.ID)
	execCtx = obs.ContextWithSpan(execCtx, root)
	return execCtx, root.End
}

func (s *Service) onClaim(job *Job, cancel context.CancelFunc) {
	s.mu.Lock()
	s.cancels[job.ID] = cancel
	s.busy++
	s.openJobs[job.ID] = StateRunning
	s.mu.Unlock()
	s.hub.Reopen(job.ID)
	s.publishGauges()
}

func (s *Service) onDone(job *Job) {
	s.mu.Lock()
	delete(s.cancels, job.ID)
	s.busy--
	s.mu.Unlock()
	s.publishGauges()
}

// onFinal runs once per terminal job (locally finalized, reclaimed to
// terminal, or detected by the sync loop): seal the trace manifest and feed
// the execution-time EWMA behind Retry-After.
func (s *Service) onFinal(final *Job) {
	s.sealTrace(final)
	if final.StartedAt != nil && final.FinishedAt != nil {
		exec := final.FinishedAt.Sub(*final.StartedAt).Seconds()
		if exec > 0 {
			s.mu.Lock()
			if s.avgExecSecs <= 0 {
				s.avgExecSecs = exec
			} else {
				s.avgExecSecs = 0.7*s.avgExecSecs + 0.3*exec
			}
			s.mu.Unlock()
		}
	}
	s.mu.Lock()
	delete(s.openJobs, final.ID)
	s.mu.Unlock()
	s.hub.Close(final.ID)
	s.publishGauges()
}

// Submit enqueues a job (or returns the existing one under the spec's
// idempotency key). Beyond Config.MaxQueueDepth active jobs, new submissions
// are shed with ErrOverloaded — but idempotent resubmissions of existing jobs
// still succeed, so retry loops keep their answer. A newly created job gets
// its trace file opened here, so even the submission itself appears as a
// span under the job's trace ID.
func (s *Service) Submit(spec JobSpec) (*Job, bool, error) {
	start := time.Now()
	if s.cfg.MaxQueueDepth > 0 {
		if _, exists := s.queue.findIdem(&spec); !exists {
			if queued, running := s.queue.Depth(); queued+running >= s.cfg.MaxQueueDepth {
				s.count(func(c *metrics.Counters) { c.JobsShed++ })
				s.log.Warn("job shed: queue depth limit",
					"tenant", spec.tenant(), "active", queued+running,
					"limit", s.cfg.MaxQueueDepth)
				return nil, false, fmt.Errorf("%w: %d active jobs (limit %d)",
					ErrOverloaded, queued+running, s.cfg.MaxQueueDepth)
			}
		}
	}
	j, created, err := s.queue.Submit(spec, start)
	switch {
	case errors.Is(err, ErrQuotaExhausted):
		s.count(func(c *metrics.Counters) { c.JobsQuotaRejected++ })
		s.log.Warn("job rejected: tenant quota exhausted", "tenant", spec.tenant())
	case err == nil && created:
		s.count(func(c *metrics.Counters) { c.JobsSubmitted++ })
		s.mu.Lock()
		s.openJobs[j.ID] = j.State
		s.mu.Unlock()
		s.attachTrace(j)
		s.obs.ObserveTracedSpan(j.TraceID, obs.PhaseJobSubmit, j.ID, start, time.Since(start))
		s.log.Info("job submitted",
			"job_id", j.ID, "tenant", j.Spec.tenant(), "trace", j.TraceID,
			"priority", j.Spec.Priority)
	case err == nil && !created:
		s.count(func(c *metrics.Counters) { c.JobsDeduped++ })
		s.log.Info("job submit deduplicated",
			"job_id", j.ID, "tenant", j.Spec.tenant(), "trace", j.TraceID)
	}
	s.publishGauges()
	return j, created, err
}

// Get returns a snapshot of one job.
func (s *Service) Get(id string) (*Job, error) { return s.queue.Get(id) }

// List returns snapshots of all jobs, newest first.
func (s *Service) List() []*Job { return s.queue.List() }

// Draining reports whether intake is stopped.
func (s *Service) Draining() bool { return s.queue.Draining() }

// Subscribe attaches to a job's RunEvent stream (replay + live; see hub).
// The error is ErrNotFound for unknown jobs.
func (s *Service) Subscribe(id string) (<-chan tap25d.RunEvent, func(), error) {
	if _, err := s.queue.Get(id); err != nil {
		return nil, nil, err
	}
	ch, cancel := s.hub.Subscribe(id)
	return ch, cancel, nil
}

// Cancel cancels a job. The request is made durable first (a marker file
// beside the job record), so it reaches workers in other processes: a queued
// job transitions to canceled immediately; a running job's worker — local or
// external — observes the marker at its next heartbeat, cuts the placement,
// and finalizes the record as canceled (keeping the best-so-far result if
// one exists). Canceling a terminal job returns ErrTerminal.
func (s *Service) Cancel(id string) (*Job, error) {
	j, err := s.queue.Get(id)
	if err != nil {
		return nil, err
	}
	if j.Terminal() {
		return j, ErrTerminal
	}
	if err := s.queue.markCancel(id); err != nil {
		return nil, fmt.Errorf("service: persisting cancel request: %w", err)
	}
	j, done, err := s.queue.CancelQueued(id, time.Now())
	if err != nil {
		return nil, err
	}
	if done {
		s.queue.clearCancel(id)
		s.count(func(c *metrics.Counters) { c.JobsCanceled++ })
		s.onFinal(j)
		return j, nil
	}
	if j.Terminal() {
		// Lost the race: the job finished between the check and the cancel.
		s.queue.clearCancel(id)
		return j, ErrTerminal
	}
	// Running. Cut the local context if the job runs in this process; an
	// external worker sees the durable marker at its next heartbeat.
	s.mu.Lock()
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, nil
}
