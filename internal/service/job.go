// Package service implements placement-as-a-service: a persistent job queue
// with tenant quotas and priorities, workers that execute placement jobs
// through the tap25d facade, per-job checkpoint directories so in-flight
// jobs survive a process death, an HTTP/JSON API to submit and track jobs,
// and a per-job Server-Sent-Events stream that fans out the placer's RunEvent
// journal to any number of watchers.
//
// Durability reuses the checkpoint machinery: every job record is a
// CRC-sealed JSON envelope (placer.WriteSealedFile, format "tap25d-job")
// written atomically, and every running job checkpoints its annealing state
// into its own placer.FileStore directory. A killed server therefore loses
// nothing: on restart, queued jobs are still queued, running jobs are
// reclaimed and resume bit-compatibly from their last checkpoint, and
// terminal jobs keep their results.
//
// The queue is shared by processes, not just goroutines: any number of
// worker processes (cmd/tap25d-worker, or the server's own in-process pool)
// attach to one data directory and claim jobs through the file-based lease
// protocol in lease.go. A claim atomically creates a CRC-sealed lease file
// carrying a fencing epoch; checkpoints and record writes re-verify the
// lease, so a worker whose lease was reclaimed (crash, wedge, partition)
// cannot corrupt the job a peer has taken over. Scavengers (every worker and
// the server run one) detect expired leases and re-queue the job with an
// incremented epoch under a per-job retry budget with exponential backoff.
package service

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"tap25d"
)

// jobFormat tags the sealed on-disk job records.
const jobFormat = "tap25d-job"

// Job states. The lifecycle is queued → running → {done, failed, canceled},
// with one backward edge: a drain or crash moves running jobs back to queued
// (they resume from their checkpoint).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobSpec is the client-supplied description of one placement job: which
// system to place and the knobs of the flow. The zero value of every field is
// a valid default; see docs/SERVICE.md for the schema.
type JobSpec struct {
	// System names a built-in case-study system ("multigpu", "cpudram",
	// "ascend910"). Exactly one of System and SystemJSON must be set.
	System string `json:"system,omitempty"`
	// SystemJSON is a custom system description in the JSON format accepted
	// by tap25d.LoadSystem.
	SystemJSON json.RawMessage `json:"system_json,omitempty"`
	// ThermalGrid, Steps, Runs, CompactSteps and Seed mirror the tap25d
	// Options fields of the same names (zero keeps the library default).
	ThermalGrid  int   `json:"thermal_grid,omitempty"`
	Steps        int   `json:"steps,omitempty"`
	Runs         int   `json:"runs,omitempty"`
	CompactSteps int   `json:"compact_steps,omitempty"`
	Seed         int64 `json:"seed,omitempty"`
	// GasStation enables 2-stage pipelined routing (Eqn. 9).
	GasStation bool `json:"gas_station,omitempty"`
	// Precond selects the CG preconditioner ("jacobi", "ssor", "mg";
	// empty/"auto" picks Jacobi up to grid 64 and multigrid beyond), as
	// tap25d.Options.Precond.
	Precond string `json:"precond,omitempty"`
	// PowerScenarios, when non-empty, asks the worker to re-evaluate the
	// final placement under these whole-system power scale factors in one
	// batched multi-RHS thermal solve; the per-corner peak temperatures are
	// returned in JobResult.ScenarioPeaksC. This is power-corner screening:
	// "is the placement still feasible at 120% TDP?" without extra jobs.
	PowerScenarios []float64 `json:"power_scenarios,omitempty"`
	// NoSurrogate disables the two-fidelity surrogate prescreen. Like the
	// CLIs, the service runs with the surrogate ON by default.
	NoSurrogate bool `json:"no_surrogate,omitempty"`
	// Priority orders the queue: higher runs first; ties run in submission
	// order.
	Priority int `json:"priority,omitempty"`
	// Tenant attributes the job for quota accounting (default "default").
	Tenant string `json:"tenant,omitempty"`
	// IdempotencyKey makes submission retry-safe: a resubmit with the same
	// (tenant, key) pair returns the existing job instead of enqueueing a
	// duplicate.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// Validate rejects specs the workers could not execute.
func (s *JobSpec) Validate() error {
	if s.System == "" && len(s.SystemJSON) == 0 {
		return fmt.Errorf("spec needs system (one of %v) or system_json", tap25d.BuiltinSystemNames())
	}
	if s.System != "" && len(s.SystemJSON) != 0 {
		return fmt.Errorf("spec sets both system and system_json; pick one")
	}
	if _, err := s.LoadSystem(); err != nil {
		return err
	}
	if s.ThermalGrid < 0 || s.Steps < 0 || s.Runs < 0 || s.CompactSteps < 0 {
		return fmt.Errorf("thermal_grid, steps, runs and compact_steps must be non-negative")
	}
	switch s.Precond {
	case "", "auto", "jacobi", "ssor", "mg":
	default:
		return fmt.Errorf("precond %q: want auto, jacobi, ssor or mg", s.Precond)
	}
	if len(s.PowerScenarios) > maxPowerScenarios {
		return fmt.Errorf("power_scenarios: %d corners exceeds the limit of %d", len(s.PowerScenarios), maxPowerScenarios)
	}
	for c, f := range s.PowerScenarios {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("power_scenarios[%d] is %v; want a finite non-negative scale factor", c, f)
		}
	}
	return nil
}

// maxPowerScenarios bounds the per-job power-corner sweep; the batched
// solver holds all right-hand sides in memory at once.
const maxPowerScenarios = 64

// LoadSystem materializes the spec's system description.
func (s *JobSpec) LoadSystem() (*tap25d.System, error) {
	if s.System != "" {
		return tap25d.BuiltinSystem(s.System)
	}
	sys, err := tap25d.LoadSystem(bytes.NewReader(s.SystemJSON))
	if err != nil {
		return nil, fmt.Errorf("system_json: %w", err)
	}
	return sys, nil
}

// tenant returns the quota-accounting tenant, defaulted.
func (s *JobSpec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// JobResult is the subset of tap25d.Result persisted with a completed job.
type JobResult struct {
	Placement    tap25d.Placement `json:"placement"`
	PeakC        float64          `json:"peak_c"`
	WirelengthMM float64          `json:"wirelength_mm"`
	Feasible     bool             `json:"feasible"`
	// InitialPeakC and InitialWirelengthMM describe the Compact-2.5D starting
	// point, for before/after comparisons.
	InitialPeakC        float64 `json:"initial_peak_c"`
	InitialWirelengthMM float64 `json:"initial_wirelength_mm"`
	// Metrics aggregates the flow's evaluation counters.
	Metrics tap25d.EvalCounters `json:"metrics"`
	// ScenarioPeaksC holds the peak temperature of the final placement under
	// each requested power corner (same order as JobSpec.PowerScenarios;
	// absent when no corners were requested).
	ScenarioPeaksC []float64 `json:"scenario_peaks_c,omitempty"`
}

// Job is one queued, running or finished placement job. It is both the
// persisted record (sealed under jobFormat) and the API representation.
type Job struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State string  `json:"state"`
	// TraceID correlates every telemetry span of the job — from the HTTP
	// submit through the worker's SA steps down to the CG solves — and names
	// the records of the job's durable trace file (GET /v1/jobs/{id}/trace).
	TraceID string `json:"trace_id,omitempty"`
	// Seq is the submission sequence number; within one priority the queue is
	// FIFO by Seq.
	Seq int64 `json:"seq"`
	// Attempts counts executions started, including ones cut short by a drain
	// or crash; a resumed job continues its annealing state, so attempts > 1
	// does not mean work was repeated.
	Attempts int `json:"attempts"`
	// Epoch is the job's fencing token: it increases on every claim and every
	// reclaim, and a worker holding a lease under an older epoch is stale —
	// its checkpoint and record writes are rejected (see lease.go).
	Epoch int64 `json:"epoch,omitempty"`
	// WorkerID names the worker currently (or last) running the job.
	WorkerID string `json:"worker_id,omitempty"`
	// Retries counts scavenger reclamations of this job (expired lease after
	// a worker crash or wedge). A graceful drain requeue is not a retry.
	// Beyond the retry budget the job fails terminally.
	Retries int `json:"retries,omitempty"`
	// NotBefore gates re-dispatch of a reclaimed job: workers do not claim it
	// until this instant (exponential backoff in the reclaim count).
	NotBefore *time.Time `json:"not_before,omitempty"`
	// Resumed reports that at least one annealing run of the latest attempt
	// continued from a checkpoint rather than starting fresh.
	Resumed bool `json:"resumed,omitempty"`
	// Timestamps of the lifecycle edges (RFC 3339; StartedAt and FinishedAt
	// are omitted until reached).
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Error carries the failure of a failed job.
	Error string `json:"error,omitempty"`
	// Result is set on done jobs (and on canceled jobs that had found a
	// feasible best-so-far before the cancel).
	Result *JobResult `json:"result,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool {
	return j.State == StateDone || j.State == StateFailed || j.State == StateCanceled
}

// clone deep-copies the record so callers can hold it outside the queue lock.
func (j *Job) clone() *Job {
	c := *j
	if j.Result != nil {
		r := *j.Result
		c.Result = &r
	}
	if j.StartedAt != nil {
		t := *j.StartedAt
		c.StartedAt = &t
	}
	if j.FinishedAt != nil {
		t := *j.FinishedAt
		c.FinishedAt = &t
	}
	if j.NotBefore != nil {
		t := *j.NotBefore
		c.NotBefore = &t
	}
	return &c
}

// claimable reports whether a worker may claim the job now: queued, and past
// any reclaim backoff gate.
func (j *Job) claimable(now time.Time) bool {
	return j.State == StateQueued && (j.NotBefore == nil || !now.Before(*j.NotBefore))
}

// newJobID mints a collision-resistant job identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the clock so
		// the service still limps along rather than panicking.
		return fmt.Sprintf("job-t%x", time.Now().UnixNano())
	}
	return "job-" + hex.EncodeToString(b[:])
}

// newTraceID mints the run/trace identifier propagated through every span of
// a job's execution.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("tr-t%x", time.Now().UnixNano())
	}
	return "tr-" + hex.EncodeToString(b[:])
}
