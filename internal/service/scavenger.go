package service

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"sync"
	"time"

	"tap25d"
	"tap25d/internal/metrics"
	"tap25d/internal/obs"
	"tap25d/internal/placer"
)

// scavenger reclaims jobs whose workers died or wedged: it scans the
// non-terminal records, and any running job whose lease heartbeat deadline has
// passed is taken over under an incremented fencing epoch and re-queued (with
// exponential backoff) — or failed terminally once its retry budget is spent,
// or retired as canceled if a durable cancel marker arrived meanwhile. Every
// worker runs one, so recovery needs no distinguished process: whichever
// survivor sweeps first wins the reclaim race (serialized by the O_EXCL lease
// acquire), and the rest skip.
type scavenger struct {
	queue    *queue
	leaseDir string
	workerID string
	ttl      time.Duration
	budget   int           // crash retries before terminal failure
	backoff  time.Duration // first re-dispatch delay; doubles per retry
	backoffM time.Duration // backoff cap
	obs      *tap25d.Observer
	log      *slog.Logger
	count    func(f func(c *metrics.Counters))
	// publish forwards a reclaim event into the job's SSE stream (nil for
	// standalone workers without a hub).
	publish func(jobID string, e tap25d.RunEvent)
	// onFinal runs when a reclaim drove the job terminal (retry budget spent,
	// or canceled).
	onFinal func(j *Job)

	mu        sync.Mutex
	lastSweep time.Time
}

// maybeSweep runs a sweep if at least every has passed since the last one.
func (sc *scavenger) maybeSweep(now time.Time, every time.Duration) {
	sc.mu.Lock()
	due := now.Sub(sc.lastSweep) >= every
	if due {
		sc.lastSweep = now
	}
	sc.mu.Unlock()
	if due {
		sc.sweep(now)
	}
}

// sweep reconciles every non-terminal job against its lease. It returns the
// number of jobs reclaimed (the server's boot sweep reports it as a gauge).
func (sc *scavenger) sweep(now time.Time) int {
	sc.queue.rescan()
	reclaimed := 0
	for _, j := range sc.queue.List() {
		if j.Terminal() {
			continue
		}
		l, err := readLease(sc.leaseDir, j.ID)
		switch {
		case err == nil && !l.expired(now):
			// Live lease: the holder owns the job, whatever the record says.
			continue
		case err == nil || errors.Is(err, placer.ErrCheckpointCorrupt):
			// Expired (or torn) lease. Clear it; for running jobs, reclaim.
			removeExpiredLease(sc.leaseDir, j.ID)
			if j.State == StateRunning && sc.reclaim(j, now) {
				reclaimed++
			}
		case errors.Is(err, fs.ErrNotExist):
			// No lease at all. Queued jobs simply await a claim. A running
			// job with no lease is a worker that died between markRunning
			// and its crash — or a lease file lost with its directory entry.
			// Grant it one full TTL of grace from its start time before
			// presuming death, in case the claimer is mid-acquire.
			if j.State == StateRunning && j.StartedAt != nil &&
				now.Sub(*j.StartedAt) > sc.ttl+sc.ttl/2 {
				if sc.reclaim(j, now) {
					reclaimed++
				}
			}
		default:
			sc.log.Warn("lease unreadable during sweep", "job_id", j.ID, "error", err)
		}
	}
	return reclaimed
}

// reclaim takes over one expired running job: acquire its lease at the next
// fencing epoch (losing the O_EXCL race to a peer scavenger — or to the
// revenant worker itself — means someone else owns recovery now), re-verify
// the record, then route the job to queued-with-backoff, failed, or canceled.
// The record write precedes the lease release, preserving the invariant that
// a released lease always leaves a non-running or re-queued record behind.
func (sc *scavenger) reclaim(j *Job, now time.Time) bool {
	start := time.Now()
	epoch := j.Epoch + 1
	l, err := acquireLease(sc.leaseDir, j.ID, sc.workerID, epoch, sc.ttl, now)
	if err != nil {
		if !errors.Is(err, ErrLeaseHeld) {
			sc.log.Warn("reclaim lease acquire failed", "job_id", j.ID, "error", err)
		}
		return false
	}
	// Re-read the record under our lease: if the dying worker finalized it,
	// or a peer already reclaimed it (epoch moved), stand down.
	cur, err := sc.queue.reload(j.ID)
	if err != nil || cur.State != StateRunning || cur.Epoch != j.Epoch {
		releaseLease(sc.leaseDir, l)
		return false
	}

	canceled := sc.queue.cancelRequested(j.ID)
	retries := cur.Retries + 1
	overBudget := retries > sc.budget
	var detail string
	final, err := sc.queue.update(j.ID, func(rec *Job) {
		rec.Epoch = epoch
		rec.WorkerID = ""
		rec.StartedAt = nil
		rec.Retries = retries
		switch {
		case canceled:
			rec.State = StateCanceled
			at := now.UTC()
			rec.FinishedAt = &at
			detail = fmt.Sprintf("lease expired (worker %s); cancel requested", cur.WorkerID)
		case overBudget:
			rec.State = StateFailed
			at := now.UTC()
			rec.FinishedAt = &at
			rec.Error = fmt.Sprintf(
				"worker %s lease expired and retry budget spent (%d reclaims, budget %d)",
				cur.WorkerID, retries, sc.budget)
			detail = rec.Error
		default:
			rec.State = StateQueued
			gate := now.UTC().Add(sc.retryDelay(retries))
			rec.NotBefore = &gate
			detail = fmt.Sprintf(
				"lease of worker %s expired; retry %d/%d after %s",
				cur.WorkerID, retries, sc.budget, time.Until(gate).Round(time.Millisecond))
		}
	})
	if err != nil {
		sc.obs.Add("service_persist_errors", 1)
		sc.log.Error("reclaim persist failed", "job_id", j.ID, "error", err)
		releaseLease(sc.leaseDir, l)
		return false
	}
	releaseLease(sc.leaseDir, l)

	sc.count(func(c *metrics.Counters) {
		c.JobsReclaims++
		if final.State == StateQueued {
			c.JobsRetries++
		}
		if final.State == StateFailed {
			c.JobsFailed++
		}
		if final.State == StateCanceled {
			c.JobsCanceled++
		}
	})
	sc.obs.ObserveTracedSpan(final.TraceID, obs.PhaseJobReclaim,
		fmt.Sprintf("%s epoch %d", j.ID, epoch), start, time.Since(start))
	if sc.publish != nil {
		sc.publish(j.ID, tap25d.RunEvent{Kind: "reclaim", Error: detail})
	}
	if final.Terminal() {
		sc.queue.clearCancel(j.ID)
		if sc.onFinal != nil {
			sc.onFinal(final)
		}
	}
	sc.log.Warn("job reclaimed",
		"job_id", j.ID, "trace", final.TraceID, "from_worker", cur.WorkerID,
		"by", sc.workerID, "epoch", epoch, "state", final.State, "detail", detail)
	return true
}

// retryDelay is the exponential re-dispatch backoff for the nth reclaim
// (n ≥ 1): backoff·2^(n-1), capped.
func (sc *scavenger) retryDelay(n int) time.Duration {
	d := sc.backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= sc.backoffM {
			return sc.backoffM
		}
	}
	if d > sc.backoffM {
		d = sc.backoffM
	}
	return d
}
