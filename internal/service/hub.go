package service

import (
	"sync"

	"tap25d"
)

// ringSize bounds the per-job event history kept for late SSE subscribers: a
// subscriber that attaches mid-run first replays the newest ringSize events,
// then follows live. Lifecycle events are sparse, so the ring comfortably
// covers them plus the recent step cadence.
const ringSize = 256

// subBuffer is each subscriber's channel capacity. A subscriber that stalls
// past it loses intermediate events (dropped, counted) rather than stalling
// the placement worker: the journal is advisory, the annealing is not.
const subBuffer = 64

// hub fans one job's RunEvent stream out to any number of subscribers. The
// worker publishes; SSE handlers subscribe. Closed topics replay their ring
// and then end the stream, so subscribing to a finished job terminates
// cleanly instead of hanging.
type hub struct {
	// onDrop, when non-nil, is called (outside the lock) with the number of
	// events a Publish dropped on slow subscribers, so the service can count
	// them on the jobs_events_dropped counter.
	onDrop func(n int)

	mu     sync.Mutex
	topics map[string]*topic
}

type topic struct {
	ring    []tap25d.RunEvent // newest-last, at most ringSize
	subs    map[chan tap25d.RunEvent]*subscriber
	closed  bool
	dropped int64
}

type subscriber struct{ dropped int64 }

func newHub(onDrop func(n int)) *hub {
	return &hub{onDrop: onDrop, topics: map[string]*topic{}}
}

func (h *hub) topic(id string) *topic {
	t, ok := h.topics[id]
	if !ok {
		t = &topic{subs: map[chan tap25d.RunEvent]*subscriber{}}
		h.topics[id] = t
	}
	return t
}

// Publish appends e to the job's history ring and offers it to every live
// subscriber without blocking.
func (h *hub) Publish(id string, e tap25d.RunEvent) {
	h.mu.Lock()
	t := h.topic(id)
	if t.closed {
		h.mu.Unlock()
		return
	}
	t.ring = append(t.ring, e)
	if len(t.ring) > ringSize {
		t.ring = t.ring[1:]
	}
	drops := 0
	for ch, s := range t.subs {
		select {
		case ch <- e:
		default:
			s.dropped++
			t.dropped++
			drops++
		}
	}
	onDrop := h.onDrop
	h.mu.Unlock()
	if drops > 0 && onDrop != nil {
		onDrop(drops)
	}
}

// Subscribe attaches to a job's event stream: the returned channel first
// receives a replay of the retained history, then live events; it is closed
// when the job's stream closes (or already was). Call the returned cancel
// function to detach.
func (h *hub) Subscribe(id string) (<-chan tap25d.RunEvent, func()) {
	h.mu.Lock()
	t := h.topic(id)
	replay := make([]tap25d.RunEvent, len(t.ring))
	copy(replay, t.ring)
	ch := make(chan tap25d.RunEvent, max(subBuffer, len(replay)+1))
	for _, e := range replay {
		ch <- e
	}
	if t.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	s := &subscriber{}
	t.subs[ch] = s
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := t.subs[ch]; ok {
				delete(t.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// Close ends a job's stream: subscribers' channels are closed after draining
// and new subscribers get replay-then-EOF. The ring is retained so a status
// page can still show the tail of a finished job.
func (h *hub) Close(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topic(id)
	if t.closed {
		return
	}
	t.closed = true
	for ch := range t.subs {
		close(ch)
		delete(t.subs, ch)
	}
}

// Reopen undoes Close for a job that is executing again (a re-queued job
// resuming after a drain): new events flow to new subscribers.
func (h *hub) Reopen(id string) {
	h.mu.Lock()
	h.topic(id).closed = false
	h.mu.Unlock()
}

// Dropped returns the total events dropped on slow subscribers of one job.
func (h *hub) Dropped(id string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.topic(id).dropped
}
