package systems

import (
	"testing"

	"tap25d/internal/route"
)

func TestAllSystemsValidate(t *testing.T) {
	for name, sys := range All() {
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(sys.Chiplets) != 8 {
			t.Errorf("%s: %d chiplets, want 8 (paper: up to 8)", name, len(sys.Chiplets))
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestOriginalPlacementsValid(t *testing.T) {
	if err := CPUDRAM().CheckPlacement(CPUDRAMOriginal()); err != nil {
		t.Errorf("CPU-DRAM original: %v", err)
	}
	if err := Ascend910().CheckPlacement(Ascend910Original()); err != nil {
		t.Errorf("Ascend 910 original: %v", err)
	}
}

func TestOriginalPlacementsRoutable(t *testing.T) {
	if _, err := route.Route(CPUDRAM(), CPUDRAMOriginal(), route.Options{}); err != nil {
		t.Errorf("CPU-DRAM original: %v", err)
	}
	if _, err := route.Route(Ascend910(), Ascend910Original(), route.Options{}); err != nil {
		t.Errorf("Ascend 910 original: %v", err)
	}
}

func TestAscendColumnLayout(t *testing.T) {
	sys := Ascend910()
	col := Ascend910ColumnLayout()
	if err := sys.CheckPlacement(col); err != nil {
		t.Fatalf("column layout invalid: %v", err)
	}
	if _, err := route.Route(sys, col, route.Options{}); err != nil {
		t.Fatalf("column layout unroutable: %v", err)
	}
}

func TestAscendOriginalIsWireMinimalVsColumn(t *testing.T) {
	// The documented substitution: the 4-side reference layout must carry
	// shorter wires than the photographed single-column layout under the
	// 4-clump model.
	sys := Ascend910()
	orig, err := route.Route(sys, Ascend910Original(), route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := route.Route(sys, Ascend910ColumnLayout(), route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if orig.TotalWirelengthMM >= col.TotalWirelengthMM {
		t.Errorf("reference layout WL %v not below column layout %v",
			orig.TotalWirelengthMM, col.TotalWirelengthMM)
	}
}

func TestMultiGPUAt(t *testing.T) {
	s := MultiGPUAt(50)
	if s.InterposerW != 50 || s.InterposerH != 50 {
		t.Errorf("interposer = %v x %v", s.InterposerW, s.InterposerH)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name == MultiGPU().Name {
		t.Error("resized system should have a distinct name")
	}
}

func TestCPUDRAMCPUIndices(t *testing.T) {
	sys := CPUDRAM()
	for _, i := range CPUDRAMCPUIndices() {
		if sys.Chiplets[i].Power < 100 {
			t.Errorf("index %d (%s) does not look like a CPU", i, sys.Chiplets[i].Name)
		}
	}
}

func TestPowerBudgets(t *testing.T) {
	// Sanity anchors for the calibration documented in DESIGN.md: the
	// CPU-DRAM system must be the hottest (thermally infeasible compact),
	// the Ascend 910 the coolest (feasible as built).
	mg, cd, as := MultiGPU().TotalPower(), CPUDRAM().TotalPower(), Ascend910().TotalPower()
	if !(cd > mg && mg > as) {
		t.Errorf("power ordering wrong: cpudram %v, multigpu %v, ascend %v", cd, mg, as)
	}
}
