// Package systems defines the three heterogeneous 2.5D case studies of the
// paper's evaluation (Section IV): a conceptual Multi-GPU system, the
// CPU-DRAM system of Kannan et al. (MICRO'15), and the Huawei Ascend 910.
//
// Chiplet dimensions and powers follow publicly available data where it
// exists and standard technology-scaling estimates elsewhere, as the paper
// itself does (its footnote 6); Table II of the source text is partially
// unreadable, so the exact values here are reconstructions documented in
// DESIGN.md. The methodology is independent of the absolute area and power
// values.
package systems

import (
	"fmt"
	"sort"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
)

// InterposerEdgeMM is the evaluation's default interposer edge (45 mm; the
// minimum that fits all three systems).
const InterposerEdgeMM = 45

// CriticalC is the thermal feasibility threshold used throughout the paper.
const CriticalC = 85

// MultiGPU returns the conceptual Multi-GPU system of case study 1 (Fig. 3a):
// two CPU chiplets, two GPU chiplets and four HBM stacks. Each GPU owns two
// HBM stacks (1024 wires each, an HBM-class bus); CPUs talk to both GPUs and
// to each other (512-wire channels).
func MultiGPU() *chiplet.System {
	return &chiplet.System{
		Name:        "multigpu",
		InterposerW: InterposerEdgeMM,
		InterposerH: InterposerEdgeMM,
		Chiplets: []chiplet.Chiplet{
			{Name: "CPU0", W: 12, H: 12, Power: 70},
			{Name: "CPU1", W: 12, H: 12, Power: 70},
			{Name: "GPU0", W: 16, H: 16, Power: 175},
			{Name: "GPU1", W: 16, H: 16, Power: 175},
			{Name: "HBM0", W: 8, H: 12, Power: 8},
			{Name: "HBM1", W: 8, H: 12, Power: 8},
			{Name: "HBM2", W: 8, H: 12, Power: 8},
			{Name: "HBM3", W: 8, H: 12, Power: 8},
		},
		Channels: []chiplet.Channel{
			{Src: 2, Dst: 4, Wires: 2048}, // GPU0 - HBM0 (HBM-class bus)
			{Src: 2, Dst: 5, Wires: 2048}, // GPU0 - HBM1
			{Src: 3, Dst: 6, Wires: 2048}, // GPU1 - HBM2
			{Src: 3, Dst: 7, Wires: 2048}, // GPU1 - HBM3
			{Src: 0, Dst: 2, Wires: 1024}, // CPU0 - GPU0
			{Src: 0, Dst: 3, Wires: 1024}, // CPU0 - GPU1
			{Src: 1, Dst: 2, Wires: 1024}, // CPU1 - GPU0
			{Src: 1, Dst: 3, Wires: 1024}, // CPU1 - GPU1
			{Src: 0, Dst: 1, Wires: 1024}, // CPU0 - CPU1
		},
		// Generous microbump budget so gas-station routing through the HBMs
		// is pin-feasible, as in the paper's Fig. 4c.
		PinsPerClumpLimit: 2048,
	}
}

// MultiGPUAt returns the Multi-GPU system on an edge×edge interposer
// (the Section IV-A interposer-size study uses 45 and 50 mm).
func MultiGPUAt(edgeMM float64) *chiplet.System {
	s := MultiGPU()
	s.InterposerW, s.InterposerH = edgeMM, edgeMM
	s.Name = fmt.Sprintf("multigpu%.0f", edgeMM)
	return s
}

// CPUDRAM returns the CPU-DRAM system of case study 2, after the
// interposer-based disintegrated multi-core of Kannan et al. (MICRO'15):
// four 16-core CPU chiplets in a ring plus one DRAM stack per CPU.
// The nominal 600 W total power makes compact placements thermally
// infeasible, which is the point of the case study.
func CPUDRAM() *chiplet.System {
	return &chiplet.System{
		Name:        "cpudram",
		InterposerW: InterposerEdgeMM,
		InterposerH: InterposerEdgeMM,
		Chiplets: []chiplet.Chiplet{
			{Name: "CPU0", W: 13, H: 13, Power: 155},
			{Name: "CPU1", W: 13, H: 13, Power: 155},
			{Name: "CPU2", W: 13, H: 13, Power: 155},
			{Name: "CPU3", W: 13, H: 13, Power: 155},
			{Name: "DRAM0", W: 9, H: 9, Power: 10},
			{Name: "DRAM1", W: 9, H: 9, Power: 10},
			{Name: "DRAM2", W: 9, H: 9, Power: 10},
			{Name: "DRAM3", W: 9, H: 9, Power: 10},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 1, Wires: 2048}, // CPU ring (coherence fabric)
			{Src: 1, Dst: 2, Wires: 2048},
			{Src: 2, Dst: 3, Wires: 2048},
			{Src: 3, Dst: 0, Wires: 2048},
			{Src: 0, Dst: 4, Wires: 1024}, // CPUi - DRAMi (memory bus)
			{Src: 1, Dst: 5, Wires: 1024},
			{Src: 2, Dst: 6, Wires: 1024},
			{Src: 3, Dst: 7, Wires: 1024},
		},
		PinsPerClumpLimit: 2048,
	}
}

// CPUDRAMCPUIndices returns the indices of the CPU chiplets, whose power the
// TDP analysis of Section IV-B varies.
func CPUDRAMCPUIndices() []int { return []int{0, 1, 2, 3} }

// CPUDRAMOriginal returns the original placement of the CPU-DRAM system
// (Fig. 5a): the four CPUs packed as a 2x2 cluster in the center — optimal
// from the routing perspective — with each DRAM adjacent to its CPU.
func CPUDRAMOriginal() chiplet.Placement {
	p := chiplet.NewPlacement(8)
	// CPUs: 13x13, tight 2x2 cluster centered on the interposer
	// (0.1 mm die gap), matching the routing-optimal layout of Fig. 5a.
	p.Centers[0] = geom.Point{X: 15.95, Y: 15.95}
	p.Centers[1] = geom.Point{X: 29.05, Y: 15.95}
	p.Centers[2] = geom.Point{X: 29.05, Y: 29.05}
	p.Centers[3] = geom.Point{X: 15.95, Y: 29.05}
	// DRAMs: 9x9, in the corners diagonally adjacent to their CPU.
	p.Centers[4] = geom.Point{X: 4.5, Y: 4.5}
	p.Centers[5] = geom.Point{X: 40.5, Y: 4.5}
	p.Centers[6] = geom.Point{X: 40.5, Y: 40.5}
	p.Centers[7] = geom.Point{X: 4.5, Y: 40.5}
	return p
}

// Ascend910 returns the Huawei Ascend 910 system of case study 3 (Fig. 3c):
// the Virtuvian AI compute die, four HBM2E stacks, the Nimbus V3 I/O die and
// two dummy dies for mechanical support. Dimensions estimated from published
// die shots (Virtuvian ~456 mm², Nimbus ~168 mm²).
func Ascend910() *chiplet.System {
	return &chiplet.System{
		Name:        "ascend910",
		InterposerW: InterposerEdgeMM,
		InterposerH: InterposerEdgeMM,
		Chiplets: []chiplet.Chiplet{
			{Name: "Virtuvian", W: 26, H: 17.5, Power: 220},
			{Name: "Nimbus", W: 14, H: 12, Power: 25},
			{Name: "HBM0", W: 11, H: 8, Power: 8},
			{Name: "HBM1", W: 11, H: 8, Power: 8},
			{Name: "HBM2", W: 11, H: 8, Power: 8},
			{Name: "HBM3", W: 11, H: 8, Power: 8},
			{Name: "Dummy0", W: 11, H: 4, Power: 0},
			{Name: "Dummy1", W: 11, H: 4, Power: 0},
		},
		Channels: []chiplet.Channel{
			{Src: 0, Dst: 2, Wires: 1024}, // Virtuvian - HBMi
			{Src: 0, Dst: 3, Wires: 1024},
			{Src: 0, Dst: 4, Wires: 1024},
			{Src: 0, Dst: 5, Wires: 1024},
			{Src: 0, Dst: 1, Wires: 512}, // Virtuvian - Nimbus
		},
		PinsPerClumpLimit: 2048,
	}
}

// Ascend910Original returns the reference "original" layout of Fig. 6a: the
// wire-minimal arrangement under this repo's 4-midpoint-pin-clump model,
// with one HBM flush against each Virtuvian edge and Nimbus in the nearest
// corner. The commercial package actually stacks all four HBMs in a single
// column beside the compute die; with edge-midpoint clumps that column is
// not wire-minimal (the stack's outer HBMs sit ~13 mm off the facing clump),
// so we substitute the clump-optimal variant to preserve the case study's
// premise that the original layout "already achieves minimum wirelength".
// The substitution is documented in DESIGN.md. Ascend910ColumnLayout returns
// the photographed single-column layout for comparison.
func Ascend910Original() chiplet.Placement {
	p := chiplet.NewPlacement(8)
	p.Centers[0] = geom.Point{X: 22.5, Y: 22.5} // Virtuvian (26 x 17.5), centered
	p.Centers[1] = geom.Point{X: 38, Y: 38.5}   // Nimbus, NE corner
	// One HBM per Virtuvian edge, 0.1 mm die gap, centered on the edge.
	p.Centers[2] = geom.Point{X: 5.4, Y: 22.5} // west (rotated: 8 x 11)
	p.Rotated[2] = true
	p.Centers[3] = geom.Point{X: 39.6, Y: 22.5} // east (rotated)
	p.Rotated[3] = true
	p.Centers[4] = geom.Point{X: 22.5, Y: 35.35} // north
	p.Centers[5] = geom.Point{X: 22.5, Y: 9.65}  // south
	// Dummy dies (11 x 4) in the west corners.
	p.Centers[6] = geom.Point{X: 6, Y: 3}
	p.Centers[7] = geom.Point{X: 6, Y: 42}
	return p
}

// Ascend910ColumnLayout returns the single-HBM-column layout visible in the
// commercial package photographs (all HBM stacks west of the compute die,
// Nimbus above it). Under the 4-clump routing model it carries longer wires
// than Ascend910Original; it is kept for comparison and tests.
func Ascend910ColumnLayout() chiplet.Placement {
	p := chiplet.NewPlacement(8)
	p.Centers[0] = geom.Point{X: 31, Y: 22}    // Virtuvian (26 x 17.5)
	p.Centers[1] = geom.Point{X: 31, Y: 36.95} // Nimbus above Virtuvian
	// HBM column flush against Virtuvian's west edge (0.2 mm die gap).
	p.Centers[2] = geom.Point{X: 12.3, Y: 8.5}
	p.Centers[3] = geom.Point{X: 12.3, Y: 17.5}
	p.Centers[4] = geom.Point{X: 12.3, Y: 26.5}
	p.Centers[5] = geom.Point{X: 12.3, Y: 35.5}
	// Dummy dies (11 x 4) filling the remaining corners.
	p.Centers[6] = geom.Point{X: 39, Y: 2.5}
	p.Centers[7] = geom.Point{X: 5.6, Y: 42.5}
	return p
}

// All returns the case-study systems keyed by name.
func All() map[string]*chiplet.System {
	return map[string]*chiplet.System{
		"multigpu":  MultiGPU(),
		"cpudram":   CPUDRAM(),
		"ascend910": Ascend910(),
	}
}

// Names returns the sorted case-study names.
func Names() []string {
	m := All()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName looks up a case-study system.
func ByName(name string) (*chiplet.System, error) {
	s, ok := All()[name]
	if !ok {
		return nil, fmt.Errorf("systems: unknown system %q (have %v)", name, Names())
	}
	return s, nil
}
