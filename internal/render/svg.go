package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tap25d/internal/chiplet"
	"tap25d/internal/thermal"
)

// WriteSVG renders a placement as a scalable vector figure: the interposer
// outline, each chiplet as a labeled rectangle shaded by its power density,
// and (optionally, when res is non-nil) an underlaid thermal heat map. The
// output is self-contained SVG 1.1 suitable for papers and READMEs.
func WriteSVG(w io.Writer, sys *chiplet.System, p chiplet.Placement, res *thermal.Result, pxPerMM float64) error {
	if pxPerMM <= 0 {
		pxPerMM = 10
	}
	W := sys.InterposerW * pxPerMM
	H := sys.InterposerH * pxPerMM
	// y flips: SVG y grows downward, interposer y grows upward.
	fy := func(yMM, hMM float64) float64 { return H - (yMM+hMM)*pxPerMM }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", W, H, W, H)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#f4f4f0" stroke="#333" stroke-width="2"/>`+"\n", W, H)

	// Thermal underlay.
	if res != nil {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, t := range res.ChipTempC {
			lo = math.Min(lo, t)
			hi = math.Max(hi, t)
		}
		span := hi - lo
		if span <= 0 {
			span = 1
		}
		cw := W / float64(res.Grid)
		ch := H / float64(res.Grid)
		for i := 0; i < res.Grid; i++ {
			for j := 0; j < res.Grid; j++ {
				t := res.ChipTempC[i*res.Grid+j]
				r, g, bl := heatColor((t - lo) / span)
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" fill-opacity="0.55"/>`+"\n",
					float64(j)*cw, H-float64(i+1)*ch, cw+0.5, ch+0.5, r, g, bl)
			}
		}
	}

	// Chiplets, shaded by power density.
	maxPD := 0.0
	for _, c := range sys.Chiplets {
		maxPD = math.Max(maxPD, c.PowerDensity())
	}
	if maxPD == 0 {
		maxPD = 1
	}
	for i := range sys.Chiplets {
		r := p.Rect(sys, i)
		c := sys.Chiplets[i]
		shade := int(230 - 130*c.PowerDensity()/maxPD)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" fill-opacity="0.85" stroke="#111" stroke-width="1.5"/>`+"\n",
			r.MinX()*pxPerMM, fy(r.MinY(), r.H), r.W*pxPerMM, r.H*pxPerMM, shade, shade, 240)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="%.0f" text-anchor="middle" fill="#111">%s</text>`+"\n",
			r.Center.X*pxPerMM, fy(r.Center.Y, 0)+pxPerMM*0.35, math.Max(8, pxPerMM*1.2), escapeXML(c.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
