package render

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVGPlacementOnly(t *testing.T) {
	_, sys, p := renderFixture(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, sys, p, nil, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	for _, want := range []string{">GPU</text>", ">MEM</text>", `viewBox="0 0 400 400"`} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One outline + two chiplet rects at least.
	if strings.Count(out, "<rect") < 3 {
		t.Errorf("too few rects: %d", strings.Count(out, "<rect"))
	}
}

func TestWriteSVGWithThermalUnderlay(t *testing.T) {
	res, sys, p := renderFixture(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, sys, p, res, 0); err != nil { // default scale
		t.Fatal(err)
	}
	out := buf.String()
	// The 16x16 thermal grid contributes 256 underlay cells.
	if strings.Count(out, "fill-opacity=\"0.55\"") != 256 {
		t.Errorf("underlay cells = %d, want 256", strings.Count(out, "fill-opacity=\"0.55\""))
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`A<B>&"C"`); got != "A&lt;B&gt;&amp;&quot;C&quot;" {
		t.Errorf("escapeXML = %q", got)
	}
}
