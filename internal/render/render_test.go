package render

import (
	"bytes"
	"strings"
	"testing"

	"tap25d/internal/chiplet"
	"tap25d/internal/geom"
	"tap25d/internal/thermal"
)

func renderFixture(t *testing.T) (*thermal.Result, *chiplet.System, chiplet.Placement) {
	t.Helper()
	sys := &chiplet.System{
		Name:        "r",
		InterposerW: 40,
		InterposerH: 40,
		Chiplets: []chiplet.Chiplet{
			{Name: "GPU", W: 12, H: 12, Power: 150},
			{Name: "MEM", W: 6, H: 6, Power: 5},
		},
	}
	p := chiplet.NewPlacement(2)
	p.Centers[0] = geom.Point{X: 12, Y: 12}
	p.Centers[1] = geom.Point{X: 30, Y: 30}
	m, err := thermal.NewModel(40, 40, thermal.Options{Grid: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve([]thermal.Source{
		{Rect: p.Rect(sys, 0), Power: 150},
		{Rect: p.Rect(sys, 1), Power: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, sys, p
}

func TestThermalASCII(t *testing.T) {
	res, sys, p := renderFixture(t)
	out := ThermalASCII(res, sys, p, 60)
	if !strings.Contains(out, "peak") {
		t.Error("missing peak header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	// Map rows all equal width.
	for _, l := range lines[1:] {
		if len(l) != 60 {
			t.Fatalf("row width %d, want 60", len(l))
		}
	}
	// Both chiplet index digits appear.
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Error("chiplet markers missing")
	}
	// Hot characters appear somewhere (the GPU corner).
	if !strings.ContainsAny(out, "%@#") {
		t.Error("no hot cells rendered")
	}
}

func TestThermalASCIIDefaultWidth(t *testing.T) {
	res, sys, p := renderFixture(t)
	if out := ThermalASCII(res, sys, p, 0); len(out) == 0 {
		t.Error("empty render with default width")
	}
}

func TestPlacementASCII(t *testing.T) {
	_, sys, p := renderFixture(t)
	out := PlacementASCII(sys, p, 40)
	if !strings.Contains(out, "G") || !strings.Contains(out, "M") {
		t.Errorf("chiplet letters missing:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Error("chiplet borders missing")
	}
	if !strings.Contains(out, ".") {
		t.Error("empty interposer missing")
	}
	// GPU (chiplet 0, lower-left) should appear on a LOWER line than MEM
	// (upper-right) — i.e. later in the string since we print top-down.
	gIdx := strings.Index(out, "0")
	mIdx := strings.Index(out, "1")
	if gIdx < mIdx {
		t.Error("orientation wrong: chiplet 0 (bottom) rendered above chiplet 1 (top)")
	}
}

func TestWritePPM(t *testing.T) {
	res, _, _ := renderFixture(t)
	var buf bytes.Buffer
	if err := WritePPM(&buf, res, 2); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P6\n32 32\n255\n")) {
		t.Fatalf("bad PPM header: %q", b[:20])
	}
	wantLen := len("P6\n32 32\n255\n") + 32*32*3
	if len(b) != wantLen {
		t.Errorf("PPM length %d, want %d", len(b), wantLen)
	}
	// Default scale.
	buf.Reset()
	if err := WritePPM(&buf, res, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHeatColorEndpoints(t *testing.T) {
	r, _, b := heatColor(0)
	if r != 0 || b == 0 {
		t.Errorf("cold end should be blue: %d %d", r, b)
	}
	r, g, b := heatColor(1)
	if r != 255 || g != 0 || b != 0 {
		t.Errorf("hot end should be red: %d %d %d", r, g, b)
	}
	// Out-of-range clamps.
	heatColor(-1)
	heatColor(2)
}

func TestLegend(t *testing.T) {
	l := Legend(45, 95)
	if !strings.Contains(l, "=45C") || !strings.Contains(l, "=95C") {
		t.Errorf("legend endpoints missing: %s", l)
	}
}
