// Package render draws placements and thermal maps — the repo's equivalent
// of the paper's Figs. 4-6 — as ASCII art for terminals and as binary PPM
// images for reports. Rendering is pure stdlib and deterministic.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tap25d/internal/chiplet"
	"tap25d/internal/thermal"
)

// ramp is the ASCII intensity ramp from coolest to hottest.
const ramp = " .:-=+*#%@"

// ThermalASCII renders the chiplet-layer temperature map with chiplet
// outlines overlaid. cols sets the output width in characters (rows follow
// the aspect ratio; terminal cells are ~2x taller than wide).
func ThermalASCII(res *thermal.Result, sys *chiplet.System, p chiplet.Placement, cols int) string {
	if cols <= 0 {
		cols = 64
	}
	rows := cols * int(res.HeightMM) / int(res.WidthMM) / 2
	if rows < 1 {
		rows = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range res.ChipTempC {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "peak %.2f C at (%.1f, %.1f) mm; range [%.2f, %.2f] C\n",
		res.PeakC, res.PeakAt.X, res.PeakAt.Y, lo, hi)
	// Outline-only overlay so the temperatures inside each die stay visible.
	labels := chipletLabelGrid(sys, p, res.WidthMM, res.HeightMM, cols, rows, false)
	// Top row of the map is max Y.
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			if l := labels[r*cols+c]; l != 0 {
				b.WriteByte(l)
				continue
			}
			x := (float64(c) + 0.5) * res.WidthMM / float64(cols)
			y := (float64(r) + 0.5) * res.HeightMM / float64(rows)
			t := res.TempAt(pointXY(x, y))
			idx := int((t - lo) / span * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PlacementASCII renders the floorplan only: chiplet outlines with initial
// letters, empty interposer as dots.
func PlacementASCII(sys *chiplet.System, p chiplet.Placement, cols int) string {
	if cols <= 0 {
		cols = 64
	}
	rows := cols * int(sys.InterposerH) / int(sys.InterposerW) / 2
	if rows < 1 {
		rows = 1
	}
	labels := chipletLabelGrid(sys, p, sys.InterposerW, sys.InterposerH, cols, rows, true)
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			if l := labels[r*cols+c]; l != 0 {
				b.WriteByte(l)
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// chipletLabelGrid marks character cells covered by chiplets: border cells
// get '+', the center cell the chiplet's index digit (up to 10 chiplets),
// and — when fill is true — interior cells the first letter of the name.
func chipletLabelGrid(sys *chiplet.System, p chiplet.Placement, wMM, hMM float64, cols, rows int, fill bool) []byte {
	g := make([]byte, cols*rows)
	for i := range sys.Chiplets {
		r := p.Rect(sys, i)
		c0 := int(r.MinX() / wMM * float64(cols))
		c1 := int(math.Ceil(r.MaxX() / wMM * float64(cols)))
		r0 := int(r.MinY() / hMM * float64(rows))
		r1 := int(math.Ceil(r.MaxY() / hMM * float64(rows)))
		c0, c1 = clamp(c0, 0, cols), clamp(c1, 0, cols)
		r0, r1 = clamp(r0, 0, rows), clamp(r1, 0, rows)
		letter := byte('?')
		if len(sys.Chiplets[i].Name) > 0 {
			letter = sys.Chiplets[i].Name[0]
		}
		for rr := r0; rr < r1; rr++ {
			for cc := c0; cc < c1; cc++ {
				switch {
				case rr == r0 || rr == r1-1 || cc == c0 || cc == c1-1:
					g[rr*cols+cc] = '+'
				case fill:
					g[rr*cols+cc] = letter
				}
			}
		}
		// Index digit at the center.
		cc := clamp((c0+c1)/2, 0, cols-1)
		rr := clamp((r0+r1)/2, 0, rows-1)
		if i < 10 {
			g[rr*cols+cc] = byte('0' + i)
		}
	}
	return g
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func pointXY(x, y float64) (p struct{ X, Y float64 }) {
	p.X, p.Y = x, y
	return
}

// WritePPM writes the thermal map as a binary PPM (P6) image with a
// blue-to-red heat ramp, scale pixels per grid cell.
func WritePPM(w io.Writer, res *thermal.Result, scale int) error {
	if scale <= 0 {
		scale = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range res.ChipTempC {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	wPix := res.Grid * scale
	hPix := res.Grid * scale
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", wPix, hPix); err != nil {
		return err
	}
	row := make([]byte, wPix*3)
	for py := 0; py < hPix; py++ {
		// Image rows run top-down; grid rows bottom-up.
		gy := res.Grid - 1 - py/scale
		for px := 0; px < wPix; px++ {
			gx := px / scale
			t := res.ChipTempC[gy*res.Grid+gx]
			r, g, b := heatColor((t - lo) / span)
			row[px*3], row[px*3+1], row[px*3+2] = r, g, b
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// heatColor maps v in [0,1] to a blue-cyan-yellow-red ramp.
func heatColor(v float64) (r, g, b byte) {
	v = math.Max(0, math.Min(1, v))
	switch {
	case v < 1.0/3:
		f := v * 3
		return 0, byte(255 * f), byte(255 * (1 - f/2))
	case v < 2.0/3:
		f := (v - 1.0/3) * 3
		return byte(255 * f), 255, byte(128 * (1 - f))
	default:
		f := (v - 2.0/3) * 3
		return 255, byte(255 * (1 - f)), 0
	}
}

// Legend returns a one-line mapping of the ASCII ramp characters to
// temperatures for a given range.
func Legend(loC, hiC float64) string {
	var b strings.Builder
	for i, ch := range ramp {
		t := loC + (hiC-loC)*float64(i)/float64(len(ramp)-1)
		fmt.Fprintf(&b, "%c=%.0fC ", ch, t)
	}
	return strings.TrimSpace(b.String())
}
