package chiplet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tap25d/internal/geom"
)

// twoChipSystem is a minimal valid system used across tests.
func twoChipSystem() *System {
	return &System{
		Name:        "two",
		InterposerW: 45,
		InterposerH: 45,
		Chiplets: []Chiplet{
			{Name: "A", W: 10, H: 10, Power: 100},
			{Name: "B", W: 8, H: 4, Power: 10},
		},
		Channels: []Channel{{Src: 0, Dst: 1, Wires: 256}},
	}
}

func TestChipletDerived(t *testing.T) {
	c := Chiplet{W: 10, H: 5, Power: 25}
	if c.Area() != 50 {
		t.Errorf("Area = %v", c.Area())
	}
	if c.PowerDensity() != 0.5 {
		t.Errorf("PowerDensity = %v", c.PowerDensity())
	}
	if (Chiplet{}).PowerDensity() != 0 {
		t.Error("zero chiplet should have zero power density")
	}
}

func TestSystemAggregates(t *testing.T) {
	s := twoChipSystem()
	if s.TotalPower() != 110 {
		t.Errorf("TotalPower = %v", s.TotalPower())
	}
	if s.TotalWires() != 256 {
		t.Errorf("TotalWires = %v", s.TotalWires())
	}
	if s.Gap() != DefaultMinGap {
		t.Errorf("Gap = %v", s.Gap())
	}
	s.MinGap = 0.5
	if s.Gap() != 0.5 {
		t.Errorf("Gap override = %v", s.Gap())
	}
	ip := s.Interposer()
	if ip.W != 45 || ip.H != 45 || ip.MinX() != 0 || ip.MinY() != 0 {
		t.Errorf("Interposer = %v", ip)
	}
}

func TestValidateAcceptsGoodSystem(t *testing.T) {
	if err := twoChipSystem().Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*System)
	}{
		{"zero interposer", func(s *System) { s.InterposerW = 0 }},
		{"oversize interposer", func(s *System) { s.InterposerW = 51 }},
		{"no chiplets", func(s *System) { s.Chiplets = nil }},
		{"zero-width chiplet", func(s *System) { s.Chiplets[0].W = 0 }},
		{"negative power", func(s *System) { s.Chiplets[0].Power = -1 }},
		{"chiplet too big", func(s *System) { s.Chiplets[0].W, s.Chiplets[0].H = 46, 46; s.InterposerW, s.InterposerH = 45, 45 }},
		{"area overflow", func(s *System) {
			s.Chiplets = []Chiplet{{Name: "X", W: 45, H: 45}, {Name: "Y", W: 10, H: 10}}
		}},
		{"bad channel src", func(s *System) { s.Channels[0].Src = 9 }},
		{"self loop", func(s *System) { s.Channels[0].Dst = 0 }},
		{"zero wires", func(s *System) { s.Channels[0].Wires = 0 }},
	}
	for _, c := range cases {
		s := twoChipSystem()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestScaled(t *testing.T) {
	s := twoChipSystem()
	s2 := s.Scaled(2)
	if s2.TotalPower() != 220 {
		t.Errorf("Scaled total = %v", s2.TotalPower())
	}
	if s.TotalPower() != 110 {
		t.Error("Scaled must not mutate the original")
	}
}

func TestScaledSubset(t *testing.T) {
	s := twoChipSystem()
	s2 := s.ScaledSubset(3, []int{0})
	if s2.Chiplets[0].Power != 300 || s2.Chiplets[1].Power != 10 {
		t.Errorf("ScaledSubset = %v, %v", s2.Chiplets[0].Power, s2.Chiplets[1].Power)
	}
	if s.Chiplets[0].Power != 100 {
		t.Error("ScaledSubset must not mutate the original")
	}
}

func TestPlacementRect(t *testing.T) {
	s := twoChipSystem()
	p := NewPlacement(2)
	p.Centers[0] = geom.Point{X: 10, Y: 10}
	p.Centers[1] = geom.Point{X: 30, Y: 30}
	r := p.Rect(s, 1)
	if r.W != 8 || r.H != 4 {
		t.Errorf("Rect = %v", r)
	}
	p.Rotated[1] = true
	r = p.Rect(s, 1)
	if r.W != 4 || r.H != 8 {
		t.Errorf("rotated Rect = %v", r)
	}
	if n := len(p.Rects(s)); n != 2 {
		t.Errorf("Rects len = %d", n)
	}
}

func TestPlacementClone(t *testing.T) {
	p := NewPlacement(2)
	p.Centers[0] = geom.Point{X: 1, Y: 2}
	q := p.Clone()
	q.Centers[0] = geom.Point{X: 9, Y: 9}
	q.Rotated[1] = true
	if p.Centers[0].X != 1 || p.Rotated[1] {
		t.Error("Clone should be independent")
	}
}

func TestCheckPlacement(t *testing.T) {
	s := twoChipSystem()
	p := NewPlacement(2)
	p.Centers[0] = geom.Point{X: 10, Y: 10}
	p.Centers[1] = geom.Point{X: 30, Y: 30}
	if err := s.CheckPlacement(p); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}

	// Off the interposer (Eqn. 11).
	p2 := p.Clone()
	p2.Centers[0] = geom.Point{X: 2, Y: 10} // left edge at -3
	err := s.CheckPlacement(p2)
	if err == nil {
		t.Fatal("off-interposer placement accepted")
	}
	var ve *ValidationError
	if !errorsAs(err, &ve) || ve.Other != -1 {
		t.Errorf("unexpected error: %v", err)
	}

	// Overlapping (Eqn. 10).
	p3 := p.Clone()
	p3.Centers[1] = geom.Point{X: 12, Y: 12}
	if err := s.CheckPlacement(p3); err == nil {
		t.Fatal("overlapping placement accepted")
	}

	// Gap violated but not overlapping: gap of 0.05 < 0.1.
	p4 := p.Clone()
	p4.Centers[1] = geom.Point{X: 10 + 5 + 4 + 0.05, Y: 10}
	if err := s.CheckPlacement(p4); err == nil {
		t.Fatal("sub-gap placement accepted")
	}
	// Exactly the gap: OK.
	p5 := p.Clone()
	p5.Centers[1] = geom.Point{X: 10 + 5 + 4 + 0.1, Y: 10}
	if err := s.CheckPlacement(p5); err != nil {
		t.Fatalf("exact-gap placement rejected: %v", err)
	}

	// Size mismatch.
	if err := s.CheckPlacement(NewPlacement(1)); err == nil {
		t.Fatal("size-mismatched placement accepted")
	}
}

func errorsAs(err error, target **ValidationError) bool {
	ve, ok := err.(*ValidationError)
	if ok {
		*target = ve
	}
	return ok
}

func TestValidationErrorMessages(t *testing.T) {
	e := &ValidationError{Chiplet: 2, Other: -1, Reason: "flies off"}
	if !strings.Contains(e.Error(), "chiplet 2") {
		t.Errorf("Error() = %q", e.Error())
	}
	e2 := &ValidationError{Chiplet: 1, Other: 3, Reason: "collide"}
	if !strings.Contains(e2.Error(), "1 and 3") {
		t.Errorf("Error() = %q", e2.Error())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := twoChipSystem()
	var buf bytes.Buffer
	if err := s.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Chiplets) != 2 || len(got.Channels) != 1 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if math.Abs(got.Chiplets[0].Power-100) > 1e-12 {
		t.Errorf("power lost in round trip")
	}
}

func TestDecodeJSONRejectsInvalid(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader(`{"name":"bad"}`)); err == nil {
		t.Error("invalid system decoded without error")
	}
	if _, err := DecodeJSON(strings.NewReader(`{not json`)); err == nil {
		t.Error("malformed JSON decoded without error")
	}
}
