// Package chiplet defines the input description of a heterogeneous 2.5D
// system: the chiplets (dimensions and power), the logical inter-chiplet
// network (channels with required wire counts, the R_ij of Table I), the
// interposer, and chiplet placements with the paper's validity rules
// (Eqns. 10 and 11).
package chiplet

import (
	"encoding/json"
	"fmt"
	"io"

	"tap25d/internal/geom"
)

// DefaultMinGap is w_gap, the minimum spacing between two chiplets (0.1 mm,
// per the assembly rules the paper cites).
const DefaultMinGap = 0.1

// MaxInterposerEdge is the manufacturing limit on interposer edge length
// (w_int <= 50 mm, Table I).
const MaxInterposerEdge = 50.0

// Chiplet is a die placed on the interposer.
type Chiplet struct {
	// Name identifies the chiplet in reports ("GPU0", "HBM2", ...).
	Name string `json:"name"`
	// W and H are the die width and height in mm.
	W float64 `json:"w"`
	H float64 `json:"h"`
	// Power is the die's power dissipation in watts, injected uniformly over
	// its footprint.
	Power float64 `json:"power"`
}

// Area returns the die footprint in mm².
func (c Chiplet) Area() float64 { return c.W * c.H }

// PowerDensity returns W/mm².
func (c Chiplet) PowerDensity() float64 {
	if c.Area() == 0 {
		return 0
	}
	return c.Power / c.Area()
}

// Channel is a logical inter-chiplet link: the paper's net n with source s_n,
// sink t_n and wire-count requirement R_{s_n t_n}.
type Channel struct {
	// Src and Dst index into System.Chiplets.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Wires is the number of wires that must be routed between the two
	// chiplets (bandwidth requirement).
	Wires int `json:"wires"`
}

// System describes a heterogeneous 2.5D system to be placed and routed.
type System struct {
	Name string `json:"name"`
	// InterposerW and InterposerH are the interposer dimensions in mm.
	// The paper uses square 45 mm interposers (50 mm in the size sweep).
	InterposerW float64 `json:"interposer_w"`
	InterposerH float64 `json:"interposer_h"`
	// MinGap is the minimum chiplet-to-chiplet spacing in mm; zero means
	// DefaultMinGap.
	MinGap   float64   `json:"min_gap,omitempty"`
	Chiplets []Chiplet `json:"chiplets"`
	Channels []Channel `json:"channels"`
	// PinsPerClumpLimit is P_il^max, the microbump capacity per pin clump.
	// Zero means "derived": enough capacity for all wires that could
	// terminate at the chiplet, spread over its clumps.
	PinsPerClumpLimit int `json:"pins_per_clump_limit,omitempty"`
}

// Gap returns the effective minimum chiplet spacing.
func (s *System) Gap() float64 {
	if s.MinGap > 0 {
		return s.MinGap
	}
	return DefaultMinGap
}

// Interposer returns the interposer outline with lower-left corner at (0, 0).
func (s *System) Interposer() geom.Rect {
	return geom.RectFromBounds(0, 0, s.InterposerW, s.InterposerH)
}

// TotalPower sums all chiplet powers (W).
func (s *System) TotalPower() float64 {
	var p float64
	for _, c := range s.Chiplets {
		p += c.Power
	}
	return p
}

// TotalWires sums the wire requirements over all channels.
func (s *System) TotalWires() int {
	var w int
	for _, ch := range s.Channels {
		w += ch.Wires
	}
	return w
}

// Validate checks the static description (not a placement).
func (s *System) Validate() error {
	if s.InterposerW <= 0 || s.InterposerH <= 0 {
		return fmt.Errorf("chiplet: system %q: non-positive interposer dimensions", s.Name)
	}
	if s.InterposerW > MaxInterposerEdge+1e-9 || s.InterposerH > MaxInterposerEdge+1e-9 {
		return fmt.Errorf("chiplet: system %q: interposer edge exceeds %g mm manufacturing limit", s.Name, MaxInterposerEdge)
	}
	if len(s.Chiplets) == 0 {
		return fmt.Errorf("chiplet: system %q: no chiplets", s.Name)
	}
	var area float64
	for i, c := range s.Chiplets {
		if c.W <= 0 || c.H <= 0 {
			return fmt.Errorf("chiplet: system %q: chiplet %d (%s) has non-positive dimensions", s.Name, i, c.Name)
		}
		if c.Power < 0 {
			return fmt.Errorf("chiplet: system %q: chiplet %d (%s) has negative power", s.Name, i, c.Name)
		}
		if c.W > s.InterposerW && c.H > s.InterposerW || c.W > s.InterposerH && c.H > s.InterposerH {
			return fmt.Errorf("chiplet: system %q: chiplet %d (%s) larger than interposer in both orientations", s.Name, i, c.Name)
		}
		area += c.Area()
	}
	if area > s.InterposerW*s.InterposerH {
		return fmt.Errorf("chiplet: system %q: total chiplet area %.1f mm² exceeds interposer area %.1f mm²",
			s.Name, area, s.InterposerW*s.InterposerH)
	}
	for i, ch := range s.Channels {
		if ch.Src < 0 || ch.Src >= len(s.Chiplets) || ch.Dst < 0 || ch.Dst >= len(s.Chiplets) {
			return fmt.Errorf("chiplet: system %q: channel %d references unknown chiplet", s.Name, i)
		}
		if ch.Src == ch.Dst {
			return fmt.Errorf("chiplet: system %q: channel %d is a self-loop", s.Name, i)
		}
		if ch.Wires <= 0 {
			return fmt.Errorf("chiplet: system %q: channel %d has non-positive wire count", s.Name, i)
		}
	}
	return nil
}

// Scaled returns a copy of the system with every chiplet's power multiplied by
// factor. Used by the TDP envelope search.
func (s *System) Scaled(factor float64) *System {
	out := *s
	out.Chiplets = make([]Chiplet, len(s.Chiplets))
	copy(out.Chiplets, s.Chiplets)
	for i := range out.Chiplets {
		out.Chiplets[i].Power *= factor
	}
	return &out
}

// ScaledSubset multiplies the power of the chiplets whose indices appear in
// idx by factor, leaving the rest untouched. The paper's TDP analysis for the
// CPU-DRAM system varies only the CPUs' power.
func (s *System) ScaledSubset(factor float64, idx []int) *System {
	out := *s
	out.Chiplets = make([]Chiplet, len(s.Chiplets))
	copy(out.Chiplets, s.Chiplets)
	for _, i := range idx {
		out.Chiplets[i].Power *= factor
	}
	return &out
}

// Placement assigns each chiplet a center location and orientation.
// Centers[i] is (X_i, Y_i); Rotated[i] swaps the chiplet's width and height
// (the paper's 90-degree rotate operation).
type Placement struct {
	Centers []geom.Point `json:"centers"`
	Rotated []bool       `json:"rotated"`
}

// NewPlacement returns a zero-initialized placement for n chiplets.
func NewPlacement(n int) Placement {
	return Placement{Centers: make([]geom.Point, n), Rotated: make([]bool, n)}
}

// Clone returns a deep copy.
func (p Placement) Clone() Placement {
	q := NewPlacement(len(p.Centers))
	copy(q.Centers, p.Centers)
	copy(q.Rotated, p.Rotated)
	return q
}

// Rect returns chiplet i's outline under placement p.
func (p Placement) Rect(s *System, i int) geom.Rect {
	c := s.Chiplets[i]
	w, h := c.W, c.H
	if p.Rotated[i] {
		w, h = h, w
	}
	return geom.Rect{Center: p.Centers[i], W: w, H: h}
}

// Rects returns all chiplet outlines.
func (p Placement) Rects(s *System) []geom.Rect {
	rs := make([]geom.Rect, len(s.Chiplets))
	for i := range rs {
		rs[i] = p.Rect(s, i)
	}
	return rs
}

// ValidationError explains why a placement is invalid.
type ValidationError struct {
	Chiplet int
	Other   int // -1 when the violation is against the interposer boundary
	Reason  string
}

func (e *ValidationError) Error() string {
	if e.Other < 0 {
		return fmt.Sprintf("chiplet: placement: chiplet %d %s", e.Chiplet, e.Reason)
	}
	return fmt.Sprintf("chiplet: placement: chiplets %d and %d %s", e.Chiplet, e.Other, e.Reason)
}

// CheckPlacement verifies the paper's validity conditions: every chiplet fully
// on the interposer (Eqn. 11) and pairwise gaps of at least w_gap (Eqn. 10).
// It returns nil for a valid placement.
func (s *System) CheckPlacement(p Placement) error {
	if len(p.Centers) != len(s.Chiplets) || len(p.Rotated) != len(s.Chiplets) {
		return fmt.Errorf("chiplet: placement size %d does not match system with %d chiplets",
			len(p.Centers), len(s.Chiplets))
	}
	ip := s.Interposer()
	rects := p.Rects(s)
	for i, r := range rects {
		if !ip.ContainsRect(r) {
			return &ValidationError{Chiplet: i, Other: -1, Reason: "extends beyond interposer (Eqn. 11)"}
		}
	}
	gap := s.Gap()
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if !rects[i].SeparatedBy(rects[j], gap) {
				return &ValidationError{Chiplet: i, Other: j,
					Reason: fmt.Sprintf("violate %g mm minimum gap (Eqn. 10)", gap)}
			}
		}
	}
	return nil
}

// EncodeJSON writes the system as indented JSON.
func (s *System) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeJSON reads a system from JSON and validates it.
func DecodeJSON(r io.Reader) (*System, error) {
	var s System
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("chiplet: decoding system: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
