package chiplet

import (
	"math"
	"testing"

	"tap25d/internal/geom"
)

func simSystem() *System {
	return &System{
		Name:        "sim",
		InterposerW: 40,
		InterposerH: 40,
		Chiplets: []Chiplet{
			{Name: "BIG", W: 12, H: 8, Power: 100},
			{Name: "M0", W: 6, H: 6, Power: 10},
			{Name: "M1", W: 6, H: 6, Power: 10},
		},
	}
}

func TestSimilarityIdentity(t *testing.T) {
	s := simSystem()
	p := NewPlacement(3)
	p.Centers[0] = geom.Point{X: 20, Y: 12}
	p.Centers[1] = geom.Point{X: 8, Y: 30}
	p.Centers[2] = geom.Point{X: 32, Y: 30}
	if d := s.Similarity(p, p); d != 0 {
		t.Errorf("self similarity = %v, want 0", d)
	}
}

func TestSimilarityMirrorInvariant(t *testing.T) {
	s := simSystem()
	p := NewPlacement(3)
	p.Centers[0] = geom.Point{X: 14, Y: 12}
	p.Centers[1] = geom.Point{X: 8, Y: 30}
	p.Centers[2] = geom.Point{X: 30, Y: 25}
	// Mirror about the vertical axis (x -> 40 - x).
	q := p.Clone()
	for i := range q.Centers {
		q.Centers[i].X = 40 - q.Centers[i].X
	}
	if d := s.Similarity(p, q); d > 1e-9 {
		t.Errorf("mirrored placement similarity = %v, want 0", d)
	}
}

func TestSimilarityRotationInvariant(t *testing.T) {
	s := simSystem()
	p := NewPlacement(3)
	p.Centers[0] = geom.Point{X: 14, Y: 12}
	p.Centers[1] = geom.Point{X: 8, Y: 30}
	p.Centers[2] = geom.Point{X: 30, Y: 25}
	// Rotate 180 degrees about the interposer center.
	q := p.Clone()
	for i := range q.Centers {
		q.Centers[i].X = 40 - q.Centers[i].X
		q.Centers[i].Y = 40 - q.Centers[i].Y
	}
	if d := s.Similarity(p, q); d > 1e-9 {
		t.Errorf("rotated placement similarity = %v, want 0", d)
	}
}

func TestSimilarityInterchangeableChiplets(t *testing.T) {
	// Swapping the positions of two identical chiplets is a zero-distance
	// difference.
	s := simSystem()
	p := NewPlacement(3)
	p.Centers[0] = geom.Point{X: 20, Y: 12}
	p.Centers[1] = geom.Point{X: 8, Y: 30}
	p.Centers[2] = geom.Point{X: 32, Y: 30}
	q := p.Clone()
	q.Centers[1], q.Centers[2] = q.Centers[2], q.Centers[1]
	if d := s.Similarity(p, q); d > 1e-9 {
		t.Errorf("swap of identical chiplets similarity = %v, want 0", d)
	}
}

func TestSimilarityDetectsDifference(t *testing.T) {
	s := simSystem()
	p := NewPlacement(3)
	p.Centers[0] = geom.Point{X: 20, Y: 12}
	p.Centers[1] = geom.Point{X: 8, Y: 30}
	p.Centers[2] = geom.Point{X: 32, Y: 30}
	q := p.Clone()
	q.Centers[0] = geom.Point{X: 20, Y: 28} // move BIG 16 mm
	d := s.Similarity(p, q)
	if d <= 0 {
		t.Fatalf("different placements similarity = %v, want > 0", d)
	}
	// One chiplet moved; mean over three chiplets is bounded by 16/3 + any
	// symmetry gain.
	if d > 16.0/3+1e-9 {
		t.Errorf("similarity %v exceeds worst-case bound", d)
	}
}

func TestSimilarityNonSquareSkips90(t *testing.T) {
	s := simSystem()
	s.InterposerH = 30 // non-square: only 0/180 rotations valid
	p := NewPlacement(3)
	p.Centers[0] = geom.Point{X: 20, Y: 12}
	p.Centers[1] = geom.Point{X: 8, Y: 22}
	p.Centers[2] = geom.Point{X: 32, Y: 22}
	if d := s.Similarity(p, p); d != 0 {
		t.Errorf("self similarity on non-square = %v", d)
	}
	if math.IsNaN(s.Similarity(p, p)) {
		t.Error("NaN similarity")
	}
}
