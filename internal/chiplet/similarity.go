package chiplet

import "math"

// Similarity quantifies how close two placements of the same system are:
// the mean per-chiplet center distance (mm), minimized over the eight
// symmetries of a square interposer (4 rotations × mirror), since a placement
// and its mirror image are thermally and electrically equivalent. Chiplets
// with identical dimensions and power are interchangeable, so within each
// such equivalence class the assignment that minimizes total distance is
// used (exact for the class sizes that occur here, via permutation search
// over classes of up to 8).
//
// A small value means "the same floorplan up to symmetry" — the measure
// behind the paper's Section IV-C observation that TAP-2.5D lands near the
// commercial Ascend 910 layout.
func (s *System) Similarity(a, b Placement) float64 {
	best := math.Inf(1)
	cx, cy := s.InterposerW/2, s.InterposerH/2
	for mirror := 0; mirror < 2; mirror++ {
		for rot := 0; rot < 4; rot++ {
			// Transform b's centers under the symmetry. Rotations of a
			// non-square interposer are only valid for 0 and 180 degrees;
			// skip 90/270 when W != H.
			if s.InterposerW != s.InterposerH && rot%2 == 1 {
				continue
			}
			tb := make([]struct{ x, y float64 }, len(b.Centers))
			for i, c := range b.Centers {
				x, y := c.X-cx, c.Y-cy
				if mirror == 1 {
					x = -x
				}
				for r := 0; r < rot; r++ {
					x, y = -y, x
				}
				tb[i].x, tb[i].y = x+cx, y+cy
			}
			if d := s.assignmentDistance(a, tb); d < best {
				best = d
			}
		}
	}
	return best
}

// assignmentDistance computes the mean matched distance between a's centers
// and the transformed centers tb, allowing permutations within classes of
// identical chiplets.
func (s *System) assignmentDistance(a Placement, tb []struct{ x, y float64 }) float64 {
	// Group chiplet indices by (W, H, Power) equivalence class.
	type key struct{ w, h, p float64 }
	classes := map[key][]int{}
	for i, c := range s.Chiplets {
		k := key{c.W, c.H, c.Power}
		classes[k] = append(classes[k], i)
	}
	total := 0.0
	for _, idx := range classes {
		total += matchClass(a, tb, idx)
	}
	return total / float64(len(s.Chiplets))
}

// matchClass finds the minimum-total-distance assignment between the class
// members' positions in a and tb by branch-and-bound permutation search
// (class sizes in practice are <= 8).
func matchClass(a Placement, tb []struct{ x, y float64 }, idx []int) float64 {
	n := len(idx)
	d := make([][]float64, n)
	for i := 0; i < n; i++ {
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			ai := a.Centers[idx[i]]
			d[i][j] = math.Abs(ai.X-tb[idx[j]].x) + math.Abs(ai.Y-tb[idx[j]].y)
		}
	}
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, acc+d[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}
