// Package faultinject is a deterministic fault-injection harness for testing
// the repo's failure-recovery paths on demand: the solver recovery ladder, the
// placer's step-level resilience, and the durable-checkpoint fallback are all
// exercised by arming named injection points rather than by timing tricks or
// filesystem races.
//
// The design discipline mirrors internal/obs: a nil *Injector IS the disabled
// state. Every method is safe to call on a nil receiver and returns
// immediately, so production call sites need no flags — the disabled fast path
// costs one pointer test. An armed Injector is deterministic: faults fire at
// exact visit counts (Spec.At, Spec.Every) or from a seeded PRNG
// (Spec.Probability with New's seed), never from wall-clock time, so a failing
// scenario replays bit-identically under go test -race and across machines.
//
// An enabled Injector is safe for concurrent use by parallel annealing runs.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected fault. Recovery code
// under test matches it with errors.Is to distinguish injected failures from
// organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Point names one injection site. Sites are compiled into production code
// paths; hitting an unarmed point is free beyond the nil test.
type Point string

// The named injection points wired into the codebase.
const (
	// PointCGSolve fires inside sparse CG solves, before iteration begins,
	// surfacing as a non-convergence error to exercise the recovery ladder.
	PointCGSolve Point = "cg_solve"
	// PointThermalAssemble fires in thermal conductance-matrix assembly.
	PointThermalAssemble Point = "thermal_assemble"
	// PointCheckpointWrite fires in checkpoint persistence, surfacing as a
	// transient I/O error to exercise write retry with backoff.
	PointCheckpointWrite Point = "checkpoint_write"
	// PointCheckpointRead fires in checkpoint loading, corrupting the read to
	// exercise fallback to the previous generation.
	PointCheckpointRead Point = "checkpoint_read"
	// PointJournalWrite fires in structured-event journal writes.
	PointJournalWrite Point = "journal_write"
	// PointExperimentFlow fires at the start of an experiments flow.
	PointExperimentFlow Point = "experiment_flow"
)

// Spec arms one injection point. Exactly which visits fire is determined by
// the first matching rule below, checked in order:
//
//  1. At > 0: fire on the At-th visit only (1-based).
//  2. Every > 0: fire on every Every-th visit (visit%Every == 0).
//  3. Probability > 0: fire when the injector's seeded PRNG draws below it.
//
// Count limits the total number of fires (0 means unlimited). Err overrides
// the injected error; it is wrapped so errors.Is(err, ErrInjected) still
// holds alongside errors.Is(err, Spec.Err).
type Spec struct {
	At          int64
	Every       int64
	Probability float64
	Count       int64
	Err         error
}

type pointState struct {
	spec   Spec
	visits int64
	fired  int64
}

// Injector holds the armed points. A nil *Injector is disabled; construct an
// enabled one with New.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[Point]*pointState
}

// New returns an enabled Injector whose probabilistic decisions derive from
// seed, and from seed alone.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[Point]*pointState),
	}
}

// Enabled reports whether inj can inject anything.
func (inj *Injector) Enabled() bool { return inj != nil }

// Arm installs (or replaces) the firing rule for p. Visit and fire counts for
// p are reset. Arming a zero Spec disarms the point.
func (inj *Injector) Arm(p Point, spec Spec) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if spec == (Spec{}) {
		delete(inj.points, p)
		return
	}
	inj.points[p] = &pointState{spec: spec}
}

// Disarm removes the firing rule for p, keeping nothing.
func (inj *Injector) Disarm(p Point) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	delete(inj.points, p)
}

// Hit records one visit to p and returns a non-nil error when the armed rule
// says this visit fires. The error wraps ErrInjected (and Spec.Err when set).
// On a nil or unarmed injector it returns nil.
func (inj *Injector) Hit(p Point) error {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	st, ok := inj.points[p]
	if !ok {
		return nil
	}
	st.visits++
	if st.spec.Count > 0 && st.fired >= st.spec.Count {
		return nil
	}
	fire := false
	switch {
	case st.spec.At > 0:
		fire = st.visits == st.spec.At
	case st.spec.Every > 0:
		fire = st.visits%st.spec.Every == 0
	case st.spec.Probability > 0:
		fire = inj.rng.Float64() < st.spec.Probability
	}
	if !fire {
		return nil
	}
	st.fired++
	if st.spec.Err != nil {
		return &injectedError{point: p, cause: st.spec.Err}
	}
	return &injectedError{point: p}
}

// injectedError is the concrete error returned by Hit. It unwraps to
// ErrInjected and, when armed with one, to the Spec's custom cause.
type injectedError struct {
	point Point
	cause error
}

func (e *injectedError) Error() string {
	if e.cause != nil {
		return fmt.Sprintf("faultinject: injected fault at %s: %v", e.point, e.cause)
	}
	return fmt.Sprintf("faultinject: injected fault at %s", e.point)
}

func (e *injectedError) Is(target error) bool { return target == ErrInjected }

func (e *injectedError) Unwrap() error { return e.cause }

// Count returns the number of visits recorded for p (armed visits only:
// hitting an unarmed point is not counted).
func (inj *Injector) Count(p Point) int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if st, ok := inj.points[p]; ok {
		return st.visits
	}
	return 0
}

// Fired returns the number of faults injected at p so far.
func (inj *Injector) Fired(p Point) int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if st, ok := inj.points[p]; ok {
		return st.fired
	}
	return 0
}
