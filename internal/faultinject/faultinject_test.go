package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Error("nil injector reports enabled")
	}
	// Every method must be a safe no-op on nil.
	inj.Arm(PointCGSolve, Spec{At: 1})
	inj.Disarm(PointCGSolve)
	if err := inj.Hit(PointCGSolve); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	if inj.Count(PointCGSolve) != 0 || inj.Fired(PointCGSolve) != 0 {
		t.Error("nil injector has non-zero counts")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	inj := New(1)
	for i := 0; i < 100; i++ {
		if err := inj.Hit(PointThermalAssemble); err != nil {
			t.Fatalf("unarmed point fired on visit %d: %v", i, err)
		}
	}
	if got := inj.Count(PointThermalAssemble); got != 0 {
		t.Errorf("unarmed visits counted: %d", got)
	}
}

func TestFireAtNthVisit(t *testing.T) {
	inj := New(1)
	inj.Arm(PointCGSolve, Spec{At: 3})
	for i := 1; i <= 5; i++ {
		err := inj.Hit(PointCGSolve)
		if i == 3 {
			if err == nil {
				t.Fatalf("visit %d: expected fault", i)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("visit %d: error %v does not match ErrInjected", i, err)
			}
		} else if err != nil {
			t.Fatalf("visit %d: unexpected fault %v", i, err)
		}
	}
	if got := inj.Count(PointCGSolve); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := inj.Fired(PointCGSolve); got != 1 {
		t.Errorf("Fired = %d, want 1", got)
	}
}

func TestFireEveryWithCountLimit(t *testing.T) {
	inj := New(1)
	inj.Arm(PointCheckpointWrite, Spec{Every: 2, Count: 3})
	var fired int
	for i := 0; i < 20; i++ {
		if inj.Hit(PointCheckpointWrite) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3 (Count limit)", fired)
	}
	if got := inj.Fired(PointCheckpointWrite); got != 3 {
		t.Errorf("Fired = %d, want 3", got)
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		inj := New(seed)
		inj.Arm(PointJournalWrite, Spec{Probability: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Hit(PointJournalWrite) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at visit %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns")
	}
}

func TestCustomErrorWraps(t *testing.T) {
	cause := errors.New("disk on fire")
	inj := New(1)
	inj.Arm(PointCheckpointRead, Spec{At: 1, Err: cause})
	err := inj.Hit(PointCheckpointRead)
	if err == nil {
		t.Fatal("expected fault")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("error %v does not match ErrInjected", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("error %v does not match custom cause", err)
	}
}

func TestDisarmAndRearmResetsCounts(t *testing.T) {
	inj := New(1)
	inj.Arm(PointExperimentFlow, Spec{At: 1})
	if inj.Hit(PointExperimentFlow) == nil {
		t.Fatal("expected fault on first visit")
	}
	inj.Disarm(PointExperimentFlow)
	if inj.Hit(PointExperimentFlow) != nil {
		t.Fatal("disarmed point fired")
	}
	inj.Arm(PointExperimentFlow, Spec{At: 1})
	if inj.Count(PointExperimentFlow) != 0 {
		t.Error("re-arming did not reset visit count")
	}
	if inj.Hit(PointExperimentFlow) == nil {
		t.Fatal("re-armed point did not fire on fresh first visit")
	}
	// Arming a zero Spec disarms.
	inj.Arm(PointExperimentFlow, Spec{})
	if inj.Hit(PointExperimentFlow) != nil {
		t.Fatal("zero-Spec armed point fired")
	}
}

func TestConcurrentHits(t *testing.T) {
	inj := New(7)
	inj.Arm(PointCGSolve, Spec{Every: 10})
	const goroutines, hitsEach = 8, 1000
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fired := 0
			for i := 0; i < hitsEach; i++ {
				if inj.Hit(PointCGSolve) != nil {
					fired++
				}
			}
			mu.Lock()
			total += fired
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := inj.Count(PointCGSolve); got != goroutines*hitsEach {
		t.Errorf("Count = %d, want %d", got, goroutines*hitsEach)
	}
	want := goroutines * hitsEach / 10
	if total != want {
		t.Errorf("fired %d, want exactly %d (every 10th visit)", total, want)
	}
	if got := inj.Fired(PointCGSolve); int(got) != want {
		t.Errorf("Fired = %d, want %d", got, want)
	}
}
