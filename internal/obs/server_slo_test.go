package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrapeMetrics renders /metrics through the real handler without a listener.
func scrapeMetrics(t *testing.T, o *Observer) string {
	t.Helper()
	rec := httptest.NewRecorder()
	Handler(o).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	return rec.Body.String()
}

// TestRunSeriesErrorPaths pins the ?run= filter's failure modes: a
// non-numeric value is a client error, an unknown run is a 404, and a known
// run still serves its series alone.
func TestRunSeriesErrorPaths(t *testing.T) {
	o := seededObserver()
	h := Handler(o)
	cases := []struct {
		url  string
		code int
	}{
		{"/run/series?run=abc", 400},
		{"/run/series?run=99", 404},
		{"/run/series?run=0", 200},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", c.url, nil))
		if rec.Code != c.code {
			t.Errorf("GET %s: status %d, want %d (%s)", c.url, rec.Code, c.code, rec.Body.String())
		}
	}
}

// TestSLOEndpoint checks /slo serves the evaluated objectives as JSON, and an
// observer without a config serves an empty set rather than erroring.
func TestSLOEndpoint(t *testing.T) {
	o := seededObserver()
	rec := httptest.NewRecorder()
	Handler(o).ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("/slo without config: status %d", rec.Code)
	}

	o.SetSLO(DefaultSLOConfig())
	rec = httptest.NewRecorder()
	Handler(o).ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("/slo status %d", rec.Code)
	}
	var payload struct {
		SLOs []SLOStatus `json:"slos"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/slo decode: %v\n%s", err, rec.Body.String())
	}
	if len(payload.SLOs) != len(DefaultSLOConfig().Objectives) {
		t.Fatalf("/slo served %d objectives, want %d: %+v",
			len(payload.SLOs), len(DefaultSLOConfig().Objectives), payload.SLOs)
	}
}

// TestBuildInfoExported checks tap25d_build_info is present on /metrics even
// for a nil observer, so scrapers can always identify the binary.
func TestBuildInfoExported(t *testing.T) {
	if body := scrapeMetrics(t, seededObserver()); !strings.Contains(body, "tap25d_build_info{version=") {
		t.Errorf("/metrics missing tap25d_build_info:\n%s", body)
	}
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "tap25d_build_info{version=") {
		t.Errorf("nil-observer /metrics missing tap25d_build_info:\n%s", rec.Body.String())
	}
}

// TestReportFreshObserver checks /report renders before any run finalizes.
func TestReportFreshObserver(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(New()).ServeHTTP(rec, httptest.NewRequest("GET", "/report", nil))
	if rec.Code != 200 {
		t.Fatalf("/report on fresh observer: status %d", rec.Code)
	}
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/report decode: %v", err)
	}
}
