package obs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTraceSinkAppendManifestVerify covers the durable-trace happy path: spans
// appended to a sink land as JSON lines, the manifest's totals describe the
// file exactly, and Verify detects any later mutation.
func TestTraceSinkAppendManifestVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.trace.jsonl")
	sink, err := NewTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.Append(SpanRecord{Phase: "sa_step", Trace: "tr-1", SpanID: 1, Track: 1, DurationNS: 100})
	sink.Append(SpanRecord{Phase: "thermal_solve", Trace: "tr-1", SpanID: 2, ParentID: 1, Track: 1, DurationNS: 40})
	m := sink.Manifest("tr-1", "job-a")
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Spans != 2 || m.TraceID != "tr-1" || m.JobID != "job-a" || m.WriteError != "" {
		t.Fatalf("manifest %+v, want 2 clean spans of tr-1/job-a", m)
	}
	if err := m.Verify(path); err != nil {
		t.Fatalf("Verify on intact file: %v", err)
	}
	// Any append after sealing must be detectable.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"phase\":\"rogue\"}\n")
	f.Close()
	if err := m.Verify(path); err == nil {
		t.Fatal("Verify accepted a file modified after sealing")
	}

	recs, err := ReadTraceRecords(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Phase != "sa_step" || recs[1].ParentID != 1 {
		t.Fatalf("read back %d records %+v", len(recs), recs)
	}
}

// TestTraceSinkReopenReseeds covers a job resuming after a server restart:
// re-opening an existing trace file must continue its CRC/span/byte totals so
// the final manifest seals the whole file, not just the new tail.
func TestTraceSinkReopenReseeds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.trace.jsonl")
	sink, err := NewTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.Append(SpanRecord{Phase: "sa_step", Trace: "tr-r", SpanID: 1})
	sink.Append(SpanRecord{Phase: "sa_step", Trace: "tr-r", SpanID: 2})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	sink2, err := NewTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink2.Append(SpanRecord{Phase: "sa_step", Trace: "tr-r", SpanID: 3})
	m := sink2.Manifest("tr-r", "")
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Spans != 3 {
		t.Fatalf("manifest spans = %d after reopen, want 3 (reseed lost the first attempt)", m.Spans)
	}
	if err := m.Verify(path); err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}
}

// TestReadTraceRecordsTornTail checks crash tolerance: a partial trailing
// line (no trailing newline, cut mid-JSON) is dropped silently, while a
// corrupt line in the middle of the file is a real error.
func TestReadTraceRecordsTornTail(t *testing.T) {
	good := `{"phase":"sa_step","trace":"t","span_id":1}` + "\n" +
		`{"phase":"thermal_solve","trace":"t","span_id":2}` + "\n"
	recs, err := ReadTraceRecords(strings.NewReader(good + `{"phase":"sa_st`))
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn tail: %d records, want 2", len(recs))
	}
	if _, err := ReadTraceRecords(strings.NewReader(`{"bad` + "\n" + good)); err == nil {
		t.Fatal("corrupt mid-file line accepted")
	}
}

// TestTracedSpanPropagation checks the tentpole wiring end to end inside obs:
// a trace ID on the context flows root → child → grandchild, every End lands
// in the attached sink, and the records link up via span/parent IDs under one
// trace and one track.
func TestTracedSpanPropagation(t *testing.T) {
	o := New()
	path := filepath.Join(t.TempDir(), "prop.trace.jsonl")
	sink, err := NewTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	o.AttachTraceSink("tr-x", sink)

	ctx := ContextWithTrace(context.Background(), "tr-x")
	root := o.StartSpanCtx(ctx, PhaseSAStep, "")
	ctx = ContextWithSpan(ctx, root)
	child := o.StartSpanCtx(ctx, PhaseThermalSolve, "delta")
	grand := child.Child(PhaseThermalAssemble, "")
	grand.End()
	child.End()
	root.End()
	if got := o.DetachTraceSink("tr-x"); got != sink {
		t.Fatal("DetachTraceSink did not return the attached sink")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTraceRecords(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	// End order is grandchild, child, root.
	g, c, r := recs[0], recs[1], recs[2]
	if g.Trace != "tr-x" || c.Trace != "tr-x" || r.Trace != "tr-x" {
		t.Fatalf("trace IDs %q/%q/%q, want all tr-x", g.Trace, c.Trace, r.Trace)
	}
	if g.ParentID != c.SpanID || c.ParentID != r.SpanID {
		t.Fatalf("parent linkage broken: %+v", recs)
	}
	if g.Track != r.Track || c.Track != r.Track || r.Track != r.SpanID {
		t.Fatalf("track grouping broken: %+v", recs)
	}
}

// TestUntracedSpansSkipSink checks the disabled-cost contract: spans without
// a context trace ID carry no trace identity and never touch an attached
// sink, even when one exists for some other trace.
func TestUntracedSpansSkipSink(t *testing.T) {
	o := New()
	path := filepath.Join(t.TempDir(), "other.trace.jsonl")
	sink, err := NewTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	o.AttachTraceSink("tr-other", sink)
	s := o.StartSpanCtx(context.Background(), PhaseSAStep, "")
	s.Child(PhaseThermalSolve, "").End()
	s.End()
	o.DetachTraceSink("tr-other")
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if m := sink.Manifest("tr-other", ""); m.Spans != 0 {
		t.Fatalf("untraced spans leaked into the sink: %d records", m.Spans)
	}
	for _, rec := range o.RecentSpans() {
		if rec.Trace != "" || rec.SpanID != 0 {
			t.Fatalf("untraced span got trace identity: %+v", rec)
		}
	}
}

// TestObserveTracedSpan covers the submit-path helper: the record lands in
// the sink with a minted span ID even though no Span object ever existed.
func TestObserveTracedSpan(t *testing.T) {
	o := New()
	path := filepath.Join(t.TempDir(), "submit.trace.jsonl")
	sink, err := NewTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	o.AttachTraceSink("tr-s", sink)
	o.ObserveTracedSpan("tr-s", PhaseJobSubmit, "job-1", time.Now(), 5*time.Millisecond)
	o.DetachTraceSink("tr-s")
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTraceRecords(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Phase != "job_submit" || recs[0].SpanID == 0 {
		t.Fatalf("records %+v, want one job_submit with a span ID", recs)
	}
	if h := o.PhaseHistogram(PhaseJobSubmit).Snapshot(); h.Count != 1 {
		t.Fatalf("job_submit histogram count %d, want 1", h.Count)
	}
}

// TestPerfettoGolden pins the Chrome trace-event export schema against a
// golden file (UPDATE_GOLDEN=1 regenerates after a deliberate change). The
// records use fixed timestamps so the output is byte-stable.
func TestPerfettoGolden(t *testing.T) {
	recs := []SpanRecord{
		{Phase: "job_submit", Label: "job-1", StartUnix: 1_000_000_000, DurationNS: 2_000_000, Trace: "tr-g", SpanID: 1, Track: 1},
		{Phase: "job_execute", Label: "job-1", StartUnix: 1_010_000_000, DurationNS: 500_000_000, Trace: "tr-g", SpanID: 2, Track: 2},
		{Phase: "sa_step", Parent: "job_execute", StartUnix: 1_020_000_000, DurationNS: 30_000_000, Trace: "tr-g", SpanID: 3, ParentID: 2, Track: 2},
		{Phase: "thermal_solve", Label: "delta", Parent: "job_execute/sa_step", StartUnix: 1_021_000_000, DurationNS: 20_000_000, Trace: "tr-g", SpanID: 4, ParentID: 3, Track: 2},
		{Phase: "checkpoint_write", StartUnix: 1_060_000_000, DurationNS: 1_000_000},
	}
	var buf bytes.Buffer
	if err := WritePerfettoTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/perfetto.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Perfetto export drifted from %s (UPDATE_GOLDEN=1 to regenerate):\n%s", golden, buf.Bytes())
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
