package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed region of a placement flow. Spans form a hierarchy:
// Child spans link to their parent, and StartSpanCtx picks the parent up
// from a context (so e.g. a thermal solve started inside an SA step becomes
// that step's child without the packages knowing about each other). Ending a
// span records its duration into the phase histogram and pushes a SpanRecord
// into the observer's recent-span ring.
//
// All Span methods are nil-safe: a disabled Observer hands out nil spans and
// every operation on them is a pointer test.
type Span struct {
	o      *Observer
	parent *Span
	phase  Phase
	label  string
	// trace, id and track carry the span's run/job trace identity (see
	// tracefile.go). They stay zero — and End skips the trace-sink dispatch
	// entirely — unless a trace ID was attached to the span's context, so
	// untraced flows pay nothing beyond two extra struct fields.
	trace string
	id    uint64
	track uint64
	start time.Time
}

// StartSpan opens a root span for phase. label is optional free-form detail
// ("full", "delta", the routing method, ...).
func (o *Observer) StartSpan(phase Phase, label string) *Span {
	if o == nil {
		return nil
	}
	return &Span{o: o, phase: phase, label: label, start: time.Now()}
}

// Child opens a sub-span of s, inheriting its trace identity. A nil s yields
// nil.
func (s *Span) Child(phase Phase, label string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{o: s.o, parent: s, phase: phase, label: label, start: time.Now()}
	if s.trace != "" {
		c.trace, c.track = s.trace, s.track
		c.id = s.o.spanSeq.Add(1)
	}
	return c
}

// Trace returns the span's trace ID ("" for untraced spans; nil-safe).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SetLabel replaces the span's label before End records it — for callers that
// only learn the interesting detail (e.g. "delta" vs "skip") mid-span.
func (s *Span) SetLabel(label string) {
	if s == nil {
		return
	}
	s.label = label
}

// End closes the span: its duration lands in the phase histogram and the
// recent-span ring. End on a nil span is a no-op; ending twice records twice
// (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if d < 0 {
		d = 0
	}
	rec := SpanRecord{
		Phase:      s.phase.String(),
		Label:      s.label,
		Parent:     s.parentPath(),
		StartUnix:  s.start.UnixNano(),
		DurationNS: int64(d),
	}
	if s.trace != "" {
		rec.Trace = s.trace
		rec.SpanID = s.id
		rec.Track = s.track
		if s.parent != nil {
			rec.ParentID = s.parent.id
		}
	}
	s.o.phases[s.phase].Observe(uint64(d))
	s.o.spans.push(rec)
	if s.trace != "" {
		s.o.traceAppend(s.trace, rec)
	}
}

// parentPath renders the ancestor chain root-first ("sa_step" or
// "sa_step/thermal_solve").
func (s *Span) parentPath() string {
	if s.parent == nil {
		return ""
	}
	path := ""
	for p := s.parent; p != nil; p = p.parent {
		seg := p.phase.String()
		if path == "" {
			path = seg
		} else {
			path = seg + "/" + path
		}
	}
	return path
}

// SpanRecord is one completed span as kept in the recent-span ring and
// served by /run.
type SpanRecord struct {
	Phase string `json:"phase"`
	Label string `json:"label,omitempty"`
	// Parent is the ancestor chain root-first, empty for root spans.
	Parent string `json:"parent,omitempty"`
	// StartUnix is the span's start in Unix nanoseconds.
	StartUnix  int64 `json:"start_unix_ns"`
	DurationNS int64 `json:"duration_ns"`
	// Trace, SpanID, ParentID and Track identify the span inside a run/job
	// trace (see tracefile.go): Trace is the run-level trace ID minted at job
	// submission or CLI start, SpanID/ParentID link the span DAG, and Track
	// groups the spans of one root (one annealing run) onto one timeline row
	// in the Perfetto export. All are zero for spans outside any trace.
	Trace    string `json:"trace,omitempty"`
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Track    uint64 `json:"track,omitempty"`
}

// spanRingCap bounds the recent-span ring: enough to show the last few SA
// steps with their nested solves without growing with run length.
const spanRingCap = 256

type spanRing struct {
	mu     sync.Mutex
	buf    [spanRingCap]SpanRecord
	next   int
	filled bool
}

func (r *spanRing) push(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % spanRingCap
	if r.next == 0 {
		r.filled = true
	}
	r.mu.Unlock()
}

func (r *spanRing) snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		return append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, spanRingCap)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// RecentSpans returns the newest completed spans, oldest first (at most 256).
func (o *Observer) RecentSpans() []SpanRecord {
	if o == nil {
		return nil
	}
	return o.spans.snapshot()
}

// --- context propagation ---------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan attaches s to ctx so spans opened downstream (in packages
// that never see the caller's Span) can link to it as their parent.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span attached by ContextWithSpan, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

type traceCtxKey struct{}

// ContextWithTrace attaches a run/job trace ID to ctx. Every span opened
// downstream via StartSpanCtx inherits it (directly or through its parent)
// and, when a TraceSink is attached for that ID, is durably appended to the
// trace file on End.
func ContextWithTrace(ctx context.Context, trace string) context.Context {
	if trace == "" {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, trace)
}

// TraceFromContext returns the trace ID attached by ContextWithTrace, or "".
func TraceFromContext(ctx context.Context) string {
	t, _ := ctx.Value(traceCtxKey{}).(string)
	return t
}

// StartSpanCtx opens a span whose parent is the context's span when one is
// attached, and a root span otherwise. Instrumented leaf packages (thermal,
// route) use this so their spans nest under whatever step invoked them. A
// root span picks up the context's trace ID (ContextWithTrace) and starts a
// new track; children inherit trace and track from their parent.
func (o *Observer) StartSpanCtx(ctx context.Context, phase Phase, label string) *Span {
	if o == nil {
		return nil
	}
	if parent := SpanFromContext(ctx); parent != nil && parent.o == o {
		return parent.Child(phase, label)
	}
	s := o.StartSpan(phase, label)
	if trace := TraceFromContext(ctx); trace != "" {
		s.trace = trace
		s.id = o.spanSeq.Add(1)
		s.track = s.id
	}
	return s
}
