package obs

import (
	"testing"

	"tap25d/internal/metrics"
)

// TestAnomalyStalledImprovement feeds a run that keeps accepting moves while
// its best solution stays flat: the detector must flag it once the stall
// window elapses, then re-arm only after the cooldown.
func TestAnomalyStalledImprovement(t *testing.T) {
	o := New()
	for step := 1; step <= 600; step++ {
		o.RecordSAStep(0, 10000, SAPoint{
			Step: step, AcceptRate: 0.5,
			BestTempC: 80, BestWirelengthMM: 10,
		})
	}
	// Checks fire every 64 steps; with the last improvement at step 1 the
	// first stall lands at step 320 and the cooldown re-arms it at 576.
	got := o.TakeAnomalies(0)
	if len(got) != 2 {
		t.Fatalf("anomalies %+v, want 2 stall reports (initial + one after cooldown)", got)
	}
	for _, a := range got {
		if a.Kind != AnomalyStalledImprovement || a.Run != 0 || a.Detail == "" {
			t.Fatalf("anomaly %+v, want %s on run 0 with detail", a, AnomalyStalledImprovement)
		}
	}
	if got[0].Step != 320 || got[1].Step != 576 {
		t.Fatalf("stall steps %d/%d, want 320/576", got[0].Step, got[1].Step)
	}
	if n := o.extraSnapshot()["anomaly_"+AnomalyStalledImprovement]; n != 2 {
		t.Fatalf("anomaly counter = %d, want 2", n)
	}
	// Drained: a second take is empty.
	if again := o.TakeAnomalies(0); again != nil {
		t.Fatalf("second TakeAnomalies returned %+v", again)
	}
}

// TestAnomalyStallSuppressed covers the disarm conditions: an improving best,
// a near-frozen acceptance rate, and the schedule tail must all stay quiet.
func TestAnomalyStallSuppressed(t *testing.T) {
	cases := []struct {
		name  string
		point func(step int) SAPoint
	}{
		{"improving best", func(step int) SAPoint {
			return SAPoint{Step: step, AcceptRate: 0.5, BestTempC: 100 - float64(step)/10}
		}},
		{"low accept rate", func(step int) SAPoint {
			return SAPoint{Step: step, AcceptRate: 0.05, BestTempC: 80}
		}},
	}
	for _, c := range cases {
		o := New()
		for step := 1; step <= 600; step++ {
			o.RecordSAStep(0, 10000, c.point(step))
		}
		if got := o.TakeAnomalies(0); got != nil {
			t.Errorf("%s: spurious anomalies %+v", c.name, got)
		}
	}
	// Schedule tail: the same flat trace as the stall test, but every check
	// past the stall window lands beyond 90% of the budget, where a flat best
	// is the expected outcome.
	o := New()
	for step := 1; step <= 340; step++ {
		o.RecordSAStep(0, 350, SAPoint{Step: step, AcceptRate: 0.5, BestTempC: 80})
	}
	if got := o.TakeAnomalies(0); got != nil {
		t.Errorf("schedule tail: spurious anomalies %+v", got)
	}
}

// TestAnomalyCGInflation drives the iterations-per-solve ratio: a baseline
// window at 10 iters/solve followed by a window at 100 must trip the
// detector, and the detail names the measured ratios.
func TestAnomalyCGInflation(t *testing.T) {
	o := New()
	quiet := SAPoint{AcceptRate: 0.05, BestTempC: 80} // accept rate below the stall gate

	o.SetRunCounters(1, metrics.Counters{ThermalSolves: 320, CGIterations: 3200})
	p := quiet
	p.Step = 64
	o.RecordSAStep(1, 10000, p) // baseline check: ratio matches the mean, no anomaly

	o.SetRunCounters(1, metrics.Counters{ThermalSolves: 352, CGIterations: 6400})
	p.Step = 320
	o.RecordSAStep(1, 10000, p) // recent window: 3200 iters over 32 solves

	got := o.TakeAnomalies(1)
	if len(got) != 1 || got[0].Kind != AnomalyCGInflation {
		t.Fatalf("anomalies %+v, want one %s", got, AnomalyCGInflation)
	}
	if got[0].Run != 1 || got[0].Step != 320 || got[0].Detail == "" {
		t.Fatalf("anomaly %+v, want run 1 at step 320 with detail", got[0])
	}
	if n := o.extraSnapshot()["anomaly_"+AnomalyCGInflation]; n != 1 {
		t.Fatalf("anomaly counter = %d, want 1", n)
	}
}

// TestAnomalyCGInflationNeedsVolume checks the minimum-solve gate: a huge
// ratio over a tiny window is noise, not an anomaly.
func TestAnomalyCGInflationNeedsVolume(t *testing.T) {
	o := New()
	quiet := SAPoint{AcceptRate: 0.05, BestTempC: 80}

	o.SetRunCounters(1, metrics.Counters{ThermalSolves: 320, CGIterations: 3200})
	p := quiet
	p.Step = 64
	o.RecordSAStep(1, 10000, p)

	// Only 4 solves in the window — below anomalyCGMinSolves.
	o.SetRunCounters(1, metrics.Counters{ThermalSolves: 324, CGIterations: 3200 + 4*100})
	p.Step = 320
	o.RecordSAStep(1, 10000, p)

	if got := o.TakeAnomalies(1); got != nil {
		t.Fatalf("low-volume window tripped the detector: %+v", got)
	}
}

// TestTakeAnomaliesNilSafe covers the disabled and unknown-run paths.
func TestTakeAnomaliesNilSafe(t *testing.T) {
	var disabled *Observer
	if got := disabled.TakeAnomalies(0); got != nil {
		t.Fatalf("nil observer returned %+v", got)
	}
	if got := New().TakeAnomalies(7); got != nil {
		t.Fatalf("unknown run returned %+v", got)
	}
}
