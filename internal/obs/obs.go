// Package obs is the repo's low-overhead observability subsystem: hierarchical
// span tracing, fixed-bucket timing histograms for the hot phases of a
// placement flow (SA step, thermal assemble/solve, route solve, checkpoint
// write), per-solve conjugate-gradient convergence traces, a counter/gauge
// registry that absorbs the evaluation counters of internal/metrics, and a
// live view of every annealing run. An Observer is exposed three ways: the
// opt-in HTTP debug server (Serve: net/http/pprof, expvar, Prometheus-text
// /metrics, a /run JSON view), snapshots attached to the structured JSONL run
// events at checkpoint boundaries (EventSnapshot), and an end-of-run Report
// (JSON plus a human-readable table).
//
// Every method of Observer, Span and CGTrace is safe to call on a nil
// receiver and returns immediately: a nil *Observer IS the disabled state,
// so instrumented code needs no flags and the disabled fast path costs a
// pointer test per call site — no allocation, no locks, no time reads.
// Instrumentation is timing-only by design: an enabled Observer never
// perturbs random-number draws or floating-point arithmetic, so observed and
// unobserved runs produce bit-identical placements.
//
// All mutating operations on an enabled Observer are safe for concurrent use
// by parallel annealing runs: histograms and named counters are atomic, and
// per-run state is sharded by run index behind one mutex.
package obs

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tap25d/internal/metrics"
)

// Phase identifies one instrumented hot phase. Each phase owns one fixed-
// bucket duration histogram on the Observer.
type Phase uint8

// Instrumented phases, ordered as they appear in reports.
const (
	// PhaseSAStep covers one full simulated-annealing step: neighbor
	// generation, evaluation, acceptance bookkeeping.
	PhaseSAStep Phase = iota
	// PhaseInitialPlacement covers the Compact-2.5D initial placement and
	// its first evaluation, once per run.
	PhaseInitialPlacement
	// PhaseThermalSolve covers one steady-state thermal solve end to end
	// (assembly included).
	PhaseThermalSolve
	// PhaseThermalAssemble covers the conductance-matrix work of one solve:
	// full rebuild, delta update, or the (near-free) skipped case.
	PhaseThermalAssemble
	// PhaseRouteSolve covers one inter-chiplet routing call (fast or MILP).
	PhaseRouteSolve
	// PhaseCheckpointWrite covers persisting one run snapshot.
	PhaseCheckpointWrite
	// PhaseSurrogateEval covers one analytical-surrogate prediction during
	// a two-fidelity prescreen (microseconds; contrast with
	// PhaseThermalSolve to see the fidelity gap).
	PhaseSurrogateEval
	// PhaseJobSubmit covers accepting one job into the service queue
	// (validation, idempotency/quota checks, sealed persist).
	PhaseJobSubmit
	// PhaseJobExecute covers one whole job attempt on a service worker, from
	// dispatch to terminal state or drain; every placement span of the
	// attempt nests under it.
	PhaseJobExecute
	// PhaseJobReclaim covers one fenced reclamation of an expired or
	// orphaned job lease by a scavenger: epoch bump, retry-budget decision,
	// record persist.
	PhaseJobReclaim
	numPhases
)

// phaseNames are the stable external identifiers (Prometheus label values,
// report keys, JSONL keys).
var phaseNames = [numPhases]string{
	"sa_step",
	"initial_placement",
	"thermal_solve",
	"thermal_assemble",
	"route_solve",
	"checkpoint_write",
	"surrogate_eval",
	"job_submit",
	"job_execute",
	"job_reclaim",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Observer collects spans, histograms, traces and run state. The zero value
// is not usable; construct with New. A nil *Observer is the disabled state:
// every method no-ops.
type Observer struct {
	start    time.Time
	phases   [numPhases]Histogram
	cgIters  Histogram // CG iterations-to-converge per thermal solve
	spans    spanRing
	cgSeq    atomic.Uint64
	cgTraces cgRing
	spanSeq  atomic.Uint64 // span IDs within traces (tracefile.go)
	sinkN    atomic.Int32  // attached trace sinks, checked before taking mu

	mu       sync.Mutex
	runs     map[int]*runState
	flow     metrics.Counters // counters absorbed outside any run
	extra    map[string]*atomic.Int64
	extraKey []string // registration order, for stable export
	gauges   map[string]float64
	named    map[string]*Histogram // named duration histograms (service)
	sinks    map[string]*TraceSink // per-trace durable span sinks
	slo      *SLOConfig            // declared objectives (slo.go)
}

// New returns an enabled Observer.
func New() *Observer {
	return &Observer{
		start:  time.Now(),
		runs:   make(map[int]*runState),
		extra:  make(map[string]*atomic.Int64),
		gauges: make(map[string]float64),
		named:  make(map[string]*Histogram),
		sinks:  make(map[string]*TraceSink),
	}
}

// Enabled reports whether o collects anything. It is the nil test that every
// instrumentation site performs implicitly.
func (o *Observer) Enabled() bool { return o != nil }

// Uptime is the time since New.
func (o *Observer) Uptime() time.Duration {
	if o == nil {
		return 0
	}
	return time.Since(o.start)
}

// PhaseHistogram exposes the duration histogram of one phase (nil when
// disabled or out of range). Durations are recorded in nanoseconds.
func (o *Observer) PhaseHistogram(p Phase) *Histogram {
	if o == nil || p >= numPhases {
		return nil
	}
	return &o.phases[p]
}

// CGIterationsHistogram exposes the iterations-to-converge histogram.
func (o *Observer) CGIterationsHistogram() *Histogram {
	if o == nil {
		return nil
	}
	return &o.cgIters
}

// ObservePhase records one completed duration directly into a phase
// histogram, for callers that time a region without wanting a Span record.
func (o *Observer) ObservePhase(p Phase, d time.Duration) {
	if o == nil || p >= numPhases || d < 0 {
		return
	}
	o.phases[p].Observe(uint64(d))
}

// Add increments (creating on first use) a named extension counter. Names
// should be snake_case; they are exported as tap25d_<name>_total on /metrics
// and under "extra" in the Report.
func (o *Observer) Add(name string, delta int64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.addLocked(name, delta)
	o.mu.Unlock()
}

// addLocked is Add for callers already holding o.mu (the anomaly detector
// runs inside RecordSAStep's critical section).
func (o *Observer) addLocked(name string, delta int64) {
	c, ok := o.extra[name]
	if !ok {
		c = new(atomic.Int64)
		o.extra[name] = c
		o.extraKey = append(o.extraKey, name)
	}
	c.Add(delta)
}

// extraSnapshot returns the named counters in registration order.
func (o *Observer) extraSnapshot() map[string]int64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.extra) == 0 {
		return nil
	}
	out := make(map[string]int64, len(o.extra))
	for name, c := range o.extra {
		out[name] = c.Load()
	}
	return out
}

// SetGauge sets a named instantaneous value (last write wins) — queue depth,
// busy workers, in-flight jobs. Gauges are exported as
// tap25d_gauge{name="..."} on /metrics. Names should be snake_case.
func (o *Observer) SetGauge(name string, v float64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.gauges[name] = v
	o.mu.Unlock()
}

// gaugeSnapshot returns the gauges by name.
func (o *Observer) gaugeSnapshot() map[string]float64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.gauges) == 0 {
		return nil
	}
	out := make(map[string]float64, len(o.gauges))
	for name, v := range o.gauges {
		out[name] = v
	}
	return out
}

// ObserveNamed records one duration into a named histogram (created on first
// use) — job latency, queue wait. Named histograms are exported as
// tap25d_named_duration_seconds{name="..."} on /metrics, beside the
// fixed-phase histograms of ObservePhase. Names should be snake_case.
func (o *Observer) ObserveNamed(name string, d time.Duration) {
	if o == nil || d < 0 {
		return
	}
	o.mu.Lock()
	h, ok := o.named[name]
	if !ok {
		h = &Histogram{}
		o.named[name] = h
	}
	o.mu.Unlock()
	h.Observe(uint64(d))
}

// NamedHistogram exposes one named duration histogram (nil when disabled or
// never observed). Durations are recorded in nanoseconds.
func (o *Observer) NamedHistogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.named[name]
}

// namedSnapshot returns a snapshot of every named histogram.
func (o *Observer) namedSnapshot() map[string]HistogramSnapshot {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.named) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(o.named))
	for name, h := range o.named {
		out[name] = h.Snapshot()
	}
	return out
}

// Do runs f under pprof labels (key/value pairs from kv) when o is enabled,
// so CPU and goroutine profiles taken from the debug server attribute hot
// goroutines — e.g. the parallel annealing runs — to their run index. When o
// is nil, f runs directly with ctx and the profiler is never touched.
func (o *Observer) Do(ctx context.Context, f func(context.Context), kv ...string) {
	if o == nil || len(kv) < 2 {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(kv...), f)
}

// --- per-run live state ----------------------------------------------------

// saSeriesCap bounds the per-run SA time series ring: with the default 1000
// step budget the whole run fits; longer runs keep the most recent window.
const saSeriesCap = 4096

// SAPoint is one annealing step's observability record: the acceptance-rate
// and cost-component time series of a run is a ring of these.
type SAPoint struct {
	Step         int     `json:"step"`
	K            float64 `json:"k"`
	Alpha        float64 `json:"alpha"`
	TempC        float64 `json:"temp_c"`
	WirelengthMM float64 `json:"wirelength_mm"`
	Cost         float64 `json:"cost"`
	Accepted     bool    `json:"accepted"`
	// AcceptRate is accepted moves over completed steps so far.
	AcceptRate float64 `json:"accept_rate"`
	// BestTempC and BestWirelengthMM track the run's best solution so far.
	BestTempC        float64 `json:"best_temp_c"`
	BestWirelengthMM float64 `json:"best_wirelength_mm"`
}

// RunStatus is the live view of one annealing run, served by /run.
type RunStatus struct {
	Run   int `json:"run"`
	Step  int `json:"step"`
	Steps int `json:"steps"`
	// State is the latest lifecycle marker: "running", "checkpoint",
	// "resumed", "final" or "interrupted".
	State            string           `json:"state"`
	K                float64          `json:"k"`
	BestTempC        float64          `json:"best_temp_c"`
	BestWirelengthMM float64          `json:"best_wirelength_mm"`
	AcceptRate       float64          `json:"accept_rate"`
	Counters         metrics.Counters `json:"counters"`
}

type runState struct {
	status RunStatus
	series []SAPoint // ring
	next   int       // next write slot
	filled bool
	anom   anomalyState // convergence-anomaly detector state (anomaly.go)
}

func (o *Observer) run(r int) *runState {
	rs, ok := o.runs[r]
	if !ok {
		rs = &runState{status: RunStatus{Run: r, State: "running"}}
		o.runs[r] = rs
	}
	return rs
}

// RecordSAStep appends one step to run's SA time series and refreshes the
// live run status from it. steps is the run's step budget.
func (o *Observer) RecordSAStep(run, steps int, p SAPoint) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	rs := o.run(run)
	if len(rs.series) < saSeriesCap {
		rs.series = append(rs.series, p)
	} else {
		rs.series[rs.next] = p
		rs.next = (rs.next + 1) % saSeriesCap
		rs.filled = true
	}
	rs.status.Step = p.Step + 1
	rs.status.Steps = steps
	rs.status.K = p.K
	rs.status.BestTempC = p.BestTempC
	rs.status.BestWirelengthMM = p.BestWirelengthMM
	rs.status.AcceptRate = p.AcceptRate
	rs.status.State = "running"
	o.checkAnomaliesLocked(rs, run, steps, p)
}

// SetRunState marks a lifecycle transition of a run ("checkpoint", "resumed",
// "final", "interrupted").
func (o *Observer) SetRunState(run int, state string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.run(run).status.State = state
}

// SetRunCounters absorbs a run's evaluation-counter snapshot; /run serves
// them per run and the Report sums them across runs.
func (o *Observer) SetRunCounters(run int, c metrics.Counters) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.run(run).status.Counters = c
}

// RunStatuses snapshots every known run, ordered by run index.
func (o *Observer) RunStatuses() []RunStatus {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]RunStatus, 0, len(o.runs))
	for _, rs := range o.runs {
		out = append(out, rs.status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// SASeries returns run's acceptance-rate/cost time series in step order
// (oldest first; at most saSeriesCap points).
func (o *Observer) SASeries(run int) []SAPoint {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	rs, ok := o.runs[run]
	if !ok {
		return nil
	}
	if !rs.filled {
		return append([]SAPoint(nil), rs.series...)
	}
	out := make([]SAPoint, 0, len(rs.series))
	out = append(out, rs.series[rs.next:]...)
	out = append(out, rs.series[:rs.next]...)
	return out
}

// AbsorbCounters accumulates evaluation counters that accrue outside any
// annealing run — the facade's final full-fidelity evaluation, a standalone
// Evaluate call — so the report's counter total covers the whole flow, not
// just the runs.
func (o *Observer) AbsorbCounters(c metrics.Counters) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.flow.Merge(c)
}

// countersTotal sums the absorbed per-run and flow-level counters.
func (o *Observer) countersTotal() metrics.Counters {
	var total metrics.Counters
	if o == nil {
		return total
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	total.Merge(o.flow)
	for _, rs := range o.runs {
		total.Merge(rs.status.Counters)
	}
	return total
}
