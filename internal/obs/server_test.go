package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tap25d/internal/metrics"
)

func seededObserver() *Observer {
	o := New()
	sp := o.StartSpan(PhaseSAStep, "")
	sp.Child(PhaseThermalSolve, "full").End()
	sp.End()
	tr := o.StartCG()
	tr.Observe(0, 1)
	tr.Observe(1, 0.1)
	o.EndCG(tr, 4, true)
	o.RecordSAStep(0, 10, SAPoint{Step: 3, BestTempC: 81.5, Cost: 1.2})
	o.SetRunCounters(0, metrics.Counters{Evaluations: 5, ThermalSolves: 4, CGIterations: 16})
	o.SetRunState(0, "running")
	o.Add("debug_requests", 1)
	return o
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestServerEndpoints(t *testing.T) {
	o := seededObserver()
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`tap25d_phase_duration_seconds_bucket{phase="sa_step"`,
		`tap25d_phase_duration_seconds_count{phase="thermal_solve"} 1`,
		"tap25d_cg_iterations_count 1",
		"tap25d_cg_iterations_sum 4",
		"tap25d_evaluations_total 5",
		"tap25d_thermal_solves_total 4",
		"tap25d_cg_iterations_total 16",
		`tap25d_extra_total{name="debug_requests"} 1`,
		`tap25d_run_step{run="0"} 4`,
		"tap25d_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = getBody(t, base+"/run")
	if code != http.StatusOK {
		t.Fatalf("/run status %d", code)
	}
	var run struct {
		UptimeNS int64            `json:"uptime_ns"`
		Runs     []RunStatus      `json:"runs"`
		Counters metrics.Counters `json:"counters"`
		CG       CGStats          `json:"cg"`
		Spans    []SpanRecord     `json:"recent_spans"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("/run decode: %v\n%s", err, body)
	}
	if len(run.Runs) != 1 || run.Runs[0].State != "running" || run.Runs[0].BestTempC != 81.5 {
		t.Fatalf("/run runs %+v", run.Runs)
	}
	if run.Counters.Evaluations != 5 || run.CG.Solves != 1 || len(run.Spans) != 2 {
		t.Fatalf("/run payload counters=%+v cg=%+v spans=%d", run.Counters, run.CG, len(run.Spans))
	}

	code, body = getBody(t, base+"/run/series")
	if code != http.StatusOK {
		t.Fatalf("/run/series status %d", code)
	}
	var series map[string][]SAPoint
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/run/series decode: %v", err)
	}
	if len(series["run0"]) != 1 || series["run0"][0].Step != 3 {
		t.Fatalf("/run/series %+v", series)
	}

	code, body = getBody(t, base+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report status %d", code)
	}
	var rep Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/report decode: %v", err)
	}
	if rep.Counters.Evaluations != 5 || rep.CG.Solves != 1 {
		t.Fatalf("/report %+v", rep)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		if code, _ := getBody(t, base+path); code != http.StatusOK {
			t.Errorf("%s status %d", path, code)
		}
	}
}

func TestMetricsHandlerNilObserver(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := getBody(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "disabled") {
		t.Fatalf("nil-observer /metrics: %d %q", code, body)
	}
}
