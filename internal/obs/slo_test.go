package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tap25d/internal/metrics"
)

// TestSLOStatusesAvailability exercises the good/bad ratio objective: healthy
// above target, burning budget proportionally to bad events, and current=1
// with an untouched budget before any event.
func TestSLOStatusesAvailability(t *testing.T) {
	o := New()
	o.SetSLO(&SLOConfig{Objectives: []SLOObjective{{
		Name: "jobs", Kind: SLOAvailability,
		GoodCounter: "jobs_completed", BadCounter: "jobs_failed", TargetRatio: 0.9,
	}}})

	st := o.SLOStatuses()
	if len(st) != 1 || st[0].Current != 1 || !st[0].Healthy || st[0].BudgetRemaining != 1 {
		t.Fatalf("empty observer: %+v, want current=1 healthy with full budget", st)
	}

	o.AbsorbCounters(metrics.Counters{JobsCompleted: 95, JobsFailed: 5})
	st = o.SLOStatuses()
	if st[0].Current != 0.95 || !st[0].Healthy {
		t.Fatalf("95/5: %+v, want current 0.95 healthy", st[0])
	}
	// Allowed bad at 0.9 over 100 events is 10; 5 bad burns half the budget.
	if !approx(st[0].BurnRate, 0.5) || !approx(st[0].BudgetRemaining, 0.5) {
		t.Fatalf("95/5: burn %v budget %v, want 0.5/0.5", st[0].BurnRate, st[0].BudgetRemaining)
	}

	o.AbsorbCounters(metrics.Counters{JobsFailed: 20})
	st = o.SLOStatuses()
	if st[0].Healthy || st[0].BudgetRemaining != 0 || st[0].BurnRate <= 1 {
		t.Fatalf("95/25: %+v, want unhealthy with exhausted budget", st[0])
	}
}

// TestSLOStatusesLatencyAndDrift exercises the histogram-quantile and gauge
// objectives, including unit conversion (histograms store nanoseconds, the
// objective is in milliseconds).
func TestSLOStatusesLatencyAndDrift(t *testing.T) {
	o := New()
	o.SetSLO(&SLOConfig{Objectives: []SLOObjective{
		{Name: "lat", Kind: SLOLatency, Histogram: "job_latency", Quantile: 0.99, MaxMillis: 100},
		{Name: "drift", Kind: SLODrift, Gauge: "surrogate_drift_rms_c", MaxValue: 2},
	}})

	for i := 0; i < 100; i++ {
		o.ObserveNamed("job_latency", 10*time.Millisecond)
	}
	o.SetGauge("surrogate_drift_rms_c", 0.5)
	byName := map[string]SLOStatus{}
	for _, st := range o.SLOStatuses() {
		byName[st.Name] = st
	}
	lat := byName["lat"]
	if !lat.Healthy || lat.Current <= 0 || lat.Current > 100 {
		t.Fatalf("fast latency: %+v, want healthy p99 well under 100ms", lat)
	}
	drift := byName["drift"]
	if !drift.Healthy || drift.Current != 0.5 || !approx(drift.BurnRate, 0.25) {
		t.Fatalf("drift 0.5/2: %+v, want healthy burn 0.25", drift)
	}

	// A p99 objective needs >1% of samples slow before it trips.
	for i := 0; i < 10; i++ {
		o.ObserveNamed("job_latency", 10*time.Second)
	}
	o.SetGauge("surrogate_drift_rms_c", 3)
	byName = map[string]SLOStatus{}
	for _, st := range o.SLOStatuses() {
		byName[st.Name] = st
	}
	if byName["lat"].Healthy {
		t.Fatalf("10s outliers left p99 healthy: %+v", byName["lat"])
	}
	if byName["drift"].Healthy || byName["drift"].BudgetRemaining != 0 {
		t.Fatalf("drift 3 > bound 2 still healthy: %+v", byName["drift"])
	}
}

// TestSLOConfigValidate rejects the malformed shapes a hand-written
// -slo-config file could take.
func TestSLOConfigValidate(t *testing.T) {
	bad := []SLOObjective{
		{Kind: SLOAvailability, GoodCounter: "a", BadCounter: "b", TargetRatio: 0.9}, // no name
		{Name: "x", Kind: "unknown"}, // bad kind
		{Name: "x", Kind: SLOAvailability, GoodCounter: "a", TargetRatio: 0.9}, // missing bad counter
		{Name: "x", Kind: SLOAvailability, GoodCounter: "a", BadCounter: "b"},  // zero ratio
		{Name: "x", Kind: SLOAvailability, GoodCounter: "a", BadCounter: "b", TargetRatio: 1.5},
		{Name: "x", Kind: SLOLatency, Histogram: "h", Quantile: 0.99}, // no bound
		{Name: "x", Kind: SLOLatency, Histogram: "h", MaxMillis: 10},  // no quantile
		{Name: "x", Kind: SLODrift, MaxValue: 1},                      // no gauge
	}
	for i, obj := range bad {
		if err := (&SLOConfig{Objectives: []SLOObjective{obj}}).Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, obj)
		}
	}
	dup := &SLOConfig{Objectives: []SLOObjective{
		{Name: "same", Kind: SLODrift, Gauge: "g", MaxValue: 1},
		{Name: "same", Kind: SLODrift, Gauge: "g2", MaxValue: 1},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate objective names validated")
	}
	if err := DefaultSLOConfig().Validate(); err != nil {
		t.Errorf("DefaultSLOConfig invalid: %v", err)
	}
}

// TestLoadSLOConfig round-trips a config file and rejects bad JSON.
func TestLoadSLOConfig(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "slo.json")
	os.WriteFile(good, []byte(`{"objectives":[
		{"name":"avail","kind":"availability","good_counter":"jobs_completed","bad_counter":"jobs_failed","target_ratio":0.95}
	]}`), 0o644)
	cfg, err := LoadSLOConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Objectives) != 1 || cfg.Objectives[0].TargetRatio != 0.95 {
		t.Fatalf("loaded %+v", cfg)
	}
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte(`{"objectives":[{"name":"x","kind":"nope"}]}`), 0o644)
	if _, err := LoadSLOConfig(badPath); err == nil {
		t.Fatal("invalid config loaded")
	}
	if _, err := LoadSLOConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestSLOPrometheusExport checks that every gauge family in SLOGaugeNames
// appears on /metrics with one labeled sample per objective, and that nothing
// is emitted when no config is installed.
func TestSLOPrometheusExport(t *testing.T) {
	o := New()
	if body := scrapeMetrics(t, o); strings.Contains(body, "tap25d_slo_") {
		t.Fatal("SLO gauges exported without a config")
	}
	o.SetSLO(DefaultSLOConfig())
	o.AbsorbCounters(metrics.Counters{JobsCompleted: 10})
	body := scrapeMetrics(t, o)
	for _, name := range SLOGaugeNames() {
		if !strings.Contains(body, name+`{objective="job_availability"}`) {
			t.Errorf("/metrics missing %s sample:\n%s", name, body)
		}
	}
	if !strings.Contains(body, `tap25d_slo_healthy{objective="job_availability"} 1`) {
		t.Errorf("healthy objective not exported as 1:\n%s", body)
	}
}

// approx absorbs float64 accumulation error in ratio math.
func approx(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}
