package obs

import "sync"

// cgResidualCap bounds the residuals recorded per solve. Warm-started
// annealer solves converge in a handful of iterations; a cold solve that
// runs longer keeps its first cgResidualCap residuals, which is where the
// convergence behavior shows.
const cgResidualCap = 512

// cgRingCap is how many recent solves keep their full residual trace.
const cgRingCap = 64

// CGTrace is the residual-vs-iteration record of one conjugate-gradient
// solve. A trace is handed out by StartCG, fed by the solver's OnIteration
// hook, and sealed by EndCG. Methods are nil-safe, so the disabled path can
// thread a nil trace for free.
type CGTrace struct {
	// Seq numbers solves in start order (1-based) across the Observer.
	Seq uint64 `json:"seq"`
	// Iterations is the solve's iteration count (set by EndCG).
	Iterations int `json:"iterations"`
	// Converged reports whether the solve hit its tolerance.
	Converged bool `json:"converged"`
	// Residuals holds ‖b−Ax‖₂ after iteration i (index 0 is the initial
	// residual of the warm/cold start), capped at cgResidualCap entries.
	Residuals []float64 `json:"residuals"`
}

// Observe appends one iteration's residual; it matches the signature of
// sparse.CGOptions.OnIteration.
func (t *CGTrace) Observe(iter int, residual float64) {
	if t == nil || len(t.Residuals) >= cgResidualCap {
		return
	}
	t.Residuals = append(t.Residuals, residual)
}

// StartCG opens a convergence trace for one solve (nil when disabled).
func (o *Observer) StartCG() *CGTrace {
	if o == nil {
		return nil
	}
	return &CGTrace{Seq: o.cgSeq.Add(1)}
}

// EndCG seals a trace: records the solve's iteration count into the
// iterations-to-converge histogram and pushes the trace into the ring of
// recent solves. Safe with t == nil (records the histogram point only when
// the observer itself is enabled).
func (o *Observer) EndCG(t *CGTrace, iterations int, converged bool) {
	if o == nil {
		return
	}
	o.cgIters.Observe(uint64(iterations))
	if t == nil {
		return
	}
	t.Iterations = iterations
	t.Converged = converged
	o.cgTraces.push(t)
}

type cgRing struct {
	mu     sync.Mutex
	buf    [cgRingCap]*CGTrace
	next   int
	filled bool
}

func (r *cgRing) push(t *CGTrace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % cgRingCap
	if r.next == 0 {
		r.filled = true
	}
	r.mu.Unlock()
}

func (r *cgRing) snapshot() []*CGTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*CGTrace
	if r.filled {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// RecentCGTraces returns the newest solve traces, oldest first (at most 64).
func (o *Observer) RecentCGTraces() []*CGTrace {
	if o == nil {
		return nil
	}
	return o.cgTraces.snapshot()
}

// CGStats summarizes convergence behavior across all observed solves.
type CGStats struct {
	// Solves is the number of solves observed (EndCG calls).
	Solves uint64 `json:"solves"`
	// TotalIterations sums iterations over all solves; MeanIterations is the
	// average, MaxIterations the worst case.
	TotalIterations uint64  `json:"total_iterations"`
	MeanIterations  float64 `json:"mean_iterations"`
	MaxIterations   uint64  `json:"max_iterations"`
	// P50/P90/P99 are bucket-resolution quantiles of iterations-to-converge.
	P50Iterations uint64 `json:"p50_iterations"`
	P90Iterations uint64 `json:"p90_iterations"`
	P99Iterations uint64 `json:"p99_iterations"`
	// Histogram is the full iterations-to-converge distribution.
	Histogram HistogramSnapshot `json:"histogram"`
	// LastTrace is the most recent solve's residual-vs-iteration record.
	LastTrace *CGTrace `json:"last_trace,omitempty"`
}

// CGStatsSnapshot computes the current convergence statistics.
func (o *Observer) CGStatsSnapshot() CGStats {
	if o == nil {
		return CGStats{}
	}
	h := o.cgIters.Snapshot()
	st := CGStats{
		Solves:          h.Count,
		TotalIterations: h.Sum,
		MeanIterations:  h.Mean(),
		MaxIterations:   h.Max,
		P50Iterations:   h.Quantile(0.50),
		P90Iterations:   h.Quantile(0.90),
		P99Iterations:   h.Quantile(0.99),
		Histogram:       h,
	}
	if traces := o.cgTraces.snapshot(); len(traces) > 0 {
		st.LastTrace = traces[len(traces)-1]
	}
	return st
}
