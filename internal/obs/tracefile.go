package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// This file is the durable side of span tracing: a TraceSink appends every
// completed span of one trace (ContextWithTrace) to a JSONL file as it ends,
// so a crash loses at most the in-flight span; the final TraceManifest seals
// the file's span count, byte length and CRC-32C so readers can detect torn
// tails; and WritePerfettoTrace converts the records into the Chrome
// trace-event JSON that Perfetto and chrome://tracing open directly.
//
// The hot-path cost is controlled: Span.End consults an atomic sink count
// before touching the sink map, so flows without an attached sink — every CLI
// run without -trace, every library use — pay one atomic load per *traced*
// span and nothing at all for untraced ones.

// castagnoli is the CRC-32C table shared by trace files and their manifests
// (the same polynomial the checkpoint/job sealing uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TraceSink durably appends SpanRecords as JSON Lines to one file. It is safe
// for concurrent use by parallel annealing runs; writes are line-atomic under
// its mutex. The first write error is retained (Manifest reports it) and
// subsequent appends become no-ops, mirroring JSONLSink's journal semantics:
// telemetry failures never fail the run.
type TraceSink struct {
	mu    sync.Mutex
	f     *os.File
	crc   uint32
	spans int64
	bytes int64
	err   error
}

// NewTraceSink opens (or reopens) the trace file at path for appending. A
// re-opened file — a job resuming after a server restart — has its CRC, span
// count and byte count re-seeded from the existing content, so the final
// manifest covers the whole file, not just the last attempt's tail.
func NewTraceSink(path string) (*TraceSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open trace file: %w", err)
	}
	t := &TraceSink{f: f}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat trace file: %w", err)
	}
	if info.Size() > 0 {
		crc, spans, bytes, err := scanTraceFile(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: reseed trace file %s: %w", path, err)
		}
		t.crc, t.spans, t.bytes = crc, spans, bytes
	}
	return t, nil
}

// scanTraceFile computes the running CRC-32C, line count and byte count of an
// existing trace file, leaving the offset wherever the read stopped (appends
// use O_APPEND, so the position does not matter).
func scanTraceFile(f *os.File) (crc uint32, lines, bytes int64, err error) {
	if _, err = f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, err
	}
	buf := make([]byte, 64*1024)
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			crc = crc32.Update(crc, castagnoli, buf[:n])
			bytes += int64(n)
			for _, b := range buf[:n] {
				if b == '\n' {
					lines++
				}
			}
		}
		if rerr == io.EOF {
			return crc, lines, bytes, nil
		}
		if rerr != nil {
			return 0, 0, 0, rerr
		}
	}
}

// Append writes one span record as a JSON line. Errors are retained, not
// returned: tracing must never fail the traced work.
func (t *TraceSink) Append(rec SpanRecord) {
	if t == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		t.mu.Lock()
		if t.err == nil {
			t.err = err
		}
		t.mu.Unlock()
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil || t.err != nil {
		return
	}
	if _, err := t.f.Write(line); err != nil {
		t.err = err
		return
	}
	t.crc = crc32.Update(t.crc, castagnoli, line)
	t.spans++
	t.bytes += int64(len(line))
}

// Manifest snapshots the sink's durable totals for sealing next to the trace
// file once the trace completes.
func (t *TraceSink) Manifest(traceID, jobID string) TraceManifest {
	m := TraceManifest{TraceID: traceID, JobID: jobID}
	if t == nil {
		return m
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m.Spans = t.spans
	m.Bytes = t.bytes
	m.CRC32C = t.crc
	if t.err != nil {
		m.WriteError = t.err.Error()
	}
	return m
}

// Close syncs and closes the underlying file. Later Appends become no-ops.
func (t *TraceSink) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return t.err
	}
	f := t.f
	t.f = nil
	if err := f.Sync(); err != nil && t.err == nil {
		t.err = err
	}
	if err := f.Close(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// TraceManifest is the sealed summary written beside a completed trace file
// (placer.WriteSealedFile, format "tap25d-trace" — the sealing lives with the
// callers, since obs sits below the placer in the package DAG). Readers
// recompute the file's CRC-32C and compare to detect torn or truncated
// traces.
type TraceManifest struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id,omitempty"`
	// Spans, Bytes and CRC32C describe the exact file contents at seal time.
	Spans  int64  `json:"spans"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
	// WriteError records the first append failure, if the trace is partial.
	WriteError string `json:"write_error,omitempty"`
}

// Verify recomputes the CRC-32C of the trace file at path and compares it
// (and the byte count) against the manifest.
func (m TraceManifest) Verify(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	crc, _, bytes, err := scanTraceFile(f)
	if err != nil {
		return err
	}
	if bytes != m.Bytes || crc != m.CRC32C {
		return fmt.Errorf("obs: trace file %s does not match manifest: %d bytes crc %08x, manifest says %d bytes crc %08x",
			path, bytes, crc, m.Bytes, m.CRC32C)
	}
	return nil
}

// AttachTraceSink routes every ending span whose trace ID is trace into sink,
// in addition to the usual histogram and ring bookkeeping.
func (o *Observer) AttachTraceSink(trace string, sink *TraceSink) {
	if o == nil || trace == "" || sink == nil {
		return
	}
	o.mu.Lock()
	if _, ok := o.sinks[trace]; !ok {
		o.sinkN.Add(1)
	}
	o.sinks[trace] = sink
	o.mu.Unlock()
}

// DetachTraceSink stops routing spans of trace and returns the sink (nil when
// none was attached). The caller owns closing and sealing it.
func (o *Observer) DetachTraceSink(trace string) *TraceSink {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	sink, ok := o.sinks[trace]
	if ok {
		delete(o.sinks, trace)
		o.sinkN.Add(-1)
	}
	o.mu.Unlock()
	return sink
}

// traceAppend dispatches one completed traced span to its sink, if attached.
// The atomic sink count keeps the no-sink case to one load.
func (o *Observer) traceAppend(trace string, rec SpanRecord) {
	if o.sinkN.Load() == 0 {
		return
	}
	o.mu.Lock()
	sink := o.sinks[trace]
	o.mu.Unlock()
	sink.Append(rec)
}

// ObserveTracedSpan records an already-completed region directly into the
// phase histogram, the span ring and the trace sink — for callers that only
// learn the trace ID after the region ran (the service's job-submit path
// mints the ID inside the region being timed).
func (o *Observer) ObserveTracedSpan(trace string, phase Phase, label string, start time.Time, d time.Duration) {
	if o == nil || phase >= numPhases {
		return
	}
	if d < 0 {
		d = 0
	}
	rec := SpanRecord{
		Phase:      phase.String(),
		Label:      label,
		StartUnix:  start.UnixNano(),
		DurationNS: int64(d),
	}
	if trace != "" {
		rec.Trace = trace
		rec.SpanID = o.spanSeq.Add(1)
		rec.Track = rec.SpanID
	}
	o.phases[phase].Observe(uint64(d))
	o.spans.push(rec)
	if trace != "" {
		o.traceAppend(trace, rec)
	}
}

// ReadTraceRecords parses a JSONL trace stream. A partial trailing line — a
// trace still being written, or cut off by a crash before its manifest sealed
// — is tolerated and dropped.
func ReadTraceRecords(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []SpanRecord
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail is expected for live traces; a corrupt line in the
			// middle is not.
			if !sc.Scan() {
				break
			}
			return nil, fmt.Errorf("obs: trace line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// perfettoEvent is one complete ("ph":"X") event of the Chrome trace-event
// format, the subset Perfetto needs to render a span timeline.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfettoTrace renders span records as Chrome/Perfetto trace-event
// JSON: each record becomes a complete event on the track (= timeline row) of
// its root span, with label/parent/span linkage in args. The output is
// deterministic for a given input, so goldens can pin the schema.
func WritePerfettoTrace(w io.Writer, recs []SpanRecord) error {
	events := make([]perfettoEvent, 0, len(recs))
	for _, r := range recs {
		ev := perfettoEvent{
			Name: r.Phase,
			Cat:  "tap25d",
			Ph:   "X",
			TS:   float64(r.StartUnix) / 1e3,
			Dur:  float64(r.DurationNS) / 1e3,
			PID:  1,
			TID:  r.Track,
		}
		if ev.TID == 0 {
			ev.TID = 1
		}
		args := map[string]any{}
		if r.Label != "" {
			args["label"] = r.Label
		}
		if r.Parent != "" {
			args["parent"] = r.Parent
		}
		if r.Trace != "" {
			args["trace"] = r.Trace
		}
		if r.SpanID != 0 {
			args["span_id"] = r.SpanID
		}
		if r.ParentID != 0 {
			args["parent_id"] = r.ParentID
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}
