package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"tap25d/internal/metrics"
)

// PhaseSummary condenses one phase's duration histogram for reports and
// event snapshots. All durations are nanoseconds; quantiles have
// power-of-two bucket resolution.
type PhaseSummary struct {
	Phase   string  `json:"phase"`
	Count   uint64  `json:"count"`
	TotalNS uint64  `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	P50NS   uint64  `json:"p50_ns"`
	P90NS   uint64  `json:"p90_ns"`
	P99NS   uint64  `json:"p99_ns"`
	MaxNS   uint64  `json:"max_ns"`
}

func summarize(name string, h HistogramSnapshot) PhaseSummary {
	return PhaseSummary{
		Phase:   name,
		Count:   h.Count,
		TotalNS: h.Sum,
		MeanNS:  h.Mean(),
		P50NS:   h.Quantile(0.50),
		P90NS:   h.Quantile(0.90),
		P99NS:   h.Quantile(0.99),
		MaxNS:   h.Max,
	}
}

// phaseSummaries returns the non-empty phases in declaration order.
func (o *Observer) phaseSummaries() []PhaseSummary {
	var out []PhaseSummary
	for p := Phase(0); p < numPhases; p++ {
		h := o.phases[p].Snapshot()
		if h.Count == 0 {
			continue
		}
		out = append(out, summarize(p.String(), h))
	}
	return out
}

// BenchEntry is one benchmark data point in the continuous-benchmarking
// format used by BENCH_*.json artifacts (name/unit/value triples, the
// format of github-action-benchmark's "customSmallerIsBetter" input), so a
// run's phase timings can be appended to the repo's perf trajectory.
type BenchEntry struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
}

// Report is the end-of-run observability summary: phase timing histograms,
// CG convergence statistics, the absorbed evaluation counters, per-run final
// status, and a benchmark-file-compatible view of the same numbers. Reports
// marshal to JSON; WriteTable renders the human version.
type Report struct {
	// GeneratedUnixNS stamps the report; WallNS is the observer's uptime.
	GeneratedUnixNS int64 `json:"generated_unix_ns"`
	WallNS          int64 `json:"wall_ns"`
	// Phases summarizes each instrumented phase (histograms included).
	Phases []PhaseSummary `json:"phases"`
	// PhaseHistograms carries the full bucket data per phase.
	PhaseHistograms map[string]HistogramSnapshot `json:"phase_histograms,omitempty"`
	// CG is the conjugate-gradient convergence summary.
	CG CGStats `json:"cg"`
	// Counters sums the evaluation counters absorbed from every run.
	Counters metrics.Counters `json:"counters"`
	// Extra holds the named extension counters (Observer.Add).
	Extra map[string]int64 `json:"extra,omitempty"`
	// Runs is the final status of every observed annealing run.
	Runs []RunStatus `json:"runs,omitempty"`
	// Benchmarks restates the phase means as BENCH_*.json entries.
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// Report assembles the current summary.
func (o *Observer) Report() *Report {
	if o == nil {
		return nil
	}
	r := &Report{
		GeneratedUnixNS: time.Now().UnixNano(),
		WallNS:          int64(o.Uptime()),
		Phases:          o.phaseSummaries(),
		CG:              o.CGStatsSnapshot(),
		Counters:        o.countersTotal(),
		Extra:           o.extraSnapshot(),
		Runs:            o.RunStatuses(),
	}
	r.PhaseHistograms = make(map[string]HistogramSnapshot, len(r.Phases))
	for p := Phase(0); p < numPhases; p++ {
		if h := o.phases[p].Snapshot(); h.Count > 0 {
			r.PhaseHistograms[p.String()] = h
		}
	}
	for _, ps := range r.Phases {
		r.Benchmarks = append(r.Benchmarks, BenchEntry{
			Name: "tap25d/" + ps.Phase, Unit: "ns/op", Value: ps.MeanNS,
		})
	}
	if r.CG.Solves > 0 {
		r.Benchmarks = append(r.Benchmarks, BenchEntry{
			Name: "tap25d/cg_iterations", Unit: "iters/solve", Value: r.CG.MeanIterations,
		})
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report as JSON to path (0644).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fmtNS renders a nanosecond quantity with a human unit.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// WriteTable renders the report as an aligned human-readable table.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "observability report (wall %s)\n", fmtNS(float64(r.WallNS)))
	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "  %-18s %10s %12s %10s %10s %10s %10s\n",
			"phase", "count", "total", "mean", "p50", "p99", "max")
		for _, p := range r.Phases {
			fmt.Fprintf(w, "  %-18s %10d %12s %10s %10s %10s %10s\n",
				p.Phase, p.Count, fmtNS(float64(p.TotalNS)), fmtNS(p.MeanNS),
				fmtNS(float64(p.P50NS)), fmtNS(float64(p.P99NS)), fmtNS(float64(p.MaxNS)))
		}
	}
	if r.CG.Solves > 0 {
		fmt.Fprintf(w, "  cg: %d solves, %.1f iters/solve mean (p50<=%d p90<=%d p99<=%d max %d)\n",
			r.CG.Solves, r.CG.MeanIterations,
			r.CG.P50Iterations, r.CG.P90Iterations, r.CG.P99Iterations, r.CG.MaxIterations)
	}
	if !r.Counters.IsZero() {
		fmt.Fprintf(w, "  counters: %s\n", r.Counters)
	}
	for _, rs := range r.Runs {
		fmt.Fprintf(w, "  run %d: %s at step %d/%d, best %.2f C / %.0f mm, accept %.2f\n",
			rs.Run, rs.State, rs.Step, rs.Steps, rs.BestTempC, rs.BestWirelengthMM, rs.AcceptRate)
	}
}

// EventSnapshot is the compact observability payload attached to structured
// run events at checkpoint boundaries: span-timing summaries plus the
// histogram state, small enough to inline into a JSONL journal line.
type EventSnapshot struct {
	UptimeNS int64 `json:"uptime_ns"`
	// Phases summarizes each non-empty phase histogram at this boundary.
	Phases []PhaseSummary `json:"phases"`
	// CGIterations is the iterations-to-converge histogram at this boundary.
	CGIterations HistogramSnapshot `json:"cg_iterations"`
}

// EventSnapshot captures the current histogram state for event enrichment
// (nil when disabled, so the field marshals away).
func (o *Observer) EventSnapshot() *EventSnapshot {
	if o == nil {
		return nil
	}
	return &EventSnapshot{
		UptimeNS:     int64(o.Uptime()),
		Phases:       o.phaseSummaries(),
		CGIterations: o.cgIters.Snapshot(),
	}
}
